// Experiments APP-D and APP-R — Sec. 7 applications.
//
// Paper: distribution over components is 2ExpTime-complete for guarded
// OMQs (Thm. 28, via Prop. 27's reduction to containment), and UCQ
// rewritability of guarded OMQs over unary/binary schemas is
// 2ExpTime-complete (Thm. 29).
//
// Reproduced shape: the Prop. 27 decision on distributing and
// non-distributing queries (plus the simulated coordination-free
// evaluation speed), and the rewritability semi-decision on rewritable
// vs. non-rewritable guarded OMQs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/applications.h"

namespace omqc {
namespace {

using bench::MakeSchema;

void BM_DistributionDecision(benchmark::State& state) {
  int components = static_cast<int>(state.range(0));
  // q = A(x) ∧ B1(y1) ∧ ... ∧ Bk(yk) with Σ: A ⊑ Bi for every i: the
  // A-component witnesses Prop. 27.
  Schema schema = MakeSchema({{"A", 1}});
  std::string sigma, body = "Q() :- A(X)";
  for (int i = 0; i < components; ++i) {
    std::string b = "B" + std::to_string(i);
    schema.Add(Predicate::Get(b, 1));
    sigma += "A(X) -> " + b + "(X).";
    body += ", " + b + "(Y" + std::to_string(i) + ")";
  }
  Omq q = bench::MakeOmq(schema, sigma, body);
  for (auto _ : state) {
    auto result = DistributesOverComponents(q);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected distribution");
      return;
    }
    benchmark::DoNotOptimize(result->witnessing_component);
  }
  state.counters["query_components"] = components + 1;
}
BENCHMARK(BM_DistributionDecision)->DenseRange(1, 4);

void BM_DistributionRefutation(benchmark::State& state) {
  int components = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"A", 1}});
  std::string body = "Q() :- A(X)";
  for (int i = 0; i < components; ++i) {
    std::string b = "B" + std::to_string(i);
    schema.Add(Predicate::Get(b, 1));
    body += ", " + b + "(Y" + std::to_string(i) + ")";
  }
  Omq q = bench::MakeOmq(schema, "", body);  // no ontology: cartesian
  for (auto _ : state) {
    auto result = DistributesOverComponents(q);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kNotContained) {
      state.SkipWithError("expected non-distribution");
      return;
    }
  }
}
BENCHMARK(BM_DistributionRefutation)->DenseRange(1, 4);

/// Coordination-free evaluation: component-wise evaluation of a
/// distributing OMQ over a database with many components.
void BM_ComponentwiseEvaluation(benchmark::State& state) {
  int shards = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"A", 1}, {"B", 1}, {"E", 2}});
  Omq q = bench::MakeOmq(schema, "E(X,Y), A(X) -> A(Y).",
                         "Q(X) :- A(X), B(X)");
  Database db;
  for (int s = 0; s < shards; ++s) {
    std::string p = "s" + std::to_string(s) + "_";
    db.Add(Atom::Make("A", {Term::Constant(p + "0")}));
    for (int i = 0; i < 8; ++i) {
      db.Add(Atom::Make("E", {Term::Constant(p + std::to_string(i)),
                              Term::Constant(p + std::to_string(i + 1))}));
    }
    db.Add(Atom::Make("B", {Term::Constant(p + "8")}));
  }
  for (auto _ : state) {
    auto split = EvalOverComponents(q, db);
    if (!split.ok() || split->size() != static_cast<size_t>(shards)) {
      state.SkipWithError("component evaluation failed");
      return;
    }
  }
  state.counters["shards"] = shards;
}
BENCHMARK(BM_ComponentwiseEvaluation)->RangeMultiplier(2)->Range(2, 16);

void BM_UcqRewritabilityPositive(benchmark::State& state) {
  Schema schema = MakeSchema({{"A", 1}, {"R", 2}});
  Omq q = bench::MakeOmq(schema, "R(X,Y), A(X) -> A(Y).", "Q() :- A(X)");
  for (auto _ : state) {
    auto result = CheckUcqRewritability(q);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected rewritable");
      return;
    }
  }
}
BENCHMARK(BM_UcqRewritabilityPositive);

void BM_UcqRewritabilityEvidence(benchmark::State& state) {
  int budget = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"A", 1}, {"R", 2}});
  Omq q = bench::MakeOmq(schema, "R(X,Y), A(Y) -> A(X).", "Q() :- A(c)");
  ContainmentOptions options;
  options.rewrite.max_queries = static_cast<size_t>(budget);
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto result = CheckUcqRewritability(q, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kUnknown) {
      state.SkipWithError("expected unknown (non-rewritable evidence)");
      return;
    }
    disjuncts = result->disjuncts_found;
  }
  // The non-subsumed disjunct count grows with the budget: the Prop. 30
  // boundedness property fails.
  state.counters["non_subsumed_disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UcqRewritabilityEvidence)->RangeMultiplier(2)->Range(16, 64);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
