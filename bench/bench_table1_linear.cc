// Experiment T1-L — Table 1, row "Linear".
//
// Paper: Cont((L,CQ)) is PSpace-complete, ΠP2-complete for fixed arity;
// witnesses to non-containment have at most |q1| atoms (Prop. 12), and for
// linear OMQs over unbounded arity containment is *no harder than
// evaluation* — the one row of Table 1 where the two coincide.
//
// Reproduced shape: containment runtime grows with |q| but the candidate
// witnesses stay ≤ |q1| atoms; the candidate count stays polynomial for
// these chain workloads.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace omqc {
namespace {

using bench::MakeSchema;

const char kSigma[] =
    "Edge(X,Y) -> Conn(X,Y)."
    "Conn(X,Y) -> Node(X)."
    "Marked(X) -> Node(X).";

/// Contained direction: an Edge-path is a Conn-path under Σ.
void BM_LinearContainmentPositive(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"Edge", 2}, {"Marked", 1}});
  Omq q1{schema, ParseTgds(kSigma).value(),
         bench::ChainQuery("Edge", len)};
  Omq q2{schema, ParseTgds(kSigma).value(),
         bench::ChainQuery("Conn", len)};
  size_t candidates = 0, max_witness = 0;
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    candidates = result->candidates_checked;
    max_witness = result->max_witness_size;
    stats = result->stats;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["max_witness_atoms"] = static_cast<double>(max_witness);
  state.counters["prop12_bound"] = static_cast<double>(q1.query.size());
  bench::ReportEngineStats(state, stats);
}
BENCHMARK(BM_LinearContainmentPositive)->DenseRange(1, 8);

/// Thread sweep over the same positive workload: per-disjunct RHS checks
/// fan out over ContainmentOptions::num_threads workers. The outcome is
/// identical at every thread count; wall-clock gains require >1 hardware
/// core.
void BM_LinearContainmentThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"Edge", 2}, {"Conn", 2}, {"Marked", 1}});
  // Conn-chain LHS: every Conn atom rewrites to Edge or stays, so the
  // enumeration yields 2^6 disjuncts = 64 independent RHS checks.
  Omq q1{schema, ParseTgds(kSigma).value(), bench::ChainQuery("Conn", 6)};
  Omq q2{schema, ParseTgds(kSigma).value(), bench::ChainQuery("Conn", 6)};
  ContainmentOptions options;
  options.num_threads = static_cast<size_t>(threads);
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    stats = result->stats;
  }
  state.counters["threads"] = static_cast<double>(threads);
  bench::ReportEngineStats(state, stats);
}
BENCHMARK(BM_LinearContainmentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Refuted direction: a Conn-path does not imply an Edge-path.
void BM_LinearContainmentNegative(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"Edge", 2}, {"Conn", 2}, {"Marked", 1}});
  Omq q1{schema, ParseTgds(kSigma).value(),
         bench::ChainQuery("Conn", len)};
  Omq q2{schema, ParseTgds(kSigma).value(),
         bench::ChainQuery("Edge", len)};
  size_t max_witness = 0;
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kNotContained) {
      state.SkipWithError("expected non-containment");
      return;
    }
    max_witness = result->max_witness_size;
    stats = result->stats;
  }
  state.counters["max_witness_atoms"] = static_cast<double>(max_witness);
  state.counters["prop12_bound"] = static_cast<double>(len);
  bench::ReportEngineStats(state, stats);
}
BENCHMARK(BM_LinearContainmentNegative)->DenseRange(1, 8);

/// Arity sweep: linear tgds over predicates of growing arity — the paper's
/// PSpace bound is exponential only in the arity.
void BM_LinearContainmentArity(benchmark::State& state) {
  int arity = static_cast<int>(state.range(0));
  std::string vars;
  for (int i = 0; i < arity; ++i) {
    if (i > 0) vars += ",";
    vars += "X" + std::to_string(i);
  }
  std::string sigma = "Wide(" + vars + ") -> Proj(X0).";
  Schema schema = MakeSchema({{"Wide", arity}});
  Omq q1{schema, ParseTgds(sigma).value(),
         ParseQuery("Q(X0) :- Proj(X0)").value()};
  Omq q2{schema, ParseTgds(sigma).value(),
         ParseQuery("Q(X0) :- Wide(" + vars + ")").value()};
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok()) {
      state.SkipWithError("containment failed");
      return;
    }
    benchmark::DoNotOptimize(result->outcome);
  }
}
BENCHMARK(BM_LinearContainmentArity)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
