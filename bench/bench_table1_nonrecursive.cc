// Experiment T1-NR — Table 1, row "Non-recursive".
//
// Paper: Cont((NR,CQ)) is in ExpSpace and PNEXP-hard (even for fixed
// arity); the hardness is by reduction from the Extended Tiling Problem
// (Thm. 16). Rewriting disjuncts are bounded by |q|·b^{|sch(Σ)|}
// (Prop. 14).
//
// Reproduced shape: the executable ETP reduction decides small instances
// and agrees with the brute-force tiling solver; runtime grows steeply
// with the tile count m (the certificate space is the tiling space).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "generators/tiling.h"

namespace omqc {
namespace {

ExtendedTilingInstance FreeEtp(int m) {
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = 1;
  etp.m = m;
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= m; ++j) {
      etp.h1.insert({i, j});
      etp.v1.insert({i, j});
      etp.h2.insert({i, j});
      etp.v2.insert({i, j});
    }
  }
  return etp;
}

void BM_EtpContainment(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  ExtendedTilingInstance etp = FreeEtp(m);
  auto encoding = EncodeExtendedTiling(etp);
  if (!encoding.ok()) {
    state.SkipWithError("encoding failed");
    return;
  }
  ContainmentOptions options;
  options.rewrite.max_queries = 50000;
  options.eval.chase_max_atoms = 1000000;
  bool expected = SolveEtpBruteForce(etp);
  size_t candidates = 0;
  for (auto _ : state) {
    auto result = CheckContainment(encoding->q1, encoding->q2, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    if ((result->outcome == ContainmentOutcome::kContained) != expected) {
      state.SkipWithError("encoding disagrees with brute force");
      return;
    }
    candidates = result->candidates_checked;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["tgds_q1"] = static_cast<double>(encoding->q1.tgds.size());
}
// m = 2 already exceeds the practical envelope (the paper's Sec. "Discussion
// on Applicability" singles out non-recursive sets as the class where the
// double-exponential runtime is not acceptable in practice — our engine
// reproduces that wall); the bench stays at m = 1 and sweeps k instead.
BENCHMARK(BM_EtpContainment)->DenseRange(1, 1);

/// A broken-T2 instance: the answer flips to "not contained" and the
/// engine must exhibit a witness (an initial condition solving T1).
void BM_EtpContainmentRefuted(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  ExtendedTilingInstance etp = FreeEtp(m);
  etp.h2.clear();
  etp.v2.clear();
  auto encoding = EncodeExtendedTiling(etp);
  if (!encoding.ok()) {
    state.SkipWithError("encoding failed");
    return;
  }
  ContainmentOptions options;
  options.rewrite.max_queries = 50000;
  options.eval.chase_max_atoms = 1000000;
  for (auto _ : state) {
    auto result = CheckContainment(encoding->q1, encoding->q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kNotContained) {
      state.SkipWithError("expected refutation");
      return;
    }
    benchmark::DoNotOptimize(result->witness);
  }
}
BENCHMARK(BM_EtpContainmentRefuted)->DenseRange(1, 1);

/// Initial-condition sweep: growing k (the ETP's per-s quantifier) with a
/// single tile; the candidate space is the set of marker databases.
void BM_EtpInitialConditionSweep(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ExtendedTilingInstance etp = FreeEtp(1);
  etp.k = k;
  auto encoding = EncodeExtendedTiling(etp);
  if (!encoding.ok()) {
    state.SkipWithError("encoding failed");
    return;
  }
  ContainmentOptions options;
  options.rewrite.max_queries = 50000;
  for (auto _ : state) {
    auto result = CheckContainment(encoding->q1, encoding->q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    benchmark::DoNotOptimize(result->candidates_checked);
  }
}
BENCHMARK(BM_EtpInitialConditionSweep)->DenseRange(1, 2);

/// Prop. 14 shape: the measured max disjunct size of NR rewritings stays
/// within |q|·b^{|sch(Σ)|} while growing with the number of layers.
void BM_NonRecursiveRewritingGrowth(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  std::string sigma;
  for (int i = 0; i < layers; ++i) {
    std::string from = i == 0 ? "E" : "L" + std::to_string(i - 1);
    std::string to = "L" + std::to_string(i);
    sigma += from + "(X,Y), " + from + "(Y,Z) -> " + to + "(X,Z).";
  }
  Schema schema = bench::MakeSchema({{"E", 2}});
  Omq q{schema, ParseTgds(sigma).value(),
        ParseQuery("Q(X) :- L" + std::to_string(layers - 1) +
                   "(X,Y)")
            .value()};
  size_t max_atoms = 0;
  for (auto _ : state) {
    XRewriteStats stats;
    auto rewriting =
        XRewrite(q.data_schema, q.tgds, q.query, XRewriteOptions(), &stats);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    max_atoms = stats.max_disjunct_atoms;
  }
  state.counters["max_disjunct_atoms"] = static_cast<double>(max_atoms);
  state.counters["prop14_bound"] =
      static_cast<double>(NonRecursiveRewriteBound(q.tgds, q.query));
  state.counters["expected_2^layers"] =
      static_cast<double>(size_t{1} << layers);
}
BENCHMARK(BM_NonRecursiveRewritingGrowth)->DenseRange(1, 3);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
