// Experiment F2 — Figure 2 (inductive 2^i × 2^i tiling construction).
//
// Paper: Figure 2 shows how nine overlapping 2^{i-1}-subgrids assemble a
// 2^i grid — the engine of the Thm. 16 encoding. The chase of the tiling
// rules materializes all grid tilings level by level.
//
// Reproduced shape: chase atoms per derivation level for the T_i pyramid;
// the level population grows with the tiling space (doubling grid side).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/chase.h"
#include "generators/tiling.h"

namespace omqc {
namespace {

EtpEncoding FreeEncoding(int n, int m) {
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = n;
  etp.m = m;
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= m; ++j) {
      etp.h1.insert({i, j});
      etp.v1.insert({i, j});
      etp.h2 = etp.h1;
      etp.v2 = etp.v1;
    }
  }
  return EncodeExtendedTiling(etp).value();
}

/// Chases the Figure 2 rules: counts T_i atoms (grid tilings) per level.
void BM_TilingPyramidChase(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  EtpEncoding encoding = FreeEncoding(n, 2);
  Database db;
  db.Add(Atom::Make("C_0_1", {}));
  ChaseOptions options;
  options.max_atoms = 2000000;
  size_t atoms = 0;
  int levels = 0;
  size_t t1_count = 0, tn_count = 0;
  for (auto _ : state) {
    auto result = Chase(db, encoding.q1.tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase did not complete");
      return;
    }
    atoms = result->instance.size();
    levels = result->max_level_reached;
    t1_count = result->instance.AtomsWith(Predicate::Get("T1", 5)).size();
    tn_count = result->instance
                   .AtomsWith(Predicate::Get("T" + std::to_string(n), 5))
                   .size();
  }
  state.counters["chase_atoms"] = static_cast<double>(atoms);
  state.counters["levels"] = levels;
  state.counters["t1_tilings_2x2"] = static_cast<double>(t1_count);
  state.counters["tn_tilings"] = static_cast<double>(tn_count);
}
BENCHMARK(BM_TilingPyramidChase)->DenseRange(1, 2);

/// The same pyramid with the checkerboard constraint: fewer tilings
/// survive each level (constraint pruning shape).
void BM_TilingPyramidCheckerboard(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = n;
  etp.m = 2;
  etp.h1 = {{1, 2}, {2, 1}};
  etp.v1 = {{1, 2}, {2, 1}};
  etp.h2 = etp.h1;
  etp.v2 = etp.v1;
  EtpEncoding encoding = EncodeExtendedTiling(etp).value();
  Database db;
  db.Add(Atom::Make("C_0_1", {}));
  size_t t1_count = 0;
  for (auto _ : state) {
    auto result = Chase(db, encoding.q1.tgds, ChaseOptions());
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase did not complete");
      return;
    }
    t1_count = result->instance.AtomsWith(Predicate::Get("T1", 5)).size();
  }
  // Checkerboard 2x2 tilings: exactly 2 (up to the choice of corner).
  state.counters["t1_tilings_2x2"] = static_cast<double>(t1_count);
}
BENCHMARK(BM_TilingPyramidCheckerboard)->DenseRange(1, 2);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
