// Experiment T1-EV — Table 1, small-font rows (OMQ evaluation).
//
// Paper: evaluation is PSpace-c (linear), ExpTime-c (sticky), NExpTime-c
// (non-recursive), 2ExpTime-c (guarded) — and containment is harder than
// evaluation in every row except linear/unbounded arity.
//
// Reproduced shape: per-class evaluation runtime scaling in |D|, plus a
// direct evaluation-vs-containment runtime pair on a shared workload
// showing the gap.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "generators/families.h"

namespace omqc {
namespace {

using bench::MakeSchema;

Database ChainWithFlags(int length) {
  Database db = MakeChainDatabase(length);
  return db;
}

void BM_EvalLinear(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"A", 1}, {"B", 1}});
  Omq q{schema,
        ParseTgds("R(X,Y) -> Conn(X,Y). A(X) -> Start(X).").value(),
        ParseQuery("Q(X) :- Start(X), Conn(X,Y)").value()};
  Database db = ChainWithFlags(size);
  for (auto _ : state) {
    auto answers = EvalAll(q, db);
    if (!answers.ok()) {
      state.SkipWithError("eval failed");
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_EvalLinear)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_EvalSticky(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"P", 2}});
  // Sticky (and recursive, so the rewriting path is exercised).
  Omq q{schema,
        ParseTgds("R(X,Y), P(X,Z) -> T(X,Y,Z). T(X,Y,Z) -> R(Y,X).").value(),
        ParseQuery("Q(X) :- T(X,Y,Z)").value()};
  Database db;
  for (int i = 0; i < size; ++i) {
    db.Add(Atom::Make("R", {Term::Constant("c" + std::to_string(i)),
                            Term::Constant("c" + std::to_string(i + 1))}));
    db.Add(Atom::Make("P", {Term::Constant("c" + std::to_string(i)),
                            Term::Constant("d")}));
  }
  EvalOptions options;
  options.rewrite.max_queries = 100000;
  for (auto _ : state) {
    auto answers = EvalAll(q, db, options);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_EvalSticky)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_EvalNonRecursive(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"A", 1}, {"B", 1}});
  Omq q{schema,
        ParseTgds("R(X,Y), R(Y,Z) -> P2(X,Z). P2(X,Y), R(Y,Z) -> P3(X,Z).")
            .value(),
        ParseQuery("Q(X) :- P3(X,Y)").value()};
  Database db = ChainWithFlags(size);
  for (auto _ : state) {
    auto answers = EvalAll(q, db);
    if (!answers.ok()) {
      state.SkipWithError("eval failed");
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_EvalNonRecursive)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Complexity();

void BM_EvalGuarded(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"A", 1}, {"B", 1}});
  Omq q{schema,
        ParseTgds("R(X,Y), A(X) -> A(Y).").value(),
        ParseQuery("Q(X) :- A(X), B(X)").value()};
  Database db = ChainWithFlags(size);
  for (auto _ : state) {
    auto answers = EvalAll(q, db);
    if (!answers.ok()) {
      state.SkipWithError("eval failed");
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_EvalGuarded)->RangeMultiplier(2)->Range(64, 512)->Complexity();

/// Evaluation vs containment on one workload: the containment/evaluation
/// runtime ratio is reported as a counter (the paper's "containment is
/// harder than evaluation" gap).
void BM_EvalVsContainmentGap(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"Edge", 2}, {"Marked", 1}});
  TgdSet tgds = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  Omq q1{schema, tgds, bench::ChainQuery("Edge", len)};
  Omq q2{schema, tgds, bench::ChainQuery("Conn", len)};
  Database edges;
  for (int i = 0; i < 32; ++i) {
    edges.Add(Atom::Make("Edge",
                         {Term::Constant("c" + std::to_string(i)),
                          Term::Constant("c" + std::to_string(i + 1))}));
  }
  double eval_ns = 0, cont_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(EvalAll(q1, edges));
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(CheckContainment(q1, q2));
    auto t2 = std::chrono::steady_clock::now();
    eval_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    cont_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
  }
  if (eval_ns > 0) {
    state.counters["containment_over_eval"] = cont_ns / eval_ns;
  }
}
BENCHMARK(BM_EvalVsContainmentGap)->DenseRange(2, 6, 2);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
