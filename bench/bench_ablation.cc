// Ablation bench — the design choices DESIGN.md calls out:
//
//   * subsumption pruning (König–Leclère–Mugnier prunability) on the
//     containment enumeration: turns divergence into saturation on
//     guarded ontologies, and its overhead on already-terminating cases;
//   * per-CQ minimization (query elimination, [40]): required for sticky
//     termination; overhead on linear workloads;
//   * rewriting-based vs chase-based evaluation on workloads where both
//     are exact.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace omqc {
namespace {

using bench::MakeSchema;

/// Pruning ON vs OFF on a linear containment that terminates either way.
void BM_PruningOffLinear(benchmark::State& state) {
  Schema schema = MakeSchema({{"Edge", 2}, {"Marked", 1}});
  TgdSet tgds = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  Omq q1{schema, tgds, bench::ChainQuery("Edge", 4)};
  Omq q2{schema, tgds, bench::ChainQuery("Conn", 4)};
  ContainmentOptions options;
  options.rewrite.prune_subsumed = false;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
  }
}
BENCHMARK(BM_PruningOffLinear);

void BM_PruningOnLinear(benchmark::State& state) {
  Schema schema = MakeSchema({{"Edge", 2}, {"Marked", 1}});
  TgdSet tgds = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  Omq q1{schema, tgds, bench::ChainQuery("Edge", 4)};
  Omq q2{schema, tgds, bench::ChainQuery("Conn", 4)};
  ContainmentOptions options;  // pruning on by default
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
  }
}
BENCHMARK(BM_PruningOnLinear);

/// Pruning is what makes the guarded case saturate at all: without it the
/// enumeration burns the whole budget and returns kUnknown.
void BM_PruningOffGuardedBudget(benchmark::State& state) {
  Schema schema = MakeSchema({{"A", 1}, {"R", 2}});
  TgdSet tgds = ParseTgds("R(X,Y), A(X) -> A(Y).").value();
  Omq q{schema, tgds, ParseQuery("Q() :- A(X)").value()};
  ContainmentOptions options;
  options.rewrite.prune_subsumed = false;
  options.rewrite.max_queries = 40;
  size_t candidates = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q, q, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kUnknown) {
      state.SkipWithError("expected budget exhaustion without pruning");
      return;
    }
    candidates = result->candidates_checked;
  }
  state.counters["outcome_unknown"] = 1;
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_PruningOffGuardedBudget);

void BM_PruningOnGuardedSaturates(benchmark::State& state) {
  Schema schema = MakeSchema({{"A", 1}, {"R", 2}});
  TgdSet tgds = ParseTgds("R(X,Y), A(X) -> A(Y).").value();
  Omq q{schema, tgds, ParseQuery("Q() :- A(X)").value()};
  size_t candidates = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q, q);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected saturation with pruning");
      return;
    }
    candidates = result->candidates_checked;
  }
  state.counters["outcome_contained"] = 1;
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_PruningOnGuardedSaturates);

/// Query elimination OFF vs ON where both terminate (linear workload).
void BM_MinimizationOffLinearRewrite(benchmark::State& state) {
  Schema schema = MakeSchema({{"R", 2}, {"P", 1}});
  TgdSet tgds = ParseTgds("P(X) -> R(X,Y). R(X,Y) -> P(X).").value();
  ConjunctiveQuery q = bench::ChainQuery("R", 5);
  XRewriteOptions options;
  options.minimize_disjuncts = false;
  for (auto _ : state) {
    auto rewriting = XRewrite(schema, tgds, q, options);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    benchmark::DoNotOptimize(rewriting->size());
  }
}
BENCHMARK(BM_MinimizationOffLinearRewrite);

void BM_MinimizationOnLinearRewrite(benchmark::State& state) {
  Schema schema = MakeSchema({{"R", 2}, {"P", 1}});
  TgdSet tgds = ParseTgds("P(X) -> R(X,Y). R(X,Y) -> P(X).").value();
  ConjunctiveQuery q = bench::ChainQuery("R", 5);
  for (auto _ : state) {
    auto rewriting = XRewrite(schema, tgds, q);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    benchmark::DoNotOptimize(rewriting->size());
  }
}
BENCHMARK(BM_MinimizationOnLinearRewrite);

/// Minimization is load-bearing for sticky sets: without it the sticky
/// resolution closure accumulates redundant atoms past any budget.
void BM_MinimizationOffStickyBudget(benchmark::State& state) {
  Schema schema = MakeSchema({{"R", 2}, {"P", 2}});
  TgdSet tgds = ParseTgds(
                    "R(X,Y), P(X,Z) -> T(X,Y,Z)."
                    "T(X,Y,Z) -> R(Y,X).")
                    .value();
  ConjunctiveQuery q = ParseQuery("Q() :- T(X,Y,Z), R(Y,X)").value();
  XRewriteOptions options;
  options.minimize_disjuncts = false;
  options.max_queries = 60;
  // Without elimination the per-predicate groups also grow without bound;
  // cap them so the failure mode is a clean ResourceExhausted.
  options.max_group_size = 8;
  for (auto _ : state) {
    auto rewriting = XRewrite(schema, tgds, q, options);
    if (rewriting.ok()) {
      state.SkipWithError("expected budget exhaustion without elimination");
      return;
    }
  }
  state.counters["budget_exhausted"] = 1;
}
BENCHMARK(BM_MinimizationOffStickyBudget);

void BM_MinimizationOnStickyTerminates(benchmark::State& state) {
  Schema schema = MakeSchema({{"R", 2}, {"P", 2}});
  TgdSet tgds = ParseTgds(
                    "R(X,Y), P(X,Z) -> T(X,Y,Z)."
                    "T(X,Y,Z) -> R(Y,X).")
                    .value();
  ConjunctiveQuery q = ParseQuery("Q() :- T(X,Y,Z), R(Y,X)").value();
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto rewriting = XRewrite(schema, tgds, q);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    disjuncts = rewriting->size();
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_MinimizationOnStickyTerminates);

/// Evaluation strategy ablation on a workload where both are exact.
void BM_EvalStrategy(benchmark::State& state) {
  bool use_chase = state.range(0) == 1;
  Schema schema = MakeSchema({{"R", 2}, {"A", 1}, {"B", 1}});
  Omq q{schema,
        ParseTgds("R(X,Y) -> Conn(X,Y). A(X) -> Start(X).").value(),
        ParseQuery("Q(X) :- Start(X), Conn(X,Y)").value()};
  Database db;
  for (int i = 0; i < 128; ++i) {
    db.Add(Atom::Make("R", {Term::Constant("c" + std::to_string(i)),
                            Term::Constant("c" + std::to_string(i + 1))}));
    if (i % 8 == 0) {
      db.Add(Atom::Make("A", {Term::Constant("c" + std::to_string(i))}));
    }
  }
  EvalOptions options;
  options.strategy = use_chase ? EvalOptions::Strategy::kChase
                               : EvalOptions::Strategy::kRewrite;
  for (auto _ : state) {
    auto answers = EvalAll(q, db, options);
    if (!answers.ok()) {
      state.SkipWithError("eval failed");
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetLabel(use_chase ? "chase" : "rewrite");
}
BENCHMARK(BM_EvalStrategy)->Arg(0)->Arg(1);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
