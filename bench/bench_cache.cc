// Experiment CACHE — the compilation cache (src/cache).
//
// Three questions:
//   1. How expensive is canonicalization itself (fingerprint cost per
//      query, scaling in query size)?
//   2. Warm vs cold compilation: how much does a populated cache save on
//      the rewriting path of evaluation and on repeated containment
//      checks? (EXPERIMENTS.md records the warm/cold ratio; the design
//      target is >= 5x on rewriting-dominated workloads.)
//   3. What does cache bookkeeping cost when every lookup misses
//      (fingerprint + shard lock on top of the compilation)?

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "cache/canonical.h"
#include "cache/omq_cache.h"
#include "core/containment.h"
#include "generators/families.h"

namespace omqc {
namespace {

/// A depth-k hierarchy of binary predicates E0 < E1 < ... < Ek and a
/// length-m chain query over Ek. The chain is a core (minimization keeps
/// every atom), so the UCQ rewriting has (k+1)^m distinct disjuncts and
/// compilation — generation plus per-query minimization — dominates.
Omq HierarchyOmq(int depth, int query_atoms) {
  std::string tgds;
  Schema schema;
  for (int i = 0; i < depth; ++i) {
    tgds += "E" + std::to_string(i) + "(X,Y) -> E" + std::to_string(i + 1) +
            "(X,Y). ";
  }
  for (int i = 0; i <= depth; ++i) {
    schema.Add(Predicate::Get("E" + std::to_string(i), 2));
  }
  std::string query = "Q(X0) :- ";
  for (int j = 0; j < query_atoms; ++j) {
    if (j > 0) query += ", ";
    query += "E" + std::to_string(depth) + "(X" + std::to_string(j) + ",X" +
             std::to_string(j + 1) + ")";
  }
  return Omq{schema, ParseTgds(tgds).value(), ParseQuery(query).value()};
}

/// Facts only at the bottom of the hierarchy: every disjunct mentioning a
/// higher predicate fails on an empty relation, so UCQ *evaluation* is
/// cheap and the cold/warm gap isolates the compilation cost.
Database HierarchyDb(int facts) {
  Database db;
  for (int i = 0; i < facts; ++i) {
    db.Add(Atom::Make("E0", {Term::Constant("c" + std::to_string(i)),
                             Term::Constant("c" + std::to_string(i + 1))}));
  }
  return db;
}

void BM_FingerprintCQ(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  ConjunctiveQuery q = bench::ChainQuery("R", len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FingerprintCQ(q));
  }
  state.SetComplexityN(len);
}
BENCHMARK(BM_FingerprintCQ)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_FingerprintTgdSet(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  TgdSet tgds = MakeEliChainOntology(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FingerprintTgdSet(tgds));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_FingerprintTgdSet)->RangeMultiplier(2)->Range(2, 32)->Complexity();

/// Cold: no cache — every iteration recompiles the (k+1)^m-disjunct
/// rewriting.
void BM_EvalRewriteColdCache(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq omq = HierarchyOmq(depth, 3);
  Database db = HierarchyDb(4);
  EvalOptions options;
  options.strategy = EvalOptions::Strategy::kRewrite;
  for (auto _ : state) {
    auto answers = EvalAll(omq, db, options);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EvalRewriteColdCache)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

/// Warm: a shared cache, populated on the first iteration — steady state
/// fetches the rewriting by fingerprint and only evaluates the UCQ.
void BM_EvalRewriteWarmCache(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq omq = HierarchyOmq(depth, 3);
  Database db = HierarchyDb(4);
  OmqCache cache;
  EvalOptions options;
  options.strategy = EvalOptions::Strategy::kRewrite;
  options.cache = &cache;
  // Populate outside the timed region.
  if (!EvalAll(omq, db, options).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  EngineStats stats;
  for (auto _ : state) {
    auto answers = EvalAll(omq, db, options, &stats);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
  state.counters["cache_hits"] = static_cast<double>(stats.cache.hits);
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EvalRewriteWarmCache)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

/// Containment Q ⊆ Q over the hierarchy: cold re-enumerates the LHS
/// rewriting per call; warm replays it from the cache (the per-candidate
/// RHS chases run either way — caching never skips semantic work).
void BM_ContainmentColdCache(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq q = HierarchyOmq(depth, 2);
  ContainmentOptions options;
  for (auto _ : state) {
    auto result = CheckContainment(q, q, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("containment failed");
      return;
    }
    benchmark::DoNotOptimize(result->candidates_checked);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_ContainmentColdCache)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_ContainmentWarmCache(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq q = HierarchyOmq(depth, 2);
  OmqCache cache;
  ContainmentOptions options;
  options.cache = &cache;
  if (!CheckContainment(q, q, options).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q, q, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("containment failed");
      return;
    }
    stats = result->stats;
    benchmark::DoNotOptimize(result->candidates_checked);
  }
  state.counters["cache_hits"] = static_cast<double>(stats.cache.hits);
  state.SetComplexityN(depth);
}
BENCHMARK(BM_ContainmentWarmCache)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

/// Governor overhead on the containment engine: the identical Q ⊆ Q check
/// run bare (arg 0) and under an attached-but-never-tripping request
/// governor (arg 1) — LHS enumeration, freezing and every RHS check then
/// pay the child-governor Check()/ChargeBytes sites for real.
/// EXPERIMENTS.md records the ratio; the design target is < 2% overhead.
void BM_ContainmentGovernorOverhead(benchmark::State& state) {
  bool governed = state.range(0) != 0;
  Omq q = HierarchyOmq(8, 2);
  for (auto _ : state) {
    ResourceGovernor governor;
    ContainmentOptions options;
    if (governed) {
      governor.set_deadline_after(std::chrono::hours(1));
      governor.set_memory_budget(size_t{1} << 40);
      options.governor = &governor;
    }
    auto result = CheckContainment(q, q, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("containment failed");
      return;
    }
    benchmark::DoNotOptimize(result->candidates_checked);
  }
  state.SetLabel(governed ? "governed" : "bare");
}
BENCHMARK(BM_ContainmentGovernorOverhead)->Arg(0)->Arg(1);

/// All-miss overhead: distinct queries so every lookup misses and inserts
/// — measures fingerprint + shard-lock + insertion on top of compilation.
void BM_CacheAllMissOverhead(benchmark::State& state) {
  OmqCache cache;
  EvalOptions cached;
  cached.strategy = EvalOptions::Strategy::kRewrite;
  cached.cache = &cache;
  EvalOptions plain = cached;
  plain.cache = nullptr;
  bool use_cache = state.range(0) != 0;
  Database db = HierarchyDb(4);
  Omq base = HierarchyOmq(2, 2);
  int i = 0;
  for (auto _ : state) {
    // A fresh constant per iteration keeps every fingerprint distinct.
    Omq omq = base;
    omq.query.body.push_back(
        Atom::Make("E0", {Term::Variable("X0"),
                          Term::Constant("m" + std::to_string(i++))}));
    auto answers = EvalAll(omq, db, use_cache ? cached : plain);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(answers->size());
  }
}
BENCHMARK(BM_CacheAllMissOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
