// Experiment SEC6 — cross-language containment (Sec. 6, Thm. 26).
//
// Paper: Cont(O1, O2) for O1 ≠ O2 is decided by the small-witness
// algorithm whenever O1 is UCQ-rewritable; for guarded LHS against
// rewritable RHS the automata machinery applies (2ExpTime for L/S RHS,
// 3ExpTime for NR RHS).
//
// Reproduced shape: the full LHS-class × RHS-class matrix on a shared
// reachability scenario; every decided cell agrees with the expected
// outcome and the per-cell candidate counts expose the strategy at work.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace omqc {
namespace {

using bench::MakeSchema;

/// A family of OMQs over schema {In/1, E/2}: "some In-node reaches Good
/// within k steps" expressed with per-class ontologies.
Omq MakeLhs(TgdClass cls) {
  Schema schema = MakeSchema({{"In", 1}, {"E", 2}});
  switch (cls) {
    case TgdClass::kLinear:
      return bench::MakeOmq(schema, "In(X) -> Good(X).",
                            "Q() :- Good(X)");
    case TgdClass::kNonRecursive:
      return bench::MakeOmq(schema,
                            "E(X,Y), In(X) -> Step(Y). Step(X) -> Good(X).",
                            "Q() :- Good(X)");
    case TgdClass::kSticky:
      return bench::MakeOmq(schema,
                            "In(X), E(X,Y) -> Pair(X,Y)."
                            "Pair(X,Y) -> Good(Y).",
                            "Q() :- Good(X)");
    case TgdClass::kGuarded:
    default:
      return bench::MakeOmq(schema, "E(X,Y), In(X) -> In(Y).",
                            "Q() :- In(X)");
  }
}

/// The RHS: an OMQ that is implied by every LHS above (existence of an In
/// node... or anything derived from one).
Omq MakeRhs(TgdClass cls) {
  Schema schema = MakeSchema({{"In", 1}, {"E", 2}});
  switch (cls) {
    case TgdClass::kLinear:
      return bench::MakeOmq(schema, "In(X) -> Here(X).", "Q() :- Here(X)");
    case TgdClass::kNonRecursive:
      return bench::MakeOmq(schema, "In(X) -> A(X). A(X) -> B(X).",
                            "Q() :- B(X)");
    case TgdClass::kSticky:
      return bench::MakeOmq(schema,
                            "In(X), E(X,Y) -> Pair2(X,Y). In(X) -> Solo(X).",
                            "Q() :- Solo(X)");
    case TgdClass::kGuarded:
    default:
      return bench::MakeOmq(schema, "E(X,Y), In(X) -> In(Y).",
                            "Q() :- In(X)");
  }
}

void RunCell(benchmark::State& state, TgdClass lhs_class,
             TgdClass rhs_class) {
  Omq q1 = MakeLhs(lhs_class);
  Omq q2 = MakeRhs(rhs_class);
  size_t candidates = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    candidates = result->candidates_checked;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}

#define OMQC_CROSS_BENCH(L, R)                                    \
  void BM_Cont_##L##_in_##R(benchmark::State& state) {            \
    RunCell(state, TgdClass::k##L, TgdClass::k##R);               \
  }                                                               \
  BENCHMARK(BM_Cont_##L##_in_##R)

OMQC_CROSS_BENCH(Linear, Linear);
OMQC_CROSS_BENCH(Linear, NonRecursive);
OMQC_CROSS_BENCH(Linear, Sticky);
OMQC_CROSS_BENCH(Linear, Guarded);
OMQC_CROSS_BENCH(NonRecursive, Linear);
OMQC_CROSS_BENCH(NonRecursive, NonRecursive);
OMQC_CROSS_BENCH(NonRecursive, Sticky);
OMQC_CROSS_BENCH(NonRecursive, Guarded);
OMQC_CROSS_BENCH(Sticky, Linear);
OMQC_CROSS_BENCH(Sticky, NonRecursive);
OMQC_CROSS_BENCH(Sticky, Sticky);
OMQC_CROSS_BENCH(Sticky, Guarded);
OMQC_CROSS_BENCH(Guarded, Linear);
OMQC_CROSS_BENCH(Guarded, NonRecursive);
OMQC_CROSS_BENCH(Guarded, Sticky);
OMQC_CROSS_BENCH(Guarded, Guarded);

#undef OMQC_CROSS_BENCH

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
