// Experiment LG — Instance storage substrate throughput.
//
// Not a paper table; measures the atom-storage layer every engine sits on:
// ingest (Add with dedup + index maintenance), membership probes, and the
// index scans that back the homomorphism engine's candidate enumeration.
// These are the microbenches behind the columnar-arena refactor (DESIGN.md
// "Atom storage layout"); EXPERIMENTS.md records before/after and the
// bytes-per-atom figure.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "logic/instance.h"
#include "logic/postings_kernels.h"

namespace omqc {
namespace {

/// A deterministic workload of arity-3 atoms over `preds` predicates and
/// `domain` constants, with ~12% duplicates (dedup is part of ingest).
std::vector<Atom> MakeWorkload(size_t n, int preds, int domain) {
  std::vector<Predicate> ps;
  for (int p = 0; p < preds; ++p) {
    ps.push_back(Predicate::Get("R" + std::to_string(p), 3));
  }
  std::vector<Term> cs;
  for (int c = 0; c < domain; ++c) {
    cs.push_back(Term::Constant("c" + std::to_string(c)));
  }
  std::vector<Atom> atoms;
  atoms.reserve(n);
  uint64_t x = 88172645463325252ull;  // xorshift64
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    if (i > 8 && next() % 8 == 0) {
      atoms.push_back(atoms[next() % i]);  // duplicate
      continue;
    }
    Predicate p = ps[next() % ps.size()];
    std::vector<Term> args = {cs[next() % cs.size()], cs[next() % cs.size()],
                              cs[next() % cs.size()]};
    atoms.emplace_back(p, std::move(args));
  }
  return atoms;
}

Instance MakeInstance(const std::vector<Atom>& atoms) {
  Instance inst;
  for (const Atom& a : atoms) inst.Add(a);
  return inst;
}

/// Ingest: per-atom cost of Add (hash probe, arena append, index posting).
void BM_InstanceIngest(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, /*preds=*/8, /*domain=*/64);
  size_t unique = 0;
  double bytes_per_atom = 0;
  for (auto _ : state) {
    Instance inst;
    for (const Atom& a : atoms) inst.Add(a);
    unique = inst.size();
    bytes_per_atom =
        static_cast<double>(inst.MemoryBytes()) / static_cast<double>(unique);
    benchmark::DoNotOptimize(inst);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.counters["unique_atoms"] = static_cast<double>(unique);
  state.counters["bytes_per_atom"] = bytes_per_atom;
}
BENCHMARK(BM_InstanceIngest)->RangeMultiplier(8)->Range(1 << 10, 1 << 16);

/// Membership: Contains over an alternating mix of present/absent atoms.
void BM_InstanceContains(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  // Absent probes: same predicates over a disjoint domain.
  std::vector<Atom> absent = MakeWorkload(n, 8, 64);
  for (Atom& a : absent) a.args[0] = Term::Constant("zz_absent");
  size_t hits = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (inst.Contains(atoms[i])) ++hits;
      if (inst.Contains(absent[i])) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(2 * n) * state.iterations());
}
BENCHMARK(BM_InstanceContains)->Arg(1 << 14);

/// Scan: enumerate, per (predicate, position, term) key, every matching
/// atom and touch all its arguments — the homomorphism engine's candidate
/// scan, isolated from the backtracking around it.
void BM_InstanceScanByArg(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  std::vector<Predicate> ps;
  for (int p = 0; p < 8; ++p) {
    ps.push_back(Predicate::Get("R" + std::to_string(p), 3));
  }
  std::vector<Term> cs;
  for (int c = 0; c < 64; ++c) {
    cs.push_back(Term::Constant("c" + std::to_string(c)));
  }
  size_t scanned = 0;
  for (auto _ : state) {
    scanned = 0;
    for (const Predicate& p : ps) {
      for (int pos = 0; pos < 3; ++pos) {
        for (const Term& t : cs) {
          for (AtomId id : inst.IdsWithArg(p, pos, t)) {
            AtomView a = inst.view(id);
            for (const Term& arg : a) {
              benchmark::DoNotOptimize(arg.id());
            }
            ++scanned;
          }
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(scanned) *
                          state.iterations());
  state.counters["atoms_scanned"] = static_cast<double>(scanned);
}
BENCHMARK(BM_InstanceScanByArg)->RangeMultiplier(4)->Range(1 << 12, 1 << 16);

/// The same scan through the materializing compat accessor (AtomsWithArg
/// copies every matching atom) — the cost cold paths pay, and the before/
/// after contrast for the arena refactor.
void BM_InstanceScanByArgMaterialized(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  std::vector<Predicate> ps;
  for (int p = 0; p < 8; ++p) {
    ps.push_back(Predicate::Get("R" + std::to_string(p), 3));
  }
  std::vector<Term> cs;
  for (int c = 0; c < 64; ++c) {
    cs.push_back(Term::Constant("c" + std::to_string(c)));
  }
  size_t scanned = 0;
  for (auto _ : state) {
    scanned = 0;
    for (const Predicate& p : ps) {
      for (int pos = 0; pos < 3; ++pos) {
        for (const Term& t : cs) {
          for (const Atom& a : inst.AtomsWithArg(p, pos, t)) {
            for (const Term& arg : a.args) {
              benchmark::DoNotOptimize(arg.id());
            }
            ++scanned;
          }
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(scanned) *
                          state.iterations());
}
BENCHMARK(BM_InstanceScanByArgMaterialized)->Arg(1 << 14);

/// Scan: full per-predicate postings sweep, touching every argument of
/// every atom — the unindexed-candidate fallback path. Iterates the packed
/// predicate-major mirror (Instance::Postings), exactly as the
/// homomorphism engine's fallback does since the postings-kernel fix; the
/// interleaved id-loop it replaced is kept below as the contrast.
void BM_InstanceScanByPredicate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  std::vector<Predicate> ps;
  for (int p = 0; p < 8; ++p) {
    ps.push_back(Predicate::Get("R" + std::to_string(p), 3));
  }
  size_t scanned = 0;
  for (auto _ : state) {
    scanned = 0;
    for (const Predicate& p : ps) {
      PostingsSpan span = inst.Postings(p);
      for (size_t j = 0; j < span.size(); ++j) {
        AtomView a = span.view(j);
        for (const Term& arg : a) {
          benchmark::DoNotOptimize(arg.id());
        }
        ++scanned;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(scanned) *
                          state.iterations());
}
BENCHMARK(BM_InstanceScanByPredicate)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 16);

/// The same full sweep through the interleaved id postings + view(id) —
/// the access pattern behind the PR-5 regression (eight predicates stride
/// the shared record/pool arrays). Kept as the contrast measuring what the
/// predicate-major mirror buys.
void BM_InstanceScanByPredicateInterleaved(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  std::vector<Predicate> ps;
  for (int p = 0; p < 8; ++p) {
    ps.push_back(Predicate::Get("R" + std::to_string(p), 3));
  }
  size_t scanned = 0;
  for (auto _ : state) {
    scanned = 0;
    for (const Predicate& p : ps) {
      for (AtomId id : inst.IdsWith(p)) {
        AtomView a = inst.view(id);
        for (const Term& arg : a) {
          benchmark::DoNotOptimize(arg.id());
        }
        ++scanned;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(scanned) *
                          state.iterations());
}
BENCHMARK(BM_InstanceScanByPredicateInterleaved)->Arg(1 << 14);

/// Batched ingest: AddBatch's pipelined hash/prefetch schedule against the
/// same workload BM_InstanceIngest feeds through one-at-a-time Add.
void BM_InstanceIngestBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, /*preds=*/8, /*domain=*/64);
  for (auto _ : state) {
    Instance inst;
    inst.AddBatch(atoms);
    benchmark::DoNotOptimize(inst);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_InstanceIngestBatch)->Arg(1 << 14);

/// Batched membership: CountContained over the present/absent probe mix
/// (the one-at-a-time contrast is BM_InstanceContains).
void BM_InstanceContainsBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Atom> atoms = MakeWorkload(n, 8, 64);
  Instance inst = MakeInstance(atoms);
  std::vector<Atom> absent = MakeWorkload(n, 8, 64);
  for (Atom& a : absent) a.args[0] = Term::Constant("zz_absent");
  size_t hits = 0;
  for (auto _ : state) {
    hits = inst.CountContained(atoms) + inst.CountContained(absent);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(2 * n) * state.iterations());
}
BENCHMARK(BM_InstanceContainsBatch)->Arg(1 << 14);

/// The k-way intersection kernel on synthetic postings with controlled
/// skew: two sorted lists sharing every `share`-th element, length ratio
/// `skew` (1 = dense/dense merge, 64 = galloping regime).
void BM_PostingsIntersect(benchmark::State& state) {
  const size_t small_n = 1 << 10;
  const size_t skew = static_cast<size_t>(state.range(0));
  std::vector<AtomId> small, large;
  for (size_t i = 0; i < small_n; ++i) {
    small.push_back(static_cast<AtomId>(i * skew + (i % 3 == 0 ? 0 : 1)));
  }
  for (size_t i = 0; i < small_n * skew; ++i) {
    large.push_back(static_cast<AtomId>(i));
  }
  std::vector<AtomId> out;
  out.reserve(small_n);
  size_t hits = 0;
  for (auto _ : state) {
    out.clear();
    IntersectPostings(small.data(), small.size(), large.data(), large.size(),
                      out);
    hits = out.size();
  }
  benchmark::DoNotOptimize(hits);
  state.counters["result_size"] = static_cast<double>(hits);
  state.SetItemsProcessed(static_cast<int64_t>(small_n) *
                          state.iterations());
}
BENCHMARK(BM_PostingsIntersect)->Arg(1)->Arg(64);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
