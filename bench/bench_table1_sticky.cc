// Experiments T1-S and P18 — Table 1, row "Sticky" + Prop. 18.
//
// Paper: Cont((S,CQ)) is coNExpTime-complete (ΠP2 for fixed arity); the
// smallest witnesses to non-containment can have 2^(n-2) facts — the
// Prop. 18 family {Q^n} realizes the bound, and the runtime is
// double-exponential only in the maximum arity of the data schema.
//
// Reproduced shape: the minimum witness size of Q^n doubles with every
// increment of n (exact 2^(n-2) series), and containment runtime follows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "generators/families.h"

namespace omqc {
namespace {

/// The Prop. 18 series: the single rewriting disjunct of Q^n has exactly
/// 2^(n-2) atoms — the smallest database with Q^n(D) ≠ ∅.
void BM_StickyWitnessFamily(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Omq q = MakeStickyWitnessFamily(n);
  size_t witness = 0, disjuncts = 0;
  for (auto _ : state) {
    auto rewriting = XRewrite(q.data_schema, q.tgds, q.query);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    UnionOfCQs minimized = MinimizeUCQ(*rewriting);
    disjuncts = minimized.size();
    witness = minimized.MaxDisjunctSize();
  }
  state.counters["min_witness_facts"] = static_cast<double>(witness);
  state.counters["prop18_bound_2^(n-2)"] =
      static_cast<double>(size_t{1} << (n - 2));
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_StickyWitnessFamily)->DenseRange(3, 5);

/// Containment with a sticky LHS: Q^n against an OMQ that also demands
/// Ans(0,1) but from a weaker ontology — refuted via the exponential
/// witness.
void BM_StickyContainmentRefuted(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Omq q1 = MakeStickyWitnessFamily(n);
  // RHS: requires an S fact whose last position carries the constant 2 —
  // never true on the witnesses.
  std::string vars;
  for (int i = 0; i < n - 1; ++i) {
    if (i > 0) vars += ",";
    vars += "X" + std::to_string(i);
  }
  Omq q2{q1.data_schema, TgdSet{},
         ParseQuery("Q() :- S(" + vars + ",'2')").value()};
  size_t max_witness = 0;
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kNotContained) {
      state.SkipWithError("expected refutation");
      return;
    }
    max_witness = result->max_witness_size;
    stats = result->stats;
  }
  state.counters["witness_facts"] = static_cast<double>(max_witness);
  bench::ReportEngineStats(state, stats);
}
BENCHMARK(BM_StickyContainmentRefuted)->DenseRange(3, 5);

/// Thread sweep on the fixed-arity sticky workload (len = 6): outcome is
/// thread-count-independent; stats make the per-layer work visible.
void BM_StickyContainmentThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Schema schema = bench::MakeSchema({{"R", 2}, {"P", 2}});
  const char kSigma[] =
      "R(X,Y), P(X,Z) -> T(X,Y,Z)."
      "T(X,Y,Z) -> Both(X).";
  Omq q1{schema, ParseTgds(kSigma).value(), bench::ChainQuery("R", 6)};
  Omq q2{schema, ParseTgds(kSigma).value(), bench::ChainQuery("R", 1)};
  ContainmentOptions options;
  options.num_threads = static_cast<size_t>(threads);
  EngineStats stats;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2, options);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    stats = result->stats;
  }
  state.counters["threads"] = static_cast<double>(threads);
  bench::ReportEngineStats(state, stats);
}
BENCHMARK(BM_StickyContainmentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Fixed-arity sticky containment (the ΠP2 row): lossless joins over a
/// binary schema; witnesses stay polynomial.
void BM_StickyContainmentFixedArity(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = bench::MakeSchema({{"R", 2}, {"P", 2}});
  const char kSigma[] =
      "R(X,Y), P(X,Z) -> T(X,Y,Z)."
      "T(X,Y,Z) -> Both(X).";
  Omq q1{schema, ParseTgds(kSigma).value(), bench::ChainQuery("R", len)};
  Omq q2{schema, ParseTgds(kSigma).value(), bench::ChainQuery("R", 1)};
  size_t max_witness = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    max_witness = result->max_witness_size;
  }
  state.counters["max_witness_atoms"] = static_cast<double>(max_witness);
  state.counters["prop17_bound"] = static_cast<double>(
      StickyRewriteBound(schema, q1.tgds, q1.query));
}
BENCHMARK(BM_StickyContainmentFixedArity)->DenseRange(1, 6);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
