// Experiment PST — the persistent artifact store (src/cache/persist).
//
// Three questions:
//   1. Startup-to-first-verdict: how much does warm-starting from an
//      on-disk store save over a cold compile, for a rewriting-dominated
//      containment check? (EXPERIMENTS.md records the cold/warm ratio;
//      the design target is that warm tracks the in-memory warm cache —
//      decode + promote, not recompile.)
//   2. What does opening a store cost as it grows? Open only indexes raw
//      payload spans (decode is lazy), so boot must scale with segment
//      bytes, not with artifact complexity.
//   3. Server boot: daemon construction with a populated --cache-dir vs
//      memory-only — the warm-start must not tax availability.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cache/persist.h"
#include "core/containment.h"
#include "server/server.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

namespace fs = std::filesystem;

/// A fresh empty store directory (removed and recreated).
std::string FreshDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("omqc_bench_persist_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Depth-k hierarchy E0 < ... < Ek with a length-2 chain query over Ek:
/// the UCQ rewriting has (k+1)^2 disjuncts, so compilation dominates the
/// Q ⊆ Q check (same workload family as bench_cache).
Omq HierarchyOmq(int depth) {
  std::string tgds;
  Schema schema;
  for (int i = 0; i < depth; ++i) {
    tgds += "E" + std::to_string(i) + "(X,Y) -> E" + std::to_string(i + 1) +
            "(X,Y). ";
  }
  for (int i = 0; i <= depth; ++i) {
    schema.Add(Predicate::Get("E" + std::to_string(i), 2));
  }
  std::string query = "Q(X0) :- E" + std::to_string(depth) + "(X0,X1), E" +
                      std::to_string(depth) + "(X1,X2)";
  return Omq{schema, ParseTgds(tgds).value(), ParseQuery(query).value()};
}

bool FirstVerdict(const Omq& q, ArtifactStore* cache) {
  ContainmentOptions options;
  options.cache = cache;
  auto result = CheckContainment(q, q, options);
  return result.ok() && result->outcome == ContainmentOutcome::kContained;
}

/// Seeds `dir` with the compiled artifacts for `q` and seals them.
void SeedStore(const std::string& dir, const Omq& q) {
  auto store = TieredStore::Open(TieredStoreConfig{{}, dir}).value();
  if (!FirstVerdict(q, store.get())) std::abort();
  store->Flush();
}

/// Cold startup-to-first-verdict: open an *empty* store, compile, answer.
void BM_ColdStartToFirstVerdict(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq q = HierarchyOmq(depth);
  std::string dir = FreshDir("cold");
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::create_directories(dir);
    state.ResumeTiming();
    auto store = TieredStore::Open(TieredStoreConfig{{}, dir}).value();
    if (!FirstVerdict(q, store.get())) {
      state.SkipWithError("containment failed");
      return;
    }
    benchmark::DoNotOptimize(store);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_ColdStartToFirstVerdict)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

/// Warm startup-to-first-verdict: open a *populated* store — the verdict
/// is served by decoding on-disk artifacts, nothing is recompiled.
void BM_WarmStartToFirstVerdict(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Omq q = HierarchyOmq(depth);
  std::string dir = FreshDir("warm" + std::to_string(depth));
  SeedStore(dir, q);
  for (auto _ : state) {
    auto store = TieredStore::Open(TieredStoreConfig{{}, dir}).value();
    if (!FirstVerdict(q, store.get())) {
      state.SkipWithError("containment failed");
      return;
    }
    benchmark::DoNotOptimize(store);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_WarmStartToFirstVerdict)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

/// Store open vs entry count: indexing is span-only (lazy decode), so this
/// must scale with segment bytes, not artifact complexity.
void BM_StoreOpenByEntries(benchmark::State& state) {
  int entries = static_cast<int>(state.range(0));
  std::string dir = FreshDir("open" + std::to_string(entries));
  {
    auto store = PersistentStore::Open(dir).value();
    for (int i = 0; i < entries; ++i) {
      CacheKey key{Fingerprint{static_cast<uint64_t>(i), 0xBEEF}, 0,
                   ArtifactKind::kRewriting};
      store->Append(key, Fingerprint{}, kArtifactPayloadVersion,
                    std::string(256, static_cast<char>('a' + (i % 26))));
    }
    if (!store->Flush().ok()) {
      state.SkipWithError("flush failed");
      return;
    }
  }
  for (auto _ : state) {
    auto store = PersistentStore::Open(dir).value();
    if (store->stats().entries != static_cast<size_t>(entries)) {
      state.SkipWithError("store lost entries");
      return;
    }
    benchmark::DoNotOptimize(store);
  }
  state.SetComplexityN(entries);
}
BENCHMARK(BM_StoreOpenByEntries)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

/// Daemon boot (construct + pipeline start + shutdown), memory-only cache
/// (arg 0) vs warm-starting from a populated --cache-dir (arg 1). The
/// store only indexes spans at open, so the warm boot must track the
/// empty one.
void BM_ServerBoot(benchmark::State& state) {
  bool warm = state.range(0) != 0;
  std::string dir = FreshDir("serverboot");
  if (warm) SeedStore(dir, HierarchyOmq(8));
  for (auto _ : state) {
    ServerConfig config;
    config.worker_threads = 2;
    if (warm) config.cache_dir = dir;
    OmqServer server(std::move(config));
    server.Start();
    server.Shutdown();
  }
  state.SetLabel(warm ? "warm_store" : "memory_only");
}
BENCHMARK(BM_ServerBoot)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
