// Experiment T1-G — Table 1, row "Guarded".
//
// Paper: Cont((G,CQ)) is 2ExpTime-complete, decided via a tree-witness
// property (Prop. 21) and 2WAPA emptiness (Prop. 25); the runtime is
// double-exponential only in the CQ sizes and the maximum arity.
//
// Reproduced shape: the rewriting-enumeration semi-procedure (our
// substitute for the automaton, see DESIGN.md) certifies containment on
// saturating guarded ontologies and refutes non-containment through
// tree-shaped witnesses; the candidate count grows with the ontology
// depth (ELI chain length).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "generators/families.h"

namespace omqc {
namespace {

/// Saturating guarded containment: forward reachability ontologies.
void BM_GuardedContainmentSaturating(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  // Σ: k parallel guarded propagation rules R_i(x,y) ∧ A(x) → A(y).
  std::string sigma;
  Schema schema = bench::MakeSchema({{"A", 1}});
  for (int i = 0; i < width; ++i) {
    std::string r = "R" + std::to_string(i);
    schema.Add(Predicate::Get(r, 2));
    sigma += r + "(X,Y), A(X) -> A(Y).";
  }
  Omq q1{schema, ParseTgds(sigma).value(),
         ParseQuery("Q() :- A(X)").value()};
  Omq q2 = q1;
  size_t candidates = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected certified containment");
      return;
    }
    candidates = result->candidates_checked;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_GuardedContainmentSaturating)->DenseRange(1, 5);

/// ELI-style chains (the language of the paper's lower bound [16]):
/// B_i reachability through existential successors.
void BM_GuardedEliChainContainment(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  TgdSet tgds = MakeEliChainOntology(k);
  Schema schema = bench::MakeSchema({{"A0", 1}});
  Omq q1{schema, tgds, ParseQuery("Q(X) :- A0(X)").value()};
  Omq q2{schema, tgds, ParseQuery("Q(X) :- B0(X)").value()};
  for (auto _ : state) {
    // A0(x) implies B0(x) via the existential r0-successor: contained.
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kContained) {
      state.SkipWithError("expected containment");
      return;
    }
    benchmark::DoNotOptimize(result->candidates_checked);
  }
}
BENCHMARK(BM_GuardedEliChainContainment)->DenseRange(1, 4);

/// Guarded refutation: the witness is a guarded-tree-shaped database.
void BM_GuardedContainmentRefuted(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Schema schema = bench::MakeSchema({{"A", 1}, {"B", 1}, {"R", 2}});
  Omq q1{schema, ParseTgds("R(X,Y), A(X) -> A(Y).").value(),
         bench::ChainQuery("R", depth)};
  Omq q2{schema, ParseTgds("R(X,Y), A(X) -> A(Y).").value(),
         ParseQuery("Q(X0) :- B(X0)").value()};
  size_t witness = 0;
  for (auto _ : state) {
    auto result = CheckContainment(q1, q2);
    if (!result.ok() ||
        result->outcome != ContainmentOutcome::kNotContained) {
      state.SkipWithError("expected refutation");
      return;
    }
    witness = result->max_witness_size;
  }
  state.counters["witness_atoms"] = static_cast<double>(witness);
}
BENCHMARK(BM_GuardedContainmentRefuted)->DenseRange(1, 6);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
