// Experiment GA — guarded-fragment automata emptiness (ROADMAP item 3).
//
// Paper: the guarded decision procedures (Prop. 21/25) reduce to 2WAPA
// emptiness over ΓS,l trees; the automata path is the cost center in the
// related work (Bourhis–Lutz, Bourhis–Krötzsch–Rudolph). These benches
// race the antichain engine (automata/emptiness.h) against the reference
// subset-construction oracle (automata/downward.h) on three families:
//
//  * Gamma     — Prop. 25 compositions (consistency ∩ atom presence) over
//                an explicit ΓS,l alphabet; the realistic label-heavy load.
//  * MultiReach — the intersection of k "some node carries label i"
//                automata; the reference interns a subset lattice while
//                the antichain engine early-exits on productivity.
//  * Chain     — k chained existential obligations; linear for both, so
//                it isolates the per-set constant factors (bitset intern +
//                memo vs. std::set copies + DNF recomputation).
//
// BM_*Governed re-runs the antichain engine with an (untripped) governor
// attached; EXPERIMENTS.md "GA" derives the governed-overhead percentage
// from the Governed/plain pair.

#include <benchmark/benchmark.h>

#include <chrono>

#include "automata/emptiness.h"
#include "base/governor.h"
#include "core/guarded_automata.h"

namespace omqc {
namespace {

void ReportEmptinessStats(benchmark::State& state,
                          const EmptinessStats& stats) {
  state.counters["states_explored"] =
      static_cast<double>(stats.states_explored);
  state.counters["states_subsumed"] =
      static_cast<double>(stats.states_subsumed);
  state.counters["antichain_size"] =
      static_cast<double>(stats.antichain_size);
  state.counters["emptiness_rounds"] =
      static_cast<double>(stats.emptiness_rounds);
  state.counters["dnf_cache_hits"] =
      static_cast<double>(stats.dnf_cache_hits);
}

/// Prop. 25 shape: consistency ∩ "some pred-atom appears" over the ΓS,l
/// alphabet of a tiny schema. `present` selects a schema predicate (the
/// language is non-empty) or a foreign one (empty: the engine must reach
/// the fixpoint to prove it).
Twapa GammaWitness(bool present) {
  Schema schema;
  schema.Add(Predicate::Get("r", 2));
  schema.Add(Predicate::Get("A", 1));
  GammaAlphabet alphabet =
      EnumerateGammaAlphabet(schema, 1, 1, 500000).value();
  Twapa consistency = ConsistencyAutomaton(alphabet);
  Predicate probe =
      present ? Predicate::Get("r", 2) : Predicate::Get("missing", 1);
  return Intersect(consistency, AtomPresenceAutomaton(alphabet, probe))
      .value();
}

/// The intersection of k single-state automata "some node carries label
/// i". Obligation sets are the subsets of pending labels: the reference
/// subset construction interns a lattice, the antichain engine proves the
/// initial set productive and stops.
Twapa MultiReach(int k) {
  Twapa out;
  for (int i = 0; i < k; ++i) {
    Twapa reach;
    reach.num_states = 1;
    reach.num_labels = k;
    reach.initial_state = 0;
    reach.mode = AcceptanceMode::kFiniteRuns;
    reach.delta = [i](int, int label) {
      return label == i ? Formula::True() : Diamond(Move::kChild, 0);
    };
    out = i == 0 ? reach : Intersect(out, reach).value();
  }
  return out;
}

/// k chained existential obligations over one label; the last accepts.
Twapa Chain(int k) {
  Twapa a;
  a.num_states = k;
  a.num_labels = 1;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [k](int state, int) {
    return state == k - 1 ? Formula::True()
                          : Diamond(Move::kChild, state + 1);
  };
  return a;
}

void RunEmptiness(benchmark::State& state, const Twapa& automaton,
                  EmptinessEngine engine, bool expected_empty,
                  size_t num_threads = 1, ResourceGovernor* governor = nullptr) {
  EmptinessStats stats;
  for (auto _ : state) {
    EmptinessStats iteration_stats;
    EmptinessOptions options;
    options.engine = engine;
    options.num_threads = num_threads;
    options.governor = governor;
    options.stats = &iteration_stats;
    options.max_states = 1u << 20;
    auto result = DownwardEmptiness(automaton, options);
    if (!result.ok() || *result != expected_empty) {
      state.SkipWithError("wrong or failed emptiness verdict");
      return;
    }
    stats = iteration_stats;
  }
  ReportEmptinessStats(state, stats);
}

// ---- Gamma: the Prop. 25 composition. ----

void BM_GammaEmptiness_Reference(benchmark::State& state) {
  Twapa automaton = GammaWitness(state.range(0) != 0);
  RunEmptiness(state, automaton, EmptinessEngine::kReference,
               state.range(0) == 0);
}
BENCHMARK(BM_GammaEmptiness_Reference)->Arg(0)->Arg(1);

void BM_GammaEmptiness_Antichain(benchmark::State& state) {
  Twapa automaton = GammaWitness(state.range(0) != 0);
  RunEmptiness(state, automaton, EmptinessEngine::kAntichain,
               state.range(0) == 0);
}
BENCHMARK(BM_GammaEmptiness_Antichain)->Arg(0)->Arg(1);

void BM_GammaEmptiness_AntichainParallel(benchmark::State& state) {
  Twapa automaton = GammaWitness(state.range(0) != 0);
  RunEmptiness(state, automaton, EmptinessEngine::kAntichain,
               state.range(0) == 0, /*num_threads=*/4);
}
BENCHMARK(BM_GammaEmptiness_AntichainParallel)->Arg(0)->Arg(1);

void BM_GammaEmptiness_AntichainGoverned(benchmark::State& state) {
  Twapa automaton = GammaWitness(state.range(0) != 0);
  // Generous, never-tripping budgets: this measures pure probe overhead.
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::hours(1));
  governor.set_memory_budget(size_t{1} << 33);
  RunEmptiness(state, automaton, EmptinessEngine::kAntichain,
               state.range(0) == 0, /*num_threads=*/1, &governor);
}
BENCHMARK(BM_GammaEmptiness_AntichainGoverned)->Arg(0)->Arg(1);

// ---- MultiReach: subset-lattice blow-up vs. early exit. ----

void BM_MultiReachEmptiness_Reference(benchmark::State& state) {
  Twapa automaton = MultiReach(static_cast<int>(state.range(0)));
  RunEmptiness(state, automaton, EmptinessEngine::kReference, false);
}
BENCHMARK(BM_MultiReachEmptiness_Reference)->DenseRange(4, 10, 2);

void BM_MultiReachEmptiness_Antichain(benchmark::State& state) {
  Twapa automaton = MultiReach(static_cast<int>(state.range(0)));
  RunEmptiness(state, automaton, EmptinessEngine::kAntichain, false);
}
BENCHMARK(BM_MultiReachEmptiness_Antichain)->DenseRange(4, 10, 2);

// ---- Chain: per-set constant factors. ----

void BM_ChainEmptiness_Reference(benchmark::State& state) {
  Twapa automaton = Chain(static_cast<int>(state.range(0)));
  RunEmptiness(state, automaton, EmptinessEngine::kReference, false);
}
BENCHMARK(BM_ChainEmptiness_Reference)->Arg(64)->Arg(256);

void BM_ChainEmptiness_Antichain(benchmark::State& state) {
  Twapa automaton = Chain(static_cast<int>(state.range(0)));
  RunEmptiness(state, automaton, EmptinessEngine::kAntichain, false);
}
BENCHMARK(BM_ChainEmptiness_Antichain)->Arg(64)->Arg(256);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
