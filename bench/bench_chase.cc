// Experiment CH — chase engine substrate throughput.
//
// Not a paper table; measures the engine every other experiment sits on:
// restricted vs. oblivious chase throughput (derived atoms per second),
// the cost of level tracking on non-recursive workloads, and the
// naive-vs-seminaive trigger-enumeration comparison (BM_ChaseStrategy*):
// on multi-round fixpoints the semi-naive engine enumerates each trigger
// once instead of once per remaining round.

#include <benchmark/benchmark.h>

#include <chrono>

#include "base/governor.h"
#include "bench_util.h"
#include "chase/chase.h"
#include "generators/families.h"

namespace omqc {
namespace {

Database Grid(int side) {
  Database db;
  auto c = [&](int x, int y) {
    return Term::Constant("g" + std::to_string(x) + "_" + std::to_string(y));
  };
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      if (x + 1 < side) db.Add(Atom::Make("E", {c(x, y), c(x + 1, y)}));
      if (y + 1 < side) db.Add(Atom::Make("E", {c(x, y), c(x, y + 1)}));
    }
  }
  return db;
}

void BM_RestrictedChase(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z)."
                    "Hop2(X,Z) -> Reach(X,Z).")
                    .value();
  size_t derived = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
  state.counters["derived_atoms"] = static_cast<double>(derived);
}
BENCHMARK(BM_RestrictedChase)->DenseRange(4, 12, 4);

void BM_ObliviousChase(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z).")
                    .value();
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  size_t derived = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
}
BENCHMARK(BM_ObliviousChase)->DenseRange(4, 12, 4);

/// Naive vs semi-naive on a multi-round fixpoint: transitive closure over
/// a chain takes one round per hop, so the naive engine re-enumerates the
/// full (quadratically growing) trigger set every round.
void BM_ChaseStrategyTransitiveClosure(benchmark::State& state,
                                       ChaseStrategy strategy) {
  int length = static_cast<int>(state.range(0));
  Database db;
  auto c = [](int i) { return Term::Constant("c" + std::to_string(i)); };
  for (int i = 0; i < length; ++i) {
    db.Add(Atom::Make("E", {c(i), c(i + 1)}));
  }
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> T(X,Y)."
                    "T(X,Y), E(Y,Z) -> T(X,Z).")
                    .value();
  ChaseOptions options;
  options.strategy = strategy;
  size_t derived = 0, triggers = 0, redundant = 0, rounds = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
    triggers = result->triggers_enumerated;
    redundant = result->redundant_triggers_skipped;
    rounds = result->rounds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
  state.counters["derived_atoms"] = static_cast<double>(derived);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["triggers_enumerated"] = static_cast<double>(triggers);
  state.counters["redundant_skipped"] = static_cast<double>(redundant);
}
BENCHMARK_CAPTURE(BM_ChaseStrategyTransitiveClosure, naive,
                  ChaseStrategy::kNaive)
    ->RangeMultiplier(2)
    ->Range(16, 64);
BENCHMARK_CAPTURE(BM_ChaseStrategyTransitiveClosure, seminaive,
                  ChaseStrategy::kSemiNaive)
    ->RangeMultiplier(2)
    ->Range(16, 64);

/// Naive vs semi-naive on the grid workload of BM_RestrictedChase (three
/// rules, a handful of rounds).
void BM_ChaseStrategyGrid(benchmark::State& state, ChaseStrategy strategy) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z)."
                    "Hop2(X,Z) -> Reach(X,Z).")
                    .value();
  ChaseOptions options;
  options.strategy = strategy;
  size_t derived = 0, triggers = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
    triggers = result->triggers_enumerated;
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
  state.counters["triggers_enumerated"] = static_cast<double>(triggers);
}
BENCHMARK_CAPTURE(BM_ChaseStrategyGrid, naive, ChaseStrategy::kNaive)
    ->DenseRange(4, 12, 4);
BENCHMARK_CAPTURE(BM_ChaseStrategyGrid, seminaive, ChaseStrategy::kSemiNaive)
    ->DenseRange(4, 12, 4);

/// One-round guardrail: a single full tgd saturates in one round (plus the
/// empty confirming round), where semi-naive can win nothing — this bench
/// bounds its bookkeeping overhead.
void BM_ChaseStrategySingleRound(benchmark::State& state,
                                 ChaseStrategy strategy) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds("E(X,Y) -> Deg(X).").value();
  ChaseOptions options;
  options.strategy = strategy;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    benchmark::DoNotOptimize(result->instance.size());
  }
}
BENCHMARK_CAPTURE(BM_ChaseStrategySingleRound, naive, ChaseStrategy::kNaive)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_ChaseStrategySingleRound, seminaive,
                  ChaseStrategy::kSemiNaive)
    ->Arg(12);

/// Existential rules with a depth budget: the guarded-evaluation chase.
void BM_BudgetedGuardedChase(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("seed")}));
  db.Add(Atom::Make("C", {Term::Constant("seed")}));
  TgdSet tgds = ParseTgds("A(X), C(X) -> R(X,Y), A(Y), C(Y).").value();
  ChaseOptions options;
  options.max_level = depth;
  size_t atoms = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok()) {
      state.SkipWithError("chase failed");
      return;
    }
    atoms = result->instance.size();
  }
  state.counters["atoms_at_depth"] = static_cast<double>(atoms);
}
BENCHMARK(BM_BudgetedGuardedChase)->RangeMultiplier(2)->Range(4, 64);

/// Governor overhead on the chase hot path: the identical grid fixpoint
/// run bare (arg 0) and under an attached-but-never-tripping governor
/// with a far deadline and a huge memory budget (arg 1), so every
/// per-trigger/per-turn Check() and per-atom ChargeBytes runs for real.
/// EXPERIMENTS.md records the ratio; the design target is < 2% overhead.
void BM_ChaseGovernorOverhead(benchmark::State& state) {
  bool governed = state.range(0) != 0;
  Database db = Grid(10);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z)."
                    "Hop2(X,Z) -> Reach(X,Z).")
                    .value();
  for (auto _ : state) {
    ResourceGovernor governor;
    ChaseOptions options;
    if (governed) {
      governor.set_deadline_after(std::chrono::hours(1));
      governor.set_memory_budget(size_t{1} << 40);
      options.governor = &governor;
    }
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    benchmark::DoNotOptimize(result->instance.size());
  }
  state.SetLabel(governed ? "governed" : "bare");
}
BENCHMARK(BM_ChaseGovernorOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
