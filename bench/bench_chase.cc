// Experiment CH — chase engine substrate throughput.
//
// Not a paper table; measures the engine every other experiment sits on:
// restricted vs. oblivious chase throughput (derived atoms per second)
// and the cost of level tracking on non-recursive workloads.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/chase.h"
#include "generators/families.h"

namespace omqc {
namespace {

Database Grid(int side) {
  Database db;
  auto c = [&](int x, int y) {
    return Term::Constant("g" + std::to_string(x) + "_" + std::to_string(y));
  };
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      if (x + 1 < side) db.Add(Atom::Make("E", {c(x, y), c(x + 1, y)}));
      if (y + 1 < side) db.Add(Atom::Make("E", {c(x, y), c(x, y + 1)}));
    }
  }
  return db;
}

void BM_RestrictedChase(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z)."
                    "Hop2(X,Z) -> Reach(X,Z).")
                    .value();
  size_t derived = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
  state.counters["derived_atoms"] = static_cast<double>(derived);
}
BENCHMARK(BM_RestrictedChase)->DenseRange(4, 12, 4);

void BM_ObliviousChase(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Database db = Grid(side);
  TgdSet tgds = ParseTgds(
                    "E(X,Y) -> Deg(X)."
                    "E(X,Y), E(Y,Z) -> Hop2(X,Z).")
                    .value();
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  size_t derived = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok() || !result->complete) {
      state.SkipWithError("chase failed");
      return;
    }
    derived = result->instance.size() - db.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived) *
                          state.iterations());
}
BENCHMARK(BM_ObliviousChase)->DenseRange(4, 12, 4);

/// Existential rules with a depth budget: the guarded-evaluation chase.
void BM_BudgetedGuardedChase(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("seed")}));
  db.Add(Atom::Make("C", {Term::Constant("seed")}));
  TgdSet tgds = ParseTgds("A(X), C(X) -> R(X,Y), A(Y), C(Y).").value();
  ChaseOptions options;
  options.max_level = depth;
  size_t atoms = 0;
  for (auto _ : state) {
    auto result = Chase(db, tgds, options);
    if (!result.ok()) {
      state.SkipWithError("chase failed");
      return;
    }
    atoms = result->instance.size();
  }
  state.counters["atoms_at_depth"] = static_cast<double>(atoms);
}
BENCHMARK(BM_BudgetedGuardedChase)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
