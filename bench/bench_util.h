// Shared helpers for the omqc benchmark harness.
//
// Every bench binary regenerates one row/figure of the paper (see
// DESIGN.md's experiment index); besides google-benchmark timings, each
// reports the *shape* quantities the paper predicts (witness sizes,
// rewriting sizes, chase level counts) as benchmark counters.

#ifndef OMQC_BENCH_BENCH_UTIL_H_
#define OMQC_BENCH_BENCH_UTIL_H_

#include <initializer_list>
#include <string>
#include <utility>

#include "core/containment.h"
#include "tgd/parser.h"

namespace omqc {
namespace bench {

inline Schema MakeSchema(
    std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

inline Omq MakeOmq(Schema schema, const std::string& tgds,
                   const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

/// A chain CQ over predicate `pred`: Q(X0) :- pred(X0,X1), ...,
/// pred(X_{len-1}, X_len).
inline ConjunctiveQuery ChainQuery(const std::string& pred, int len) {
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < len; ++i) {
    if (i > 0) text += ", ";
    text += pred + "(X" + std::to_string(i) + ",X" + std::to_string(i + 1) +
            ")";
  }
  return ParseQuery(text).value();
}

}  // namespace bench
}  // namespace omqc

#endif  // OMQC_BENCH_BENCH_UTIL_H_
