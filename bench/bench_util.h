// Shared helpers for the omqc benchmark harness.
//
// Every bench binary regenerates one row/figure of the paper (see
// DESIGN.md's experiment index); besides google-benchmark timings, each
// reports the *shape* quantities the paper predicts (witness sizes,
// rewriting sizes, chase level counts) as benchmark counters.

#ifndef OMQC_BENCH_BENCH_UTIL_H_
#define OMQC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <initializer_list>
#include <string>
#include <utility>

#include "core/containment.h"
#include "tgd/parser.h"

namespace omqc {
namespace bench {

/// Exports the per-layer EngineStats of one containment run as benchmark
/// counters (last iteration wins — the engine is deterministic, so every
/// iteration does the same work).
inline void ReportEngineStats(benchmark::State& state, const EngineStats& s) {
  state.counters["disjuncts_checked"] =
      static_cast<double>(s.disjuncts_checked);
  state.counters["witnesses_rejected"] =
      static_cast<double>(s.witnesses_rejected);
  state.counters["budget_exhaustions"] =
      static_cast<double>(s.budget_exhaustions);
  state.counters["rw_queries"] = static_cast<double>(s.rewrite.queries_generated);
  state.counters["rw_dedup_hits"] = static_cast<double>(s.rewrite.dedup_hits);
  state.counters["rw_subsumption_prunes"] =
      static_cast<double>(s.rewrite.subsumption_prunes);
  state.counters["hom_searches"] = static_cast<double>(s.hom.searches);
  state.counters["hom_steps"] = static_cast<double>(s.hom.steps);
  state.counters["hom_candidates"] =
      static_cast<double>(s.hom.candidates_scanned);
  state.counters["chase_steps"] = static_cast<double>(s.chase_steps);
  state.counters["chase_atoms"] = static_cast<double>(s.chase_atoms_derived);
}

inline Schema MakeSchema(
    std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

inline Omq MakeOmq(Schema schema, const std::string& tgds,
                   const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

/// A chain CQ over predicate `pred`: Q(X0) :- pred(X0,X1), ...,
/// pred(X_{len-1}, X_len).
inline ConjunctiveQuery ChainQuery(const std::string& pred, int len) {
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < len; ++i) {
    if (i > 0) text += ", ";
    text += pred + "(X" + std::to_string(i) + ",X" + std::to_string(i + 1) +
            ")";
  }
  return ParseQuery(text).value();
}

}  // namespace bench
}  // namespace omqc

#endif  // OMQC_BENCH_BENCH_UTIL_H_
