// Experiment P12/14/17 — the rewriting-size propositions.
//
// Paper: the maximum disjunct size of a UCQ rewriting is bounded by |q|
// for linear tgds (Prop. 12), |q|·b^{|sch(Σ)|} for non-recursive sets
// (Prop. 14) and |S|·(|T(q)|+|C(Σ)|+1)^{ar(S)} for sticky sets (Prop. 17).
//
// Reproduced shape: measured max-disjunct sizes against the three
// analytic bounds on growing workloads (the bound/measured ratio is
// reported; it must stay >= 1).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace omqc {
namespace {

using bench::MakeSchema;

void ReportBound(benchmark::State& state, size_t measured, size_t bound) {
  state.counters["measured_max_disjunct"] = static_cast<double>(measured);
  state.counters["analytic_bound"] = static_cast<double>(bound);
  if (measured > 0) {
    state.counters["bound_over_measured"] =
        static_cast<double>(bound) / static_cast<double>(measured);
  }
}

void BM_LinearBound(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"P", 1}});
  TgdSet tgds = ParseTgds(
                    "P(X) -> R(X,Y)."
                    "R(X,Y) -> P(X).")
                    .value();
  ConjunctiveQuery q = bench::ChainQuery("R", len);
  size_t measured = 0;
  for (auto _ : state) {
    XRewriteStats stats;
    auto rewriting = XRewrite(schema, tgds, q, XRewriteOptions(), &stats);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    measured = stats.max_disjunct_atoms;
  }
  ReportBound(state, measured, LinearRewriteBound(q));
}
BENCHMARK(BM_LinearBound)->DenseRange(1, 8);

void BM_NonRecursiveBound(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  std::string sigma;
  for (int i = 0; i < layers; ++i) {
    std::string from = i == 0 ? "E" : "L" + std::to_string(i - 1);
    sigma += from + "(X,Y), " + from + "(Y,Z) -> L" + std::to_string(i) +
             "(X,Z).";
  }
  Schema schema = MakeSchema({{"E", 2}});
  TgdSet tgds = ParseTgds(sigma).value();
  ConjunctiveQuery q =
      ParseQuery("Q(X) :- L" + std::to_string(layers - 1) + "(X,Y)").value();
  size_t measured = 0;
  for (auto _ : state) {
    XRewriteStats stats;
    auto rewriting = XRewrite(schema, tgds, q, XRewriteOptions(), &stats);
    if (!rewriting.ok()) {
      state.SkipWithError("rewriting failed");
      return;
    }
    measured = stats.max_disjunct_atoms;
  }
  ReportBound(state, measured, NonRecursiveRewriteBound(tgds, q));
}
BENCHMARK(BM_NonRecursiveBound)->DenseRange(1, 3);

void BM_StickyBound(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Schema schema = MakeSchema({{"R", 2}, {"P", 2}});
  TgdSet tgds = ParseTgds(
                    "R(X,Y), P(X,Z) -> T(X,Y,Z)."
                    "T(X,Y,Z) -> R(Y,X).")
                    .value();
  ConjunctiveQuery q = bench::ChainQuery("R", len);
  size_t measured = 0;
  for (auto _ : state) {
    XRewriteStats stats;
    auto rewriting = XRewrite(schema, tgds, q, XRewriteOptions(), &stats);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    measured = stats.max_disjunct_atoms;
  }
  ReportBound(state, measured, StickyRewriteBound(schema, tgds, q));
}
BENCHMARK(BM_StickyBound)->DenseRange(1, 3);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
