// Experiment F1 — Figure 1 (stickiness and marking).
//
// Paper: Figure 1 illustrates the inductive marking procedure that defines
// sticky sets: the variant keeping the join variable (S(y,w)) is sticky,
// the variant dropping it (S(x,w)) is not.
//
// Reproduced shape: the two Figure 1 programs classify as in the paper,
// and the marking fixpoint scales linearly in the number of chained rules
// (rounds and marked-variable counters reported).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "generators/families.h"
#include "tgd/classify.h"

namespace omqc {
namespace {

void BM_Figure1Classification(benchmark::State& state) {
  TgdSet sticky = ParseTgds(
                      "T(X,Y,Z) -> S(Y,W)."
                      "R(X,Y), P(Y,Z) -> T(X,Y,W).")
                      .value();
  TgdSet non_sticky = ParseTgds(
                          "T(X,Y,Z) -> S(X,W)."
                          "R(X,Y), P(Y,Z) -> T(X,Y,W).")
                          .value();
  for (auto _ : state) {
    bool a = IsSticky(sticky);
    bool b = IsSticky(non_sticky);
    if (!a || b) {
      state.SkipWithError("Figure 1 classification mismatch");
      return;
    }
  }
  state.counters["figure1_sticky"] = 1;
  state.counters["figure1_non_sticky"] = 0;
}
BENCHMARK(BM_Figure1Classification);

/// Marking propagation through a chain of k rules: each T_i head feeds
/// T_{i+1}'s body, and a final projection rule starts the marking, which
/// must travel back through all k rules.
void BM_MarkingPropagationChain(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string text;
  for (int i = 0; i < k; ++i) {
    text += "T" + std::to_string(i) + "(X,Y) -> T" + std::to_string(i + 1) +
            "(X,Y).";
  }
  text += "T" + std::to_string(k) + "(X,Y) -> Last(X).";  // drops Y
  TgdSet tgds = ParseTgds(text).value();
  int rounds = 0;
  size_t marked = 0;
  for (auto _ : state) {
    StickyMarking marking = ComputeStickyMarking(tgds);
    rounds = marking.rounds;
    marked = 0;
    for (const auto& per_tgd : marking.marked) marked += per_tgd.size();
  }
  state.counters["fixpoint_rounds"] = rounds;
  state.counters["marked_variables"] = static_cast<double>(marked);
  state.counters["chain_length"] = k;
}
BENCHMARK(BM_MarkingPropagationChain)->RangeMultiplier(2)->Range(2, 64);

/// Full classification cost on random ontologies of growing size.
void BM_ClassifyRandom(benchmark::State& state) {
  int num_tgds = static_cast<int>(state.range(0));
  RandomOmqConfig config;
  config.target = TgdClass::kSticky;
  config.num_tgds = num_tgds;
  config.seed = 11;
  Omq q = MakeRandomOmq(config);
  for (auto _ : state) {
    ClassificationReport report = Classify(q.tgds);
    benchmark::DoNotOptimize(report.sticky);
  }
}
BENCHMARK(BM_ClassifyRandom)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace omqc

BENCHMARK_MAIN();
