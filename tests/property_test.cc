// Property-based sweeps (parameterized over seeds): cross-validate the
// engines against each other and against brute force on randomized
// workloads.
//
//   * rewriting vs chase: cert answers agree for every UCQ-rewritable
//     class (the defining equation of UCQ rewritability, Def. 1);
//   * Chandra-Merlin: CQ containment agrees with per-database evaluation
//     on random databases;
//   * containment laws: reflexivity, transitivity, body-extension
//     monotonicity;
//   * Props. 5/6: the evaluation<->containment reductions agree with
//     direct evaluation on random instances;
//   * chase invariants: the result satisfies Σ; levels are consistent.

#include <gtest/gtest.h>

#include <random>

#include "chase/chase.h"
#include "core/containment.h"
#include "core/reductions.h"
#include "generators/families.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

/// A deterministic random database over the given predicates.
Database RandomDatabase(const Schema& schema, int domain_size, int facts,
                        uint32_t seed) {
  std::mt19937 rng(seed);
  Database db;
  std::vector<Predicate> preds(schema.predicates().begin(),
                               schema.predicates().end());
  for (int i = 0; i < facts && !preds.empty(); ++i) {
    const Predicate& p =
        preds[rng() % static_cast<uint32_t>(preds.size())];
    std::vector<Term> args;
    for (int j = 0; j < p.arity(); ++j) {
      args.push_back(Term::Constant(
          "d" + std::to_string(rng() % static_cast<uint32_t>(domain_size))));
    }
    db.Add(Atom(p, std::move(args)));
  }
  return db;
}

class SeededTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest, ::testing::Range(1u, 21u));

// ---------- Rewriting vs chase agreement. ----------

TEST_P(SeededTest, RewritingMatchesChaseOnLinear) {
  RandomOmqConfig config;
  config.target = TgdClass::kLinear;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 4, 10, GetParam() * 7 + 1);

  auto rewriting = XRewrite(q.data_schema, q.tgds, q.query);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  auto via_rewriting = EvaluateUCQ(*rewriting, db);

  ChaseOptions chase_options;
  chase_options.max_level = 12;
  auto chased = Chase(db, q.tgds, chase_options);
  ASSERT_TRUE(chased.ok());
  auto via_chase = EvaluateCQ(q.query, chased->instance);

  EXPECT_EQ(via_rewriting, via_chase) << "seed " << GetParam();
}

TEST_P(SeededTest, RewritingMatchesChaseOnNonRecursive) {
  RandomOmqConfig config;
  config.target = TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 12, GetParam() * 13 + 2);

  auto rewriting = XRewrite(q.data_schema, q.tgds, q.query);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  auto via_rewriting = EvaluateUCQ(*rewriting, db);

  auto chased = Chase(db, q.tgds);  // NR: terminates
  ASSERT_TRUE(chased.ok());
  ASSERT_TRUE(chased->complete);
  auto via_chase = EvaluateCQ(q.query, chased->instance);

  EXPECT_EQ(via_rewriting, via_chase) << "seed " << GetParam();
}

TEST_P(SeededTest, RewritingMatchesChaseOnSticky) {
  RandomOmqConfig config;
  config.target = TgdClass::kSticky;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  ASSERT_TRUE(IsSticky(q.tgds));
  Database db = RandomDatabase(q.data_schema, 3, 10, GetParam() * 3 + 5);

  auto rewriting = XRewrite(q.data_schema, q.tgds, q.query);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  auto via_rewriting = EvaluateUCQ(*rewriting, db);

  auto chased = Chase(db, q.tgds);  // these random sticky sets are NR too
  ASSERT_TRUE(chased.ok());
  ASSERT_TRUE(chased->complete);
  auto via_chase = EvaluateCQ(q.query, chased->instance);

  EXPECT_EQ(via_rewriting, via_chase) << "seed " << GetParam();
}

// ---------- Chandra-Merlin cross-validation. ----------

TEST_P(SeededTest, CQContainmentMatchesEvaluationOnRandomDatabases) {
  std::mt19937 rng(GetParam());
  Schema schema;
  schema.Add(Predicate::Get("R", 2));
  schema.Add(Predicate::Get("P", 1));
  auto random_cq = [&rng]() {
    std::vector<Atom> body;
    int atoms = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < atoms; ++i) {
      auto v = [&rng]() {
        return Term::Variable("V" + std::to_string(rng() % 3));
      };
      if (rng() % 2 == 0) {
        body.push_back(Atom::Make("R", {v(), v()}));
      } else {
        body.push_back(Atom::Make("P", {v()}));
      }
    }
    return ConjunctiveQuery({}, std::move(body));
  };
  ConjunctiveQuery q1 = random_cq();
  ConjunctiveQuery q2 = random_cq();
  bool contained = CQContainedIn(q1, q2);
  // Soundness check on random databases: wherever q1 holds, q2 must too.
  for (uint32_t i = 0; i < 6; ++i) {
    Database db = RandomDatabase(schema, 3, 8, GetParam() * 31 + i);
    bool holds1 = HoldsIn(q1, db);
    bool holds2 = HoldsIn(q2, db);
    if (contained && holds1) {
      EXPECT_TRUE(holds2) << "q1=" << q1.ToString()
                          << " q2=" << q2.ToString() << "\n"
                          << db.ToString();
    }
  }
}

// ---------- Containment laws. ----------

TEST_P(SeededTest, ContainmentIsReflexive) {
  RandomOmqConfig config;
  config.target = GetParam() % 2 == 0 ? TgdClass::kLinear
                                      : TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  auto result = CheckContainment(q, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

TEST_P(SeededTest, AddingBodyAtomsShrinksTheQuery) {
  RandomOmqConfig config;
  config.target = TgdClass::kLinear;
  config.seed = GetParam();
  Omq smaller = MakeRandomOmq(config);
  // Extend the body with one more atom over the data schema: the extended
  // query is contained in the original.
  Omq larger = smaller;
  const Predicate& p = *smaller.data_schema.predicates().begin();
  std::vector<Term> args;
  for (int i = 0; i < p.arity(); ++i) {
    args.push_back(Term::Variable("Extra" + std::to_string(i)));
  }
  larger.query.body.push_back(Atom(p, std::move(args)));
  auto result = CheckContainment(larger, smaller);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

TEST_P(SeededTest, ContainmentIsTransitiveOnDecidedTriples) {
  // Build three comparable linear OMQs: chains of decreasing length are
  // increasing in ⊆.
  Schema schema;
  schema.Add(Predicate::Get("R", 2));
  TgdSet tgds = ParseTgds("R(X,Y) -> S(X,Y).").value();
  int base = 1 + static_cast<int>(GetParam() % 3);
  auto chain = [&](int len) {
    std::string text = "Q(X0) :- ";
    for (int i = 0; i < len; ++i) {
      if (i > 0) text += ", ";
      text += "R(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
    }
    return Omq{schema, tgds, ParseQuery(text).value()};
  };
  Omq a = chain(base + 2), b = chain(base + 1), c = chain(base);
  EXPECT_EQ(CheckContainment(a, b)->outcome, ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(b, c)->outcome, ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(a, c)->outcome, ContainmentOutcome::kContained);
}

// ---------- Props. 5/6 on random instances. ----------

TEST_P(SeededTest, Prop5MatchesDirectEvaluation) {
  Schema schema;
  schema.Add(Predicate::Get("R", 2));
  schema.Add(Predicate::Get("P", 1));
  Omq q{schema, ParseTgds("R(X,Y) -> P(Y). P(X) -> Good(X).").value(),
        ParseQuery("Q(X) :- Good(X)").value()};
  Database db = RandomDatabase(schema, 3, 6, GetParam() * 17 + 3);
  for (const Term& c : db.ActiveDomainConstants()) {
    bool direct = EvalTuple(q, db, {c}).value();
    auto reduction = EvalToContainment(q, db, {c});
    ASSERT_TRUE(reduction.ok());
    auto contained = CheckContainment(reduction->q1, reduction->q2);
    ASSERT_TRUE(contained.ok());
    EXPECT_EQ(contained->outcome == ContainmentOutcome::kContained, direct)
        << c.ToString() << "\n"
        << db.ToString();
  }
}

TEST_P(SeededTest, Prop6MatchesDirectEvaluation) {
  Schema schema;
  schema.Add(Predicate::Get("R", 2));
  Omq q{schema, ParseTgds("R(X,Y) -> P(Y).").value(),
        ParseQuery("Q(X) :- P(X)").value()};
  Database db = RandomDatabase(schema, 3, 5, GetParam() * 29 + 11);
  for (const Term& c : db.ActiveDomainConstants()) {
    bool direct = EvalTuple(q, db, {c}).value();
    auto reduction = EvalToCoContainment(q, db, {c});
    ASSERT_TRUE(reduction.ok());
    auto contained = CheckContainment(reduction->q1, reduction->q2);
    ASSERT_TRUE(contained.ok());
    // c ∈ Q(D) iff Q1 ⊄ Q2.
    EXPECT_EQ(contained->outcome == ContainmentOutcome::kNotContained,
              direct);
  }
}

// ---------- Chase invariants. ----------

TEST_P(SeededTest, ChaseResultSatisfiesTheTgds) {
  RandomOmqConfig config;
  config.target = TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 8, GetParam() + 100);
  auto chased = Chase(db, q.tgds);
  ASSERT_TRUE(chased.ok());
  ASSERT_TRUE(chased->complete);
  // I |= Σ: every body match extends to a head match.
  for (const Tgd& tgd : q.tgds.tgds) {
    bool violated = false;
    ForEachHomomorphism(
        tgd.body, chased->instance, Substitution(),
        [&](const Substitution& trigger) {
          if (!FindHomomorphism(tgd.head, chased->instance, trigger)
                   .has_value()) {
            violated = true;
            return false;
          }
          return true;
        });
    EXPECT_FALSE(violated) << tgd.ToString();
  }
}

TEST_P(SeededTest, ObliviousChaseSubsumesRestricted) {
  RandomOmqConfig config;
  config.target = TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 6, GetParam() + 200);
  ChaseOptions oblivious;
  oblivious.variant = ChaseVariant::kOblivious;
  auto restricted = Chase(db, q.tgds);
  auto full = Chase(db, q.tgds, oblivious);
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full->instance.size(), restricted->instance.size());
  // Both are universal models: each maps into the other, so they agree on
  // every Boolean CQ; spot-check with the query itself.
  EXPECT_EQ(HoldsIn(q.query, restricted->instance),
            HoldsIn(q.query, full->instance));
}

}  // namespace
}  // namespace omqc
