// Tests for the tiling encodings (Thms. 16 and 34): the reductions are
// cross-checked against brute-force tiling solvers on small instances.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "generators/tiling.h"

namespace omqc {
namespace {

// ---------- Brute-force solvers. ----------

TEST(TilingSolverTest, FreeTilingAlwaysSolvable) {
  ExponentialTilingInstance t;
  t.n = 1;
  t.m = 2;
  for (int i = 1; i <= 2; ++i) {
    for (int j = 1; j <= 2; ++j) {
      t.horizontal.insert({i, j});
      t.vertical.insert({i, j});
    }
  }
  EXPECT_TRUE(SolveTilingBruteForce(t));
}

TEST(TilingSolverTest, EmptyRelationsUnsolvable) {
  ExponentialTilingInstance t;
  t.n = 1;
  t.m = 2;  // no compatible pairs at all
  EXPECT_FALSE(SolveTilingBruteForce(t));
}

TEST(TilingSolverTest, CheckerboardConstraint) {
  // Tiles must alternate: H and V only allow (1,2) and (2,1).
  ExponentialTilingInstance t;
  t.n = 1;
  t.m = 2;
  t.horizontal = {{1, 2}, {2, 1}};
  t.vertical = {{1, 2}, {2, 1}};
  EXPECT_TRUE(SolveTilingBruteForce(t));
  // Forcing two equal initial tiles breaks it.
  t.initial_row = {1, 1};
  EXPECT_FALSE(SolveTilingBruteForce(t));
  t.initial_row = {1, 2};
  EXPECT_TRUE(SolveTilingBruteForce(t));
}

TEST(TilingSolverTest, EtpQuantifiesOverInitialConditions) {
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = 1;
  etp.m = 2;
  // T1 solvable for every s; T2 solvable for every s too.
  for (int i = 1; i <= 2; ++i) {
    for (int j = 1; j <= 2; ++j) {
      etp.h1.insert({i, j});
      etp.v1.insert({i, j});
      etp.h2.insert({i, j});
      etp.v2.insert({i, j});
    }
  }
  EXPECT_TRUE(SolveEtpBruteForce(etp));
  // Break T2 while keeping T1: some s admits T1 but not T2 -> "no".
  etp.h2.clear();
  etp.v2.clear();
  EXPECT_FALSE(SolveEtpBruteForce(etp));
  // Also break T1: vacuously true again.
  etp.h1.clear();
  etp.v1.clear();
  EXPECT_TRUE(SolveEtpBruteForce(etp));
}

// ---------- Thm. 16 encoding. ----------

ExtendedTilingInstance SmallEtp(bool t1_solvable, bool t2_solvable) {
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = 1;
  etp.m = 1;  // a single tile: solvable iff (1,1) ∈ H ∩ V
  if (t1_solvable) {
    etp.h1.insert({1, 1});
    etp.v1.insert({1, 1});
  }
  if (t2_solvable) {
    etp.h2.insert({1, 1});
    etp.v2.insert({1, 1});
  }
  return etp;
}

TEST(EtpEncodingTest, EncodingIsNonRecursive) {
  auto encoding = EncodeExtendedTiling(SmallEtp(true, true));
  ASSERT_TRUE(encoding.ok()) << encoding.status().ToString();
  EXPECT_TRUE(IsNonRecursive(encoding->q1.tgds));
  EXPECT_TRUE(IsNonRecursive(encoding->q2.tgds));
  EXPECT_TRUE(ValidateOmq(encoding->q1).ok());
  EXPECT_TRUE(ValidateOmq(encoding->q2).ok());
}

TEST(EtpEncodingTest, MatchesBruteForceOnSmallInstances) {
  ContainmentOptions options;
  options.rewrite.max_queries = 20000;
  options.eval.chase_max_atoms = 500000;
  for (bool t1 : {false, true}) {
    for (bool t2 : {false, true}) {
      ExtendedTilingInstance etp = SmallEtp(t1, t2);
      bool expected = SolveEtpBruteForce(etp);
      auto encoding = EncodeExtendedTiling(etp);
      ASSERT_TRUE(encoding.ok());
      auto contained =
          CheckContainment(encoding->q1, encoding->q2, options);
      ASSERT_TRUE(contained.ok()) << contained.status().ToString();
      EXPECT_EQ(contained->outcome == ContainmentOutcome::kContained,
                expected)
          << "t1=" << t1 << " t2=" << t2;
    }
  }
}

TEST(EtpEncodingTest, RejectsOversizedInitialCondition) {
  ExtendedTilingInstance etp;
  etp.k = 3;
  etp.n = 1;  // 2^1 = 2 < 3
  etp.m = 1;
  EXPECT_FALSE(EncodeExtendedTiling(etp).ok());
}

// ---------- Thm. 34 encoding. ----------

TEST(ExponentialTilingEncodingTest, ClassesAreAsStated) {
  ExponentialTilingInstance t;
  t.n = 1;
  t.m = 2;
  t.horizontal = {{1, 2}, {2, 1}};
  t.vertical = {{1, 2}, {2, 1}};
  auto encoding = EncodeExponentialTiling(t);
  ASSERT_TRUE(encoding.ok()) << encoding.status().ToString();
  // QT: full and non-recursive.
  EXPECT_TRUE(IsFull(encoding->qt.tgds));
  EXPECT_TRUE(IsNonRecursive(encoding->qt.tgds));
  // Q'T: linear tgds.
  EXPECT_TRUE(IsLinear(encoding->qt_prime.tgds));
}

TEST(ExponentialTilingEncodingTest, MatchesBruteForce) {
  ContainmentOptions options;
  options.rewrite.max_queries = 50000;
  options.rewrite.max_steps = 5000000;
  struct Case {
    std::set<std::pair<int, int>> h, v;
    std::vector<int> s;
  };
  std::vector<Case> cases;
  // Checkerboard: solvable.
  cases.push_back({{{1, 2}, {2, 1}}, {{1, 2}, {2, 1}}, {}});
  // No vertical compatibility: unsolvable.
  cases.push_back({{{1, 2}, {2, 1}}, {}, {}});
  // Checkerboard with a contradictory initial row: unsolvable.
  cases.push_back({{{1, 2}, {2, 1}}, {{1, 2}, {2, 1}}, {1, 1}});
  for (const Case& c : cases) {
    ExponentialTilingInstance t;
    t.n = 1;
    t.m = 2;
    t.horizontal = c.h;
    t.vertical = c.v;
    t.initial_row = c.s;
    bool solvable = SolveTilingBruteForce(t);
    auto encoding = EncodeExponentialTiling(t);
    ASSERT_TRUE(encoding.ok());
    UcqOmq lhs{encoding->qt.data_schema, encoding->qt.tgds,
               UnionOfCQs({encoding->qt.query})};
    auto contained =
        CheckUcqOmqContainment(lhs, encoding->qt_prime, options);
    ASSERT_TRUE(contained.ok()) << contained.status().ToString();
    // T solvable iff QT ⊄ Q'T.
    EXPECT_EQ(contained->outcome == ContainmentOutcome::kNotContained,
              solvable);
  }
}

}  // namespace
}  // namespace omqc
