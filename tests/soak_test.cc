// Tests for the soak subsystem (src/soak): scenario-factory determinism
// and class/polarity certificates, the differential runner's agreement on
// clean corpora, planted-bug detection via the flip hook, and the
// minimizer's convergence to a small 1-minimal repro.

#include "soak/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/eval.h"
#include "core/frontend.h"
#include "soak/differential.h"
#include "soak/minimize.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

// ---------- Factory determinism ----------

TEST(ScenarioFactoryTest, SameSpecYieldsByteIdenticalPrograms) {
  for (uint64_t i = 0; i < 16; ++i) {
    ScenarioSpec spec = SpecForIndex(42, i);
    Scenario a = MakeScenario(spec);
    Scenario b = MakeScenario(spec);
    EXPECT_EQ(a.program_text, b.program_text) << "index " << i;
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.tiles, b.tiles);
    EXPECT_EQ(a.witness_tuple, b.witness_tuple);
  }
}

TEST(ScenarioFactoryTest, SpecStreamIsAFunctionOfSeedAndIndex) {
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(SpecForIndex(7, i).ToString(), SpecForIndex(7, i).ToString());
  }
  // Different master seeds decorrelate (at least one spec differs).
  bool differs = false;
  for (uint64_t i = 0; i < 8; ++i) {
    if (SpecForIndex(1, i).ToString() != SpecForIndex(2, i).ToString()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ScenarioFactoryTest, CorpusMixesClassesAndPolarities) {
  std::set<TgdClass> classes;
  std::set<bool> polarities;
  for (uint64_t i = 0; i < 64; ++i) {
    ScenarioSpec spec = SpecForIndex(5, i);
    classes.insert(spec.tgd_class);
    polarities.insert(spec.contained);
  }
  EXPECT_GE(classes.size(), 3u);
  EXPECT_EQ(polarities.size(), 2u);
}

// ---------- Certificates ----------

TEST(ScenarioFactoryTest, OntologyLandsInItsTargetClass) {
  for (uint64_t i = 0; i < 24; ++i) {
    ScenarioSpec spec = SpecForIndex(9, i);
    Scenario s = MakeScenario(spec);
    EXPECT_TRUE(SatisfiesClass(s.program.tgds, spec.tgd_class))
        << spec.ToString() << "\n" << s.program_text;
  }
}

TEST(ScenarioFactoryTest, WitnessTupleIsACertainAnswer) {
  for (uint64_t i = 0; i < 12; ++i) {
    Scenario s = MakeScenario(SpecForIndex(13, i));
    Schema schema = InferProgramDataSchema(s.program);
    auto q1 = SingleQueryNamed(s.program, schema, kLhsQuery);
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    auto holds = EvalTuple(*q1, s.program.facts, s.witness_tuple);
    ASSERT_TRUE(holds.ok()) << holds.status().ToString();
    EXPECT_TRUE(*holds) << s.spec.ToString() << "\n" << s.program_text;
  }
}

TEST(ScenarioFactoryTest, PolarityCertificatesMatchTheReferenceEngine) {
  for (uint64_t i = 0; i < 12; ++i) {
    Scenario s = MakeScenario(SpecForIndex(21, i));
    Schema schema = InferProgramDataSchema(s.program);
    auto q1 = SingleQueryNamed(s.program, schema, kLhsQuery);
    auto q2 = SingleQueryNamed(s.program, schema, kRhsQuery);
    ASSERT_TRUE(q1.ok() && q2.ok());
    ContainmentOptions copts;
    copts.rewrite.max_queries = 120;
    copts.rewrite.max_steps = 20000;
    copts.rewrite.prune_subsumed = true;
    auto result = CheckContainment(*q1, *q2, copts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Budget-limited guarded scenarios may come back kUnknown; a definite
    // engine verdict must match the construction oracle.
    if (result->outcome != ContainmentOutcome::kUnknown) {
      EXPECT_EQ(result->outcome, s.expected)
          << s.spec.ToString() << "\n" << s.program_text;
    }
  }
}

// ---------- Differential runner ----------

TEST(DifferentialTest, CleanCorpusHasNoDiscrepancies) {
  OmqCache cache;
  for (uint64_t i = 0; i < 10; ++i) {
    Scenario s = MakeScenario(SpecForIndex(33, i));
    DifferentialOptions options;
    options.thread_counts = {1, 2};
    options.cache = &cache;
    options.fault_seed = 1000 + i;
    auto verdict = RunDifferential(s, options);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_FALSE(verdict->discrepancy)
        << verdict->description << "\n" << s.program_text;
  }
}

TEST(DifferentialTest, PlantedFlipIsCaught) {
  ScenarioSpec spec;
  spec.seed = 99;
  spec.tgd_class = TgdClass::kLinear;
  spec.contained = true;
  Scenario s = MakeScenario(spec);
  DifferentialOptions options;
  options.thread_counts = {1, 2};
  options.flip_config = "threads1";
  auto verdict = RunDifferential(s, options);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->discrepancy);
  EXPECT_NE(verdict->description.find("threads1"), std::string::npos)
      << verdict->description;
}

TEST(DifferentialTest, GovernedConfigReproducesTheDefiniteVerdict) {
  // Whatever budget/fault plan the seed draws, the governed config's
  // reported outcome must match the other configs (a trip retries
  // ungoverned), so no seed below may flag a discrepancy.
  Scenario s = MakeScenario(SpecForIndex(3, 1));
  for (uint64_t fault_seed = 1; fault_seed <= 8; ++fault_seed) {
    DifferentialOptions options;
    options.thread_counts = {1};
    options.with_cache_off = false;
    options.fault_seed = fault_seed;
    auto verdict = RunDifferential(s, options);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_FALSE(verdict->discrepancy)
        << "fault seed " << fault_seed << ": " << verdict->description;
  }
}

// ---------- Minimizer ----------

TEST(MinimizeTest, ConvergesOnAPlantedDiscrepancy) {
  ScenarioSpec spec;
  spec.seed = 77;
  spec.tgd_class = TgdClass::kNonRecursive;
  spec.length = 5;
  spec.decoy_tiles = 2;
  spec.contained = true;
  Scenario s = MakeScenario(spec);

  DifferentialOptions options;
  options.thread_counts = {1, 2};
  options.with_cache_off = false;
  options.flip_config = "threads1";
  auto verdict = RunDifferential(s.program, options);
  ASSERT_TRUE(verdict.ok());
  ASSERT_TRUE(verdict->discrepancy);

  MinimizeStats stats;
  Program minimized = MinimizeProgram(
      s.program,
      [&options](const Program& candidate) {
        auto probe = RunDifferential(candidate, options);
        return probe.ok() && probe->discrepancy;
      },
      &stats);

  // The acceptance bar: the planted verdict flip shrinks to <= 10 tgds.
  EXPECT_LE(minimized.tgds.size(), 10u);
  EXPECT_LT(minimized.tgds.size(), s.program.tgds.size());
  EXPECT_GT(stats.probes, 0u);
  // The survivor still reproduces...
  auto still = RunDifferential(minimized, options);
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still->discrepancy);
  // ...and 1-minimality: deleting any remaining tgd kills the repro only
  // if the predicate says so — spot-check that the minimizer reached a
  // fixed point by re-running it.
  MinimizeStats again;
  Program twice = MinimizeProgram(
      minimized,
      [&options](const Program& candidate) {
        auto probe = RunDifferential(candidate, options);
        return probe.ok() && probe->discrepancy;
      },
      &again);
  EXPECT_EQ(twice.tgds.size(), minimized.tgds.size());
  EXPECT_EQ(twice.facts.size(), minimized.facts.size());
}

TEST(MinimizeTest, RenderReproIsReparsable) {
  Scenario s = MakeScenario(SpecForIndex(55, 2));
  std::string repro = RenderRepro(s.program, "line one\nline two");
  EXPECT_NE(repro.find("% line one"), std::string::npos);
  EXPECT_NE(repro.find("% line two"), std::string::npos);
  auto parsed = ParseProgram(repro);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tgds.size(), s.program.tgds.size());
  EXPECT_EQ(parsed->queries.size(), s.program.queries.size());
}

TEST(MinimizeTest, StartThatDoesNotReproduceIsReturnedUnchanged) {
  Scenario s = MakeScenario(SpecForIndex(55, 3));
  MinimizeStats stats;
  Program same = MinimizeProgram(
      s.program, [](const Program&) { return false; }, &stats);
  EXPECT_EQ(SerializeProgram(same), s.program_text);
}

}  // namespace
}  // namespace omqc
