// Tests for the Sec. 5 C-tree machinery: tree decompositions, guarded
// unraveling (Lemma 37), the ΓS,l encoding, consistency and decoding
// (Lemmas 22/41).

#include <gtest/gtest.h>

#include "core/ctree.h"
#include "logic/homomorphism.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) { return ParseDatabase(text).value(); }

/// A small C-tree by hand: core {a,b} with R(a,b), and a tree part
/// R(b,c), R(c,d).
struct HandMadeCTree {
  Database db = Db("R(a,b). R(b,c). R(c,d).");
  Instance core = Db("R(a,b).");
  TreeDecomposition decomposition;

  HandMadeCTree() {
    decomposition.bags = {{Term::Constant("a"), Term::Constant("b")},
                          {Term::Constant("b"), Term::Constant("c")},
                          {Term::Constant("c"), Term::Constant("d")}};
    decomposition.parent = {-1, 0, 1};
  }
};

TEST(DecompositionTest, ValidatesHandMadeCTree) {
  HandMadeCTree fixture;
  EXPECT_TRUE(
      ValidateDecomposition(fixture.decomposition, fixture.db).ok());
  EXPECT_TRUE(IsGuardedExcept(fixture.decomposition, fixture.db, {0}));
  EXPECT_TRUE(
      ValidateCTree(fixture.decomposition, fixture.db, fixture.core).ok());
  EXPECT_EQ(fixture.decomposition.Width(), 1);
}

TEST(DecompositionTest, RejectsAtomOutsideBags) {
  HandMadeCTree fixture;
  fixture.db.Add(ParseAtom("R(a,d)").value());  // spans bags 0 and 2
  EXPECT_FALSE(
      ValidateDecomposition(fixture.decomposition, fixture.db).ok());
}

TEST(DecompositionTest, RejectsDisconnectedTermOccurrences) {
  TreeDecomposition decomposition;
  decomposition.bags = {{Term::Constant("a")},
                        {Term::Constant("b")},
                        {Term::Constant("a")}};  // 'a' in bags 0 and 2 only
  decomposition.parent = {-1, 0, 1};
  Database db = Db("P(a). P(b).");
  EXPECT_FALSE(ValidateDecomposition(decomposition, db).ok());
}

TEST(DecompositionTest, GuardednessFailsWithoutCoveringAtom) {
  TreeDecomposition decomposition;
  decomposition.bags = {{Term::Constant("a")},
                        {Term::Constant("a"), Term::Constant("b")}};
  decomposition.parent = {-1, 0};
  Database db = Db("P(a). P(b).");  // no atom covers {a,b}
  EXPECT_TRUE(ValidateDecomposition(decomposition, db).ok());
  EXPECT_FALSE(IsGuardedExcept(decomposition, db, {0}));
  EXPECT_TRUE(IsGuardedExcept(decomposition, db, {0, 1}));
}

TEST(UnravelTest, ProducesValidCTree) {
  Database db = Db("R(a,b). R(b,c). R(c,a). P(b).");
  auto unraveling =
      GuardedUnravel(db, {Term::Constant("a"), Term::Constant("b")}, 3);
  ASSERT_TRUE(unraveling.ok()) << unraveling.status().ToString();
  Instance core =
      unraveling->instance.InducedBy(unraveling->decomposition.bags[0]);
  EXPECT_TRUE(ValidateCTree(unraveling->decomposition,
                            unraveling->instance, core)
                  .ok());
}

TEST(UnravelTest, BackHomomorphismIsSound) {
  Database db = Db("R(a,b). R(b,c). R(c,a).");
  auto unraveling = GuardedUnravel(db, {Term::Constant("a")}, 4).value();
  // Every atom of the unraveling maps back into D.
  for (const Atom& atom : unraveling.instance.atoms()) {
    Atom mapped = unraveling.back_homomorphism.Apply(atom);
    EXPECT_TRUE(db.Contains(mapped)) << atom.ToString();
  }
}

TEST(UnravelTest, UnravelingBreaksCycles) {
  // The 3-cycle R(a,b),R(b,c),R(c,a) has no C-tree decomposition of width
  // 1 keeping all three atoms in distinct bags... the unraveling around
  // {a} is acyclic: the cycle query does not map into it while shorter
  // paths do.
  Database db = Db("R(a,b). R(b,c). R(c,a).");
  auto unraveling = GuardedUnravel(db, {Term::Constant("a")}, 5).value();
  ConjunctiveQuery cycle =
      ParseQuery("Q() :- R(X,Y), R(Y,Z), R(Z,X)").value();
  EXPECT_FALSE(HoldsIn(cycle, unraveling.instance));
  ConjunctiveQuery path =
      ParseQuery("Q() :- R(X,Y), R(Y,Z), R(Z,W)").value();
  EXPECT_TRUE(HoldsIn(path, unraveling.instance));
}

TEST(EncodingTest, RoundTripPreservesTheDatabase) {
  HandMadeCTree fixture;
  auto encoded =
      EncodeCTree(fixture.db, fixture.decomposition, fixture.core, 2);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_TRUE(CheckConsistency(*encoded).ok());
  auto decoded = DecodeTree(*encoded);
  ASSERT_TRUE(decoded.ok());
  // The decoded database is isomorphic to the original: same size, and
  // each maps homomorphically into the other.
  EXPECT_EQ(decoded->size(), fixture.db.size());
  ConjunctiveQuery chain =
      ParseQuery("Q() :- R(X,Y), R(Y,Z), R(Z,W)").value();
  EXPECT_TRUE(HoldsIn(chain, *decoded));
}

TEST(EncodingTest, CoreMarkersPropagate) {
  HandMadeCTree fixture;
  EncodedTree encoded =
      EncodeCTree(fixture.db, fixture.decomposition, fixture.core, 2)
          .value();
  // The root carries core markers for its names.
  EXPECT_FALSE(encoded.labels[0].core_names.empty());
  // Condition (4): any core marker deeper in the tree also sits on its
  // parent (checked by CheckConsistency, evidenced here).
  EXPECT_TRUE(CheckConsistency(encoded).ok());
}

TEST(EncodingTest, ConsistencyCatchesStrayCoreMarker) {
  HandMadeCTree fixture;
  EncodedTree encoded =
      EncodeCTree(fixture.db, fixture.decomposition, fixture.core, 2)
          .value();
  // Inject a core marker at a leaf whose parent lacks it.
  EncodedTree broken = encoded;
  int stray = 1;  // a core name not present at node 2's parent chain...
  broken.labels[2].names.insert(stray);
  broken.labels[2].core_names.insert(stray);
  EXPECT_FALSE(CheckConsistency(broken).ok());
}

TEST(EncodingTest, ConsistencyCatchesUndeclaredAtomArguments) {
  HandMadeCTree fixture;
  EncodedTree encoded =
      EncodeCTree(fixture.db, fixture.decomposition, fixture.core, 2)
          .value();
  EncodedTree broken = encoded;
  broken.labels[1].atoms.insert(
      {Predicate::Get("R", 2), std::vector<int>{7, 8}});
  EXPECT_FALSE(CheckConsistency(broken).ok());
}

TEST(EncodingTest, ConsistencyCatchesUnguardedNode) {
  // A node with two names but no covering atom anywhere b-connected.
  EncodedTree tree;
  tree.l = 1;
  tree.width = 2;
  tree.labels.resize(2);
  tree.parent = {-1, 0};
  tree.labels[0].names = {0};
  tree.labels[0].core_names = {0};
  tree.labels[0].atoms.insert(
      {Predicate::Get("P", 1), std::vector<int>{0}});
  tree.labels[1].names = {1, 2};
  // No atom covering {1,2}: condition (5) fails.
  EXPECT_FALSE(CheckConsistency(tree).ok());
  tree.labels[1].atoms.insert(
      {Predicate::Get("R", 2), std::vector<int>{1, 2}});
  EXPECT_TRUE(CheckConsistency(tree).ok());
}

TEST(DecodingTest, SharedNamesMergeAcrossNeighbors) {
  // The root and its child share name 1: both occurrences decode to one
  // constant; names 0 (root) and 2 (child, a tree name) stay distinct.
  EncodedTree tree;
  tree.l = 2;
  tree.width = 2;
  tree.labels.resize(2);
  tree.parent = {-1, 0};
  tree.labels[0].names = {0, 1};
  tree.labels[0].core_names = {0, 1};
  tree.labels[0].atoms.insert(
      {Predicate::Get("R", 2), std::vector<int>{0, 1}});
  tree.labels[1].names = {1, 2};
  tree.labels[1].core_names = {1};
  tree.labels[1].atoms.insert(
      {Predicate::Get("R", 2), std::vector<int>{1, 2}});
  ASSERT_TRUE(CheckConsistency(tree).ok()) << CheckConsistency(tree).ToString();
  Database decoded = DecodeTree(tree).value();
  EXPECT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded.ActiveDomain().size(), 3u);  // 1 shared, 0 and 2 distinct
}

TEST(DecodingTest, NameReuseInDisconnectedBranchesStaysDistinct) {
  // Name 5 used in two sibling subtrees with a parent lacking it: the
  // decodings must be different constants.
  EncodedTree tree;
  tree.l = 1;
  tree.width = 1;
  tree.labels.resize(3);
  tree.parent = {-1, 0, 0};
  tree.labels[0].names = {0};
  tree.labels[0].core_names = {0};
  tree.labels[0].atoms.insert(
      {Predicate::Get("P", 1), std::vector<int>{0}});
  tree.labels[1].names = {1};
  tree.labels[1].atoms.insert(
      {Predicate::Get("P", 1), std::vector<int>{1}});
  tree.labels[2].names = {1};
  tree.labels[2].atoms.insert(
      {Predicate::Get("Q", 1), std::vector<int>{1}});
  ASSERT_TRUE(CheckConsistency(tree).ok());
  Database decoded = DecodeTree(tree).value();
  EXPECT_EQ(decoded.ActiveDomain().size(), 3u);
}

}  // namespace
}  // namespace omqc
