// Tests for the DLGP-style program parser.

#include <gtest/gtest.h>

#include "tgd/parser.h"

namespace omqc {
namespace {

TEST(ParserTest, ParsesTgd) {
  auto tgd = ParseTgd("R(X,Y), P(Y) -> T(X,Z)");
  ASSERT_TRUE(tgd.ok()) << tgd.status().ToString();
  EXPECT_EQ(tgd->body.size(), 2u);
  EXPECT_EQ(tgd->head.size(), 1u);
  EXPECT_EQ(tgd->ExistentialVariables().size(), 1u);
  EXPECT_EQ(tgd->ToString(), "R(X,Y), P(Y) -> T(X,Z)");
}

TEST(ParserTest, ParsesFactTgd) {
  auto tgd = ParseTgd("-> Tile(X)");
  ASSERT_TRUE(tgd.ok());
  EXPECT_TRUE(tgd->IsFactTgd());
  auto tgd2 = ParseTgd("true -> Tile(X)");
  ASSERT_TRUE(tgd2.ok());
  EXPECT_TRUE(tgd2->IsFactTgd());
}

TEST(ParserTest, ParsesQueryWithAnswerVariables) {
  auto q = ParseQuery("Q(X,Y) :- R(X,Z), S(Z,Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->answer_vars.size(), 2u);
  EXPECT_EQ(q->body.size(), 2u);
}

TEST(ParserTest, ParsesBooleanQuery) {
  auto q = ParseQuery("Q() :- R(X,Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
}

TEST(ParserTest, ParsesConstantsVariablesQuoted) {
  auto atom = ParseAtom("R(X, abc, 'Hello World', 42)");
  ASSERT_TRUE(atom.ok()) << atom.status().ToString();
  EXPECT_TRUE(atom->args[0].IsVariable());
  EXPECT_TRUE(atom->args[1].IsConstant());
  EXPECT_TRUE(atom->args[2].IsConstant());
  EXPECT_EQ(atom->args[2].ToString(), "Hello World");
  EXPECT_TRUE(atom->args[3].IsConstant());
}

TEST(ParserTest, UnderscorePrefixIsVariable) {
  auto atom = ParseAtom("R(_x, y)");
  ASSERT_TRUE(atom.ok());
  EXPECT_TRUE(atom->args[0].IsVariable());
  EXPECT_TRUE(atom->args[1].IsConstant());
}

TEST(ParserTest, ParsesFullProgram) {
  auto program = ParseProgram(R"(
    % An ontology with a query and data.
    R(X,Y) -> P(Y).
    P(X) -> T(X,Z).
    Q(X) :- T(X,Y).
    R(a,b).
    R(b,c).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->tgds.size(), 2u);
  EXPECT_EQ(program->queries.size(), 1u);
  EXPECT_EQ(program->facts.size(), 2u);
}

TEST(ParserTest, QueriesSharingANameFormAUcq) {
  auto program = ParseProgram("Q(X) :- R(X). Q(X) :- P(X). Other(X) :- T(X).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->QueriesNamed("Q").size(), 2u);
  EXPECT_EQ(program->QueriesNamed("Other").size(), 1u);
  EXPECT_TRUE(program->QueriesNamed("Missing").empty());
}

TEST(ParserTest, NullaryAtoms) {
  auto program = ParseProgram("Goal(). C0(), C1() -> Goal().");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->facts.size(), 1u);
  EXPECT_EQ(program->tgds.size(), 1u);
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto program = ParseProgram("R(X,Y) -> ");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, RejectsFactWithVariables) {
  auto program = ParseProgram("R(X,b).");
  ASSERT_FALSE(program.ok());
}

TEST(ParserTest, RejectsArityMismatch) {
  auto program = ParseProgram("R(a,b). R(a) -> P(a).");
  ASSERT_FALSE(program.ok());
}

TEST(ParserTest, RejectsUnterminatedQuote) {
  auto program = ParseProgram("R('abc.");
  ASSERT_FALSE(program.ok());
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto program = ParseProgram(
      "% leading comment\n  R(a,b). % trailing comment\n%final");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->facts.size(), 1u);
}

TEST(ParserTest, ParseUCQRejectsMixedContent) {
  EXPECT_FALSE(ParseUCQ("R(a,b).").ok());
  EXPECT_TRUE(ParseUCQ("Q() :- R(X,Y). Q() :- P(X).").ok());
}

TEST(ParserTest, MultiAtomQueryHeadRejected) {
  EXPECT_FALSE(ParseProgram("Q(X), P(X) :- R(X).").ok());
}

}  // namespace
}  // namespace omqc
