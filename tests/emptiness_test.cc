// Unit tests for the antichain 2WAPA emptiness engine
// (automata/emptiness.h): verdicts against handcrafted automata, the
// subsumption and memoization counters, budgets, and governor trips.
// Cross-engine agreement on randomized inputs lives in
// emptiness_agreement_test.cc.

#include "automata/emptiness.h"

#include <gtest/gtest.h>

#include <chrono>

#include "automata/downward.h"
#include "base/governor.h"
#include "core/guarded_automata.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

/// Accepts iff some descendant (or the node itself) carries label 1.
Twapa Reach1(int num_labels) {
  Twapa a;
  a.num_states = 1;
  a.num_labels = num_labels;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int, int label) {
    return label == 1 ? Formula::True() : Diamond(Move::kChild, 0);
  };
  return a;
}

/// Accepts iff every node carries label 0.
Twapa All0(int num_labels) {
  Twapa a;
  a.num_states = 1;
  a.num_labels = num_labels;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int, int label) {
    return label == 0 ? Box(Move::kChild, 0) : Formula::False();
  };
  return a;
}

/// A one-label chain: state i requires a child in state i+1; the last
/// state accepts. Interns exactly `length` obligation sets.
Twapa Chain(int length) {
  Twapa a;
  a.num_states = length;
  a.num_labels = 1;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [length](int state, int) {
    return state == length - 1 ? Formula::True()
                               : Diamond(Move::kChild, state + 1);
  };
  return a;
}

EmptinessOptions Antichain(size_t num_threads = 1) {
  EmptinessOptions options;
  options.engine = EmptinessEngine::kAntichain;
  options.num_threads = num_threads;
  return options;
}

TEST(EmptinessTest, NonEmptyReachability) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto empty = DownwardEmptiness(Reach1(2), Antichain(threads));
    ASSERT_TRUE(empty.ok()) << empty.status().ToString();
    EXPECT_FALSE(*empty) << "threads=" << threads;
  }
}

TEST(EmptinessTest, UnsatisfiableIntersectionIsEmpty) {
  // "some node has label 1" ∧ "every node has label 0" is contradictory.
  auto both = Intersect(Reach1(2), All0(2)).value();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto empty = DownwardEmptiness(both, Antichain(threads));
    ASSERT_TRUE(empty.ok()) << empty.status().ToString();
    EXPECT_TRUE(*empty) << "threads=" << threads;
  }
}

TEST(EmptinessTest, SatisfiableIntersection) {
  Twapa root1;
  root1.num_states = 1;
  root1.num_labels = 2;
  root1.initial_state = 0;
  root1.delta = [](int, int label) {
    return label == 1 ? Formula::True() : Formula::False();
  };
  auto both = Intersect(Reach1(2), root1).value();
  EXPECT_FALSE(DownwardEmptiness(both, Antichain()).value());
}

TEST(EmptinessTest, RejectsTwoWayAutomata) {
  Twapa two_way;
  two_way.num_states = 1;
  two_way.num_labels = 1;
  two_way.initial_state = 0;
  two_way.delta = [](int, int) { return Diamond(Move::kUp, 0); };
  auto result = DownwardEmptiness(two_way, Antichain());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(EmptinessTest, RejectsSafetyMode) {
  Twapa safety = Complement(Reach1(2));
  auto result = DownwardEmptiness(safety, Antichain());
  EXPECT_FALSE(result.ok());
}

TEST(EmptinessTest, ReferenceEngineDispatch) {
  EmptinessOptions options;
  options.engine = EmptinessEngine::kReference;
  EXPECT_FALSE(DownwardEmptiness(Reach1(2), options).value());
  auto both = Intersect(Reach1(2), All0(2)).value();
  EXPECT_TRUE(DownwardEmptiness(both, options).value());
}

TEST(EmptinessTest, SubsumedSetsAreNeverExpanded) {
  // δ(0) = (⟨*⟩1 ∧ [*]2) ∨ ⟨*⟩2 spawns the incomparable children {1,2}
  // and {2}; states 1 and 2 accept outright. The serial engine proves
  // {1,2} productive first (leaf) and must then resolve {2} ⊆ {1,2} by
  // antichain subsumption without expanding it.
  Twapa a;
  a.num_states = 3;
  a.num_labels = 1;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int state, int) {
    if (state != 0) return Formula::True();
    return Formula::Or(
        Formula::And(Diamond(Move::kChild, 1), Box(Move::kChild, 2)),
        Diamond(Move::kChild, 2));
  };
  EmptinessStats stats;
  EmptinessOptions options = Antichain();
  options.stats = &stats;
  auto empty = DownwardEmptiness(a, options);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_FALSE(*empty);
  EXPECT_EQ(stats.states_explored, 2u) << "{0} and {1,2} only";
  EXPECT_EQ(stats.states_subsumed, 1u) << "{2} must ride the antichain";
  EXPECT_GE(stats.antichain_size, 1u);
}

TEST(EmptinessTest, StatsAreRecorded) {
  auto both = Intersect(Reach1(2), All0(2)).value();
  EmptinessStats stats;
  EmptinessOptions options = Antichain();
  options.stats = &stats;
  ASSERT_TRUE(DownwardEmptiness(both, options).value());
  EXPECT_GT(stats.states_explored, 0u);
  EXPECT_GE(stats.emptiness_rounds, 1u);
  EXPECT_GT(stats.dnf_cache_misses, 0u);
  // An empty language has no productive sets at all.
  EXPECT_EQ(stats.antichain_size, 0u);

  EmptinessStats merged;
  merged.Merge(stats);
  merged.Merge(stats);
  EXPECT_EQ(merged.states_explored, 2 * stats.states_explored);
  EXPECT_EQ(merged.antichain_size, stats.antichain_size) << "max, not sum";
}

TEST(EmptinessTest, MaxStatesBudget) {
  EmptinessOptions options = Antichain();
  options.max_states = 3;
  auto result = DownwardEmptiness(Chain(10), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EmptinessTest, ExpiredGovernorDeadlineTrips) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ResourceGovernor governor;
    governor.set_deadline_after(std::chrono::nanoseconds(0));
    EmptinessOptions options = Antichain(threads);
    options.governor = &governor;
    auto result = DownwardEmptiness(Chain(200), options);
    // The engine probes per expanded set, so a 200-set chain cannot finish
    // before the clock stride samples the expired deadline.
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

// ---- Prop. 25 composition over an explicit ΓS,l alphabet. ----

TEST(EmptinessTest, Prop25EmptinessOnGammaAlphabet) {
  Schema schema;
  schema.Add(Predicate::Get("r", 2));
  schema.Add(Predicate::Get("A", 1));
  auto alphabet = EnumerateGammaAlphabet(schema, 1, 1, 500000).value();
  Twapa consistency = ConsistencyAutomaton(alphabet);
  Twapa has_r = AtomPresenceAutomaton(alphabet, Predicate::Get("r", 2));
  auto c_and_r = Intersect(consistency, has_r).value();
  Twapa has_missing =
      AtomPresenceAutomaton(alphabet, Predicate::Get("missing", 1));
  auto c_and_missing = Intersect(consistency, has_missing).value();

  for (size_t threads : {size_t{1}, size_t{4}}) {
    EmptinessStats stats;
    EmptinessOptions options = Antichain(threads);
    options.max_states = 20000;
    options.stats = &stats;
    auto nonempty = DownwardEmptiness(c_and_r, options);
    ASSERT_TRUE(nonempty.ok()) << nonempty.status().ToString();
    EXPECT_FALSE(*nonempty) << "threads=" << threads;

    auto is_empty = DownwardEmptiness(c_and_missing, options);
    ASSERT_TRUE(is_empty.ok()) << is_empty.status().ToString();
    EXPECT_TRUE(*is_empty) << "threads=" << threads;
    // The empty case explores to the fixpoint; obligation sets share
    // states, so the per-(state,label) memo must see reuse there. Only
    // asserted serially: parallel workers keep private memos, and a
    // worker's own chunk need not repeat a (state,label) pair.
    if (threads == 1) {
      EXPECT_GT(stats.dnf_cache_hits, 0u);
    }
  }
}

}  // namespace
}  // namespace omqc
