// Tests for the tgd class recognizers (Sec. 2), including the two sets of
// Figure 1 (sticky vs. non-sticky) and the marking procedure itself.

#include <gtest/gtest.h>

#include "tgd/classify.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

TgdSet Tgds(const std::string& text) {
  auto tgds = ParseTgds(text);
  EXPECT_TRUE(tgds.ok()) << tgds.status().ToString();
  return tgds.value();
}

TEST(ClassifyTest, LinearRecognition) {
  EXPECT_TRUE(IsLinear(Tgds("R(X,Y) -> P(Y). P(X) -> T(X,Z).")));
  EXPECT_FALSE(IsLinear(Tgds("R(X,Y), P(Y) -> T(X,Y).")));
  EXPECT_TRUE(IsLinear(Tgds("-> P(a).")));  // fact tgds are linear
}

TEST(ClassifyTest, GuardedRecognition) {
  // R(X,Y) guards {X,Y}.
  EXPECT_TRUE(IsGuarded(Tgds("R(X,Y), P(Y) -> T(X,Z).")));
  // No atom contains both X and Z.
  EXPECT_FALSE(IsGuarded(Tgds("R(X,Y), P(Y,Z) -> T(X,Z).")));
  // Linear implies guarded.
  EXPECT_TRUE(IsGuarded(Tgds("R(X,Y) -> P(Y).")));
}

TEST(ClassifyTest, FullRecognition) {
  EXPECT_TRUE(IsFull(Tgds("R(X,Y) -> P(Y).")));
  EXPECT_FALSE(IsFull(Tgds("R(X,Y) -> T(Y,Z).")));
}

TEST(ClassifyTest, NonRecursiveRecognition) {
  EXPECT_TRUE(IsNonRecursive(Tgds("R(X,Y) -> P(Y). P(X) -> T(X).")));
  EXPECT_FALSE(IsNonRecursive(Tgds("R(X,Y) -> P(Y). P(X) -> R(X,X).")));
  EXPECT_FALSE(IsNonRecursive(Tgds("P(X) -> P(X).")));  // self-loop
}

TEST(ClassifyTest, StratificationMatchesNonRecursiveness) {
  TgdSet acyclic = Tgds("R(X,Y) -> P(Y). P(X) -> T(X).");
  auto strat = Stratify(acyclic);
  ASSERT_TRUE(strat.has_value());
  // µ(R) < µ(P) < µ(T) (Definition 3, condition 2).
  EXPECT_LT(strat->stratum_of[Predicate::Get("R", 2)],
            strat->stratum_of[Predicate::Get("P", 1)]);
  EXPECT_LT(strat->stratum_of[Predicate::Get("P", 1)],
            strat->stratum_of[Predicate::Get("T", 1)]);
  EXPECT_FALSE(Stratify(Tgds("P(X) -> P(X).")).has_value());
}

// Figure 1: the set whose first tgd *keeps the join variable* (S(Y,W)) is
// sticky — the join variable Y of the second tgd sticks to every inferred
// atom.
TEST(ClassifyTest, Figure1StickySet) {
  TgdSet tgds = Tgds(
      "T(X,Y,Z) -> S(Y,W)."
      "R(X,Y), P(Y,Z) -> T(X,Y,W).");
  EXPECT_TRUE(IsSticky(tgds));
}

// Figure 1: the set whose first tgd drops the join variable (S(X,W)) is
// NOT sticky: Y is marked in T's second position (it vanishes in S(X,W))
// and occurs twice in the second tgd's body.
TEST(ClassifyTest, Figure1NonStickySet) {
  TgdSet tgds = Tgds(
      "T(X,Y,Z) -> S(X,W)."
      "R(X,Y), P(Y,Z) -> T(X,Y,W).");
  EXPECT_FALSE(IsSticky(tgds));
}

TEST(ClassifyTest, Figure1MarkingDetails) {
  // Non-sticky set: in tgd 0 (T(X,Y,Z) -> S(X,W)), Y and Z vanish and are
  // marked; X survives. Propagation: tgd 1's head T(X,Y,W) carries Y at
  // T's (marked) second position, so Y is marked in tgd 1 — and occurs
  // twice there.
  TgdSet non_sticky = Tgds(
      "T(X,Y,Z) -> S(X,W)."
      "R(X,Y), P(Y,Z) -> T(X,Y,W).");
  StickyMarking marking = ComputeStickyMarking(non_sticky);
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("Y")) > 0);
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("Z")) > 0);
  EXPECT_FALSE(marking.marked[0].count(Term::Variable("X")) > 0);
  EXPECT_TRUE(marking.marked[1].count(Term::Variable("Y")) > 0);
  EXPECT_TRUE(marking.marked[1].count(Term::Variable("Z")) > 0);

  // Sticky set: S(Y,W) keeps Y; now X vanishes in tgd 0 and the marking
  // reaches tgd 1's X (single occurrence — harmless), while Y stays
  // unmarked.
  TgdSet sticky = Tgds(
      "T(X,Y,Z) -> S(Y,W)."
      "R(X,Y), P(Y,Z) -> T(X,Y,W).");
  StickyMarking marking_sticky = ComputeStickyMarking(sticky);
  EXPECT_TRUE(marking_sticky.marked[0].count(Term::Variable("X")) > 0);
  EXPECT_FALSE(marking_sticky.marked[1].count(Term::Variable("Y")) > 0);
  EXPECT_TRUE(marking_sticky.marked[1].count(Term::Variable("X")) > 0);
}

TEST(ClassifyTest, LosslessTgdsAreSticky) {
  // Every body variable reaches the head: nothing is ever marked.
  TgdSet tgds = Tgds("R(X,Y), P(Y,Z) -> T(X,Y,Z). T(X,Y,Z) -> U(Z,Y,X).");
  StickyMarking marking = ComputeStickyMarking(tgds);
  EXPECT_TRUE(marking.marked[0].empty());
  EXPECT_TRUE(marking.marked[1].empty());
  EXPECT_TRUE(IsSticky(tgds));
}

TEST(ClassifyTest, FrontierGuardedRecognition) {
  // Guarded implies frontier-guarded.
  EXPECT_TRUE(IsFrontierGuarded(Tgds("R(X,Y), P(Y) -> T(X,Y).")));
  // Unguarded body, but the frontier {X} is covered by one atom.
  TgdSet fg = Tgds("R(X,Y), P(Y,Z) -> U(X).");
  EXPECT_FALSE(IsGuarded(fg));
  EXPECT_TRUE(IsFrontierGuarded(fg));
  // Frontier {X,Z} split across atoms: not frontier-guarded.
  EXPECT_FALSE(IsFrontierGuarded(Tgds("R(X,Y), P(Y,Z) -> U(X,Z).")));
  // Fact tgds are trivially frontier-guarded.
  EXPECT_TRUE(IsFrontierGuarded(Tgds("-> Seed(X).")));
}

TEST(ClassifyTest, WeaklyAcyclicRecognition) {
  // Full recursive tgds are weakly acyclic (no existentials at all).
  EXPECT_TRUE(IsWeaklyAcyclic(Tgds("R(X,Y) -> R(Y,X).")));
  // The classic non-weakly-acyclic example: null feeds its own creator.
  EXPECT_FALSE(IsWeaklyAcyclic(Tgds("R(X,Y) -> R(Y,Z).")));
  // Non-recursive implies weakly acyclic.
  EXPECT_TRUE(IsWeaklyAcyclic(Tgds("R(X,Y) -> P(Y,Z). P(X,Y) -> T(X).")));
}

TEST(ClassifyTest, WeaklyGuardedRecognition) {
  // Not guarded, but the unguarded join is over unaffected positions.
  TgdSet tgds = Tgds("R(X,Y), P(Y,Z) -> T(X,Z).");
  EXPECT_FALSE(IsGuarded(tgds));
  EXPECT_TRUE(IsWeaklyGuarded(tgds));
}

TEST(ClassifyTest, AffectedPositions) {
  TgdSet tgds = Tgds("R(X) -> S(X,Y). S(X,Y) -> T(Y).");
  auto affected = AffectedPositions(tgds);
  EXPECT_TRUE(affected.count({Predicate::Get("S", 2), 1}) > 0);
  EXPECT_FALSE(affected.count({Predicate::Get("S", 2), 0}) > 0);
  // T's position inherits affectedness through Y.
  EXPECT_TRUE(affected.count({Predicate::Get("T", 1), 0}) > 0);
}

TEST(ClassifyTest, PrimaryClassDispatch) {
  EXPECT_EQ(PrimaryClass(TgdSet{}), TgdClass::kEmpty);
  EXPECT_EQ(PrimaryClass(Tgds("R(X,Y) -> P(Y).")), TgdClass::kLinear);
  EXPECT_EQ(PrimaryClass(Tgds("R(X,Y), P(Y) -> T(X,Y). T(X,Y) -> U(X).")),
            TgdClass::kNonRecursive);
  // Guarded and recursive, neither sticky nor NR.
  EXPECT_EQ(PrimaryClass(Tgds("R(X,Y), A(Y) -> A(X). A(X) -> R(X,Y).")),
            TgdClass::kGuarded);
  // Full recursive with a non-guarded join.
  EXPECT_EQ(PrimaryClass(Tgds("R(X,Y), R(Y,Z) -> R(X,Z).")),
            TgdClass::kFull);
}

TEST(ClassifyTest, StickyButNotGuardedNotNR) {
  // Recursive rules with an unguarded join on X; only Z ever gets marked
  // and it occurs once per body, so the set is sticky.
  TgdSet tgds = Tgds("R(X,Y), P(X,Z) -> T(X,Y,Z). T(X,Y,Z) -> R(Y,X).");
  EXPECT_TRUE(IsSticky(tgds));
  EXPECT_FALSE(IsGuarded(tgds));
  EXPECT_FALSE(IsNonRecursive(tgds));
  EXPECT_EQ(PrimaryClass(tgds), TgdClass::kSticky);
}

TEST(ClassifyTest, ReportAndToString) {
  ClassificationReport report = Classify(Tgds("R(X,Y) -> P(Y)."));
  EXPECT_TRUE(report.linear);
  EXPECT_TRUE(report.guarded);
  EXPECT_TRUE(report.sticky);
  EXPECT_TRUE(report.non_recursive);
  EXPECT_NE(report.ToString().find("linear"), std::string::npos);
}

TEST(ClassifyTest, UcqRewritableClasses) {
  EXPECT_TRUE(IsUcqRewritableClass(TgdClass::kLinear));
  EXPECT_TRUE(IsUcqRewritableClass(TgdClass::kNonRecursive));
  EXPECT_TRUE(IsUcqRewritableClass(TgdClass::kSticky));
  EXPECT_TRUE(IsUcqRewritableClass(TgdClass::kEmpty));
  EXPECT_FALSE(IsUcqRewritableClass(TgdClass::kGuarded));
  EXPECT_FALSE(IsUcqRewritableClass(TgdClass::kFull));
}

TEST(NormalizeTest, SingleHeadAtoms) {
  TgdSet tgds = Tgds("R(X,Y) -> P(X), T(X,Z).");
  TgdSet normalized = SingleHeadAtoms(tgds, "@t");
  for (const Tgd& tgd : normalized.tgds) {
    EXPECT_EQ(tgd.head.size(), 1u);
  }
}

TEST(NormalizeTest, SplitWithoutExistentialsIsDirect) {
  TgdSet tgds = Tgds("R(X,Y) -> P(X), T(X,Y).");
  TgdSet normalized = SingleHeadAtoms(tgds, "@t");
  EXPECT_EQ(normalized.size(), 2u);  // no auxiliary predicate needed
}

TEST(NormalizeTest, NormalizeHeadsBoundsExistentials) {
  TgdSet tgds = Tgds("R(X) -> S(X,Y,Z). P(X) -> U(Y,Y).");
  TgdSet normalized = NormalizeHeads(tgds, "@t");
  for (const Tgd& tgd : normalized.tgds) {
    ASSERT_EQ(tgd.head.size(), 1u);
    std::vector<Term> ex = tgd.ExistentialVariables();
    EXPECT_LE(ex.size(), 1u);
    if (!ex.empty()) {
      int occurrences = 0;
      for (const Term& t : tgd.head.front().args) {
        if (t == ex.front()) ++occurrences;
      }
      EXPECT_EQ(occurrences, 1);
    }
  }
}

TEST(NormalizeTest, PreservesLinearity) {
  TgdSet tgds = Tgds("R(X) -> S(X,Y), T(Y,Z).");
  EXPECT_TRUE(IsLinear(NormalizeHeads(tgds, "@t")));
  EXPECT_TRUE(IsGuarded(NormalizeHeads(tgds, "@t")));
  EXPECT_TRUE(IsNonRecursive(NormalizeHeads(tgds, "@t")));
}

}  // namespace
}  // namespace omqc
