// Unit tests for the base substrate: Status, Result, string and hash
// utilities, plus the program serialization round-trip.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/governor.h"
#include "base/hash_util.h"
#include "base/status.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad atom");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad atom");
  EXPECT_EQ(st, Status::InvalidArgument("bad atom"));
  EXPECT_FALSE(st == Status::InvalidArgument("other"));
}

TEST(StatusTest, AllCodesStringify) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kResourceExhausted, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kNotFound,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(StatusTest, GovernorCodesAndFactories) {
  Status deadline = Status::DeadlineExceeded("out of time");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: out of time");
  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "CANCELLED: caller gave up");
}

TEST(StatusTest, UnknownCodePrintsUnknown) {
  // An out-of-range code (e.g. from corrupted serialization) must not
  // crash the stringifier.
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(250)), "UNKNOWN");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  OMQC_ASSIGN_OR_RETURN(int h, Half(x));
  OMQC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());   // 3 is odd at the second step
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  std::vector<std::string> parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("n=", 42, ", f=", 1.5), "n=42, f=1.5");
}

TEST(HashUtilTest, CombinatorsAreOrderSensitive) {
  std::vector<int> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE((VectorHash<int>{}(a)), (VectorHash<int>{}(b)));
  EXPECT_EQ((VectorHash<int>{}(a)), (VectorHash<int>{}({1, 2, 3})));
  EXPECT_NE((PairHash<int, int>{}({1, 2})), (PairHash<int, int>{}({2, 1})));
}

TEST(SerializationTest, ProgramRoundTrip) {
  const char* text = R"(
    R(X,Y), P(Y) -> T(X,Z).
    -> Seed(c).
    Q(X) :- T(X,Y).
    Q(X) :- Seed(X).
    R(a,b). P(b).
  )";
  Program original = ParseProgram(text).value();
  std::string serialized = SerializeProgram(original);
  auto reparsed = ParseProgram(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << serialized;
  EXPECT_EQ(reparsed->tgds.ToString(), original.tgds.ToString());
  EXPECT_EQ(reparsed->queries.size(), original.queries.size());
  EXPECT_TRUE(reparsed->facts == original.facts);
  EXPECT_EQ(reparsed->QueriesNamed("Q").size(), 2u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
  pool.Wait();  // no pending work: returns immediately
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPoolTest, StopAbandonsQueuedTasksDeterministically) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  // Block the single worker so the remaining submissions stay queued.
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    ++ran;
  });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  size_t abandoned = pool.Stop();
  pool.Wait();  // must not hang on abandoned tasks
  // The blocked task ran (it had started); of the 10 queued tasks, the
  // abandoned ones never run — ran + abandoned accounts for all of them.
  EXPECT_EQ(static_cast<size_t>(ran.load()) + abandoned, 11u);
  // After Stop(), Submit is a no-op: the count stays put.
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(static_cast<size_t>(ran.load()) + abandoned, 11u);
}

TEST(ThreadPoolTest, WaitReturnsWhenTasksExitEarlyViaToken) {
  // A task observing a cancellation token and returning early counts as
  // finished: Wait() must return promptly rather than require the task's
  // "full" work.
  ThreadPool pool(2);
  CancellationToken token;
  token.Cancel();
  std::atomic<int> early_exits{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      if (token.cancelled()) {
        ++early_exits;
        return;  // cooperative early exit
      }
      std::this_thread::sleep_for(std::chrono::seconds(10));
    });
  }
  pool.Wait();
  EXPECT_EQ(early_exits.load(), 50);
}

void CountingTaskHook(void* ctx, size_t worker_index) {
  auto* seen = static_cast<std::atomic<size_t>*>(ctx);
  seen->fetch_add(worker_index + 1, std::memory_order_relaxed);
}

TEST(ThreadPoolTest, TaskHookSeesEveryTask) {
  std::atomic<size_t> seen{0};
  ThreadPool::SetTaskHookForTesting(&CountingTaskHook, &seen);
  {
    ThreadPool pool(1);  // single worker: every task reports index 0 (+1)
    for (int i = 0; i < 7; ++i) {
      pool.Submit([] {});
    }
    pool.Wait();
  }
  ThreadPool::SetTaskHookForTesting(nullptr, nullptr);
  EXPECT_EQ(seen.load(), 7u);
}

TEST(PrettifyTest, RenamesMachineConstantsOnly) {
  Database db =
      ParseDatabase("R('@f1_X','@f1_Y'). P('@f1_X'). P(user).").value();
  Database pretty = PrettifiedCopy(db);
  EXPECT_TRUE(pretty.Contains(ParseAtom("P(user)").value()));
  EXPECT_TRUE(pretty.Contains(ParseAtom("P(c0)").value()));
  EXPECT_TRUE(pretty.Contains(ParseAtom("R(c0,c1)").value()));
  EXPECT_EQ(pretty.size(), db.size());
}

}  // namespace
}  // namespace omqc
