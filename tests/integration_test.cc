// End-to-end integration tests: randomized cross-checks of the headline
// containment results against brute force, and a full university-domain
// scenario exercising parser → classification → evaluation → rewriting →
// containment → applications in one flow.

#include <gtest/gtest.h>

#include <random>

#include "core/applications.h"
#include "core/containment.h"
#include "core/explain.h"
#include "generators/tiling.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

// ---------- Randomized ETP sweep (Thm. 16) vs brute force. ----------

class EtpSweepTest : public ::testing::TestWithParam<uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, EtpSweepTest, ::testing::Range(1u, 9u));

TEST_P(EtpSweepTest, EncodingAgreesWithBruteForce) {
  std::mt19937 rng(GetParam());
  ExtendedTilingInstance etp;
  etp.k = 1;
  etp.n = 1;
  // m stays at 1: the PNEXP-hard construction already exceeds the
  // practical envelope at m = 2 with dense random relations (see
  // EXPERIMENTS.md, T1-NR); the m = 1 instances still sweep all 16
  // relation shapes and both containment outcomes across the seeds.
  etp.m = 1;
  // Random compatibility relations (each pair present with prob. 1/2).
  for (int i = 1; i <= etp.m; ++i) {
    for (int j = 1; j <= etp.m; ++j) {
      if (rng() % 2) etp.h1.insert({i, j});
      if (rng() % 2) etp.v1.insert({i, j});
      if (rng() % 2) etp.h2.insert({i, j});
      if (rng() % 2) etp.v2.insert({i, j});
    }
  }
  bool expected = SolveEtpBruteForce(etp);
  auto encoding = EncodeExtendedTiling(etp);
  ASSERT_TRUE(encoding.ok()) << encoding.status().ToString();
  ContainmentOptions options;
  options.rewrite.max_queries = 40000;
  options.rewrite.max_steps = 4000000;
  options.eval.chase_max_atoms = 1000000;
  auto contained = CheckContainment(encoding->q1, encoding->q2, options);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  ASSERT_NE(contained->outcome, ContainmentOutcome::kUnknown);
  EXPECT_EQ(contained->outcome == ContainmentOutcome::kContained, expected)
      << "seed=" << GetParam();
}

// ---------- Randomized exponential-tiling sweep (Thm. 34). ----------

class ExpTilingSweepTest : public ::testing::TestWithParam<uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ExpTilingSweepTest, ::testing::Range(1u, 7u));

TEST_P(ExpTilingSweepTest, EncodingAgreesWithBruteForce) {
  std::mt19937 rng(GetParam() * 97);
  ExponentialTilingInstance t;
  t.n = 1;
  t.m = 2;
  for (int i = 1; i <= t.m; ++i) {
    for (int j = 1; j <= t.m; ++j) {
      if (rng() % 2) t.horizontal.insert({i, j});
      if (rng() % 2) t.vertical.insert({i, j});
    }
  }
  if (rng() % 2) t.initial_row = {1 + static_cast<int>(rng() % 2)};
  bool solvable = SolveTilingBruteForce(t);
  auto encoding = EncodeExponentialTiling(t);
  ASSERT_TRUE(encoding.ok());
  ContainmentOptions options;
  options.rewrite.max_queries = 50000;
  options.rewrite.max_steps = 5000000;
  UcqOmq lhs{encoding->qt.data_schema, encoding->qt.tgds,
             UnionOfCQs({encoding->qt.query})};
  auto contained =
      CheckUcqOmqContainment(lhs, encoding->qt_prime, options);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  ASSERT_NE(contained->outcome, ContainmentOutcome::kUnknown);
  // T has a solution iff QT ⊄ Q'T.
  EXPECT_EQ(contained->outcome == ContainmentOutcome::kNotContained,
            solvable)
      << "seed=" << GetParam();
}

// ---------- University scenario: the full pipeline. ----------

TEST(UniversityScenarioTest, FullPipeline) {
  auto program = ParseProgram(R"(
    % --- ontology -------------------------------------------------
    Professor(X) -> Faculty(X).
    Lecturer(X) -> Faculty(X).
    Faculty(X) -> WorksFor(X,D), Department(D).
    Teaches(X,C) -> Faculty(X).
    Teaches(X,C), Attends(S,C) -> TaughtBy(S,X).
    % --- queries ---------------------------------------------------
    FacultyQ(X) :- Faculty(X).
    TeachersQ(X) :- Teaches(X,C).
    StudentsOf(S,X) :- TaughtBy(S,X).
    Mixed() :- Faculty(X), Department(D).
    % --- data ------------------------------------------------------
    Professor(turing).
    Lecturer(hopper).
    Teaches(turing, computability).
    Attends(knuth, computability).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  Schema data_schema;
  for (const char* p : {"Professor", "Lecturer"}) {
    data_schema.Add(Predicate::Get(p, 1));
  }
  data_schema.Add(Predicate::Get("Teaches", 2));
  data_schema.Add(Predicate::Get("Attends", 2));

  // Classification: the Teaches∧Attends join has no guard, so the set is
  // not guarded — but the predicate graph is acyclic (non-recursive), so
  // every static-analysis task below is exact.
  ClassificationReport report = Classify(program->tgds);
  EXPECT_FALSE(report.guarded);
  EXPECT_TRUE(report.non_recursive);
  EXPECT_TRUE(report.weakly_acyclic);

  // Evaluation.
  Omq faculty{data_schema, program->tgds,
              program->QueriesNamed("FacultyQ").disjuncts.front()};
  auto faculty_answers = EvalAll(faculty, program->facts);
  ASSERT_TRUE(faculty_answers.ok()) << faculty_answers.status().ToString();
  EXPECT_EQ(faculty_answers->size(), 2u);  // turing, hopper

  Omq students{data_schema, program->tgds,
               program->QueriesNamed("StudentsOf").disjuncts.front()};
  auto student_answers = EvalAll(students, program->facts);
  ASSERT_TRUE(student_answers.ok());
  ASSERT_EQ(student_answers->size(), 1u);  // (knuth, turing)

  // Containment: teachers are faculty; faculty need not teach.
  Omq teachers{data_schema, program->tgds,
               program->QueriesNamed("TeachersQ").disjuncts.front()};
  EXPECT_EQ(CheckContainment(teachers, faculty)->outcome,
            ContainmentOutcome::kContained);
  auto reverse = CheckContainment(faculty, teachers);
  EXPECT_EQ(reverse->outcome, ContainmentOutcome::kNotContained);
  ASSERT_TRUE(reverse->witness.has_value());
  // The counterexample is a lone professor or lecturer.
  EXPECT_EQ(reverse->witness->database.size(), 1u);

  // Rewriting: FacultyQ unfolds to the data-schema disjuncts.
  auto rewriting =
      XRewrite(data_schema, faculty.tgds, faculty.query);
  ASSERT_TRUE(rewriting.ok());
  UnionOfCQs minimized = MinimizeUCQ(*rewriting);
  EXPECT_EQ(minimized.size(), 3u);  // Professor ∨ Lecturer ∨ Teaches

  // Distribution: the two-component query distributes thanks to
  // Faculty(x) → ∃d Department(d).
  Omq mixed{data_schema, program->tgds,
            program->QueriesNamed("Mixed").disjuncts.front()};
  auto distribution = DistributesOverComponents(mixed);
  ASSERT_TRUE(distribution.ok()) << distribution.status().ToString();
  EXPECT_EQ(distribution->outcome, ContainmentOutcome::kContained);

  // Explanation: why is (knuth, turing) an answer of StudentsOf?
  auto why = ExplainTuple(students, program->facts,
                          {Term::Constant("knuth"), Term::Constant("turing")});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  std::string rendered = why->ToString(program->tgds);
  EXPECT_NE(rendered.find("TaughtBy(knuth,turing)"), std::string::npos);
  EXPECT_NE(rendered.find("[database fact]"), std::string::npos);
}

}  // namespace
}  // namespace omqc
