// Unit tests for the sharded LRU cache (src/cache/omq_cache.h): hit/miss
// bookkeeping, LRU eviction order, replacement, Clear, and concurrent
// hammering from many threads.

#include "cache/omq_cache.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace omqc {
namespace {

CacheKey KeyFor(uint64_t n, ArtifactKind kind = ArtifactKind::kRewriting) {
  return CacheKey{Fingerprint{n, ~n}, 0, kind};
}

std::shared_ptr<const std::string> Value(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(OmqCacheTest, MissThenHit) {
  OmqCache cache;
  CacheCounters counters;
  EXPECT_EQ(cache.Get<std::string>(KeyFor(1), &counters), nullptr);
  cache.Put<std::string>(KeyFor(1), Value("one"), 3, &counters);
  auto hit = cache.Get<std::string>(KeyFor(1), &counters);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(counters.lookups, 2u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.insertions, 1u);
  EXPECT_EQ(counters.bytes_inserted, 3u);
}

TEST(OmqCacheTest, SameFingerprintDifferentKindOrDigestDoNotAlias) {
  OmqCache cache;
  CacheKey rewriting = KeyFor(7, ArtifactKind::kRewriting);
  CacheKey classification = KeyFor(7, ArtifactKind::kClassification);
  CacheKey other_digest = rewriting;
  other_digest.options_digest = 42;
  cache.Put<std::string>(rewriting, Value("rw"), 1);
  EXPECT_EQ(cache.Get<std::string>(classification), nullptr);
  EXPECT_EQ(cache.Get<std::string>(other_digest), nullptr);
  ASSERT_NE(cache.Get<std::string>(rewriting), nullptr);
}

TEST(OmqCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  OmqCache cache(OmqCacheConfig{/*capacity=*/3, /*num_shards=*/1});
  cache.Put<std::string>(KeyFor(1), Value("1"), 1);
  cache.Put<std::string>(KeyFor(2), Value("2"), 1);
  cache.Put<std::string>(KeyFor(3), Value("3"), 1);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.Get<std::string>(KeyFor(1)), nullptr);
  cache.Put<std::string>(KeyFor(4), Value("4"), 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Get<std::string>(KeyFor(2)), nullptr);
  EXPECT_NE(cache.Get<std::string>(KeyFor(1)), nullptr);
  EXPECT_NE(cache.Get<std::string>(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Get<std::string>(KeyFor(4)), nullptr);
  EXPECT_EQ(cache.Stats().counters.evictions, 1u);
}

TEST(OmqCacheTest, EvictedValueStaysAliveForHolders) {
  OmqCache cache(OmqCacheConfig{/*capacity=*/1, /*num_shards=*/1});
  cache.Put<std::string>(KeyFor(1), Value("keepalive"), 1);
  auto held = cache.Get<std::string>(KeyFor(1));
  cache.Put<std::string>(KeyFor(2), Value("evictor"), 1);
  EXPECT_EQ(cache.Get<std::string>(KeyFor(1)), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "keepalive");
}

TEST(OmqCacheTest, ReplaceUpdatesValueAndBytes) {
  OmqCache cache(OmqCacheConfig{/*capacity=*/4, /*num_shards=*/1});
  cache.Put<std::string>(KeyFor(1), Value("old"), 10);
  cache.Put<std::string>(KeyFor(1), Value("new"), 4);
  auto hit = cache.Get<std::string>(KeyFor(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Stats().bytes, 4u);
  // Replacement does not count as a fresh insertion.
  EXPECT_EQ(cache.Stats().counters.insertions, 1u);
}

TEST(OmqCacheTest, ClearDropsEntriesKeepsCounters) {
  OmqCache cache;
  cache.Put<std::string>(KeyFor(1), Value("1"), 1);
  cache.Put<std::string>(KeyFor(2), Value("2"), 1);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  EXPECT_EQ(cache.Stats().counters.insertions, 2u);
  EXPECT_EQ(cache.Get<std::string>(KeyFor(1)), nullptr);
}

TEST(OmqCacheTest, CapacityClampsAndShardsSplit) {
  OmqCache tiny(OmqCacheConfig{/*capacity=*/0, /*num_shards=*/0});
  EXPECT_EQ(tiny.capacity(), 1u);
  EXPECT_EQ(tiny.num_shards(), 1u);
  OmqCache wide(OmqCacheConfig{/*capacity=*/4, /*num_shards=*/64});
  EXPECT_LE(wide.num_shards(), 4u);
}

TEST(OmqCacheTest, ConcurrentHammerStaysConsistent) {
  OmqCache cache(OmqCacheConfig{/*capacity=*/64, /*num_shards=*/8});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  std::vector<CacheCounters> per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &per_thread, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>((t * 31 + i) % 128);
        auto hit = cache.Get<std::string>(KeyFor(k), &per_thread[t]);
        if (hit == nullptr) {
          cache.Put<std::string>(KeyFor(k), Value(std::to_string(k)), 8,
                                 &per_thread[t]);
        } else {
          // A hit must always carry the value inserted for that key.
          EXPECT_EQ(*hit, std::to_string(k));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  CacheCounters merged;
  for (const CacheCounters& c : per_thread) merged.Merge(c);
  EXPECT_EQ(merged.lookups, static_cast<size_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(merged.hits + merged.misses, merged.lookups);
  OmqCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, cache.capacity() + cache.num_shards());
  EXPECT_EQ(stats.counters.lookups, merged.lookups);
}

TEST(OmqCacheTest, ConcurrentEvictionUnderCapacityPressure) {
  // Capacity far below the working set: every thread's inserts continually
  // evict other threads' entries. The server shares one such cache across
  // all tenants, so eviction racing lookup/insert is the steady state, not
  // an edge case.
  OmqCache cache(OmqCacheConfig{/*capacity=*/8, /*num_shards=*/2});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kKeySpace = 64;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(t * 17 + i * 5) % kKeySpace;
        auto hit = cache.Get<std::string>(KeyFor(k));
        if (hit == nullptr) {
          cache.Put<std::string>(KeyFor(k), Value(std::to_string(k)), 16);
        } else {
          // Values must never cross keys, even mid-eviction.
          EXPECT_EQ(*hit, std::to_string(k));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  OmqCacheStats stats = cache.Stats();
  EXPECT_GT(stats.counters.evictions, 0u);
  EXPECT_LE(stats.entries, cache.capacity());
  // Live entries can only be what was inserted and not evicted (racing
  // same-key inserts may replace, so this is an upper bound, not equality).
  EXPECT_LE(stats.entries,
            stats.counters.insertions - stats.counters.evictions);
  // Survivors still serve the right value after the storm.
  for (uint64_t k = 0; k < kKeySpace; ++k) {
    auto hit = cache.Get<std::string>(KeyFor(k));
    if (hit != nullptr) {
      EXPECT_EQ(*hit, std::to_string(k));
    }
  }
}

}  // namespace
}  // namespace omqc
