// The persistent artifact store (cache/persist.h, cache/serialize.cc):
//
//   * artifact payloads round-trip byte-observationally (rewritings,
//     profiles, chased instances) across ontology classes, including
//     factory scenarios;
//   * the arena snapshot reproduces the instance exactly — same atoms,
//     same indexes, same answers;
//   * a second TieredStore over the same directory serves compilations
//     from disk (persist hits, zero recompilation) with byte-identical
//     verdicts;
//   * invalidation drops exactly the artifacts of the changed tgd set;
//   * corruption (every single-bit flip, every truncation point) and
//     foreign format versions degrade to a cold compile — never a crash,
//     never a wrong artifact.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/binary_io.h"
#include "cache/cached_ops.h"
#include "cache/canonical.h"
#include "cache/persist.h"
#include "cache/serialize.h"
#include "chase/chase.h"
#include "core/containment.h"
#include "core/eval.h"
#include "core/frontend.h"
#include "logic/homomorphism.h"
#include "rewrite/xrewrite.h"
#include "soak/scenario.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "omqc_persist_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) s.Add(Predicate::Get(name, arity));
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
}

std::string SegmentPath(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) return entry.path().string();
  }
  ADD_FAILURE() << "no segment file in " << dir;
  return "";
}

// ---------------------------------------------------------------------------
// Payload round trips.

TEST(SerializeTest, RewritingRoundTripsAcrossClasses) {
  // One ontology per class the engine special-cases; the rewriting payload
  // (UCQ + compute stats) must decode to an observationally identical
  // artifact.
  const struct {
    const char* tgds;
    const char* query;
    std::initializer_list<std::pair<const char*, int>> schema;
  } cases[] = {
      // linear
      {"A(X) -> B(X). B(X) -> C(X,Y).",
       "Q(X) :- C(X,Y)",
       {{"A", 1}, {"B", 1}, {"C", 2}}},
      // sticky (repeated join variable never propagated)
      {"R(X,Y), R(Y,Z) -> T(X,Z). T(X,Z) -> U(X).",
       "Q(X) :- U(X)",
       {{"R", 2}, {"T", 2}, {"U", 1}}},
      // non-recursive
      {"P(X) -> Q1(X). Q1(X), P(X) -> R(X).",
       "Q(X) :- R(X)",
       {{"P", 1}, {"Q1", 1}, {"R", 1}}},
      // guarded (recursive)
      {"E(X,Y) -> E(Y,X). E(X,Y) -> N(X).",
       "Q(X) :- N(X)",
       {{"E", 2}, {"N", 1}}},
  };
  for (const auto& c : cases) {
    Omq omq = MakeOmq(S(c.schema), c.tgds, c.query);
    auto original = std::make_shared<CachedRewriting>();
    XRewriteOptions options;
    options.max_queries = 200;
    auto ucq = XRewrite(omq.data_schema, omq.tgds, omq.query, options,
                        &original->compute_stats);
    ASSERT_TRUE(ucq.ok()) << c.tgds << ": " << ucq.status().ToString();
    original->ucq = std::move(*ucq);

    ByteWriter out;
    ASSERT_TRUE(
        SerializeArtifact(ArtifactKind::kRewriting, original.get(), out));
    std::string bytes = out.Take();
    ByteReader in(bytes);
    auto decoded = DeserializeArtifact(ArtifactKind::kRewriting, in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto* restored =
        static_cast<const CachedRewriting*>(decoded->value.get());
    EXPECT_EQ(restored->ucq.ToString(), original->ucq.ToString()) << c.tgds;
    EXPECT_EQ(restored->compute_stats.rewriting_steps,
              original->compute_stats.rewriting_steps);
    EXPECT_EQ(restored->compute_stats.queries_generated,
              original->compute_stats.queries_generated);
    EXPECT_EQ(decoded->bytes, ApproxBytes(original->ucq));
  }
}

TEST(SerializeTest, RewritingRoundTripsOnFactoryScenarios) {
  // Randomized OMQs across the four factory classes: the rewriting of
  // Q1 under the scenario ontology round-trips on every one.
  const TgdClass classes[] = {TgdClass::kLinear, TgdClass::kSticky,
                              TgdClass::kNonRecursive, TgdClass::kGuarded};
  for (TgdClass cls : classes) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ScenarioSpec spec;
      spec.seed = seed;
      spec.tgd_class = cls;
      Scenario scenario = MakeScenario(spec);
      Schema schema = InferProgramDataSchema(scenario.program);
      auto omq = SingleQueryNamed(scenario.program, schema, kLhsQuery);
      ASSERT_TRUE(omq.ok());
      auto original = std::make_shared<CachedRewriting>();
      XRewriteOptions options;
      options.max_queries = 120;
      options.max_steps = 20000;
      options.prune_subsumed = true;
      auto ucq = XRewrite(omq->data_schema, omq->tgds, omq->query, options,
                          &original->compute_stats);
      if (!ucq.ok()) continue;  // budget-limited guarded rewriting: skip
      original->ucq = std::move(*ucq);

      ByteWriter out;
      ASSERT_TRUE(
          SerializeArtifact(ArtifactKind::kRewriting, original.get(), out));
      std::string bytes = out.Take();
      ByteReader in(bytes);
      auto decoded = DeserializeArtifact(ArtifactKind::kRewriting, in);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      const auto* restored =
          static_cast<const CachedRewriting*>(decoded->value.get());
      EXPECT_EQ(restored->ucq.ToString(), original->ucq.ToString())
          << TgdClassToString(cls) << " seed " << seed;
    }
  }
}

TEST(SerializeTest, TgdProfileRoundTrips) {
  const char* ontologies[] = {
      "A(X) -> B(X).",                           // linear, full, NR
      "E(X,Y) -> E(Y,X).",                       // guarded recursive
      "R(X,Y), R(Y,Z) -> T(X,Z).",               // sticky full
  };
  for (const char* text : ontologies) {
    TgdProfile original = GetTgdProfile(nullptr, ParseTgds(text).value());
    ByteWriter out;
    ASSERT_TRUE(SerializeArtifact(ArtifactKind::kClassification, &original,
                                  out));
    std::string bytes = out.Take();
    ByteReader in(bytes);
    auto decoded = DeserializeArtifact(ArtifactKind::kClassification, in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto* restored =
        static_cast<const TgdProfile*>(decoded->value.get());
    EXPECT_EQ(restored->primary, original.primary) << text;
    EXPECT_EQ(restored->linear, original.linear);
    EXPECT_EQ(restored->guarded, original.guarded);
    EXPECT_EQ(restored->full, original.full);
    EXPECT_EQ(restored->non_recursive, original.non_recursive);
    EXPECT_EQ(restored->sticky, original.sticky);
  }
}

TEST(SerializeTest, RhsEvaluatorIsNotPersistable) {
  EXPECT_FALSE(ArtifactKindPersistable(ArtifactKind::kRhsEvaluator));
  ByteWriter out;
  int dummy = 0;
  EXPECT_FALSE(SerializeArtifact(ArtifactKind::kRhsEvaluator, &dummy, out));
}

// ---------------------------------------------------------------------------
// Arena snapshot / restore.

TEST(SnapshotTest, ChasedInstanceRestoresExactly) {
  // Chase output carries labelled nulls — the hard case for a name-based
  // snapshot (nulls have no cross-process name, only reserved ids).
  TgdSet tgds =
      ParseTgds("P(X) -> R(X,Y). R(X,Y) -> S(Y). S(X), P(X) -> T(X).")
          .value();
  Database db;
  db.Add(Atom::Make("P", {Term::Constant("a")}));
  db.Add(Atom::Make("P", {Term::Constant("b")}));
  auto chased = Chase(db, tgds);
  ASSERT_TRUE(chased.ok());
  ASSERT_TRUE(chased->complete);
  const Instance& original = chased->instance;

  ByteWriter out;
  original.Snapshot(out);
  std::string bytes = out.Take();
  ByteReader in(bytes);
  auto restored = Instance::Restore(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->size(), original.size());
  EXPECT_TRUE(*restored == original);
  EXPECT_EQ(restored->ToString(), original.ToString());
  EXPECT_EQ(restored->MemoryBytes(), original.MemoryBytes());
  // Index equality: every original atom is findable, with the same id
  // (Restore re-inserts in insertion order).
  for (AtomId id = 0; id < original.size(); ++id) {
    AtomView v = original.view(id);
    Atom atom(v.predicate(), std::vector<Term>(v.begin(), v.end()));
    EXPECT_EQ(restored->FindId(atom), id);
  }
  // The restored instance answers queries identically.
  ConjunctiveQuery q = ParseQuery("Q(X) :- R(X,Y), S(Y)").value();
  EXPECT_EQ(EvaluateCQ(q, original), EvaluateCQ(q, *restored));
}

TEST(SnapshotTest, RestoredNullsNeverCollideWithFreshOnes) {
  TgdSet tgds = ParseTgds("P(X) -> R(X,Y).").value();
  Database db;
  db.Add(Atom::Make("P", {Term::Constant("a")}));
  auto chased = Chase(db, tgds);
  ASSERT_TRUE(chased.ok());
  ByteWriter out;
  chased->instance.Snapshot(out);
  std::string bytes = out.Take();
  ByteReader in(bytes);
  auto restored = Instance::Restore(in);
  ASSERT_TRUE(restored.ok());
  // A null created after Restore must be distinct from every restored
  // null: adding an atom over it must grow the instance, not dedup.
  size_t before = restored->size();
  restored->Add(Atom::Make("R", {Term::Constant("a"), Term::FreshNull()}));
  EXPECT_EQ(restored->size(), before + 1);
}

TEST(SnapshotTest, RestoreIsTotalOnGarbage) {
  // Truncations and bit flips of a valid snapshot must fail cleanly (or
  // decode a valid prefix instance) — never crash.
  TgdSet tgds = ParseTgds("P(X) -> R(X,Y). R(X,Y) -> S(Y).").value();
  Database db;
  db.Add(Atom::Make("P", {Term::Constant("anchor")}));
  auto chased = Chase(db, tgds);
  ASSERT_TRUE(chased.ok());
  ByteWriter out;
  chased->instance.Snapshot(out);
  std::string bytes = out.Take();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string truncated = bytes.substr(0, cut);
    ByteReader in(truncated);
    auto restored = Instance::Restore(in);  // must not crash
    (void)restored;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    ByteReader in(flipped);
    auto restored = Instance::Restore(in);  // must not crash
    (void)restored;
  }
}

// ---------------------------------------------------------------------------
// TieredStore warm start.

TEST(TieredStoreTest, SecondStoreServesCompilationsFromDisk) {
  std::string dir = FreshDir("warm");
  Omq q1 = MakeOmq(S({{"Edge", 2}, {"Conn", 2}}),
                   "Edge(X,Y) -> Conn(X,Y).",
                   "Q(X) :- Conn(X,Y), Conn(Y,Z)");
  Omq q2 = MakeOmq(S({{"Edge", 2}, {"Conn", 2}}),
                   "Edge(X,Y) -> Conn(X,Y).", "Q(X) :- Conn(X,Y)");

  std::string cold_report;
  {
    auto store = TieredStore::Open(TieredStoreConfig{{}, dir});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ContainmentOptions options;
    options.cache = store->get();
    auto result = CheckContainment(q1, q2, options);
    ASSERT_TRUE(result.ok());
    cold_report = FormatContainmentReport("Q1", "Q2", *result);
    EXPECT_GT(result->stats.cache.persist_writes, 0u);
    (*store)->Flush();
  }

  auto warm_store = TieredStore::Open(TieredStoreConfig{{}, dir});
  ASSERT_TRUE(warm_store.ok());
  EXPECT_GT((*warm_store)->Stats().persist_entries, 0u);
  ContainmentOptions options;
  options.cache = warm_store->get();
  auto result = CheckContainment(q1, q2, options);
  ASSERT_TRUE(result.ok());
  // Byte-identical verdict, served from disk, nothing recompiled.
  EXPECT_EQ(FormatContainmentReport("Q1", "Q2", *result), cold_report);
  EXPECT_GT(result->stats.cache.persist_hits, 0u);
  EXPECT_EQ(result->stats.rewrite.rewriting_steps, 0u);
  EXPECT_EQ(result->stats.rewrite.queries_generated, 0u);
}

TEST(TieredStoreTest, WarmStartAgreesOnFactoryScenarios) {
  // Cold vs warm-from-disk containment over factory scenarios of every
  // class: outcome and full report must be byte-identical.
  const TgdClass classes[] = {TgdClass::kLinear, TgdClass::kSticky,
                              TgdClass::kNonRecursive, TgdClass::kGuarded};
  for (TgdClass cls : classes) {
    ScenarioSpec spec;
    spec.seed = 7;
    spec.tgd_class = cls;
    spec.contained = (cls == TgdClass::kLinear || cls == TgdClass::kSticky);
    Scenario scenario = MakeScenario(spec);
    Schema schema = InferProgramDataSchema(scenario.program);
    auto q1 = SingleQueryNamed(scenario.program, schema, kLhsQuery);
    auto q2 = SingleQueryNamed(scenario.program, schema, kRhsQuery);
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());
    std::string dir =
        FreshDir(std::string("scen_") + TgdClassToString(cls));
    auto contain = [&](ArtifactStore* cache) {
      ContainmentOptions options;
      options.rewrite.max_queries = 120;
      options.rewrite.max_steps = 20000;
      options.rewrite.prune_subsumed = true;
      options.cache = cache;
      return CheckContainment(*q1, *q2, options);
    };
    std::string cold_report;
    {
      auto store = TieredStore::Open(TieredStoreConfig{{}, dir});
      ASSERT_TRUE(store.ok());
      auto cold = contain(store->get());
      ASSERT_TRUE(cold.ok());
      cold_report = FormatContainmentReport("Q1", "Q2", *cold);
      (*store)->Flush();
    }
    auto warm_store = TieredStore::Open(TieredStoreConfig{{}, dir});
    ASSERT_TRUE(warm_store.ok());
    auto warm = contain(warm_store->get());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(FormatContainmentReport("Q1", "Q2", *warm), cold_report)
        << TgdClassToString(cls);
  }
}

TEST(TieredStoreTest, ChaseResultsWarmStartAcrossStores) {
  // Full + non-recursive ontology: EvalAll takes the chase path and the
  // saturated instance snapshot must round-trip through the store.
  std::string dir = FreshDir("chase");
  Omq omq = MakeOmq(S({{"A", 1}, {"B", 1}}), "A(X) -> B(X).",
                    "Q(X) :- B(X)");
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("a")}));
  db.Add(Atom::Make("B", {Term::Constant("b")}));

  std::vector<std::vector<Term>> cold_answers;
  {
    auto store = TieredStore::Open(TieredStoreConfig{{}, dir});
    ASSERT_TRUE(store.ok());
    EvalOptions options;
    options.cache = store->get();
    auto answers = EvalAll(omq, db, options);
    ASSERT_TRUE(answers.ok());
    cold_answers = *answers;
    (*store)->Flush();
  }
  auto warm_store = TieredStore::Open(TieredStoreConfig{{}, dir});
  ASSERT_TRUE(warm_store.ok());
  EvalOptions options;
  options.cache = warm_store->get();
  EngineStats stats;
  auto answers = EvalAll(omq, db, options, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, cold_answers);
  EXPECT_GT(stats.cache.persist_hits, 0u);
  EXPECT_EQ(stats.chase_steps, 0u) << "warm run re-chased";
}

TEST(TieredStoreTest, InvalidateTgdSetDropsOnlyThatOntology) {
  std::string dir = FreshDir("invalidate");
  TgdSet sigma_a = ParseTgds("A(X) -> B(X).").value();
  TgdSet sigma_b = ParseTgds("C(X) -> D(X).").value();
  Omq qa = MakeOmq(S({{"A", 1}, {"B", 1}}), "A(X) -> B(X).",
                   "Q(X) :- B(X)");
  Omq qb = MakeOmq(S({{"C", 1}, {"D", 1}}), "C(X) -> D(X).",
                   "Q(X) :- D(X)");
  {
    auto store = TieredStore::Open(TieredStoreConfig{{}, dir});
    ASSERT_TRUE(store.ok());
    ContainmentOptions options;
    options.cache = store->get();
    ASSERT_TRUE(CheckContainment(qa, qa, options).ok());
    ASSERT_TRUE(CheckContainment(qb, qb, options).ok());
    // Ontology A changed: drop its artifacts, keep B's warm.
    (*store)->InvalidateTgdSet(FingerprintTgdSet(sigma_a));
    (*store)->Flush();
  }
  auto store = TieredStore::Open(TieredStoreConfig{{}, dir});
  ASSERT_TRUE(store.ok());
  ContainmentOptions options;
  options.cache = store->get();
  auto b = CheckContainment(qb, qb, options);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->stats.cache.persist_hits, 0u) << "B's artifacts were dropped";
  auto a = CheckContainment(qa, qa, options);
  ASSERT_TRUE(a.ok());
  EXPECT_GT(a->stats.rewrite.queries_generated, 0u)
      << "A's artifacts survived invalidation";
  // The tombstone is durable: a third store still misses A.
  (void)sigma_b;
}

// ---------------------------------------------------------------------------
// Corruption and version robustness.

/// Stages two known records and seals them; returns the keys.
std::vector<CacheKey> SeedStore(const std::string& dir,
                                std::string* payload1,
                                std::string* payload2) {
  auto store = PersistentStore::Open(dir);
  EXPECT_TRUE(store.ok());
  CacheKey k1{Fingerprint{0x1111, 0x2222}, 7, ArtifactKind::kRewriting};
  CacheKey k2{Fingerprint{0x3333, 0x4444}, 9, ArtifactKind::kClassification};
  *payload1 = "the first payload";
  *payload2 = "a second, slightly longer payload";
  (*store)->Append(k1, Fingerprint{1, 1}, kArtifactPayloadVersion, *payload1);
  (*store)->Append(k2, Fingerprint{2, 2}, kArtifactPayloadVersion, *payload2);
  EXPECT_TRUE((*store)->Flush().ok());
  return {k1, k2};
}

TEST(CorruptionTest, EveryBitFlipDegradesToColdCompile) {
  std::string dir = FreshDir("bitflip");
  std::string p1, p2;
  std::vector<CacheKey> keys = SeedStore(dir, &p1, &p2);
  std::string seg_path = SegmentPath(dir);
  ASSERT_FALSE(seg_path.empty());
  const std::string good = ReadFile(seg_path);
  ASSERT_FALSE(good.empty());

  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    WriteFile(seg_path, bad);
    auto store = PersistentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << "open crashed on flip at byte " << i;
    // Every surviving lookup must return the exact original payload;
    // everything else is a miss (cold compile).
    auto r1 = (*store)->Lookup(keys[0]);
    auto r2 = (*store)->Lookup(keys[1]);
    if (r1 != nullptr) {
      EXPECT_EQ(*r1, p1) << "flip at byte " << i;
    }
    if (r2 != nullptr) {
      EXPECT_EQ(*r2, p2) << "flip at byte " << i;
    }
  }
  WriteFile(seg_path, good);
}

TEST(CorruptionTest, EveryTruncationDegradesToColdCompile) {
  std::string dir = FreshDir("truncate");
  std::string p1, p2;
  std::vector<CacheKey> keys = SeedStore(dir, &p1, &p2);
  std::string seg_path = SegmentPath(dir);
  ASSERT_FALSE(seg_path.empty());
  const std::string good = ReadFile(seg_path);

  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteFile(seg_path, good.substr(0, cut));
    auto store = PersistentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << "open crashed at truncation " << cut;
    auto r1 = (*store)->Lookup(keys[0]);
    auto r2 = (*store)->Lookup(keys[1]);
    if (r1 != nullptr) {
      EXPECT_EQ(*r1, p1) << "truncation at " << cut;
    }
    if (r2 != nullptr) {
      EXPECT_EQ(*r2, p2) << "truncation at " << cut;
    }
    if (cut < good.size() - 1) {
      // Some prefix was necessarily lost.
      EXPECT_TRUE(r1 == nullptr || r2 == nullptr);
    }
  }
}

TEST(CorruptionTest, ManifestCorruptionDegradesToEmptyStore) {
  std::string dir = FreshDir("manifest");
  std::string p1, p2;
  std::vector<CacheKey> keys = SeedStore(dir, &p1, &p2);
  std::string manifest_path = dir + "/MANIFEST";
  const std::string good = ReadFile(manifest_path);
  ASSERT_FALSE(good.empty());
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    WriteFile(manifest_path, bad);
    auto store = PersistentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << "open crashed on manifest flip at " << i;
    auto r1 = (*store)->Lookup(keys[0]);
    if (r1 != nullptr) {
      EXPECT_EQ(*r1, p1);
    }
  }
  WriteFile(manifest_path, good);
  auto store = PersistentStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->stats().entries, 2u);
}

TEST(CorruptionTest, ForeignSegmentVersionIsRejectedNotLoaded) {
  std::string dir = FreshDir("segversion");
  std::string p1, p2;
  std::vector<CacheKey> keys = SeedStore(dir, &p1, &p2);
  std::string seg_path = SegmentPath(dir);
  std::string bytes = ReadFile(seg_path);
  ASSERT_GE(bytes.size(), 8u);
  // Header: magic u32, then format version u32 (unchecksummed).
  bytes[4] = static_cast<char>(0xEE);
  WriteFile(seg_path, bytes);
  auto store = PersistentStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->stats().entries, 0u);
  EXPECT_GE((*store)->stats().version_rejects, 1u);
  EXPECT_EQ((*store)->Lookup(keys[0]), nullptr);
}

TEST(CorruptionTest, ForeignPayloadVersionIsInvisible) {
  std::string dir = FreshDir("payloadversion");
  CacheKey key{Fingerprint{5, 6}, 1, ArtifactKind::kRewriting};
  {
    auto store = PersistentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    (*store)->Append(key, Fingerprint{}, kArtifactPayloadVersion + 1,
                     "from the future");
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = PersistentStore::Open(dir);
  ASSERT_TRUE(store.ok());
  // The record is well-formed (it loads) but its payload version is
  // foreign, so lookups treat it as absent: the caller recompiles.
  EXPECT_EQ((*store)->Lookup(key), nullptr);
  EXPECT_FALSE((*store)->Contains(key));
}

TEST(CorruptionTest, UndecodablePayloadFallsBackToColdCompile) {
  // A record that passes every checksum but holds garbage (an encoder bug,
  // not disk rot): the tiered store must miss, not crash or serve junk.
  std::string dir = FreshDir("badpayload");
  Omq omq = MakeOmq(S({{"Edge", 2}, {"Conn", 2}}),
                    "Edge(X,Y) -> Conn(X,Y).", "Q(X) :- Conn(X,Y)");
  XRewriteOptions xopts;
  CacheKey key = RewritingCacheKey(omq.data_schema, omq.tgds, omq.query,
                                   xopts);
  {
    auto store = PersistentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    (*store)->Append(key, Fingerprint{}, kArtifactPayloadVersion,
                     "not a rewriting");
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto tiered = TieredStore::Open(TieredStoreConfig{{}, dir});
  ASSERT_TRUE(tiered.ok());
  ContainmentOptions options;
  options.cache = tiered->get();
  auto result = CheckContainment(omq, omq, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  // The artifact had to be recompiled.
  EXPECT_GT(result->stats.rewrite.queries_generated, 0u);
}

}  // namespace
}  // namespace omqc
