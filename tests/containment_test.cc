// Tests for OMQ containment (Secs. 3-6): the small-witness engine on the
// UCQ-rewritable classes, the guarded semi-procedure and cross-language
// combinations.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

// ---------- No ontology: classical (U)CQ containment. ----------

TEST(ContainmentTest, PlainCQContainment) {
  Schema schema = S({{"R", 2}});
  Omq longer = MakeOmq(schema, "", "Q(X) :- R(X,Y), R(Y,Z)");
  Omq shorter = MakeOmq(schema, "", "Q(X) :- R(X,Y)");
  auto forward = CheckContainment(longer, shorter);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  EXPECT_EQ(forward->outcome, ContainmentOutcome::kContained);

  auto backward = CheckContainment(shorter, longer);
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(backward->outcome, ContainmentOutcome::kNotContained);
  ASSERT_TRUE(backward->witness.has_value());
  // The witness is a counterexample: one R edge, no 2-path.
  EXPECT_EQ(backward->witness->database.size(), 1u);
}

// ---------- Linear LHS (Sec. 4.1). ----------

TEST(ContainmentTest, LinearOntologyMakesQueriesComparable) {
  // Σ: T ⊑ P. Q1 asks for T(x), Q2 for P(x): Q1 ⊆ Q2 but not conversely.
  Schema schema = S({{"P", 1}, {"T", 1}});
  Omq q1 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- T(X)");
  Omq q2 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- P(X)");
  EXPECT_EQ(CheckContainment(q1, q2)->outcome,
            ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(q2, q1)->outcome,
            ContainmentOutcome::kNotContained);
}

TEST(ContainmentTest, PaperExample1Equivalence) {
  // From Example 1: Q = (S, Σ, ∃y R(x,y) ∧ P(y)) is equivalent to the
  // rewriting P(x) ∨ T(x) — here checked against the OMQ with query P(x),
  // which contains Q... and conversely Q covers P(x) because P(x) chases
  // to R(x,·) ∧ P(·).
  Schema schema = S({{"P", 1}, {"T", 1}});
  const std::string sigma =
      "P(X) -> R(X,Y). R(X,Y) -> P(Y). T(X) -> P(X).";
  Omq q = MakeOmq(schema, sigma, "Q(X) :- R(X,Y), P(Y)");
  Omq p = MakeOmq(schema, sigma, "Q(X) :- P(X)");
  auto equivalence = CheckEquivalence(q, p);
  ASSERT_TRUE(equivalence.ok());
  EXPECT_EQ(equivalence->outcome, ContainmentOutcome::kContained);
}

TEST(ContainmentTest, DifferentOntologiesSameQuery) {
  // Q1's ontology derives more: containment holds one way only.
  Schema schema = S({{"A", 1}, {"B", 1}});
  Omq q1 = MakeOmq(schema, "A(X) -> P(X).", "Q(X) :- P(X)");
  Omq q2 = MakeOmq(schema, "A(X) -> P(X). B(X) -> P(X).", "Q(X) :- P(X)");
  EXPECT_EQ(CheckContainment(q1, q2)->outcome,
            ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(q2, q1)->outcome,
            ContainmentOutcome::kNotContained);
}

TEST(ContainmentTest, WitnessSizeObeysProposition12) {
  // Linear LHS: every candidate witness has at most |q1| atoms.
  Schema schema = S({{"R", 2}, {"P", 1}});
  Omq q1 = MakeOmq(schema, "P(X) -> R(X,Y).",
                   "Q(X) :- R(X,Y), R(Y,Z)");
  Omq q2 = MakeOmq(schema, "", "Q(X) :- P(X)");
  auto result = CheckContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kNotContained);
  EXPECT_LE(result->max_witness_size, q1.query.size());
}

// ---------- Evaluation vs containment sanity (Props. 5/6 use these). ----

TEST(ContainmentTest, ContainmentImpliesAnswerInclusion) {
  Schema schema = S({{"A", 1}, {"R", 2}});
  Omq q1 = MakeOmq(schema, "A(X) -> B(X).", "Q(X) :- B(X), R(X,Y)");
  Omq q2 = MakeOmq(schema, "A(X) -> B(X).", "Q(X) :- B(X)");
  ASSERT_EQ(CheckContainment(q1, q2)->outcome,
            ContainmentOutcome::kContained);
}

// ---------- Sticky LHS (Sec. 4.3). ----------

TEST(ContainmentTest, StickyLhs) {
  Schema schema = S({{"R", 2}, {"P", 2}});
  const std::string sigma = "R(X,Y), P(X,Z) -> T(X,Y,Z).";
  Omq q1 = MakeOmq(schema, sigma, "Q(X) :- T(X,Y,Z)");
  Omq q2 = MakeOmq(schema, sigma, "Q(X) :- R(X,Y)");
  EXPECT_EQ(CheckContainment(q1, q2)->outcome,
            ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(q2, q1)->outcome,
            ContainmentOutcome::kNotContained);
}

// ---------- Non-recursive LHS (Sec. 4.2). ----------

TEST(ContainmentTest, NonRecursiveLhs) {
  Schema schema = S({{"E", 2}});
  Omq q1 = MakeOmq(schema,
                   "E(X,Y), E(Y,Z) -> Path2(X,Z)."
                   "Path2(X,Z), E(Z,W) -> Path3(X,W).",
                   "Q(X) :- Path3(X,Y)");
  Omq q2 = MakeOmq(schema, "E(X,Y), E(Y,Z) -> Path2(X,Z).",
                   "Q(X) :- Path2(X,Y)");
  EXPECT_EQ(CheckContainment(q1, q2)->outcome,
            ContainmentOutcome::kContained);
  EXPECT_EQ(CheckContainment(q2, q1)->outcome,
            ContainmentOutcome::kNotContained);
}

// ---------- Guarded LHS (Sec. 5). ----------

TEST(ContainmentTest, GuardedLhsContainedSaturates) {
  // Σ: A(x) ∧ R(x,y) → A(y) (guarded, recursive). With q = ∃x A(x) the
  // pruned rewriting saturates: every deeper disjunct is subsumed by A(x).
  Schema schema = S({{"A", 1}, {"R", 2}});
  const std::string sigma = "R(X,Y), A(X) -> A(Y).";
  Omq q1 = MakeOmq(schema, sigma, "Q() :- A(X)");
  Omq q2 = MakeOmq(schema, sigma, "Q() :- A(Y)");
  auto result = CheckContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

TEST(ContainmentTest, GuardedLhsRefutation) {
  // Reachability of B from an A-node along R: contained in "some B", but
  // not in "some C".
  Schema schema = S({{"A", 1}, {"B", 1}, {"C", 1}, {"R", 2}});
  const std::string sigma = "R(X,Y), A(X) -> A(Y).";
  Omq q1 = MakeOmq(schema, sigma, "Q() :- A(X), B(X)");
  Omq q2 = MakeOmq(schema, sigma, "Q() :- C(X)");
  ContainmentOptions options;
  options.rewrite.max_queries = 200;
  auto result = CheckContainment(q1, q2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kNotContained);
  ASSERT_TRUE(result->witness.has_value());
}

TEST(ContainmentTest, GuardedLhsUnknownAtBudget) {
  // q = A(c) for a constant c: the perfect rewriting is an infinite
  // R-path family with no subsumptions; the engine reports kUnknown.
  Schema schema = S({{"A", 1}, {"R", 2}});
  const std::string sigma = "R(X,Y), A(Y) -> A(X).";
  Omq q1 = MakeOmq(schema, sigma, "Q() :- A(c)");
  // Q2 is literally the same OMQ, so containment holds — but the engine
  // cannot certify it: the enumeration never saturates.
  Omq q2 = MakeOmq(schema, sigma, "Q() :- A(c)");
  ContainmentOptions options;
  options.rewrite.max_queries = 60;
  auto result = CheckContainment(q1, q2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kUnknown);
}

// ---------- Cross-language combinations (Sec. 6). ----------

TEST(ContainmentTest, LinearInGuarded) {
  Schema schema = S({{"A", 1}, {"R", 2}, {"B", 1}});
  Omq linear = MakeOmq(schema, "A(X) -> T(X).", "Q(X) :- T(X)");
  Omq guarded = MakeOmq(schema, "R(X,Y), A(X) -> T(Y). A(X) -> T(X).",
                        "Q(X) :- T(X)");
  auto result = CheckContainment(linear, guarded);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

TEST(ContainmentTest, StickyInLinear) {
  Schema schema = S({{"R", 2}, {"P", 2}});
  Omq sticky = MakeOmq(schema, "R(X,Y), P(X,Z) -> T(X). T(X) -> U(X).",
                       "Q(X) :- U(X)");
  Omq linear = MakeOmq(schema, "R(X,Y) -> W(X).", "Q(X) :- W(X)");
  auto result = CheckContainment(sticky, linear);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

// ---------- UCQ OMQs. ----------

TEST(ContainmentTest, UcqOmqContainment) {
  Schema schema = S({{"A", 1}, {"B", 1}});
  UcqOmq q1{schema, ParseTgds("A(X) -> P(X).").value(),
            ParseUCQ("Q(X) :- P(X).").value()};
  UcqOmq q2{schema, ParseTgds("A(X) -> P(X). B(X) -> P(X).").value(),
            ParseUCQ("Q(X) :- P(X).").value()};
  auto result = CheckUcqOmqContainment(q1, q2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  auto backward = CheckUcqOmqContainment(q2, q1);
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(backward->outcome, ContainmentOutcome::kNotContained);
}

TEST(ContainmentTest, ContainmentInPlainUcq) {
  Schema schema = S({{"A", 1}, {"R", 2}});
  Omq q1 = MakeOmq(schema, "A(X) -> R(X,Y).", "Q() :- R(X,Y)");
  UnionOfCQs ucq = ParseUCQ("Q() :- A(X). Q() :- R(X,Y).").value();
  auto result = CheckContainmentInUcq(q1, ucq);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);

  UnionOfCQs smaller = ParseUCQ("Q() :- A(X).").value();
  auto refuted = CheckContainmentInUcq(q1, smaller);
  ASSERT_TRUE(refuted.ok());
  EXPECT_EQ(refuted->outcome, ContainmentOutcome::kNotContained);
}

// ---------- Input validation. ----------

TEST(ContainmentTest, RejectsMismatchedSchemas) {
  Omq q1 = MakeOmq(S({{"R", 2}}), "", "Q(X) :- R(X,Y)");
  Omq q2 = MakeOmq(S({{"P", 1}}), "", "Q(X) :- P(X)");
  EXPECT_FALSE(CheckContainment(q1, q2).ok());
}

TEST(ContainmentTest, RejectsMismatchedArity) {
  Schema schema = S({{"R", 2}});
  Omq q1 = MakeOmq(schema, "", "Q(X) :- R(X,Y)");
  Omq q2 = MakeOmq(schema, "", "Q(X,Y) :- R(X,Y)");
  EXPECT_FALSE(CheckContainment(q1, q2).ok());
}

// ---------- Budget soundness (tri-state homomorphism search). ----------

TEST(ContainmentTest, TinyHomBudgetYieldsUnknownNotRefutation) {
  // Regression: this pair is definitely contained. Before the tri-state
  // homomorphism result, an exhausted step budget looked like "tuple not
  // in answer" and flipped the verdict to kNotContained — it must be
  // kUnknown with an explanation.
  Schema schema = S({{"R", 2}});
  Omq longer = MakeOmq(schema, "", "Q(X) :- R(X,Y), R(Y,Z)");
  Omq shorter = MakeOmq(schema, "", "Q(X) :- R(X,Y)");
  ContainmentOptions options;
  options.eval.hom_max_steps = 1;
  auto result = CheckContainment(longer, shorter, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kUnknown);
  EXPECT_FALSE(result->witness.has_value());
  EXPECT_NE(result->detail.find("exhausted"), std::string::npos)
      << result->detail;
  EXPECT_GT(result->stats.budget_exhaustions, 0u);
  EXPECT_GT(result->stats.hom.budget_exhaustions, 0u);

  // With an adequate budget the same pair certifies.
  options.eval.hom_max_steps = 10000;
  auto exact = CheckContainment(longer, shorter, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->outcome, ContainmentOutcome::kContained);
}

TEST(ContainmentTest, StatsReportPerLayerWork) {
  Schema schema = S({{"P", 1}, {"T", 1}});
  Omq q1 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- T(X)");
  Omq q2 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- P(X)");
  auto result = CheckContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  EXPECT_EQ(result->stats.disjuncts_checked, result->candidates_checked);
  EXPECT_EQ(result->stats.witnesses_rejected, result->candidates_checked);
  EXPECT_GT(result->stats.hom.searches, 0u);
  EXPECT_GT(result->stats.rewrite.queries_generated, 0u);
  EXPECT_FALSE(result->stats.ToString().empty());
}

TEST(ContainmentTest, OutcomeToString) {
  EXPECT_STREQ(ContainmentOutcomeToString(ContainmentOutcome::kContained),
               "CONTAINED");
  EXPECT_STREQ(
      ContainmentOutcomeToString(ContainmentOutcome::kNotContained),
      "NOT_CONTAINED");
  EXPECT_STREQ(ContainmentOutcomeToString(ContainmentOutcome::kUnknown),
               "UNKNOWN");
}

}  // namespace
}  // namespace omqc
