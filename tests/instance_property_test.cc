// Property tests for the columnar (arena-backed) Instance storage.
//
// Two parameterized suites:
//
//  * InstancePropertyTest — randomized instances, parameterized over the
//    ACCESS PATH (materialized Atom accessors vs. arena AtomViews): the
//    two paths must expose the identical relation, operator== must be
//    symmetric, and re-adding atoms must be a no-op for the arena and
//    every index (set semantics).
//
//  * InstanceIndexConsistencyTest — parameterized over THREAD COUNTS
//    (1/2/8): AtomsWith / AtomsWithArg and their id-posting twins must
//    agree with a brute-force filter over atoms(), both on randomized
//    instances and on a chase instance produced while the parallel
//    containment engine reads instances concurrently at that width.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/containment.h"
#include "logic/instance.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

/// Deterministic xorshift64 stream (the suite must not flake).
class Rng {
 public:
  explicit Rng(uint64_t seed) : x_(seed) {}
  uint64_t Next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }

 private:
  uint64_t x_;
};

/// Random atoms over `preds` predicates of mixed arity (1..3) and `domain`
/// constants, with duplicates.
std::vector<Atom> RandomAtoms(Rng& rng, size_t n, int preds, int domain) {
  std::vector<Atom> atoms;
  atoms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 4 && rng.Next() % 5 == 0) {
      atoms.push_back(atoms[rng.Next() % i]);  // duplicate
      continue;
    }
    int p = static_cast<int>(rng.Next() % static_cast<uint64_t>(preds));
    int arity = 1 + p % 3;
    std::vector<Term> args;
    for (int a = 0; a < arity; ++a) {
      args.push_back(Term::Constant(
          "c" + std::to_string(rng.Next() % static_cast<uint64_t>(domain))));
    }
    atoms.emplace_back(Predicate::Get("P" + std::to_string(p), arity),
                       std::move(args));
  }
  return atoms;
}

enum class AccessPath { kMaterialized, kArenaViews };

/// The atoms of `inst` with predicate `p`, through the chosen access path.
std::vector<Atom> Enumerate(const Instance& inst, Predicate p,
                            AccessPath path) {
  if (path == AccessPath::kMaterialized) return inst.AtomsWith(p);
  std::vector<Atom> out;
  for (AtomId id : inst.IdsWith(p)) {
    out.push_back(inst.view(id).Materialize());
  }
  return out;
}

/// The atoms of `inst` with `t` at argument position `pos` of `p`.
std::vector<Atom> EnumerateArg(const Instance& inst, Predicate p, int pos,
                               const Term& t, AccessPath path) {
  if (path == AccessPath::kMaterialized) return inst.AtomsWithArg(p, pos, t);
  std::vector<Atom> out;
  for (AtomId id : inst.IdsWithArg(p, pos, t)) {
    out.push_back(inst.view(id).Materialize());
  }
  return out;
}

bool Member(const Instance& inst, const Atom& a, AccessPath path) {
  if (path == AccessPath::kMaterialized) return inst.Contains(a);
  std::optional<AtomId> id = inst.FindId(a);
  if (!id.has_value()) return false;
  return inst.view(*id) == ViewOf(a);  // the id must resolve to the atom
}

class InstancePropertyTest : public ::testing::TestWithParam<AccessPath> {};

INSTANTIATE_TEST_SUITE_P(
    AccessPaths, InstancePropertyTest,
    ::testing::Values(AccessPath::kMaterialized, AccessPath::kArenaViews),
    [](const ::testing::TestParamInfo<AccessPath>& info) {
      return info.param == AccessPath::kMaterialized ? "Materialized"
                                                     : "ArenaViews";
    });

TEST_P(InstancePropertyTest, EqualityIsSymmetricUnderShuffledInsertion) {
  Rng rng(0x9E3779B97F4A7C15ull);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Atom> atoms = RandomAtoms(rng, 30 + trial, 5, 8);
    Instance a;
    for (const Atom& atom : atoms) a.Add(atom);
    // b holds the same set, inserted in a different order.
    std::vector<Atom> shuffled = atoms;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Next() % i]);
    }
    Instance b;
    for (const Atom& atom : shuffled) b.Add(atom);
    EXPECT_TRUE(a == b) << "trial " << trial;
    EXPECT_TRUE(b == a) << "trial " << trial;
    // Membership agrees through the parameterized access path.
    for (const Atom& atom : atoms) {
      EXPECT_TRUE(Member(a, atom, GetParam()));
      EXPECT_TRUE(Member(b, atom, GetParam()));
    }
    // Perturbing one atom breaks equality in BOTH directions.
    Instance c = a;
    c.Add(Atom::Make("Extra", {Term::Constant("zz" + std::to_string(trial))}));
    EXPECT_FALSE(a == c) << "trial " << trial;
    EXPECT_FALSE(c == a) << "trial " << trial;
    EXPECT_FALSE(Member(a, Atom::Make("Extra", {Term::Constant(
                               "zz" + std::to_string(trial))}),
                        GetParam()));
  }
}

TEST_P(InstancePropertyTest, DuplicateAddIsNoOpForEveryIndex) {
  Rng rng(0xC2B2AE3D27D4EB4Full);
  std::vector<Atom> atoms = RandomAtoms(rng, 120, 6, 10);
  Instance once;
  for (const Atom& a : atoms) once.Add(a);

  // Add everything again (reversed, to vary the probe order): every Add
  // must report "already present" and leave arena, ids and postings
  // untouched.
  Instance twice = once;
  const size_t size_before = twice.size();
  const size_t bytes_before = twice.MemoryBytes();
  for (auto it = atoms.rbegin(); it != atoms.rend(); ++it) {
    EXPECT_FALSE(twice.Add(*it)) << "duplicate Add reported insertion";
    Instance::AddOutcome outcome = twice.AddView(ViewOf(*it));
    EXPECT_FALSE(outcome.inserted);
    // The outcome id of a duplicate resolves to the original atom.
    EXPECT_EQ(twice.view(outcome.id), ViewOf(*it));
  }
  EXPECT_EQ(twice.size(), size_before);
  EXPECT_EQ(twice.MemoryBytes(), bytes_before);
  EXPECT_TRUE(once == twice);

  // Every index (predicate postings, per-argument postings, insertion
  // order) is unchanged, through the parameterized access path.
  std::vector<Atom> order_once(once.atoms().begin(), once.atoms().end());
  std::vector<Atom> order_twice(twice.atoms().begin(), twice.atoms().end());
  EXPECT_EQ(order_once, order_twice);
  const Schema schema = once.InducedSchema();
  for (Predicate p : schema.predicates()) {
    EXPECT_EQ(Enumerate(once, p, GetParam()),
              Enumerate(twice, p, GetParam()));
    for (int pos = 0; pos < p.arity(); ++pos) {
      for (const Term& t : once.ActiveDomain()) {
        EXPECT_EQ(EnumerateArg(once, p, pos, t, GetParam()),
                  EnumerateArg(twice, p, pos, t, GetParam()));
      }
    }
  }
}

TEST_P(InstancePropertyTest, ViewsAndMaterializedAtomsAgreePerId) {
  Rng rng(0x165667B19E3779F9ull);
  std::vector<Atom> atoms = RandomAtoms(rng, 80, 4, 6);
  Instance inst;
  for (const Atom& a : atoms) inst.Add(a);
  for (AtomId id = 0; id < inst.size(); ++id) {
    Atom materialized = inst.MaterializeAtom(id);
    AtomView view = inst.view(id);
    EXPECT_EQ(view, ViewOf(materialized));
    EXPECT_EQ(view.Materialize(), materialized);
    EXPECT_EQ(view.hash(), AtomHash{}(materialized));
    EXPECT_EQ(inst.FindId(materialized), std::optional<AtomId>(id));
  }
}

TEST_P(InstancePropertyTest, ArgIdRangeWindowsMatchBruteForce) {
  Rng rng(0x27D4EB2F165667C5ull);
  std::vector<Atom> atoms = RandomAtoms(rng, 120, 3, 4);
  Instance inst;
  for (const Atom& a : atoms) inst.Add(a);
  for (int trial = 0; trial < 50; ++trial) {
    const AtomId at = static_cast<AtomId>(rng.Next() % inst.size());
    AtomView probe = inst.view(at);
    if (probe.arity() == 0) continue;
    const int pos = static_cast<int>(rng.Next() % probe.arity());
    const Term t = probe.arg(static_cast<size_t>(pos));
    AtomId lo = static_cast<AtomId>(rng.Next() % (inst.size() + 1));
    AtomId hi = static_cast<AtomId>(rng.Next() % (inst.size() + 1));
    if (lo > hi) std::swap(lo, hi);
    auto [first, last] = inst.ArgIdRange(probe.predicate(), pos, t, lo, hi);
    std::vector<AtomId> expected;
    for (AtomId id = lo; id < hi; ++id) {
      AtomView v = inst.view(id);
      if (v.predicate() == probe.predicate() &&
          pos < static_cast<int>(v.arity()) &&
          v.arg(static_cast<size_t>(pos)) == t) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(std::vector<AtomId>(first, last), expected)
        << "trial=" << trial << " lo=" << lo << " hi=" << hi;
  }
}

TEST(TermValidityTest, FactoriesProduceValidTermsDefaultDoesNot) {
  EXPECT_FALSE(Term().valid());
  EXPECT_TRUE(Term::Constant("a").valid());
  EXPECT_TRUE(Term::Variable("X").valid());
  EXPECT_TRUE(Term::FreshNull().valid());
}

#ifndef NDEBUG
using InstanceDeathTest = InstancePropertyTest;

TEST(InstanceDeathTest, AddOfInvalidTermAssertsUnderDebug) {
  Instance inst;
  Atom bad(Predicate::Get("R", 1), {Term()});  // default term: id -1
  EXPECT_DEATH(inst.Add(bad), "invalid");
}
#endif

/// Thread-count-parameterized index consistency: every index must agree
/// with a brute-force filter over atoms(), including on instances built
/// while the parallel containment engine is driving concurrent reads.
class InstanceIndexConsistencyTest
    : public ::testing::TestWithParam<size_t> {
 protected:
  static void CheckIndexes(const Instance& inst) {
    std::vector<Atom> all(inst.atoms().begin(), inst.atoms().end());
    ASSERT_EQ(all.size(), inst.size());
    const Schema schema = inst.InducedSchema();
    for (Predicate p : schema.predicates()) {
      std::vector<Atom> brute;
      for (const Atom& a : all) {
        if (a.predicate == p) brute.push_back(a);
      }
      EXPECT_EQ(inst.AtomsWith(p), brute);
      EXPECT_EQ(Enumerate(inst, p, AccessPath::kArenaViews), brute);
      // The packed predicate-major mirror (Postings span) is a third copy
      // of the same relation and must agree entry-for-entry, including
      // the id it reports for each entry.
      PostingsSpan span = inst.Postings(p);
      ASSERT_EQ(span.size(), brute.size());
      EXPECT_EQ(span.ids(), inst.IdsWith(p));
      for (size_t j = 0; j < span.size(); ++j) {
        EXPECT_EQ(span.view(j).Materialize(), brute[j]);
        EXPECT_EQ(inst.view(span.id(j)), span.view(j));
      }
      for (int pos = 0; pos < p.arity(); ++pos) {
        for (const Term& t : inst.ActiveDomain()) {
          std::vector<Atom> brute_arg;
          for (const Atom& a : brute) {
            if (a.args[static_cast<size_t>(pos)] == t) {
              brute_arg.push_back(a);
            }
          }
          EXPECT_EQ(inst.AtomsWithArg(p, pos, t), brute_arg);
          EXPECT_EQ(EnumerateArg(inst, p, pos, t, AccessPath::kArenaViews),
                    brute_arg);
        }
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, InstanceIndexConsistencyTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

TEST_P(InstanceIndexConsistencyTest, RandomizedInstancesMatchBruteForce) {
  Rng rng(0x2545F4914F6CDD1Dull + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Atom> atoms = RandomAtoms(rng, 60 + 20 * trial, 5, 7);
    Instance inst;
    for (const Atom& a : atoms) inst.Add(a);
    CheckIndexes(inst);
  }
}

TEST_P(InstanceIndexConsistencyTest, ChaseInstanceUnderParallelContainment) {
  // A containment check whose LHS rewriting fans out into many disjuncts:
  // the engine freezes and evaluates instances on GetParam() worker
  // threads. The verdict must match the serial run, and the chase
  // instance of the same OMQ must have internally consistent indexes.
  Schema schema;
  schema.Add(Predicate::Get("Edge", 2));
  schema.Add(Predicate::Get("Conn", 2));
  TgdSet sigma = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  Omq q{schema, sigma,
        ParseQuery("Q(X0) :- Conn(X0,X1), Conn(X1,X2), Conn(X2,X3)")
            .value()};
  ContainmentOptions options;
  options.num_threads = 1;
  auto serial = CheckContainment(q, q, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  options.num_threads = GetParam();
  auto parallel = CheckContainment(q, q, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->outcome, serial->outcome);
  EXPECT_EQ(parallel->outcome, ContainmentOutcome::kContained);

  Database db = ParseDatabase(
                    "Edge(a,b). Edge(b,c). Edge(c,d). Edge(d,a). Edge(a,c).")
                    .value();
  ChaseResult chased = Chase(db, sigma).value();
  ASSERT_TRUE(chased.complete);
  CheckIndexes(chased.instance);
}

TEST_P(InstanceIndexConsistencyTest, HomomorphismVerdictsStableAcrossThreads) {
  // A containment check whose query bodies join through multi-bound atoms,
  // so candidate sets are built by the k-way postings intersection kernel.
  // The verdict at GetParam() worker threads must equal the serial one,
  // and the stats must show the kernel actually ran (intersections > 0) —
  // a silent fallback to single-list scans would pass the verdict check
  // without exercising the kernel at all.
  Schema schema;
  schema.Add(Predicate::Get("Edge", 2));
  schema.Add(Predicate::Get("Tri", 3));
  TgdSet sigma =
      ParseTgds("Edge(X,Y), Edge(Y,Z) -> Tri(X,Y,Z).").value();
  Omq q1{schema, sigma,
         ParseQuery("Q(X) :- Tri(X,Y,Z), Edge(Z,X), Edge(Y,Z)").value()};
  Omq q2{schema, sigma, ParseQuery("Q(X) :- Tri(X,Y,Z), Edge(Y,Z)").value()};
  ContainmentOptions options;
  options.num_threads = 1;
  auto serial = CheckContainment(q1, q2, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  options.num_threads = GetParam();
  auto parallel = CheckContainment(q1, q2, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->outcome, serial->outcome);
  EXPECT_EQ(parallel->outcome, ContainmentOutcome::kContained);
  EXPECT_GT(parallel->stats.hom.postings_intersections, 0u);
  // The reverse direction must also agree across widths (and is the
  // direction that actually has to refute candidate homomorphisms).
  auto serial_rev = CheckContainment(q2, q1, options);
  options.num_threads = 1;
  auto parallel_rev = CheckContainment(q2, q1, options);
  ASSERT_TRUE(serial_rev.ok() && parallel_rev.ok());
  EXPECT_EQ(serial_rev->outcome, parallel_rev->outcome);
}

}  // namespace
}  // namespace omqc
