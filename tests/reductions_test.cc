// Tests for the reductions of Sec. 3: Prop. 5 (Eval → Cont), Prop. 6
// (Eval → coCont) and Prop. 9 (UCQ → CQ).

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/eval.h"
#include "core/reductions.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

Database Db(const std::string& text) { return ParseDatabase(text).value(); }

// ---------- Prop. 5: c̄ ∈ Q(D) iff Q1 ⊆ Q2. ----------

TEST(Prop5Test, PositiveInstanceGivesContainment) {
  Omq q = MakeOmq(S({{"R", 2}}), "R(X,Y) -> P(Y).", "Q(X) :- P(X)");
  Database db = Db("R(a,b).");
  // b IS a certain answer.
  auto instance = EvalToContainment(q, db, {Term::Constant("b")});
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  auto contained = CheckContainment(instance->q1, instance->q2);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  EXPECT_EQ(contained->outcome, ContainmentOutcome::kContained);
}

TEST(Prop5Test, NegativeInstanceGivesNonContainment) {
  Omq q = MakeOmq(S({{"R", 2}}), "R(X,Y) -> P(Y).", "Q(X) :- P(X)");
  Database db = Db("R(a,b).");
  // a is NOT a certain answer.
  auto instance = EvalToContainment(q, db, {Term::Constant("a")});
  ASSERT_TRUE(instance.ok());
  auto contained = CheckContainment(instance->q1, instance->q2);
  ASSERT_TRUE(contained.ok());
  EXPECT_EQ(contained->outcome, ContainmentOutcome::kNotContained);
}

TEST(Prop5Test, AgreesWithDirectEvaluationOnManyTuples) {
  Omq q = MakeOmq(S({{"E", 2}}), "E(X,Y), E(Y,Z) -> P2(X,Z).",
                  "Q(X,Y) :- P2(X,Y)");
  Database db = Db("E(a,b). E(b,c). E(c,d).");
  for (const char* from : {"a", "b", "c", "d"}) {
    for (const char* to : {"a", "b", "c", "d"}) {
      std::vector<Term> tuple{Term::Constant(from), Term::Constant(to)};
      bool direct = EvalTuple(q, db, tuple).value();
      auto instance = EvalToContainment(q, db, tuple);
      ASSERT_TRUE(instance.ok());
      auto contained = CheckContainment(instance->q1, instance->q2);
      ASSERT_TRUE(contained.ok());
      EXPECT_EQ(contained->outcome == ContainmentOutcome::kContained,
                direct)
          << from << " -> " << to;
    }
  }
}

// ---------- Prop. 6: c̄ ∈ Q(D) iff Q1 ⊄ Q2. ----------

TEST(Prop6Test, PositiveInstanceGivesNonContainment) {
  Omq q = MakeOmq(S({{"R", 2}}), "R(X,Y) -> P(Y).", "Q(X) :- P(X)");
  Database db = Db("R(a,b).");
  auto instance = EvalToCoContainment(q, db, {Term::Constant("b")});
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  auto contained = CheckContainment(instance->q1, instance->q2);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  EXPECT_EQ(contained->outcome, ContainmentOutcome::kNotContained);
}

TEST(Prop6Test, NegativeInstanceGivesContainment) {
  Omq q = MakeOmq(S({{"R", 2}}), "R(X,Y) -> P(Y).", "Q(X) :- P(X)");
  Database db = Db("R(a,b).");
  auto instance = EvalToCoContainment(q, db, {Term::Constant("a")});
  ASSERT_TRUE(instance.ok());
  auto contained = CheckContainment(instance->q1, instance->q2);
  ASSERT_TRUE(contained.ok());
  EXPECT_EQ(contained->outcome, ContainmentOutcome::kContained);
}

TEST(Prop6Test, StarredOntologyStaysInClass) {
  // The construction adds fact tgds — every class is closed under that.
  Omq q = MakeOmq(S({{"R", 2}}), "R(X,Y) -> P(Y).", "Q(X) :- P(X)");
  auto instance = EvalToCoContainment(q, Db("R(a,b)."),
                                      {Term::Constant("b")});
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(IsLinear(instance->q1.tgds));
}

// ---------- Prop. 9: UCQ → CQ. ----------

TEST(Prop9Test, PreservesAnswersOnBooleanUcq) {
  Schema schema = S({{"A", 1}, {"B", 1}});
  UcqOmq ucq_omq{schema, ParseTgds("A(X) -> P(X).").value(),
                 ParseUCQ("Q() :- P(X). Q() :- B(X).").value()};
  auto cq_omq = UcqOmqToCqOmq(ucq_omq);
  ASSERT_TRUE(cq_omq.ok()) << cq_omq.status().ToString();

  for (const char* db_text : {"A(a).", "B(b).", "A(a). B(b)."}) {
    Database db = Db(db_text);
    // Original: evaluate the UCQ under the ontology via the chase.
    bool original = false;
    for (const ConjunctiveQuery& d : ucq_omq.query.disjuncts) {
      Omq single{ucq_omq.data_schema, ucq_omq.tgds, d};
      if (EvalTuple(single, db, {}).value()) original = true;
    }
    auto transformed = EvalTuple(*cq_omq, db, {});
    ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
    EXPECT_EQ(*transformed, original) << db_text;
  }
}

TEST(Prop9Test, FalseWhenNoDisjunctHolds) {
  Schema schema = S({{"A", 1}, {"B", 1}, {"C", 1}});
  UcqOmq ucq_omq{schema, TgdSet{},
                 ParseUCQ("Q() :- A(X), B(X). Q() :- C(X).").value()};
  Omq cq_omq = UcqOmqToCqOmq(ucq_omq).value();
  EXPECT_FALSE(EvalTuple(cq_omq, Db("A(a). B(b)."), {}).value());
  EXPECT_TRUE(EvalTuple(cq_omq, Db("A(a). B(a)."), {}).value());
  EXPECT_TRUE(EvalTuple(cq_omq, Db("C(c)."), {}).value());
}

TEST(Prop9Test, PreservesLinearity) {
  Schema schema = S({{"A", 1}});
  UcqOmq ucq_omq{schema, ParseTgds("A(X) -> P(X,Y). P(X,Y) -> B(Y).").value(),
                 ParseUCQ("Q() :- B(X). Q() :- A(X).").value()};
  Omq cq_omq = UcqOmqToCqOmq(ucq_omq).value();
  EXPECT_TRUE(IsLinear(cq_omq.tgds));
}

TEST(Prop9Test, PreservesGuardedness) {
  Schema schema = S({{"R", 2}, {"A", 1}});
  UcqOmq ucq_omq{schema,
                 ParseTgds("R(X,Y), A(X) -> A(Y).").value(),
                 ParseUCQ("Q() :- A(X). Q() :- R(X,X).").value()};
  Omq cq_omq = UcqOmqToCqOmq(ucq_omq).value();
  EXPECT_TRUE(IsGuarded(cq_omq.tgds));
}

TEST(Prop9Test, PreservesNonRecursiveness) {
  Schema schema = S({{"A", 1}});
  UcqOmq ucq_omq{schema, ParseTgds("A(X) -> B(X). B(X) -> C(X).").value(),
                 ParseUCQ("Q() :- C(X). Q() :- B(X).").value()};
  Omq cq_omq = UcqOmqToCqOmq(ucq_omq).value();
  EXPECT_TRUE(IsNonRecursive(cq_omq.tgds));
}

TEST(Prop9Test, RejectsNonBooleanUcq) {
  Schema schema = S({{"A", 1}});
  UcqOmq ucq_omq{schema, TgdSet{}, ParseUCQ("Q(X) :- A(X).").value()};
  auto result = UcqOmqToCqOmq(ucq_omq);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(Prop9Test, WorksWithFactTgdOntologies) {
  // Fact tgds derive atoms true in every model: on the empty database the
  // transform must still agree.
  Schema schema = S({{"A", 1}});
  UcqOmq ucq_omq{schema, ParseTgds("-> B(c).").value(),
                 ParseUCQ("Q() :- B(X). Q() :- A(X).").value()};
  Omq cq_omq = UcqOmqToCqOmq(ucq_omq).value();
  EXPECT_TRUE(EvalTuple(cq_omq, Database{}, {}).value());
}

}  // namespace
}  // namespace omqc
