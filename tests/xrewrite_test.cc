// Tests for the XRewrite algorithm (Algorithm 1), including the paper's
// Example 1 and the size-bound propositions 12/14/17.

#include <gtest/gtest.h>

#include "logic/homomorphism.h"
#include "rewrite/unify.h"
#include "rewrite/xrewrite.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

TgdSet Tgds(const std::string& text) { return ParseTgds(text).value(); }
ConjunctiveQuery Q(const std::string& text) {
  return ParseQuery(text).value();
}
Database Db(const std::string& text) { return ParseDatabase(text).value(); }

Schema SchemaOf(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

TEST(UnifyTest, BasicUnification) {
  Atom a1 = ParseAtom("R(X,Y)").value();
  Atom a2 = ParseAtom("R(U,a)").value();
  auto mgu = MostGeneralUnifier({a1, a2});
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->Apply(a1), mgu->Apply(a2));
  EXPECT_EQ(mgu->Apply(Term::Variable("Y")), Term::Constant("a"));
}

TEST(UnifyTest, ClashingConstantsFail) {
  Atom a1 = ParseAtom("R(a,X)").value();
  Atom a2 = ParseAtom("R(b,Y)").value();
  EXPECT_FALSE(MostGeneralUnifier({a1, a2}).has_value());
}

TEST(UnifyTest, TransitiveMerging) {
  Atom a1 = ParseAtom("R(X,X)").value();
  Atom a2 = ParseAtom("R(Y,a)").value();
  auto mgu = MostGeneralUnifier({a1, a2});
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->Apply(Term::Variable("X")), Term::Constant("a"));
  EXPECT_EQ(mgu->Apply(Term::Variable("Y")), Term::Constant("a"));
}

TEST(UnifyTest, ThreeAtoms) {
  auto mgu = MostGeneralUnifier({ParseAtom("R(X,Y)").value(),
                                 ParseAtom("R(Y,Z)").value(),
                                 ParseAtom("R(Z,X)").value()});
  ASSERT_TRUE(mgu.has_value());
  Term image = mgu->Apply(Term::Variable("X"));
  EXPECT_EQ(mgu->Apply(Term::Variable("Y")), image);
  EXPECT_EQ(mgu->Apply(Term::Variable("Z")), image);
}

TEST(UnifyTest, DifferentPredicatesFail) {
  EXPECT_FALSE(MostGeneralUnifier({ParseAtom("R(X,Y)").value(),
                                   ParseAtom("P(X,Y)").value()})
                   .has_value());
}

// Example 1 of the paper: S = {P, T}, Σ = { P(x) → ∃y R(x,y),
// R(x,y) → P(y), T(x) → P(x) }, q(x) = ∃y (R(x,y) ∧ P(y)).
// The UCQ rewriting over S is P(x) ∨ T(x).
TEST(XRewriteTest, PaperExample1) {
  Schema s = SchemaOf({{"P", 1}, {"T", 1}});
  TgdSet tgds = Tgds(
      "P(X) -> R(X,Y)."
      "R(X,Y) -> P(Y)."
      "T(X) -> P(X).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  auto rewriting = XRewrite(s, tgds, q);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  UnionOfCQs minimized = MinimizeUCQ(*rewriting);
  ASSERT_EQ(minimized.size(), 2u) << minimized.ToString();
  // Exactly P(x) and T(x), modulo renaming.
  UnionOfCQs expected = ParseUCQ("Q(X) :- P(X). Q(X) :- T(X).").value();
  EXPECT_TRUE(UCQContainedIn(minimized, expected));
  EXPECT_TRUE(UCQContainedIn(expected, minimized));
}

TEST(XRewriteTest, RewritingIsEquivalentToChaseEvaluation) {
  Schema s = SchemaOf({{"P", 1}, {"T", 1}});
  TgdSet tgds = Tgds(
      "P(X) -> R(X,Y)."
      "R(X,Y) -> P(Y)."
      "T(X) -> P(X).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  UnionOfCQs rewriting = XRewrite(s, tgds, q).value();
  Database db = Db("T(a). P(b).");
  auto rewritten_answers = EvaluateUCQ(rewriting, db);
  EXPECT_EQ(rewritten_answers.size(), 2u);  // both a and b
}

TEST(XRewriteTest, EmptyOntologyReturnsQueryItself) {
  Schema s = SchemaOf({{"R", 2}});
  auto rewriting = XRewrite(s, TgdSet{}, Q("Q(X) :- R(X,Y)"));
  ASSERT_TRUE(rewriting.ok());
  ASSERT_EQ(rewriting->size(), 1u);
  EXPECT_TRUE(IsomorphicCQs(rewriting->disjuncts[0], Q("Q(X) :- R(X,Y)")));
}

TEST(XRewriteTest, QueryOverNonDataPredicateNeedsResolution) {
  // The query predicate is not in S: only resolved forms survive.
  Schema s = SchemaOf({{"A", 1}});
  TgdSet tgds = Tgds("A(X) -> B(X).");
  auto rewriting = XRewrite(s, tgds, Q("Q(X) :- B(X)"));
  ASSERT_TRUE(rewriting.ok());
  ASSERT_EQ(rewriting->size(), 1u);
  EXPECT_TRUE(IsomorphicCQs(rewriting->disjuncts[0], Q("Q(X) :- A(X)")));
}

TEST(XRewriteTest, LinearBoundProposition12) {
  // With linear tgds no disjunct has more atoms than the original query.
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds(
      "P(X) -> R(X,Y)."
      "R(X,Y) -> P(X).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y), R(Y,Z)");
  XRewriteStats stats;
  auto rewriting = XRewrite(s, tgds, q, XRewriteOptions(), &stats);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_LE(stats.max_disjunct_atoms, LinearRewriteBound(q));
}

TEST(XRewriteTest, ApplicabilityBlocksSharedExistentialPosition) {
  // σ = P(u) → ∃w R(w,u): R(X,Y) has the shared variable X at the
  // existential position R[1], so resolution must not fire directly; the
  // factorization step recovers it (the paper's example after Def. 6).
  Schema s = SchemaOf({{"P", 1}});
  TgdSet tgds = Tgds("P(U) -> R(W,U).");
  ConjunctiveQuery q = Q("Q() :- R(X,Y), R(X,Z)");
  auto rewriting = XRewrite(s, tgds, q);
  ASSERT_TRUE(rewriting.ok());
  ASSERT_EQ(rewriting->size(), 1u);
  EXPECT_TRUE(IsomorphicCQs(rewriting->disjuncts[0], Q("Q() :- P(Y)")));
}

TEST(XRewriteTest, ConstantAtExistentialPositionBlocks) {
  // R(a,Y): constant at the existential position W of P(U) → R(W,U).
  Schema s = SchemaOf({{"P", 1}, {"R", 2}});
  TgdSet tgds = Tgds("P(U) -> R(W,U).");
  auto rewriting = XRewrite(s, tgds, Q("Q() :- R(a,Y)"));
  ASSERT_TRUE(rewriting.ok());
  // Only the original query survives; no resolution with the tgd.
  ASSERT_EQ(rewriting->size(), 1u);
  EXPECT_EQ(rewriting->disjuncts[0].body[0].predicate,
            Predicate::Get("R", 2));
}

TEST(XRewriteTest, StickyRewritingStaysWithinProposition17) {
  Schema s = SchemaOf({{"R", 2}, {"P", 2}});
  TgdSet tgds = Tgds(
      "R(X,Y), P(X,Z) -> T(X,Y,Z)."
      "T(X,Y,Z) -> R(Y,X).");
  ConjunctiveQuery q = Q("Q() :- T(X,Y,Z), R(Y,X)");
  XRewriteStats stats;
  auto rewriting = XRewrite(s, tgds, q, XRewriteOptions(), &stats);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_LE(stats.max_disjunct_atoms, StickyRewriteBound(s, tgds, q));
}

TEST(XRewriteTest, NonRecursiveRewritingStaysWithinProposition14) {
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds(
      "R(X,Y), P(Y) -> S(X,Y)."
      "S(X,Y), S(Y,Z) -> U(X,Z).");
  ConjunctiveQuery q = Q("Q(X) :- U(X,Y)");
  XRewriteStats stats;
  auto rewriting = XRewrite(s, tgds, q, XRewriteOptions(), &stats);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_GT(rewriting->size(), 0u);
  EXPECT_LE(stats.max_disjunct_atoms, NonRecursiveRewriteBound(tgds, q));
}

TEST(XRewriteTest, BudgetExceededIsReported) {
  // Guarded recursive ontology whose rewriting is infinite without
  // pruning.
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds("R(X,Y), P(Y) -> P(X).");
  ConjunctiveQuery q = Q("Q() :- P(c)");
  XRewriteOptions options;
  options.max_queries = 50;
  auto rewriting = XRewrite(s, tgds, q, options);
  EXPECT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), StatusCode::kResourceExhausted);
}

TEST(XRewriteTest, EnumerationReportsDisjunctsIncrementally) {
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds("R(X,Y), P(Y) -> P(X).");
  ConjunctiveQuery q = Q("Q() :- P(c)");
  XRewriteOptions options;
  options.max_queries = 40;
  int count = 0;
  auto outcome = EnumerateRewritings(
      s, tgds, q, options, [&count](const ConjunctiveQuery&) {
        ++count;
        return true;
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, RewriteEnumeration::kBudgetExhausted);
  EXPECT_GT(count, 3);  // P(c), R(c,y)∧P(y), R(c,y)∧R(y,z)∧P(z), ...
}

TEST(XRewriteTest, PruningTerminatesWhenRewritingIsBounded) {
  // P propagates backwards along R; with q = ∃x P(x) the perfect
  // rewriting collapses to P(x) — pruning detects this and saturates.
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds("R(X,Y), P(Y) -> P(X).");
  ConjunctiveQuery q = Q("Q() :- P(X)");
  XRewriteOptions options;
  options.prune_subsumed = true;
  int count = 0;
  auto outcome = EnumerateRewritings(
      s, tgds, q, options, [&count](const ConjunctiveQuery&) {
        ++count;
        return true;
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, RewriteEnumeration::kSaturated);
  EXPECT_EQ(count, 1);
}

TEST(XRewriteTest, QueryBudgetIsNeverOvershot) {
  // Infinite perfect rewriting (P propagates backwards along R, no
  // pruning): the admission-time cap must stop the run with at most
  // max_queries stored queries — the budget cannot be overshot by a
  // whole exploration round (regression).
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds("R(X,Y), P(Y) -> P(X).");
  ConjunctiveQuery q = Q("Q() :- P(X)");
  XRewriteOptions options;
  options.max_queries = 3;
  XRewriteStats stats;
  int reported = 0;
  auto outcome = EnumerateRewritings(
      s, tgds, q, options,
      [&reported](const ConjunctiveQuery&) {
        ++reported;
        return true;
      },
      &stats);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, RewriteEnumeration::kBudgetExhausted);
  EXPECT_LE(stats.queries_generated, options.max_queries);
  EXPECT_LE(static_cast<size_t>(reported), options.max_queries);
}

TEST(XRewriteTest, StepBudgetIsNeverOvershot) {
  Schema s = SchemaOf({{"R", 2}, {"P", 1}});
  TgdSet tgds = Tgds("R(X,Y), P(Y) -> P(X).");
  XRewriteOptions options;
  options.max_steps = 2;
  XRewriteStats stats;
  auto outcome = EnumerateRewritings(
      s, tgds, Q("Q() :- P(X)"), options,
      [](const ConjunctiveQuery&) { return true; }, &stats);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, RewriteEnumeration::kBudgetExhausted);
  EXPECT_LE(stats.rewriting_steps + stats.factorization_steps,
            options.max_steps);
}

TEST(XRewriteTest, StatsCountDedupHits) {
  // T and U both rewrite into P(x): the second arrival of an ≃-equivalent
  // candidate is dropped and counted.
  Schema s = SchemaOf({{"P", 1}, {"T", 1}});
  TgdSet tgds = Tgds("P(X) -> T(X).");
  XRewriteStats stats;
  auto rewriting =
      XRewrite(s, tgds, Q("Q(X) :- T(X), T(X)"), XRewriteOptions(), &stats);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_GT(stats.queries_generated, 0u);
}

TEST(XRewriteTest, StoppedByCallback) {
  Schema s = SchemaOf({{"P", 1}, {"T", 1}});
  TgdSet tgds = Tgds("T(X) -> P(X).");
  auto outcome = EnumerateRewritings(
      s, tgds, Q("Q(X) :- P(X)"), XRewriteOptions(),
      [](const ConjunctiveQuery&) { return false; });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, RewriteEnumeration::kStopped);
}

TEST(XRewriteTest, RenamedDuplicateTgdsCollapseToOneDisjunct) {
  // Three α-equivalent copies of the same tgd: every copy produces the
  // same rewriting disjunct up to variable renaming, and the canonical
  // dedup must collapse them — 2 disjuncts (T and P), not 4.
  Schema s = SchemaOf({{"P", 1}, {"T", 1}});
  TgdSet tgds = Tgds("P(X) -> T(X). P(U) -> T(U). P(A0) -> T(A0).");
  XRewriteStats stats;
  auto rewriting =
      XRewrite(s, tgds, Q("Q(X) :- T(X)"), XRewriteOptions(), &stats);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_EQ(rewriting->size(), 2u);
  EXPECT_GE(stats.dedup_hits, 2u);
  // No two output disjuncts may be renamings of each other.
  for (size_t i = 0; i < rewriting->disjuncts.size(); ++i) {
    for (size_t j = i + 1; j < rewriting->disjuncts.size(); ++j) {
      EXPECT_FALSE(
          IsomorphicCQs(rewriting->disjuncts[i], rewriting->disjuncts[j]));
    }
  }
}

TEST(XRewriteTest, RewritingDuplicateUpgradesFactorizationEntry) {
  // q0 = Q() :- R(A,C), R(B,C) factorizes to Q() :- R(A,C) (label f),
  // which rewrites to Q() :- P(A), which rewrites back to an isomorphic
  // copy of the factorization query — now labeled r. That copy must
  // upgrade the existing entry instead of being admitted (and explored)
  // as a renamed duplicate.
  Schema s = SchemaOf({{"P", 1}, {"R", 2}});
  TgdSet tgds = Tgds("P(X) -> R(X,Z). R(X,Y) -> P(X).");
  XRewriteOptions options;
  options.minimize_disjuncts = false;  // keep q0 as the 2-atom query
  XRewriteStats stats;
  auto rewriting =
      XRewrite(s, tgds, Q("Q() :- R(A,C), R(B,C)"), options, &stats);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  // q0, the (upgraded) factorization query and the P-query.
  EXPECT_EQ(rewriting->size(), 3u);
  // Exactly three entries were admitted: the isomorphic rewriting copy
  // was deduplicated into the factorization entry, not appended.
  EXPECT_EQ(stats.queries_generated, 3u);
  EXPECT_GE(stats.dedup_hits, 1u);
  bool has_single_r_disjunct = false;
  for (const ConjunctiveQuery& d : rewriting->disjuncts) {
    if (d.body.size() == 1 &&
        d.body.front().predicate == Predicate::Get("R", 2)) {
      has_single_r_disjunct = true;
    }
  }
  EXPECT_TRUE(has_single_r_disjunct)
      << "upgraded factorization query missing from the final rewriting:\n"
      << rewriting->ToString();
}

TEST(MinimizeUCQTest, DropsSubsumedDisjuncts) {
  UnionOfCQs ucq =
      ParseUCQ("Q(X) :- R(X,Y). Q(X) :- R(X,Y), R(Y,Z). Q(X) :- P(X).")
          .value();
  UnionOfCQs minimized = MinimizeUCQ(ucq);
  EXPECT_EQ(minimized.size(), 2u);
}

TEST(MinimizeUCQTest, KeepsEquivalentRepresentative) {
  UnionOfCQs ucq =
      ParseUCQ("Q(X) :- R(X,Y). Q(U) :- R(U,V).").value();
  EXPECT_EQ(MinimizeUCQ(ucq).size(), 1u);
}

}  // namespace
}  // namespace omqc
