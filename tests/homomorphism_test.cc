// Tests for the CQ evaluation engine (homomorphism search).

#include <gtest/gtest.h>

#include "base/governor.h"
#include "logic/homomorphism.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) {
  auto db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.value();
}

ConjunctiveQuery Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value();
}

TEST(HomomorphismTest, FindsSimpleMatch) {
  Database db = Db("R(a,b). P(b).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  auto hom = FindHomomorphism(q.body, db);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->Apply(Term::Variable("X")), Term::Constant("a"));
}

TEST(HomomorphismTest, RespectsJoins) {
  Database db = Db("R(a,b). P(c).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  EXPECT_FALSE(FindHomomorphism(q.body, db).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  Database db = Db("R(a,b).");
  ConjunctiveQuery q1 = Q("Q() :- R(a,Y)");
  ConjunctiveQuery q2 = Q("Q() :- R(b,Y)");
  EXPECT_TRUE(FindHomomorphism(q1.body, db).has_value());
  EXPECT_FALSE(FindHomomorphism(q2.body, db).has_value());
}

TEST(HomomorphismTest, SeedConstrainsSearch) {
  Database db = Db("R(a,b). R(c,d).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y)");
  Substitution seed;
  seed.Bind(Term::Variable("X"), Term::Constant("c"));
  auto hom = FindHomomorphism(q.body, db, seed);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->Apply(Term::Variable("Y")), Term::Constant("d"));
}

TEST(HomomorphismTest, PinnedAtomDrawsFromSuppliedList) {
  Database db = Db("R(a,b). R(b,c). R(c,d). P(b). P(c). P(d).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y), P(Y)");
  // Pin the R atom to a single candidate: only homomorphisms mapping
  // R(X,Y) onto R(b,c) are enumerated; P(Y) still matches in the full
  // instance.
  std::vector<Atom> delta = {
      Atom::Make("R", {Term::Constant("b"), Term::Constant("c")})};
  std::vector<Substitution> found;
  ForEachHomomorphismPinned(q.body, /*pinned_index=*/0, delta, db,
                            Substitution(), [&](const Substitution& sub) {
                              found.push_back(sub);
                              return true;
                            });
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].Apply(Term::Variable("X")), Term::Constant("b"));
  EXPECT_EQ(found[0].Apply(Term::Variable("Y")), Term::Constant("c"));
}

TEST(HomomorphismTest, PinnedAtomSkipsOtherPredicates) {
  Database db = Db("R(a,b). P(b).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y)");
  // Candidates with a different predicate are filtered, not mismatched.
  std::vector<Atom> delta = {Atom::Make("P", {Term::Constant("b")}),
                             Atom::Make("R", {Term::Constant("a"),
                                              Term::Constant("b")})};
  int count = 0;
  ForEachHomomorphismPinned(q.body, 0, delta, db, Substitution(),
                            [&](const Substitution&) {
                              ++count;
                              return true;
                            });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, PinnedEnumerationMatchesFullEnumerationOnWholeList) {
  Database db = Db("R(a,b). R(b,c). R(a,c). P(b). P(c).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y), P(Y)");
  int full = 0;
  ForEachHomomorphism(q.body, db, Substitution(),
                      [&](const Substitution&) {
                        ++full;
                        return true;
                      });
  // Pinning atom 0 to ALL R atoms is the identity decomposition.
  int pinned = 0;
  ForEachHomomorphismPinned(q.body, 0, db.AtomsWith(Predicate::Get("R", 2)),
                            db, Substitution(), [&](const Substitution&) {
                              ++pinned;
                              return true;
                            });
  EXPECT_EQ(full, pinned);
  EXPECT_EQ(full, 3);  // (a,b), (b,c), (a,c) all satisfy P(Y)
}

TEST(HomomorphismTest, EnumeratesAllHomomorphisms) {
  Database db = Db("R(a,b). R(a,c). R(d,e).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y)");
  int count = 0;
  ForEachHomomorphism(q.body, db, Substitution(),
                      [&count](const Substitution&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 3);
}

TEST(HomomorphismTest, EarlyStop) {
  Database db = Db("R(a,b). R(a,c). R(d,e).");
  ConjunctiveQuery q = Q("Q(X,Y) :- R(X,Y)");
  int count = 0;
  ForEachHomomorphism(q.body, db, Substitution(),
                      [&count](const Substitution&) {
                        ++count;
                        return false;
                      });
  EXPECT_EQ(count, 1);
}

TEST(EvaluateCQTest, CollectsConstantTuples) {
  Database db = Db("R(a,b). R(b,c). P(b).");
  auto answers = EvaluateCQ(Q("Q(X) :- R(X,Y), P(Y)"), db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], Term::Constant("a"));
}

TEST(EvaluateCQTest, NullsAreNotAnswers) {
  Instance inst;
  Term n = Term::FreshNull();
  inst.Add(Atom::Make("R", {Term::Constant("a"), n}));
  auto answers = EvaluateCQ(Q("Q(X,Y) :- R(X,Y)"), inst);
  EXPECT_TRUE(answers.empty());  // (a, null) filtered out
  auto boolean = EvaluateCQ(Q("Q() :- R(X,Y)"), inst);
  EXPECT_EQ(boolean.size(), 1u);  // but the Boolean projection holds
}

TEST(EvaluateCQTest, EmptyBodyYieldsEmptyTuple) {
  Database db;
  ConjunctiveQuery q({}, {});
  auto answers = EvaluateCQ(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

TEST(EvaluateUCQTest, UnionsAndDeduplicates) {
  Database db = Db("R(a,b). P(a).");
  UnionOfCQs ucq = ParseUCQ("Q(X) :- R(X,Y). Q(X) :- P(X).").value();
  auto answers = EvaluateUCQ(ucq, db);
  EXPECT_EQ(answers.size(), 1u);  // both disjuncts give (a)
}

TEST(TupleInAnswerTest, ChecksMembership) {
  Database db = Db("R(a,b). R(b,c).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y)");
  EXPECT_TRUE(TupleInAnswer(q, db, {Term::Constant("a")}));
  EXPECT_TRUE(TupleInAnswer(q, db, {Term::Constant("b")}));
  EXPECT_FALSE(TupleInAnswer(q, db, {Term::Constant("c")}));
}

TEST(TupleInAnswerTest, RepeatedAnswerVariables) {
  Database db = Db("R(a,a). R(a,b).");
  ConjunctiveQuery q = Q("Q(X,X) :- R(X,X)");
  EXPECT_TRUE(
      TupleInAnswer(q, db, {Term::Constant("a"), Term::Constant("a")}));
  EXPECT_FALSE(
      TupleInAnswer(q, db, {Term::Constant("a"), Term::Constant("b")}));
}

TEST(CQContainmentTest, ChandraMerlin) {
  // More atoms = more constrained: longer chains are contained in shorter.
  ConjunctiveQuery path2 = Q("Q(X) :- R(X,Y), R(Y,Z)");
  ConjunctiveQuery path1 = Q("Q(X) :- R(X,Y)");
  EXPECT_TRUE(CQContainedIn(path2, path1));
  EXPECT_FALSE(CQContainedIn(path1, path2));
}

TEST(CQContainmentTest, SelfContainment) {
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  EXPECT_TRUE(CQContainedIn(q, q));
}

TEST(UCQContainmentTest, SagivYannakakis) {
  UnionOfCQs u1 = ParseUCQ("Q(X) :- R(X,Y), R(Y,Z).").value();
  UnionOfCQs u2 = ParseUCQ("Q(X) :- R(X,Y). Q(X) :- P(X).").value();
  EXPECT_TRUE(UCQContainedIn(u1, u2));
  EXPECT_FALSE(UCQContainedIn(u2, u1));
}

TEST(HomomorphismTest, BudgetedSearchDistinguishesExhaustionFromAbsence) {
  // q has no match in db: unbounded search proves it, a 1-step budget
  // cannot — the tri-state result must say kExhausted, not kNotFound.
  Database db = Db("R(a,b). P(z).");
  ConjunctiveQuery q = Q("Q() :- R(X,Y), P(Y)");
  EXPECT_EQ(SearchHomomorphism(q.body, db), HomSearchOutcome::kNotFound);
  HomomorphismOptions tiny;
  tiny.max_steps = 1;
  EXPECT_EQ(SearchHomomorphism(q.body, db, Substitution(), tiny),
            HomSearchOutcome::kExhausted);
  // A match found within the budget is still kFound.
  Database matching = Db("R(a,b). P(b).");
  HomomorphismOptions enough;
  enough.max_steps = 100;
  EXPECT_EQ(SearchHomomorphism(q.body, matching, Substitution(), enough),
            HomSearchOutcome::kFound);
}

TEST(HomomorphismTest, CountersTallySearchWork) {
  Database db = Db("R(a,b). R(b,c). P(c).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), P(Y)");
  HomCounters counters;
  HomomorphismOptions options;
  options.counters = &counters;
  EXPECT_EQ(SearchHomomorphism(q.body, db, Substitution(), options),
            HomSearchOutcome::kFound);
  EXPECT_EQ(counters.searches, 1u);
  EXPECT_GT(counters.steps, 0u);
  EXPECT_GT(counters.candidates_scanned, 0u);
  EXPECT_EQ(counters.budget_exhaustions, 0u);

  options.max_steps = 1;
  ConjunctiveQuery none = Q("Q() :- R(X,Y), P(X)");
  EXPECT_EQ(SearchHomomorphism(none.body, db, Substitution(), options),
            HomSearchOutcome::kExhausted);
  EXPECT_EQ(counters.searches, 2u);
  EXPECT_EQ(counters.budget_exhaustions, 1u);
}

TEST(HomomorphismTest, CandidatesUseMostSelectiveIndex) {
  // Atom R(a,c): position 0 indexes 101 atoms, position 1 only one. The
  // candidate scan must use the smaller list (regression: the old code
  // took the first bound position and scanned all 101).
  Database db;
  for (int i = 0; i < 100; ++i) {
    db.Add(Atom::Make("R", {Term::Constant("a"),
                            Term::Constant("b" + std::to_string(i))}));
  }
  db.Add(Atom::Make("R", {Term::Constant("a"), Term::Constant("c")}));
  ConjunctiveQuery q = Q("Q() :- R(a,c)");
  HomCounters counters;
  HomomorphismOptions options;
  options.counters = &counters;
  EXPECT_EQ(SearchHomomorphism(q.body, db, Substitution(), options),
            HomSearchOutcome::kFound);
  EXPECT_EQ(counters.candidates_scanned, 1u);
}

TEST(HomomorphismTest, EmptyBoundPostingsShortCircuitBeforeGovernor) {
  // R(zz,X): the bound constant zz never occurs at position 0, so the
  // (R, 0, zz) postings list is empty. BuildCandidates must refute the
  // atom outright — no candidates scanned, no intersection run, and no
  // governor probe burned on a search a single index lookup settles
  // (regression: the old pick-smallest heuristic consulted the governor
  // before discovering the scan set was empty).
  Database db;
  for (int i = 0; i < 200; ++i) {
    db.Add(Atom::Make("R", {Term::Constant("a"),
                            Term::Constant("b" + std::to_string(i))}));
  }
  ConjunctiveQuery q = Q("Q(X) :- R(zz,X)");
  HomCounters counters;
  ResourceGovernor governor;
  HomomorphismOptions options;
  options.counters = &counters;
  options.governor = &governor;
  EXPECT_EQ(SearchHomomorphism(q.body, db, Substitution(), options),
            HomSearchOutcome::kNotFound);
  EXPECT_EQ(counters.candidates_scanned, 0u);
  EXPECT_EQ(counters.postings_intersections, 0u);
  EXPECT_EQ(governor.counters().checks, 0u);
}

TEST(HomomorphismTest, IntersectionCountersPinned) {
  // R(a,c) with both positions bound: position 0 matches 101 atoms,
  // position 1 matches 3 (R(a,c), R(x1,c), R(x2,c)); the intersection is
  // the single atom R(a,c). Exactly one k-way intersection runs, the
  // backtracking loop touches exactly one candidate, and the pruning
  // counter credits the 2 candidates the intersection removed relative to
  // scanning the smallest list (the pre-kernel heuristic's scan set).
  Database db;
  for (int i = 0; i < 100; ++i) {
    db.Add(Atom::Make("R", {Term::Constant("a"),
                            Term::Constant("b" + std::to_string(i))}));
  }
  db.Add(Atom::Make("R", {Term::Constant("a"), Term::Constant("c")}));
  db.Add(Atom::Make("R", {Term::Constant("x1"), Term::Constant("c")}));
  db.Add(Atom::Make("R", {Term::Constant("x2"), Term::Constant("c")}));
  ConjunctiveQuery q = Q("Q() :- R(a,c)");
  HomCounters counters;
  HomomorphismOptions options;
  options.counters = &counters;
  EXPECT_EQ(SearchHomomorphism(q.body, db, Substitution(), options),
            HomSearchOutcome::kFound);
  EXPECT_EQ(counters.postings_intersections, 1u);
  EXPECT_EQ(counters.candidates_scanned, 1u);
  EXPECT_EQ(counters.candidates_pruned_by_intersection, 2u);
}

TEST(TupleInAnswerTest, BudgetedTriState) {
  Database db = Db("R(a,b). R(b,c).");
  ConjunctiveQuery q = Q("Q(X) :- R(X,Y), R(Y,Z)");
  EXPECT_EQ(TupleInAnswerBudgeted(q, db, {Term::Constant("a")}),
            HomSearchOutcome::kFound);
  EXPECT_EQ(TupleInAnswerBudgeted(q, db, {Term::Constant("b")}),
            HomSearchOutcome::kNotFound);
  HomomorphismOptions tiny;
  tiny.max_steps = 1;
  EXPECT_EQ(TupleInAnswerBudgeted(q, db, {Term::Constant("b")}, tiny),
            HomSearchOutcome::kExhausted);
  // Arity mismatch is a definite miss, not an exhaustion.
  EXPECT_EQ(TupleInAnswerBudgeted(q, db, {}, tiny),
            HomSearchOutcome::kNotFound);
}

TEST(HomomorphismTest, LargerJoinUsesIndexes) {
  // A modest butterfly join to exercise the most-constrained-first order.
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.Add(Atom::Make("E", {Term::Constant("v" + std::to_string(i)),
                            Term::Constant("v" + std::to_string(i + 1))}));
  }
  ConjunctiveQuery q = Q("Q(A) :- E(A,B), E(B,C), E(C,D), E(D,F)");
  auto answers = EvaluateCQ(q, db);
  EXPECT_EQ(answers.size(), 27u);
}

}  // namespace
}  // namespace omqc
