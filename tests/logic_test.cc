// Unit tests for src/logic: terms, atoms, instances, substitutions, CQs.

#include <gtest/gtest.h>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/substitution.h"
#include "logic/term.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

TEST(TermTest, ConstantsAreInterned) {
  Term a1 = Term::Constant("a");
  Term a2 = Term::Constant("a");
  Term b = Term::Constant("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_TRUE(a1.IsConstant());
  EXPECT_EQ(a1.ToString(), "a");
}

TEST(TermTest, VariablesAreDistinctFromConstants) {
  Term x = Term::Variable("x_name");
  Term c = Term::Constant("x_name");
  EXPECT_NE(x, c);
  EXPECT_TRUE(x.IsVariable());
  EXPECT_TRUE(c.IsConstant());
}

TEST(TermTest, FreshNullsAreDistinct) {
  Term n1 = Term::FreshNull();
  Term n2 = Term::FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.IsNull());
  EXPECT_EQ(n1, Term::NullWithId(n1.id()));
}

TEST(TermTest, TotalOrderIsConsistent) {
  Term a = Term::Constant("a");
  Term x = Term::Variable("X");
  Term n = Term::FreshNull();
  EXPECT_TRUE(a < n || n < a);
  EXPECT_TRUE(a < x || x < a);
  EXPECT_FALSE(a < a);
}

TEST(PredicateTest, InterningRespectsArity) {
  Predicate p1 = Predicate::Get("R", 2);
  Predicate p2 = Predicate::Get("R", 2);
  Predicate p3 = Predicate::Get("R", 3);
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(p1.name(), "R");
  EXPECT_EQ(p3.arity(), 3);
  EXPECT_EQ(p1.ToString(), "R/2");
}

TEST(AtomTest, BasicProperties) {
  Atom fact = Atom::Make("R", {Term::Constant("a"), Term::Constant("b")});
  EXPECT_TRUE(fact.IsFact());
  EXPECT_TRUE(fact.NullFree());
  EXPECT_EQ(fact.ToString(), "R(a,b)");

  Atom open = Atom::Make("R", {Term::Constant("a"), Term::Variable("X")});
  EXPECT_FALSE(open.IsFact());
  EXPECT_EQ(open.Variables().size(), 1u);
}

TEST(SchemaTest, MaxArityAndUnion) {
  Schema s1(std::set<Predicate>{Predicate::Get("R", 2),
                                Predicate::Get("P", 1)});
  Schema s2(std::set<Predicate>{Predicate::Get("T", 3)});
  EXPECT_EQ(s1.MaxArity(), 2);
  Schema u = s1.Union(s2);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.MaxArity(), 3);
  EXPECT_TRUE(u.Contains(Predicate::Get("P", 1)));
}

TEST(InstanceTest, AddDeduplicatesAndIndexes) {
  Instance inst;
  Atom r_ab = Atom::Make("R", {Term::Constant("a"), Term::Constant("b")});
  EXPECT_TRUE(inst.Add(r_ab));
  EXPECT_FALSE(inst.Add(r_ab));
  EXPECT_EQ(inst.size(), 1u);
  EXPECT_TRUE(inst.Contains(r_ab));
  EXPECT_EQ(inst.AtomsWith(Predicate::Get("R", 2)).size(), 1u);
  EXPECT_EQ(
      inst.AtomsWithArg(Predicate::Get("R", 2), 0, Term::Constant("a"))
          .size(),
      1u);
  EXPECT_TRUE(
      inst.AtomsWithArg(Predicate::Get("R", 2), 0, Term::Constant("b"))
          .empty());
}

TEST(InstanceTest, ActiveDomainAndSchema) {
  Instance inst;
  inst.Add(Atom::Make("R", {Term::Constant("a"), Term::FreshNull()}));
  inst.Add(Atom::Make("P", {Term::Constant("a")}));
  EXPECT_EQ(inst.ActiveDomain().size(), 2u);
  EXPECT_EQ(inst.ActiveDomainConstants().size(), 1u);
  EXPECT_EQ(inst.InducedSchema().size(), 2u);
  EXPECT_FALSE(inst.IsDatabase());
}

TEST(InstanceTest, InducedSubinstance) {
  Database db = ParseDatabase("R(a,b). R(b,c). P(a).").value();
  Instance induced =
      db.InducedBy({Term::Constant("a"), Term::Constant("b")});
  EXPECT_EQ(induced.size(), 2u);  // R(a,b) and P(a)
}

TEST(InstanceTest, ConnectedComponents) {
  Database db =
      ParseDatabase("R(a,b). R(b,c). R(x,y). P(z). Zero().").value();
  std::vector<Instance> components = db.ConnectedComponents();
  EXPECT_EQ(components.size(), 3u);  // {a,b,c}, {x,y}, {z}; Zero() excluded
}

TEST(SubstitutionTest, ApplyAndTransitive) {
  Substitution s;
  Term x = Term::Variable("X"), y = Term::Variable("Y");
  Term a = Term::Constant("a");
  s.Bind(x, y);
  s.Bind(y, a);
  EXPECT_EQ(s.Apply(x), y);
  EXPECT_EQ(s.ApplyTransitively(x), a);
  EXPECT_EQ(s.Apply(a), a);
  s.Unbind(x);
  EXPECT_EQ(s.Apply(x), x);
}

TEST(CQTest, VariableClassification) {
  ConjunctiveQuery q = ParseQuery("Q(X) :- R(X,Y), P(Y), S(Y,Z)").value();
  EXPECT_EQ(q.Variables().size(), 3u);
  EXPECT_EQ(q.ExistentialVariables().size(), 2u);  // Y, Z
  std::set<Term> shared = q.SharedVariables();
  EXPECT_TRUE(shared.count(Term::Variable("X")) > 0);  // free
  EXPECT_TRUE(shared.count(Term::Variable("Y")) > 0);  // multiple atoms
  EXPECT_FALSE(shared.count(Term::Variable("Z")) > 0);
  std::set<Term> multi = q.VariablesInMultipleAtoms();
  EXPECT_EQ(multi.size(), 1u);  // only Y
}

TEST(CQTest, SharedCountsRepetitionInsideOneAtom) {
  ConjunctiveQuery q = ParseQuery("Q() :- R(X,X), P(Y)").value();
  std::set<Term> shared = q.SharedVariables();
  EXPECT_TRUE(shared.count(Term::Variable("X")) > 0);
  EXPECT_FALSE(shared.count(Term::Variable("Y")) > 0);
}

TEST(CQTest, Components) {
  ConjunctiveQuery q =
      ParseQuery("Q(X) :- R(X,Y), P(Y), S(U,V), T(W)").value();
  std::vector<ConjunctiveQuery> components = q.Components();
  EXPECT_EQ(components.size(), 3u);
}

TEST(CQTest, FreezeProducesCanonicalDatabase) {
  ConjunctiveQuery q = ParseQuery("Q(X) :- R(X,Y), P(Y)").value();
  FrozenQuery frozen = Freeze(q);
  EXPECT_EQ(frozen.database.size(), 2u);
  EXPECT_TRUE(frozen.database.IsDatabase());
  EXPECT_EQ(frozen.answer_tuple.size(), 1u);
  EXPECT_TRUE(frozen.answer_tuple[0].IsConstant());
}

TEST(CQTest, FreezeKeepsConstants) {
  ConjunctiveQuery q = ParseQuery("Q() :- R(X,a)").value();
  FrozenQuery frozen = Freeze(q);
  const Atom& atom = frozen.database.atoms().front();
  EXPECT_EQ(atom.args[1], Term::Constant("a"));
  EXPECT_NE(atom.args[0], Term::Constant("a"));
}

TEST(CQTest, ValidateRejectsUnboundAnswerVariable) {
  ConjunctiveQuery q({Term::Variable("Z")},
                     {Atom::Make("R", {Term::Variable("X")})});
  EXPECT_FALSE(ValidateCQ(q).ok());
}

TEST(IsomorphismTest, RenamedQueriesAreIsomorphic) {
  ConjunctiveQuery q1 = ParseQuery("Q(X) :- R(X,Y), P(Y)").value();
  ConjunctiveQuery q2 = ParseQuery("Q(U) :- R(U,V), P(V)").value();
  EXPECT_TRUE(IsomorphicCQs(q1, q2));
}

TEST(IsomorphismTest, DifferentShapesAreNot) {
  ConjunctiveQuery q1 = ParseQuery("Q(X) :- R(X,Y), P(Y)").value();
  ConjunctiveQuery q2 = ParseQuery("Q(X) :- R(X,Y), P(X)").value();
  EXPECT_FALSE(IsomorphicCQs(q1, q2));
}

TEST(IsomorphismTest, ConstantsMustMatchExactly) {
  ConjunctiveQuery q1 = ParseQuery("Q() :- R(X,a)").value();
  ConjunctiveQuery q2 = ParseQuery("Q() :- R(X,b)").value();
  ConjunctiveQuery q3 = ParseQuery("Q() :- R(Y,a)").value();
  EXPECT_FALSE(IsomorphicCQs(q1, q2));
  EXPECT_TRUE(IsomorphicCQs(q1, q3));
}

TEST(IsomorphismTest, AnswerTupleMustCorrespond) {
  ConjunctiveQuery q1 = ParseQuery("Q(X,Y) :- R(X,Y)").value();
  ConjunctiveQuery q2 = ParseQuery("Q(Y,X) :- R(X,Y)").value();
  EXPECT_FALSE(IsomorphicCQs(q1, q2));
}

TEST(IsomorphismTest, RepeatedVariablePatternsDiffer) {
  ConjunctiveQuery q1 = ParseQuery("Q() :- R(X,X)").value();
  ConjunctiveQuery q2 = ParseQuery("Q() :- R(X,Y)").value();
  EXPECT_FALSE(IsomorphicCQs(q1, q2));
  EXPECT_FALSE(IsomorphicCQs(q2, q1));
}

}  // namespace
}  // namespace omqc
