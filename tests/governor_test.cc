// Unit tests for the ResourceGovernor: deadline/cancellation/memory trips,
// stickiness, parent-child linkage and counter accounting. The chaos-level
// tests driving whole engine entry points live in fault_injection_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "base/governor.h"

namespace omqc {
namespace {

// Calls Check() often enough to guarantee at least one wall-clock sample
// (the clock is only consulted every kClockStride-th check).
Status CheckPastClockStride(ResourceGovernor& governor) {
  Status last = Status::OK();
  for (uint64_t i = 0; i <= ResourceGovernor::kClockStride; ++i) {
    last = governor.Check();
    if (!last.ok()) return last;
  }
  return last;
}

TEST(GovernorTest, UnlimitedGovernorNeverTrips) {
  ResourceGovernor governor;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(governor.Check().ok());
  }
  EXPECT_TRUE(governor.ChargeBytes(size_t{1} << 40).ok());
  EXPECT_FALSE(governor.tripped());
  EXPECT_TRUE(governor.TripStatus().ok());
  EXPECT_EQ(governor.counters().checks, 1000u);
  EXPECT_FALSE(governor.counters().any_trip());
}

TEST(GovernorTest, ExpiredDeadlineTripsAndSticks) {
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::nanoseconds(0));
  Status st = CheckPastClockStride(governor);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(governor.tripped());
  // Sticky: every further probe fails identically, without waiting for a
  // clock-sample stride.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(governor.Check().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(governor.TripStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(governor.counters().deadline_trips, 1u);
  EXPECT_EQ(governor.counters().cancel_trips, 0u);
}

TEST(GovernorTest, FutureDeadlineDoesNotTrip) {
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::hours(1));
  EXPECT_TRUE(CheckPastClockStride(governor).ok());
  EXPECT_FALSE(governor.tripped());
}

TEST(GovernorTest, CancellationTripsOnNextCheck) {
  ResourceGovernor governor;
  EXPECT_TRUE(governor.Check().ok());
  governor.Cancel();
  EXPECT_TRUE(governor.token().cancelled());
  Status st = governor.Check();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(governor.counters().cancel_trips, 1u);
}

TEST(GovernorTest, MemoryBudgetTripsOnOvercharge) {
  ResourceGovernor governor;
  governor.set_memory_budget(100);
  EXPECT_TRUE(governor.ChargeBytes(60).ok());
  EXPECT_EQ(governor.charged_bytes(), 60u);
  Status st = governor.ChargeBytes(60);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.counters().memory_trips, 1u);
  // Sticky: releasing bytes never un-trips.
  governor.ReleaseBytes(120);
  EXPECT_EQ(governor.ChargeBytes(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.Check().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, FirstTripWins) {
  ResourceGovernor governor;
  governor.set_memory_budget(10);
  EXPECT_EQ(governor.ChargeBytes(100).code(),
            StatusCode::kResourceExhausted);
  governor.Cancel();
  // The memory trip was latched first; cancellation cannot overwrite it.
  EXPECT_EQ(governor.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.counters().memory_trips, 1u);
  EXPECT_EQ(governor.counters().cancel_trips, 0u);
}

TEST(GovernorTest, ChildObservesParentCancellation) {
  ResourceGovernor parent;
  ResourceGovernor child(&parent);
  EXPECT_TRUE(child.Check().ok());
  parent.Cancel();
  EXPECT_EQ(child.Check().code(), StatusCode::kCancelled);
  EXPECT_TRUE(child.tripped());
  // The trip is counted once, at the root.
  EXPECT_EQ(parent.counters().cancel_trips, 1u);
  EXPECT_EQ(child.counters().cancel_trips, 1u);  // child reports the root
}

TEST(GovernorTest, ChildCancellationDoesNotTouchParent) {
  ResourceGovernor parent;
  ResourceGovernor child(&parent);
  child.Cancel();
  EXPECT_EQ(child.Check().code(), StatusCode::kCancelled);
  EXPECT_TRUE(parent.Check().ok());
  EXPECT_FALSE(parent.tripped());
}

TEST(GovernorTest, ChildObservesParentDeadline) {
  ResourceGovernor parent;
  parent.set_deadline_after(std::chrono::nanoseconds(0));
  ResourceGovernor child(&parent);
  EXPECT_EQ(CheckPastClockStride(child).code(),
            StatusCode::kDeadlineExceeded);
  // Deadline trips latch on the parent too: its next check is immediate.
  EXPECT_EQ(parent.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, ChildChargesAccumulateAtRoot) {
  ResourceGovernor parent;
  parent.set_memory_budget(100);
  ResourceGovernor child(&parent);
  EXPECT_TRUE(child.ChargeBytes(80).ok());
  EXPECT_EQ(parent.charged_bytes(), 80u);
  // A second child sees the shared budget nearly exhausted.
  ResourceGovernor sibling(&parent);
  EXPECT_EQ(sibling.ChargeBytes(40).code(),
            StatusCode::kResourceExhausted);
  // The trip latches on the governor whose budget was exceeded — the
  // parent (the user's request governor) must observe it too, or a
  // child's overcharge would be invisible to the caller.
  EXPECT_TRUE(parent.tripped());
  EXPECT_EQ(parent.TripStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parent.counters().memory_trips, 1u);
}

TEST(GovernorTest, ConcurrentCheckersObserveOneStickyTrip) {
  ResourceGovernor governor;
  std::vector<std::thread> threads;
  std::atomic<int> trips{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&governor, &trips] {
      for (int i = 0; i < 2000; ++i) {
        if (!governor.Check().ok()) {
          ++trips;
          return;
        }
      }
    });
  }
  governor.Cancel();
  for (auto& th : threads) th.join();
  // Under a slow scheduler every worker may finish its 2000 checks before
  // Cancel() lands; the token is sticky, so one more check must trip.
  (void)governor.Check();
  // Not all threads necessarily observe the trip (some may finish their
  // 2000 checks first), but the trip is counted exactly once.
  EXPECT_EQ(governor.counters().cancel_trips, 1u);
  EXPECT_EQ(governor.TripStatus().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, TripStatusOrPrefersTrip) {
  Status fallback = Status::ResourceExhausted("step budget");
  EXPECT_EQ(TripStatusOr(nullptr, fallback), fallback);
  ResourceGovernor untripped;
  EXPECT_EQ(TripStatusOr(&untripped, fallback), fallback);
  ResourceGovernor tripped;
  tripped.Cancel();
  (void)tripped.Check();
  EXPECT_EQ(TripStatusOr(&tripped, fallback).code(), StatusCode::kCancelled);
}

TEST(GovernorCountersTest, MergeTakesElementwiseMax) {
  GovernorCounters a;
  a.checks = 10;
  a.deadline_trips = 1;
  GovernorCounters b;
  b.checks = 7;
  b.memory_trips = 1;
  a.Merge(b);
  EXPECT_EQ(a.checks, 10u);
  EXPECT_EQ(a.deadline_trips, 1u);
  EXPECT_EQ(a.memory_trips, 1u);
  EXPECT_TRUE(a.any_trip());
}

TEST(GovernorTest, InjectedDeadlineFiresAtExactCheckIndex) {
  FaultPlan plan;
  plan.deadline_at_check = 5;
  FaultInjector injector(plan);
  ResourceGovernor governor;
  governor.set_fault_injector(&injector);
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(governor.Check().ok()) << "tripped early at check " << i;
  }
  EXPECT_EQ(governor.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(governor.counters().deadline_trips, 1u);
}

TEST(GovernorTest, InjectedMemoryFaultFiresAtExactChargeIndex) {
  FaultPlan plan;
  plan.memory_at_charge = 3;
  FaultInjector injector(plan);
  ResourceGovernor governor;
  governor.set_fault_injector(&injector);
  EXPECT_TRUE(governor.ChargeBytes(8).ok());
  EXPECT_TRUE(governor.ChargeBytes(8).ok());
  EXPECT_EQ(governor.ChargeBytes(8).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.counters().memory_trips, 1u);
}

TEST(GovernorTest, InjectorOnAncestorGovernsChildren) {
  FaultPlan plan;
  plan.cancel_at_check = 2;
  FaultInjector injector(plan);
  ResourceGovernor parent;
  parent.set_fault_injector(&injector);
  ResourceGovernor child(&parent);
  EXPECT_TRUE(child.Check().ok());
  EXPECT_EQ(child.Check().code(), StatusCode::kCancelled);
}

// The server layers one request governor per in-flight request under a
// shared tenant/server chain (src/server/tenant.h). These two tests pin
// the fan-out contract that layering relies on, at the pool sizes the
// server suite uses (1/2/8).

TEST(GovernorTest, ParentCancellationFansOutToAllChildren) {
  for (size_t num_children : {1u, 2u, 8u}) {
    ResourceGovernor parent;
    std::vector<std::unique_ptr<ResourceGovernor>> children;
    for (size_t i = 0; i < num_children; ++i) {
      children.push_back(std::make_unique<ResourceGovernor>(&parent));
    }
    std::atomic<size_t> cancelled{0};
    std::vector<std::thread> workers;
    for (size_t i = 0; i < num_children; ++i) {
      workers.emplace_back([&cancelled, child = children[i].get()]() {
        // Spin until the parent's cancellation reaches this child.
        while (child->Check().ok()) std::this_thread::yield();
        if (child->TripStatus().code() == StatusCode::kCancelled) {
          cancelled.fetch_add(1);
        }
      });
    }
    parent.Cancel();
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(cancelled.load(), num_children)
        << "children=" << num_children;
    // Inherited trips are counted once at the root, not once per child.
    EXPECT_EQ(parent.counters().cancel_trips, 1u)
        << "children=" << num_children;
  }
}

TEST(GovernorTest, ChildTripNeverTouchesSiblingsOrParent) {
  for (size_t num_children : {1u, 2u, 8u}) {
    ResourceGovernor parent;
    std::vector<std::unique_ptr<ResourceGovernor>> children;
    for (size_t i = 0; i < num_children + 1; ++i) {
      children.push_back(std::make_unique<ResourceGovernor>(&parent));
    }
    // Child 0 trips on its own token; its siblings keep checking
    // concurrently and must never observe the trip.
    std::atomic<bool> sibling_tripped{false};
    std::vector<std::thread> workers;
    for (size_t i = 1; i <= num_children; ++i) {
      workers.emplace_back(
          [&sibling_tripped, child = children[i].get()]() {
            for (int n = 0; n < 5000; ++n) {
              if (!child->Check().ok()) {
                sibling_tripped.store(true);
                return;
              }
            }
          });
    }
    children[0]->Cancel();
    EXPECT_EQ(children[0]->Check().code(), StatusCode::kCancelled);
    for (std::thread& w : workers) w.join();
    EXPECT_FALSE(sibling_tripped.load()) << "children=" << num_children;
    EXPECT_TRUE(parent.TripStatus().ok());
    EXPECT_EQ(parent.counters().cancel_trips, 1u);
    for (size_t i = 1; i <= num_children; ++i) {
      EXPECT_TRUE(children[i]->TripStatus().ok());
    }
  }
}

}  // namespace
}  // namespace omqc
