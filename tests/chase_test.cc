// Tests for the chase engine (Sec. 2 "Tgds and the chase procedure").
//
// Every behavioral fixture runs as a TEST_P sweep over both trigger-
// enumeration strategies (kNaive, kSemiNaive): the strategies must be
// observably identical — same certain answers, steps, atoms_per_level and
// completeness — differing only in how many triggers they enumerate.
// ChaseEquivalenceTest additionally cross-validates the two engines on
// randomized OMQ families from src/generators.

#include <gtest/gtest.h>

#include <random>

#include "chase/chase.h"
#include "generators/families.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) { return ParseDatabase(text).value(); }
TgdSet Tgds(const std::string& text) { return ParseTgds(text).value(); }
ConjunctiveQuery Q(const std::string& text) {
  return ParseQuery(text).value();
}

class ChaseStrategyTest : public ::testing::TestWithParam<ChaseStrategy> {
 protected:
  ChaseOptions Opts() const {
    ChaseOptions options;
    options.strategy = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Strategies, ChaseStrategyTest,
    ::testing::Values(ChaseStrategy::kNaive, ChaseStrategy::kSemiNaive),
    [](const ::testing::TestParamInfo<ChaseStrategy>& info) {
      return info.param == ChaseStrategy::kNaive ? "Naive" : "SemiNaive";
    });

TEST_P(ChaseStrategyTest, SingleStepCreatesNull) {
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y)."), Opts()).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.size(), 2u);
  EXPECT_EQ(result.steps, 1u);
  // The new atom holds a fresh null in the second position.
  bool found = false;
  for (const Atom& a : result.instance.atoms()) {
    if (a.predicate == Predicate::Get("R", 2)) {
      EXPECT_EQ(a.args[0], Term::Constant("a"));
      EXPECT_TRUE(a.args[1].IsNull());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(ChaseStrategyTest, RestrictedChaseSkipsSatisfiedHeads) {
  // R(a,b) already satisfies the head for X=a.
  ChaseResult result =
      Chase(Db("P(a). R(a,b)."), Tgds("P(X) -> R(X,Y)."), Opts()).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.instance.size(), 2u);
}

TEST_P(ChaseStrategyTest, ObliviousChaseFiresAnyway) {
  ChaseOptions options = Opts();
  options.variant = ChaseVariant::kOblivious;
  ChaseResult result =
      Chase(Db("P(a). R(a,b)."), Tgds("P(X) -> R(X,Y)."), options).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 1u);
  EXPECT_EQ(result.instance.size(), 3u);
}

TEST_P(ChaseStrategyTest, FactTgdsFireOnEmptyDatabase) {
  ChaseResult result =
      Chase(Database{}, Tgds("-> Tile(X). Tile(X) -> Good(X)."), Opts())
          .value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.size(), 2u);
}

TEST_P(ChaseStrategyTest, MultiHeadAtomsShareNulls) {
  ChaseResult result =
      Chase(Db("A(a)."), Tgds("A(X) -> R(X,Y), P(Y)."), Opts()).value();
  EXPECT_TRUE(result.complete);
  // R(a,n) and P(n) with the same null n.
  Term null_in_r, null_in_p;
  for (const Atom& a : result.instance.atoms()) {
    if (a.predicate == Predicate::Get("R", 2)) null_in_r = a.args[1];
    if (a.predicate == Predicate::Get("P", 1)) null_in_p = a.args[0];
  }
  EXPECT_TRUE(null_in_r.IsNull());
  EXPECT_EQ(null_in_r, null_in_p);
}

TEST_P(ChaseStrategyTest, NonRecursiveChaseTerminates) {
  TgdSet tgds = Tgds(
      "R(X,Y) -> S(Y,Z)."
      "S(X,Y) -> T(X,Y)."
      "T(X,Y), S(X,Y) -> U(X).");
  ChaseResult result = Chase(Db("R(a,b). R(b,c)."), tgds, Opts()).value();
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.instance.size(), 4u);
}

TEST_P(ChaseStrategyTest, LevelBudgetTruncatesInfiniteChase) {
  // Linear recursive: infinite chase.
  ChaseOptions options = Opts();
  options.max_level = 4;
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y). R(X,Y) -> P(Y)."), options)
          .value();
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.max_level_reached, 4);
  EXPECT_GE(result.instance.size(), 5u);
}

TEST_P(ChaseStrategyTest, AtomBudgetStopsEarly) {
  ChaseOptions options = Opts();
  options.max_atoms = 10;
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y), P(Y)."), options).value();
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.instance.size(), 12u);
}

TEST_P(ChaseStrategyTest, RestrictedChaseOfUnconstrainedHeadTerminates) {
  // ∃Y P(Y) is satisfied by any P atom: the restricted chase of
  // P(X) -> P(Y) stops immediately (the oblivious one would not).
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> P(Y)."), Opts()).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 0u);
}

TEST_P(ChaseStrategyTest, LevelsTrackDerivationDepth) {
  ChaseResult result =
      Chase(Db("A(a)."), Tgds("A(X) -> B(X). B(X) -> C(X). C(X) -> D(X)."),
            Opts())
          .value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.max_level_reached, 3);
  ASSERT_EQ(result.atoms_per_level.size(), 4u);
  EXPECT_EQ(result.atoms_per_level[0], 1u);
  EXPECT_EQ(result.atoms_per_level[3], 1u);
}

TEST_P(ChaseStrategyTest, ConstantInTgdHead) {
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,c)."), Opts()).value();
  EXPECT_TRUE(result.instance.Contains(
      Atom::Make("R", {Term::Constant("a"), Term::Constant("c")})));
}

TEST_P(ChaseStrategyTest, ConstantInTgdBodyPinsDeltaScans) {
  // The recursive body atom C(Y,hub) carries a constant, so the
  // semi-naive delta scan runs over the by-arg postings of `hub` and the
  // derived C(.,noise) atoms never enter the pinned enumeration. Both
  // strategies must reach the same closure.
  ChaseResult result =
      Chase(Db("E(a,b). E(b,c). C(c,hub). C(c,noise)."),
            Tgds("E(X,Y), C(Y,hub) -> C(X,hub). C(X,hub) -> C(X,noise)."),
            Opts())
          .value();
  EXPECT_TRUE(result.complete);
  for (const char* x : {"a", "b", "c"}) {
    EXPECT_TRUE(result.instance.Contains(
        Atom::Make("C", {Term::Constant(x), Term::Constant("hub")})))
        << x;
    EXPECT_TRUE(result.instance.Contains(
        Atom::Make("C", {Term::Constant(x), Term::Constant("noise")})))
        << x;
  }
  EXPECT_EQ(result.instance.size(), 8u);
}

TEST_P(ChaseStrategyTest, ProvenanceRecordsPremises) {
  ChaseOptions options = Opts();
  options.track_provenance = true;
  ChaseResult result =
      Chase(Db("A(a)."), Tgds("A(X) -> B(X). B(X) -> C(X)."), options)
          .value();
  ASSERT_TRUE(result.complete);
  Atom c = Atom::Make("C", {Term::Constant("a")});
  const ChaseResult::Provenance* why = result.ProvenanceOf(c);
  ASSERT_NE(why, nullptr);
  EXPECT_EQ(why->tgd_index, 1u);
  ASSERT_EQ(why->premise_ids.size(), 1u);
  EXPECT_EQ(result.instance.MaterializeAtom(why->premise_ids[0]),
            Atom::Make("B", {Term::Constant("a")}));
}

TEST_P(ChaseStrategyTest, ViaChase) {
  ChaseOptions options = Opts();
  auto answers = CertainAnswersViaChase(Q("Q(X) :- S(X,Y)"),
                                        Db("R(a,b)."),
                                        Tgds("R(X,Y) -> S(Y,Z)."), options);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("b"));
}

TEST_P(ChaseStrategyTest, BudgetExhaustionIsAnError) {
  ChaseOptions options = Opts();
  options.max_level = 3;
  auto answers = CertainAnswersViaChase(
      Q("Q() :- Unreachable(X)"), Db("P(a)."),
      Tgds("P(X) -> R(X,Y). R(X,Y) -> P(Y)."), options);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST_P(ChaseStrategyTest, CertainAnswerSemanticsMatchPaperExample) {
  // cert(q, D, Σ) = q(chase(D, Σ)): nulls witness existentials but are
  // never answers.
  TgdSet tgds =
      Tgds("Person(X) -> HasParent(X,Y). HasParent(X,Y) -> Person(Y).");
  ChaseOptions options = Opts();
  options.max_level = 6;
  ChaseResult result = Chase(Db("Person(alice)."), tgds, options).value();
  auto people = EvaluateCQ(Q("Q(X) :- Person(X)"), result.instance);
  ASSERT_EQ(people.size(), 1u);  // alice; ancestors are nulls
  auto has_parent = EvaluateCQ(Q("Q() :- HasParent(X,Y)"), result.instance);
  EXPECT_EQ(has_parent.size(), 1u);
}

TEST(ChaseCountersTest, SemiNaiveEnumeratesFewerTriggersOnMultiRound) {
  // Transitive closure over a chain needs one fixpoint round per hop; the
  // naive engine re-enumerates every old trigger each round.
  Database db;
  for (int i = 0; i < 8; ++i) {
    db.Add(Atom::Make("E", {Term::Constant("c" + std::to_string(i)),
                            Term::Constant("c" + std::to_string(i + 1))}));
  }
  TgdSet tgds = Tgds("E(X,Y) -> T(X,Y). T(X,Y), E(Y,Z) -> T(X,Z).");
  ChaseOptions naive;
  naive.strategy = ChaseStrategy::kNaive;
  ChaseOptions semi;
  semi.strategy = ChaseStrategy::kSemiNaive;
  ChaseResult n = Chase(db, tgds, naive).value();
  ChaseResult s = Chase(db, tgds, semi).value();
  ASSERT_TRUE(n.complete);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(n.steps, s.steps);
  EXPECT_EQ(n.instance, s.instance);  // full tgds: no nulls, exact match
  EXPECT_EQ(n.atoms_per_level, s.atoms_per_level);
  EXPECT_GT(n.rounds, 2u);
  EXPECT_LT(s.triggers_enumerated, n.triggers_enumerated);
  // Semi-naive never re-discovers an old trigger: every enumerated
  // trigger is either fresh or a multi-decomposition duplicate.
  EXPECT_GT(n.redundant_triggers_skipped, 0u);
  EXPECT_EQ(s.redundant_triggers_skipped, 0u);
}

// ---------- Randomized strategy-equivalence sweep. ----------

/// A deterministic random database over the given predicates (mirrors the
/// helper in property_test.cc).
Database RandomDatabase(const Schema& schema, int domain_size, int facts,
                        uint32_t seed) {
  std::mt19937 rng(seed);
  Database db;
  std::vector<Predicate> preds(schema.predicates().begin(),
                               schema.predicates().end());
  for (int i = 0; i < facts && !preds.empty(); ++i) {
    const Predicate& p =
        preds[rng() % static_cast<uint32_t>(preds.size())];
    std::vector<Term> args;
    for (int j = 0; j < p.arity(); ++j) {
      args.push_back(Term::Constant(
          "d" + std::to_string(rng() % static_cast<uint32_t>(domain_size))));
    }
    db.Add(Atom(p, std::move(args)));
  }
  return db;
}

class ChaseEquivalenceTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  /// Chases `db` under both strategies and asserts identical observable
  /// results: completeness, steps, atoms_per_level, instance size and the
  /// certain answers of `query`.
  void ExpectStrategiesAgree(const Database& db, const TgdSet& tgds,
                             const ConjunctiveQuery& query,
                             ChaseOptions base) {
    base.strategy = ChaseStrategy::kNaive;
    ChaseResult naive = Chase(db, tgds, base).value();
    base.strategy = ChaseStrategy::kSemiNaive;
    ChaseResult semi = Chase(db, tgds, base).value();
    EXPECT_EQ(naive.complete, semi.complete);
    EXPECT_EQ(naive.steps, semi.steps);
    EXPECT_EQ(naive.max_level_reached, semi.max_level_reached);
    EXPECT_EQ(naive.atoms_per_level, semi.atoms_per_level);
    EXPECT_EQ(naive.instance.size(), semi.instance.size());
    EXPECT_EQ(EvaluateCQ(query, naive.instance),
              EvaluateCQ(query, semi.instance));
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseEquivalenceTest,
                         ::testing::Range(1u, 51u));

TEST_P(ChaseEquivalenceTest, NonRecursiveRestricted) {
  RandomOmqConfig config;
  config.target = TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 10, GetParam() * 7 + 1);
  ExpectStrategiesAgree(db, q.tgds, q.query, ChaseOptions());
}

TEST_P(ChaseEquivalenceTest, NonRecursiveOblivious) {
  RandomOmqConfig config;
  config.target = TgdClass::kNonRecursive;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 8, GetParam() * 13 + 2);
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  ExpectStrategiesAgree(db, q.tgds, q.query, options);
}

TEST_P(ChaseEquivalenceTest, FullRestricted) {
  RandomOmqConfig config;
  config.target = TgdClass::kFull;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 3, 12, GetParam() * 3 + 5);
  ExpectStrategiesAgree(db, q.tgds, q.query, ChaseOptions());
}

TEST_P(ChaseEquivalenceTest, LinearWithLevelBudget) {
  RandomOmqConfig config;
  config.target = TgdClass::kLinear;
  config.seed = GetParam();
  Omq q = MakeRandomOmq(config);
  Database db = RandomDatabase(q.data_schema, 4, 10, GetParam() * 17 + 3);
  ChaseOptions options;
  options.max_level = 8;  // linear sets may not terminate
  ExpectStrategiesAgree(db, q.tgds, q.query, options);
}

TEST_P(ChaseEquivalenceTest, EliChainOntology) {
  TgdSet tgds = MakeEliChainOntology(3 + static_cast<int>(GetParam() % 3));
  Database db = MakeChainDatabase(4 + static_cast<int>(GetParam() % 4));
  db.Add(Atom::Make("A0", {Term::Constant("c0")}));
  ChaseOptions options;
  options.max_level = 6;  // guarded: chase may be infinite
  ExpectStrategiesAgree(db, tgds, Q("Q(X) :- A0(X)"), options);
}

}  // namespace
}  // namespace omqc
