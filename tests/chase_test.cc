// Tests for the chase engine (Sec. 2 "Tgds and the chase procedure").

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) { return ParseDatabase(text).value(); }
TgdSet Tgds(const std::string& text) { return ParseTgds(text).value(); }
ConjunctiveQuery Q(const std::string& text) {
  return ParseQuery(text).value();
}

TEST(ChaseTest, SingleStepCreatesNull) {
  ChaseResult result = Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y).")).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.size(), 2u);
  EXPECT_EQ(result.steps, 1u);
  // The new atom holds a fresh null in the second position.
  bool found = false;
  for (const Atom& a : result.instance.atoms()) {
    if (a.predicate == Predicate::Get("R", 2)) {
      EXPECT_EQ(a.args[0], Term::Constant("a"));
      EXPECT_TRUE(a.args[1].IsNull());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChaseTest, RestrictedChaseSkipsSatisfiedHeads) {
  // R(a,b) already satisfies the head for X=a.
  ChaseResult result =
      Chase(Db("P(a). R(a,b)."), Tgds("P(X) -> R(X,Y).")).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.instance.size(), 2u);
}

TEST(ChaseTest, ObliviousChaseFiresAnyway) {
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  ChaseResult result =
      Chase(Db("P(a). R(a,b)."), Tgds("P(X) -> R(X,Y)."), options).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 1u);
  EXPECT_EQ(result.instance.size(), 3u);
}

TEST(ChaseTest, FactTgdsFireOnEmptyDatabase) {
  ChaseResult result =
      Chase(Database{}, Tgds("-> Tile(X). Tile(X) -> Good(X).")).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.size(), 2u);
}

TEST(ChaseTest, MultiHeadAtomsShareNulls) {
  ChaseResult result =
      Chase(Db("A(a)."), Tgds("A(X) -> R(X,Y), P(Y).")).value();
  EXPECT_TRUE(result.complete);
  // R(a,n) and P(n) with the same null n.
  Term null_in_r, null_in_p;
  for (const Atom& a : result.instance.atoms()) {
    if (a.predicate == Predicate::Get("R", 2)) null_in_r = a.args[1];
    if (a.predicate == Predicate::Get("P", 1)) null_in_p = a.args[0];
  }
  EXPECT_TRUE(null_in_r.IsNull());
  EXPECT_EQ(null_in_r, null_in_p);
}

TEST(ChaseTest, NonRecursiveChaseTerminates) {
  TgdSet tgds = Tgds(
      "R(X,Y) -> S(Y,Z)."
      "S(X,Y) -> T(X,Y)."
      "T(X,Y), S(X,Y) -> U(X).");
  ChaseResult result = Chase(Db("R(a,b). R(b,c)."), tgds).value();
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.instance.size(), 4u);
}

TEST(ChaseTest, LevelBudgetTruncatesInfiniteChase) {
  // Linear recursive: infinite chase.
  ChaseOptions options;
  options.max_level = 4;
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y). R(X,Y) -> P(Y)."), options)
          .value();
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.max_level_reached, 4);
  EXPECT_GE(result.instance.size(), 5u);
}

TEST(ChaseTest, AtomBudgetStopsEarly) {
  ChaseOptions options;
  options.max_atoms = 10;
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,Y), P(Y)."), options).value();
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.instance.size(), 12u);
}

TEST(ChaseTest, RestrictedChaseOfUnconstrainedHeadTerminates) {
  // ∃Y P(Y) is satisfied by any P atom: the restricted chase of
  // P(X) -> P(Y) stops immediately (the oblivious one would not).
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> P(Y).")).value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.steps, 0u);
}

TEST(ChaseTest, LevelsTrackDerivationDepth) {
  ChaseResult result =
      Chase(Db("A(a)."), Tgds("A(X) -> B(X). B(X) -> C(X). C(X) -> D(X)."))
          .value();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.max_level_reached, 3);
  ASSERT_EQ(result.atoms_per_level.size(), 4u);
  EXPECT_EQ(result.atoms_per_level[0], 1u);
  EXPECT_EQ(result.atoms_per_level[3], 1u);
}

TEST(ChaseTest, ConstantInTgdHead) {
  ChaseResult result =
      Chase(Db("P(a)."), Tgds("P(X) -> R(X,c).")).value();
  EXPECT_TRUE(result.instance.Contains(
      Atom::Make("R", {Term::Constant("a"), Term::Constant("c")})));
}

TEST(CertainAnswersTest, ViaChase) {
  auto answers = CertainAnswersViaChase(Q("Q(X) :- S(X,Y)"),
                                        Db("R(a,b)."),
                                        Tgds("R(X,Y) -> S(Y,Z)."));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("b"));
}

TEST(CertainAnswersTest, BudgetExhaustionIsAnError) {
  ChaseOptions options;
  options.max_level = 3;
  auto answers = CertainAnswersViaChase(
      Q("Q() :- Unreachable(X)"), Db("P(a)."),
      Tgds("P(X) -> R(X,Y). R(X,Y) -> P(Y)."), options);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChaseTest, CertainAnswerSemanticsMatchPaperExample) {
  // cert(q, D, Σ) = q(chase(D, Σ)): nulls witness existentials but are
  // never answers.
  TgdSet tgds = Tgds("Person(X) -> HasParent(X,Y). HasParent(X,Y) -> Person(Y).");
  ChaseOptions options;
  options.max_level = 6;
  ChaseResult result = Chase(Db("Person(alice)."), tgds, options).value();
  auto people = EvaluateCQ(Q("Q(X) :- Person(X)"), result.instance);
  ASSERT_EQ(people.size(), 1u);  // alice; ancestors are nulls
  auto has_parent = EvaluateCQ(Q("Q() :- HasParent(X,Y)"), result.instance);
  EXPECT_EQ(has_parent.size(), 1u);
}

}  // namespace
}  // namespace omqc
