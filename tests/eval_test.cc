// Tests for OMQ evaluation (Sec. 2, Props. 1-4 behaviours).

#include <gtest/gtest.h>

#include "core/eval.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Omq MakeOmq(const std::string& tgds, const std::string& query,
            std::initializer_list<std::pair<const char*, int>> schema) {
  Schema s;
  for (const auto& [name, arity] : schema) {
    s.Add(Predicate::Get(name, arity));
  }
  return Omq{s, ParseTgds(tgds).value(), ParseQuery(query).value()};
}

Database Db(const std::string& text) { return ParseDatabase(text).value(); }

TEST(EvalTest, EmptyOntologyIsPlainEvaluation) {
  Omq q = MakeOmq("", "Q(X) :- R(X,Y)", {{"R", 2}});
  auto answers = EvalAll(q, Db("R(a,b)."));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
}

TEST(EvalTest, LinearOntologyViaRewriting) {
  Omq q = MakeOmq(
      "P(X) -> R(X,Y). R(X,Y) -> P(Y). T(X) -> P(X).",
      "Q(X) :- R(X,Y), P(Y)", {{"P", 1}, {"T", 1}});
  auto answers = EvalAll(q, Db("T(a). P(b)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(EvalTest, RewriteAndChaseAgreeOnLinear) {
  Omq q = MakeOmq("A(X) -> R(X,Y). R(X,Y) -> B(Y).",
                  "Q(X) :- R(X,Y)", {{"A", 1}, {"R", 2}});
  Database db = Db("A(a). R(b,c).");
  EvalOptions rewrite_options;
  rewrite_options.strategy = EvalOptions::Strategy::kRewrite;
  EvalOptions chase_options;
  chase_options.strategy = EvalOptions::Strategy::kChase;
  chase_options.chase_max_level = 10;
  auto via_rewrite = EvalAll(q, db, rewrite_options);
  auto via_chase = EvalAll(q, db, chase_options);
  ASSERT_TRUE(via_rewrite.ok());
  ASSERT_TRUE(via_chase.ok());
  EXPECT_EQ(*via_rewrite, *via_chase);
}

TEST(EvalTest, NonRecursiveViaChase) {
  Omq q = MakeOmq(
      "R(X,Y), R(Y,Z) -> Tri(X,Z). Tri(X,Z) -> Out(X).",
      "Q(X) :- Out(X)", {{"R", 2}});
  auto answers = EvalAll(q, Db("R(a,b). R(b,c)."));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("a"));
}

TEST(EvalTest, GuardedPositiveWithinBudget) {
  Omq q = MakeOmq(
      "R(X,Y), A(Y) -> A(X).",
      "Q(X) :- A(X)", {{"R", 2}, {"A", 1}});
  auto has_a = EvalTuple(q, Db("R(a,b). R(b,c). A(c)."),
                         {Term::Constant("a")});
  ASSERT_TRUE(has_a.ok());
  EXPECT_TRUE(*has_a);
}

TEST(EvalTest, GuardedNegativeWithCompleteChase) {
  Omq q = MakeOmq("R(X,Y), A(Y) -> A(X).", "Q(X) :- A(X)",
                  {{"R", 2}, {"A", 1}});
  // Full tgds: the chase terminates, so negatives are certified.
  auto not_a = EvalTuple(q, Db("R(a,b). A(a)."), {Term::Constant("b")});
  ASSERT_TRUE(not_a.ok());
  EXPECT_FALSE(*not_a);
}

TEST(EvalTest, GuardedInfiniteChaseNegativeHitsBudget) {
  // A(x) ∧ C(x) → ∃y (r(x,y) ∧ A(y) ∧ C(y)): guarded (not linear, not
  // sticky, recursive), infinite chase; the query never matches, so the
  // budgeted chase cannot certify the negative answer.
  Omq q = MakeOmq("A(X), C(X) -> R(X,Y), A(Y), C(Y).", "Q() :- B(X)",
                  {{"A", 1}, {"C", 1}, {"B", 1}});
  ASSERT_EQ(q.OntologyClass(), TgdClass::kGuarded);
  EvalOptions options;
  options.chase_max_level = 4;
  auto result = EvalTuple(q, Db("A(a). C(a)."), {}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, GuardedInfiniteChasePositiveIsSound) {
  Omq q = MakeOmq("A(X), C(X) -> R(X,Y), A(Y), C(Y).",
                  "Q() :- R(X,Y), R(Y,Z)", {{"A", 1}, {"C", 1}});
  EvalOptions options;
  options.chase_max_level = 5;
  auto result = EvalTuple(q, Db("A(a). C(a)."), {}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result);
}

TEST(EvalTest, RejectsDatabaseOutsideSchema) {
  Omq q = MakeOmq("", "Q(X) :- R(X,Y)", {{"R", 2}});
  auto answers = EvalAll(q, Db("Other(a)."));
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, RejectsArityMismatch) {
  Omq q = MakeOmq("", "Q(X) :- R(X,Y)", {{"R", 2}});
  auto result = EvalTuple(q, Db("R(a,b)."), {});
  EXPECT_FALSE(result.ok());
}

TEST(EvalTest, BooleanConvenience) {
  Omq q = MakeOmq("R(X,Y) -> P(Y).", "Q() :- P(X)", {{"R", 2}});
  auto result = EvalBoolean(q, Db("R(a,b)."));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
  Omq non_boolean = MakeOmq("", "Q(X) :- R(X,Y)", {{"R", 2}});
  EXPECT_FALSE(EvalBoolean(non_boolean, Db("R(a,b).")).ok());
}

TEST(EvalTest, StickyOntologyViaRewriting) {
  Omq q = MakeOmq(
      "R(X,Y), P(X,Z) -> T(X,Y,Z).",
      "Q(X) :- T(X,Y,Z)", {{"R", 2}, {"P", 2}});
  auto answers = EvalAll(q, Db("R(a,b). P(a,c). R(d,e)."));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("a"));
}

TEST(EvalTest, TupleWithConstantsInQueryAnswer) {
  Omq q = MakeOmq("S(X,Y) -> Ans(X,Y).", "Q() :- Ans('0','1')",
                  {{"S", 2}});
  auto yes = EvalTuple(q, Db("S('0','1')."), {});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = EvalTuple(q, Db("S('1','0')."), {});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

}  // namespace
}  // namespace omqc
