// Unit tests for the Tgd/TgdSet types and the Omq wrapper.

#include <gtest/gtest.h>

#include "core/omq.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Tgd T(const std::string& text) { return ParseTgd(text).value(); }

TEST(TgdTest, VariableClassification) {
  Tgd tgd = T("R(X,Y), P(Y,Z) -> S(X,W), U(W,Z)");
  EXPECT_EQ(tgd.BodyVariables().size(), 3u);   // X Y Z
  EXPECT_EQ(tgd.HeadVariables().size(), 3u);   // X W Z
  std::vector<Term> frontier = tgd.FrontierVariables();
  ASSERT_EQ(frontier.size(), 2u);              // X Z
  std::vector<Term> existential = tgd.ExistentialVariables();
  ASSERT_EQ(existential.size(), 1u);           // W
  EXPECT_EQ(existential[0], Term::Variable("W"));
}

TEST(TgdTest, FactTgd) {
  Tgd tgd = T("-> Tile(X)");
  EXPECT_TRUE(tgd.IsFactTgd());
  EXPECT_TRUE(tgd.BodyVariables().empty());
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
}

TEST(TgdTest, ConstantsCollected) {
  Tgd tgd = T("R(X,a) -> S(X,b)");
  EXPECT_EQ(tgd.Constants().size(), 2u);
}

TEST(TgdTest, RenamedApartIsDisjoint) {
  Tgd tgd = T("R(X,Y) -> S(Y,Z)");
  Tgd renamed = tgd.RenamedApart(7);
  for (const Term& v : renamed.BodyVariables()) {
    EXPECT_NE(v, Term::Variable("X"));
    EXPECT_NE(v, Term::Variable("Y"));
  }
  // Structure is preserved.
  EXPECT_EQ(renamed.body.size(), 1u);
  EXPECT_EQ(renamed.ExistentialVariables().size(), 1u);
}

TEST(TgdTest, ValidateRejectsEmptyHead) {
  Tgd bad;
  bad.body.push_back(ParseAtom("R(X,Y)").value());
  EXPECT_FALSE(ValidateTgd(bad).ok());
}

TEST(TgdSetTest, SchemaAndMetrics) {
  TgdSet tgds = ParseTgds(
                    "R(X,Y), P(Y) -> T(X)."
                    "T(X) -> U(X,a).")
                    .value();
  EXPECT_EQ(tgds.SchemaOf().size(), 4u);
  EXPECT_EQ(tgds.HeadPredicates().size(), 2u);
  EXPECT_EQ(tgds.MaxBodySize(), 2u);
  EXPECT_EQ(tgds.Constants().size(), 1u);
  // Symbols: R(2)+P(1)+T(1) bodies + T(1)+U(2) heads + 5 predicates = 12.
  EXPECT_EQ(tgds.SymbolCount(), 12u);
}

TEST(OmqTest, BasicAccessors) {
  Schema s;
  s.Add(Predicate::Get("R", 2));
  Omq q{s, ParseTgds("R(X,Y) -> P(Y).").value(),
        ParseQuery("Q(X) :- P(X)").value()};
  EXPECT_EQ(q.AnswerArity(), 1u);
  EXPECT_EQ(q.CombinedSchema().size(), 2u);
  EXPECT_EQ(q.OntologyClass(), TgdClass::kLinear);
  EXPECT_GT(q.SymbolCount(), 0u);
  EXPECT_NE(q.ToString().find("R(X,Y) -> P(Y)"), std::string::npos);
}

TEST(OmqTest, ValidateCatchesBadQuery) {
  Schema s;
  s.Add(Predicate::Get("R", 2));
  Omq q{s, TgdSet{},
        ConjunctiveQuery({Term::Variable("Z")},
                         {ParseAtom("R(X,Y)").value()})};
  EXPECT_FALSE(ValidateOmq(q).ok());
}

TEST(OmqTest, FullSchemaOfCollectsQueryPredicates) {
  Schema s = FullSchemaOf(ParseTgds("A(X) -> B(X).").value(),
                          ParseQuery("Q() :- C(X)").value());
  EXPECT_EQ(s.size(), 3u);
}

TEST(TgdSetTest, ToStringRoundTripsThroughParser) {
  TgdSet tgds = ParseTgds(
                    "R(X,Y) -> S(Y,Z)."
                    "-> Seed(c).")
                    .value();
  std::string text;
  for (const Tgd& tgd : tgds.tgds) text += tgd.ToString() + ".";
  auto reparsed = ParseTgds(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->size(), tgds.size());
  EXPECT_EQ(reparsed->ToString(), tgds.ToString());
}

}  // namespace
}  // namespace omqc
