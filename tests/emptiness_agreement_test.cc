// Randomized cross-engine agreement: the antichain engine (serial and
// parallel, threads 1/2/8) must return the exact verdict of the reference
// subset-construction oracle (automata/downward.h) on every seed — both
// on random downward 2WAPAs and on the Prop. 25 automata composed from
// the ΓS,l alphabets of seeded guarded OMQs. This suite also runs in the
// ASan/TSan jobs (with the build's default engine pinned to the
// reference, each engine is still selected explicitly here).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "automata/downward.h"
#include "automata/emptiness.h"
#include "core/guarded_automata.h"
#include "generators/families.h"

namespace omqc {
namespace {

/// A random positive formula over child-moving atoms. Biased toward
/// small conjunctions so a healthy fraction of the automata are
/// non-empty and obligation sets actually grow.
Formula RandomFormula(std::mt19937& rng, int num_states, int depth) {
  const uint32_t roll = rng() % 10;
  if (depth > 0 && roll < 2) {
    return Formula::And(RandomFormula(rng, num_states, depth - 1),
                        RandomFormula(rng, num_states, depth - 1));
  }
  if (depth > 0 && roll < 5) {
    return Formula::Or(RandomFormula(rng, num_states, depth - 1),
                       RandomFormula(rng, num_states, depth - 1));
  }
  if (roll == 5) return Formula::True();
  if (roll == 6) return Formula::False();
  const int state = static_cast<int>(rng() % static_cast<uint32_t>(num_states));
  return (rng() % 3 == 0) ? Box(Move::kChild, state)
                          : Diamond(Move::kChild, state);
}

Twapa RandomDownwardTwapa(uint32_t seed) {
  std::mt19937 rng(seed);
  const int num_states = 1 + static_cast<int>(rng() % 5);
  const int num_labels = 1 + static_cast<int>(rng() % 4);
  std::vector<std::vector<Formula>> table;
  table.reserve(static_cast<size_t>(num_states));
  for (int q = 0; q < num_states; ++q) {
    std::vector<Formula> row;
    for (int label = 0; label < num_labels; ++label) {
      row.push_back(RandomFormula(rng, num_states, 2));
    }
    table.push_back(std::move(row));
  }
  Twapa a;
  a.num_states = num_states;
  a.num_labels = num_labels;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [table](int state, int label) {
    return table[static_cast<size_t>(state)][static_cast<size_t>(label)];
  };
  return a;
}

class EmptinessAgreementTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, EmptinessAgreementTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

void ExpectAgreement(const Twapa& automaton, size_t num_threads,
                     size_t max_states, const std::string& context) {
  EmptinessOptions reference;
  reference.engine = EmptinessEngine::kReference;
  reference.max_states = max_states;
  reference.max_branching = 64;
  auto oracle = DownwardEmptiness(automaton, reference);
  ASSERT_TRUE(oracle.ok()) << context << ": " << oracle.status().ToString();

  EmptinessOptions antichain = reference;
  antichain.engine = EmptinessEngine::kAntichain;
  antichain.num_threads = num_threads;
  auto fast = DownwardEmptiness(automaton, antichain);
  ASSERT_TRUE(fast.ok()) << context << ": " << fast.status().ToString();
  EXPECT_EQ(*fast, *oracle) << context << ": verdicts diverge (threads="
                            << num_threads << ")";
}

TEST_P(EmptinessAgreementTest, RandomDownwardAutomata) {
  for (uint32_t seed = 0; seed < 80; ++seed) {
    ExpectAgreement(RandomDownwardTwapa(seed), GetParam(), 100000,
                    "random twapa seed=" + std::to_string(seed));
  }
}

TEST_P(EmptinessAgreementTest, SeededGuardedOmqGammaAutomata) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    RandomOmqConfig config;
    config.target = TgdClass::kGuarded;
    config.num_predicates = 3;
    config.max_arity = 2;
    config.seed = seed;
    Omq omq = MakeRandomOmq(config);
    Schema schema = omq.CombinedSchema();
    auto alphabet = EnumerateGammaAlphabet(schema, 1, 1, 500000);
    if (!alphabet.ok()) continue;  // atoms-per-label cap on unlucky schemas
    Twapa consistency = ConsistencyAutomaton(*alphabet);
    // One emptiness question per schema predicate (the witness language
    // of "some R-atom appears"), plus a predicate absent from the schema
    // so the empty verdict is exercised on every seed.
    std::vector<Predicate> probes(schema.predicates().begin(),
                                  schema.predicates().end());
    probes.push_back(Predicate::Get("absent_from_schema", 1));
    for (const Predicate& pred : probes) {
      auto automaton =
          Intersect(consistency, AtomPresenceAutomaton(*alphabet, pred));
      ASSERT_TRUE(automaton.ok()) << automaton.status().ToString();
      ExpectAgreement(*automaton, GetParam(), 20000,
                      "guarded omq seed=" + std::to_string(seed) +
                          " pred=" + pred.ToString());
    }
  }
}

}  // namespace
}  // namespace omqc
