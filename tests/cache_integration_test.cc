// Cache-on vs cache-off equivalence: evaluation answers and containment
// outcomes must be identical with and without a shared OmqCache, across
// serial and parallel engines (thread counts 1/2/8), including warm
// re-runs and queries renamed between calls. Also asserts the cache is
// actually exercised (warm runs hit).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/governor.h"
#include "base/string_util.h"
#include "cache/omq_cache.h"
#include "core/containment.h"
#include "core/eval.h"
#include "generators/families.h"
#include "logic/substitution.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

/// A consistently renamed copy of the OMQ's query (same OMQ semantically).
Omq RenamedQuery(const Omq& omq, const std::string& prefix) {
  Substitution rename;
  for (const Term& v : omq.query.Variables()) {
    rename.Bind(v, Term::Variable(prefix + v.ToString()));
  }
  Omq out = omq;
  out.query = ConjunctiveQuery(rename.Apply(omq.query.answer_vars),
                               rename.Apply(omq.query.body));
  return out;
}

std::vector<std::vector<Term>> Sorted(std::vector<std::vector<Term>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Term>& a, const std::vector<Term>& b) {
              return JoinMapped(a, ",", [](const Term& t) {
                       return t.ToString();
                     }) < JoinMapped(b, ",", [](const Term& t) {
                       return t.ToString();
                     });
            });
  return rows;
}

/// Param: worker threads for the containment engine.
class CacheIntegrationTest : public ::testing::TestWithParam<size_t> {
 protected:
  /// Checks q1 ⊆ q2 without a cache, then repeatedly with a shared cache
  /// (cold, warm, renamed), asserting every run agrees with the uncached
  /// outcome. Returns the warm cached result.
  ContainmentResult CheckAllModes(const Omq& q1, const Omq& q2,
                                  OmqCache* cache) {
    ContainmentOptions options;
    options.num_threads = GetParam();
    auto uncached = CheckContainment(q1, q2, options);
    EXPECT_TRUE(uncached.ok()) << uncached.status().ToString();
    options.cache = cache;
    auto cold = CheckContainment(q1, q2, options);
    EXPECT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->outcome, uncached->outcome) << "cold cached run differs";
    auto warm = CheckContainment(q1, q2, options);
    EXPECT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(warm->outcome, uncached->outcome) << "warm cached run differs";
    // A query renamed apart is the same OMQ; it must reuse the entries.
    auto renamed = CheckContainment(RenamedQuery(q1, "LC_"),
                                    RenamedQuery(q2, "RC_"), options);
    EXPECT_TRUE(renamed.ok()) << renamed.status().ToString();
    EXPECT_EQ(renamed->outcome, uncached->outcome)
        << "renamed cached run differs";
    EXPECT_GT(renamed->stats.cache.hits, 0u)
        << "renamed run failed to hit the cache";
    return *warm;
  }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CacheIntegrationTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

TEST_P(CacheIntegrationTest, ContainmentOutcomesMatchAcrossModes) {
  OmqCache cache;
  const char kSigma[] =
      "Edge(X,Y) -> Conn(X,Y). Conn(X,Y), Conn(Y,Z) -> Reach(X,Z).";
  Schema schema = S({{"Edge", 2}, {"Conn", 2}, {"Reach", 2}});
  Omq chain2 = MakeOmq(schema, kSigma,
                       "Q(X) :- Conn(X,Y), Conn(Y,Z)");
  Omq chain1 = MakeOmq(schema, kSigma, "Q(X) :- Conn(X,Y)");
  Omq reach = MakeOmq(schema, kSigma, "Q(X) :- Reach(X,Y)");

  ContainmentResult contained = CheckAllModes(chain2, chain1, &cache);
  EXPECT_EQ(contained.outcome, ContainmentOutcome::kContained);
  ContainmentResult refuted = CheckAllModes(chain1, chain2, &cache);
  EXPECT_EQ(refuted.outcome, ContainmentOutcome::kNotContained);
  CheckAllModes(chain2, reach, &cache);
  EXPECT_GT(cache.Stats().counters.hits, 0u);
}

TEST_P(CacheIntegrationTest, RecursiveLinearRhsUsesCachedRewriting) {
  // Genuinely recursive linear RHS: the evaluator precomputes a rewriting,
  // which the cache shares across the repeated and renamed runs.
  OmqCache cache;
  const char kSigma[] = "A(X) -> B(X). B(X) -> Succ(X,Y), A(Y).";
  Schema schema = S({{"A", 1}, {"Succ", 2}});
  Omq q1 = MakeOmq(schema, kSigma, "Q(X) :- A(X), B(X)");
  Omq q2 = MakeOmq(schema, kSigma, "Q(X) :- B(X)");
  ContainmentResult warm = CheckAllModes(q1, q2, &cache);
  EXPECT_EQ(warm.outcome, ContainmentOutcome::kContained);
  EXPECT_GT(warm.stats.cache.hits, 0u);
}

TEST_P(CacheIntegrationTest, RandomSweepAgreesOnEveryPair) {
  OmqCache cache;
  std::vector<Omq> omqs;
  for (uint32_t seed = 0; seed < 4; ++seed) {
    RandomOmqConfig config;
    config.target = TgdClass::kLinear;
    config.seed = seed;
    config.num_predicates = 3;
    config.query_atoms = 2;
    omqs.push_back(MakeRandomOmq(config));
  }
  ContainmentOptions options;
  options.num_threads = GetParam();
  for (const Omq& q1 : omqs) {
    for (const Omq& q2 : omqs) {
      if (q1.data_schema.size() != q2.data_schema.size()) continue;
      ContainmentOptions uncached = options;
      auto base = CheckContainment(q1, q2, uncached);
      ContainmentOptions cached = options;
      cached.cache = &cache;
      auto with_cache = CheckContainment(q1, q2, cached);
      ASSERT_EQ(base.ok(), with_cache.ok());
      if (!base.ok()) continue;  // schema mismatch pairs etc.
      EXPECT_EQ(base->outcome, with_cache->outcome)
          << q1.query.ToString() << " vs " << q2.query.ToString();
    }
  }
}

TEST(CacheEvalTest, EvalAnswersIdenticalWithAndWithoutCache) {
  OmqCache cache;
  // Recursive linear ontology forces the rewriting path in EvalAll.
  const char kSigma[] = "A(X) -> B(X). B(X) -> Succ(X,Y), A(Y).";
  Schema schema = S({{"A", 1}, {"B", 1}, {"Succ", 2}});
  Omq omq = MakeOmq(schema, kSigma, "Q(X) :- B(X)");
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("a")}));
  db.Add(Atom::Make("B", {Term::Constant("b")}));

  EvalOptions plain;
  auto base = EvalAll(omq, db, plain);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  EvalOptions with_cache;
  with_cache.cache = &cache;
  EngineStats cold_stats;
  auto cold = EvalAll(omq, db, with_cache, &cold_stats);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Sorted(*base), Sorted(*cold));
  EXPECT_GT(cold_stats.cache.insertions, 0u);

  EngineStats warm_stats;
  auto warm = EvalAll(omq, db, with_cache, &warm_stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(Sorted(*base), Sorted(*warm));
  EXPECT_GT(warm_stats.cache.hits, 0u);
  // The warm run recompiled nothing.
  EXPECT_EQ(warm_stats.rewrite.queries_generated, 0u);

  // A renamed query is the same OMQ and must hit the same entries.
  EngineStats renamed_stats;
  auto renamed = EvalAll(RenamedQuery(omq, "RN_"), db, with_cache,
                         &renamed_stats);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(Sorted(*base), Sorted(*renamed));
  EXPECT_GT(renamed_stats.cache.hits, 0u);
  EXPECT_EQ(renamed_stats.rewrite.queries_generated, 0u);
}

TEST(CacheEvalTest, TrippedGovernorRunsAreNotCached) {
  // A governor-tripped CachedXRewrite must not poison the cache: the next
  // ungoverned run over the same key must recompute and saturate, and a
  // warm ungoverned entry must keep serving hits after a later run trips.
  OmqCache cache;
  const char kSigma[] = "A(X) -> B(X). B(X) -> Succ(X,Y), A(Y).";
  Schema schema = S({{"A", 1}, {"B", 1}, {"Succ", 2}});
  Omq omq = MakeOmq(schema, kSigma, "Q(X) :- B(X)");
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("a")}));

  // 1. Tripped run first: the governor is cancelled before we start.
  ResourceGovernor tripped;
  tripped.Cancel();
  EvalOptions governed;
  governed.cache = &cache;
  governed.governor = &tripped;
  auto failed = EvalAll(omq, db, governed);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);
  // The tgd classification may be cached (it completed and is exact); the
  // truncated rewriting must NOT be. The proof is in step 2: the
  // ungoverned run still has to generate the rewriting from scratch — a
  // poisoned entry would make queries_generated 0 — and it saturates.
  EXPECT_LE(cache.size(), 1u);

  // 2. Ungoverned run over the same key: recomputes, saturates, caches.
  EvalOptions plain;
  plain.cache = &cache;
  EngineStats cold_stats;
  auto base = EvalAll(omq, db, plain, &cold_stats);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_GT(cold_stats.rewrite.queries_generated, 0u)
      << "the tripped run poisoned the rewriting cache entry";
  EXPECT_GT(cold_stats.cache.insertions, 0u);

  // 3. A later tripped run must neither evict nor corrupt the entry...
  ResourceGovernor tripped_again;
  tripped_again.Cancel();
  governed.governor = &tripped_again;
  auto failed_again = EvalAll(omq, db, governed);
  // (A warm hit needs no rewriting work, so the run may succeed outright
  // before any governed check; either way the entry must survive.)
  if (!failed_again.ok()) {
    EXPECT_EQ(failed_again.status().code(), StatusCode::kCancelled);
  }

  // 4. ...and the warm ungoverned run still hits and agrees.
  EngineStats warm_stats;
  auto warm = EvalAll(omq, db, plain, &warm_stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(Sorted(*base), Sorted(*warm));
  EXPECT_GT(warm_stats.cache.hits, 0u);
  EXPECT_EQ(warm_stats.rewrite.queries_generated, 0u);
}

TEST(CacheEvalTest, DifferentBudgetsNeverAlias) {
  OmqCache cache;
  const char kSigma[] = "A(X) -> B(X). B(X) -> Succ(X,Y), A(Y).";
  Schema schema = S({{"A", 1}, {"B", 1}, {"Succ", 2}});
  Omq omq = MakeOmq(schema, kSigma, "Q(X) :- B(X)");
  Database db;
  db.Add(Atom::Make("A", {Term::Constant("a")}));

  EvalOptions first;
  first.cache = &cache;
  ASSERT_TRUE(EvalAll(omq, db, first).ok());

  // Same OMQ under different rewriting budgets: must not reuse the entry
  // (its key embeds the options digest), so a fresh insertion happens.
  EvalOptions second = first;
  second.rewrite.max_queries = first.rewrite.max_queries - 1;
  EngineStats stats;
  ASSERT_TRUE(EvalAll(omq, db, second, &stats).ok());
  EXPECT_GT(stats.cache.insertions, 0u);
}

}  // namespace
}  // namespace omqc
