// End-to-end tests for the omqc server subsystem (src/server): wire
// protocol round-trips, CLI-identical verdicts across worker pool sizes,
// per-tenant governor isolation (deadline and memory trips never touch
// sibling tenants), admission batching that shares one compilation across
// concurrent requests, and chaos: dropped admission batches must complete
// every request, keep the queue serviceable and leak no governor charges.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "core/eval.h"
#include "core/frontend.h"
#include "generators/families.h"
#include "server/client.h"
#include "server/wire.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

// ---------- Fixtures ----------

// The university program from tests/integration_test.cc: small, fast and
// exercises eval, containment and classification.
constexpr const char* kUniversityProgram = R"(
  Professor(X) -> Faculty(X).
  Lecturer(X) -> Faculty(X).
  Faculty(X) -> WorksFor(X,D), Department(D).
  Teaches(X,C) -> Faculty(X).
  FacultyQ(X) :- Faculty(X).
  TeachersQ(X) :- Teaches(X,C).
  Professor(turing).
  Lecturer(hopper).
  Teaches(turing, computability).
)";

// What omqc_cli would print for each request kind, computed through the
// exact same frontend path the server uses (core/frontend.h).
struct ExpectedBodies {
  std::string eval;      // eval FacultyQ
  std::string contain;   // contain TeachersQ ⊆ FacultyQ
  std::string classify;  // classify
};

ExpectedBodies ComputeExpected() {
  auto program = ParseProgram(kUniversityProgram);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Schema schema = InferProgramDataSchema(*program);

  ExpectedBodies expected;
  auto eval_q = SingleQueryNamed(*program, schema, "FacultyQ");
  EXPECT_TRUE(eval_q.ok());
  auto answers = EvalAll(*eval_q, program->facts, EvalOptions());
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  expected.eval = FormatAnswers(*answers);

  auto lhs = SingleQueryNamed(*program, schema, "TeachersQ");
  auto rhs = SingleQueryNamed(*program, schema, "FacultyQ");
  EXPECT_TRUE(lhs.ok() && rhs.ok());
  auto contained = CheckContainment(*lhs, *rhs, ContainmentOptions());
  EXPECT_TRUE(contained.ok()) << contained.status().ToString();
  expected.contain =
      FormatContainmentReport("TeachersQ", "FacultyQ", *contained);

  expected.classify = FormatClassificationReport(program->tgds);
  return expected;
}

// The sticky witness family at n=5 takes ~1s of containment work: slow
// enough that a 50ms deadline reliably trips mid-flight, fast enough that
// the test stays bounded even if the trip were missed entirely.
std::string SlowProgramText() {
  Omq omq = MakeStickyWitnessFamily(5);
  Program program;
  program.tgds = omq.tgds;
  program.queries.push_back({"Q", omq.query});
  return SerializeProgram(program);
}

OmqClient MakeClient(OmqServer& server) {
  auto fd = server.ConnectInProcess();
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  return OmqClient(std::move(*fd));
}

// Completion accounting (tenant counters, governor releases) happens
// after the response is sent, so tests poll for the settled state.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(2000)) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

// ---------- Wire protocol ----------

TEST(WireTest, RequestRoundTrip) {
  WireRequest request;
  request.type = RequestType::kContain;
  request.request_id = 42;
  request.tenant = "tenant-a";
  request.deadline_ms = 250;
  request.max_memory_bytes = 1 << 20;
  request.program = "R(a). Q(X) :- R(X).";
  request.query = "Q";
  request.query2 = "Q2";

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, RequestType::kContain);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->tenant, "tenant-a");
  EXPECT_EQ(decoded->deadline_ms, 250u);
  EXPECT_EQ(decoded->max_memory_bytes, static_cast<uint64_t>(1 << 20));
  EXPECT_EQ(decoded->program, request.program);
  EXPECT_EQ(decoded->query, "Q");
  EXPECT_EQ(decoded->query2, "Q2");
}

TEST(WireTest, ResponseRoundTrip) {
  WireResponse response;
  response.request_id = 7;
  response.code = StatusCode::kDeadlineExceeded;
  response.message = "deadline exceeded";
  response.body = "3 answer(s):\n";
  response.stats_json = "{}";
  response.batch_id = 9;
  response.batch_size = 4;
  response.admission_wait_us = 1234;

  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->message, "deadline exceeded");
  EXPECT_EQ(decoded->body, "3 answer(s):\n");
  EXPECT_EQ(decoded->batch_id, 9u);
  EXPECT_EQ(decoded->batch_size, 4u);
  EXPECT_EQ(decoded->admission_wait_us, 1234u);
}

TEST(WireTest, MalformedAndVersionMismatchAreRejected) {
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeRequest("x").ok());
  // Truncated mid-string: a length prefix pointing past the payload end.
  std::string truncated = EncodeRequest(WireRequest{});
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DecodeRequest(truncated).ok());

  std::string wrong_version = EncodeRequest(WireRequest{});
  wrong_version[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(DecodeRequest(wrong_version).status().code(),
            StatusCode::kUnsupported);
}

// ---------- Verdicts: CLI-identical across pool sizes ----------

TEST(ServerTest, VerdictsByteIdenticalAcrossWorkerThreads) {
  ExpectedBodies expected = ComputeExpected();
  for (size_t threads : {1u, 2u, 8u}) {
    ServerConfig config;
    config.worker_threads = threads;
    config.admission.linger_ms = 0;
    OmqServer server(std::move(config));
    OmqClient client = MakeClient(server);

    auto ping = client.Ping();
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(ping->body, "pong");

    auto eval = client.Eval(kUniversityProgram, "FacultyQ");
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    EXPECT_EQ(eval->code, StatusCode::kOk) << eval->message;
    EXPECT_EQ(eval->body, expected.eval) << "threads=" << threads;
    EXPECT_FALSE(eval->stats_json.empty());

    auto contain =
        client.Contain(kUniversityProgram, "TeachersQ", "FacultyQ");
    ASSERT_TRUE(contain.ok());
    EXPECT_EQ(contain->code, StatusCode::kOk) << contain->message;
    EXPECT_EQ(contain->body, expected.contain) << "threads=" << threads;

    auto classify = client.Classify(kUniversityProgram);
    ASSERT_TRUE(classify.ok());
    EXPECT_EQ(classify->code, StatusCode::kOk) << classify->message;
    EXPECT_EQ(classify->body, expected.classify) << "threads=" << threads;

    server.Shutdown();
  }
}

TEST(ServerTest, ConcurrentMixedLoadAgreesAtEveryPoolSize) {
  ExpectedBodies expected = ComputeExpected();
  for (size_t threads : {1u, 2u, 8u}) {
    ServerConfig config;
    config.worker_threads = threads;
    OmqServer server(std::move(config));

    constexpr int kClients = 6;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int c = 0; c < kClients; ++c) {
      OmqClient client = MakeClient(server);
      workers.emplace_back(
          [c, &expected, &failures, client = std::move(client)]() mutable {
            for (int i = 0; i < 4; ++i) {
              std::string tenant = "t" + std::to_string(c % 2);
              Result<WireResponse> response =
                  (c + i) % 3 == 0
                      ? client.Eval(kUniversityProgram, "FacultyQ", tenant)
                  : (c + i) % 3 == 1
                      ? client.Contain(kUniversityProgram, "TeachersQ",
                                       "FacultyQ", tenant)
                      : client.Classify(kUniversityProgram, tenant);
              const std::string& want = (c + i) % 3 == 0 ? expected.eval
                                        : (c + i) % 3 == 1
                                            ? expected.contain
                                            : expected.classify;
              if (!response.ok() || response->code != StatusCode::kOk ||
                  response->body != want) {
                failures.fetch_add(1);
              }
            }
          });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0) << "threads=" << threads;
    server.Shutdown();
  }
}

// ---------- Session robustness ----------

TEST(ServerTest, MalformedProgramDoesNotKillTheSession) {
  OmqServer server((ServerConfig()));
  OmqClient client = MakeClient(server);

  auto bad = client.Eval("R(a. this is not DLGP", "Q");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->code, StatusCode::kInvalidArgument);

  auto missing = client.Eval(kUniversityProgram, "NoSuchQuery");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing->code, StatusCode::kOk);

  // The same connection still serves well-formed requests.
  auto good = client.Eval(kUniversityProgram, "FacultyQ");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->code, StatusCode::kOk) << good->message;
}

TEST(ServerTest, MalformedFrameGetsAnErrorAndTheSessionSurvives) {
  OmqServer server((ServerConfig()));
  auto fd = server.ConnectInProcess();
  ASSERT_TRUE(fd.ok());

  std::string wrong_version = EncodeRequest(WireRequest{});
  wrong_version[0] = static_cast<char>(kWireVersion + 1);
  ASSERT_TRUE(WriteFrame(fd->get(), wrong_version).ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd->get(), &payload).ok());
  auto error = DecodeResponse(payload);
  ASSERT_TRUE(error.ok());
  EXPECT_NE(error->code, StatusCode::kOk);

  OmqClient client(std::move(*fd));
  auto ping = client.Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->body, "pong");
  EXPECT_EQ(server.counters().malformed_frames, 1u);
}

// ---------- Tenant isolation ----------

TEST(ServerTest, MemoryTrippedTenantDoesNotDisturbSiblings) {
  ServerConfig config;
  config.worker_threads = 4;
  OmqServer server(std::move(config));

  std::atomic<int> good_failures{0};
  std::thread good_thread([&server, &good_failures]() {
    OmqClient client = MakeClient(server);
    for (int i = 0; i < 5; ++i) {
      auto response = client.Eval(kUniversityProgram, "FacultyQ", "good");
      if (!response.ok() || response->code != StatusCode::kOk) {
        good_failures.fetch_add(1);
      }
    }
  });

  OmqClient greedy = MakeClient(server);
  WireRequest request;
  request.type = RequestType::kEval;
  request.tenant = "greedy";
  request.max_memory_bytes = 1;  // first chase charge trips
  request.program = kUniversityProgram;
  request.query = "FacultyQ";
  auto response = greedy.Call(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kResourceExhausted)
      << response->message;

  good_thread.join();
  EXPECT_EQ(good_failures.load(), 0);

  ASSERT_TRUE(WaitFor([&] {
    auto snapshot = server.TenantSnapshots();
    return snapshot.count("greedy") != 0 &&
           snapshot.at("greedy").counters.memory_trips >= 1;
  }));
  auto snapshot = server.TenantSnapshots();
  EXPECT_EQ(snapshot.at("good").counters.failed, 0u);
  EXPECT_FALSE(snapshot.at("good").tripped);
  server.Shutdown();
}

TEST(ServerTest, DeadlineTrippedTenantDoesNotDisturbSiblings) {
  ServerConfig config;
  config.worker_threads = 4;
  OmqServer server(std::move(config));
  std::string slow_program = SlowProgramText();

  std::atomic<int> fast_failures{0};
  std::thread fast_thread([&server, &fast_failures]() {
    OmqClient client = MakeClient(server);
    for (int i = 0; i < 5; ++i) {
      auto response = client.Eval(kUniversityProgram, "FacultyQ", "fast");
      if (!response.ok() || response->code != StatusCode::kOk) {
        fast_failures.fetch_add(1);
      }
    }
  });

  OmqClient slow = MakeClient(server);
  WireRequest request;
  request.type = RequestType::kContain;
  request.tenant = "slow";
  request.deadline_ms = 50;
  request.program = slow_program;
  request.query = "Q";
  request.query2 = "Q";
  auto response = slow.Call(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded)
      << response->message;

  fast_thread.join();
  EXPECT_EQ(fast_failures.load(), 0);

  ASSERT_TRUE(WaitFor([&] {
    auto snapshot = server.TenantSnapshots();
    return snapshot.count("slow") != 0 &&
           snapshot.at("slow").counters.deadline_trips >= 1 &&
           snapshot.count("fast") != 0 &&
           snapshot.at("fast").counters.completed == 5;
  }));
  auto snapshot = server.TenantSnapshots();
  EXPECT_EQ(snapshot.at("fast").counters.failed, 0u);
  server.Shutdown();
}

TEST(ServerTest, TrippedTenantGovernorIsReplacedAfterDrain) {
  ServerConfig config;
  config.tenant_quota.memory_quota_bytes = 1;  // every tenant trips fast
  OmqServer server(std::move(config));
  OmqClient client = MakeClient(server);

  auto first = client.Eval(kUniversityProgram, "FacultyQ", "capped");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, StatusCode::kResourceExhausted) << first->message;

  // Throttled, not bricked: once the trip drains the tenant gets a fresh
  // governor (and promptly trips it again — the quota is 1 byte).
  ASSERT_TRUE(WaitFor([&] {
    auto snapshot = server.TenantSnapshots();
    return snapshot.at("capped").counters.governor_resets >= 1 &&
           !snapshot.at("capped").tripped;
  }));
  auto second = client.Eval(kUniversityProgram, "FacultyQ", "capped");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, StatusCode::kResourceExhausted);
  server.Shutdown();
}

// ---------- Admission batching ----------

TEST(ServerTest, BatchedRequestsShareOneCompilation) {
  // Baseline: one cold containment on a fresh server = the per-request
  // cold compilation cost in cache misses.
  size_t cold_misses = 0;
  {
    ServerConfig config;
    config.admission.linger_ms = 0;
    OmqServer baseline(std::move(config));
    OmqClient client = MakeClient(baseline);
    auto response =
        client.Contain(kUniversityProgram, "TeachersQ", "FacultyQ");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->code, StatusCode::kOk) << response->message;
    cold_misses = baseline.cache()->Stats().counters.misses;
    baseline.Shutdown();
  }
  ASSERT_GT(cold_misses, 0u);

  // Four concurrent identical requests on a fresh server: the admission
  // queue holds them into one batch, the leader compiles cold, the
  // followers hit the shared cache.
  ServerConfig config;
  config.worker_threads = 4;
  config.admission.max_batch = 4;
  config.admission.linger_ms = 2000;  // batch closes by count, not time
  OmqServer server(std::move(config));

  constexpr int kRequests = 4;
  std::vector<std::string> bodies(kRequests);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kRequests; ++i) {
    OmqClient client = MakeClient(server);
    workers.emplace_back(
        [i, &bodies, &failures, client = std::move(client)]() mutable {
          auto response = client.Contain(kUniversityProgram, "TeachersQ",
                                         "FacultyQ",
                                         "t" + std::to_string(i % 2));
          if (!response.ok() || response->code != StatusCode::kOk ||
              response->batch_size != static_cast<uint32_t>(kRequests)) {
            failures.fetch_add(1);
          } else {
            bodies[i] = response->body;
          }
        });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);
  for (int i = 1; i < kRequests; ++i) EXPECT_EQ(bodies[i], bodies[0]);

  AdmissionStats admission = server.admission_stats();
  EXPECT_EQ(admission.batches_dispatched, 1u);
  EXPECT_EQ(admission.batched_requests, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(admission.max_batch_size, static_cast<uint64_t>(kRequests));

  OmqCacheStats cache = server.cache()->Stats();
  // The followers hit where serial one-shots would each compile cold.
  EXPECT_GE(cache.counters.hits, 1u);
  EXPECT_LT(cache.counters.misses, kRequests * cold_misses);

  // Hit/miss attribution reaches the tenants that rode the batch.
  ASSERT_TRUE(WaitFor([&] {
    auto snapshot = server.TenantSnapshots();
    return snapshot.count("t0") != 0 && snapshot.count("t1") != 0 &&
           snapshot.at("t0").counters.batched_requests +
                   snapshot.at("t1").counters.batched_requests ==
               static_cast<uint64_t>(kRequests);
  }));
  server.Shutdown();
}

// ---------- Chaos: dropped batches ----------

TEST(ServerTest, DroppedBatchCompletesRequestsAndLeaksNothing) {
  ServerConfig config;
  config.worker_threads = 2;
  config.admission.max_batch = 2;
  config.admission.linger_ms = 2000;
  OmqServer server(std::move(config));

  // Two clients first (ConnectInProcess starts the pipeline), then the
  // injector: drop the first dispatched batch.
  OmqClient client_a = MakeClient(server);
  OmqClient client_b = MakeClient(server);
  FaultPlan plan;
  plan.drop_batch_at = 1;
  FaultInjector injector(plan);
  server.set_fault_injector(&injector);

  std::vector<StatusCode> codes(2, StatusCode::kOk);
  std::vector<std::string> messages(2);
  {
    std::vector<std::thread> workers;
    OmqClient* clients[2] = {&client_a, &client_b};
    for (int i = 0; i < 2; ++i) {
      workers.emplace_back([i, &clients, &codes, &messages]() {
        auto response = clients[i]->Contain(kUniversityProgram, "TeachersQ",
                                            "FacultyQ", "chaos");
        ASSERT_TRUE(response.ok());
        codes[i] = response->code;
        messages[i] = response->message;
      });
    }
    for (std::thread& w : workers) w.join();
  }
  EXPECT_TRUE(injector.fired());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(codes[i], StatusCode::kCancelled) << messages[i];
    EXPECT_NE(messages[i].find("dropped"), std::string::npos);
  }

  // The queue stays serviceable: the next batch executes normally.
  {
    std::vector<std::thread> workers;
    std::atomic<int> ok{0};
    OmqClient* clients[2] = {&client_a, &client_b};
    for (int i = 0; i < 2; ++i) {
      workers.emplace_back([i, &clients, &ok]() {
        auto response = clients[i]->Contain(kUniversityProgram, "TeachersQ",
                                            "FacultyQ", "chaos");
        if (response.ok() && response->code == StatusCode::kOk) {
          ok.fetch_add(1);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(ok.load(), 2);
  }

  AdmissionStats admission = server.admission_stats();
  EXPECT_EQ(admission.batches_dropped, 1u);
  EXPECT_EQ(admission.dropped_requests, 2u);
  EXPECT_EQ(admission.current_depth, 0u);

  // No governor charge leaks: once the tenant drains, the server-wide
  // accounting is back to zero.
  ASSERT_TRUE(WaitFor([&] {
    auto snapshot = server.TenantSnapshots();
    return snapshot.at("chaos").inflight == 0 &&
           server.governor()->local_charged_bytes() == 0;
  }));
  auto snapshot = server.TenantSnapshots();
  EXPECT_EQ(snapshot.at("chaos").counters.cancel_trips, 2u);
  EXPECT_EQ(snapshot.at("chaos").charged_bytes, 0u);
  server.set_fault_injector(nullptr);
  server.Shutdown();
}

// ---------- Shutdown ----------

TEST(ServerTest, ShutdownRequestWakesTheDaemonLoop) {
  OmqServer server((ServerConfig()));
  OmqClient client = MakeClient(server);
  EXPECT_FALSE(
      server.WaitForShutdownRequest(std::chrono::milliseconds(0)));
  auto response = client.Shutdown();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kOk);
  EXPECT_TRUE(
      server.WaitForShutdownRequest(std::chrono::milliseconds(2000)));
  server.Shutdown();
}

// ---------- Tenant concurrency quota ----------

TEST(ServerTest, ConcurrencyQuotaQueuesExcessRequests) {
  ServerConfig config;
  config.worker_threads = 4;
  config.tenant_quota.max_concurrent = 1;
  OmqServer server(std::move(config));

  std::string slow_program = SlowProgramText();
  OmqClient slow_client = MakeClient(server);
  OmqClient fast_client = MakeClient(server);
  OmqClient cold_client = MakeClient(server);

  std::atomic<bool> fast_done{false};
  std::thread slow_thread([&] {
    auto response = slow_client.Contain(slow_program, "Q", "Q", "hot");
    EXPECT_TRUE(response.ok());
    if (response.ok()) {
      EXPECT_EQ(response->code, StatusCode::kOk);
    }
  });
  // The slow request occupies the tenant's only slot...
  ASSERT_TRUE(WaitFor([&] {
    auto snaps = server.TenantSnapshots();
    auto it = snaps.find("hot");
    return it != snaps.end() && it->second.inflight == 1;
  }));
  std::thread fast_thread([&] {
    auto response = fast_client.Eval(kUniversityProgram, "FacultyQ", "hot");
    EXPECT_TRUE(response.ok());
    if (response.ok()) {
      EXPECT_EQ(response->code, StatusCode::kOk);
    }
    fast_done = true;
  });
  // ...so the fast same-tenant request parks in the concurrency queue
  // instead of reaching the pool...
  ASSERT_TRUE(WaitFor([&] {
    auto snaps = server.TenantSnapshots();
    auto it = snaps.find("hot");
    return it != snaps.end() && it->second.queued == 1;
  }));
  EXPECT_FALSE(fast_done.load());
  // ...while a sibling tenant sails through untouched.
  auto cold = cold_client.Eval(kUniversityProgram, "FacultyQ", "cold");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->code, StatusCode::kOk);
  EXPECT_FALSE(fast_done.load());

  slow_thread.join();
  fast_thread.join();
  ASSERT_TRUE(WaitFor([&] {
    auto snaps = server.TenantSnapshots();
    auto it = snaps.find("hot");
    return it != snaps.end() && it->second.counters.completed == 2;
  }));
  auto snaps = server.TenantSnapshots();
  EXPECT_EQ(snaps.at("hot").counters.queued_requests, 1u);
  EXPECT_EQ(snaps.at("hot").counters.queue_peak, 1u);
  EXPECT_EQ(snaps.at("hot").queued, 0u);
  EXPECT_EQ(snaps.at("cold").counters.queued_requests, 0u);
  server.Shutdown();
}

// ---------- Client retry ----------

TEST(ClientRetryTest, ConnectRetriesUntilTheListenerIsUp) {
  // Reserve an ephemeral port, then release it for the server to claim
  // (SO_REUSEADDR makes the rebind race-free against TIME_WAIT).
  auto reservation = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(reservation.ok()) << reservation.status().ToString();
  auto port = LocalPort(reservation->get());
  ASSERT_TRUE(port.ok());
  reservation->Reset();

  OmqServer server((ServerConfig()));
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto bound = server.ListenAndStart(*port);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  });
  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff_ms = 20;
  policy.max_backoff_ms = 50;
  auto client = OmqClient::Connect("127.0.0.1", *port, policy);
  starter.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->code, StatusCode::kOk);
  server.Shutdown();
}

TEST(ClientRetryTest, ReconnectsAndResendsAfterAPeerReset) {
  auto listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = LocalPort(listener->get());
  ASSERT_TRUE(port.ok());

  std::thread flaky([fd = listener->get()] {
    // First connection: accepted and dropped on the floor.
    auto first = AcceptConnection(fd);
    if (first.ok()) first->Reset();
    // Second connection: speak the protocol for one request.
    auto second = AcceptConnection(fd);
    if (!second.ok()) return;
    std::string payload;
    if (!ReadFrame(second->get(), &payload).ok()) return;
    auto request = DecodeRequest(payload);
    if (!request.ok()) return;
    WireResponse response;
    response.request_id = request->request_id;
    response.body = "pong";
    Status written = WriteFrame(second->get(), EncodeResponse(response));
    (void)written;
  });

  auto client = OmqClient::Connect("127.0.0.1", *port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 5;
  client->set_retry_policy(policy);
  auto pong = client->Ping();
  flaky.join();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->body, "pong");
  EXPECT_EQ(client->retry_counters().reconnects, 1u);
  EXPECT_GE(client->retry_counters().backoffs, 1u);
}

TEST(ClientRetryTest, RetryStopsAtTheRequestDeadline) {
  auto listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = LocalPort(listener->get());
  ASSERT_TRUE(port.ok());
  std::thread dropper([fd = listener->get()] {
    // Drop every connection until the listener is shut down.
    for (;;) {
      auto conn = AcceptConnection(fd);
      if (!conn.ok()) return;
      conn->Reset();
    }
  });

  auto client = OmqClient::Connect("127.0.0.1", *port);
  ASSERT_TRUE(client.ok());
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ms = 30;
  policy.max_backoff_ms = 30;
  client->set_retry_policy(policy);
  WireRequest request;
  request.type = RequestType::kPing;
  request.deadline_ms = 120;
  auto start = std::chrono::steady_clock::now();
  auto response = client->Call(std::move(request));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_FALSE(response.ok());
  // The deadline bounds the whole retry loop: nowhere near the ~1.5s
  // that 100 attempts at 30ms backoff would take.
  EXPECT_LT(elapsed, 1000);
  EXPECT_LE(client->retry_counters().backoffs, 8u);
  ShutdownSocket(listener->get());
  dropper.join();
}

TEST(ServerTest, StatsEndpointServesTheMetricsDocument) {
  OmqServer server((ServerConfig()));
  OmqClient client = MakeClient(server);
  ASSERT_TRUE(client.Eval(kUniversityProgram, "FacultyQ", "acme").ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->code, StatusCode::kOk);
  EXPECT_NE(stats->body.find("\"server\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"admission\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"cache\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"tenants\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"acme\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"queue_peak\""), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace omqc
