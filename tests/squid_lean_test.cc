// Tests for the remaining Sec. 5 / Sec. 7.2 machinery: GYO acyclicity,
// squid decompositions (Def. 13) and lean tree decompositions.

#include <gtest/gtest.h>

#include "core/lean.h"
#include "core/squid.h"
#include "logic/homomorphism.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) { return ParseDatabase(text).value(); }
ConjunctiveQuery Q(const std::string& text) {
  return ParseQuery(text).value();
}

// ---------- GYO α-acyclicity. ----------

TEST(GyoTest, PathsAreAcyclic) {
  EXPECT_TRUE(IsAlphaAcyclic(Q("Q() :- R(X,Y), R(Y,Z), R(Z,W)").body));
}

TEST(GyoTest, TrianglesAreCyclic) {
  EXPECT_FALSE(IsAlphaAcyclic(Q("Q() :- R(X,Y), R(Y,Z), R(Z,X)").body));
}

TEST(GyoTest, GuardedStarsAreAcyclic) {
  // A guard atom covering all variables makes everything an ear.
  EXPECT_TRUE(IsAlphaAcyclic(
      Q("Q() :- G(X,Y,Z), R(X,Y), R(Y,Z), R(Z,X)").body));
}

TEST(GyoTest, OmittingVariablesBreaksCycles) {
  ConjunctiveQuery triangle = Q("Q() :- R(X,Y), R(Y,Z), R(Z,X)");
  EXPECT_FALSE(IsAlphaAcyclic(triangle.body));
  // [V]-acyclicity with V = {X}: the cycle opens up.
  EXPECT_TRUE(IsAlphaAcyclic(triangle.body, {Term::Variable("X")}));
}

TEST(GyoTest, EmptyAndSingleAtomQueries) {
  EXPECT_TRUE(IsAlphaAcyclic({}));
  EXPECT_TRUE(IsAlphaAcyclic(Q("Q() :- R(X,Y)").body));
  EXPECT_TRUE(IsAlphaAcyclic(Q("Q() :- R(X,X)").body));
}

// ---------- Squid decompositions. ----------

TEST(SquidTest, SplitsHeadAndTentacles) {
  // C-tree: core {a,b} with R(a,b); tree part R(b,c), R(c,d).
  Database db = Db("R(a,b). R(b,c). R(c,d).");
  std::set<Term> core{Term::Constant("a"), Term::Constant("b")};
  ConjunctiveQuery q = Q("Q() :- R(X,Y), R(Y,Z), R(Z,W)");
  auto hom = FindHomomorphism(q.body, db);
  ASSERT_TRUE(hom.has_value());
  auto squid = ComputeSquidDecomposition(q, db, core, *hom);
  ASSERT_TRUE(squid.ok()) << squid.status().ToString();
  // The path maps a->b->c->d: R(X,Y) into the core, the rest outside.
  EXPECT_EQ(squid->head.size(), 1u);
  EXPECT_EQ(squid->tentacles.size(), 2u);
  EXPECT_TRUE(squid->tentacles_acyclic);
  EXPECT_TRUE(squid->core_vars.count(Term::Variable("X")) > 0);
  EXPECT_TRUE(squid->core_vars.count(Term::Variable("Y")) > 0);
  EXPECT_FALSE(squid->core_vars.count(Term::Variable("W")) > 0);
}

TEST(SquidTest, RejectsNonHomomorphism) {
  Database db = Db("R(a,b).");
  ConjunctiveQuery q = Q("Q() :- R(X,Y)");
  Substitution bogus;
  bogus.Bind(Term::Variable("X"), Term::Constant("b"));
  bogus.Bind(Term::Variable("Y"), Term::Constant("a"));
  EXPECT_FALSE(
      ComputeSquidDecomposition(q, db, {}, bogus).ok());
}

TEST(SquidTest, FoldedMatchReportsCyclicTentacles) {
  // A triangle query folded onto a self-loop outside the core.
  Database db = Db("R(u,u).");
  ConjunctiveQuery q = Q("Q() :- R(X,Y), R(Y,Z), R(Z,X)");
  auto hom = FindHomomorphism(q.body, db);
  ASSERT_TRUE(hom.has_value());
  auto squid = ComputeSquidDecomposition(q, db, {}, *hom);
  ASSERT_TRUE(squid.ok());
  EXPECT_TRUE(squid->head.empty());
  EXPECT_EQ(squid->tentacles.size(), 3u);
  EXPECT_FALSE(squid->tentacles_acyclic);
}

// ---------- Lean decompositions. ----------

TEST(LeanTest, BuildsAndValidatesOnTreeShapedData) {
  Database db = Db("A(a). R(a,b). R(b,c). R(b,d).");
  std::set<Term> core{Term::Constant("a")};
  auto lean = BuildLeanDecomposition(db, core);
  ASSERT_TRUE(lean.ok()) << lean.status().ToString();
  EXPECT_TRUE(ValidateLean(*lean, core).ok());
  EXPECT_TRUE(ValidateDecomposition(*lean, db).ok());
  EXPECT_EQ(BranchingDegree(*lean), 2);  // b forks into c and d
}

TEST(LeanTest, RejectsCyclesOutsideTheCore) {
  Database db = Db("R(a,b). R(b,c). R(c,b2). R(b2,a).");
  std::set<Term> core{Term::Constant("a")};
  EXPECT_FALSE(BuildLeanDecomposition(db, core).ok());
}

TEST(LeanTest, CycleInsideTheCoreIsFine) {
  Database db = Db("R(a,b). R(b,a). R(b,c).");
  std::set<Term> core{Term::Constant("a"), Term::Constant("b")};
  auto lean = BuildLeanDecomposition(db, core);
  ASSERT_TRUE(lean.ok()) << lean.status().ToString();
  EXPECT_TRUE(ValidateLean(*lean, core).ok());
}

TEST(LeanTest, RejectsDisconnectedElements) {
  Database db = Db("R(a,b). R(x,y).");
  std::set<Term> core{Term::Constant("a")};
  EXPECT_FALSE(BuildLeanDecomposition(db, core).ok());
}

TEST(LeanTest, RejectsTernarySchemas) {
  Database db = Db("T(a,b,c).");
  EXPECT_FALSE(BuildLeanDecomposition(db, {Term::Constant("a")}).ok());
  EXPECT_EQ(BuildLeanDecomposition(db, {Term::Constant("a")}).status().code(),
            StatusCode::kUnsupported);
}

TEST(LeanTest, DistanceAndSplit) {
  Database db = Db("A(a). R(a,b). R(b,c). R(c,d).");
  std::set<Term> core{Term::Constant("a")};
  TreeDecomposition lean = BuildLeanDecomposition(db, core).value();
  auto distance = DistanceFromRoot(lean, core);
  EXPECT_EQ(distance[Term::Constant("a")], 0);
  EXPECT_EQ(distance[Term::Constant("b")], 1);
  EXPECT_EQ(distance[Term::Constant("c")], 2);
  EXPECT_EQ(distance[Term::Constant("d")], 3);

  DistanceSplit split = SplitByDistance(db, distance, 1);
  // near: A(a), R(a,b); far: R(c,d); R(b,c) straddles the cut.
  EXPECT_EQ(split.near.size(), 2u);
  EXPECT_EQ(split.far.size(), 1u);
}

TEST(LeanTest, Prop30ShapeOnRewritableOmq) {
  // Forward propagation R(x,y) ∧ A(x) → A(y), q = ∃x A(x) ∧ B(x): on any
  // C-tree whose core holds A, the query fires within distance 0... the
  // rewritable case satisfies the boundedness property: if Q holds on D
  // it holds on D≤k for k = the witness path length. Spot-check the
  // machinery pieces compose.
  Database db = Db("A(a). R(a,b). R(b,c). B(c).");
  std::set<Term> core{Term::Constant("a")};
  TreeDecomposition lean = BuildLeanDecomposition(db, core).value();
  auto distance = DistanceFromRoot(lean, core);
  DistanceSplit split = SplitByDistance(db, distance, 2);
  EXPECT_TRUE(split.near.Contains(ParseAtom("B(c)").value()));
  EXPECT_TRUE(split.far.empty());
}

}  // namespace
}  // namespace omqc
