// Tests for the explicit Sec. 5 automata pipeline: the enumerated ΓS,l
// alphabet, the Lemma 23 consistency automaton and Prop. 25-style
// compositions on toy schemas.

#include <gtest/gtest.h>

#include "core/guarded_automata.h"
#include "logic/homomorphism.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema TinySchema() {
  Schema s;
  s.Add(Predicate::Get("r", 2));
  s.Add(Predicate::Get("A", 1));
  return s;
}

/// A hand-made consistent C-tree encoding over the tiny schema:
/// core {0} with A(0), a child {0,2} with r(0,2), a grandchild {2,3}
/// with r(2,3).
EncodedTree TinyTree() {
  EncodedTree tree;
  tree.l = 1;
  tree.width = 2;
  tree.labels.resize(3);
  tree.parent = {-1, 0, 1};
  tree.labels[0].names = {0};
  tree.labels[0].core_names = {0};
  tree.labels[0].atoms.insert({Predicate::Get("A", 1), {0}});
  tree.labels[1].names = {0, 2};
  tree.labels[1].core_names = {0};
  tree.labels[1].atoms.insert({Predicate::Get("r", 2), {0, 2}});
  tree.labels[2].names = {2, 3};
  tree.labels[2].atoms.insert({Predicate::Get("r", 2), {2, 3}});
  return tree;
}

TEST(GammaAlphabetTest, EnumerationCoversTheTinyTree) {
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 2);
  ASSERT_TRUE(alphabet.ok()) << alphabet.status().ToString();
  EXPECT_GT(alphabet->labels.size(), 100u);
  EncodedTree tree = TinyTree();
  for (const TreeLabel& label : tree.labels) {
    EXPECT_GE(alphabet->IndexOf(label), 0) << label.ToString();
  }
}

TEST(GammaAlphabetTest, RefusesLargeSchemas) {
  Schema wide;
  wide.Add(Predicate::Get("Wide", 5));
  auto alphabet = EnumerateGammaAlphabet(wide, 2, 5);
  EXPECT_FALSE(alphabet.ok());
  EXPECT_EQ(alphabet.status().code(), StatusCode::kResourceExhausted);
}

TEST(ConsistencyAutomatonTest, AcceptsConsistentTree) {
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 2).value();
  EncodedTree tree = TinyTree();
  ASSERT_TRUE(CheckConsistency(tree).ok());
  auto labeled = alphabet.ToLabeledTree(tree);
  ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  EXPECT_TRUE(Accepts(ConsistencyAutomaton(alphabet), *labeled));
  EXPECT_TRUE(FullyConsistent(alphabet, tree));
}

TEST(ConsistencyAutomatonTest, RejectsBrokenCorePropagation) {
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 2).value();
  EncodedTree tree = TinyTree();
  // Grandchild claims core marker 0 while its parent does not carry it:
  // condition (4) must fail (names stay within the width budget).
  tree.labels[2].names = {0, 3};
  tree.labels[2].core_names = {0};
  tree.labels[2].atoms.clear();
  tree.labels[2].atoms.insert({Predicate::Get("r", 2), {0, 3}});
  tree.labels[1].names = {2};
  tree.labels[1].core_names.clear();
  tree.labels[1].atoms.clear();
  tree.labels[1].atoms.insert({Predicate::Get("A", 1), {2}});
  auto labeled = alphabet.ToLabeledTree(tree);
  ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  EXPECT_FALSE(Accepts(ConsistencyAutomaton(alphabet), *labeled));
}

TEST(ConsistencyAutomatonTest, RejectsRootWithTreeNames) {
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 2).value();
  EncodedTree tree = TinyTree();
  tree.labels[0].names = {2};  // a tree name at the root
  tree.labels[0].core_names.clear();
  tree.labels[0].atoms.clear();
  tree.labels[0].atoms.insert({Predicate::Get("A", 1), {2}});
  auto labeled = alphabet.ToLabeledTree(tree);
  ASSERT_TRUE(labeled.ok());
  EXPECT_FALSE(Accepts(ConsistencyAutomaton(alphabet), *labeled));
}

TEST(ConsistencyAutomatonTest, AgreesWithDirectCheckOnEncodings) {
  // Round-trip a real C-tree through EncodeCTree and the automaton.
  Database db = ParseDatabase("A(a). r(a,b). r(b,c).").value();
  TreeDecomposition decomposition;
  decomposition.bags = {{Term::Constant("a")},
                        {Term::Constant("a"), Term::Constant("b")},
                        {Term::Constant("b"), Term::Constant("c")}};
  decomposition.parent = {-1, 0, 1};
  Instance core = db.InducedBy(decomposition.bags[0]);
  EncodedTree encoded = EncodeCTree(db, decomposition, core, 1).value();
  auto alphabet =
      EnumerateGammaAlphabet(TinySchema(), encoded.l, encoded.width).value();
  EXPECT_TRUE(FullyConsistent(alphabet, encoded));
}

TEST(AtomPresenceTest, DetectsAtomsAnywhere) {
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 2).value();
  EncodedTree tree = TinyTree();
  auto labeled = alphabet.ToLabeledTree(tree).value();
  EXPECT_TRUE(
      Accepts(AtomPresenceAutomaton(alphabet, Predicate::Get("r", 2)),
              labeled));
  EXPECT_TRUE(
      Accepts(AtomPresenceAutomaton(alphabet, Predicate::Get("A", 1)),
              labeled));
  EXPECT_FALSE(
      Accepts(AtomPresenceAutomaton(alphabet, Predicate::Get("zzz", 1)),
              labeled));
}

TEST(Prop25PipelineTest, IntersectionAndComplementDecideToyContainment) {
  // Toy instantiation of Prop. 25 with empty ontologies and atomic
  // queries: q1 = ∃xy r(x,y), q2 = ∃x A(x). q1 ⊄ q2: a consistent tree
  // accepted by (C ∩ A_{q1}) ∩ comp(A_{q2}) exists — and decodes to a
  // counterexample database.
  auto alphabet = EnumerateGammaAlphabet(TinySchema(), 1, 1, 500000).value();
  Twapa consistency = ConsistencyAutomaton(alphabet);
  Twapa has_r = AtomPresenceAutomaton(alphabet, Predicate::Get("r", 2));
  Twapa has_a = AtomPresenceAutomaton(alphabet, Predicate::Get("A", 1));

  // comp(A_{q2}) flips mode: intersect stepwise with matching modes via
  // membership (the bounded-search nonemptiness checks each automaton).
  auto c_and_q1 = Intersect(consistency, has_r).value();
  auto witness = FindAcceptedTree(c_and_q1, /*max_nodes=*/2,
                                  /*max_branching=*/1);
  ASSERT_TRUE(witness.has_value());
  // The witness satisfies q1; check it violates q2 via the complement.
  Twapa no_a = Complement(has_a);
  bool found_counterexample = false;
  // Search a few small trees for one in all three languages.
  for (int max_nodes = 1; max_nodes <= 2 && !found_counterexample;
       ++max_nodes) {
    auto candidate = FindAcceptedTree(c_and_q1, max_nodes, 1);
    if (candidate.has_value() && Accepts(no_a, *candidate)) {
      found_counterexample = true;
    }
  }
  EXPECT_TRUE(found_counterexample);

  // Conversely q1 ⊆ q1 trivially: no consistent tree satisfies q1 and
  // not-q1; spot check on the found witness.
  Twapa no_r = Complement(has_r);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(Accepts(no_r, *witness));
}

}  // namespace
}  // namespace omqc
