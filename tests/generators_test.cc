// Tests for the workload generators: the Prop. 18 sticky family, the
// Prop. 35 full→sticky transform, random OMQs and the ELI chain.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/eval.h"
#include "generators/families.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Database Db(const std::string& text) { return ParseDatabase(text).value(); }

// ---------- Prop. 18 family. ----------

TEST(StickyFamilyTest, IsStickyAndSmall) {
  for (int n = 3; n <= 8; ++n) {
    Omq q = MakeStickyWitnessFamily(n);
    EXPECT_TRUE(IsSticky(q.tgds)) << n;
    // ||Σ^n|| = O(n²).
    EXPECT_LE(q.tgds.SymbolCount(),
              static_cast<size_t>(8 * n * n + 8 * n + 8));
  }
}

TEST(StickyFamilyTest, CompleteCubeIsAnAnswer) {
  // n = 4: data bits b1,b2; all four S(b1,b2,0,1) facts needed.
  Omq q = MakeStickyWitnessFamily(4);
  Database db = Db(
      "S('0','0','0','1'). S('0','1','0','1')."
      "S('1','0','0','1'). S('1','1','0','1').");
  auto result = EvalTuple(q, db, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result);
}

TEST(StickyFamilyTest, MissingFactBreaksTheAnswer) {
  Omq q = MakeStickyWitnessFamily(4);
  Database db = Db(
      "S('0','0','0','1'). S('0','1','0','1'). S('1','0','0','1').");
  auto result = EvalTuple(q, db, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(StickyFamilyTest, WitnessSizeGrowsExponentially) {
  // Prop. 18: any D with Q^n(D) ≠ ∅ has at least 2^(n-2) facts. We verify
  // the shape on the smallest witness produced by the rewriting engine:
  // the single disjunct of the rewriting has exactly 2^(n-2) atoms.
  // (n is capped: the number of *intermediate* rewriting states is the
  // number of antichains of a binary tree, which explodes past n = 5.)
  for (int n = 3; n <= 5; ++n) {
    Omq q = MakeStickyWitnessFamily(n);
    auto rewriting = XRewrite(q.data_schema, q.tgds, q.query);
    ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
    UnionOfCQs minimized = MinimizeUCQ(*rewriting);
    size_t min_witness = SIZE_MAX;
    for (const ConjunctiveQuery& d : minimized.disjuncts) {
      min_witness = std::min(min_witness, d.size());
    }
    EXPECT_EQ(min_witness, size_t{1} << (n - 2)) << "n=" << n;
  }
}

// ---------- Prop. 35: full → sticky. ----------

TEST(FullToStickyTest, OutputIsSticky) {
  Schema schema;
  schema.Add(Predicate::Get("E", 2));
  Omq q{schema,
        ParseTgds("E(X,Y), E(Y,Z) -> E(X,Z).").value(),
        ParseQuery("Q() :- E(X,X)").value()};
  auto sticky = FullToSticky(q);
  ASSERT_TRUE(sticky.ok()) << sticky.status().ToString();
  EXPECT_TRUE(IsSticky(sticky->tgds));
  EXPECT_FALSE(IsSticky(q.tgds));  // transitivity alone is not sticky
}

TEST(FullToStickyTest, PreservesZeroOneSemantics) {
  // Transitive closure over the 0-1 domain.
  Schema schema;
  schema.Add(Predicate::Get("E", 2));
  Omq q{schema,
        ParseTgds("E(X,Y), E(Y,Z) -> E(X,Z).").value(),
        ParseQuery("Q() :- E('0','0')").value()};
  Omq sticky = FullToSticky(q).value();
  // D: 0 -> 1 -> 0: the closure contains E(0,0).
  Database cycle = Db("E('0','1'). E('1','0').");
  EXPECT_TRUE(EvalTuple(q, cycle, {}).value());
  EXPECT_TRUE(EvalTuple(sticky, cycle, {}).value());
  // D: 0 -> 1 only: no loop at 0.
  Database path = Db("E('0','1').");
  EXPECT_FALSE(EvalTuple(q, path, {}).value());
  EXPECT_FALSE(EvalTuple(sticky, path, {}).value());
}

TEST(FullToStickyTest, RejectsExistentialRules) {
  Schema schema;
  schema.Add(Predicate::Get("A", 1));
  Omq q{schema, ParseTgds("A(X) -> R(X,Y).").value(),
        ParseQuery("Q() :- R(X,Y)").value()};
  EXPECT_FALSE(FullToSticky(q).ok());
}

// ---------- ELI chain. ----------

TEST(EliChainTest, IsGuardedAndRecursive) {
  TgdSet tgds = MakeEliChainOntology(3);
  EXPECT_TRUE(IsGuarded(tgds));
  EXPECT_FALSE(IsNonRecursive(tgds));
  EXPECT_EQ(PrimaryClass(tgds), TgdClass::kGuarded);
}

TEST(EliChainTest, ChainDerivesConcepts) {
  Schema schema;
  schema.Add(Predicate::Get("A0", 1));
  Omq q{schema, MakeEliChainOntology(2),
        ParseQuery("Q(X) :- B0(X)").value()};
  // A0(a) → ∃y r0(a,y) ∧ A1(y) → B0(a).
  auto result = EvalTuple(q, Db("A0(a)."), {Term::Constant("a")});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result);
}

// ---------- Random OMQs. ----------

TEST(RandomOmqTest, GeneratedClassesClassifyCorrectly) {
  for (uint32_t seed = 1; seed <= 10; ++seed) {
    RandomOmqConfig config;
    config.seed = seed;

    config.target = TgdClass::kLinear;
    EXPECT_TRUE(IsLinear(MakeRandomOmq(config).tgds)) << seed;

    config.target = TgdClass::kNonRecursive;
    EXPECT_TRUE(IsNonRecursive(MakeRandomOmq(config).tgds)) << seed;

    config.target = TgdClass::kSticky;
    EXPECT_TRUE(IsSticky(MakeRandomOmq(config).tgds)) << seed;

    config.target = TgdClass::kGuarded;
    EXPECT_TRUE(IsGuarded(MakeRandomOmq(config).tgds)) << seed;

    config.target = TgdClass::kFull;
    EXPECT_TRUE(IsFull(MakeRandomOmq(config).tgds)) << seed;
  }
}

TEST(RandomOmqTest, DeterministicPerSeed) {
  RandomOmqConfig config;
  config.seed = 7;
  Omq a = MakeRandomOmq(config);
  Omq b = MakeRandomOmq(config);
  EXPECT_EQ(a.tgds.ToString(), b.tgds.ToString());
  EXPECT_EQ(a.query.ToString(), b.query.ToString());
}

TEST(RandomOmqTest, ValidatesAndSelfContains) {
  for (uint32_t seed = 20; seed < 26; ++seed) {
    RandomOmqConfig config;
    config.seed = seed;
    config.target = TgdClass::kLinear;
    Omq q = MakeRandomOmq(config);
    ASSERT_TRUE(ValidateOmq(q).ok());
    auto self = CheckContainment(q, q);
    ASSERT_TRUE(self.ok()) << self.status().ToString();
    EXPECT_EQ(self->outcome, ContainmentOutcome::kContained) << seed;
  }
}

TEST(ChainDatabaseTest, Shape) {
  Database db = MakeChainDatabase(5);
  EXPECT_EQ(db.size(), 7u);  // A + 5 edges + B
}

// ---------- Polarity sweep: weakening vs. marker-strengthening. ----------

// Every random OMQ yields two containments of known polarity: dropping a
// body atom (keeping all answer variables bound) weakens the query, so
// q ⊆ q' must hold; conjoining an atom over a predicate no tgd derives
// and no fact mentions strengthens it, so q ⊆ q'' must fail (the frozen
// body of q is a counterexample database). Swept over every class the
// rewriting engine decides outright.
TEST(RandomOmqTest, PolaritySweepMatchesConstruction) {
  const TgdClass kClasses[] = {TgdClass::kLinear, TgdClass::kSticky,
                               TgdClass::kNonRecursive};
  for (TgdClass target : kClasses) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      RandomOmqConfig config;
      config.seed = seed;
      config.target = target;
      Omq q1 = MakeRandomOmq(config);

      // A body atom is droppable when every answer variable still occurs
      // in some other atom afterwards.
      int droppable = -1;
      for (size_t i = 0; i < q1.query.body.size() && droppable < 0; ++i) {
        if (q1.query.body.size() < 2) break;
        bool keeps_bound = true;
        for (const Term& v : q1.query.answer_vars) {
          if (!v.IsVariable()) continue;
          bool bound = false;
          for (size_t j = 0; j < q1.query.body.size(); ++j) {
            if (j == i) continue;
            for (const Term& t : q1.query.body[j].args) {
              if (t == v) bound = true;
            }
          }
          if (!bound) keeps_bound = false;
        }
        if (keeps_bound) droppable = static_cast<int>(i);
      }
      if (droppable >= 0) {
        Omq weaker = q1;
        weaker.query.body.erase(weaker.query.body.begin() + droppable);
        auto contained = CheckContainment(q1, weaker);
        ASSERT_TRUE(contained.ok()) << contained.status().ToString();
        EXPECT_EQ(contained->outcome, ContainmentOutcome::kContained)
            << TgdClassToString(target) << " seed " << seed;
      }

      Omq stronger = q1;
      std::vector<Term> marker_args;
      marker_args.push_back(stronger.query.answer_vars.empty()
                                ? Term::Constant("m")
                                : stronger.query.answer_vars[0]);
      stronger.query.body.push_back(
          Atom::Make("SweepMarker", std::move(marker_args)));
      auto not_contained = CheckContainment(q1, stronger);
      ASSERT_TRUE(not_contained.ok()) << not_contained.status().ToString();
      EXPECT_EQ(not_contained->outcome, ContainmentOutcome::kNotContained)
          << TgdClassToString(target) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace omqc
