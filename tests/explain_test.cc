// Tests for chase provenance and derivation trees (appendix
// "Derivation Trees" used as an explanation facility).

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/explain.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Database Db(const std::string& text) { return ParseDatabase(text).value(); }

TEST(ProvenanceTest, ChaseRecordsPremises) {
  ChaseOptions options;
  options.track_provenance = true;
  ChaseResult result =
      Chase(Db("R(a,b)."), ParseTgds("R(X,Y) -> P(Y).").value(), options)
          .value();
  Atom derived = Atom::Make("P", {Term::Constant("b")});
  const ChaseResult::Provenance* why = result.ProvenanceOf(derived);
  ASSERT_NE(why, nullptr);
  EXPECT_EQ(why->tgd_index, 0u);
  ASSERT_EQ(why->premise_ids.size(), 1u);
  EXPECT_EQ(result.instance.MaterializeAtom(why->premise_ids[0]),
            Atom::Make("R", {Term::Constant("a"), Term::Constant("b")}));
}

TEST(ProvenanceTest, OffByDefault) {
  ChaseResult result =
      Chase(Db("R(a,b)."), ParseTgds("R(X,Y) -> P(Y).").value()).value();
  EXPECT_TRUE(result.provenance.empty());
}

TEST(ExplainTest, DatabaseFactIsItsOwnProof) {
  Omq q{S({{"R", 2}}), TgdSet{}, ParseQuery("Q(X) :- R(X,Y)").value()};
  auto explanation = ExplainTuple(q, Db("R(a,b)."), {Term::Constant("a")});
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  ASSERT_EQ(explanation->roots.size(), 1u);
  EXPECT_EQ(explanation->roots[0].tgd_index, DerivationNode::kDatabaseFact);
  EXPECT_EQ(explanation->roots[0].size(), 1u);
  EXPECT_EQ(explanation->roots[0].depth(), 1);
}

TEST(ExplainTest, MultiStepDerivation) {
  Omq q{S({{"R", 2}}),
        ParseTgds("R(X,Y) -> Knows(X,Y). Knows(X,Y), R(Y,Z) -> Knows(X,Z).")
            .value(),
        ParseQuery("Q(X,Z) :- Knows(X,Z)").value()};
  auto explanation =
      ExplainTuple(q, Db("R(a,b). R(b,c)."),
                   {Term::Constant("a"), Term::Constant("c")});
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  ASSERT_EQ(explanation->roots.size(), 1u);
  const DerivationNode& root = explanation->roots[0];
  EXPECT_EQ(root.tgd_index, 1);       // the transitive rule
  EXPECT_EQ(root.premises.size(), 2u);
  EXPECT_GE(root.depth(), 3);         // Knows(a,c) <- Knows(a,b) <- R(a,b)
  std::string rendered = explanation->ToString(q.tgds);
  EXPECT_NE(rendered.find("Knows(a,c)"), std::string::npos);
  EXPECT_NE(rendered.find("[database fact]"), std::string::npos);
  EXPECT_NE(rendered.find("[tgd 1"), std::string::npos);
}

TEST(ExplainTest, NonAnswerIsNotFound) {
  Omq q{S({{"R", 2}}), ParseTgds("R(X,Y) -> P(Y).").value(),
        ParseQuery("Q(X) :- P(X)").value()};
  auto explanation = ExplainTuple(q, Db("R(a,b)."), {Term::Constant("a")});
  EXPECT_FALSE(explanation.ok());
  EXPECT_EQ(explanation.status().code(), StatusCode::kNotFound);
}

TEST(ExplainTest, ExistentialWitnessesAppearAsNulls) {
  Omq q{S({{"A", 1}}),
        ParseTgds("A(X) -> R(X,Y). R(X,Y) -> B(X).").value(),
        ParseQuery("Q(X) :- B(X)").value()};
  auto explanation = ExplainTuple(q, Db("A(a)."), {Term::Constant("a")});
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  const DerivationNode& root = explanation->roots[0];
  EXPECT_EQ(root.tgd_index, 1);
  ASSERT_EQ(root.premises.size(), 1u);
  // The premise R(a, n) holds a labeled null.
  EXPECT_TRUE(root.premises[0]->atom.args[1].IsNull());
}

TEST(ExplainTest, RepeatedAnswerVariables) {
  Omq q{S({{"R", 2}}), TgdSet{},
        ParseQuery("Q(X,X) :- R(X,X)").value()};
  auto good = ExplainTuple(q, Db("R(a,a)."),
                           {Term::Constant("a"), Term::Constant("a")});
  EXPECT_TRUE(good.ok());
  auto bad = ExplainTuple(q, Db("R(a,a)."),
                          {Term::Constant("a"), Term::Constant("b")});
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace omqc
