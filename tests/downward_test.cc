// Tests for the downward 2WAPA → NTA conversion and the resulting exact
// emptiness decision — the toy-scale realization of Prop. 25's
// "containment iff L(A) = ∅".

#include <gtest/gtest.h>

#include "automata/downward.h"
#include "core/guarded_automata.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

/// Accepts iff some descendant (or the node itself) carries label 1.
Twapa Reach1(int num_labels) {
  Twapa a;
  a.num_states = 1;
  a.num_labels = num_labels;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int, int label) {
    return label == 1 ? Formula::True() : Diamond(Move::kChild, 0);
  };
  return a;
}

/// Accepts iff every node carries label 0 (a downward safety check that
/// still has finite-runs acceptance on finite trees).
Twapa All0(int num_labels) {
  Twapa a;
  a.num_states = 1;
  a.num_labels = num_labels;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int, int label) {
    return label == 0 ? Box(Move::kChild, 0) : Formula::False();
  };
  return a;
}

TEST(DownwardTest, NonEmptyReachability) {
  auto empty = DownwardIsEmpty(Reach1(2));
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_FALSE(*empty);
}

TEST(DownwardTest, UnsatisfiableIntersectionIsEmpty) {
  // "some node has label 1" ∧ "every node has label 0" is contradictory.
  auto both = Intersect(Reach1(2), All0(2)).value();
  auto empty = DownwardIsEmpty(both);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(*empty);
}

TEST(DownwardTest, SatisfiableIntersection) {
  // "some node has label 1" ∧ "root has label 1" is satisfiable.
  Twapa root1;
  root1.num_states = 1;
  root1.num_labels = 2;
  root1.initial_state = 0;
  root1.delta = [](int, int label) {
    return label == 1 ? Formula::True() : Formula::False();
  };
  auto both = Intersect(Reach1(2), root1).value();
  EXPECT_FALSE(DownwardIsEmpty(both).value());
}

TEST(DownwardTest, NtaWitnessesAreAcceptedByTheTwapa) {
  Twapa a = Reach1(3);
  Nta nta = DownwardToNta(a).value();
  EXPECT_FALSE(IsEmpty(nta));
  // Cross-check on concrete trees: every small tree accepted by the NTA
  // is accepted by the 2WAPA (the conversion is witness-sound).
  LabeledTree leaf1 = LabeledTree::Leaf(1);
  EXPECT_TRUE(Accepts(nta, leaf1));
  EXPECT_TRUE(Accepts(a, leaf1));
  LabeledTree chain = LabeledTree::Leaf(0);
  chain.AddChild(0, 1);
  EXPECT_TRUE(Accepts(nta, chain));
  EXPECT_TRUE(Accepts(a, chain));
  LabeledTree no1 = LabeledTree::Leaf(0);
  EXPECT_FALSE(Accepts(nta, no1));
  EXPECT_FALSE(Accepts(a, no1));
}

TEST(DownwardTest, RejectsTwoWayAutomata) {
  Twapa two_way;
  two_way.num_states = 1;
  two_way.num_labels = 1;
  two_way.initial_state = 0;
  two_way.delta = [](int, int) { return Diamond(Move::kUp, 0); };
  auto result = DownwardIsEmpty(two_way);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(DownwardTest, RejectsSafetyMode) {
  Twapa safety = Complement(Reach1(2));
  auto result = DownwardIsEmpty(safety);
  EXPECT_FALSE(result.ok());
}

// ---- Prop. 25 at toy scale, now with a real emptiness decision. ----

TEST(DownwardTest, Prop25EmptinessOnGammaAlphabet) {
  Schema schema;
  schema.Add(Predicate::Get("r", 2));
  schema.Add(Predicate::Get("A", 1));
  auto alphabet = EnumerateGammaAlphabet(schema, 1, 1, 500000).value();
  Twapa consistency = ConsistencyAutomaton(alphabet);
  Twapa has_r = AtomPresenceAutomaton(alphabet, Predicate::Get("r", 2));

  // Consistent trees containing an r-atom exist: non-empty.
  auto c_and_r = Intersect(consistency, has_r).value();
  DownwardOptions options;
  options.max_states = 20000;
  auto nonempty = DownwardIsEmpty(c_and_r, options);
  ASSERT_TRUE(nonempty.ok()) << nonempty.status().ToString();
  EXPECT_FALSE(*nonempty);

  // Consistent trees containing an atom of an absent predicate do not.
  Twapa has_missing =
      AtomPresenceAutomaton(alphabet, Predicate::Get("missing", 1));
  auto c_and_missing = Intersect(consistency, has_missing).value();
  auto is_empty = DownwardIsEmpty(c_and_missing, options);
  ASSERT_TRUE(is_empty.ok()) << is_empty.status().ToString();
  EXPECT_TRUE(*is_empty);
}

}  // namespace
}  // namespace omqc
