// Property tests for the canonicalizer (src/cache/canonical.h): queries
// and tgd sets that are equal up to variable renaming / atom reordering
// must fingerprint identically, and distinct fingerprints must imply
// non-isomorphism (checked exhaustively over the generated population).

#include "cache/canonical.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "generators/families.h"
#include "gtest/gtest.h"
#include "logic/cq.h"
#include "logic/substitution.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

/// Consistently renames every variable of `q` with a fresh prefix.
ConjunctiveQuery RenameCQ(const ConjunctiveQuery& q,
                          const std::string& prefix) {
  Substitution rename;
  for (const Term& v : q.Variables()) {
    rename.Bind(v, Term::Variable(prefix + v.ToString()));
  }
  return ConjunctiveQuery(rename.Apply(q.answer_vars),
                          rename.Apply(q.body));
}

/// Reverses the body atom order (fingerprints must not care).
ConjunctiveQuery ReverseBody(const ConjunctiveQuery& q) {
  ConjunctiveQuery out = q;
  std::reverse(out.body.begin(), out.body.end());
  return out;
}

Tgd RenameTgd(const Tgd& tgd, const std::string& prefix) {
  Substitution rename;
  for (const Atom& a : tgd.body) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) rename.Bind(t, Term::Variable(prefix + t.ToString()));
    }
  }
  for (const Atom& a : tgd.head) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) rename.Bind(t, Term::Variable(prefix + t.ToString()));
    }
  }
  Tgd out;
  out.body = rename.Apply(tgd.body);
  out.head = rename.Apply(tgd.head);
  return out;
}

TgdSet RenameAndShuffleTgds(const TgdSet& tgds, const std::string& prefix) {
  TgdSet out;
  for (const Tgd& tgd : tgds.tgds) out.tgds.push_back(RenameTgd(tgd, prefix));
  std::reverse(out.tgds.begin(), out.tgds.end());
  return out;
}

std::vector<Omq> GeneratePopulation() {
  const TgdClass classes[] = {TgdClass::kLinear, TgdClass::kNonRecursive,
                              TgdClass::kSticky, TgdClass::kGuarded,
                              TgdClass::kFull};
  std::vector<Omq> population;
  for (TgdClass target : classes) {
    for (uint32_t seed = 0; seed < 100; ++seed) {
      RandomOmqConfig config;
      config.target = target;
      config.seed = seed;
      config.num_predicates = 3 + static_cast<int>(seed % 3);
      config.query_atoms = 2 + static_cast<int>(seed % 4);
      config.num_variables = 3 + static_cast<int>(seed % 3);
      population.push_back(MakeRandomOmq(config));
    }
  }
  return population;
}

TEST(CanonicalTest, RenamedAndPermutedOmqsFingerprintIdentically) {
  std::vector<Omq> population = GeneratePopulation();
  ASSERT_GE(population.size(), 100u);
  size_t variant = 0;
  for (const Omq& omq : population) {
    const std::string prefix = "RN" + std::to_string(variant++) + "_";
    ConjunctiveQuery renamed = ReverseBody(RenameCQ(omq.query, prefix));
    EXPECT_EQ(FingerprintCQ(omq.query), FingerprintCQ(renamed))
        << "query: " << omq.query.ToString();
    TgdSet shuffled = RenameAndShuffleTgds(omq.tgds, prefix);
    EXPECT_EQ(FingerprintTgdSet(omq.tgds), FingerprintTgdSet(shuffled));
    EXPECT_EQ(FingerprintOmqParts(omq.data_schema, omq.tgds, omq.query),
              FingerprintOmqParts(omq.data_schema, shuffled, renamed));
  }
}

TEST(CanonicalTest, EqualFingerprintsImplyIsomorphism) {
  std::vector<Omq> population = GeneratePopulation();
  std::map<Fingerprint, ConjunctiveQuery> seen;
  size_t coincidences = 0;
  for (const Omq& omq : population) {
    Fingerprint fp = FingerprintCQ(omq.query);
    auto [it, inserted] = seen.emplace(fp, omq.query);
    if (!inserted) {
      ++coincidences;
      EXPECT_TRUE(IsomorphicCQs(omq.query, it->second))
          << "fingerprint collision between non-isomorphic queries:\n  "
          << omq.query.ToString() << "\n  " << it->second.ToString();
    }
  }
  // The sweep must actually exercise distinct structures.
  EXPECT_GE(seen.size(), 50u);
  (void)coincidences;
}

TEST(CanonicalTest, NonIsomorphicQueriesGetDistinctFingerprints) {
  std::vector<Omq> population = GeneratePopulation();
  std::vector<Fingerprint> fps;
  fps.reserve(population.size());
  for (const Omq& omq : population) fps.push_back(FingerprintCQ(omq.query));
  for (size_t i = 0; i < population.size(); ++i) {
    for (size_t j = i + 1; j < population.size(); ++j) {
      const ConjunctiveQuery& a = population[i].query;
      const ConjunctiveQuery& b = population[j].query;
      if (fps[i] == fps[j]) {
        EXPECT_TRUE(IsomorphicCQs(a, b))
            << a.ToString() << " vs " << b.ToString();
      } else {
        EXPECT_FALSE(IsomorphicCQs(a, b))
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

/// C6 vs C3 + C3: six binary atoms over six variables each, identical
/// degree sequences, indistinguishable by plain color refinement — the
/// individualization step must separate them.
TEST(CanonicalTest, DistinguishesCycleSixFromTwoTriangles) {
  auto c6 = ParseQuery(
      "Q() :- R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X5), R(X5,X6), R(X6,X1)");
  auto triangles = ParseQuery(
      "Q() :- R(X1,X2), R(X2,X3), R(X3,X1), R(Y1,Y2), R(Y2,Y3), R(Y3,Y1)");
  ASSERT_TRUE(c6.ok());
  ASSERT_TRUE(triangles.ok());
  ASSERT_FALSE(IsomorphicCQs(*c6, *triangles));
  EXPECT_NE(FingerprintCQ(*c6), FingerprintCQ(*triangles));
}

TEST(CanonicalTest, CanonicalFormIsARenamingFixpoint) {
  std::vector<Omq> population = GeneratePopulation();
  size_t variant = 0;
  for (const Omq& omq : population) {
    CanonicalCQ canon = CanonicalizeCQ(omq.query);
    EXPECT_TRUE(IsomorphicCQs(canon.query, omq.query));
    EXPECT_EQ(canon.fingerprint, FingerprintCQ(omq.query));
    // Idempotence: canonicalizing the canonical form changes nothing.
    CanonicalCQ again = CanonicalizeCQ(canon.query);
    EXPECT_EQ(again.query.ToString(), canon.query.ToString());
    EXPECT_EQ(again.fingerprint, canon.fingerprint);
    // A renamed variant canonicalizes to the very same text.
    const std::string prefix = "CF" + std::to_string(variant++) + "_";
    CanonicalCQ from_renamed = CanonicalizeCQ(RenameCQ(omq.query, prefix));
    EXPECT_EQ(from_renamed.query.ToString(), canon.query.ToString());
  }
}

TEST(CanonicalTest, ConstantsAreDistinguishedByName) {
  auto a = ParseQuery("Q(X) :- R(X, c1)");
  auto b = ParseQuery("Q(X) :- R(X, c2)");
  auto a2 = ParseQuery("Q(Y) :- R(Y, c1)");
  ASSERT_TRUE(a.ok() && b.ok() && a2.ok());
  EXPECT_NE(FingerprintCQ(*a), FingerprintCQ(*b));
  EXPECT_EQ(FingerprintCQ(*a), FingerprintCQ(*a2));
}

TEST(CanonicalTest, AnswerVariableOrderMatters) {
  auto ab = ParseQuery("Q(X,Y) :- R(X,Y)");
  auto ba = ParseQuery("Q(Y,X) :- R(X,Y)");
  ASSERT_TRUE(ab.ok() && ba.ok());
  // R(X,Y) with answer (X,Y) is not a renaming of R(X,Y) with (Y,X).
  EXPECT_NE(FingerprintCQ(*ab), FingerprintCQ(*ba));
}

TEST(CanonicalTest, SchemaFingerprintIsOrderInsensitive) {
  Schema s1;
  s1.Add(Predicate::Get("R", 2));
  s1.Add(Predicate::Get("P", 1));
  Schema s2;
  s2.Add(Predicate::Get("P", 1));
  s2.Add(Predicate::Get("R", 2));
  EXPECT_EQ(FingerprintSchema(s1), FingerprintSchema(s2));
  Schema s3 = s1;
  s3.Add(Predicate::Get("T", 3));
  EXPECT_NE(FingerprintSchema(s1), FingerprintSchema(s3));
}

}  // namespace
}  // namespace omqc
