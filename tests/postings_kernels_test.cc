// Tests for the sorted-postings intersection kernels (postings_kernels.h).
//
// The scalar two-pointer/galloping merge is the reference; the dispatching
// IntersectPostings (SIMD when compiled in and supported) must agree with
// it bit-for-bit on every input. Alongside directed edge cases, a
// randomized suite compares both against a brute-force std::set_intersection
// oracle across a grid of sizes, skews and densities — galloping kicks in
// at skew >= 16, so the grid deliberately straddles that threshold.

#include "logic/postings_kernels.h"

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace omqc {
namespace {

std::vector<AtomId> Intersect2(const std::vector<AtomId>& a,
                               const std::vector<AtomId>& b) {
  std::vector<AtomId> out;
  IntersectPostings(a.data(), a.size(), b.data(), b.size(), out);
  return out;
}

std::vector<AtomId> Intersect2Scalar(const std::vector<AtomId>& a,
                                     const std::vector<AtomId>& b) {
  std::vector<AtomId> out;
  IntersectPostingsScalar(a.data(), a.size(), b.data(), b.size(), out);
  return out;
}

std::vector<AtomId> Oracle(const std::vector<AtomId>& a,
                           const std::vector<AtomId>& b) {
  std::vector<AtomId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(PostingsIntersectTest, EmptyInputs) {
  const std::vector<AtomId> empty, some = {1, 2, 3};
  EXPECT_TRUE(Intersect2(empty, empty).empty());
  EXPECT_TRUE(Intersect2(empty, some).empty());
  EXPECT_TRUE(Intersect2(some, empty).empty());
}

TEST(PostingsIntersectTest, Singletons) {
  EXPECT_EQ(Intersect2({7}, {7}), (std::vector<AtomId>{7}));
  EXPECT_TRUE(Intersect2({7}, {8}).empty());
  // Singleton against a long list exercises the galloping path from both
  // argument orders (the kernel swaps internally to gallop in the longer).
  std::vector<AtomId> longer;
  for (AtomId v = 0; v < 1000; v += 3) longer.push_back(v);
  EXPECT_EQ(Intersect2({999}, longer), (std::vector<AtomId>{999}));
  EXPECT_EQ(Intersect2(longer, {999}), (std::vector<AtomId>{999}));
  EXPECT_TRUE(Intersect2({998}, longer).empty());
}

TEST(PostingsIntersectTest, EqualLists) {
  std::vector<AtomId> a;
  for (AtomId v = 5; v < 500; v += 7) a.push_back(v);
  EXPECT_EQ(Intersect2(a, a), a);
}

TEST(PostingsIntersectTest, DisjointLists) {
  std::vector<AtomId> evens, odds;
  for (AtomId v = 0; v < 400; v += 2) {
    evens.push_back(v);
    odds.push_back(v + 1);
  }
  EXPECT_TRUE(Intersect2(evens, odds).empty());
  // Disjoint by range (everything in a below everything in b) — the
  // block-skip / gallop fast-forward path.
  std::vector<AtomId> low = {1, 2, 3, 4, 5}, high = {100, 200, 300};
  EXPECT_TRUE(Intersect2(low, high).empty());
  EXPECT_TRUE(Intersect2(high, low).empty());
}

TEST(PostingsIntersectTest, AppendsToExistingOutput) {
  std::vector<AtomId> out = {42};
  const std::vector<AtomId> a = {1, 2, 3}, b = {2, 3, 4};
  IntersectPostings(a.data(), a.size(), b.data(), b.size(), out);
  EXPECT_EQ(out, (std::vector<AtomId>{42, 2, 3}));
}

TEST(PostingsIntersectTest, RandomizedAgainstOracleAndScalar) {
  std::mt19937 rng(20260807);
  // Sizes straddle the galloping threshold (skew 16) and the SIMD block
  // width (8 lanes): pairs like (3, 100) gallop, (64, 80) merge linearly.
  const size_t sizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 31, 64, 80, 100, 257};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      for (int density = 0; density < 3; ++density) {
        const AtomId universe =
            static_cast<AtomId>((density + 1) * (na + nb + 4));
        std::set<AtomId> sa, sb;
        std::uniform_int_distribution<AtomId> pick(0, universe);
        while (sa.size() < na) sa.insert(pick(rng));
        while (sb.size() < nb) sb.insert(pick(rng));
        const std::vector<AtomId> a(sa.begin(), sa.end());
        const std::vector<AtomId> b(sb.begin(), sb.end());
        const std::vector<AtomId> expected = Oracle(a, b);
        EXPECT_EQ(Intersect2Scalar(a, b), expected)
            << "scalar, na=" << na << " nb=" << nb;
        EXPECT_EQ(Intersect2(a, b), expected)
            << "dispatch (simd=" << PostingsSimdEnabled() << "), na=" << na
            << " nb=" << nb;
        // Intersection is commutative; the kernels pick different internal
        // roles for the two arguments, so check both orders.
        EXPECT_EQ(Intersect2(b, a), expected)
            << "swapped, na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(PostingsIntersectKWayTest, ZeroAndOneList) {
  std::vector<AtomId> out = {99}, scratch;
  std::vector<const std::vector<AtomId>*> none;
  IntersectPostingsKWay(none, out, scratch);
  EXPECT_TRUE(out.empty());

  const std::vector<AtomId> a = {2, 4, 6};
  std::vector<const std::vector<AtomId>*> one = {&a};
  IntersectPostingsKWay(one, out, scratch);
  EXPECT_EQ(out, a);
}

TEST(PostingsIntersectKWayTest, FoldsSmallestFirstAndEarlyExits) {
  const std::vector<AtomId> big1 = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<AtomId> big2 = {2, 4, 6, 8, 10, 12};
  const std::vector<AtomId> tiny = {4, 10};
  std::vector<const std::vector<AtomId>*> lists = {&big1, &big2, &tiny};
  std::vector<AtomId> out, scratch;
  IntersectPostingsKWay(lists, out, scratch);
  EXPECT_EQ(out, (std::vector<AtomId>{4, 10}));

  // An empty list anywhere empties the result regardless of the others.
  const std::vector<AtomId> empty;
  std::vector<const std::vector<AtomId>*> with_empty = {&big1, &empty, &big2};
  IntersectPostingsKWay(with_empty, out, scratch);
  EXPECT_TRUE(out.empty());
}

TEST(PostingsIntersectKWayTest, RandomizedManyLists) {
  std::mt19937 rng(7);
  for (int round = 0; round < 50; ++round) {
    const size_t k = 2 + rng() % 4;
    std::vector<std::vector<AtomId>> owned(k);
    std::uniform_int_distribution<AtomId> pick(0, 60);
    for (auto& list : owned) {
      std::set<AtomId> s;
      const size_t n = rng() % 40;
      while (s.size() < n) s.insert(pick(rng));
      list.assign(s.begin(), s.end());
    }
    std::vector<AtomId> expected = owned[0];
    for (size_t i = 1; i < k; ++i) {
      std::vector<AtomId> next;
      std::set_intersection(expected.begin(), expected.end(),
                            owned[i].begin(), owned[i].end(),
                            std::back_inserter(next));
      expected = std::move(next);
    }
    std::vector<const std::vector<AtomId>*> lists;
    for (const auto& list : owned) lists.push_back(&list);
    std::vector<AtomId> out, scratch;
    IntersectPostingsKWay(lists, out, scratch);
    EXPECT_EQ(out, expected) << "round " << round;
  }
}

TEST(PostingsIdRangeTest, WindowsOfASortedList) {
  const std::vector<AtomId> ids = {2, 3, 5, 8, 13, 21};
  auto [f1, l1] = PostingsIdRange(ids, 5, 21);  // [5, 21) -> {5, 8, 13}
  EXPECT_EQ(std::vector<AtomId>(f1, l1), (std::vector<AtomId>{5, 8, 13}));
  auto [f2, l2] = PostingsIdRange(ids, 0, 100);  // superset window
  EXPECT_EQ(l2 - f2, static_cast<ptrdiff_t>(ids.size()));
  auto [f3, l3] = PostingsIdRange(ids, 9, 13);  // empty window
  EXPECT_EQ(f3, l3);
  auto [f4, l4] = PostingsIdRange(ids, 22, 50);  // past the end
  EXPECT_EQ(f4, l4);
  const std::vector<AtomId> empty;
  auto [f5, l5] = PostingsIdRange(empty, 0, 10);
  EXPECT_EQ(f5, l5);
}

}  // namespace
}  // namespace omqc
