// Tests for the 2WAPA substrate (Defs. 10/11) and the NTA utilities used
// by Sec. 7.2's infinity reduction.

#include <gtest/gtest.h>

#include "automata/pbf.h"
#include "automata/twapa.h"

namespace omqc {
namespace {

// ---------- Positive Boolean formulas. ----------

TEST(PbfTest, EvaluationAndSimplification) {
  Formula t = Formula::True();
  Formula f = Formula::False();
  EXPECT_EQ(Formula::And(t, f).kind(), Formula::Kind::kFalse);
  EXPECT_EQ(Formula::Or(t, f).kind(), Formula::Kind::kTrue);
  Formula atom = Diamond(Move::kChild, 3);
  EXPECT_EQ(Formula::And(t, atom).kind(), Formula::Kind::kAtom);

  auto always = [](const TransitionAtom&) { return true; };
  auto never = [](const TransitionAtom&) { return false; };
  Formula mixed = Formula::Or(Formula::And(atom, atom), f);
  EXPECT_TRUE(mixed.Evaluate(always));
  EXPECT_FALSE(mixed.Evaluate(never));
}

TEST(PbfTest, DualSwapsEverything) {
  Formula f = Formula::And(Diamond(Move::kChild, 1),
                           Formula::Or(Box(Move::kUp, 2), Formula::True()));
  Formula dual = f.Dual();
  // dual = [∗]1 ∨ (⟨-1⟩2 ∧ false) = [∗]1.
  EXPECT_EQ(dual.kind(), Formula::Kind::kAtom);
  EXPECT_TRUE(dual.atom().universal);
  EXPECT_EQ(dual.atom().state, 1);
}

TEST(PbfTest, CollectAtoms) {
  Formula f = Formula::And(Diamond(Move::kStay, 1), Box(Move::kChild, 2));
  std::vector<TransitionAtom> atoms;
  f.CollectAtoms(atoms);
  EXPECT_EQ(atoms.size(), 2u);
}

TEST(PbfTest, NaryConstructors) {
  EXPECT_EQ(Formula::AndAll({}).kind(), Formula::Kind::kTrue);
  EXPECT_EQ(Formula::OrAll({}).kind(), Formula::Kind::kFalse);
}

// ---------- Labeled trees. ----------

TEST(LabeledTreeTest, Construction) {
  LabeledTree tree = LabeledTree::Leaf(0);
  int child = tree.AddChild(tree.root(), 1);
  tree.AddChild(child, 2);
  EXPECT_EQ(tree.nodes.size(), 3u);
  EXPECT_EQ(tree.nodes[1].parent, 0);
  EXPECT_EQ(tree.nodes[0].children.size(), 1u);
}

// ---------- 2WAPA membership. ----------

/// Automaton: state 0 accepts iff SOME node reachable downward has label 1.
Twapa SomeLabelOneAutomaton() {
  Twapa a;
  a.num_states = 1;
  a.num_labels = 2;
  a.initial_state = 0;
  a.mode = AcceptanceMode::kFiniteRuns;
  a.delta = [](int /*state*/, int label) {
    if (label == 1) return Formula::True();
    return Diamond(Move::kChild, 0);
  };
  return a;
}

TEST(TwapaTest, ReachabilityMembership) {
  Twapa a = SomeLabelOneAutomaton();
  LabeledTree no_one = LabeledTree::Leaf(0);
  no_one.AddChild(0, 0);
  EXPECT_FALSE(Accepts(a, no_one));

  LabeledTree has_one = LabeledTree::Leaf(0);
  int mid = has_one.AddChild(0, 0);
  has_one.AddChild(mid, 1);
  EXPECT_TRUE(Accepts(a, has_one));
}

TEST(TwapaTest, UniversalObligation) {
  // State 0: every child must carry label 1 ([∗]-style via state 1).
  Twapa a;
  a.num_states = 2;
  a.num_labels = 2;
  a.initial_state = 0;
  a.delta = [](int state, int label) {
    if (state == 0) return Box(Move::kChild, 1);
    return label == 1 ? Formula::True() : Formula::False();
  };
  LabeledTree all_ones = LabeledTree::Leaf(0);
  all_ones.AddChild(0, 1);
  all_ones.AddChild(0, 1);
  EXPECT_TRUE(Accepts(a, all_ones));
  LabeledTree one_zero = all_ones;
  one_zero.AddChild(0, 0);
  EXPECT_FALSE(Accepts(a, one_zero));
  // Vacuously true on a leaf.
  EXPECT_TRUE(Accepts(a, LabeledTree::Leaf(0)));
}

TEST(TwapaTest, TwoWayMovement) {
  // State 0 walks down to a node labeled 1, then state 1 walks back up
  // demanding the ROOT (no parent) is labeled 2... we encode: state 1
  // moves up while possible; at the root ([−1] vacuous), check label 2
  // via state 2.
  Twapa a;
  a.num_states = 3;
  a.num_labels = 3;
  a.initial_state = 0;
  a.delta = [](int state, int label) {
    switch (state) {
      case 0:
        if (label == 1) return Formula::Or(Diamond(Move::kStay, 1),
                                           Diamond(Move::kChild, 0));
        return Diamond(Move::kChild, 0);
      case 1:
        // Either continue upward or verify we are at a node labeled 2.
        return Formula::Or(Diamond(Move::kUp, 1), Diamond(Move::kStay, 2));
      default:
        return label == 2 ? Formula::True() : Formula::False();
    }
  };
  LabeledTree good = LabeledTree::Leaf(2);
  int mid = good.AddChild(0, 0);
  good.AddChild(mid, 1);
  EXPECT_TRUE(Accepts(a, good));

  LabeledTree bad = LabeledTree::Leaf(0);
  mid = bad.AddChild(0, 0);
  bad.AddChild(mid, 1);
  EXPECT_FALSE(Accepts(a, bad));
}

TEST(TwapaTest, ComplementFlipsAcceptance) {
  Twapa a = SomeLabelOneAutomaton();
  Twapa complement = Complement(a);
  LabeledTree has_one = LabeledTree::Leaf(1);
  LabeledTree no_one = LabeledTree::Leaf(0);
  EXPECT_TRUE(Accepts(a, has_one));
  EXPECT_FALSE(Accepts(complement, has_one));
  EXPECT_FALSE(Accepts(a, no_one));
  EXPECT_TRUE(Accepts(complement, no_one));
}

TEST(TwapaTest, ComplementHandlesDeepTrees) {
  Twapa complement = Complement(SomeLabelOneAutomaton());
  LabeledTree tree = LabeledTree::Leaf(0);
  int current = 0;
  for (int i = 0; i < 5; ++i) current = tree.AddChild(current, 0);
  EXPECT_TRUE(Accepts(complement, tree));
  tree.AddChild(current, 1);
  EXPECT_FALSE(Accepts(complement, tree));
}

TEST(TwapaTest, IntersectionRequiresMatchingAlphabets) {
  Twapa a = SomeLabelOneAutomaton();
  Twapa b = SomeLabelOneAutomaton();
  b.num_labels = 5;
  EXPECT_FALSE(Intersect(a, b).ok());
}

TEST(TwapaTest, IntersectionSemantics) {
  // L(a): some node labeled 1. L(b): root labeled 0.
  Twapa a = SomeLabelOneAutomaton();
  Twapa b;
  b.num_states = 1;
  b.num_labels = 2;
  b.initial_state = 0;
  b.delta = [](int, int label) {
    return label == 0 ? Formula::True() : Formula::False();
  };
  Twapa both = Intersect(a, b).value();

  LabeledTree yes = LabeledTree::Leaf(0);
  yes.AddChild(0, 1);
  EXPECT_TRUE(Accepts(both, yes));

  LabeledTree root_one = LabeledTree::Leaf(1);
  EXPECT_FALSE(Accepts(both, root_one));  // b rejects

  LabeledTree no_one = LabeledTree::Leaf(0);
  EXPECT_FALSE(Accepts(both, no_one));  // a rejects
}

TEST(TwapaTest, FindAcceptedTree) {
  // Accepts only trees whose root is labeled 1 and has a child labeled 0.
  Twapa a;
  a.num_states = 2;
  a.num_labels = 2;
  a.initial_state = 0;
  a.delta = [](int state, int label) {
    if (state == 0) {
      if (label != 1) return Formula::False();
      return Diamond(Move::kChild, 1);
    }
    return label == 0 ? Formula::True() : Formula::False();
  };
  auto witness = FindAcceptedTree(a, /*max_nodes=*/3, /*max_branching=*/2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(Accepts(a, *witness));
  EXPECT_EQ(witness->nodes[0].label, 1);

  // An unsatisfiable automaton yields no witness within the bound.
  Twapa empty = a;
  empty.delta = [](int, int) { return Formula::False(); };
  EXPECT_FALSE(FindAcceptedTree(empty, 3, 2).has_value());
}

// ---------- NTA utilities. ----------

Nta ChainAutomaton() {
  // Accepts unary chains 0^k 1: state 0 on label 0 with one child in
  // state 0, or label 1 as a leaf.
  Nta a;
  a.num_states = 1;
  a.num_labels = 2;
  a.initial_state = 0;
  a.rules.push_back({0, 0, {0}});
  a.rules.push_back({0, 1, {}});
  return a;
}

TEST(NtaTest, EmptinessAndMembership) {
  Nta chain = ChainAutomaton();
  EXPECT_FALSE(IsEmpty(chain));
  LabeledTree t = LabeledTree::Leaf(0);
  int c = t.AddChild(0, 0);
  t.AddChild(c, 1);
  EXPECT_TRUE(Accepts(chain, t));
  LabeledTree bad = LabeledTree::Leaf(0);
  bad.AddChild(0, 0);  // chain not terminated by label 1
  EXPECT_FALSE(Accepts(chain, bad));

  Nta empty;
  empty.num_states = 1;
  empty.num_labels = 1;
  empty.initial_state = 0;
  empty.rules.push_back({0, 0, {0}});  // no terminating rule
  EXPECT_TRUE(IsEmpty(empty));
}

TEST(NtaTest, InfinityDetection) {
  // The chain automaton accepts arbitrarily long chains: infinite.
  EXPECT_TRUE(IsInfinite(ChainAutomaton()));

  // A two-tree language: finite.
  Nta finite;
  finite.num_states = 2;
  finite.num_labels = 2;
  finite.initial_state = 0;
  finite.rules.push_back({0, 0, {1}});
  finite.rules.push_back({1, 1, {}});
  finite.rules.push_back({0, 1, {}});
  EXPECT_FALSE(IsInfinite(finite));

  // Empty language: not infinite.
  Nta empty;
  empty.num_states = 1;
  empty.num_labels = 1;
  empty.initial_state = 0;
  EXPECT_TRUE(IsEmpty(empty));
  EXPECT_FALSE(IsInfinite(empty));
}

TEST(NtaTest, InfinityRequiresReachableCycle) {
  // A cycle unreachable from the initial state does not count.
  Nta a;
  a.num_states = 3;
  a.num_labels = 2;
  a.initial_state = 0;
  a.rules.push_back({0, 1, {}});
  a.rules.push_back({2, 0, {2}});  // cycle on an unreachable state
  a.rules.push_back({2, 1, {}});
  EXPECT_FALSE(IsInfinite(a));
}

}  // namespace
}  // namespace omqc
