// Tests for the Sec. 7 applications: satisfiability, distribution over
// components (Prop. 27) and UCQ rewritability (Sec. 7.2).

#include <gtest/gtest.h>

#include "core/applications.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

// ---------- Satisfiability. ----------

TEST(SatisfiabilityTest, SatisfiableLinear) {
  Omq q = MakeOmq(S({{"A", 1}}), "A(X) -> B(X).", "Q(X) :- B(X)");
  EXPECT_TRUE(IsSatisfiable(q).value());
}

TEST(SatisfiabilityTest, UnsatisfiableWhenPredicateUnderivable) {
  // Nothing in S or Σ can produce a C atom.
  Omq q = MakeOmq(S({{"A", 1}}), "A(X) -> B(X).", "Q(X) :- C(X)");
  EXPECT_FALSE(IsSatisfiable(q).value());
}

TEST(SatisfiabilityTest, GuardedViaCriticalDatabase) {
  Omq q = MakeOmq(S({{"R", 2}, {"A", 1}}), "R(X,Y), A(X) -> A(Y).",
                  "Q() :- A(X)");
  EXPECT_TRUE(IsSatisfiable(q).value());
  Omq unsat = MakeOmq(S({{"R", 2}, {"A", 1}}), "R(X,Y), A(X) -> A(Y).",
                      "Q() :- Z(X)");
  EXPECT_FALSE(IsSatisfiable(unsat).value());
}

// ---------- Distribution over components (Prop. 27). ----------

TEST(DistributionTest, ConnectedQueryDistributes) {
  // q is connected: its single component is q itself, and q ⊆ q.
  Omq q = MakeOmq(S({{"R", 2}}), "", "Q(X) :- R(X,Y), R(Y,Z)");
  auto result = DistributesOverComponents(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  ASSERT_TRUE(result->witnessing_component.has_value());
}

TEST(DistributionTest, CartesianProductDoesNotDistribute) {
  // q = A(x) ∧ B(y) (two components): a database with A and B in
  // different components answers q but neither component alone does.
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "", "Q() :- A(X), B(Y)");
  auto result = DistributesOverComponents(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kNotContained);
}

TEST(DistributionTest, OntologyCanRestoreDistribution) {
  // With A(x) → B(x), the component A(x) alone implies ∃y B(y) as well,
  // so q = A(x) ∧ B(y) distributes.
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "A(X) -> B(X).",
                  "Q() :- A(X), B(Y)");
  auto result = DistributesOverComponents(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  ASSERT_TRUE(result->witnessing_component.has_value());
}

TEST(DistributionTest, UnsatisfiableQueryDistributes) {
  Omq q = MakeOmq(S({{"A", 1}}), "", "Q() :- Zebra(X), A(Y)");
  auto result = DistributesOverComponents(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  EXPECT_FALSE(result->witnessing_component.has_value());
}

TEST(DistributionTest, ComponentEvaluationMatchesWhenDistributing) {
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "A(X) -> B(X).",
                  "Q() :- A(X), B(Y)");
  Database db = ParseDatabase("A(a). B(b).").value();
  auto whole = EvalAll(q, db);
  auto split = EvalOverComponents(q, db);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*whole, *split);
}

TEST(DistributionTest, ComponentEvaluationDiffersWhenNotDistributing) {
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "", "Q() :- A(X), B(Y)");
  Database db = ParseDatabase("A(a). B(b).").value();
  auto whole = EvalAll(q, db);
  auto split = EvalOverComponents(q, db);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(whole->size(), 1u);   // the Boolean query holds on D
  EXPECT_TRUE(split->empty());    // but on no single component
}

// ---------- UCQ rewritability (Sec. 7.2). ----------

TEST(UcqRewritabilityTest, LinearIsAlwaysRewritable) {
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "A(X) -> B(X).", "Q(X) :- B(X)");
  auto result = CheckUcqRewritability(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  ASSERT_TRUE(result->rewriting.has_value());
  EXPECT_EQ(result->rewriting->size(), 2u);  // B(x) ∨ A(x)
}

TEST(UcqRewritabilityTest, GuardedRewritableCaseSaturates) {
  // Forward propagation with an existential query: the pruned rewriting
  // collapses to A(x).
  Omq q = MakeOmq(S({{"A", 1}, {"R", 2}}), "R(X,Y), A(X) -> A(Y).",
                  "Q() :- A(X)");
  auto result = CheckUcqRewritability(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
  ASSERT_TRUE(result->rewriting.has_value());
  EXPECT_EQ(result->rewriting->size(), 1u);
}

TEST(UcqRewritabilityTest, GuardedNonRewritableCaseIsUnknown) {
  // Backward reachability to a constant: the perfect rewriting is the
  // infinite R-path family (the boundedness property of Prop. 30 fails).
  Omq q = MakeOmq(S({{"A", 1}, {"R", 2}}), "R(X,Y), A(Y) -> A(X).",
                  "Q() :- A(c)");
  ContainmentOptions options;
  options.rewrite.max_queries = 80;
  auto result = CheckUcqRewritability(q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ContainmentOutcome::kUnknown);
  EXPECT_GT(result->disjuncts_found, 10u);  // the growing-family evidence
}

TEST(UcqRewritabilityTest, CertificateIsActuallyARewriting) {
  Omq q = MakeOmq(S({{"A", 1}, {"T", 1}}),
                  "A(X) -> P(X). T(X) -> P(X).", "Q(X) :- P(X)");
  auto result = CheckUcqRewritability(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, ContainmentOutcome::kContained);
  const UnionOfCQs& rewriting = *result->rewriting;
  Database db = ParseDatabase("A(a). T(t).").value();
  auto direct = EvalAll(q, db).value();
  auto via_rewriting = EvaluateUCQ(rewriting, db);
  EXPECT_EQ(direct, via_rewriting);
}

}  // namespace
}  // namespace omqc
