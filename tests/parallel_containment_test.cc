// Parallel containment engine: for every thread count the engine must
// return exactly the outcome of the serial run (witnesses may differ when
// several disjuncts refute, so only outcomes are compared), and the
// aggregated EngineStats must reflect the work done.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/containment.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

/// A chain CQ Q(X0) :- pred(X0,X1), ..., pred(X_{len-1},X_len).
std::string Chain(const std::string& pred, int len) {
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < len; ++i) {
    if (i > 0) text += ", ";
    text += pred + "(X" + std::to_string(i) + ",X" + std::to_string(i + 1) +
            ")";
  }
  return text;
}

class ParallelContainmentTest : public ::testing::TestWithParam<size_t> {
 protected:
  /// Runs q1 ⊆ q2 with the parameterized thread count and serially, and
  /// asserts both runs agree. Returns the parallel result.
  ContainmentResult CheckBothWays(
      const Omq& q1, const Omq& q2,
      ContainmentOptions options = ContainmentOptions()) {
    options.num_threads = 1;
    auto serial = CheckContainment(q1, q2, options);
    EXPECT_TRUE(serial.ok()) << serial.status().ToString();
    options.num_threads = GetParam();
    auto parallel = CheckContainment(q1, q2, options);
    EXPECT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->outcome, serial->outcome)
        << "serial and " << GetParam()
        << "-thread runs disagree on the outcome";
    return *parallel;
  }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelContainmentTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

TEST_P(ParallelContainmentTest, PlainCQBothDirections) {
  Schema schema = S({{"R", 2}});
  Omq longer = MakeOmq(schema, "", "Q(X) :- R(X,Y), R(Y,Z)");
  Omq shorter = MakeOmq(schema, "", "Q(X) :- R(X,Y)");
  EXPECT_EQ(CheckBothWays(longer, shorter).outcome,
            ContainmentOutcome::kContained);
  ContainmentResult refuted = CheckBothWays(shorter, longer);
  EXPECT_EQ(refuted.outcome, ContainmentOutcome::kNotContained);
  EXPECT_TRUE(refuted.witness.has_value());
}

TEST_P(ParallelContainmentTest, LinearChainFansOutManyDisjuncts) {
  // Every Conn atom rewrites to Edge or stays: 2^4 disjuncts, each an
  // independent RHS check.
  const char kSigma[] = "Edge(X,Y) -> Conn(X,Y).";
  Schema schema = S({{"Edge", 2}, {"Conn", 2}});
  Omq q1 = MakeOmq(schema, kSigma, Chain("Conn", 4));
  Omq q2 = MakeOmq(schema, kSigma, Chain("Conn", 4));
  ContainmentResult result = CheckBothWays(q1, q2);
  EXPECT_EQ(result.outcome, ContainmentOutcome::kContained);
  EXPECT_GT(result.candidates_checked, 1u);
  EXPECT_EQ(result.stats.disjuncts_checked, result.candidates_checked);
  EXPECT_GT(result.stats.hom.searches, 0u);
}

TEST_P(ParallelContainmentTest, EarlyExitOnRefutingDisjunct) {
  // The P(x) disjunct of the LHS rewriting refutes containment in T(x);
  // workers must stop early and still agree with the serial outcome.
  const char kSigma[] = "T(X) -> P(X). U(X) -> P(X).";
  Schema schema = S({{"P", 1}, {"T", 1}, {"U", 1}});
  Omq q1 = MakeOmq(schema, kSigma, "Q(X) :- P(X)");
  Omq q2 = MakeOmq(schema, kSigma, "Q(X) :- T(X)");
  ContainmentResult result = CheckBothWays(q1, q2);
  EXPECT_EQ(result.outcome, ContainmentOutcome::kNotContained);
  EXPECT_TRUE(result.witness.has_value());
}

TEST_P(ParallelContainmentTest, BudgetExhaustionStaysUnknown) {
  // A contained pair under a 1-step homomorphism budget: every RHS check
  // is inconclusive, so all runs must report kUnknown — never a
  // refutation.
  Schema schema = S({{"R", 2}});
  Omq longer = MakeOmq(schema, "", "Q(X) :- R(X,Y), R(Y,Z)");
  Omq shorter = MakeOmq(schema, "", "Q(X) :- R(X,Y)");
  ContainmentOptions options;
  options.eval.hom_max_steps = 1;
  ContainmentResult result = CheckBothWays(longer, shorter, options);
  EXPECT_EQ(result.outcome, ContainmentOutcome::kUnknown);
  EXPECT_FALSE(result.witness.has_value());
  EXPECT_GT(result.stats.budget_exhaustions, 0u);
}

TEST_P(ParallelContainmentTest, HardwareConcurrencyAlias) {
  // num_threads = 0 means "hardware concurrency" and must also agree.
  Schema schema = S({{"P", 1}, {"T", 1}});
  Omq q1 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- T(X)");
  Omq q2 = MakeOmq(schema, "T(X) -> P(X).", "Q(X) :- P(X)");
  ContainmentOptions options;
  options.num_threads = 0;
  auto result = CheckContainment(q1, q2, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, ContainmentOutcome::kContained);
}

TEST_P(ParallelContainmentTest, StatsAggregateAcrossWorkers) {
  const char kSigma[] = "Edge(X,Y) -> Conn(X,Y).";
  Schema schema = S({{"Edge", 2}, {"Conn", 2}});
  Omq q1 = MakeOmq(schema, kSigma, Chain("Conn", 3));
  Omq q2 = MakeOmq(schema, kSigma, Chain("Conn", 3));
  ContainmentResult result = CheckBothWays(q1, q2);
  EXPECT_EQ(result.outcome, ContainmentOutcome::kContained);
  // Every candidate failed to refute, and each cost at least one search.
  EXPECT_EQ(result.stats.witnesses_rejected, result.candidates_checked);
  EXPECT_GE(result.stats.hom.searches, result.candidates_checked);
  EXPECT_GT(result.stats.rewrite.queries_generated, 0u);
}

}  // namespace
}  // namespace omqc
