// The chaos suite: every public entry point (Chase, XRewrite, Eval,
// CheckUcqOmqContainment) is driven under deterministic injected faults —
// deadline trips, cancellations, memory exhaustion, dropped cache inserts
// and stalled pool workers — across thread counts 1/2/8. The invariants:
//
//   1. Never crash, never hang (the workloads are small; ctest enforces a
//      timeout as backstop).
//   2. Always return a well-formed Status: either OK with a sound result,
//      or one of the governor codes with a non-empty message.
//   3. Never a torn result: partial outputs are subsets of the unfaulted
//      run's outputs (chase atoms), and stats counters stay consistent.
//   4. Never a wrong definite verdict: a faulted containment run may
//      degrade kContained/kNotContained to kUnknown (or an error), but
//      must never report the OPPOSITE definite outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "automata/emptiness.h"
#include "base/fault_injection.h"
#include "base/governor.h"
#include "base/thread_pool.h"
#include "cache/omq_cache.h"
#include "chase/chase.h"
#include "core/containment.h"
#include "core/eval.h"
#include "rewrite/xrewrite.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

bool IsGovernorCode(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

/// The fault points swept per entry point: early (first check), mid-run
/// and late enough that small workloads may finish first (which is fine —
/// the run must then return its normal result).
const uint64_t kCheckPoints[] = {1, 3, 10, 50, 400};

// ---------------------------------------------------------------------------
// Chase under injected trips: returns OK (chase only errors on ill-formed
// input), marks the run incomplete via `interrupt`, and every atom present
// is a sound consequence (a subset of the unfaulted fixpoint).
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ChaseTruncatesSoundlyAtEveryFaultPoint) {
  TgdSet tgds = ParseTgds(
                    "A(X) -> B(X). B(X) -> C(X). "
                    "C(X), Edge(X,Y) -> A(Y).")
                    .value();
  Database db =
      ParseDatabase("A(a). Edge(a,b). Edge(b,c). Edge(c,d).").value();
  ChaseResult reference = Chase(db, tgds).value();
  ASSERT_TRUE(reference.complete);

  for (StatusCode injected :
       {StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    for (uint64_t at : kCheckPoints) {
      FaultPlan plan;
      plan.seed = at;
      (injected == StatusCode::kDeadlineExceeded ? plan.deadline_at_check
                                                 : plan.cancel_at_check) = at;
      FaultInjector injector(plan);
      ResourceGovernor governor;
      governor.set_fault_injector(&injector);
      ChaseOptions options;
      options.governor = &governor;
      auto result = Chase(db, tgds, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (injector.fired()) {
        EXPECT_FALSE(result->complete) << "fault at check " << at;
        EXPECT_EQ(result->interrupt.code(), injected);
        EXPECT_FALSE(result->interrupt.message().empty());
      } else {
        // The run finished before check #at: it must be the normal result.
        EXPECT_TRUE(result->complete);
        EXPECT_TRUE(result->interrupt.ok());
        EXPECT_EQ(result->instance.size(), reference.instance.size());
      }
      // Soundness: truncated or not, every atom is a real consequence.
      for (const Atom& atom : result->instance.atoms()) {
        EXPECT_TRUE(reference.instance.Contains(atom))
            << "unsound atom " << atom.ToString() << " (fault at " << at
            << ")";
      }
    }
  }
}

TEST(FaultInjectionTest, ChaseMemoryFaultStopsGrowthNotSoundness) {
  TgdSet tgds = ParseTgds("A(X) -> B(X). B(X) -> C(X).").value();
  Database db = ParseDatabase("A(a). A(b). A(c).").value();
  ChaseResult reference = Chase(db, tgds).value();
  for (uint64_t at : {uint64_t{1}, uint64_t{2}, uint64_t{4}}) {
    FaultPlan plan;
    plan.memory_at_charge = at;
    FaultInjector injector(plan);
    ResourceGovernor governor;
    governor.set_fault_injector(&injector);
    ChaseOptions options;
    options.governor = &governor;
    auto result = Chase(db, tgds, options);
    ASSERT_TRUE(result.ok());
    // The chase batches byte charges (one flush per growing tgd turn):
    // this workload grows in exactly two turns, so charges 1 and 2 are
    // reached deterministically while higher indices never fire.
    if (at <= 2) {
      ASSERT_TRUE(injector.fired());
    }
    if (injector.fired()) {
      EXPECT_FALSE(result->complete);
      EXPECT_EQ(result->interrupt.code(), StatusCode::kResourceExhausted);
    } else {
      EXPECT_TRUE(result->complete);
      EXPECT_EQ(result->instance.size(), reference.instance.size());
    }
    for (const Atom& atom : result->instance.atoms()) {
      EXPECT_TRUE(reference.instance.Contains(atom));
    }
  }
}

// ---------------------------------------------------------------------------
// XRewrite under injected trips: either the normal rewriting (fault never
// reached) or the governor's trip status — never a silently truncated UCQ
// passed off as complete.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, XRewriteReturnsTripStatusOrFullRewriting) {
  Schema schema = S({{"Edge", 2}, {"Conn", 2}});
  TgdSet tgds = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  ConjunctiveQuery q =
      ParseQuery("Q(X) :- Conn(X,Y), Conn(Y,Z), Conn(Z,W)").value();
  UnionOfCQs reference = XRewrite(schema, tgds, q).value();

  for (StatusCode injected :
       {StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    for (uint64_t at : kCheckPoints) {
      FaultPlan plan;
      (injected == StatusCode::kDeadlineExceeded ? plan.deadline_at_check
                                                 : plan.cancel_at_check) = at;
      FaultInjector injector(plan);
      ResourceGovernor governor;
      governor.set_fault_injector(&injector);
      XRewriteOptions options;
      options.governor = &governor;
      auto result = XRewrite(schema, tgds, q, options);
      if (result.ok()) {
        EXPECT_EQ(result->size(), reference.size())
            << "a fault mid-enumeration must not yield a shorter UCQ";
      } else {
        EXPECT_TRUE(injector.fired());
        EXPECT_EQ(result.status().code(), injected)
            << result.status().ToString();
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

TEST(FaultInjectionTest, XRewriteMemoryFaultSurfacesAsResourceExhausted) {
  Schema schema = S({{"Edge", 2}, {"Conn", 2}});
  TgdSet tgds = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  ConjunctiveQuery q = ParseQuery("Q(X) :- Conn(X,Y), Conn(Y,Z)").value();
  FaultPlan plan;
  plan.memory_at_charge = 1;  // the very first disjunct charge fails
  FaultInjector injector(plan);
  ResourceGovernor governor;
  governor.set_fault_injector(&injector);
  XRewriteOptions options;
  options.governor = &governor;
  auto result = XRewrite(schema, tgds, q, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Eval under injected trips: OK with the exact answers, or a governor
// code — never OK with a wrong answer set.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, EvalReturnsExactAnswersOrTripStatus) {
  Schema schema = S({{"Professor", 1}, {"Teaches", 2}});
  Omq omq{schema,
          ParseTgds("Professor(X) -> Faculty(X). "
                    "Teaches(X,C) -> Faculty(X).")
              .value(),
          ParseQuery("Q(X) :- Faculty(X)").value()};
  Database db =
      ParseDatabase("Professor(turing). Teaches(hopper, prog).").value();
  auto reference = EvalAll(omq, db);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->size(), 2u);

  for (StatusCode injected :
       {StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    for (uint64_t at : kCheckPoints) {
      FaultPlan plan;
      (injected == StatusCode::kDeadlineExceeded ? plan.deadline_at_check
                                                 : plan.cancel_at_check) = at;
      FaultInjector injector(plan);
      ResourceGovernor governor;
      governor.set_fault_injector(&injector);
      EvalOptions options;
      options.governor = &governor;
      EngineStats stats;
      auto result = EvalAll(omq, db, options, &stats);
      if (result.ok()) {
        EXPECT_EQ(*result, *reference)
            << "a faulted OK run must carry the exact answers";
      } else {
        EXPECT_TRUE(injector.fired());
        EXPECT_EQ(result.status().code(), injected);
        // Stats are not torn: the governor section reflects the trip.
        EXPECT_TRUE(stats.governor.any_trip());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Containment chaos across thread counts: the full engine, all fault
// kinds, 1/2/8 workers. The verdict-consistency invariant is the heart of
// the suite.
// ---------------------------------------------------------------------------

struct ContainmentWorkload {
  const char* name;
  UcqOmq q1;
  UcqOmq q2;
  ContainmentOutcome expected;  // unfaulted verdict
};

std::vector<ContainmentWorkload> Workloads() {
  Schema schema = S({{"Edge", 2}, {"Conn", 2}});
  TgdSet sigma = ParseTgds("Edge(X,Y) -> Conn(X,Y).").value();
  auto chain3 =
      ParseQuery("Q(X) :- Conn(X,Y), Conn(Y,Z), Conn(Z,W)").value();
  auto chain1 = ParseQuery("Q(X) :- Conn(X,Y)").value();
  std::vector<ContainmentWorkload> workloads;
  workloads.push_back({"contained",
                       UcqOmq{schema, sigma, UnionOfCQs{{chain3}}},
                       UcqOmq{schema, sigma, UnionOfCQs{{chain1}}},
                       ContainmentOutcome::kContained});
  workloads.push_back({"refuted",
                       UcqOmq{schema, sigma, UnionOfCQs{{chain1}}},
                       UcqOmq{schema, sigma, UnionOfCQs{{chain3}}},
                       ContainmentOutcome::kNotContained});
  return workloads;
}

/// Checks the universal chaos invariants on one faulted containment run.
void ExpectSoundUnderFault(const ContainmentWorkload& workload,
                           const Result<ContainmentResult>& result,
                           const FaultInjector& injector,
                           const std::string& context) {
  if (!result.ok()) {
    EXPECT_TRUE(IsGovernorCode(result.status().code()))
        << context << ": unexpected error " << result.status().ToString();
    EXPECT_FALSE(result.status().message().empty()) << context;
    return;
  }
  if (result->outcome == ContainmentOutcome::kUnknown) {
    EXPECT_FALSE(result->detail.empty()) << context;
    return;
  }
  // A definite verdict must match the unfaulted one — a fault may remove
  // information but never invent a certificate.
  EXPECT_EQ(result->outcome, workload.expected)
      << context << " (fault fired: " << injector.fired()
      << "): wrong definite verdict";
}

class ContainmentChaosTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ContainmentChaosTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

TEST_P(ContainmentChaosTest, GovernorFaultsNeverFlipTheVerdict) {
  for (const ContainmentWorkload& workload : Workloads()) {
    // Sanity: the unfaulted run has the expected definite verdict.
    {
      ContainmentOptions options;
      options.num_threads = GetParam();
      auto clean = CheckUcqOmqContainment(workload.q1, workload.q2, options);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      ASSERT_EQ(clean->outcome, workload.expected) << workload.name;
    }
    for (StatusCode injected :
         {StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
      for (uint64_t at : kCheckPoints) {
        FaultPlan plan;
        plan.seed = at;
        (injected == StatusCode::kDeadlineExceeded
             ? plan.deadline_at_check
             : plan.cancel_at_check) = at;
        FaultInjector injector(plan);
        ResourceGovernor governor;
        governor.set_fault_injector(&injector);
        ContainmentOptions options;
        options.num_threads = GetParam();
        options.governor = &governor;
        auto result =
            CheckUcqOmqContainment(workload.q1, workload.q2, options);
        ExpectSoundUnderFault(
            workload, result, injector,
            std::string(workload.name) + " threads=" +
                std::to_string(GetParam()) + " code=" +
                StatusCodeToString(injected) + " at=" + std::to_string(at));
      }
    }
  }
}

TEST_P(ContainmentChaosTest, MemoryFaultsNeverFlipTheVerdict) {
  for (const ContainmentWorkload& workload : Workloads()) {
    for (uint64_t at : {uint64_t{1}, uint64_t{2}, uint64_t{5}}) {
      FaultPlan plan;
      plan.memory_at_charge = at;
      FaultInjector injector(plan);
      ResourceGovernor governor;
      governor.set_fault_injector(&injector);
      ContainmentOptions options;
      options.num_threads = GetParam();
      options.governor = &governor;
      auto result =
          CheckUcqOmqContainment(workload.q1, workload.q2, options);
      ExpectSoundUnderFault(workload, result, injector,
                            std::string(workload.name) +
                                " memory at=" + std::to_string(at));
    }
  }
}

TEST_P(ContainmentChaosTest, DroppedCacheInsertsAreInvisible) {
  OmqCache cache;
  for (uint64_t at : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    FaultPlan plan;
    plan.fail_insert_at = at;
    FaultInjector injector(plan);
    cache.set_fault_injector(&injector);
    for (const ContainmentWorkload& workload : Workloads()) {
      ContainmentOptions options;
      options.num_threads = GetParam();
      options.cache = &cache;
      auto result =
          CheckUcqOmqContainment(workload.q1, workload.q2, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->outcome, workload.expected)
          << workload.name << ": a dropped cache insert changed semantics";
    }
    cache.set_fault_injector(nullptr);
  }
}

void StallHook(void* ctx, size_t worker_index) {
  static_cast<FaultInjector*>(ctx)->OnWorkerTask(worker_index);
}

TEST_P(ContainmentChaosTest, StalledWorkerChangesNothingButLatency) {
  if (GetParam() == 1) return;  // serial path has no pool workers
  FaultPlan plan;
  plan.stall_worker = 0;
  plan.stall_millis = 5;
  FaultInjector injector(plan);
  ThreadPool::SetTaskHookForTesting(&StallHook, &injector);
  for (const ContainmentWorkload& workload : Workloads()) {
    ContainmentOptions options;
    options.num_threads = GetParam();
    auto result = CheckUcqOmqContainment(workload.q1, workload.q2, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->outcome, workload.expected) << workload.name;
  }
  ThreadPool::SetTaskHookForTesting(nullptr, nullptr);
}

TEST_P(ContainmentChaosTest, RealCancellationFromAnotherThread) {
  // Not an injected fault: a live CancellationToken flipped mid-run from
  // outside, racing the engine. The run must come back well-formed with a
  // sound verdict no matter where the cancellation lands.
  for (const ContainmentWorkload& workload : Workloads()) {
    ResourceGovernor governor;
    std::atomic<bool> done{false};
    std::thread canceller([&governor, &done] {
      while (!done.load(std::memory_order_acquire)) {
        governor.Cancel();
        std::this_thread::yield();
      }
    });
    ContainmentOptions options;
    options.num_threads = GetParam();
    options.governor = &governor;
    auto result = CheckUcqOmqContainment(workload.q1, workload.q2, options);
    done.store(true, std::memory_order_release);
    canceller.join();
    FaultInjector unused{FaultPlan{}};
    ExpectSoundUnderFault(workload, result, unused,
                          std::string("live-cancel ") + workload.name);
  }
}

// ---------------------------------------------------------------------------
// Antichain emptiness chaos: the automata engine's governor probe sites
// (per expanded obligation set, the per-label stride inside ExpandSet,
// per propagation round, and the arena byte charges) across thread
// counts. Invariant: a governor code or the true verdict — a fault must
// never flip emptiness.
// ---------------------------------------------------------------------------

struct EmptinessWorkload {
  const char* name;
  Twapa automaton;
  bool expected_empty;
};

std::vector<EmptinessWorkload> EmptinessWorkloads() {
  // A long diamond chain (states 0 -> 1 -> ... -> n-1, the last accepts):
  // non-empty, and every link interns a fresh obligation set so the
  // per-set and per-round probes fire many times.
  Twapa chain;
  const int n = 60;
  chain.num_states = n;
  chain.num_labels = 1;
  chain.initial_state = 0;
  chain.mode = AcceptanceMode::kFiniteRuns;
  chain.delta = [](int state, int) {
    return state == 60 - 1 ? Formula::True()
                           : Diamond(Move::kChild, state + 1);
  };
  // "some node has label 1" ∧ "every node has label 0": empty, and the
  // engine must explore to the fixpoint to prove it.
  Twapa reach1;
  reach1.num_states = 1;
  reach1.num_labels = 2;
  reach1.initial_state = 0;
  reach1.mode = AcceptanceMode::kFiniteRuns;
  reach1.delta = [](int, int label) {
    return label == 1 ? Formula::True() : Diamond(Move::kChild, 0);
  };
  Twapa all0 = reach1;
  all0.delta = [](int, int label) {
    return label == 0 ? Box(Move::kChild, 0) : Formula::False();
  };
  return {{"chain_nonempty", chain, false},
          {"contradiction_empty", Intersect(reach1, all0).value(), true}};
}

class EmptinessChaosTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, EmptinessChaosTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{8}));

TEST_P(EmptinessChaosTest, GovernorFaultsNeverFlipTheVerdict) {
  for (const EmptinessWorkload& workload : EmptinessWorkloads()) {
    {
      EmptinessOptions options;
      options.engine = EmptinessEngine::kAntichain;
      options.num_threads = GetParam();
      auto clean = DownwardEmptiness(workload.automaton, options);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      ASSERT_EQ(*clean, workload.expected_empty) << workload.name;
    }
    for (StatusCode injected :
         {StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
      for (uint64_t at : kCheckPoints) {
        FaultPlan plan;
        plan.seed = at;
        (injected == StatusCode::kDeadlineExceeded ? plan.deadline_at_check
                                                   : plan.cancel_at_check) =
            at;
        FaultInjector injector(plan);
        ResourceGovernor governor;
        governor.set_fault_injector(&injector);
        EmptinessOptions options;
        options.engine = EmptinessEngine::kAntichain;
        options.num_threads = GetParam();
        options.governor = &governor;
        auto result = DownwardEmptiness(workload.automaton, options);
        const std::string context =
            std::string(workload.name) + " threads=" +
            std::to_string(GetParam()) + " code=" +
            StatusCodeToString(injected) + " at=" + std::to_string(at);
        if (result.ok()) {
          EXPECT_EQ(*result, workload.expected_empty)
              << context << ": a fault flipped the verdict";
        } else {
          EXPECT_TRUE(injector.fired()) << context;
          EXPECT_EQ(result.status().code(), injected)
              << context << ": " << result.status().ToString();
          EXPECT_FALSE(result.status().message().empty()) << context;
        }
      }
    }
  }
}

TEST_P(EmptinessChaosTest, MemoryFaultsSurfaceAsResourceExhausted) {
  for (const EmptinessWorkload& workload : EmptinessWorkloads()) {
    for (uint64_t at : {uint64_t{1}, uint64_t{2}, uint64_t{5}}) {
      FaultPlan plan;
      plan.memory_at_charge = at;
      FaultInjector injector(plan);
      ResourceGovernor governor;
      governor.set_fault_injector(&injector);
      EmptinessOptions options;
      options.engine = EmptinessEngine::kAntichain;
      options.num_threads = GetParam();
      options.governor = &governor;
      auto result = DownwardEmptiness(workload.automaton, options);
      const std::string context = std::string(workload.name) +
                                  " memory at=" + std::to_string(at);
      if (result.ok()) {
        EXPECT_EQ(*result, workload.expected_empty) << context;
      } else {
        EXPECT_TRUE(injector.fired()) << context;
        EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
            << context << ": " << result.status().ToString();
      }
    }
  }
}

TEST_P(ContainmentChaosTest, ExpiredDeadlineYieldsGovernedUnknown) {
  // A real (non-injected) deadline already in the past: the engine must
  // degrade to kUnknown (or a trip error from RHS setup) and say why.
  ContainmentWorkload workload = Workloads()[0];  // the contained pair
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::nanoseconds(0));
  ContainmentOptions options;
  options.num_threads = GetParam();
  options.governor = &governor;
  auto result = CheckUcqOmqContainment(workload.q1, workload.q2, options);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  if (result->outcome == ContainmentOutcome::kUnknown) {
    EXPECT_NE(result->detail.find("governor"), std::string::npos)
        << result->detail;
  } else {
    // The tiny workload can win the race against the first clock sample —
    // then it must have produced the true verdict.
    EXPECT_EQ(result->outcome, workload.expected);
  }
}

}  // namespace
}  // namespace omqc
