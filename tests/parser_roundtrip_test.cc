// Round-trip: the printed form of generated ontologies and queries parses
// back to an object with the same canonical form (fingerprint equality is
// the yardstick — printing/parsing may rename apart, but never change
// structure).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/string_util.h"
#include "cache/canonical.h"
#include "generators/families.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

std::string SerializeTgds(const TgdSet& tgds) {
  return JoinMapped(tgds.tgds, "\n",
                    [](const Tgd& tgd) { return tgd.ToString() + "."; });
}

TEST(ParserRoundTripTest, GeneratedOmqsSurvivePrintParse) {
  const TgdClass classes[] = {TgdClass::kLinear, TgdClass::kNonRecursive,
                              TgdClass::kSticky, TgdClass::kGuarded,
                              TgdClass::kFull};
  size_t round_tripped = 0;
  for (TgdClass target : classes) {
    for (uint32_t seed = 0; seed < 20; ++seed) {
      RandomOmqConfig config;
      config.target = target;
      config.seed = seed;
      config.query_atoms = 2 + static_cast<int>(seed % 3);
      Omq omq = MakeRandomOmq(config);

      auto tgds = ParseTgds(SerializeTgds(omq.tgds));
      ASSERT_TRUE(tgds.ok()) << tgds.status().ToString() << "\nsource:\n"
                             << SerializeTgds(omq.tgds);
      EXPECT_EQ(FingerprintTgdSet(omq.tgds), FingerprintTgdSet(*tgds))
          << "tgd set changed under print/parse:\n"
          << SerializeTgds(omq.tgds);

      auto query = ParseQuery(omq.query.ToString());
      ASSERT_TRUE(query.ok()) << query.status().ToString() << "\nsource: "
                              << omq.query.ToString();
      EXPECT_EQ(FingerprintCQ(omq.query), FingerprintCQ(*query))
          << "query changed under print/parse: " << omq.query.ToString();
      ++round_tripped;
    }
  }
  EXPECT_EQ(round_tripped, 100u);
}

TEST(ParserRoundTripTest, ConstantsAndBooleanQueriesSurvive) {
  const char* cases[] = {
      "q(X) :- R(X, c1), P(c2)",
      "q() :- R(X, Y), R(Y, X)",
      "q(X,Y) :- R(X, Y)",
      "q() :- true",
  };
  for (const char* text : cases) {
    auto first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseQuery(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(FingerprintCQ(*first), FingerprintCQ(*second)) << text;
  }
}

TEST(ParserRoundTripTest, RoundTripIsCanonicalFormStable) {
  // Print → parse → canonicalize must agree with canonicalize directly,
  // including the canonical variable numbering (X0, X1, ... must parse as
  // variables, not constants).
  RandomOmqConfig config;
  config.target = TgdClass::kSticky;
  config.seed = 7;
  Omq omq = MakeRandomOmq(config);
  CanonicalCQ canon = CanonicalizeCQ(omq.query);
  auto reparsed = ParseQuery(canon.query.ToString());
  ASSERT_TRUE(reparsed.ok()) << canon.query.ToString();
  CanonicalCQ canon2 = CanonicalizeCQ(*reparsed);
  EXPECT_EQ(canon.fingerprint, canon2.fingerprint);
  EXPECT_EQ(canon.query.ToString(), canon2.query.ToString());
}

}  // namespace
}  // namespace omqc
