// Tests for ontology-aware OMQ minimization.

#include <gtest/gtest.h>

#include "core/minimize.h"
#include "tgd/parser.h"

namespace omqc {
namespace {

Schema S(std::initializer_list<std::pair<const char*, int>> preds) {
  Schema s;
  for (const auto& [name, arity] : preds) {
    s.Add(Predicate::Get(name, arity));
  }
  return s;
}

Omq MakeOmq(Schema schema, const std::string& tgds,
            const std::string& query) {
  return Omq{std::move(schema), ParseTgds(tgds).value(),
             ParseQuery(query).value()};
}

TEST(MinimizeOmqTest, OntologyMakesAtomRedundant) {
  // Hub(x) implies an outgoing Flight, which is a Connection: the query
  // Hub(x) ∧ Connected(x,y) minimizes to Hub(x).
  Omq q = MakeOmq(S({{"Hub", 1}, {"Flight", 2}}),
                  "Flight(X,Y) -> Connected(X,Y). Hub(X) -> Flight(X,Y).",
                  "Q(X) :- Hub(X), Connected(X,Y)");
  auto result = MinimizeOmqQuery(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->atoms_removed, 1u);
  EXPECT_TRUE(result->certified_minimal);
  EXPECT_EQ(result->minimized.query.size(), 1u);
  EXPECT_EQ(result->minimized.query.body[0].predicate,
            Predicate::Get("Hub", 1));
}

TEST(MinimizeOmqTest, PlainCQRedundancyStillDetected) {
  Omq q = MakeOmq(S({{"R", 2}}), "",
                  "Q(X) :- R(X,Y), R(X,Z)");
  auto result = MinimizeOmqQuery(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->minimized.query.size(), 1u);
}

TEST(MinimizeOmqTest, NothingToRemove) {
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "",
                  "Q(X) :- A(X), B(X)");
  auto result = MinimizeOmqQuery(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->atoms_removed, 0u);
  EXPECT_EQ(result->minimized.query.size(), 2u);
  EXPECT_TRUE(result->certified_minimal);
}

TEST(MinimizeOmqTest, AnswerVariablesStayBound) {
  // Removing A(X) would unbind the answer variable; removing B(Y)... Y is
  // existential, and nothing implies B, so both atoms stay.
  Omq q = MakeOmq(S({{"A", 1}, {"B", 1}}), "",
                  "Q(X) :- A(X), B(Y)");
  auto result = MinimizeOmqQuery(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->minimized.query.size(), 2u);
}

TEST(MinimizeOmqTest, MinimizedOmqStaysEquivalent) {
  Omq q = MakeOmq(S({{"Hub", 1}, {"Flight", 2}}),
                  "Flight(X,Y) -> Connected(X,Y). Hub(X) -> Flight(X,Y).",
                  "Q(X) :- Hub(X), Flight(X,Y), Connected(X,Z)");
  auto result = MinimizeOmqQuery(q);
  ASSERT_TRUE(result.ok());
  auto equivalence = CheckEquivalence(result->minimized, q);
  ASSERT_TRUE(equivalence.ok());
  EXPECT_EQ(equivalence->outcome, ContainmentOutcome::kContained);
}

}  // namespace
}  // namespace omqc
