#!/usr/bin/env sh
# Configure, build and run the whole test suite under ASan + UBSan
# (-Werror stays on). Usage: scripts/sanitize.sh [extra ctest args...]
set -eu
cd "$(dirname "$0")/.."
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -j"$(nproc)" "$@"
