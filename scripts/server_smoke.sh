#!/usr/bin/env sh
# End-to-end smoke test for the omqc server over real TCP: start the
# daemon on an ephemeral port, replay a seeded mixed workload with
# omqc_load (--verify asserts per-shape response consistency), then diff
# every response body against what omqc_cli prints for the same request —
# the "server is byte-identical to the CLI" acceptance check — and finally
# assert a clean daemon shutdown. The daemon runs with a persistent
# --cache-dir and --stats-json, so the shutdown metrics document must
# carry the persistent-store counters.
#
# Usage: scripts/server_smoke.sh
# Env: BUILD_DIR (default: build) — must already be configured and built.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
for bin in omqc_server omqc_load omqc_cli; do
  if [ ! -x "$BUILD_DIR/examples/$bin" ]; then
    echo "error: $BUILD_DIR/examples/$bin not found (build the project first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT HUP INT TERM

# 1. Daemon on an ephemeral port; the port file sidesteps the startup race.
# The persistent --cache-dir + --stats-json exercise the warm-boot path
# (empty store: open, serve, flush-on-drain) and the shutdown metrics.
"$BUILD_DIR/examples/omqc_server" --port=0 --port-file="$workdir/port" \
  --cache-dir="$workdir/cache" --stats-json \
  >"$workdir/server.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$workdir/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "error: daemon never wrote its port file" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  kill -0 "$server_pid" 2>/dev/null || {
    echo "error: daemon exited during startup" >&2
    cat "$workdir/server.log" >&2
    exit 1
  }
  sleep 0.1
done
port="$(cat "$workdir/port")"
echo "daemon up on port $port (pid $server_pid)"

# 2. Seeded mixed workload over TCP, with cross-request verification and a
# dump of every distinct request shape for the CLI diff below.
"$BUILD_DIR/examples/omqc_load" --port="$port" --requests=60 \
  --concurrency=4 --seed=1 --verify --dump-dir="$workdir"

# 3. CLI agreement: each manifest row is one distinct request shape; the
# server's response body must be byte-identical to omqc_cli's stdout.
# ("-" marks an unused query column — empty fields would collapse under
# the shell's IFS tab handling.)
fails=0
checked=0
while IFS="$(printf '\t')" read -r kind prog q1 q2 resp; do
  [ -n "$kind" ] || continue
  case "$kind" in
    eval)     "$BUILD_DIR/examples/omqc_cli" eval "$workdir/$prog" "$q1" \
                >"$workdir/cli_out.txt" ;;
    contain)  "$BUILD_DIR/examples/omqc_cli" contain "$workdir/$prog" \
                "$q1" "$q2" >"$workdir/cli_out.txt" ;;
    classify) "$BUILD_DIR/examples/omqc_cli" classify "$workdir/$prog" \
                >"$workdir/cli_out.txt" ;;
    *)        echo "unknown manifest kind '$kind'" >&2; exit 1 ;;
  esac
  checked=$((checked + 1))
  if ! diff -u "$workdir/cli_out.txt" "$workdir/$resp" >&2; then
    echo "MISMATCH: $kind $prog $q1 $q2" >&2
    fails=$((fails + 1))
  fi
done <"$workdir/manifest.tsv"
if [ "$checked" -eq 0 ]; then
  echo "error: manifest.tsv had no rows to check" >&2
  exit 1
fi
echo "CLI agreement: $checked shapes checked, $fails mismatches"
[ "$fails" -eq 0 ]

# 4. Clean shutdown on SIGTERM: the daemon must drain and say so.
kill "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "clean shutdown" "$workdir/server.log" || {
  echo "error: daemon did not report a clean shutdown" >&2
  cat "$workdir/server.log" >&2
  exit 1
}

# 5. The shutdown metrics document must carry the persistent-store
# counters, and the drain must have sealed the compiled artifacts so a
# restart would warm-start.
grep -q '"persist_entries"' "$workdir/server.log" || {
  echo "error: shutdown stats are missing the persistent-store counters" >&2
  cat "$workdir/server.log" >&2
  exit 1
}
[ -s "$workdir/cache/MANIFEST" ] || {
  echo "error: daemon drain did not seal the persistent store" >&2
  ls -la "$workdir/cache" >&2 || true
  exit 1
}
echo "server smoke: OK"
