#!/usr/bin/env sh
# Differential soak smoke: a fixed-seed scenario corpus through every
# engine configuration (threads 1/2/8, cache off, governed with random
# budgets, live TCP server), three acceptance checks:
#
#   1. Clean corpus: no configuration ever disagrees with another or with
#      the construction polarity oracle.
#   2. Determinism: two identical invocations produce byte-identical
#      stdout (the wall-clock-dependent tallies go to stderr).
#   3. Persistent store: two runs over the same --persist-dir produce
#      byte-identical stdout (artifacts decoded from disk segments never
#      change a verdict) and the warm run actually serves from disk.
#   4. Planted bug: with --plant-flip the harness must catch the flipped
#      verdict on every scenario, minimize one to <= 10 tgds, and the
#      emitted repro must replay through `omqc_cli contain`.
#
# Repro files land in ./soak-artifacts for CI upload on failure.
#
# Usage: scripts/soak_smoke.sh
# Env: BUILD_DIR (default: build) — must already be configured and built.
#      COUNT (default: 200) — corpus size; the ASan job uses a smaller one.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
COUNT="${COUNT:-200}"
SEED=20240817
for bin in omqc_soak omqc_cli; do
  if [ ! -x "$BUILD_DIR/examples/$bin" ]; then
    echo "error: $BUILD_DIR/examples/$bin not found (build the project first)" >&2
    exit 1
  fi
done

artifacts="$(pwd)/soak-artifacts"
rm -rf "$artifacts"
mkdir -p "$artifacts"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT INT TERM

# 1 + 2. Clean corpus, twice: zero discrepancies and identical stdout.
echo "soak run 1/2 (seed=$SEED count=$COUNT)..."
"$BUILD_DIR/examples/omqc_soak" --seed="$SEED" --count="$COUNT" \
  --repro-dir="$artifacts" >"$workdir/run1.txt" 2>"$workdir/run1.err"
echo "soak run 2/2..."
"$BUILD_DIR/examples/omqc_soak" --seed="$SEED" --count="$COUNT" \
  --repro-dir="$artifacts" >"$workdir/run2.txt" 2>"$workdir/run2.err"
if ! diff -u "$workdir/run1.txt" "$workdir/run2.txt" >&2; then
  echo "error: soak stdout is not deterministic across identical runs" >&2
  cp "$workdir"/run1.txt "$workdir"/run2.txt "$artifacts"/
  exit 1
fi
echo "determinism: OK ($(wc -l <"$workdir/run1.txt") identical lines)"

# 3. Persistent-store differential: cold run seeds the store (and warm-
# reloads it every 25 scenarios), warm run replays the same corpus from
# disk. Stdout must not move by a byte, and the warm run's stderr tally
# must show artifacts actually served from segments. Local configs only —
# the persist config is in-process by construction.
persist_count=40
echo "persist soak run 1/2 (count=$persist_count)..."
"$BUILD_DIR/examples/omqc_soak" --seed="$SEED" --count="$persist_count" \
  --server=off --governed=off --persist-dir="$workdir/persist-store" \
  --repro-dir="$artifacts" >"$workdir/persist1.txt" 2>"$workdir/persist1.err"
echo "persist soak run 2/2 (same --persist-dir)..."
"$BUILD_DIR/examples/omqc_soak" --seed="$SEED" --count="$persist_count" \
  --server=off --governed=off --persist-dir="$workdir/persist-store" \
  --repro-dir="$artifacts" >"$workdir/persist2.txt" 2>"$workdir/persist2.err"
if ! diff -u "$workdir/persist1.txt" "$workdir/persist2.txt" >&2; then
  echo "error: warm-start soak stdout differs from cold-start" >&2
  cp "$workdir"/persist1.txt "$workdir"/persist2.txt "$artifacts"/
  exit 1
fi
hits="$(sed -n 's/^soak: persist hits=\([0-9][0-9]*\).*/\1/p' \
  "$workdir/persist2.err")"
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
  echo "error: warm soak run served nothing from disk (hits=${hits:-none})" >&2
  cat "$workdir/persist2.err" >&2
  exit 1
fi
echo "persist differential: byte-identical stdout, warm run hits=$hits"

# 4. Planted verdict flip: every scenario must flag, one repro must shrink
# to <= 10 tgds and replay through the CLI. Local configs only — the flip
# is in-process, and minimization probes would hammer the server for
# nothing.
echo "planted-flip run..."
set +e
"$BUILD_DIR/examples/omqc_soak" --seed="$SEED" --count=3 --server=off \
  --governed=off --plant-flip=threads1 --max-repros=1 \
  --repro-dir="$artifacts" >"$workdir/flip.txt" 2>&1
flip_status=$?
set -e
if [ "$flip_status" -ne 1 ]; then
  echo "error: planted flip should exit 1, got $flip_status" >&2
  cat "$workdir/flip.txt" >&2
  exit 1
fi
flagged="$(grep -c DISCREPANCY "$workdir/flip.txt")"
if [ "$flagged" -ne 3 ]; then
  echo "error: planted flip flagged $flagged of 3 scenarios" >&2
  cat "$workdir/flip.txt" >&2
  exit 1
fi
repro="$artifacts/soak_repro_0.dlgp"
if [ ! -s "$repro" ]; then
  echo "error: no minimized repro was written" >&2
  exit 1
fi
tgds="$(grep -c -- '->' "$repro" || true)"
if [ "$tgds" -gt 10 ]; then
  echo "error: minimized repro still has $tgds tgds (> 10)" >&2
  cat "$repro" >&2
  exit 1
fi
"$BUILD_DIR/examples/omqc_cli" contain "$repro" Q1 Q2 >"$workdir/replay.txt"
grep -q "Q1 ⊆ Q2:" "$workdir/replay.txt" || {
  echo "error: repro did not replay through omqc_cli contain" >&2
  cat "$workdir/replay.txt" >&2
  exit 1
}
echo "planted flip: caught on 3/3 scenarios, repro has $tgds tgds, replays OK"

# The planted-flip repros are expected artifacts of a healthy run; only a
# *clean-corpus* repro means a real discrepancy escaped.
rm -f "$artifacts"/soak_repro_*.dlgp
echo "soak smoke: OK"
