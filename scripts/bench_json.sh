#!/usr/bin/env sh
# Run bench binaries with --benchmark_format=json and write the results to
# BENCH_<name>.json in the repo root (bench_chase -> BENCH_chase.json), for
# before/after comparisons across commits.
#
# Usage: scripts/bench_json.sh [bench_name...] [-- extra benchmark args...]
#   scripts/bench_json.sh                 # every bench_* binary in the build
#   scripts/bench_json.sh bench_chase     # just one
#   scripts/bench_json.sh bench_chase -- --benchmark_filter=Strategy
# Env: BUILD_DIR (default: build) — must already be configured and built.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found (build the project first)" >&2
  exit 1
fi

benches=""
extra_args=""
collecting_extra=0
for arg in "$@"; do
  if [ "$collecting_extra" -eq 1 ]; then
    extra_args="$extra_args $arg"
  elif [ "$arg" = "--" ]; then
    collecting_extra=1
  else
    benches="$benches $arg"
  fi
done

if [ -z "$benches" ]; then
  for bin in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$bin" ] || continue
    benches="$benches $(basename "$bin")"
  done
fi

for bench in $benches; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin is not an executable bench binary" >&2
    exit 1
  fi
  out="BENCH_${bench#bench_}.json"
  echo "== $bench -> $out"
  # shellcheck disable=SC2086  # extra_args is intentionally word-split
  "$bin" --benchmark_format=json --benchmark_out_format=json \
      --benchmark_out="$out" $extra_args >/dev/null
done
