#!/usr/bin/env python3
"""Check benchmark results against the checked-in ns/op guardrails.

Usage: scripts/check_bench_guardrail.py <bench_name> <results.json>

<results.json> is google-benchmark --benchmark_format=json output for the
bench binary <bench_name> (e.g. bench_logic). Every guardrail registered
for that binary in bench/guardrails.json must be present in the results
and must not exceed baseline_ns * slack. Exit status 1 on any violation
or missing benchmark, so CI fails loudly.

Aggregate-aware: if the results contain repetition aggregates, the
median is used (less noise-prone than the mean on shared runners);
otherwise the single run's real_time.
"""

import json
import sys
from pathlib import Path


def ns(value: float, unit: str) -> float:
    return value * {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_name, results_path = sys.argv[1], sys.argv[2]
    repo = Path(__file__).resolve().parent.parent
    config = json.loads((repo / "bench" / "guardrails.json").read_text())
    guardrails = [g for g in config["guardrails"] if g["bench"] == bench_name]
    if not guardrails:
        print(f"no guardrails registered for {bench_name}; nothing to check")
        return 0

    results = json.loads(Path(results_path).read_text())
    # name -> real_time ns; prefer the median aggregate when present.
    times: dict[str, float] = {}
    medians: dict[str, float] = {}
    for b in results.get("benchmarks", []):
        t = ns(b["real_time"], b["time_unit"])
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = t
        elif b.get("run_type", "iteration") == "iteration":
            times.setdefault(b["name"], t)
    times.update(medians)

    failed = False
    for g in guardrails:
        name, baseline, slack = g["name"], g["baseline_ns"], g["slack"]
        ceiling = baseline * slack
        measured = times.get(name)
        if measured is None:
            print(f"FAIL {name}: not found in {results_path} "
                  f"(was the filter too narrow or the bench renamed?)")
            failed = True
            continue
        verdict = "FAIL" if measured > ceiling else "ok"
        print(f"{verdict:4} {name}: {measured:.0f} ns "
              f"(ceiling {ceiling:.0f} = {baseline} x {slack})")
        if measured > ceiling:
            print(f"     {g['reason']}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
