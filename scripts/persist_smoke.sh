#!/usr/bin/env sh
# Persistent-store smoke test: the cross-process warm-start acceptance
# check for src/cache/persist. Three checks per CLI command (eval and
# contain over examples/data/university.dlgp):
#
#   1. Byte-identical verdicts: a second process on the same --cache-dir
#      prints exactly what the cold process printed.
#   2. Warm means warm: the second process reports persist_hits > 0 and
#      zero rewriting work (rewriting_steps == 0, queries_generated == 0)
#      in --stats-json — it decoded artifacts from disk, it did not
#      recompile them.
#   3. The store is real: the directory holds a MANIFEST and at least one
#      sealed segment after the cold process exits.
#
# Usage: scripts/persist_smoke.sh
# Env: BUILD_DIR (default: build) — must already be configured and built.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CLI="$BUILD_DIR/examples/omqc_cli"
PROGRAM="examples/data/university.dlgp"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found (build the project first)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT HUP INT TERM
store="$workdir/store"

# Warm-run stats contract, asserted on the JSON document that --stats-json
# prints as the last stdout line.
check_warm_stats() {
  python3 -c '
import json, sys
engine = json.loads(sys.stdin.readlines()[-1])["engine"]
cache, rewrite = engine["cache"], engine["rewrite"]
assert cache["persist_hits"] > 0, f"no persist hits: {cache}"
assert rewrite["rewriting_steps"] == 0, f"warm run rewrote: {rewrite}"
assert rewrite["queries_generated"] == 0, f"warm run rewrote: {rewrite}"
print("    persist_hits=" + str(cache["persist_hits"]))
' <"$1"
}

run_command() {
  # $1 = tag, rest = CLI args. Cold process, warm process, stats process.
  tag="$1"
  shift
  echo "[$tag] cold process..."
  "$CLI" "$@" --cache-dir="$store" >"$workdir/$tag.cold.txt"
  echo "[$tag] warm process (same --cache-dir)..."
  "$CLI" "$@" --cache-dir="$store" >"$workdir/$tag.warm.txt"
  if ! diff -u "$workdir/$tag.cold.txt" "$workdir/$tag.warm.txt" >&2; then
    echo "error: $tag verdict differs between cold and warm process" >&2
    exit 1
  fi
  "$CLI" "$@" --cache-dir="$store" --stats-json >"$workdir/$tag.stats.txt"
  check_warm_stats "$workdir/$tag.stats.txt"
  echo "[$tag] byte-identical across processes, warm stats OK"
}

run_command eval eval "$PROGRAM" FacultyQ
run_command contain contain "$PROGRAM" TeachersQ FacultyQ

# 3. The store directory must hold a sealed manifest and segment(s).
if [ ! -s "$store/MANIFEST" ]; then
  echo "error: no MANIFEST in $store after cold runs" >&2
  ls -la "$store" >&2 || true
  exit 1
fi
segments="$(ls "$store" | grep -c '^seg-' || true)"
if [ "$segments" -eq 0 ]; then
  echo "error: no segments in $store after cold runs" >&2
  ls -la "$store" >&2 || true
  exit 1
fi
echo "store: MANIFEST + $segments segment(s)"
echo "persist smoke: OK"
