#!/usr/bin/env sh
# Configure, build and run the concurrency-sensitive tests under
# ThreadSanitizer (-Werror stays on). By default runs the suites that
# exercise the thread pool, parallel containment and governor cancellation
# propagation; pass explicit ctest args to override the filter.
# Usage: scripts/tsan.sh [extra ctest args...]
set -eu
cd "$(dirname "$0")/.."
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
if [ "$#" -eq 0 ]; then
  set -- -R 'base_test|governor_test|fault_injection_test|parallel_containment_test|cache_integration_test|omq_cache_test|instance_property_test|emptiness_agreement_test|server_test'
fi
ctest --preset tsan -j"$(nproc)" "$@"
