#include "chase/chase.h"

#include <algorithm>
#include <unordered_set>

#include "base/governor.h"
#include "base/hash_util.h"
#include "base/string_util.h"

namespace omqc {
namespace {

/// Identity of a trigger: which tgd fired with which binding of its body
/// variables (in BodyVariables() order).
struct TriggerKey {
  size_t tgd_index;
  std::vector<Term> binding;

  bool operator==(const TriggerKey& o) const {
    return tgd_index == o.tgd_index && binding == o.binding;
  }
};

struct TriggerKeyHash {
  size_t operator()(const TriggerKey& k) const {
    size_t seed = k.tgd_index;
    for (const Term& t : k.binding) HashCombine(seed, TermHash{}(t));
    return seed;
  }
};

/// Rough memory footprint of a derived atom, charged against the
/// governor's byte budget. Deliberately an estimate: the budget bounds
/// blowup order-of-magnitude, not allocator-exact bytes.
size_t ApproxAtomBytes(const Atom& atom) {
  return sizeof(Atom) + atom.args.size() * sizeof(Term);
}

/// Derived-atom bytes are accumulated locally and charged in batches of
/// this size (plus a flush at every tgd turn boundary), so the governor's
/// atomics are not touched once per atom. The budget may therefore be
/// overshot by up to one batch — irrelevant at the order-of-magnitude
/// granularity the budget promises.
constexpr size_t kChargeBatchBytes = 4096;

/// Governor probe stride inside the trigger-application loop. Each turn
/// starts with an unconditional Check(), so a trip is observed within one
/// stride of cheap trigger applications (the hom searches nested in a
/// trigger carry their own stride).
constexpr size_t kTriggerCheckStride = 16;

}  // namespace

Result<ChaseResult> Chase(const Instance& database, const TgdSet& tgds,
                          const ChaseOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(tgds));

  ChaseResult result;
  result.instance = database;
  result.atoms_per_level.assign(1, database.size());
  for (const Atom& a : database.atoms()) result.level_of[a] = 0;

  const bool semi_naive = options.strategy == ChaseStrategy::kSemiNaive;
  std::unordered_set<TriggerKey, TriggerKeyHash> processed;
  // Body variable orders, precomputed per tgd.
  std::vector<std::vector<Term>> body_vars(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    body_vars[i] = tgds.tgds[i].BodyVariables();
  }
  // Semi-naive bookkeeping: per tgd, whether its first (full) enumeration
  // ran, the instance size snapshotted at its previous turn (its delta is
  // the atom range [seen_upto, turn start)), and the previous turn's
  // trigger count (reservation hint for the snapshot vector).
  std::vector<bool> turn_done(tgds.size(), false);
  std::vector<size_t> seen_upto(tgds.size(), 0);
  std::vector<size_t> prev_trigger_count(tgds.size(), 0);

  ResourceGovernor* governor = options.governor;
  bool truncated = false;
  bool budget_hit = false;
  // Records a governor trip: truncate like a local budget and remember the
  // trip status (first one wins) for ChaseResult::interrupt.
  auto governor_trip = [&](const Status& st) {
    truncated = true;
    budget_hit = true;
    if (result.interrupt.ok()) result.interrupt = st;
  };
  size_t pending_bytes = 0;
  // Flushes the batched derived-atom bytes. The atoms stay either way
  // (already-derived consequences are sound); a failed charge just stops
  // further growth.
  auto charge_pending = [&]() {
    if (governor == nullptr || pending_bytes == 0) return;
    Status st = governor->ChargeBytes(pending_bytes);
    pending_bytes = 0;
    if (!st.ok()) governor_trip(st);
  };
  bool changed = true;
  while (changed && !budget_hit) {
    changed = false;
    ++result.rounds;
    for (size_t i = 0; i < tgds.size() && !budget_hit; ++i) {
      if (governor != nullptr) {
        Status st = governor->Check();
        if (!st.ok()) {
          governor_trip(st);
          break;
        }
      }
      const Tgd& tgd = tgds.tgds[i];
      // Snapshot the triggers of this turn before mutating the instance.
      // Atoms derived during the turn (by this tgd's own triggers) are
      // picked up at its next turn, under either strategy.
      std::vector<Substitution> triggers;
      triggers.reserve(prev_trigger_count[i]);
      std::function<bool(const Substitution&)> collect =
          [&](const Substitution& sub) {
            triggers.push_back(sub);
            return true;
          };
      HomomorphismOptions hom_options;
      hom_options.counters = options.hom_counters;
      hom_options.governor = governor;
      const size_t turn_start = result.instance.size();
      if (!semi_naive || !turn_done[i]) {
        // First turn (or naive strategy): the delta is the whole instance.
        ForEachHomomorphism(tgd.body, result.instance, Substitution(),
                            collect, hom_options);
      } else if (seen_upto[i] < turn_start) {
        // Delta decomposition: for each body position k, enumerate the
        // homomorphisms whose atom k matches inside the delta while the
        // other atoms range over the full instance. Every trigger that
        // uses at least one delta atom is found (at least) once; triggers
        // found via several positions are deduped by the processed set.
        const std::vector<Atom>& all = result.instance.atoms();
        std::unordered_map<int32_t, std::vector<Atom>> delta_by_pred;
        for (size_t a = seen_upto[i]; a < turn_start; ++a) {
          delta_by_pred[all[a].predicate.id()].push_back(all[a]);
        }
        for (size_t k = 0; k < tgd.body.size(); ++k) {
          auto it = delta_by_pred.find(tgd.body[k].predicate.id());
          if (it == delta_by_pred.end()) continue;
          ForEachHomomorphismPinned(tgd.body, k, it->second,
                                    result.instance, Substitution(),
                                    collect, hom_options);
        }
      }  // else: no new atoms since this tgd's last turn — no new triggers.
      turn_done[i] = true;
      seen_upto[i] = turn_start;
      prev_trigger_count[i] = triggers.size();
      result.triggers_enumerated += triggers.size();
      size_t trigger_tick = 0;
      for (Substitution& trigger : triggers) {
        if (governor != nullptr &&
            ++trigger_tick % kTriggerCheckStride == 0) {
          Status st = governor->Check();
          if (!st.ok()) {
            governor_trip(st);
            break;
          }
        }
        TriggerKey key{i, trigger.Apply(body_vars[i])};
        if (processed.count(key) > 0) {
          ++result.redundant_triggers_skipped;
          continue;
        }

        // Derivation level of the would-be head atoms.
        int level = 1;
        for (const Atom& b : tgd.body) {
          Atom image = trigger.Apply(b);
          auto it = result.level_of.find(image);
          if (it != result.level_of.end()) {
            level = std::max(level, it->second + 1);
          }
        }
        if (options.max_level >= 0 && level > options.max_level) {
          truncated = true;  // suppressed by depth budget
          continue;
        }

        if (options.variant == ChaseVariant::kRestricted) {
          // Applicable only if no extension satisfies the head already —
          // checked against the FULL instance under both strategies.
          if (FindHomomorphism(tgd.head, result.instance, trigger,
                               hom_options)
                  .has_value()) {
            processed.insert(std::move(key));
            continue;
          }
        }

        // Apply the trigger: fresh nulls for existential variables. The
        // premises are snapshotted first, then the binding is extended in
        // place (the trigger is dead after this iteration — no copy).
        std::vector<Atom> premises;
        if (options.track_provenance) premises = trigger.Apply(tgd.body);
        for (const Term& z : tgd.ExistentialVariables()) {
          trigger.Bind(z, Term::FreshNull());
        }
        for (const Atom& h : tgd.head) {
          Atom derived = trigger.Apply(h);
          if (result.instance.Add(derived)) {
            if (governor != nullptr) {
              pending_bytes += ApproxAtomBytes(derived);
            }
            result.level_of[derived] = level;
            if (options.track_provenance) {
              ChaseResult::Provenance why;
              why.tgd_index = i;
              why.premises = premises;
              result.provenance.emplace(derived, std::move(why));
            }
            if (static_cast<size_t>(level) >=
                result.atoms_per_level.size()) {
              result.atoms_per_level.resize(static_cast<size_t>(level) + 1,
                                            0);
            }
            ++result.atoms_per_level[static_cast<size_t>(level)];
            result.max_level_reached =
                std::max(result.max_level_reached, level);
          }
        }
        ++result.steps;
        processed.insert(std::move(key));
        changed = true;

        if (pending_bytes >= kChargeBatchBytes) charge_pending();
        if (budget_hit) break;  // governor tripped on a byte charge
        if ((options.max_steps != 0 && result.steps >= options.max_steps) ||
            (options.max_atoms != 0 &&
             result.instance.size() >= options.max_atoms)) {
          truncated = true;
          budget_hit = true;
          break;
        }
      }
      charge_pending();  // turn boundary: settle the batch
    }
  }
  charge_pending();

  // A trip observed only inside trigger enumeration (the hom search bails
  // with a silently shortened trigger list) must still mark the run
  // incomplete: the "fixpoint" may be an artifact of the cut-off.
  if (governor != nullptr && governor->tripped() && result.interrupt.ok()) {
    truncated = true;
    result.interrupt = governor->TripStatus();
  }
  result.complete = !truncated;
  return result;
}

Result<std::vector<std::vector<Term>>> CertainAnswersViaChase(
    const ConjunctiveQuery& q, const Instance& database, const TgdSet& tgds,
    const ChaseOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateCQ(q));
  OMQC_ASSIGN_OR_RETURN(ChaseResult chased, Chase(database, tgds, options));
  if (!chased.complete) {
    if (!chased.interrupt.ok()) return chased.interrupt;
    return Status::ResourceExhausted(
        StrCat("chase budget exhausted after ", chased.steps,
               " steps (", chased.instance.size(), " atoms)"));
  }
  HomomorphismOptions hom_options;
  hom_options.counters = options.hom_counters;
  hom_options.governor = options.governor;
  auto answers = EvaluateCQ(q, chased.instance, hom_options);
  // Certain answers must be the COMPLETE set; a trip during evaluation
  // means answers may be missing, so degrade to the trip status.
  if (options.governor != nullptr && options.governor->tripped()) {
    return options.governor->TripStatus();
  }
  return answers;
}

}  // namespace omqc
