#include "chase/chase.h"

#include <algorithm>
#include <unordered_set>

#include "base/governor.h"
#include "base/hash_util.h"
#include "base/string_util.h"
#include "logic/postings_kernels.h"

namespace omqc {
namespace {

/// Identity of a trigger: which tgd fired with which binding of its body
/// variables (in BodyVariables() order).
struct TriggerKey {
  size_t tgd_index;
  std::vector<Term> binding;

  bool operator==(const TriggerKey& o) const {
    return tgd_index == o.tgd_index && binding == o.binding;
  }
};

struct TriggerKeyHash {
  size_t operator()(const TriggerKey& k) const {
    size_t seed = k.tgd_index;
    for (const Term& t : k.binding) HashCombine(seed, TermHash{}(t));
    return seed;
  }
};

/// Arena-byte growth is charged in batches of this size (plus a flush at
/// every tgd turn boundary), so the governor's atomics are not touched
/// once per atom. The budget may therefore be overshot by up to one batch
/// — irrelevant at the granularity the budget promises. The bytes charged
/// are Instance::MemoryBytes deltas, i.e. real arena + index bytes, not
/// the per-Atom estimate the pre-columnar engine used.
constexpr size_t kChargeBatchBytes = 4096;

/// Applies `sub` to the arguments of `pattern` into the reusable buffer
/// `out` and returns a view of the image atom. The view borrows `out`.
AtomView ApplyToScratch(const Substitution& sub, const Atom& pattern,
                        std::vector<Term>& out) {
  out.clear();
  for (const Term& t : pattern.args) {
    out.push_back(t.IsVariable() ? sub.Apply(t) : t);
  }
  return AtomView(pattern.predicate, out.data(), out.size());
}

/// Governor probe stride inside the trigger-application loop. Each turn
/// starts with an unconditional Check(), so a trip is observed within one
/// stride of cheap trigger applications (the hom searches nested in a
/// trigger carry their own stride).
constexpr size_t kTriggerCheckStride = 16;

}  // namespace

int ChaseResult::LevelOf(const Atom& atom) const {
  std::optional<AtomId> id = instance.FindId(atom);
  return id.has_value() ? level_of[*id] : -1;
}

const ChaseResult::Provenance* ChaseResult::ProvenanceOf(
    const Atom& atom) const {
  std::optional<AtomId> id = instance.FindId(atom);
  if (!id.has_value()) return nullptr;
  auto it = provenance.find(*id);
  return it == provenance.end() ? nullptr : &it->second;
}

Result<ChaseResult> Chase(const Instance& database, const TgdSet& tgds,
                          const ChaseOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(tgds));

  ChaseResult result;
  result.instance = database;
  result.atoms_per_level.assign(1, database.size());
  // level_of is a column parallel to the arena: database atoms are ids
  // [0, |D|) at level 0; every derived atom appends its level below.
  result.level_of.assign(result.instance.size(), 0);

  const bool semi_naive = options.strategy == ChaseStrategy::kSemiNaive;
  std::unordered_set<TriggerKey, TriggerKeyHash> processed;
  // Body variable orders, precomputed per tgd.
  std::vector<std::vector<Term>> body_vars(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    body_vars[i] = tgds.tgds[i].BodyVariables();
  }
  // Semi-naive bookkeeping: per tgd, whether its first (full) enumeration
  // ran, the instance size snapshotted at its previous turn (its delta is
  // the atom range [seen_upto, turn start)), and the previous turn's
  // trigger count (reservation hint for the snapshot vector).
  std::vector<bool> turn_done(tgds.size(), false);
  std::vector<size_t> seen_upto(tgds.size(), 0);
  std::vector<size_t> prev_trigger_count(tgds.size(), 0);

  ResourceGovernor* governor = options.governor;
  bool truncated = false;
  bool budget_hit = false;
  // Records a governor trip: truncate like a local budget and remember the
  // trip status (first one wins) for ChaseResult::interrupt.
  auto governor_trip = [&](const Status& st) {
    truncated = true;
    budget_hit = true;
    if (result.interrupt.ok()) result.interrupt = st;
  };
  // Memory accounting: the chase charges the governor for the instance's
  // real arena growth (term pool, records, dedup slots, postings — see
  // Instance::MemoryBytes) beyond the caller-owned database baseline.
  // Growth is flushed in kChargeBatchBytes batches. The atoms stay either
  // way (already-derived consequences are sound); a failed charge just
  // stops further growth.
  size_t charged_upto = result.instance.MemoryBytes();
  auto charge_pending = [&]() {
    if (governor == nullptr) return;
    size_t now = result.instance.MemoryBytes();
    if (now <= charged_upto) return;
    size_t delta = now - charged_upto;
    charged_upto = now;
    Status st = governor->ChargeBytes(delta);
    if (!st.ok()) governor_trip(st);
  };
  // Reusable image buffer for trigger applications (no per-atom allocs).
  std::vector<Term> scratch;
  bool changed = true;
  while (changed && !budget_hit) {
    changed = false;
    ++result.rounds;
    for (size_t i = 0; i < tgds.size() && !budget_hit; ++i) {
      if (governor != nullptr) {
        Status st = governor->Check();
        if (!st.ok()) {
          governor_trip(st);
          break;
        }
      }
      const Tgd& tgd = tgds.tgds[i];
      // Snapshot the triggers of this turn before mutating the instance.
      // Atoms derived during the turn (by this tgd's own triggers) are
      // picked up at its next turn, under either strategy. Each trigger is
      // stored as its flat binding projected onto BodyVariables() order —
      // exactly the TriggerKey payload — instead of a Substitution copy;
      // the hash-map form is rebuilt only for triggers that survive the
      // processed-set filter.
      std::vector<std::vector<Term>> triggers;
      triggers.reserve(prev_trigger_count[i]);
      std::function<bool(const Substitution&)> collect =
          [&](const Substitution& sub) {
            triggers.push_back(sub.Apply(body_vars[i]));
            return true;
          };
      HomomorphismOptions hom_options;
      hom_options.counters = options.hom_counters;
      hom_options.governor = governor;
      const size_t turn_start = result.instance.size();
      if (!semi_naive || !turn_done[i]) {
        // First turn (or naive strategy): the delta is the whole instance.
        ForEachHomomorphism(tgd.body, result.instance, Substitution(),
                            collect, hom_options);
      } else if (seen_upto[i] < turn_start) {
        // Delta decomposition: for each body position k, enumerate the
        // homomorphisms whose atom k matches inside the delta while the
        // other atoms range over the full instance. The delta is exactly
        // the contiguous arena-id range [seen_upto, turn_start) — ids are
        // assigned in insertion order — so each predicate's share of it is
        // a contiguous SUBRANGE of its (sorted) postings, found by binary
        // search with no per-turn grouping pass or map. Every trigger that
        // uses at least one delta atom is found (at least) once; triggers
        // found via several positions are deduped by the processed set.
        for (size_t k = 0; k < tgd.body.size(); ++k) {
          // A body atom with a constant argument scans the by-arg postings
          // of its most selective constant position instead of the whole
          // predicate delta: both lists are sorted id lists, so the delta
          // window is the same two binary searches either way, and the
          // pinned enumeration never sees an atom the constant refutes.
          const Atom& pinned_atom = tgd.body[k];
          const std::vector<AtomId>* ids =
              &result.instance.IdsWith(pinned_atom.predicate);
          for (size_t pos = 0; pos < pinned_atom.args.size(); ++pos) {
            if (pinned_atom.args[pos].IsVariable()) continue;
            const std::vector<AtomId>& arg_ids = result.instance.IdsWithArg(
                pinned_atom.predicate, static_cast<int>(pos),
                pinned_atom.args[pos]);
            if (arg_ids.size() < ids->size()) ids = &arg_ids;
          }
          auto [first, last] =
              PostingsIdRange(*ids, static_cast<AtomId>(seen_upto[i]),
                              static_cast<AtomId>(turn_start));
          if (first == last) continue;
          ForEachHomomorphismPinned(tgd.body, k, first,
                                    static_cast<size_t>(last - first),
                                    result.instance, Substitution(),
                                    collect, hom_options);
        }
      }  // else: no new atoms since this tgd's last turn — no new triggers.
      turn_done[i] = true;
      seen_upto[i] = turn_start;
      prev_trigger_count[i] = triggers.size();
      result.triggers_enumerated += triggers.size();
      size_t trigger_tick = 0;
      for (std::vector<Term>& binding : triggers) {
        if (governor != nullptr &&
            ++trigger_tick % kTriggerCheckStride == 0) {
          Status st = governor->Check();
          if (!st.ok()) {
            governor_trip(st);
            break;
          }
        }
        TriggerKey key{i, std::move(binding)};
        if (processed.count(key) > 0) {
          ++result.redundant_triggers_skipped;
          continue;
        }
        // Rebuild the substitution form (needed for head application and
        // the nested hom searches) from the flat binding.
        Substitution trigger;
        for (size_t v = 0; v < body_vars[i].size(); ++v) {
          trigger.Bind(body_vars[i][v], key.binding[v]);
        }

        // Derivation level of the would-be head atoms, and (under
        // provenance tracking) the premise ids. Body images are existing
        // instance atoms — the trigger is a homomorphism into it — so one
        // arena probe per body atom resolves both, with no Atom
        // materialized.
        int level = 1;
        std::vector<AtomId> premise_ids;
        if (options.track_provenance) premise_ids.reserve(tgd.body.size());
        for (const Atom& b : tgd.body) {
          std::optional<AtomId> id =
              result.instance.FindId(ApplyToScratch(trigger, b, scratch));
          if (id.has_value()) {
            level = std::max(level, result.level_of[*id] + 1);
            if (options.track_provenance) premise_ids.push_back(*id);
          }
        }
        if (options.max_level >= 0 && level > options.max_level) {
          truncated = true;  // suppressed by depth budget
          continue;
        }

        if (options.variant == ChaseVariant::kRestricted) {
          // Applicable only if no extension satisfies the head already —
          // checked against the FULL instance under both strategies.
          if (FindHomomorphism(tgd.head, result.instance, trigger,
                               hom_options)
                  .has_value()) {
            processed.insert(std::move(key));
            continue;
          }
        }

        // Apply the trigger: fresh nulls for existential variables (the
        // premise ids were resolved above, before the binding is extended
        // in place — the trigger is dead after this iteration, no copy).
        for (const Term& z : tgd.ExistentialVariables()) {
          trigger.Bind(z, Term::FreshNull());
        }
        for (const Atom& h : tgd.head) {
          Instance::AddOutcome added = result.instance.AddView(
              ApplyToScratch(trigger, h, scratch));
          if (added.inserted) {
            // Fresh ids are dense: the new atom's level lands at the end
            // of the parallel level column.
            result.level_of.push_back(level);
            if (options.track_provenance) {
              ChaseResult::Provenance why;
              why.tgd_index = i;
              why.premise_ids = premise_ids;
              result.provenance.emplace(added.id, std::move(why));
            }
            if (static_cast<size_t>(level) >=
                result.atoms_per_level.size()) {
              result.atoms_per_level.resize(static_cast<size_t>(level) + 1,
                                            0);
            }
            ++result.atoms_per_level[static_cast<size_t>(level)];
            result.max_level_reached =
                std::max(result.max_level_reached, level);
          }
        }
        ++result.steps;
        processed.insert(std::move(key));
        changed = true;

        if (governor != nullptr &&
            result.instance.MemoryBytes() - charged_upto >=
                kChargeBatchBytes) {
          charge_pending();
        }
        if (budget_hit) break;  // governor tripped on a byte charge
        if ((options.max_steps != 0 && result.steps >= options.max_steps) ||
            (options.max_atoms != 0 &&
             result.instance.size() >= options.max_atoms)) {
          truncated = true;
          budget_hit = true;
          break;
        }
      }
      charge_pending();  // turn boundary: settle the batch
    }
  }
  charge_pending();

  // A trip observed only inside trigger enumeration (the hom search bails
  // with a silently shortened trigger list) must still mark the run
  // incomplete: the "fixpoint" may be an artifact of the cut-off.
  if (governor != nullptr && governor->tripped() && result.interrupt.ok()) {
    truncated = true;
    result.interrupt = governor->TripStatus();
  }
  result.complete = !truncated;
  return result;
}

Result<std::vector<std::vector<Term>>> CertainAnswersViaChase(
    const ConjunctiveQuery& q, const Instance& database, const TgdSet& tgds,
    const ChaseOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateCQ(q));
  OMQC_ASSIGN_OR_RETURN(ChaseResult chased, Chase(database, tgds, options));
  if (!chased.complete) {
    if (!chased.interrupt.ok()) return chased.interrupt;
    return Status::ResourceExhausted(
        StrCat("chase budget exhausted after ", chased.steps,
               " steps (", chased.instance.size(), " atoms)"));
  }
  HomomorphismOptions hom_options;
  hom_options.counters = options.hom_counters;
  hom_options.governor = options.governor;
  auto answers = EvaluateCQ(q, chased.instance, hom_options);
  // Certain answers must be the COMPLETE set; a trip during evaluation
  // means answers may be missing, so degrade to the trip status.
  if (options.governor != nullptr && options.governor->tripped()) {
    return options.governor->TripStatus();
  }
  return answers;
}

}  // namespace omqc
