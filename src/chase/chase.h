// The chase procedure (Sec. 2, "Tgds and the chase procedure").
//
// Implements the restricted (standard) and oblivious chase with fair
// round-based scheduling, trigger memoization, per-atom derivation levels
// and resource budgets. The restricted chase applies a trigger only when
// the head is not already satisfied; the oblivious chase applies every
// trigger once.
//
// Two trigger-enumeration strategies share the identical application loop:
//
//   * kNaive     — every tgd turn re-enumerates ALL homomorphisms of the
//                  body over the whole instance and discards already-
//                  processed triggers (the reference implementation);
//   * kSemiNaive — delta-driven (the Datalog semi-naive optimization):
//                  each tgd turn enumerates only homomorphisms whose
//                  designated body atom matches an atom derived since the
//                  tgd's previous turn, via ForEachHomomorphismPinned.
//                  Restricted-chase applicability is still checked against
//                  the FULL instance; only trigger discovery is restricted.
//
// Both strategies visit the same trigger set at every turn, so certain
// answers, atoms_per_level, steps and `complete` agree (see DESIGN.md,
// "Semi-naive delta decomposition").

#ifndef OMQC_CHASE_CHASE_H_
#define OMQC_CHASE_CHASE_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "logic/homomorphism.h"
#include "logic/instance.h"
#include "tgd/tgd.h"

namespace omqc {

enum class ChaseVariant {
  kRestricted,  ///< apply a trigger only if the head is not yet satisfied
  kOblivious,   ///< apply every trigger exactly once
};

enum class ChaseStrategy {
  kNaive,      ///< re-enumerate every trigger each round (reference)
  kSemiNaive,  ///< enumerate only triggers touching newly derived atoms
};

/// Budgets for a chase run. A zero/negative value means "unlimited".
/// The chase under NR (and any weakly-acyclic) sets always terminates; for
/// other classes callers should set a budget.
struct ChaseOptions {
  ChaseVariant variant = ChaseVariant::kRestricted;
  /// Trigger-enumeration strategy. kSemiNaive is observably equivalent and
  /// asymptotically cheaper on multi-round fixpoints; kNaive is kept as
  /// the reference oracle for the equivalence tests.
  ChaseStrategy strategy = ChaseStrategy::kSemiNaive;
  /// Record, for every derived atom, which tgd fired and which atoms the
  /// trigger matched (enables derivation trees / explanations).
  bool track_provenance = false;
  /// Maximum number of chase steps (trigger applications).
  size_t max_steps = 0;
  /// Maximum number of atoms in the chase instance.
  size_t max_atoms = 0;
  /// Maximum derivation level (database atoms are level 0; a derived atom
  /// has level 1 + max level of the trigger's body image).
  int max_level = -1;
  /// Optional tally of the homomorphism searches performed internally
  /// (trigger collection and restricted-chase head checks). Not owned.
  HomCounters* hom_counters = nullptr;
  /// Optional shared request governor (base/governor.h), checked once per
  /// enumerated trigger and once per tgd turn; derived atoms are charged
  /// against its memory budget. A trip truncates the chase exactly like a
  /// local budget (complete=false) and is reported in
  /// ChaseResult::interrupt. Not owned.
  ResourceGovernor* governor = nullptr;
};

/// The outcome of a chase run.
struct ChaseResult {
  Instance instance;
  /// True iff a fixpoint was reached (no applicable trigger remains within
  /// the level budget... i.e. the result is chase(D,Σ), possibly truncated
  /// only if `complete` is false).
  bool complete = false;
  /// Number of trigger applications performed.
  size_t steps = 0;
  /// Number of fixpoint rounds (full passes over the tgd set).
  size_t rounds = 0;
  /// Triggers enumerated across all tgd turns (before the processed-set
  /// filter). The semi-naive strategy exists to shrink this number.
  size_t triggers_enumerated = 0;
  /// Enumerated triggers skipped because they were already processed (for
  /// kNaive: all re-discovered old triggers; for kSemiNaive: only triggers
  /// matched by several delta decompositions).
  size_t redundant_triggers_skipped = 0;
  /// Highest derivation level among produced atoms.
  int max_level_reached = 0;
  /// Number of atoms first derived at each level (index = level).
  std::vector<size_t> atoms_per_level;
  /// Derivation level of each atom, indexed by its AtomId in `instance`
  /// (a column parallel to the arena: ids are dense and assigned in
  /// insertion order, so level_of[id] is the level of instance.view(id)).
  std::vector<int> level_of;
  /// Level lookup by materialized atom (cold paths / tests); -1 if the
  /// atom is not in the instance.
  int LevelOf(const Atom& atom) const;
  /// Why an atom exists (only filled with track_provenance): the index of
  /// the tgd that produced it and the ids of the images of the tgd's body
  /// atoms (premises are always atoms of `instance`). Keyed by AtomId;
  /// database atoms have no entry.
  struct Provenance {
    size_t tgd_index = 0;
    std::vector<AtomId> premise_ids;
  };
  std::unordered_map<AtomId, Provenance> provenance;
  /// Provenance lookup by materialized atom (cold paths / tests); null
  /// for database atoms and atoms not in the instance.
  const Provenance* ProvenanceOf(const Atom& atom) const;
  /// OK unless the run was cut short by the request governor, in which
  /// case this holds the trip status (kDeadlineExceeded / kCancelled /
  /// kResourceExhausted) and `complete` is false. The atoms present are
  /// still sound consequences — a governor trip truncates, never corrupts.
  Status interrupt;
};

/// Runs the chase of `database` under `tgds`. Returns a (possibly
/// truncated) result; `result.complete` reports whether the fixpoint was
/// reached. Only returns an error Status for ill-formed inputs.
Result<ChaseResult> Chase(const Instance& database, const TgdSet& tgds,
                          const ChaseOptions& options = ChaseOptions());

/// Convenience: certain answers cert(q, D, Σ) = q(chase(D, Σ)) via a
/// complete chase. Returns ResourceExhausted if the budget was hit before
/// the fixpoint — callers for non-terminating classes should prefer the
/// rewriting- or automata-based evaluation in src/core.
Result<std::vector<std::vector<Term>>> CertainAnswersViaChase(
    const ConjunctiveQuery& q, const Instance& database, const TgdSet& tgds,
    const ChaseOptions& options = ChaseOptions());

}  // namespace omqc

#endif  // OMQC_CHASE_CHASE_H_
