// Executable versions of the paper's tiling-based lower-bound
// constructions:
//
//   * Thm. 16 — the Extended Tiling Problem (ETP, [34]) encoded into
//     Cont((NR,CQ)): T = (k,n,m,H1,V1,H2,V2) has a solution iff Q1 ⊆ Q2.
//     Includes the Figure 2 inductive 2^i × 2^i tiling construction.
//   * Thm. 34 — the Exponential Tiling Problem encoded into
//     Cont((FNR,CQ),(L,UCQ)): T = (n,m,H,V,s) has a solution iff
//     QT ⊄ Q'T.
//
// The encodings are faithful to the appendix constructions; a lower bound
// cannot be "run", but the reductions can — and on small instances they
// are machine-checkable against a direct tiling solver (also provided).

#ifndef OMQC_GENERATORS_TILING_H_
#define OMQC_GENERATORS_TILING_H_

#include <set>
#include <utility>
#include <vector>

#include "core/omq.h"

namespace omqc {

/// An instance of the standard Exponential Tiling Problem for the
/// 2^n × 2^n grid with tiles {1..m}, horizontal/vertical compatibility
/// relations and an initial-row constraint s.
struct ExponentialTilingInstance {
  int n = 1;
  int m = 2;
  std::set<std::pair<int, int>> horizontal;
  std::set<std::pair<int, int>> vertical;
  std::vector<int> initial_row;
};

/// An instance of the Extended Tiling Problem (ETP, [34]):
/// is it true that for EVERY initial condition s of length k, T1 has no
/// solution with s or T2 has a solution with s?
struct ExtendedTilingInstance {
  int k = 1;
  int n = 1;
  int m = 2;
  std::set<std::pair<int, int>> h1, v1;
  std::set<std::pair<int, int>> h2, v2;
};

/// Thm. 16: two (NR, CQ) OMQs with Q1 ⊆ Q2 iff the ETP instance has a
/// solution. The data schema consists of the 0-ary predicates C_i^j.
struct EtpEncoding {
  Omq q1;
  Omq q2;
};
Result<EtpEncoding> EncodeExtendedTiling(const ExtendedTilingInstance& etp);

/// Thm. 34: a (FNR, CQ) OMQ QT and a (L, UCQ) OMQ Q'T over the schema
/// {TiledBy_i / 2n} such that the exponential tiling instance has a
/// solution iff QT ⊄ Q'T.
struct ExponentialTilingEncoding {
  Omq qt;        ///< the candidate-tiling recognizer (full non-recursive)
  UcqOmq qt_prime;  ///< the violation detector (linear tgds, UCQ)
};
Result<ExponentialTilingEncoding> EncodeExponentialTiling(
    const ExponentialTilingInstance& tiling);

/// Reference solver: brute-force search for a solution of the exponential
/// tiling instance (grid 2^n × 2^n). Exponential; for cross-checking the
/// encodings on small instances only.
bool SolveTilingBruteForce(const ExponentialTilingInstance& tiling);

/// Reference solver for the ETP: for every initial condition s of length
/// k, T1 = (n,m,h1,v1,s) has no solution or T2 = (n,m,h2,v2,s) has one.
bool SolveEtpBruteForce(const ExtendedTilingInstance& etp);

}  // namespace omqc

#endif  // OMQC_GENERATORS_TILING_H_
