#include "generators/tiling.h"

#include <algorithm>
#include <functional>

#include "base/string_util.h"

namespace omqc {
namespace {

Term V(const std::string& name) { return Term::Variable(name); }

Atom NullaryAtom(const std::string& name) { return Atom::Make(name, {}); }

std::string CName(int i, int j) { return StrCat("C_", i, "_", j); }

/// Builds the tiling-recognition rules shared by Q1 and Q2 of Thm. 16
/// (items 3-9 in the appendix): tiles, compatibility relations, the
/// Figure 2 inductive 2^i × 2^i construction, top-row extraction and the
/// Tiling trigger.
void AppendTilingRules(int k, int n, int m,
                       const std::set<std::pair<int, int>>& horizontal,
                       const std::set<std::pair<int, int>>& vertical,
                       TgdSet& tgds) {
  // Generate the tiles: → ∃x1..xm Tile_1(x1), ..., Tile_m(xm).
  {
    std::vector<Atom> head;
    for (int j = 1; j <= m; ++j) {
      head.push_back(Atom::Make(StrCat("Tile", j), {V(StrCat("XT", j))}));
    }
    tgds.tgds.emplace_back(std::vector<Atom>{}, std::move(head));
  }
  // Compatibility relations.
  for (const auto& [i, j] : horizontal) {
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(StrCat("Tile", i), {V("X")}),
                          Atom::Make(StrCat("Tile", j), {V("Y")})},
        std::vector<Atom>{Atom::Make("H", {V("X"), V("Y")})});
  }
  for (const auto& [i, j] : vertical) {
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(StrCat("Tile", i), {V("X")}),
                          Atom::Make(StrCat("Tile", j), {V("Y")})},
        std::vector<Atom>{Atom::Make("V", {V("X"), V("Y")})});
  }
  // Base case: 2x2 tilings.
  tgds.tgds.emplace_back(
      std::vector<Atom>{Atom::Make("H", {V("X1"), V("X2")}),
                        Atom::Make("H", {V("X3"), V("X4")}),
                        Atom::Make("V", {V("X1"), V("X3")}),
                        Atom::Make("V", {V("X2"), V("X4")})},
      std::vector<Atom>{Atom::Make(
          "T1", {V("X"), V("X1"), V("X2"), V("X3"), V("X4")})});
  // Induction: nine overlapping 2^{i-1} subgrids make a 2^i grid (Fig. 2).
  for (int i = 2; i <= n; ++i) {
    auto t = [&](int s, int a, int b, int c, int d) {
      return Atom::Make(StrCat("T", i - 1),
                        {V(StrCat("X", s)), V(StrCat("X", a)),
                         V(StrCat("X", b)), V(StrCat("X", c)),
                         V(StrCat("X", d))});
    };
    std::vector<Atom> body{
        t(1, 11, 12, 21, 22), t(2, 12, 13, 22, 23), t(3, 13, 14, 23, 24),
        t(4, 21, 22, 31, 32), t(5, 22, 23, 32, 33), t(6, 23, 24, 33, 34),
        t(7, 31, 32, 41, 42), t(8, 32, 33, 42, 43), t(9, 33, 34, 43, 44)};
    tgds.tgds.emplace_back(
        std::move(body),
        std::vector<Atom>{Atom::Make(
            StrCat("T", i),
            {V("X"), V("X1"), V("X3"), V("X7"), V("X9")})});
  }
  // Top-row extraction. Top_i^j is defined for j < min(k, 2^i).
  auto top = [](int level, int j, const Term& grid, const Term& tile) {
    return Atom::Make(StrCat("Top_", level, "_", j), {grid, tile});
  };
  {
    std::vector<Atom> head{top(1, 0, V("X"), V("X1"))};
    if (k >= 2) head.push_back(top(1, 1, V("X"), V("X2")));
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(
            "T1", {V("X"), V("X1"), V("X2"), V("X3"), V("X4")})},
        std::move(head));
  }
  for (int i = 2; i <= n; ++i) {
    int64_t half = int64_t{1} << (i - 1);
    int64_t defined = std::min<int64_t>(k, int64_t{1} << i);
    std::vector<Atom> body{Atom::Make(
        StrCat("T", i), {V("X"), V("X1"), V("X2"), V("X3"), V("X4")})};
    std::vector<Atom> head;
    for (int64_t j = 0; j < defined; ++j) {
      Term y = V(StrCat("Y", j));
      if (j < half) {
        body.push_back(top(i - 1, static_cast<int>(j), V("X1"), y));
      } else {
        body.push_back(top(i - 1, static_cast<int>(j - half), V("X2"), y));
      }
      head.push_back(top(i, static_cast<int>(j), V("X"), y));
    }
    tgds.tgds.emplace_back(std::move(body), std::move(head));
  }
  // Initial tiles from the C_i^j markers.
  for (int i = 0; i < k; ++i) {
    for (int j = 1; j <= m; ++j) {
      tgds.tgds.emplace_back(
          std::vector<Atom>{NullaryAtom(CName(i, j)),
                            Atom::Make(StrCat("Tile", j), {V("X")})},
          std::vector<Atom>{Atom::Make(StrCat("Initial", i), {V("X")})});
    }
  }
  // Tiling: the top row of a 2^n tiling matches the initial sequence.
  {
    std::vector<Atom> body;
    for (int i = 0; i < k; ++i) {
      Term y = V(StrCat("Y", i));
      body.push_back(top(n, i, V("X"), y));
      body.push_back(Atom::Make(StrCat("Initial", i), {y}));
    }
    tgds.tgds.emplace_back(std::move(body),
                           std::vector<Atom>{NullaryAtom("Tiling")});
  }
}

}  // namespace

Result<EtpEncoding> EncodeExtendedTiling(const ExtendedTilingInstance& etp) {
  if (etp.k < 1 || etp.n < 1 || etp.m < 1) {
    return Status::InvalidArgument("k, n, m must be positive");
  }
  if (int64_t{etp.k} > (int64_t{1} << etp.n)) {
    return Status::InvalidArgument(
        "the initial condition must fit in the first row (k <= 2^n)");
  }
  Schema data_schema;
  for (int i = 0; i < etp.k; ++i) {
    for (int j = 1; j <= etp.m; ++j) {
      data_schema.Add(Predicate::Get(CName(i, j), 0));
    }
  }

  // Q1: existence of the markers plus solvability of (n,m,H1,V1,s).
  TgdSet sigma1;
  for (int i = 0; i < etp.k; ++i) {
    for (int j = 1; j <= etp.m; ++j) {
      sigma1.tgds.emplace_back(
          std::vector<Atom>{NullaryAtom(CName(i, j))},
          std::vector<Atom>{NullaryAtom(StrCat("Cex", i))});
    }
  }
  {
    std::vector<Atom> body;
    for (int i = 0; i < etp.k; ++i) body.push_back(NullaryAtom(StrCat("Cex", i)));
    sigma1.tgds.emplace_back(std::move(body),
                             std::vector<Atom>{NullaryAtom("Existence")});
  }
  AppendTilingRules(etp.k, etp.n, etp.m, etp.h1, etp.v1, sigma1);
  sigma1.tgds.emplace_back(
      std::vector<Atom>{NullaryAtom("Existence"), NullaryAtom("Tiling")},
      std::vector<Atom>{NullaryAtom("Goal")});

  // Q2: uniqueness violation or solvability of (n,m,H2,V2,s).
  TgdSet sigma2;
  for (int i = 0; i < etp.k; ++i) {
    for (int j = 1; j <= etp.m; ++j) {
      for (int l = j + 1; l <= etp.m; ++l) {
        sigma2.tgds.emplace_back(
            std::vector<Atom>{NullaryAtom(CName(i, j)),
                              NullaryAtom(CName(i, l))},
            std::vector<Atom>{NullaryAtom("Goal")});
      }
    }
  }
  AppendTilingRules(etp.k, etp.n, etp.m, etp.h2, etp.v2, sigma2);
  sigma2.tgds.emplace_back(std::vector<Atom>{NullaryAtom("Tiling")},
                           std::vector<Atom>{NullaryAtom("Goal")});

  ConjunctiveQuery goal({}, {NullaryAtom("Goal")});
  EtpEncoding out;
  out.q1 = Omq{data_schema, std::move(sigma1), goal};
  out.q2 = Omq{data_schema, std::move(sigma2), goal};
  return out;
}

Result<ExponentialTilingEncoding> EncodeExponentialTiling(
    const ExponentialTilingInstance& tiling) {
  const int n = tiling.n, m = tiling.m;
  if (n < 1 || m < 1) {
    return Status::InvalidArgument("n, m must be positive");
  }
  if (static_cast<int64_t>(tiling.initial_row.size()) > (int64_t{1} << n)) {
    return Status::InvalidArgument("initial row longer than the grid side");
  }
  const Term zero = Term::Constant("0"), one = Term::Constant("1");
  Schema data_schema;
  for (int t = 1; t <= m; ++t) {
    data_schema.Add(Predicate::Get(StrCat("TiledBy", t), 2 * n));
  }
  auto tiled_by = [&](int t, const std::vector<Term>& col,
                      const std::vector<Term>& row) {
    std::vector<Term> args = col;
    args.insert(args.end(), row.begin(), row.end());
    return Atom::Make(StrCat("TiledBy", t), std::move(args));
  };
  auto vars = [](const std::string& prefix, int count) {
    std::vector<Term> out;
    for (int i = 0; i < count; ++i) out.push_back(V(StrCat(prefix, i)));
    return out;
  };
  auto bits = [](const std::vector<Term>& ts) {
    std::vector<Atom> out;
    for (const Term& t : ts) out.push_back(Atom::Make("Bit", {t}));
    return out;
  };

  // ---- QT: the candidate-tiling recognizer (full, non-recursive). ----
  TgdSet sigma;
  sigma.tgds.emplace_back(std::vector<Atom>{},
                          std::vector<Atom>{Atom::Make("Bit", {zero})});
  sigma.tgds.emplace_back(std::vector<Atom>{},
                          std::vector<Atom>{Atom::Make("Bit", {one})});
  // Column base: both column-suffix values at the last bit are tiled.
  for (int j = 1; j <= m; ++j) {
    for (int k2 = 1; k2 <= m; ++k2) {
      std::vector<Term> prefix = vars("X", n - 1);
      std::vector<Term> row = vars("Y", n);
      std::vector<Term> col_one = prefix, col_zero = prefix;
      col_one.push_back(one);
      col_zero.push_back(zero);
      Term w = V("W");
      std::vector<Atom> body{tiled_by(j, col_one, row),
                             tiled_by(k2, col_zero, row)};
      for (Atom& b : bits(prefix)) body.push_back(b);
      for (Atom& b : bits(row)) body.push_back(b);
      body.push_back(Atom::Make("Bit", {w}));
      std::vector<Term> head_args = prefix;
      head_args.push_back(w);
      head_args.insert(head_args.end(), row.begin(), row.end());
      sigma.tgds.emplace_back(
          std::move(body),
          std::vector<Atom>{
              Atom::Make(StrCat("TiledAboveCol", n), head_args)});
    }
  }
  // Column induction.
  for (int i = n; i >= 2; --i) {
    std::vector<Term> prefix = vars("X", i - 1);
    std::vector<Term> suffix1 = vars("S", n - i);
    std::vector<Term> suffix2 = vars("T", n - i);
    std::vector<Term> row = vars("Y", n);
    std::vector<Term> fresh = vars("W", n - i + 1);
    auto col_args = [&](const Term& bit, const std::vector<Term>& suffix) {
      std::vector<Term> out = prefix;
      out.push_back(bit);
      out.insert(out.end(), suffix.begin(), suffix.end());
      out.insert(out.end(), row.begin(), row.end());
      return out;
    };
    std::vector<Atom> body{
        Atom::Make(StrCat("TiledAboveCol", i), col_args(one, suffix1)),
        Atom::Make(StrCat("TiledAboveCol", i), col_args(zero, suffix2))};
    for (Atom& b : bits(fresh)) body.push_back(b);
    std::vector<Term> head_args = prefix;
    head_args.insert(head_args.end(), fresh.begin(), fresh.end());
    head_args.insert(head_args.end(), row.begin(), row.end());
    sigma.tgds.emplace_back(
        std::move(body),
        std::vector<Atom>{
            Atom::Make(StrCat("TiledAboveCol", i - 1), head_args)});
  }
  // A fully tiled row.
  {
    std::vector<Term> col = vars("X", n);
    std::vector<Term> row = vars("Y", n);
    std::vector<Term> args = col;
    args.insert(args.end(), row.begin(), row.end());
    sigma.tgds.emplace_back(
        std::vector<Atom>{Atom::Make("TiledAboveCol1", args)},
        std::vector<Atom>{Atom::Make("RowTiled", row)});
  }
  // Row base and induction.
  {
    std::vector<Term> prefix = vars("Y", n - 1);
    std::vector<Term> row_one = prefix, row_zero = prefix;
    row_one.push_back(one);
    row_zero.push_back(zero);
    Term w = V("W");
    std::vector<Atom> body{Atom::Make("RowTiled", row_one),
                           Atom::Make("RowTiled", row_zero),
                           Atom::Make("Bit", {w})};
    std::vector<Term> head_args = prefix;
    head_args.push_back(w);
    sigma.tgds.emplace_back(
        std::move(body),
        std::vector<Atom>{Atom::Make(StrCat("TiledAboveRow", n), head_args)});
  }
  for (int i = n; i >= 2; --i) {
    std::vector<Term> prefix = vars("Y", i - 1);
    std::vector<Term> suffix1 = vars("S", n - i);
    std::vector<Term> suffix2 = vars("T", n - i);
    std::vector<Term> fresh = vars("W", n - i + 1);
    auto row_args = [&](const Term& bit, const std::vector<Term>& suffix) {
      std::vector<Term> out = prefix;
      out.push_back(bit);
      out.insert(out.end(), suffix.begin(), suffix.end());
      return out;
    };
    std::vector<Atom> body{
        Atom::Make(StrCat("TiledAboveRow", i), row_args(one, suffix1)),
        Atom::Make(StrCat("TiledAboveRow", i), row_args(zero, suffix2))};
    for (Atom& b : bits(fresh)) body.push_back(b);
    std::vector<Term> head_args = prefix;
    head_args.insert(head_args.end(), fresh.begin(), fresh.end());
    sigma.tgds.emplace_back(
        std::move(body),
        std::vector<Atom>{
            Atom::Make(StrCat("TiledAboveRow", i - 1), head_args)});
  }
  sigma.tgds.emplace_back(
      std::vector<Atom>{Atom::Make("TiledAboveRow1", vars("Y", n))},
      std::vector<Atom>{NullaryAtom("AllTiled")});
  sigma.tgds.emplace_back(std::vector<Atom>{NullaryAtom("AllTiled")},
                          std::vector<Atom>{NullaryAtom("GoalT")});

  // ---- Q'T: the violation detector (linear tgds + UCQ). ----
  TgdSet sigma_prime;
  sigma_prime.tgds.emplace_back(std::vector<Atom>{},
                                std::vector<Atom>{Atom::Make("Bit", {zero})});
  sigma_prime.tgds.emplace_back(std::vector<Atom>{},
                                std::vector<Atom>{Atom::Make("Bit", {one})});
  sigma_prime.tgds.emplace_back(
      std::vector<Atom>{},
      std::vector<Atom>{Atom::Make("Succ1", {zero, one})});
  sigma_prime.tgds.emplace_back(
      std::vector<Atom>{},
      std::vector<Atom>{Atom::Make("LastFirst1", {one, zero})});
  for (int i = 1; i <= n - 1; ++i) {
    std::vector<Term> x = vars("X", i), y = vars("Y", i);
    std::vector<Term> xy = x;
    xy.insert(xy.end(), y.begin(), y.end());
    auto extended = [&](const Term& a, const Term& b) {
      std::vector<Term> out{a};
      out.insert(out.end(), x.begin(), x.end());
      out.push_back(b);
      out.insert(out.end(), y.begin(), y.end());
      return out;
    };
    Atom succ = Atom::Make(StrCat("Succ", i), xy);
    Atom last = Atom::Make(StrCat("LastFirst", i), xy);
    sigma_prime.tgds.emplace_back(
        std::vector<Atom>{succ},
        std::vector<Atom>{
            Atom::Make(StrCat("Succ", i + 1), extended(zero, zero))});
    sigma_prime.tgds.emplace_back(
        std::vector<Atom>{succ},
        std::vector<Atom>{
            Atom::Make(StrCat("Succ", i + 1), extended(one, one))});
    sigma_prime.tgds.emplace_back(
        std::vector<Atom>{last},
        std::vector<Atom>{
            Atom::Make(StrCat("Succ", i + 1), extended(zero, one))});
    sigma_prime.tgds.emplace_back(
        std::vector<Atom>{last},
        std::vector<Atom>{
            Atom::Make(StrCat("LastFirst", i + 1), extended(one, zero))});
  }

  UnionOfCQs violations;
  // Tile consistency: a cell with two distinct tiles.
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= m; ++j) {
      if (i == j) continue;
      std::vector<Term> col = vars("X", n), row = vars("Y", n);
      std::vector<Atom> body{tiled_by(i, col, row), tiled_by(j, col, row)};
      for (Atom& b : bits(col)) body.push_back(b);
      for (Atom& b : bits(row)) body.push_back(b);
      violations.disjuncts.emplace_back(std::vector<Term>{}, std::move(body));
    }
  }
  // Vertical incompatibility: rows x̄ -> ȳ successive in column w̄.
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= m; ++j) {
      if (tiling.vertical.count({i, j}) > 0) continue;
      std::vector<Term> x = vars("X", n), y = vars("Y", n), w = vars("W", n);
      std::vector<Term> xy = x;
      xy.insert(xy.end(), y.begin(), y.end());
      std::vector<Atom> body{Atom::Make(StrCat("Succ", n), xy),
                             tiled_by(i, w, x), tiled_by(j, w, y)};
      for (Atom& b : bits(w)) body.push_back(b);
      violations.disjuncts.emplace_back(std::vector<Term>{}, std::move(body));
    }
  }
  // Horizontal incompatibility: columns x̄ -> ȳ successive in row w̄.
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= m; ++j) {
      if (tiling.horizontal.count({i, j}) > 0) continue;
      std::vector<Term> x = vars("X", n), y = vars("Y", n), w = vars("W", n);
      std::vector<Term> xy = x;
      xy.insert(xy.end(), y.begin(), y.end());
      std::vector<Atom> body{Atom::Make(StrCat("Succ", n), xy),
                             tiled_by(i, x, w), tiled_by(j, y, w)};
      for (Atom& b : bits(w)) body.push_back(b);
      violations.disjuncts.emplace_back(std::vector<Term>{}, std::move(body));
    }
  }
  // First-row constraint violations.
  for (size_t j = 0; j < tiling.initial_row.size(); ++j) {
    for (int k2 = 1; k2 <= m; ++k2) {
      if (k2 == tiling.initial_row[j]) continue;
      Term z = V("Z"), o = V("O");
      std::vector<Term> col;
      for (int b = n - 1; b >= 0; --b) {
        col.push_back(((j >> b) & 1) != 0 ? o : z);
      }
      std::vector<Term> row(static_cast<size_t>(n), z);
      std::vector<Atom> body{tiled_by(k2, col, row),
                             Atom::Make("Succ1", {z, o})};
      violations.disjuncts.emplace_back(std::vector<Term>{}, std::move(body));
    }
  }

  ExponentialTilingEncoding out;
  out.qt = Omq{data_schema, std::move(sigma),
               ConjunctiveQuery({}, {NullaryAtom("GoalT")})};
  out.qt_prime.data_schema = data_schema;
  out.qt_prime.tgds = std::move(sigma_prime);
  out.qt_prime.query = std::move(violations);
  return out;
}

namespace {

bool SolveTiling(const ExponentialTilingInstance& tiling,
                 const std::vector<int>& initial) {
  const int side = 1 << tiling.n;
  std::vector<int> grid(static_cast<size_t>(side) * side, 0);  // 0 = unset
  // Cells in row-major order from the top row (row 0).
  std::function<bool(int)> place = [&](int cell) -> bool {
    if (cell == side * side) return true;
    int col = cell % side, row = cell / side;
    for (int t = 1; t <= tiling.m; ++t) {
      if (row == 0 && col < static_cast<int>(initial.size()) &&
          initial[static_cast<size_t>(col)] != t) {
        continue;
      }
      if (col > 0) {
        int left = grid[static_cast<size_t>(cell - 1)];
        if (tiling.horizontal.count({left, t}) == 0) continue;
      }
      if (row > 0) {
        int below_row = grid[static_cast<size_t>(cell - side)];
        if (tiling.vertical.count({below_row, t}) == 0) continue;
      }
      grid[static_cast<size_t>(cell)] = t;
      if (place(cell + 1)) return true;
      grid[static_cast<size_t>(cell)] = 0;
    }
    return false;
  };
  return place(0);
}

}  // namespace

bool SolveTilingBruteForce(const ExponentialTilingInstance& tiling) {
  return SolveTiling(tiling, tiling.initial_row);
}

bool SolveEtpBruteForce(const ExtendedTilingInstance& etp) {
  // All initial conditions s of length k over {1..m}.
  std::vector<int> s(static_cast<size_t>(etp.k), 1);
  while (true) {
    ExponentialTilingInstance t1{etp.n, etp.m, etp.h1, etp.v1, s};
    ExponentialTilingInstance t2{etp.n, etp.m, etp.h2, etp.v2, s};
    bool ok = !SolveTilingBruteForce(t1) || SolveTilingBruteForce(t2);
    if (!ok) return false;
    // Next s.
    size_t i = 0;
    for (; i < s.size(); ++i) {
      if (++s[i] <= etp.m) break;
      s[i] = 1;
    }
    if (i == s.size()) break;
  }
  return true;
}

}  // namespace omqc
