// The explicit query families from the paper's appendix:
//
//   * Prop. 18 — the sticky family {Q^n} whose non-containment witnesses
//     have at least 2^(n-2) facts;
//   * Prop. 35 — the full→sticky lossless-tgd transform for 0-1 queries;
//   * random per-class OMQ generators and ELI-style guarded ontologies
//     used by tests and benches.

#ifndef OMQC_GENERATORS_FAMILIES_H_
#define OMQC_GENERATORS_FAMILIES_H_

#include <cstdint>

#include "base/rng.h"
#include "core/omq.h"

namespace omqc {

/// Prop. 18: Q^n = ({S/n}, Σ^n, Ans(0,1)) with
///   S(x1..xn) → Pn(x1..xn, z, o)           [materialized as P_n(x̄,z,o)]
///   Pi(x̄, z, x̄', z, o), Pi(x̄, o, x̄', z, o) → P_{i-1}(...)   1 ≤ i ≤ n
///   P0(z,...,z, z, o) → Ans(z, o)
/// Σ^n is sticky, ||Σ^n|| = O(n²), and every database D with Q^n(D) ≠ ∅
/// contains all 2^(n-2) facts S(c1..c_{n-2}, 0, 1) with c̄ ∈ {0,1}^{n-2}.
Omq MakeStickyWitnessFamily(int n);

/// Prop. 35: transforms a 0-1 query (S, Σ, q) with Σ full into an
/// equivalent 0-1 query whose tgds are lossless (hence sticky). `n` in the
/// construction (the annotation width) is the maximum number of body
/// variables in Σ. 0-1 queries are queries invariant under restriction to
/// the {0,1} active domain; the caller is responsible for that property.
Result<Omq> FullToSticky(const Omq& omq);

/// An ELI-style guarded ontology over unary/binary predicates: concepts
/// A0..A_{k-1}, roles r0..r_{k-1}, with axioms of the shapes
/// A_i ⊑ ∃r_i.A_{i+1} (A_i(x) → ∃y r_i(x,y) ∧ A_{i+1}(y), split into
/// guarded tgds) and ∃r_i.A_{i+1} ⊑ B_i. Used by the guarded containment
/// tests and the Table 1 guarded bench.
TgdSet MakeEliChainOntology(int k);

/// Configuration for the random OMQ generator.
struct RandomOmqConfig {
  TgdClass target = TgdClass::kLinear;
  int num_predicates = 4;
  int max_arity = 2;
  int num_tgds = 4;
  int query_atoms = 3;
  int num_variables = 4;
  /// Seeds a private SplitMix64 stream (base/rng.h): the seed alone
  /// reproduces the OMQ bit-for-bit across platforms and standard
  /// libraries.
  uint64_t seed = 0;
};

/// Generates a pseudo-random OMQ in the requested class (kLinear,
/// kNonRecursive, kSticky, kGuarded or kFull). The result is guaranteed to
/// classify into (at least) the requested class; used by the property test
/// sweeps and benches.
Omq MakeRandomOmq(const RandomOmqConfig& config);

/// A chain database R(c0,c1), R(c1,c2), ..., with a start marker A(c0) and
/// end marker B(c_len); handy for linear/guarded scenarios.
Database MakeChainDatabase(int length);

}  // namespace omqc

#endif  // OMQC_GENERATORS_FAMILIES_H_
