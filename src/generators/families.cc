#include "generators/families.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {
namespace {

Term V(const std::string& name) { return Term::Variable(name); }
Term C(const std::string& name) { return Term::Constant(name); }

}  // namespace

Omq MakeStickyWitnessFamily(int n) {
  // Positions: b1..b_{n-2} data bits, then the (z, o) pair. All tgds are
  // lossless (every body variable reaches the head), hence sticky.
  n = std::max(n, 3);
  TgdSet tgds;
  auto p = [&](int i) { return StrCat("P", i); };
  Term z = V("Z"), o = V("O");

  // S(x1..x_{n-2}, z, o) → P0(x1..x_{n-2}, z, o).
  {
    std::vector<Term> args;
    for (int j = 1; j <= n - 2; ++j) args.push_back(V(StrCat("X", j)));
    args.push_back(z);
    args.push_back(o);
    tgds.tgds.emplace_back(std::vector<Atom>{Atom::Make("S", args)},
                           std::vector<Atom>{Atom::Make(p(0), args)});
  }
  // P_{i-1}(z, x_{i+1}.., z, o), P_{i-1}(o, x_{i+1}.., z, o)
  //   → P_i(x_{i+1}.., z, o), for 1 <= i <= n-2.
  for (int i = 1; i <= n - 2; ++i) {
    std::vector<Term> suffix;
    for (int j = i + 1; j <= n - 2; ++j) suffix.push_back(V(StrCat("X", j)));
    suffix.push_back(z);
    suffix.push_back(o);
    std::vector<Term> with_z{z}, with_o{o};
    with_z.insert(with_z.end(), suffix.begin(), suffix.end());
    with_o.insert(with_o.end(), suffix.begin(), suffix.end());
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(p(i - 1), with_z),
                          Atom::Make(p(i - 1), with_o)},
        std::vector<Atom>{Atom::Make(p(i), suffix)});
  }
  // P_{n-2}(z, o) → Ans(z, o).
  tgds.tgds.emplace_back(
      std::vector<Atom>{Atom::Make(p(n - 2), {z, o})},
      std::vector<Atom>{Atom::Make("Ans", {z, o})});

  // q := Ans(0, 1): Boolean, with constants.
  ConjunctiveQuery query({}, {Atom::Make("Ans", {C("0"), C("1")})});
  Schema data_schema;
  data_schema.Add(Predicate::Get("S", n));
  return Omq{std::move(data_schema), std::move(tgds), std::move(query)};
}

Result<Omq> FullToSticky(const Omq& omq) {
  if (!IsFull(omq.tgds)) {
    return Status::InvalidArgument(
        "Prop. 35 transform expects a full (existential-free) ontology");
  }
  size_t n = 1;
  for (const Tgd& tgd : omq.tgds.tgds) {
    n = std::max(n, tgd.BodyVariables().size());
  }
  const Term zero = C("0"), one = C("1");
  const std::string kAnn = "@01";
  auto annotated = [&](const Atom& a, const std::vector<Term>& pad) {
    std::vector<Term> args = a.args;
    args.insert(args.end(), pad.begin(), pad.end());
    return Atom::Make(a.predicate.name() + kAnn, std::move(args));
  };
  const std::vector<Term> zeros(n, zero);

  TgdSet out;
  // Bit facts.
  out.tgds.emplace_back(std::vector<Atom>{},
                        std::vector<Atom>{Atom::Make("Bit", {zero})});
  out.tgds.emplace_back(std::vector<Atom>{},
                        std::vector<Atom>{Atom::Make("Bit", {one})});
  // Initialization: data atoms over bits get the all-zero annotation.
  for (const Predicate& r : omq.data_schema.predicates()) {
    std::vector<Term> vars;
    std::vector<Atom> body;
    for (int i = 0; i < r.arity(); ++i) {
      vars.push_back(V(StrCat("U", i)));
      body.push_back(Atom::Make("Bit", {vars.back()}));
    }
    Atom data(r, vars);
    body.insert(body.begin(), data);
    out.tgds.emplace_back(std::move(body),
                          std::vector<Atom>{annotated(data, zeros)});
  }
  // Lossless versions of the original tgds.
  for (const Tgd& tgd : omq.tgds.tgds) {
    std::vector<Term> body_vars = tgd.BodyVariables();
    std::vector<Term> pad;
    for (size_t i = 0; i < n; ++i) {
      pad.push_back(i < body_vars.size() ? body_vars[i]
                                         : body_vars.empty()
                                               ? zero
                                               : body_vars.front());
    }
    std::vector<Atom> body, head;
    for (const Atom& a : tgd.body) body.push_back(annotated(a, zeros));
    for (const Atom& a : tgd.head) head.push_back(annotated(a, pad));
    out.tgds.emplace_back(std::move(body), std::move(head));
  }
  // Finalization: flip any annotation bit 1 -> 0.
  Schema annotated_preds;
  Schema full_schema = FullSchemaOf(omq.tgds, omq.query);
  for (const Predicate& p : full_schema.predicates()) {
    annotated_preds.Add(
        Predicate::Get(p.name() + kAnn, p.arity() + static_cast<int>(n)));
  }
  for (const Predicate& p : omq.data_schema.predicates()) {
    annotated_preds.Add(
        Predicate::Get(p.name() + kAnn, p.arity() + static_cast<int>(n)));
  }
  for (const Predicate& p : annotated_preds.predicates()) {
    int base = p.arity() - static_cast<int>(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Term> body_args, head_args;
      for (int j = 0; j < base; ++j) {
        body_args.push_back(V(StrCat("X", j)));
      }
      std::vector<Term> ys;
      for (size_t j = 0; j < n; ++j) ys.push_back(V(StrCat("Y", j)));
      head_args = body_args;
      for (size_t j = 0; j < n; ++j) {
        body_args.push_back(j == i ? one : ys[j]);
        head_args.push_back(j == i ? zero : ys[j]);
      }
      out.tgds.emplace_back(std::vector<Atom>{Atom(p, body_args)},
                            std::vector<Atom>{Atom(p, head_args)});
    }
  }
  // Annotated query.
  ConjunctiveQuery query;
  query.answer_vars = omq.query.answer_vars;
  for (const Atom& a : omq.query.body) {
    query.body.push_back(annotated(a, zeros));
  }
  return Omq{omq.data_schema, std::move(out), std::move(query)};
}

TgdSet MakeEliChainOntology(int k) {
  TgdSet tgds;
  Term x = V("X"), y = V("Y");
  for (int i = 0; i < k; ++i) {
    int next = (i + 1) % k;  // cyclic: genuinely recursive guarded set
    // A_i ⊑ ∃r_i.A_next, as two guarded (indeed linear) tgds.
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(StrCat("A", i), {x})},
        std::vector<Atom>{Atom::Make(StrCat("r", i), {x, y}),
                          Atom::Make(StrCat("A", next), {y})});
    // ∃r_i.A_next ⊑ B_i (guarded by r_i).
    tgds.tgds.emplace_back(
        std::vector<Atom>{Atom::Make(StrCat("r", i), {x, y}),
                          Atom::Make(StrCat("A", next), {y})},
        std::vector<Atom>{Atom::Make(StrCat("B", i), {x})});
  }
  return tgds;
}

Omq MakeRandomOmq(const RandomOmqConfig& config) {
  SplitMix64 rng(config.seed);
  auto pick = [&rng](int bound) {
    return static_cast<int>(
        rng.Below(static_cast<uint64_t>(std::max(bound, 1))));
  };
  // Predicates D0.. (data) with random arities in [1, max_arity].
  std::vector<Predicate> preds;
  for (int i = 0; i < config.num_predicates; ++i) {
    preds.push_back(Predicate::Get(StrCat("D", i, "_s", config.seed),
                                   1 + pick(config.max_arity)));
  }
  auto random_var = [&]() { return V(StrCat("V", pick(config.num_variables))); };
  auto random_atom = [&](const std::vector<Predicate>& pool) {
    const Predicate& p = pool[static_cast<size_t>(pick(
        static_cast<int>(pool.size())))];
    std::vector<Term> args;
    for (int i = 0; i < p.arity(); ++i) args.push_back(random_var());
    return Atom(p, std::move(args));
  };

  TgdSet tgds;
  for (int i = 0; i < config.num_tgds; ++i) {
    switch (config.target) {
      case TgdClass::kLinear: {
        Atom body = random_atom(preds);
        std::vector<Term> body_vars = body.Variables();
        std::vector<Term> head_args = body_vars;
        head_args.push_back(V(StrCat("E", i)));  // one existential
        // The arity is part of the name (as in the sticky case): body
        // arities vary, and a name used at two arities cannot be printed
        // and parsed back.
        Atom head = Atom::Make(
            StrCat("L", pick(config.num_predicates), "_a", head_args.size(),
                   "_s", config.seed),
            head_args);
        tgds.tgds.emplace_back(std::vector<Atom>{body},
                               std::vector<Atom>{head});
        break;
      }
      case TgdClass::kNonRecursive: {
        // Strictly layered: body uses layer i predicates, head layer i+1.
        Atom body = random_atom(preds);
        Atom body2 = random_atom(preds);
        std::vector<Atom> body_atoms{body, body2};
        std::vector<Term> vars;
        for (const Atom& a : body_atoms) {
          for (const Term& t : a.args) {
            if (std::find(vars.begin(), vars.end(), t) == vars.end()) {
              vars.push_back(t);
            }
          }
        }
        Atom head = Atom::Make(StrCat("N", i, "_s", config.seed), vars);
        tgds.tgds.emplace_back(std::move(body_atoms),
                               std::vector<Atom>{head});
        break;
      }
      case TgdClass::kSticky: {
        // Lossless: the head keeps every body variable.
        Atom body = random_atom(preds);
        Atom body2 = random_atom(preds);
        std::vector<Term> vars;
        for (const Atom* a : {&body, &body2}) {
          for (const Term& t : a->args) {
            if (std::find(vars.begin(), vars.end(), t) == vars.end()) {
              vars.push_back(t);
            }
          }
        }
        Atom head = Atom::Make(StrCat("K", i % 2, "_a", vars.size(), "_s",
                                      config.seed),
                               vars);
        tgds.tgds.emplace_back(std::vector<Atom>{body, body2},
                               std::vector<Atom>{head});
        break;
      }
      case TgdClass::kGuarded: {
        // Guard atom over k variables plus side atoms over its variables.
        std::vector<Term> gvars;
        for (int j = 0; j < std::max(config.max_arity, 2); ++j) {
          gvars.push_back(V(StrCat("V", j)));
        }
        Atom guard = Atom::Make(StrCat("G", pick(2), "_a", gvars.size(),
                                       "_s", config.seed),
                                gvars);
        Atom side(preds.front(),
                  std::vector<Term>(gvars.begin(),
                                    gvars.begin() + preds.front().arity()));
        std::vector<Term> head_args{gvars.front(), V(StrCat("E", i))};
        Atom head = Atom::Make(StrCat("G", pick(2), "_a2_s", config.seed),
                               head_args);
        tgds.tgds.emplace_back(std::vector<Atom>{guard, side},
                               std::vector<Atom>{head});
        break;
      }
      default: {  // kFull and everything else: existential-free rules
        Atom body = random_atom(preds);
        Atom head(preds[static_cast<size_t>(pick(config.num_predicates))],
                  {});
        std::vector<Term> head_args;
        std::vector<Term> body_vars = body.Variables();
        for (int j = 0; j < head.predicate.arity(); ++j) {
          head_args.push_back(
              body_vars.empty()
                  ? C("c")
                  : body_vars[static_cast<size_t>(pick(
                        static_cast<int>(body_vars.size())))]);
        }
        head.args = std::move(head_args);
        tgds.tgds.emplace_back(std::vector<Atom>{body},
                               std::vector<Atom>{head});
        break;
      }
    }
  }
  // Query: a few atoms over the data predicates, one answer variable if
  // possible.
  ConjunctiveQuery query;
  for (int i = 0; i < config.query_atoms; ++i) {
    query.body.push_back(random_atom(preds));
  }
  std::vector<Term> vars = query.Variables();
  if (!vars.empty()) query.answer_vars.push_back(vars.front());

  Schema data_schema;
  for (const Predicate& p : preds) data_schema.Add(p);
  return Omq{std::move(data_schema), std::move(tgds), std::move(query)};
}

Database MakeChainDatabase(int length) {
  Database db;
  auto c = [](int i) { return C(StrCat("c", i)); };
  db.Add(Atom::Make("A", {c(0)}));
  for (int i = 0; i < length; ++i) {
    db.Add(Atom::Make("R", {c(i), c(i + 1)}));
  }
  db.Add(Atom::Make("B", {c(length)}));
  return db;
}

}  // namespace omqc
