// XRewrite (Algorithm 1; Gottlob, Orsi, Pieris, cited as [40]): computes a
// UCQ rewriting of an OMQ whose ontology falls in a UCQ-rewritable class
// (linear, non-recursive, sticky — Sec. 4).
//
// The algorithm exhaustively applies two steps starting from the input CQ:
//   * rewriting  — resolve a unifiable subset S of a query's body with the
//     head of a (renamed-apart) tgd, subject to the applicability condition
//     (Def. 6), replacing S by the tgd's body under the MGU;
//   * factorization — unify a subset S of body atoms sharing an existential
//     position (Def. 7), producing auxiliary queries needed for
//     completeness.
// Queries are deduplicated modulo bijective variable renaming (≃). The
// final rewriting keeps the rewriting-labeled queries over the data schema.

#ifndef OMQC_REWRITE_XREWRITE_H_
#define OMQC_REWRITE_XREWRITE_H_

#include <algorithm>
#include <cstddef>
#include <functional>

#include "base/status.h"
#include "logic/cq.h"
#include "tgd/tgd.h"

namespace omqc {

class ResourceGovernor;

/// Resource budgets for XRewrite. The rewriting terminates for L, NR and S
/// ontologies but may be exponentially large (Props. 14, 17); budgets turn
/// a blow-up into Status::ResourceExhausted instead of an endless run.
struct XRewriteOptions {
  /// Maximum number of generated queries (explored + frontier). Enforced
  /// at admission time: once the cap is reached no further query is
  /// stored, the run is marked budget-exhausted, and `queries_generated`
  /// never exceeds this value (a single exploration burst cannot blow
  /// past it).
  size_t max_queries = 100000;
  /// Maximum number of rewriting/factorization step applications, checked
  /// per step (same no-overshoot guarantee as max_queries).
  size_t max_steps = 1000000;
  /// Largest per-predicate body group for subset enumeration (the subsets
  /// S range over atoms sharing the head predicate of a tgd).
  size_t max_group_size = 20;
  /// Minimize every generated CQ by dropping redundant atoms (atoms whose
  /// removal yields an equivalent query). This is the "query elimination"
  /// optimization of the XRewrite paper [40]; it preserves the semantics
  /// of every query (each minimized CQ is equivalent to the original) and
  /// is *required* for termination on sticky sets, whose unminimized
  /// resolution closure can accumulate unboundedly many redundant atoms.
  bool minimize_disjuncts = true;
  /// Prune rewriting-produced queries that are subsumed (as plain CQs) by
  /// an already-generated rewriting query. Sound and completeness-
  /// preserving for the rewriting *as a UCQ* (prunability of piece-
  /// rewriting operators, König–Leclère–Mugnier); it makes the enumeration
  /// terminate on many guarded ontologies whose unpruned rewriting is
  /// infinite. Off by default to keep XRewrite faithful to Algorithm 1.
  bool prune_subsumed = false;
  /// Optional shared request governor (base/governor.h), checked once per
  /// rewriting/factorization step; admitted queries are charged against
  /// its memory budget. A trip is handled exactly like a local budget:
  /// EnumerateRewritings reports kBudgetExhausted (already-reported
  /// disjuncts stay sound), XRewrite returns the trip status. NOT part of
  /// the option digest (cache/cached_ops.cc) — the cached artifact must
  /// not depend on, or capture, the requesting governor. Not owned.
  ResourceGovernor* governor = nullptr;
};

/// Statistics of one XRewrite run.
struct XRewriteStats {
  size_t rewriting_steps = 0;
  size_t factorization_steps = 0;
  size_t queries_generated = 0;
  size_t max_disjunct_atoms = 0;
  /// Candidates dropped because an ≃-equivalent query already existed.
  size_t dedup_hits = 0;
  /// Candidates dropped by subsumption pruning (prune_subsumed only).
  size_t subsumption_prunes = 0;

  void Merge(const XRewriteStats& other) {
    rewriting_steps += other.rewriting_steps;
    factorization_steps += other.factorization_steps;
    queries_generated += other.queries_generated;
    max_disjunct_atoms = std::max(max_disjunct_atoms,
                                  other.max_disjunct_atoms);
    dedup_hits += other.dedup_hits;
    subsumption_prunes += other.subsumption_prunes;
  }
};

/// Computes a UCQ rewriting of (S=data_schema, Σ=tgds, q) such that for
/// every database D over `data_schema`: cert(q, D, Σ) = rewriting(D).
///
/// Correct (sound and complete) when Σ belongs to L, NR or S. The tgds are
/// normalized internally (single head atom, at most one existential
/// variable occurring once). If `stats` is non-null it receives run
/// statistics.
Result<UnionOfCQs> XRewrite(const Schema& data_schema, const TgdSet& tgds,
                            const ConjunctiveQuery& q,
                            const XRewriteOptions& options = XRewriteOptions(),
                            XRewriteStats* stats = nullptr);

/// Outcome of an incremental rewriting enumeration.
enum class RewriteEnumeration {
  /// The rewriting saturated: every disjunct was reported, and the reported
  /// UCQ is the complete rewriting (always reached for L, NR, S).
  kSaturated,
  /// A resource budget was hit; the reported disjuncts are sound but the
  /// enumeration is incomplete (typical for recursive guarded ontologies,
  /// whose perfect rewriting is infinite).
  kBudgetExhausted,
  /// The callback requested an early stop.
  kStopped,
};

/// Incremental XRewrite: invokes `on_disjunct` on every data-schema
/// disjunct of the rewriting as soon as it is produced (each reported CQ p
/// satisfies p ⊆ Q soundly for *arbitrary* tgd sets; the enumeration is
/// complete in the limit). The callback returns false to stop early.
/// Unlike XRewrite(), hitting a budget is reported as a regular outcome,
/// not an error — this powers the guarded containment semi-procedure.
/// If `stats` is non-null it receives run statistics.
Result<RewriteEnumeration> EnumerateRewritings(
    const Schema& data_schema, const TgdSet& tgds, const ConjunctiveQuery& q,
    const XRewriteOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& on_disjunct,
    XRewriteStats* stats = nullptr);

/// Minimizes a single CQ by removing redundant atoms (query elimination,
/// [40]): the result is equivalent to the input and no atom can be dropped
/// without changing the semantics.
ConjunctiveQuery MinimizeCQ(const ConjunctiveQuery& q);

/// Removes disjuncts subsumed by another disjunct (p is dropped when some
/// other disjunct p' satisfies p ⊆ p' as plain CQs). Keeps the first
/// representative of each equivalence class. Purely an optimization: the
/// result is an equivalent, often much smaller, UCQ.
UnionOfCQs MinimizeUCQ(const UnionOfCQs& ucq);

/// The analytic bounds f_O(Q) on the maximum disjunct size of a UCQ
/// rewriting, per Prop. 12 (linear), Prop. 14 (non-recursive) and Prop. 17
/// (sticky). Returns 0 for classes without a bound here.
size_t LinearRewriteBound(const ConjunctiveQuery& q);
size_t NonRecursiveRewriteBound(const TgdSet& tgds,
                                const ConjunctiveQuery& q);
size_t StickyRewriteBound(const Schema& data_schema, const TgdSet& tgds,
                          const ConjunctiveQuery& q);

}  // namespace omqc

#endif  // OMQC_REWRITE_XREWRITE_H_
