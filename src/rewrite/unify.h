// Most-general unifiers over sets of atoms (appendix, "The Algorithm
// XRewrite"). A set of atoms unifies if one substitution maps them all to
// the same atom; the MGU is unique modulo variable renaming.

#ifndef OMQC_REWRITE_UNIFY_H_
#define OMQC_REWRITE_UNIFY_H_

#include <optional>
#include <vector>

#include "logic/atom.h"
#include "logic/substitution.h"

namespace omqc {

/// Computes a most general unifier for `atoms` (all of the same predicate),
/// or nullopt if they do not unify. The returned substitution maps each
/// variable of the atoms to its class representative: the class constant
/// if one exists, otherwise the least variable of the class. Two distinct
/// constants in one class make unification fail.
std::optional<Substitution> MostGeneralUnifier(const std::vector<Atom>& atoms);

}  // namespace omqc

#endif  // OMQC_REWRITE_UNIFY_H_
