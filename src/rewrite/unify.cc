#include "rewrite/unify.h"

#include <map>

namespace omqc {
namespace {

/// Union-find over terms with path compression.
class TermUnionFind {
 public:
  Term Find(const Term& t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) {
      parent_.emplace(t, t);
      return t;
    }
    if (it->second == t) return t;
    Term root = Find(it->second);
    parent_[t] = root;
    return root;
  }

  /// Merges the classes of a and b; fails (returns false) when this would
  /// identify two distinct constants.
  bool Union(const Term& a, const Term& b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return true;
    if (ra.IsConstant() && rb.IsConstant()) return false;
    // Keep a constant as the root if either side has one.
    if (rb.IsConstant() || (!ra.IsConstant() && rb < ra)) std::swap(ra, rb);
    parent_[rb] = ra;
    return true;
  }

  const std::map<Term, Term>& parents() const { return parent_; }

 private:
  std::map<Term, Term> parent_;
};

}  // namespace

std::optional<Substitution> MostGeneralUnifier(
    const std::vector<Atom>& atoms) {
  if (atoms.empty()) return Substitution();
  const Atom& first = atoms.front();
  TermUnionFind uf;
  for (const Atom& a : atoms) {
    if (a.predicate != first.predicate) return std::nullopt;
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (!uf.Union(first.args[i], a.args[i])) return std::nullopt;
    }
  }
  Substitution mgu;
  for (const auto& [term, _] : uf.parents()) {
    if (!term.IsVariable()) continue;
    Term rep = uf.Find(term);
    if (rep != term) mgu.Bind(term, rep);
  }
  return mgu;
}

}  // namespace omqc
