#include "rewrite/xrewrite.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "base/governor.h"
#include "base/string_util.h"
#include "cache/canonical.h"
#include "logic/homomorphism.h"
#include "rewrite/unify.h"

namespace omqc {
namespace {

/// A normalized tgd with its head existential position precomputed.
struct NormalRule {
  Tgd tgd;
  /// Position of the (unique) existential variable in the single head
  /// atom, or -1 when the tgd has no existential variable (π∃(σ) = ε).
  int existential_position = -1;
};

std::vector<NormalRule> PrepareRules(const TgdSet& tgds) {
  TgdSet normalized = NormalizeHeads(tgds, "@xr");
  std::vector<NormalRule> rules;
  rules.reserve(normalized.size());
  for (Tgd& tgd : normalized.tgds) {
    NormalRule rule;
    std::vector<Term> ex = tgd.ExistentialVariables();
    if (!ex.empty()) {
      const Atom& head = tgd.head.front();
      for (size_t i = 0; i < head.args.size(); ++i) {
        if (head.args[i] == ex.front()) {
          rule.existential_position = static_cast<int>(i);
          break;
        }
      }
    }
    rule.tgd = std::move(tgd);
    rules.push_back(std::move(rule));
  }
  return rules;
}

/// Deduplicates body atoms (set semantics).
std::vector<Atom> DedupAtoms(const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : atoms) {
    if (seen.insert(a).second) out.push_back(a);
  }
  return out;
}

struct Entry {
  ConjunctiveQuery query;
  bool from_rewriting;
  bool reported = false;
};

/// Rough footprint of an admitted query, charged against the governor's
/// byte budget (an estimate bounding blowup, not allocator-exact bytes).
size_t ApproxQueryBytes(const ConjunctiveQuery& q) {
  size_t bytes = sizeof(Entry) + q.answer_vars.size() * sizeof(Term);
  for (const Atom& a : q.body) {
    bytes += sizeof(Atom) + a.args.size() * sizeof(Term);
  }
  return bytes;
}

class XRewriteRun {
 public:
  XRewriteRun(const Schema& data_schema, const TgdSet& tgds,
              const ConjunctiveQuery& q, const XRewriteOptions& options,
              XRewriteStats* stats,
              const std::function<bool(const ConjunctiveQuery&)>* callback)
      : data_schema_(data_schema),
        rules_(PrepareRules(tgds)),
        initial_(q),
        options_(options),
        stats_(stats),
        callback_(callback) {}

  Result<RewriteEnumeration> Run() {
    ConjunctiveQuery start = initial_;
    start.body = DedupAtoms(start.body);
    AddQuery(std::move(start), /*from_rewriting=*/true);
    RewriteEnumeration outcome = RewriteEnumeration::kSaturated;
    // Entries are append-only and explored strictly in admission order, so
    // a monotone frontier cursor suffices (the previous per-iteration
    // rescan made exploration O(n²) in the number of generated queries).
    while (!stopped_ && !budget_exhausted_ &&
           next_unexplored_ < entries_.size()) {
      // Copy: AddQuery may reallocate entries_.
      ConjunctiveQuery q = entries_[next_unexplored_].query;
      ++next_unexplored_;
      OMQC_RETURN_IF_ERROR(Explore(q));
    }
    if (budget_exhausted_) outcome = RewriteEnumeration::kBudgetExhausted;
    if (stopped_) outcome = RewriteEnumeration::kStopped;
    if (stats_ != nullptr) stats_->queries_generated = entries_.size();
    return outcome;
  }

  /// OK unless the run was cut short by the request governor (in which
  /// case Run() reported kBudgetExhausted and this holds the trip).
  const Status& trip() const { return trip_; }

  /// The final rewriting Qfin: rewriting-labeled queries over the data
  /// schema.
  UnionOfCQs FinalRewriting() const {
    UnionOfCQs out;
    for (const Entry& e : entries_) {
      if (e.from_rewriting && OverDataSchema(e.query)) {
        out.disjuncts.push_back(e.query);
      }
    }
    return out;
  }

 private:
  bool OverDataSchema(const ConjunctiveQuery& q) const {
    for (const Atom& a : q.body) {
      if (!data_schema_.Contains(a.predicate)) return false;
    }
    return true;
  }

  void MaybeReport(size_t index) {
    Entry& e = entries_[index];
    if (callback_ == nullptr || e.reported || !e.from_rewriting ||
        !OverDataSchema(e.query)) {
      return;
    }
    e.reported = true;
    if (!(*callback_)(e.query)) stopped_ = true;
  }

  /// Adds `q` unless an ≃-equivalent query blocks it (per Algorithm 1:
  /// rewriting-produced queries are blocked only by rewriting-labeled
  /// queries; factorization-produced queries by any query), or — with
  /// prune_subsumed — unless an existing rewriting query subsumes it.
  /// The max_queries budget is enforced HERE, at admission time: deduped
  /// or pruned candidates never count, and once the cap is reached the
  /// run is marked budget-exhausted instead of storing the query, so
  /// `entries_` can never grow past the cap within an exploration burst.
  void AddQuery(ConjunctiveQuery q, bool from_rewriting) {
    if (budget_exhausted_) return;
    if (options_.minimize_disjuncts) q = MinimizeCQ(q);
    // Canonical fingerprints are isomorphism-invariant, so every
    // ≃-duplicate of q lands in its bucket; IsomorphicCQs then confirms
    // (fingerprint collisions between non-isomorphic queries are possible
    // in principle, never assumed away).
    Fingerprint signature = FingerprintCQ(q);
    auto it = buckets_.find(signature);
    if (it != buckets_.end()) {
      for (size_t idx : it->second) {
        Entry& e = entries_[idx];
        if (IsomorphicCQs(q, e.query)) {
          if (stats_ != nullptr) ++stats_->dedup_hits;
          // A rewriting duplicate of a factorization query upgrades the
          // label so it reaches the final rewriting, instead of being
          // admitted as a renamed copy that would be explored twice.
          if (from_rewriting && !e.from_rewriting) {
            e.from_rewriting = true;
            MaybeReport(idx);
          }
          return;
        }
      }
    }
    if (options_.prune_subsumed && from_rewriting) {
      for (const Entry& e : entries_) {
        if (e.from_rewriting &&
            e.query.answer_vars.size() == q.answer_vars.size() &&
            CQContainedIn(q, e.query)) {
          if (stats_ != nullptr) ++stats_->subsumption_prunes;
          return;  // subsumed: contributes nothing to the UCQ
        }
      }
    }
    if (entries_.size() >= options_.max_queries) {
      budget_exhausted_ = true;
      return;
    }
    if (options_.governor != nullptr) {
      Status st = options_.governor->ChargeBytes(ApproxQueryBytes(q));
      if (!st.ok()) {
        budget_exhausted_ = true;
        if (trip_.ok()) trip_ = std::move(st);
        return;
      }
    }
    buckets_[signature].push_back(entries_.size());
    entries_.push_back(Entry{std::move(q), from_rewriting, false});
    MaybeReport(entries_.size() - 1);
  }

  /// Burns one rewriting/factorization step; returns false (and marks the
  /// run budget-exhausted) when the step budget is spent or the request
  /// governor trips.
  bool TakeStep() {
    ++steps_;
    if (options_.max_steps != 0 && steps_ > options_.max_steps) {
      budget_exhausted_ = true;
      return false;
    }
    if (options_.governor != nullptr) {
      Status st = options_.governor->Check();
      if (!st.ok()) {
        budget_exhausted_ = true;
        if (trip_.ok()) trip_ = std::move(st);
        return false;
      }
    }
    return true;
  }

  Status Explore(const ConjunctiveQuery& q) {
    std::set<Term> shared = q.SharedVariables();
    for (const NormalRule& rule : rules_) {
      if (stopped_ || budget_exhausted_) return Status::OK();
      OMQC_RETURN_IF_ERROR(RewritingSteps(q, shared, rule));
      OMQC_RETURN_IF_ERROR(FactorizationSteps(q, rule));
    }
    return Status::OK();
  }

  /// All rewriting steps of `q` with `rule` (Def. 6 applicability).
  Status RewritingSteps(const ConjunctiveQuery& q,
                        const std::set<Term>& shared,
                        const NormalRule& rule) {
    const Predicate head_pred = rule.tgd.head.front().predicate;
    std::vector<size_t> group;
    for (size_t i = 0; i < q.body.size(); ++i) {
      if (q.body[i].predicate == head_pred) group.push_back(i);
    }
    if (group.empty()) return Status::OK();
    if (group.size() > options_.max_group_size) {
      return Status::ResourceExhausted(
          StrCat("XRewrite: ", group.size(), " candidate atoms for ",
                 head_pred.ToString(), " exceed max_group_size"));
    }
    const size_t subsets = (size_t{1} << group.size());
    for (size_t mask = 1;
         mask < subsets && !stopped_ && !budget_exhausted_; ++mask) {
      std::vector<size_t> s_indices;
      for (size_t b = 0; b < group.size(); ++b) {
        if (mask & (size_t{1} << b)) s_indices.push_back(group[b]);
      }
      // Applicability condition 2: no constant or shared variable at the
      // existential position of any atom of S.
      if (rule.existential_position >= 0) {
        bool blocked = false;
        for (size_t idx : s_indices) {
          const Term& t =
              q.body[idx].args[static_cast<size_t>(rule.existential_position)];
          if (t.IsConstant() || shared.count(t) > 0) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
      }
      // Applicability condition 1: S ∪ {head(σ^i)} unifies.
      if (!TakeStep()) return Status::OK();
      Tgd renamed = rule.tgd.RenamedApart(static_cast<int>(steps_));
      std::vector<Atom> to_unify;
      for (size_t idx : s_indices) to_unify.push_back(q.body[idx]);
      to_unify.push_back(renamed.head.front());
      std::optional<Substitution> mgu = MostGeneralUnifier(to_unify);
      if (!mgu.has_value()) continue;
      // q' = γ(q[S / body(σ^i)]).
      std::vector<Atom> new_body;
      std::set<size_t> replaced(s_indices.begin(), s_indices.end());
      for (size_t i = 0; i < q.body.size(); ++i) {
        if (replaced.count(i) == 0) new_body.push_back(q.body[i]);
      }
      for (const Atom& b : renamed.body) new_body.push_back(b);
      ConjunctiveQuery result(mgu->Apply(q.answer_vars),
                              DedupAtoms(mgu->Apply(new_body)));
      if (stats_ != nullptr) ++stats_->rewriting_steps;
      AddQuery(std::move(result), /*from_rewriting=*/true);
    }
    return Status::OK();
  }

  /// All factorization steps of `q` with `rule` (Def. 7 factorizability).
  Status FactorizationSteps(const ConjunctiveQuery& q,
                            const NormalRule& rule) {
    if (rule.existential_position < 0) return Status::OK();
    const Predicate head_pred = rule.tgd.head.front().predicate;
    const size_t pos = static_cast<size_t>(rule.existential_position);
    std::vector<size_t> group;
    for (size_t i = 0; i < q.body.size(); ++i) {
      if (q.body[i].predicate == head_pred) group.push_back(i);
    }
    if (group.size() < 2) return Status::OK();
    if (group.size() > options_.max_group_size) {
      return Status::ResourceExhausted(
          StrCat("XRewrite: ", group.size(), " candidate atoms for ",
                 head_pred.ToString(), " exceed max_group_size"));
    }
    std::set<Term> answer_vars(q.answer_vars.begin(), q.answer_vars.end());
    const size_t subsets = (size_t{1} << group.size());
    for (size_t mask = 1;
         mask < subsets && !stopped_ && !budget_exhausted_; ++mask) {
      if (__builtin_popcountll(mask) < 2) continue;
      std::vector<size_t> s_indices;
      for (size_t b = 0; b < group.size(); ++b) {
        if (mask & (size_t{1} << b)) s_indices.push_back(group[b]);
      }
      // Condition 3: some non-answer variable x, absent from body \ S,
      // occurring in every atom of S exactly at position π∃ and nowhere
      // else within S.
      std::set<size_t> in_s(s_indices.begin(), s_indices.end());
      std::set<Term> outside_vars;
      for (size_t i = 0; i < q.body.size(); ++i) {
        if (in_s.count(i) > 0) continue;
        for (const Term& t : q.body[i].args) {
          if (t.IsVariable()) outside_vars.insert(t);
        }
      }
      const Term& candidate = q.body[s_indices.front()].args[pos];
      if (!candidate.IsVariable() || outside_vars.count(candidate) > 0 ||
          answer_vars.count(candidate) > 0) {
        continue;
      }
      bool witness = true;
      for (size_t idx : s_indices) {
        const Atom& a = q.body[idx];
        for (size_t j = 0; j < a.args.size(); ++j) {
          bool is_candidate = a.args[j] == candidate;
          if (j == pos ? !is_candidate : is_candidate) {
            witness = false;
            break;
          }
        }
        if (!witness) break;
      }
      if (!witness) continue;
      // Condition 1: S unifies.
      std::vector<Atom> to_unify;
      for (size_t idx : s_indices) to_unify.push_back(q.body[idx]);
      std::optional<Substitution> mgu = MostGeneralUnifier(to_unify);
      if (!mgu.has_value()) continue;
      if (!TakeStep()) return Status::OK();
      ConjunctiveQuery result(mgu->Apply(q.answer_vars),
                              DedupAtoms(mgu->Apply(q.body)));
      if (stats_ != nullptr) ++stats_->factorization_steps;
      AddQuery(std::move(result), /*from_rewriting=*/false);
    }
    return Status::OK();
  }

  const Schema& data_schema_;
  std::vector<NormalRule> rules_;
  const ConjunctiveQuery& initial_;
  const XRewriteOptions& options_;
  XRewriteStats* stats_;
  const std::function<bool(const ConjunctiveQuery&)>* callback_;
  std::vector<Entry> entries_;
  std::unordered_map<Fingerprint, std::vector<size_t>, FingerprintHash>
      buckets_;
  /// Frontier cursor: entries_[0, next_unexplored_) have been explored.
  size_t next_unexplored_ = 0;
  size_t steps_ = 0;
  bool stopped_ = false;
  bool budget_exhausted_ = false;
  Status trip_;  // first governor trip observed, if any
};

/// base^exp with saturation.
size_t SaturatingPow(size_t base, size_t exp) {
  size_t result = 1;
  const size_t limit = std::numeric_limits<size_t>::max() / 2;
  for (size_t i = 0; i < exp; ++i) {
    if (base != 0 && result > limit / std::max<size_t>(base, 1)) {
      return limit;
    }
    result *= base;
  }
  return result;
}

}  // namespace

Result<UnionOfCQs> XRewrite(const Schema& data_schema, const TgdSet& tgds,
                            const ConjunctiveQuery& q,
                            const XRewriteOptions& options,
                            XRewriteStats* stats) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(tgds));
  OMQC_RETURN_IF_ERROR(ValidateCQ(q));
  XRewriteRun run(data_schema, tgds, q, options, stats, nullptr);
  OMQC_ASSIGN_OR_RETURN(RewriteEnumeration outcome, run.Run());
  if (outcome == RewriteEnumeration::kBudgetExhausted) {
    if (!run.trip().ok()) return run.trip();  // governor cut the run short
    return Status::ResourceExhausted(
        "XRewrite exceeded its budget; the rewriting may be infinite "
        "(is the ontology linear, non-recursive or sticky?)");
  }
  UnionOfCQs result = run.FinalRewriting();
  if (stats != nullptr) stats->max_disjunct_atoms = result.MaxDisjunctSize();
  return result;
}

Result<RewriteEnumeration> EnumerateRewritings(
    const Schema& data_schema, const TgdSet& tgds, const ConjunctiveQuery& q,
    const XRewriteOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& on_disjunct,
    XRewriteStats* stats) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(tgds));
  OMQC_RETURN_IF_ERROR(ValidateCQ(q));
  XRewriteRun run(data_schema, tgds, q, options, stats, &on_disjunct);
  return run.Run();
}

ConjunctiveQuery MinimizeCQ(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed && current.body.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      ConjunctiveQuery candidate = current;
      candidate.body.erase(candidate.body.begin() +
                           static_cast<std::ptrdiff_t>(i));
      // Answer variables must stay bound in the body.
      if (!ValidateCQ(candidate).ok()) continue;
      // candidate has fewer constraints, so current ⊆ candidate always;
      // the atom is redundant iff also candidate ⊆ current.
      if (CQContainedIn(candidate, current)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

UnionOfCQs MinimizeUCQ(const UnionOfCQs& ucq) {
  std::vector<ConjunctiveQuery> kept;
  for (const ConjunctiveQuery& candidate : ucq.disjuncts) {
    bool subsumed = false;
    for (const ConjunctiveQuery& k : kept) {
      if (CQContainedIn(candidate, k)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    // Remove kept disjuncts subsumed by the new one.
    std::vector<ConjunctiveQuery> next;
    for (ConjunctiveQuery& k : kept) {
      if (!CQContainedIn(k, candidate)) next.push_back(std::move(k));
    }
    next.push_back(candidate);
    kept = std::move(next);
  }
  return UnionOfCQs(std::move(kept));
}

size_t LinearRewriteBound(const ConjunctiveQuery& q) { return q.size(); }

size_t NonRecursiveRewriteBound(const TgdSet& tgds,
                                const ConjunctiveQuery& q) {
  size_t base = std::max<size_t>(tgds.MaxBodySize(), 1);
  return q.size() * SaturatingPow(base, tgds.SchemaOf().size());
}

size_t StickyRewriteBound(const Schema& data_schema, const TgdSet& tgds,
                          const ConjunctiveQuery& q) {
  size_t terms = q.AllTerms().size() + tgds.Constants().size() + 1;
  return data_schema.size() *
         SaturatingPow(terms, static_cast<size_t>(data_schema.MaxArity()));
}

}  // namespace omqc
