#include "cache/artifact_store.h"

#include "base/string_util.h"

namespace omqc {

std::string CacheCounters::ToString() const {
  return StrCat("lookups=", lookups, " hits=", hits, " misses=", misses,
                " insertions=", insertions, " evictions=", evictions,
                " bytes_inserted=", bytes_inserted, " persist_hits=",
                persist_hits, " persist_writes=", persist_writes,
                " promotions=", promotions);
}

std::string OmqCacheStats::ToString() const {
  std::string out = StrCat("cache stats: entries=", entries, " bytes=", bytes,
                           " ", counters.ToString());
  if (persist_segments > 0 || persist_entries > 0 ||
      persist_corrupt_records > 0 || persist_version_rejects > 0) {
    out = StrCat(out, " persist_entries=", persist_entries,
                 " persist_segments=", persist_segments,
                 " persist_corrupt_records=", persist_corrupt_records,
                 " persist_version_rejects=", persist_version_rejects);
  }
  return out;
}

}  // namespace omqc
