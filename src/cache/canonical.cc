#include "cache/canonical.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/string_util.h"

namespace omqc {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ULL;

/// Branch budget for the individualization search. Only highly symmetric
/// queries branch at all; the cap merely bounds pathological inputs (for
/// which the fingerprint stays deterministic but may identify two
/// non-isomorphic members of the same refinement-indistinguishable family).
constexpr size_t kMaxLeaves = 4096;

/// Token tags keeping term sorts and structure kinds in disjoint hash
/// domains.
enum Tag : uint64_t {
  kTagConstant = 0xC0,
  kTagVariable = 0xC1,
  kTagCQ = 0xD0,
  kTagTgd = 0xD1,
  kTagTgdSet = 0xD2,
  kTagSchema = 0xD3,
  kTagUCQ = 0xD4,
  kTagOmq = 0xD5,
  kTagDatabase = 0xD6,
};

/// FNV-1a over bytes; stable across processes (never hash interned ids).
uint64_t HashBytes(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Folds `v` into `h` through a splitmix64 avalanche.
uint64_t Mix64(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return (h ^ v) * kFnvPrime + 0x2545f4914f6cdd1dULL;
}

Fingerprint HashTokens(uint64_t kind, const std::vector<uint64_t>& tokens) {
  Fingerprint fp;
  fp.hi = Mix64(Mix64(0x8e51'2af0'6c35'9d21ULL, kind), tokens.size());
  fp.lo = Mix64(Mix64(0x1b87'3c95'e4d2'07afULL, kind), tokens.size());
  for (uint64_t t : tokens) {
    fp.hi = Mix64(fp.hi, t);
    fp.lo = (fp.lo ^ t) * kFnvPrime + (fp.lo >> 7);
  }
  return fp;
}

std::vector<Atom> DedupAtoms(const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : atoms) {
    if (seen.insert(a).second) out.push_back(a);
  }
  return out;
}

/// The canonization engine: color refinement on the variable/atom
/// incidence structure plus individualization-with-backtracking, producing
/// the lexicographically least serialization over all refinement-discrete
/// variable orderings.
class Canonizer {
 public:
  Canonizer(std::vector<Atom> atoms, std::vector<uint8_t> tags,
            std::vector<Term> answer)
      : atoms_(std::move(atoms)),
        tags_(std::move(tags)),
        answer_(std::move(answer)) {
    auto note_var = [this](const Term& t) {
      if (!t.IsVariable()) return;
      if (var_index_.emplace(t, static_cast<int>(vars_.size())).second) {
        vars_.push_back(t);
      }
    };
    for (const Term& t : answer_) note_var(t);
    for (const Atom& a : atoms_) {
      for (const Term& t : a.args) note_var(t);
    }
    occurrences_.resize(vars_.size());
    for (size_t i = 0; i < atoms_.size(); ++i) {
      const Atom& a = atoms_[i];
      for (size_t j = 0; j < a.args.size(); ++j) {
        if (a.args[j].IsVariable()) {
          occurrences_[static_cast<size_t>(var_index_.at(a.args[j]))]
              .emplace_back(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
  }

  /// Runs refinement + search; afterwards tokens() and PositionOf() are
  /// valid.
  void Run() {
    if (vars_.empty()) {
      best_tokens_ = SerializeWith({});
      return;
    }
    std::vector<uint64_t> colors(vars_.size());
    for (size_t v = 0; v < vars_.size(); ++v) {
      // Initial color: the sorted sequence of answer positions holding
      // this variable (isomorphisms must respect the answer tuple).
      uint64_t h = kFnvOffset;
      for (size_t p = 0; p < answer_.size(); ++p) {
        if (answer_[p].IsVariable() &&
            var_index_.at(answer_[p]) == static_cast<int>(v)) {
          h = Mix64(h, p);
        }
      }
      colors[v] = h;
    }
    Search(std::move(colors));
  }

  const std::vector<uint64_t>& tokens() const { return best_tokens_; }

  /// Canonical position (0-based) of each variable, parallel to vars().
  const std::vector<uint64_t>& positions() const { return best_colors_; }
  const std::vector<Term>& vars() const { return vars_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<uint8_t>& tags() const { return tags_; }
  const std::vector<Term>& answer() const { return answer_; }

  /// Per-atom canonical sort order of the winning labeling (indices into
  /// atoms(), in canonical emission order).
  std::vector<size_t> CanonicalAtomOrder() const {
    return AtomOrderFor(best_colors_);
  }

 private:
  uint64_t PredicateHash(const Predicate& p) const {
    auto it = pred_hash_.find(p.id());
    if (it != pred_hash_.end()) return it->second;
    uint64_t h = Mix64(HashBytes(p.name()), static_cast<uint64_t>(p.arity()));
    pred_hash_.emplace(p.id(), h);
    return h;
  }

  uint64_t ConstantHash(const Term& t) const {
    auto it = const_hash_.find(t);
    if (it != const_hash_.end()) return it->second;
    uint64_t h = HashBytes(t.ToString());
    const_hash_.emplace(t, h);
    return h;
  }

  static size_t CountClasses(const std::vector<uint64_t>& colors) {
    std::vector<uint64_t> sorted = colors;
    std::sort(sorted.begin(), sorted.end());
    return static_cast<size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  }

  /// Replaces raw color values by their rank among the sorted distinct
  /// values (0-based). Rank order is isomorphism-invariant because the raw
  /// values are computed from invariant data only.
  static std::vector<uint64_t> NormalizeRanks(std::vector<uint64_t> colors) {
    std::vector<uint64_t> sorted = colors;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (uint64_t& c : colors) {
      c = static_cast<uint64_t>(
          std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
    }
    return colors;
  }

  /// One refinement step: atom signatures from current colors, then each
  /// variable absorbs the sorted multiset of its (atom signature, position)
  /// incidences. Including the old color makes the partition monotone.
  std::vector<uint64_t> RefineStep(const std::vector<uint64_t>& colors) const {
    std::vector<uint64_t> atom_sig(atoms_.size());
    for (size_t i = 0; i < atoms_.size(); ++i) {
      const Atom& a = atoms_[i];
      uint64_t h = Mix64(kFnvOffset, tags_[i]);
      h = Mix64(h, PredicateHash(a.predicate));
      for (const Term& t : a.args) {
        h = t.IsVariable()
                ? Mix64(Mix64(h, kTagVariable),
                        colors[static_cast<size_t>(var_index_.at(t))])
                : Mix64(Mix64(h, kTagConstant), ConstantHash(t));
      }
      atom_sig[i] = h;
    }
    std::vector<uint64_t> next(colors.size());
    std::vector<uint64_t> incidences;
    for (size_t v = 0; v < colors.size(); ++v) {
      incidences.clear();
      for (const auto& [atom, pos] : occurrences_[v]) {
        incidences.push_back(
            Mix64(atom_sig[static_cast<size_t>(atom)],
                  static_cast<uint64_t>(pos)));
      }
      std::sort(incidences.begin(), incidences.end());
      uint64_t h = Mix64(kFnvOffset, colors[v]);
      for (uint64_t inc : incidences) h = Mix64(h, inc);
      next[v] = h;
    }
    return next;
  }

  /// Refinement to a fixpoint (class count stops growing).
  std::vector<uint64_t> Refine(std::vector<uint64_t> colors) const {
    colors = NormalizeRanks(std::move(colors));
    size_t classes = CountClasses(colors);
    for (size_t round = 0; round <= vars_.size() && classes < vars_.size();
         ++round) {
      std::vector<uint64_t> next = NormalizeRanks(RefineStep(colors));
      size_t next_classes = CountClasses(next);
      colors = std::move(next);
      if (next_classes <= classes) break;
      classes = next_classes;
    }
    return colors;
  }

  void Search(std::vector<uint64_t> colors) {
    if (leaves_ >= kMaxLeaves) return;
    colors = Refine(std::move(colors));
    // First (lowest-rank) class with more than one member, if any.
    std::vector<size_t> class_size(vars_.size(), 0);
    for (uint64_t c : colors) ++class_size[static_cast<size_t>(c)];
    size_t target = vars_.size();
    for (size_t r = 0; r < vars_.size(); ++r) {
      if (class_size[r] > 1) {
        target = r;
        break;
      }
    }
    if (target == vars_.size()) {
      // Discrete coloring: colors are exactly the canonical positions.
      ++leaves_;
      std::vector<uint64_t> tokens = SerializeWith(colors);
      if (best_tokens_.empty() || tokens < best_tokens_) {
        best_tokens_ = std::move(tokens);
        best_colors_ = std::move(colors);
      }
      return;
    }
    // Individualize each member of the target class in turn; the chosen
    // variable is ordered just before its former classmates.
    for (size_t v = 0; v < vars_.size(); ++v) {
      if (colors[v] != target) continue;
      std::vector<uint64_t> branch(colors.size());
      for (size_t u = 0; u < colors.size(); ++u) branch[u] = colors[u] * 2 + 1;
      branch[v] = colors[v] * 2;
      Search(std::move(branch));
    }
  }

  /// Per-atom token sequence under a discrete coloring.
  std::vector<uint64_t> AtomTokens(const Atom& atom, uint8_t tag,
                                   const std::vector<uint64_t>& pos) const {
    std::vector<uint64_t> t;
    t.reserve(atom.args.size() * 2 + 3);
    t.push_back(tag);
    t.push_back(PredicateHash(atom.predicate));
    t.push_back(static_cast<uint64_t>(atom.args.size()));
    for (const Term& a : atom.args) {
      if (a.IsVariable()) {
        t.push_back(kTagVariable);
        t.push_back(pos[static_cast<size_t>(var_index_.at(a))]);
      } else {
        t.push_back(kTagConstant);
        t.push_back(ConstantHash(a));
      }
    }
    return t;
  }

  std::vector<size_t> AtomOrderFor(const std::vector<uint64_t>& pos) const {
    std::vector<std::vector<uint64_t>> keys(atoms_.size());
    for (size_t i = 0; i < atoms_.size(); ++i) {
      keys[i] = AtomTokens(atoms_[i], tags_[i], pos);
    }
    std::vector<size_t> order(atoms_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
    return order;
  }

  std::vector<uint64_t> SerializeWith(const std::vector<uint64_t>& pos) const {
    std::vector<uint64_t> tokens;
    tokens.push_back(vars_.size());
    tokens.push_back(answer_.size());
    for (const Term& t : answer_) {
      if (t.IsVariable()) {
        tokens.push_back(kTagVariable);
        tokens.push_back(pos[static_cast<size_t>(var_index_.at(t))]);
      } else {
        tokens.push_back(kTagConstant);
        tokens.push_back(ConstantHash(t));
      }
    }
    tokens.push_back(atoms_.size());
    for (size_t i : AtomOrderFor(pos)) {
      std::vector<uint64_t> at = AtomTokens(atoms_[i], tags_[i], pos);
      tokens.insert(tokens.end(), at.begin(), at.end());
    }
    return tokens;
  }

  std::vector<Atom> atoms_;
  std::vector<uint8_t> tags_;
  std::vector<Term> answer_;
  std::vector<Term> vars_;
  std::unordered_map<Term, int, TermHash> var_index_;
  std::vector<std::vector<std::pair<int, int>>> occurrences_;
  mutable std::unordered_map<int32_t, uint64_t> pred_hash_;
  mutable std::unordered_map<Term, uint64_t, TermHash> const_hash_;
  std::vector<uint64_t> best_tokens_;
  std::vector<uint64_t> best_colors_;
  size_t leaves_ = 0;
};

Canonizer CanonizeCQParts(const ConjunctiveQuery& q) {
  std::vector<Atom> atoms = DedupAtoms(q.body);
  std::vector<uint8_t> tags(atoms.size(), 0);
  Canonizer canon(std::move(atoms), std::move(tags), q.answer_vars);
  canon.Run();
  return canon;
}

Fingerprint FoldSortedFingerprints(uint64_t kind,
                                   std::vector<Fingerprint> parts) {
  std::sort(parts.begin(), parts.end());
  std::vector<uint64_t> tokens;
  tokens.reserve(parts.size() * 2);
  for (const Fingerprint& fp : parts) {
    tokens.push_back(fp.hi);
    tokens.push_back(fp.lo);
  }
  return HashTokens(kind, tokens);
}

}  // namespace

std::string Fingerprint::ToHex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xF];
    out[static_cast<size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

CanonicalCQ CanonicalizeCQ(const ConjunctiveQuery& q) {
  Canonizer canon = CanonizeCQParts(q);
  CanonicalCQ out;
  out.fingerprint = HashTokens(kTagCQ, canon.tokens());
  // Rename variable at canonical position p to "X<p>" and emit atoms in
  // canonical order.
  const std::vector<Term>& vars = canon.vars();
  const std::vector<uint64_t>& pos = canon.positions();
  Substitution rename;
  for (size_t v = 0; v < vars.size(); ++v) {
    rename.Bind(vars[v], Term::Variable(StrCat("X", pos[v])));
  }
  for (const Term& t : canon.answer()) {
    out.query.answer_vars.push_back(rename.Apply(t));
  }
  for (size_t i : canon.CanonicalAtomOrder()) {
    out.query.body.push_back(rename.Apply(canon.atoms()[i]));
  }
  return out;
}

Fingerprint FingerprintCQ(const ConjunctiveQuery& q) {
  Canonizer canon = CanonizeCQParts(q);
  return HashTokens(kTagCQ, canon.tokens());
}

Fingerprint FingerprintUCQ(const UnionOfCQs& ucq) {
  std::vector<Fingerprint> parts;
  parts.reserve(ucq.disjuncts.size());
  for (const ConjunctiveQuery& d : ucq.disjuncts) {
    parts.push_back(FingerprintCQ(d));
  }
  return FoldSortedFingerprints(kTagUCQ, std::move(parts));
}

Fingerprint FingerprintTgd(const Tgd& tgd) {
  std::vector<Atom> atoms = DedupAtoms(tgd.body);
  std::vector<uint8_t> tags(atoms.size(), 0);
  for (const Atom& h : DedupAtoms(tgd.head)) {
    atoms.push_back(h);
    tags.push_back(1);
  }
  Canonizer canon(std::move(atoms), std::move(tags), {});
  canon.Run();
  return HashTokens(kTagTgd, canon.tokens());
}

Fingerprint FingerprintTgdSet(const TgdSet& tgds) {
  std::vector<Fingerprint> parts;
  parts.reserve(tgds.size());
  for (const Tgd& t : tgds.tgds) parts.push_back(FingerprintTgd(t));
  return FoldSortedFingerprints(kTagTgdSet, std::move(parts));
}

Fingerprint FingerprintSchema(const Schema& schema) {
  // Schema::predicates() is an ordered std::set, but by interned id; hash
  // and sort by name/arity for cross-process stability.
  std::vector<uint64_t> tokens;
  tokens.reserve(schema.size());
  for (const Predicate& p : schema.predicates()) {
    uint64_t h = HashBytes(p.name());
    tokens.push_back(Mix64(h, static_cast<uint64_t>(p.arity())));
  }
  std::sort(tokens.begin(), tokens.end());
  return HashTokens(kTagSchema, tokens);
}

Fingerprint FingerprintOmqParts(const Schema& data_schema, const TgdSet& tgds,
                                const ConjunctiveQuery& q) {
  Fingerprint s = FingerprintSchema(data_schema);
  Fingerprint t = FingerprintTgdSet(tgds);
  Fingerprint c = FingerprintCQ(q);
  return HashTokens(kTagOmq, {s.hi, s.lo, t.hi, t.lo, c.hi, c.lo});
}

Fingerprint FingerprintUcqOmqParts(const Schema& data_schema,
                                   const TgdSet& tgds, const UnionOfCQs& ucq) {
  Fingerprint s = FingerprintSchema(data_schema);
  Fingerprint t = FingerprintTgdSet(tgds);
  Fingerprint u = FingerprintUCQ(ucq);
  return HashTokens(kTagOmq, {s.hi, s.lo, t.hi, t.lo, u.hi, u.lo});
}

Fingerprint FingerprintDatabase(const Database& db) {
  std::vector<uint64_t> tokens;
  tokens.reserve(db.size());
  for (AtomId id = 0; id < db.size(); ++id) {
    AtomView v = db.view(static_cast<AtomId>(id));
    uint64_t h = Mix64(HashBytes(v.predicate().name()),
                       static_cast<uint64_t>(v.arity()));
    for (const Term& t : v) {
      // Facts are null-free, so every argument has a stable name.
      h = Mix64(h, HashBytes(t.ToString()));
    }
    tokens.push_back(h);
  }
  // Set semantics: sort so insertion order does not matter.
  std::sort(tokens.begin(), tokens.end());
  return HashTokens(kTagDatabase, tokens);
}

}  // namespace omqc
