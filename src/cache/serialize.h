// Artifact-kind-dispatched binary (de)serialization for the persistent
// tier of the cache (cache/persist.h). Builds on the logic layer's
// serializers (logic/serialize.h); payloads are name-based and therefore
// stable across processes and interning orders.
//
// kRhsEvaluator is deliberately NOT persistable: a prepared evaluator
// holds closures and thread-pool plumbing with no meaningful on-disk
// form. The tiered store simply never demotes that kind; it is recompiled
// per process (cheap relative to the rewritings it consumes, which ARE
// persisted).

#ifndef OMQC_CACHE_SERIALIZE_H_
#define OMQC_CACHE_SERIALIZE_H_

#include <cstdint>
#include <memory>

#include "base/binary_io.h"
#include "base/status.h"
#include "cache/artifact_store.h"

namespace omqc {

/// Version of the artifact payload encodings below. Bump on any layout
/// change; the persistent store rejects (counts, never crashes on)
/// payloads of a foreign version.
constexpr uint32_t kArtifactPayloadVersion = 1;

/// True iff artifacts of this kind have an on-disk form.
bool ArtifactKindPersistable(ArtifactKind kind);

void SerializeFingerprint(const Fingerprint& fp, ByteWriter& out);
Fingerprint DeserializeFingerprint(ByteReader& in);

/// Encodes the artifact `value` of the given kind (which must be the
/// type-erased pointer the cache holds for that kind). Returns false for
/// non-persistable kinds (nothing is written).
bool SerializeArtifact(ArtifactKind kind, const void* value, ByteWriter& out);

/// A decoded artifact: the type-erased value (pointing at the type the
/// cache's consumers expect for `kind`) plus the byte estimate to account
/// it under — the same estimate the original Put would have used, so L1
/// occupancy matches cold-computed entries exactly.
struct DecodedArtifact {
  std::shared_ptr<const void> value;
  size_t bytes = 0;
};

/// Inverse of SerializeArtifact. Total over arbitrary bytes: malformed
/// input yields an error Status, never a crash.
Result<DecodedArtifact> DeserializeArtifact(ArtifactKind kind, ByteReader& in);

}  // namespace omqc

#endif  // OMQC_CACHE_SERIALIZE_H_
