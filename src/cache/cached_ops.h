// Cache-aware wrappers around the compilation steps of the engine:
// ontology classification (src/tgd/classify) and UCQ rewriting
// (src/rewrite/xrewrite). Every function degrades to a plain computation
// when `cache` is null, so callers thread one optional pointer through and
// never branch on caching themselves. All wrappers are safe to call
// concurrently with a shared cache (per-run tallies go to the caller's
// CacheCounters, which must not be shared across threads).

#ifndef OMQC_CACHE_CACHED_OPS_H_
#define OMQC_CACHE_CACHED_OPS_H_

#include <memory>

#include "cache/omq_cache.h"
#include "rewrite/xrewrite.h"
#include "tgd/classify.h"

namespace omqc {

/// The classification facts the evaluation/containment dispatchers need,
/// precomputed once per distinct (modulo renaming) ontology.
struct TgdProfile {
  TgdClass primary = TgdClass::kEmpty;
  bool linear = false;
  bool guarded = false;
  bool full = false;
  bool non_recursive = false;
  bool sticky = false;

  /// True when the restricted chase provably reaches a fixpoint.
  bool ChaseTerminates() const { return full || non_recursive; }
};

/// Classifies `tgds`, consulting/filling `cache` (keyed by the tgd set's
/// canonical fingerprint) when non-null.
TgdProfile GetTgdProfile(OmqCache* cache, const TgdSet& tgds,
                         CacheCounters* counters = nullptr);

/// A cached (complete) UCQ rewriting together with the stats of the run
/// that produced it.
struct CachedRewriting {
  UnionOfCQs ucq;
  XRewriteStats compute_stats;
};

/// Digest of every XRewriteOptions field that can change the rewriting.
uint64_t XRewriteOptionsDigest(const XRewriteOptions& options);

/// Cache key for the rewriting of (data_schema, tgds, q) under `options`.
CacheKey RewritingCacheKey(const Schema& data_schema, const TgdSet& tgds,
                           const ConjunctiveQuery& q,
                           const XRewriteOptions& options);

/// Rough byte footprint of a UCQ (for cache accounting only).
size_t ApproxBytes(const UnionOfCQs& ucq);

/// XRewrite with caching: returns a shared complete rewriting, computing
/// and inserting it on miss. Budget exhaustion propagates as
/// ResourceExhausted and is never cached. On a hit, `stats` is untouched
/// (EngineStats counters mean work performed; the saved compilation shows
/// up as a hit in `counters` instead).
Result<std::shared_ptr<const UnionOfCQs>> CachedXRewrite(
    OmqCache* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    XRewriteStats* stats = nullptr, CacheCounters* counters = nullptr);

/// EnumerateRewritings with caching: replays a cached saturated rewriting
/// through `on_disjunct` (outcome kSaturated, or kStopped if the callback
/// stops), or enumerates live and caches the disjunct list when the
/// enumeration saturates. Budget-exhausted and stopped enumerations are
/// not cached (they are incomplete).
Result<RewriteEnumeration> CachedEnumerateRewritings(
    OmqCache* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& on_disjunct,
    XRewriteStats* stats = nullptr, CacheCounters* counters = nullptr);

}  // namespace omqc

#endif  // OMQC_CACHE_CACHED_OPS_H_
