// Cache-aware wrappers around the compilation steps of the engine:
// ontology classification (src/tgd/classify) and UCQ rewriting
// (src/rewrite/xrewrite). Every function degrades to a plain computation
// when `cache` is null, so callers thread one optional pointer through and
// never branch on caching themselves. All wrappers are safe to call
// concurrently with a shared cache (per-run tallies go to the caller's
// CacheCounters, which must not be shared across threads).
//
// The store parameter is the abstract ArtifactStore: a plain OmqCache, or
// a TieredStore (cache/persist.h) that transparently consults and fills
// its on-disk tier. Inserts carry the tgd set's fingerprint as the
// invalidation tag so a tiered store can drop exactly the artifacts
// compiled from an ontology that changed.

#ifndef OMQC_CACHE_CACHED_OPS_H_
#define OMQC_CACHE_CACHED_OPS_H_

#include <memory>

#include "cache/artifact_store.h"
#include "logic/instance.h"
#include "rewrite/xrewrite.h"
#include "tgd/classify.h"

namespace omqc {

/// The classification facts the evaluation/containment dispatchers need,
/// precomputed once per distinct (modulo renaming) ontology.
struct TgdProfile {
  TgdClass primary = TgdClass::kEmpty;
  bool linear = false;
  bool guarded = false;
  bool full = false;
  bool non_recursive = false;
  bool sticky = false;

  /// True when the restricted chase provably reaches a fixpoint.
  bool ChaseTerminates() const { return full || non_recursive; }
};

/// Classifies `tgds`, consulting/filling `cache` (keyed by the tgd set's
/// canonical fingerprint) when non-null.
TgdProfile GetTgdProfile(ArtifactStore* cache, const TgdSet& tgds,
                         CacheCounters* counters = nullptr);

/// A cached (complete) UCQ rewriting together with the stats of the run
/// that produced it.
struct CachedRewriting {
  UnionOfCQs ucq;
  XRewriteStats compute_stats;
};

/// A cached chase result: the *saturated* (fixpoint) instance of chasing
/// a database under a tgd set. Only complete chases are ever cached —
/// truncated chases depend on the budget that stopped them and are
/// recomputed. Keyed by ChaseCacheKey (src/core/eval.cc wires this into
/// the certain-answer chase path).
struct CachedChase {
  Instance instance;
};

/// Digest of every XRewriteOptions field that can change the rewriting.
uint64_t XRewriteOptionsDigest(const XRewriteOptions& options);

/// Cache key for the rewriting of (data_schema, tgds, q) under `options`.
CacheKey RewritingCacheKey(const Schema& data_schema, const TgdSet& tgds,
                           const ConjunctiveQuery& q,
                           const XRewriteOptions& options);

/// Cache key for the chase of `db` under `tgds`. The fingerprint combines
/// the database's fact-multiset hash with the tgd set's canonical
/// fingerprint; `chase_options_digest` folds every chase option that can
/// change the result (variant, strategy, budgets).
CacheKey ChaseCacheKey(const Database& db, const TgdSet& tgds,
                       uint64_t chase_options_digest);

/// Rough byte footprint of a UCQ (for cache accounting only).
size_t ApproxBytes(const UnionOfCQs& ucq);

/// XRewrite with caching: returns a shared complete rewriting, computing
/// and inserting it on miss. Budget exhaustion propagates as
/// ResourceExhausted and is never cached. On a hit, `stats` is untouched
/// (EngineStats counters mean work performed; the saved compilation shows
/// up as a hit in `counters` instead).
Result<std::shared_ptr<const UnionOfCQs>> CachedXRewrite(
    ArtifactStore* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    XRewriteStats* stats = nullptr, CacheCounters* counters = nullptr);

/// EnumerateRewritings with caching: replays a cached saturated rewriting
/// through `on_disjunct` (outcome kSaturated, or kStopped if the callback
/// stops), or enumerates live and caches the disjunct list when the
/// enumeration saturates. Budget-exhausted and stopped enumerations are
/// not cached (they are incomplete).
Result<RewriteEnumeration> CachedEnumerateRewritings(
    ArtifactStore* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& on_disjunct,
    XRewriteStats* stats = nullptr, CacheCounters* counters = nullptr);

}  // namespace omqc

#endif  // OMQC_CACHE_CACHED_OPS_H_
