// ArtifactStore: the abstract interface every compiled-artifact cache
// implements — the process-local sharded LRU (cache/omq_cache.h) and the
// tiered memory+disk store (cache/persist.h). The cache key and counter
// types live here so both implementations and every consumer
// (cache/cached_ops.h, src/core, src/server) share one vocabulary.
//
// Contract (inherited from the original OmqCache and unchanged by
// tiering): a store never changes semantics. Every consumer falls back to
// a fresh compilation on miss (or a null store pointer), only *saturated*
// artifacts are inserted, and a served artifact is observationally
// identical to what the fallback would compute for the same key. This is
// what makes verdicts byte-identical cold vs warm vs cross-process.

#ifndef OMQC_CACHE_ARTIFACT_STORE_H_
#define OMQC_CACHE_ARTIFACT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "cache/canonical.h"

namespace omqc {

class FaultInjector;

/// What a cache entry holds. Part of the key: the same fingerprint may
/// cache several artifact kinds side by side.
enum class ArtifactKind : uint8_t {
  kRewriting = 0,       ///< CachedRewriting (cache/cached_ops.h)
  kClassification = 1,  ///< TgdProfile (cache/cached_ops.h)
  kRhsEvaluator = 2,    ///< RhsEvaluator (src/core/containment.cc)
  kChasedInstance = 3,  ///< CachedChase (cache/cached_ops.h)
};

struct CacheKey {
  Fingerprint fingerprint;
  uint64_t options_digest = 0;
  ArtifactKind kind = ArtifactKind::kRewriting;

  bool operator==(const CacheKey& other) const {
    return fingerprint == other.fingerprint &&
           options_digest == other.options_digest && kind == other.kind;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    size_t h = FingerprintHash{}(key.fingerprint);
    h ^= (key.options_digest + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    return h ^ (static_cast<size_t>(key.kind) << 1);
  }
};

/// Tallies of cache traffic. Used both per-run (embedded in EngineStats,
/// merged across worker threads) and as the cache-global aggregate.
/// `lookups`/`hits`/`misses` describe the in-memory tier; the persist_*
/// fields describe the on-disk tier of a TieredStore (always zero for a
/// plain OmqCache).
struct CacheCounters {
  size_t lookups = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t bytes_inserted = 0;
  /// L2 traffic: lookups served from the on-disk segment store after an L1
  /// miss, records appended to it, and L2 hits promoted into L1.
  size_t persist_hits = 0;
  size_t persist_writes = 0;
  size_t promotions = 0;

  void Merge(const CacheCounters& other) {
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    bytes_inserted += other.bytes_inserted;
    persist_hits += other.persist_hits;
    persist_writes += other.persist_writes;
    promotions += other.promotions;
  }

  std::string ToString() const;
};

/// Aggregate snapshot across all shards (plus, for a TieredStore, the
/// on-disk tier's occupancy and load-time health counters).
struct OmqCacheStats {
  CacheCounters counters;
  size_t entries = 0;  ///< live in-memory entries
  size_t bytes = 0;    ///< approximate bytes held by live entries
  /// On-disk tier (zero for a memory-only store):
  size_t persist_entries = 0;   ///< records indexed from the segment files
  size_t persist_segments = 0;  ///< sealed segments referenced by the manifest
  size_t persist_corrupt_records = 0;  ///< records rejected by checksum/bounds
  size_t persist_version_rejects = 0;  ///< segments/manifests of a foreign
                                       ///< format version or build epoch

  std::string ToString() const;
};

/// Abstract compiled-artifact store. Implementations must be safe for
/// concurrent use from many threads; values are immutable objects handed
/// out as shared_ptr<const T> that stay alive while any reader holds
/// them, even after eviction or invalidation.
class ArtifactStore {
 public:
  virtual ~ArtifactStore() = default;

  /// Looks up `key`. Returns nullptr on miss. If `counters` is non-null
  /// the traffic is tallied into it as well as into store-global counters.
  virtual std::shared_ptr<const void> GetErased(
      const CacheKey& key, CacheCounters* counters = nullptr) = 0;

  /// Inserts (or replaces) `key`. `bytes` is the caller's size estimate,
  /// used only for accounting/eviction. `tgd_tag` is the canonical
  /// fingerprint of the tgd set the artifact was compiled from — the
  /// incremental-invalidation handle (TieredStore::InvalidateTgdSet drops
  /// exactly the entries carrying a given tag); memory-only stores ignore
  /// it. Stores may drop an insert (capacity, fault injection, kind not
  /// persistable): callers must treat Put as advisory.
  virtual void PutErased(const CacheKey& key, std::shared_ptr<const void> value,
                         size_t bytes, CacheCounters* counters = nullptr,
                         const Fingerprint& tgd_tag = Fingerprint{}) = 0;

  /// Drops every in-memory entry (counters are kept).
  virtual void Clear() = 0;

  /// Aggregated counters + occupancy.
  virtual OmqCacheStats Stats() const = 0;

  /// Makes pending state durable (no-op for memory-only stores). Called
  /// by the CLI on exit and the server on drain.
  virtual void Flush() {}

  /// Test-only: installs a fault injector whose OnCacheInsert hook may
  /// drop inserts. Default no-op; pass nullptr to detach.
  virtual void set_fault_injector(FaultInjector* injector) { (void)injector; }

  /// Typed convenience wrappers. The ArtifactKind in the key is the type
  /// tag: every producer/consumer of a kind must agree on T.
  template <typename T>
  std::shared_ptr<const T> Get(const CacheKey& key,
                               CacheCounters* counters = nullptr) {
    return std::static_pointer_cast<const T>(GetErased(key, counters));
  }
  template <typename T>
  void Put(const CacheKey& key, std::shared_ptr<const T> value, size_t bytes,
           CacheCounters* counters = nullptr,
           const Fingerprint& tgd_tag = Fingerprint{}) {
    PutErased(key, std::static_pointer_cast<const void>(std::move(value)),
              bytes, counters, tgd_tag);
  }
};

}  // namespace omqc

#endif  // OMQC_CACHE_ARTIFACT_STORE_H_
