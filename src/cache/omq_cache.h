// OmqCache: a fixed-capacity, sharded, thread-safe LRU cache for compiled
// OMQ artifacts — UCQ rewritings (XRewrite output), ontology
// classifications (src/tgd/classify), prepared RHS evaluators
// (src/core/containment.cc) and chased instances (src/core/eval.cc).
// Entries are keyed by the 128-bit structural fingerprint of the compiled
// object (src/cache/canonical.h) plus a digest of the options that shaped
// the compilation, so queries equal up to variable renaming share one
// entry and different budgets never alias.
//
// This is the memory-only ArtifactStore implementation — the L1 tier of
// cache/persist.h's TieredStore, and the whole store when no --cache-dir
// is configured.
//
// Concurrency: keys hash to one of `shards` independent shards, each with
// its own mutex, LRU list and counters; the parallel containment engine
// shares one OmqCache across all pool workers. Values are immutable
// objects handed out as shared_ptr<const T>; a value stays alive while any
// reader holds it, even after eviction.
//
// The cache never changes semantics: every consumer falls back to a fresh
// compilation on miss (or when the cache pointer is null), and cached
// artifacts are bit-compatible with what the fallback would compute for
// the same key (enforced by tests/cache_integration_test.cc).

#ifndef OMQC_CACHE_OMQ_CACHE_H_
#define OMQC_CACHE_OMQ_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/artifact_store.h"
#include "cache/canonical.h"

namespace omqc {

struct OmqCacheConfig {
  /// Total entry capacity, split evenly across shards (each shard holds at
  /// least one entry).
  size_t capacity = 1024;
  /// Number of independently locked shards.
  size_t num_shards = 8;
};

class OmqCache : public ArtifactStore {
 public:
  explicit OmqCache(OmqCacheConfig config = OmqCacheConfig());

  OmqCache(const OmqCache&) = delete;
  OmqCache& operator=(const OmqCache&) = delete;

  /// Looks up `key`, refreshing its LRU position. Returns nullptr on miss.
  /// If `counters` is non-null the lookup is tallied into it as well as
  /// into the cache-global counters.
  std::shared_ptr<const void> GetErased(const CacheKey& key,
                                        CacheCounters* counters =
                                            nullptr) override;

  /// Inserts (or replaces) `key`, evicting least-recently-used entries of
  /// the shard while it is over capacity. `bytes` is the caller's size
  /// estimate, used only for accounting. `tgd_tag` is ignored: a
  /// memory-only cache is invalidated wholesale via Clear().
  void PutErased(const CacheKey& key, std::shared_ptr<const void> value,
                 size_t bytes, CacheCounters* counters = nullptr,
                 const Fingerprint& tgd_tag = Fingerprint{}) override;

  /// Drops every entry (counters are kept).
  void Clear() override;

  /// Aggregated counters + occupancy across shards.
  OmqCacheStats Stats() const override;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// Test-only: installs a fault injector whose OnCacheInsert hook may
  /// drop inserts (PutErased becomes a no-op for the designated insert —
  /// indistinguishable from an immediate eviction, which callers must
  /// already tolerate). Pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector) override {
    fault_injector_.store(injector, std::memory_order_release);
  }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const void> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    CacheCounters counters;
    size_t bytes = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[CacheKeyHash{}(key) % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

}  // namespace omqc

#endif  // OMQC_CACHE_OMQ_CACHE_H_
