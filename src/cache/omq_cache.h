// OmqCache: a fixed-capacity, sharded, thread-safe LRU cache for compiled
// OMQ artifacts — UCQ rewritings (XRewrite output), ontology
// classifications (src/tgd/classify) and prepared RHS evaluators
// (src/core/containment.cc). Entries are keyed by the 128-bit structural
// fingerprint of the compiled object (src/cache/canonical.h) plus a digest
// of the options that shaped the compilation, so queries equal up to
// variable renaming share one entry and different budgets never alias.
//
// Concurrency: keys hash to one of `shards` independent shards, each with
// its own mutex, LRU list and counters; the parallel containment engine
// shares one OmqCache across all pool workers. Values are immutable
// objects handed out as shared_ptr<const T>; a value stays alive while any
// reader holds it, even after eviction.
//
// The cache never changes semantics: every consumer falls back to a fresh
// compilation on miss (or when the cache pointer is null), and cached
// artifacts are bit-compatible with what the fallback would compute for
// the same key (enforced by tests/cache_integration_test.cc).

#ifndef OMQC_CACHE_OMQ_CACHE_H_
#define OMQC_CACHE_OMQ_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/canonical.h"

namespace omqc {

class FaultInjector;

/// What a cache entry holds. Part of the key: the same fingerprint may
/// cache several artifact kinds side by side.
enum class ArtifactKind : uint8_t {
  kRewriting = 0,       ///< CachedRewriting (cache/cached_ops.h)
  kClassification = 1,  ///< TgdProfile (cache/cached_ops.h)
  kRhsEvaluator = 2,    ///< RhsEvaluator (src/core/containment.cc)
};

struct CacheKey {
  Fingerprint fingerprint;
  uint64_t options_digest = 0;
  ArtifactKind kind = ArtifactKind::kRewriting;

  bool operator==(const CacheKey& other) const {
    return fingerprint == other.fingerprint &&
           options_digest == other.options_digest && kind == other.kind;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    size_t h = FingerprintHash{}(key.fingerprint);
    h ^= (key.options_digest + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    return h ^ (static_cast<size_t>(key.kind) << 1);
  }
};

/// Tallies of cache traffic. Used both per-run (embedded in EngineStats,
/// merged across worker threads) and as the cache-global aggregate.
struct CacheCounters {
  size_t lookups = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t bytes_inserted = 0;

  void Merge(const CacheCounters& other) {
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    bytes_inserted += other.bytes_inserted;
  }

  std::string ToString() const;
};

/// Aggregate snapshot across all shards.
struct OmqCacheStats {
  CacheCounters counters;
  size_t entries = 0;  ///< live entries
  size_t bytes = 0;    ///< approximate bytes held by live entries

  std::string ToString() const;
};

struct OmqCacheConfig {
  /// Total entry capacity, split evenly across shards (each shard holds at
  /// least one entry).
  size_t capacity = 1024;
  /// Number of independently locked shards.
  size_t num_shards = 8;
};

class OmqCache {
 public:
  explicit OmqCache(OmqCacheConfig config = OmqCacheConfig());

  OmqCache(const OmqCache&) = delete;
  OmqCache& operator=(const OmqCache&) = delete;

  /// Looks up `key`, refreshing its LRU position. Returns nullptr on miss.
  /// If `counters` is non-null the lookup is tallied into it as well as
  /// into the cache-global counters.
  std::shared_ptr<const void> GetErased(const CacheKey& key,
                                        CacheCounters* counters = nullptr);

  /// Inserts (or replaces) `key`, evicting least-recently-used entries of
  /// the shard while it is over capacity. `bytes` is the caller's size
  /// estimate, used only for accounting.
  void PutErased(const CacheKey& key, std::shared_ptr<const void> value,
                 size_t bytes, CacheCounters* counters = nullptr);

  /// Typed convenience wrappers. The ArtifactKind in the key is the type
  /// tag: every producer/consumer of a kind must agree on T.
  template <typename T>
  std::shared_ptr<const T> Get(const CacheKey& key,
                               CacheCounters* counters = nullptr) {
    return std::static_pointer_cast<const T>(GetErased(key, counters));
  }
  template <typename T>
  void Put(const CacheKey& key, std::shared_ptr<const T> value, size_t bytes,
           CacheCounters* counters = nullptr) {
    PutErased(key, std::static_pointer_cast<const void>(std::move(value)),
              bytes, counters);
  }

  /// Drops every entry (counters are kept).
  void Clear();

  /// Aggregated counters + occupancy across shards.
  OmqCacheStats Stats() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// Test-only: installs a fault injector whose OnCacheInsert hook may
  /// drop inserts (PutErased becomes a no-op for the designated insert —
  /// indistinguishable from an immediate eviction, which callers must
  /// already tolerate). Pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const void> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    CacheCounters counters;
    size_t bytes = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[CacheKeyHash{}(key) % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

}  // namespace omqc

#endif  // OMQC_CACHE_OMQ_CACHE_H_
