#include "cache/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "base/binary_io.h"
#include "base/string_util.h"

namespace omqc {
namespace {

// ---------------------------------------------------------------------------
// XXH64 (public-domain algorithm), implemented inline to avoid a dependency.

constexpr uint64_t kXxhPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kXxhPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kXxhPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kXxhPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kXxhPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // the build targets little-endian only (see DESIGN.md)
}

inline uint64_t ReadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t XxhRound(uint64_t acc, uint64_t input) {
  acc += input * kXxhPrime2;
  acc = Rotl64(acc, 31);
  return acc * kXxhPrime1;
}

inline uint64_t XxhMergeRound(uint64_t acc, uint64_t val) {
  acc ^= XxhRound(0, val);
  return acc * kXxhPrime1 + kXxhPrime4;
}

}  // namespace

uint64_t Xxh64(const void* data, size_t size, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + size;
  uint64_t h;
  if (size >= 32) {
    uint64_t v1 = seed + kXxhPrime1 + kXxhPrime2;
    uint64_t v2 = seed + kXxhPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kXxhPrime1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = XxhRound(v1, ReadLe64(p));
      v2 = XxhRound(v2, ReadLe64(p + 8));
      v3 = XxhRound(v3, ReadLe64(p + 16));
      v4 = XxhRound(v4, ReadLe64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = XxhMergeRound(h, v1);
    h = XxhMergeRound(h, v2);
    h = XxhMergeRound(h, v3);
    h = XxhMergeRound(h, v4);
  } else {
    h = seed + kXxhPrime5;
  }
  h += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    h ^= XxhRound(0, ReadLe64(p));
    h = Rotl64(h, 27) * kXxhPrime1 + kXxhPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= ReadLe32(p) * kXxhPrime1;
    h = Rotl64(h, 23) * kXxhPrime2 + kXxhPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kXxhPrime5;
    h = Rotl64(h, 11) * kXxhPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kXxhPrime2;
  h ^= h >> 29;
  h *= kXxhPrime3;
  h ^= h >> 32;
  return h;
}

namespace {

// ---------------------------------------------------------------------------
// Format constants. Magics are 4 ASCII bytes read as little-endian u32.

constexpr uint32_t kSegmentMagic = 0x53514D4Fu;   // "OMQS"
constexpr uint32_t kManifestMagic = 0x4D514D4Fu;  // "OMQM"

constexpr uint8_t kRecordArtifact = 1;
constexpr uint8_t kRecordTombstone = 2;

/// Record payloads may be large (a chased instance), but a single record
/// claiming more than this is treated as a tear.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

std::string SegmentHeader() {
  ByteWriter w;
  w.U32(kSegmentMagic);
  w.U32(kSegmentFormatVersion);
  w.U64(kBuildEpoch);
  return w.Take();
}

/// Encodes one artifact record, checksum included. The checksum covers
/// every record byte before it.
std::string EncodeArtifactRecord(const CacheKey& key, const Fingerprint& tag,
                                 uint32_t payload_version,
                                 const std::string& payload) {
  ByteWriter w;
  w.U8(kRecordArtifact);
  w.U64(key.fingerprint.hi);
  w.U64(key.fingerprint.lo);
  w.U64(key.options_digest);
  w.U8(static_cast<uint8_t>(key.kind));
  w.U64(tag.hi);
  w.U64(tag.lo);
  w.U32(payload_version);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload.data(), payload.size());
  w.U64(Xxh64(w.data().data(), w.size()));
  return w.Take();
}

std::string EncodeTombstoneRecord(const Fingerprint& tag) {
  ByteWriter w;
  w.U8(kRecordTombstone);
  w.U64(tag.hi);
  w.U64(tag.lo);
  w.U64(Xxh64(w.data().data(), w.size()));
  return w.Take();
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

}  // namespace

// ---------------------------------------------------------------------------
// PersistentStore

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrCat("cannot create cache dir ", dir, ": ", ec.message()));
  }
  std::unique_ptr<PersistentStore> store(new PersistentStore(dir));

  // The manifest is the source of truth for which segments exist; a
  // missing or bad manifest simply means an empty (or freshly reset)
  // store. Segment files it does not list are leftovers from a crashed
  // flush and are ignored.
  std::string manifest;
  if (ReadWholeFile(dir + "/MANIFEST", &manifest) && manifest.size() >= 8) {
    const size_t body_size = manifest.size() - 8;
    ByteReader check(manifest.data() + body_size, 8);
    if (check.U64() == Xxh64(manifest.data(), body_size)) {
      ByteReader r(manifest.data(), body_size);
      uint32_t magic = r.U32();
      uint32_t version = r.U32();
      uint64_t epoch = r.U64();
      if (magic != kManifestMagic || version != kSegmentFormatVersion ||
          epoch != kBuildEpoch) {
        ++store->version_rejects_;
      } else {
        store->next_segment_id_ = r.U64();
        uint32_t n = r.U32();
        for (uint32_t i = 0; r.ok() && i < n; ++i) {
          std::string name = r.Str();
          if (!r.ok()) break;
          store->segment_names_.push_back(name);
        }
        if (!r.ok()) {
          // Checksummed yet unreadable: a writer bug, not a torn write.
          store->segment_names_.clear();
          store->next_segment_id_ = 0;
          ++store->corrupt_records_;
        }
      }
    } else {
      ++store->corrupt_records_;
    }
  }
  for (const std::string& name : store->segment_names_) {
    store->LoadSegment(dir + "/" + name);
  }
  return store;
}

void PersistentStore::LoadSegment(const std::string& path) {
  std::string bytes;
  if (!ReadWholeFile(path, &bytes)) {
    ++corrupt_records_;
    return;
  }
  ByteReader r(bytes);
  uint32_t magic = r.U32();
  uint32_t version = r.U32();
  uint64_t epoch = r.U64();
  if (!r.ok() || magic != kSegmentMagic) {
    ++corrupt_records_;
    return;
  }
  if (version != kSegmentFormatVersion || epoch != kBuildEpoch) {
    ++version_rejects_;
    return;
  }
  while (!r.AtEnd()) {
    // Checksums cover the record bytes before them; remember where this
    // record starts so the stored hash can be recomputed.
    const size_t start = bytes.size() - r.remaining();
    uint8_t type = r.U8();
    if (type == kRecordArtifact) {
      CacheKey key;
      key.fingerprint.hi = r.U64();
      key.fingerprint.lo = r.U64();
      key.options_digest = r.U64();
      uint8_t kind = r.U8();
      Fingerprint tag;
      tag.hi = r.U64();
      tag.lo = r.U64();
      uint32_t payload_version = r.U32();
      uint32_t payload_len = r.U32();
      if (!r.ok() || payload_len > kMaxRecordPayload ||
          payload_len > r.remaining() ||
          kind > static_cast<uint8_t>(ArtifactKind::kChasedInstance)) {
        ++corrupt_records_;
        return;  // cannot resync past a tear in an append-only file
      }
      auto payload = std::make_shared<std::string>();
      payload->resize(payload_len);
      r.Bytes(payload->data(), payload_len);
      const size_t body_size = (bytes.size() - r.remaining()) - start;
      uint64_t stored = r.U64();
      if (!r.ok() || stored != Xxh64(bytes.data() + start, body_size)) {
        ++corrupt_records_;
        return;
      }
      key.kind = static_cast<ArtifactKind>(kind);
      index_[key] = Entry{std::move(payload), tag, payload_version};
    } else if (type == kRecordTombstone) {
      Fingerprint tag;
      tag.hi = r.U64();
      tag.lo = r.U64();
      const size_t body_size = (bytes.size() - r.remaining()) - start;
      uint64_t stored = r.U64();
      if (!r.ok() || stored != Xxh64(bytes.data() + start, body_size)) {
        ++corrupt_records_;
        return;
      }
      for (auto it = index_.begin(); it != index_.end();) {
        it = it->second.tgd_tag == tag ? index_.erase(it) : std::next(it);
      }
    } else {
      ++corrupt_records_;
      return;
    }
  }
}

std::shared_ptr<const std::string> PersistentStore::Lookup(
    const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  // A foreign payload version is invisible rather than an error: the
  // caller recompiles and overwrites with the current encoding.
  if (it->second.payload_version != kArtifactPayloadVersion) return nullptr;
  return it->second.payload;
}

bool PersistentStore::Contains(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() &&
         it->second.payload_version == kArtifactPayloadVersion;
}

void PersistentStore::Append(const CacheKey& key, const Fingerprint& tgd_tag,
                             uint32_t payload_version, std::string payload) {
  auto shared = std::make_shared<const std::string>(std::move(payload));
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(
      EncodeArtifactRecord(key, tgd_tag, payload_version, *shared));
  index_[key] = Entry{std::move(shared), tgd_tag, payload_version};
}

void PersistentStore::Invalidate(const Fingerprint& tgd_tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = index_.begin(); it != index_.end();) {
    it = it->second.tgd_tag == tgd_tag ? index_.erase(it) : std::next(it);
  }
  pending_.push_back(EncodeTombstoneRecord(tgd_tag));
}

Status PersistentStore::WriteFileDurably(const std::string& final_path,
                                         const std::string& bytes) {
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrCat("open ", tmp_path, ": ", std::strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::Internal(
          StrCat("write ", tmp_path, ": ", std::strerror(saved)));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Internal(StrCat("fsync ", tmp_path));
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Internal(
        StrCat("rename ", final_path, ": ", std::strerror(errno)));
  }
  // Make the rename itself durable.
  int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status PersistentStore::Flush() {
  std::vector<std::string> records;
  std::vector<std::string> segment_names;
  uint64_t segment_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    records.swap(pending_);
    segment_id = next_segment_id_++;
    segment_names = segment_names_;
  }
  std::string name = StrCat("seg-", segment_id, ".omqs");
  std::string bytes = SegmentHeader();
  for (const std::string& rec : records) bytes += rec;
  Status seg = WriteFileDurably(dir_ + "/" + name, bytes);
  if (!seg.ok()) {
    // Put the records back so a later Flush can retry.
    std::lock_guard<std::mutex> lock(mu_);
    records.insert(records.end(), std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
    pending_ = std::move(records);
    return seg;
  }
  segment_names.push_back(name);
  ByteWriter m;
  m.U32(kManifestMagic);
  m.U32(kSegmentFormatVersion);
  m.U64(kBuildEpoch);
  m.U64(segment_id + 1);
  m.U32(static_cast<uint32_t>(segment_names.size()));
  for (const std::string& s : segment_names) m.Str(s);
  m.U64(Xxh64(m.data().data(), m.size()));
  Status man = WriteFileDurably(dir_ + "/MANIFEST", m.data());
  if (!man.ok()) return man;
  std::lock_guard<std::mutex> lock(mu_);
  segment_names_ = std::move(segment_names);
  return Status::OK();
}

PersistentStoreStats PersistentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PersistentStoreStats s;
  s.entries = index_.size();
  s.segments = segment_names_.size();
  s.corrupt_records = corrupt_records_;
  s.version_rejects = version_rejects_;
  s.pending_records = pending_.size();
  return s;
}

// ---------------------------------------------------------------------------
// TieredStore

Result<std::unique_ptr<TieredStore>> TieredStore::Open(
    TieredStoreConfig config) {
  OMQC_ASSIGN_OR_RETURN(std::unique_ptr<PersistentStore> persist,
                        PersistentStore::Open(config.dir));
  return std::unique_ptr<TieredStore>(new TieredStore(
      std::make_unique<OmqCache>(config.l1), std::move(persist)));
}

TieredStore::~TieredStore() { TieredStore::Flush(); }

std::shared_ptr<const void> TieredStore::GetErased(const CacheKey& key,
                                                   CacheCounters* counters) {
  if (auto hit = l1_->GetErased(key, counters)) return hit;
  std::shared_ptr<const std::string> raw = persist_->Lookup(key);
  if (raw == nullptr) return nullptr;
  ByteReader in(*raw);
  Result<DecodedArtifact> decoded = DeserializeArtifact(key.kind, in);
  if (!decoded.ok() || !in.AtEnd()) {
    // The payload passed its checksum yet does not decode — an encoder
    // bug or a version skew the record header missed. Fall back to a
    // cold compile; the recompute overwrites the bad record.
    return nullptr;
  }
  DecodedArtifact artifact = std::move(decoded).value();
  persist_hits_.fetch_add(1, std::memory_order_relaxed);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  if (counters != nullptr) {
    ++counters->persist_hits;
    ++counters->promotions;
  }
  // Promote into L1 so the next lookup skips the decode. Deliberately not
  // re-appended to L2 (it is already there).
  l1_->PutErased(key, artifact.value, artifact.bytes);
  return artifact.value;
}

void TieredStore::PutErased(const CacheKey& key,
                            std::shared_ptr<const void> value, size_t bytes,
                            CacheCounters* counters,
                            const Fingerprint& tgd_tag) {
  l1_->PutErased(key, value, bytes, counters, tgd_tag);
  if (!ArtifactKindPersistable(key.kind)) return;
  if (persist_->Contains(key)) return;  // already durable; skip re-encoding
  ByteWriter out;
  if (!SerializeArtifact(key.kind, value.get(), out)) return;
  persist_->Append(key, tgd_tag, kArtifactPayloadVersion, out.Take());
  persist_writes_.fetch_add(1, std::memory_order_relaxed);
  if (counters != nullptr) ++counters->persist_writes;
}

void TieredStore::InvalidateTgdSet(const Fingerprint& tgd_tag) {
  // L1 entries do not remember their tags; dropping it wholesale is safe
  // (cold lookups refill from L2, which pruned precisely).
  l1_->Clear();
  persist_->Invalidate(tgd_tag);
}

void TieredStore::Clear() { l1_->Clear(); }

OmqCacheStats TieredStore::Stats() const {
  OmqCacheStats stats = l1_->Stats();
  stats.counters.persist_hits = persist_hits_.load(std::memory_order_relaxed);
  stats.counters.persist_writes =
      persist_writes_.load(std::memory_order_relaxed);
  stats.counters.promotions = promotions_.load(std::memory_order_relaxed);
  PersistentStoreStats ps = persist_->stats();
  stats.persist_entries = ps.entries;
  stats.persist_segments = ps.segments;
  stats.persist_corrupt_records = ps.corrupt_records;
  stats.persist_version_rejects = ps.version_rejects;
  return stats;
}

void TieredStore::Flush() {
  Status status = persist_->Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "omqc: cache flush failed: %s\n",
                 status.message().c_str());
  }
}

void TieredStore::set_fault_injector(FaultInjector* injector) {
  l1_->set_fault_injector(injector);
}

}  // namespace omqc
