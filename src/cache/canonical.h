// Isomorphism-invariant canonical forms and 128-bit structural
// fingerprints for CQs, tgds, tgd sets and OMQs — the keying layer of the
// compilation cache (src/cache/omq_cache.h).
//
// Two queries that are equal up to bijective variable renaming (the ≃ of
// Algorithm 1, decided by IsomorphicCQs) receive the *same* canonical form
// and hence the same fingerprint; distinct structures collide only with
// the probability of a 128-bit hash collision. The canonizer runs iterated
// color refinement (1-WL on the query hypergraph: variables are vertices,
// atoms are labeled hyperedges) followed by individualization with
// backtracking for symmetric queries — the classic graph-canonization
// recipe restricted to query hypergraphs. Refinement alone cannot separate
// e.g. a 6-cycle from two 3-cycles; the backtracking tie-break can.
//
// Fingerprints hash predicate and constant *names*, never interned ids, so
// they are stable across processes and interning orders.

#ifndef OMQC_CACHE_CANONICAL_H_
#define OMQC_CACHE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "logic/cq.h"
#include "logic/instance.h"
#include "tgd/tgd.h"

namespace omqc {

/// A 128-bit structural fingerprint. Value type, ordered, hashable.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
  bool operator<(const Fingerprint& other) const {
    if (hi != other.hi) return hi < other.hi;
    return lo < other.lo;
  }

  /// 32 lowercase hex digits.
  std::string ToHex() const;
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical representative of a CQ's ≃-class: variables renumbered
/// x0, x1, ... in canonical order, body atoms sorted and deduplicated.
/// Canonicalization is idempotent: CanonicalizeCQ(c.query).query == c.query.
struct CanonicalCQ {
  ConjunctiveQuery query;
  Fingerprint fingerprint;
};

/// Canonicalizes a CQ. Isomorphic inputs (IsomorphicCQs) yield identical
/// results; the canonical query is ≃-equivalent to the input.
CanonicalCQ CanonicalizeCQ(const ConjunctiveQuery& q);

/// Fingerprint without materializing the canonical query.
Fingerprint FingerprintCQ(const ConjunctiveQuery& q);

/// Order-insensitive fingerprint of a UCQ: the sorted multiset of its
/// disjuncts' fingerprints.
Fingerprint FingerprintUCQ(const UnionOfCQs& ucq);

/// Fingerprint of one tgd, invariant under variable renaming (body and
/// head share one variable scope; body/head membership is part of the
/// structure).
Fingerprint FingerprintTgd(const Tgd& tgd);

/// Order-insensitive fingerprint of a tgd set: the sorted multiset of its
/// tgds' fingerprints. Reordered or per-tgd-renamed ontologies hash
/// identically (a tgd set is semantically a set).
Fingerprint FingerprintTgdSet(const TgdSet& tgds);

/// Fingerprint of a schema: the sorted set of (name, arity) pairs.
Fingerprint FingerprintSchema(const Schema& schema);

/// Fingerprint of an OMQ (S, Σ, q), combining the three component
/// fingerprints. Takes the parts rather than an Omq to keep this layer
/// below src/core.
Fingerprint FingerprintOmqParts(const Schema& data_schema, const TgdSet& tgds,
                                const ConjunctiveQuery& q);

/// Like FingerprintOmqParts with a UCQ query (order-insensitive in the
/// disjuncts).
Fingerprint FingerprintUcqOmqParts(const Schema& data_schema,
                                   const TgdSet& tgds, const UnionOfCQs& ucq);

/// Order-insensitive fingerprint of a null-free database: the sorted
/// multiset of per-fact hashes over predicate and constant *names*. Keys
/// the chase-result cache (the chase of D under Σ is determined by D as a
/// set of facts). Not isomorphism-invariant across constant renamings —
/// constants are named individuals — and not defined for instances with
/// nulls (null ids are process-local; callers pass databases only).
Fingerprint FingerprintDatabase(const Database& db);

}  // namespace omqc

#endif  // OMQC_CACHE_CANONICAL_H_
