// The persistent tier of the artifact cache: a versioned, append-only,
// crash-safe on-disk segment store plus the TieredStore that stacks the
// sharded in-memory LRU (cache/omq_cache.h) in front of it.
//
// On-disk layout (all integers little-endian, see DESIGN.md "Artifact
// store & snapshot format"):
//
//   <dir>/MANIFEST          magic "OMQM", format version, build epoch,
//                           the ordered list of sealed segment names,
//                           XXH64 checksum of everything before it.
//   <dir>/seg-<n>.omqs      magic "OMQS", format version, build epoch,
//                           then a run of records, each carrying its own
//                           XXH64 checksum:
//                             artifact : key {fingerprint, options digest,
//                                        kind} + tgd tag + payload version
//                                        + length-prefixed payload
//                             tombstone: tgd tag (erases every earlier
//                                        artifact carrying that tag)
//
// Durability: segments are sealed by writing to a temp file, fsync'ing,
// renaming into place and fsync'ing the directory; the manifest is
// rewritten the same way afterwards. A crash mid-flush therefore leaves
// either the old manifest (new segment invisible, cache merely colder) or
// the new one (segment fully durable) — never a half-read state.
//
// Robustness: the loader treats segment bytes as untrusted input. A record
// failing its checksum or bounds stops that segment (append-only files
// cannot be resynced past a tear) and is counted in `corrupt_records`; a
// foreign format version or build epoch rejects the file and is counted in
// `version_rejects`. Every failure degrades to a cold compile — opening a
// store never fails on bad segment bytes and never serves a bad artifact.
//
// Laziness: opening a store only indexes raw payload spans. Artifacts are
// decoded (and their terms interned) on first lookup, so loading a large
// store does not touch the process-wide interning tables.

#ifndef OMQC_CACHE_PERSIST_H_
#define OMQC_CACHE_PERSIST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "cache/omq_cache.h"
#include "cache/serialize.h"

namespace omqc {

/// XXH64 of `size` bytes (seed 0). Used for record and manifest checksums;
/// implemented in persist.cc (public-domain algorithm, no dependency).
uint64_t Xxh64(const void* data, size_t size, uint64_t seed = 0);

/// On-disk format version of segments and the manifest. Bump on layout
/// changes; kArtifactPayloadVersion (cache/serialize.h) separately versions
/// the payloads inside records.
constexpr uint32_t kSegmentFormatVersion = 1;

/// Build epoch stamped into segments and the manifest: artifacts encode by
/// name and carry their own payload version, so the epoch only changes
/// when cross-build reuse must be severed wholesale (e.g. a fingerprint
/// function change, which silently re-keys everything).
constexpr uint64_t kBuildEpoch = 1;

struct PersistentStoreStats {
  size_t entries = 0;
  size_t segments = 0;
  size_t corrupt_records = 0;
  size_t version_rejects = 0;
  size_t pending_records = 0;  ///< appended since the last Flush
};

/// The on-disk tier. Thread-safe. Single-writer per directory is assumed
/// (concurrent writers do not corrupt each other — rename is atomic — but
/// the last manifest rewrite wins).
class PersistentStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir` and indexes its
  /// sealed segments. Fails only on filesystem errors (unreachable or
  /// uncreatable directory), never on segment contents.
  static Result<std::unique_ptr<PersistentStore>> Open(const std::string& dir);

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// The raw (still-encoded) payload for `key`, or nullptr. Decoding is
  /// the caller's job — this tier never interns terms.
  std::shared_ptr<const std::string> Lookup(const CacheKey& key) const;

  bool Contains(const CacheKey& key) const;

  /// Stages an artifact record for the next Flush and makes it visible to
  /// Lookup immediately. Last write wins per key.
  void Append(const CacheKey& key, const Fingerprint& tgd_tag,
              uint32_t payload_version, std::string payload);

  /// Drops every entry whose tgd tag equals `tgd_tag` and stages a
  /// tombstone so the drop survives restarts.
  void Invalidate(const Fingerprint& tgd_tag);

  /// Seals pending records into a new segment and rewrites the manifest
  /// (temp + fsync + rename). No-op when nothing is pending.
  Status Flush();

  PersistentStoreStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  explicit PersistentStore(std::string dir) : dir_(std::move(dir)) {}

  struct Entry {
    std::shared_ptr<const std::string> payload;
    Fingerprint tgd_tag;
    uint32_t payload_version = 0;
  };

  void LoadSegment(const std::string& path);
  Status WriteFileDurably(const std::string& final_path,
                          const std::string& bytes);

  const std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> index_;
  /// Staged records, encoded, in append order (tombstones interleaved so
  /// replay order matches the in-memory effect).
  std::vector<std::string> pending_;
  std::vector<std::string> segment_names_;  ///< manifest order
  uint64_t next_segment_id_ = 0;
  size_t corrupt_records_ = 0;
  size_t version_rejects_ = 0;
};

struct TieredStoreConfig {
  OmqCacheConfig l1;
  std::string dir;
};

/// ArtifactStore stacking the in-memory LRU (L1) over a PersistentStore
/// (L2). Lookups fall through L1 misses to L2, decode the stored payload
/// and promote the artifact into L1; inserts go to L1 and (for persistable
/// kinds, deduplicated by key) are appended to L2. Artifact semantics are
/// unchanged: L2 only ever holds payloads written for saturated artifacts,
/// and a decoded artifact is observationally identical to the cold-computed
/// one, so verdicts are byte-identical cold vs warm vs cross-process.
class TieredStore : public ArtifactStore {
 public:
  static Result<std::unique_ptr<TieredStore>> Open(TieredStoreConfig config);

  /// Flushes the persistent tier (crash after destruction loses nothing
  /// that was inserted before it).
  ~TieredStore() override;

  std::shared_ptr<const void> GetErased(const CacheKey& key,
                                        CacheCounters* counters =
                                            nullptr) override;
  void PutErased(const CacheKey& key, std::shared_ptr<const void> value,
                 size_t bytes, CacheCounters* counters = nullptr,
                 const Fingerprint& tgd_tag = Fingerprint{}) override;

  /// Drops L1 wholesale (entries do not remember their tags) and exactly
  /// the on-disk artifacts compiled from the tgd set with this
  /// fingerprint. Artifacts of unchanged ontologies stay warm.
  void InvalidateTgdSet(const Fingerprint& tgd_tag);

  void Clear() override;
  OmqCacheStats Stats() const override;
  void Flush() override;
  void set_fault_injector(FaultInjector* injector) override;

  OmqCache* l1() { return l1_.get(); }
  PersistentStore* persist() { return persist_.get(); }

 private:
  TieredStore(std::unique_ptr<OmqCache> l1,
              std::unique_ptr<PersistentStore> persist)
      : l1_(std::move(l1)), persist_(std::move(persist)) {}

  std::unique_ptr<OmqCache> l1_;
  std::unique_ptr<PersistentStore> persist_;
  std::atomic<size_t> persist_hits_{0};
  std::atomic<size_t> persist_writes_{0};
  std::atomic<size_t> promotions_{0};
};

}  // namespace omqc

#endif  // OMQC_CACHE_PERSIST_H_
