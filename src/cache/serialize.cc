#include "cache/serialize.h"

#include <utility>

#include "cache/cached_ops.h"
#include "logic/instance.h"
#include "logic/serialize.h"

namespace omqc {
namespace {

void SerializeXRewriteStats(const XRewriteStats& s, ByteWriter& out) {
  out.U64(s.rewriting_steps);
  out.U64(s.factorization_steps);
  out.U64(s.queries_generated);
  out.U64(s.max_disjunct_atoms);
  out.U64(s.dedup_hits);
  out.U64(s.subsumption_prunes);
}

XRewriteStats DeserializeXRewriteStats(ByteReader& in) {
  XRewriteStats s;
  s.rewriting_steps = in.U64();
  s.factorization_steps = in.U64();
  s.queries_generated = in.U64();
  s.max_disjunct_atoms = in.U64();
  s.dedup_hits = in.U64();
  s.subsumption_prunes = in.U64();
  return s;
}

Result<DecodedArtifact> DecodeRewriting(ByteReader& in) {
  auto entry = std::make_shared<CachedRewriting>();
  OMQC_ASSIGN_OR_RETURN(entry->ucq, DeserializeUCQ(in));
  entry->compute_stats = DeserializeXRewriteStats(in);
  if (!in.ok()) return Status::InvalidArgument("truncated rewriting stats");
  size_t bytes = ApproxBytes(entry->ucq);
  return DecodedArtifact{std::move(entry), bytes};
}

Result<DecodedArtifact> DecodeProfile(ByteReader& in) {
  auto profile = std::make_shared<TgdProfile>();
  uint8_t primary = in.U8();
  uint8_t flags = in.U8();
  if (!in.ok() || primary > static_cast<uint8_t>(TgdClass::kGeneral) ||
      (flags & ~0x1Fu) != 0) {
    return Status::InvalidArgument("bad tgd profile");
  }
  profile->primary = static_cast<TgdClass>(primary);
  profile->linear = (flags & 0x01) != 0;
  profile->guarded = (flags & 0x02) != 0;
  profile->full = (flags & 0x04) != 0;
  profile->non_recursive = (flags & 0x08) != 0;
  profile->sticky = (flags & 0x10) != 0;
  return DecodedArtifact{std::move(profile), sizeof(TgdProfile)};
}

Result<DecodedArtifact> DecodeChase(ByteReader& in) {
  auto chase = std::make_shared<CachedChase>();
  OMQC_ASSIGN_OR_RETURN(chase->instance, Instance::Restore(in));
  size_t bytes = chase->instance.MemoryBytes();
  return DecodedArtifact{std::move(chase), bytes};
}

}  // namespace

bool ArtifactKindPersistable(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kRewriting:
    case ArtifactKind::kClassification:
    case ArtifactKind::kChasedInstance:
      return true;
    case ArtifactKind::kRhsEvaluator:
      return false;
  }
  return false;
}

void SerializeFingerprint(const Fingerprint& fp, ByteWriter& out) {
  out.U64(fp.hi);
  out.U64(fp.lo);
}

Fingerprint DeserializeFingerprint(ByteReader& in) {
  Fingerprint fp;
  fp.hi = in.U64();
  fp.lo = in.U64();
  return fp;
}

bool SerializeArtifact(ArtifactKind kind, const void* value, ByteWriter& out) {
  switch (kind) {
    case ArtifactKind::kRewriting: {
      const auto* entry = static_cast<const CachedRewriting*>(value);
      SerializeUCQ(entry->ucq, out);
      SerializeXRewriteStats(entry->compute_stats, out);
      return true;
    }
    case ArtifactKind::kClassification: {
      const auto* profile = static_cast<const TgdProfile*>(value);
      out.U8(static_cast<uint8_t>(profile->primary));
      uint8_t flags = 0;
      if (profile->linear) flags |= 0x01;
      if (profile->guarded) flags |= 0x02;
      if (profile->full) flags |= 0x04;
      if (profile->non_recursive) flags |= 0x08;
      if (profile->sticky) flags |= 0x10;
      out.U8(flags);
      return true;
    }
    case ArtifactKind::kChasedInstance: {
      const auto* chase = static_cast<const CachedChase*>(value);
      chase->instance.Snapshot(out);
      return true;
    }
    case ArtifactKind::kRhsEvaluator:
      return false;
  }
  return false;
}

Result<DecodedArtifact> DeserializeArtifact(ArtifactKind kind,
                                            ByteReader& in) {
  switch (kind) {
    case ArtifactKind::kRewriting:
      return DecodeRewriting(in);
    case ArtifactKind::kClassification:
      return DecodeProfile(in);
    case ArtifactKind::kChasedInstance:
      return DecodeChase(in);
    case ArtifactKind::kRhsEvaluator:
      break;
  }
  return Status::InvalidArgument("artifact kind has no on-disk form");
}

}  // namespace omqc
