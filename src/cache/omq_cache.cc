#include "cache/omq_cache.h"

#include <algorithm>

#include "base/fault_injection.h"

namespace omqc {

OmqCache::OmqCache(OmqCacheConfig config)
    : capacity_(std::max<size_t>(config.capacity, 1)) {
  size_t num_shards =
      std::min(std::max<size_t>(config.num_shards, 1), capacity_);
  per_shard_capacity_ = (capacity_ + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const void> OmqCache::GetErased(const CacheKey& key,
                                                CacheCounters* counters) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.counters.lookups;
  if (counters != nullptr) ++counters->lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.counters.misses;
    if (counters != nullptr) ++counters->misses;
    return nullptr;
  }
  // Refresh: move to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.counters.hits;
  if (counters != nullptr) ++counters->hits;
  return it->second->value;
}

void OmqCache::PutErased(const CacheKey& key, std::shared_ptr<const void> value,
                         size_t bytes, CacheCounters* counters,
                         const Fingerprint& /*tgd_tag*/) {
  if (FaultInjector* fi = fault_injector_.load(std::memory_order_acquire)) {
    // A dropped insert is indistinguishable from an immediate eviction:
    // the caller keeps its freshly computed value, only reuse is lost.
    if (fi->OnCacheInsert()) return;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.bytes += bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value), bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.counters.insertions;
  shard.counters.bytes_inserted += bytes;
  if (counters != nullptr) {
    ++counters->insertions;
    counters->bytes_inserted += bytes;
  }
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.counters.evictions;
    if (counters != nullptr) ++counters->evictions;
  }
}

void OmqCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

OmqCacheStats OmqCache::Stats() const {
  OmqCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.counters.Merge(shard->counters);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

size_t OmqCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace omqc
