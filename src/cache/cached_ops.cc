#include "cache/cached_ops.h"

#include <utility>
#include <vector>

namespace omqc {
namespace {

uint64_t DigestCombine(uint64_t h, uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2))) *
         0x00000100000001b3ULL;
}

TgdProfile ComputeProfile(const TgdSet& tgds) {
  TgdProfile p;
  if (tgds.empty()) {
    p.primary = TgdClass::kEmpty;
    p.full = true;
    p.non_recursive = true;
    return p;
  }
  p.linear = IsLinear(tgds);
  p.guarded = IsGuarded(tgds);
  p.full = IsFull(tgds);
  p.non_recursive = IsNonRecursive(tgds);
  p.sticky = IsSticky(tgds);
  // Same preference order as PrimaryClass (UCQ-rewritable and cheaper
  // first): L > NR > S > G > F.
  if (p.linear) {
    p.primary = TgdClass::kLinear;
  } else if (p.non_recursive) {
    p.primary = TgdClass::kNonRecursive;
  } else if (p.sticky) {
    p.primary = TgdClass::kSticky;
  } else if (p.guarded) {
    p.primary = TgdClass::kGuarded;
  } else if (p.full) {
    p.primary = TgdClass::kFull;
  } else {
    p.primary = TgdClass::kGeneral;
  }
  return p;
}

size_t ApproxBytes(const ConjunctiveQuery& q) {
  size_t bytes = sizeof(ConjunctiveQuery);
  bytes += q.answer_vars.size() * sizeof(Term);
  for (const Atom& a : q.body) {
    bytes += sizeof(Atom) + a.args.size() * sizeof(Term);
  }
  return bytes;
}

}  // namespace

TgdProfile GetTgdProfile(ArtifactStore* cache, const TgdSet& tgds,
                         CacheCounters* counters) {
  if (cache == nullptr) return ComputeProfile(tgds);
  Fingerprint tgd_tag = FingerprintTgdSet(tgds);
  CacheKey key{tgd_tag, 0, ArtifactKind::kClassification};
  if (auto hit = cache->Get<TgdProfile>(key, counters)) return *hit;
  auto profile = std::make_shared<TgdProfile>(ComputeProfile(tgds));
  TgdProfile result = *profile;
  cache->Put(key, std::shared_ptr<const TgdProfile>(std::move(profile)),
             sizeof(TgdProfile), counters, tgd_tag);
  return result;
}

uint64_t XRewriteOptionsDigest(const XRewriteOptions& options) {
  // Deliberately excludes options.governor: the rewriting a saturated run
  // produces is independent of how the run was governed, and keying on a
  // per-request pointer would defeat cross-request sharing (and tempt the
  // cache into holding a dangling pointer).
  uint64_t h = 0xa0761d6478bd642fULL;
  h = DigestCombine(h, options.max_queries);
  h = DigestCombine(h, options.max_steps);
  h = DigestCombine(h, options.max_group_size);
  h = DigestCombine(h, options.minimize_disjuncts ? 1 : 0);
  h = DigestCombine(h, options.prune_subsumed ? 1 : 0);
  return h;
}

CacheKey RewritingCacheKey(const Schema& data_schema, const TgdSet& tgds,
                           const ConjunctiveQuery& q,
                           const XRewriteOptions& options) {
  return CacheKey{FingerprintOmqParts(data_schema, tgds, q),
                  XRewriteOptionsDigest(options), ArtifactKind::kRewriting};
}

CacheKey ChaseCacheKey(const Database& db, const TgdSet& tgds,
                       uint64_t chase_options_digest) {
  Fingerprint d = FingerprintDatabase(db);
  Fingerprint t = FingerprintTgdSet(tgds);
  // Pairwise-combine the two 128-bit fingerprints (order-sensitive: the
  // database and ontology roles are distinct).
  Fingerprint fp;
  fp.hi = DigestCombine(DigestCombine(d.hi, t.hi), 0xC0DEC0DE01ULL);
  fp.lo = DigestCombine(DigestCombine(d.lo, t.lo), 0xC0DEC0DE02ULL);
  return CacheKey{fp, chase_options_digest, ArtifactKind::kChasedInstance};
}

size_t ApproxBytes(const UnionOfCQs& ucq) {
  size_t bytes = sizeof(UnionOfCQs);
  for (const ConjunctiveQuery& d : ucq.disjuncts) bytes += ApproxBytes(d);
  return bytes;
}

Result<std::shared_ptr<const UnionOfCQs>> CachedXRewrite(
    ArtifactStore* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    XRewriteStats* stats, CacheCounters* counters) {
  if (cache == nullptr) {
    OMQC_ASSIGN_OR_RETURN(UnionOfCQs rewriting,
                          XRewrite(data_schema, tgds, q, options, stats));
    return std::make_shared<const UnionOfCQs>(std::move(rewriting));
  }
  CacheKey key = RewritingCacheKey(data_schema, tgds, q, options);
  if (auto hit = cache->Get<CachedRewriting>(key, counters)) {
    // No rewriting work was performed, so `stats` stays untouched (the
    // hit itself shows up in `counters`).
    // Aliasing constructor: share ownership of the entry, expose the UCQ.
    return std::shared_ptr<const UnionOfCQs>(hit, &hit->ucq);
  }
  auto computed = std::make_shared<CachedRewriting>();
  OMQC_ASSIGN_OR_RETURN(
      computed->ucq,
      XRewrite(data_schema, tgds, q, options, &computed->compute_stats));
  if (stats != nullptr) stats->Merge(computed->compute_stats);
  std::shared_ptr<const CachedRewriting> entry = std::move(computed);
  cache->Put(key, entry, ApproxBytes(entry->ucq), counters,
             FingerprintTgdSet(tgds));
  return std::shared_ptr<const UnionOfCQs>(entry, &entry->ucq);
}

Result<RewriteEnumeration> CachedEnumerateRewritings(
    ArtifactStore* cache, const Schema& data_schema, const TgdSet& tgds,
    const ConjunctiveQuery& q, const XRewriteOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& on_disjunct,
    XRewriteStats* stats, CacheCounters* counters) {
  if (cache == nullptr) {
    return EnumerateRewritings(data_schema, tgds, q, options, on_disjunct,
                               stats);
  }
  CacheKey key = RewritingCacheKey(data_schema, tgds, q, options);
  if (auto hit = cache->Get<CachedRewriting>(key, counters)) {
    for (const ConjunctiveQuery& d : hit->ucq.disjuncts) {
      if (!on_disjunct(d)) return RewriteEnumeration::kStopped;
    }
    return RewriteEnumeration::kSaturated;
  }
  auto collected = std::make_shared<CachedRewriting>();
  auto wrapped = [&collected, &on_disjunct](const ConjunctiveQuery& d) {
    collected->ucq.disjuncts.push_back(d);
    return on_disjunct(d);
  };
  OMQC_ASSIGN_OR_RETURN(
      RewriteEnumeration outcome,
      EnumerateRewritings(data_schema, tgds, q, options, wrapped,
                          &collected->compute_stats));
  if (stats != nullptr) stats->Merge(collected->compute_stats);
  if (outcome == RewriteEnumeration::kSaturated) {
    size_t bytes = ApproxBytes(collected->ucq);
    cache->Put<CachedRewriting>(key, std::move(collected), bytes, counters,
                                FingerprintTgdSet(tgds));
  }
  return outcome;
}

}  // namespace omqc
