// omqc: Containment for Rule-Based Ontology-Mediated Queries (PODS'18).
//
// Status and Result<T>: exception-free error propagation for all fallible
// library operations, in the style used by Arrow / RocksDB.

#ifndef OMQC_BASE_STATUS_H_
#define OMQC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace omqc {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (parse error, ill-formed tgd, arity mismatch...).
  kInvalidArgument,
  /// A resource budget (chase depth, rewriting size, automaton states,
  /// witness search, governor memory budget) was exhausted before an exact
  /// answer was reached.
  kResourceExhausted,
  /// The request's wall-clock deadline passed before completion
  /// (ResourceGovernor; see base/governor.h).
  kDeadlineExceeded,
  /// The request was cancelled through its CancellationToken before
  /// completion (base/governor.h).
  kCancelled,
  /// The requested combination is not supported (e.g. asking for a UCQ
  /// rewriting of a non-UCQ-rewritable OMQ language).
  kUnsupported,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// A lookup failed (unknown predicate, missing disjunct...).
  kNotFound,
};

/// Human-readable name of a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value. Undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

/// Propagates a non-OK Status from an expression returning Status.
#define OMQC_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::omqc::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a Result<T> expression and binds its value, propagating errors.
#define OMQC_ASSIGN_OR_RETURN(lhs, expr)     \
  auto OMQC_CONCAT_(_res_, __LINE__) = (expr);          \
  if (!OMQC_CONCAT_(_res_, __LINE__).ok())              \
    return OMQC_CONCAT_(_res_, __LINE__).status();      \
  lhs = std::move(OMQC_CONCAT_(_res_, __LINE__)).value()

#define OMQC_CONCAT_INNER_(a, b) a##b
#define OMQC_CONCAT_(a, b) OMQC_CONCAT_INNER_(a, b)

}  // namespace omqc

#endif  // OMQC_BASE_STATUS_H_
