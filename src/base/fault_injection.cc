#include "base/fault_injection.h"

#include <chrono>
#include <thread>

namespace omqc {

void FaultInjector::OnWorkerTask(size_t worker_index) {
  if (plan_.stall_worker < 0 ||
      worker_index != static_cast<size_t>(plan_.stall_worker)) {
    return;
  }
  MarkFired();
  std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_millis));
}

}  // namespace omqc
