#include "base/fault_injection.h"

#include <chrono>
#include <thread>

#include "base/rng.h"

namespace omqc {

FaultPlan RandomFaultPlan(SplitMix64& rng) {
  FaultPlan plan;
  plan.seed = rng.state();
  switch (rng.Below(4)) {
    case 0:
      plan.deadline_at_check = rng.Between(1, 4000);
      break;
    case 1:
      plan.cancel_at_check = rng.Between(1, 4000);
      break;
    case 2:
      plan.memory_at_charge = rng.Between(1, 256);
      break;
    default:
      break;  // one in four plans is fault-free (control group)
  }
  if (rng.Chance(25)) plan.fail_insert_at = rng.Between(1, 16);
  return plan;
}

void FaultInjector::OnWorkerTask(size_t worker_index) {
  if (plan_.stall_worker < 0 ||
      worker_index != static_cast<size_t>(plan_.stall_worker)) {
    return;
  }
  MarkFired();
  std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_millis));
}

}  // namespace omqc
