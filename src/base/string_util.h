// String helpers shared across omqc modules.

#ifndef OMQC_BASE_STRING_UTIL_H_
#define OMQC_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace omqc {

/// Joins the elements of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Joins `items` with `sep`, stringifying each item with `fn`.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// printf-lite: concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace omqc

#endif  // OMQC_BASE_STRING_UTIL_H_
