#include "base/json_writer.h"

#include <cassert>
#include <cstdio>

namespace omqc {

std::string JsonWriter::Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::Comma() {
  assert(!has_value_.empty());
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  out_ += Quote(key);
  out_ += ':';
}

void JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  has_value_.push_back(false);
}

void JsonWriter::BeginObject(std::string_view key) {
  Key(key);
  out_ += '{';
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(has_value_.size() > 1);
  has_value_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  has_value_.push_back(false);
}

void JsonWriter::BeginArray(std::string_view key) {
  Key(key);
  out_ += '[';
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(has_value_.size() > 1);
  has_value_.pop_back();
  out_ += ']';
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  out_ += Quote(value);
}

void JsonWriter::Field(std::string_view key, const char* value) {
  Field(key, std::string_view(value));
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(std::string_view key, int value) {
  Field(key, static_cast<int64_t>(value));
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::Value(std::string_view value) {
  Comma();
  out_ += Quote(value);
}

void JsonWriter::Value(uint64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::Value(double value) {
  Comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::RawField(std::string_view key, std::string_view json) {
  Key(key);
  out_ += json;
}

}  // namespace omqc
