// SplitMix64: the one seedable random stream of the repo.
//
// Everything that wants randomness — the scenario factory, the random OMQ
// generators, fault-plan draws, client backoff jitter — takes a SplitMix64
// *by value*. Value semantics make determinism local: a callee advances
// its own copy, so inserting or removing a consumer in one code path can
// never shift the draws seen by another, and a (seed, index) pair alone
// reproduces an instance bit-for-bit across platforms (the generator is
// pure 64-bit integer arithmetic; no libstdc++/libc++ distribution
// divergence as with std::mt19937 + std::uniform_int_distribution).
//
// Streams: Fork(i) derives the i-th decorrelated child stream without
// advancing the parent — the soak runner forks one stream per scenario id
// so scenarios are independently reproducible.

#ifndef OMQC_BASE_RNG_H_
#define OMQC_BASE_RNG_H_

#include <cstdint>

namespace omqc {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits (Steele, Lea & Flood's SplitMix64 finalizer).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish draw in [0, bound); 0 for bound == 0. The modulo bias is
  /// ~bound/2^64 — irrelevant for workload shaping, and kept because the
  /// exact draw sequence is part of the determinism contract.
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  /// Draw in [lo, hi] (inclusive); requires lo <= hi.
  uint64_t Between(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// True with probability `percent`/100.
  bool Chance(uint32_t percent) { return Below(100) < percent; }

  /// The i-th child stream: deterministic, does not advance this stream,
  /// and decorrelated from it (the child's first output already passes
  /// through the full finalizer).
  SplitMix64 Fork(uint64_t stream) const {
    SplitMix64 child(state_ ^ (0xbf58476d1ce4e5b9ULL * (stream + 1)));
    child.Next();  // burn one output so child 0 != a copy of the parent
    return child;
  }

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

}  // namespace omqc

#endif  // OMQC_BASE_RNG_H_
