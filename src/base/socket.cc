#include "base/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "base/string_util.h"

namespace omqc {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrCat(what, ": ", strerror(errno)));
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (address.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("bad listen address: ", address));
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 128) != 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<OwnedFd> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return OwnedFd(fd);
    }
    if (errno == EINTR) continue;
    // EINVAL / EBADF: the listener was shut down or closed — the orderly
    // way another thread stops the accept loop.
    if (errno == EINVAL || errno == EBADF) {
      return Status::Cancelled("listening socket shut down");
    }
    return Errno("accept");
  }
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string node = (host.empty() || host == "localhost") ? "127.0.0.1"
                                                           : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("bad host: ", host));
  }
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("connect");
  }
}

Result<std::pair<OwnedFd, OwnedFd>> StreamSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair");
  }
  return std::make_pair(OwnedFd(fds[0]), OwnedFd(fds[1]));
}

Status WriteFull(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0) return Status::Cancelled("connection closed");
      return Status::InvalidArgument("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace omqc
