// ResourceGovernor: one object that bounds an entire request end-to-end.
//
// A governor carries three independent limits —
//   * a wall-clock deadline,
//   * a cooperative cancellation token, and
//   * a byte-accounted memory budget —
// and is threaded by pointer through every layer's options struct
// (ChaseOptions, XRewriteOptions, HomomorphismOptions, DownwardOptions,
// EvalOptions, ContainmentOptions). A null governor pointer means
// "unbounded" everywhere and costs nothing.
//
// Check-site contract (see DESIGN.md "Governor check-site placement"):
// inner loops call Check() at a stride matched to their per-iteration
// cost; allocation-heavy layers additionally call ChargeBytes for large
// materializations (chase atoms, rewriting disjuncts). Check() is built
// to be cheap enough for hot loops: one relaxed atomic load when not
// tripped, with the clock sampled only every kClockStride-th check.
//
// Trips are *sticky*: once any limit is exceeded the governor latches the
// trip status and every subsequent Check()/ChargeBytes from any thread
// returns it, so all workers of a parallel run wind down after the first
// observation. Layers translate a trip into their local tri-state
// degradation (kExhausted / truncated / kUnknown) — a trip may remove
// information but never flips a definite answer.
//
// Parent/child linkage: a child governor shares the parent's limits by
// consultation (the child's Check also checks the parent) but owns its own
// token, so an engine can cancel its in-flight workers (e.g. containment
// found a refuting disjunct) without cancelling the caller's request.
// Counters always accumulate at the root, so EngineStats reflects the
// whole request no matter how many internal children were layered on.
// Byte charges accumulate at *every* level of the chain, and each level's
// memory budget bounds its own subtree total — this is what lets the
// server (src/server) layer per-tenant quotas between a request's governor
// and the server-wide one: a tenant quota trips on the tenant's own
// in-flight bytes, not on the server-wide total.

#ifndef OMQC_BASE_GOVERNOR_H_
#define OMQC_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "base/status.h"

namespace omqc {

class FaultInjector;

/// A thread-safe cancellation flag. Cancellation is cooperative: setting
/// the token does not interrupt anything by itself; workers observe it at
/// their next governor check and unwind with partial results.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Governor trip/activity counters, exported into EngineStats. All fields
/// are monotone snapshots of one shared source, so Merge takes the
/// element-wise max (summing would double-count the same governor seen
/// through several workers' stats).
struct GovernorCounters {
  uint64_t checks = 0;
  uint64_t deadline_trips = 0;
  uint64_t cancel_trips = 0;
  uint64_t memory_trips = 0;

  void Merge(const GovernorCounters& other);
  bool any_trip() const {
    return deadline_trips + cancel_trips + memory_trips > 0;
  }
};

/// See file comment. All methods are thread-safe.
class ResourceGovernor {
 public:
  using Clock = std::chrono::steady_clock;

  /// An unbounded root governor: no deadline, no memory budget, its own
  /// token. Limits are attached with the setters below before the request
  /// starts; setting them mid-flight is not supported (Cancel is).
  ResourceGovernor() = default;

  /// A child governor layered over `parent` (may be null, yielding a
  /// root). The child has its own token — Cancel() on the child does not
  /// touch the parent — but consults the parent's deadline, token, and
  /// memory budget on every check, and forwards counters and byte charges
  /// to the root.
  explicit ResourceGovernor(ResourceGovernor* parent) : parent_(parent) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Sets the deadline to now + `budget`.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            (Clock::now() + budget).time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  /// Caps ChargeBytes accounting at `bytes` (0 = unlimited).
  void set_memory_budget(size_t bytes) {
    memory_budget_.store(bytes, std::memory_order_release);
  }

  /// Cancels this governor's own token.
  void Cancel() { token_.Cancel(); }
  CancellationToken& token() { return token_; }

  /// Hot-path probe. Returns OK until a limit is exceeded, then the trip
  /// status (sticky, identical from every thread). Cost when untripped:
  /// one relaxed load plus, every kClockStride-th call, a clock read.
  Status Check();

  /// Accounts `bytes` at this governor and every ancestor, then checks
  /// each level's budget against that level's own total. Returns the trip
  /// status if any budget is or becomes exceeded. The caller keeps
  /// whatever it already materialized — the charge failing means "stop
  /// growing", not "roll back".
  Status ChargeBytes(size_t bytes);

  /// Returns previously charged bytes (e.g. a scratch structure freed
  /// mid-request) at this governor and every ancestor, saturating at zero
  /// per level (a request that tripped mid-charge may release more than
  /// was accounted; the chain must never wrap). Never un-trips a tripped
  /// governor.
  void ReleaseBytes(size_t bytes);

  /// The sticky trip status: OK if not tripped.
  Status TripStatus() const;
  bool tripped() const {
    return trip_code_.load(std::memory_order_acquire) !=
           static_cast<int>(StatusCode::kOk);
  }

  /// Bytes currently accounted at this governor's root (the whole tree).
  size_t charged_bytes() const {
    return root()->charged_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes currently accounted at *this* level (this governor's subtree
  /// only). Equal to charged_bytes() for a root. The server uses this to
  /// return a finished request's residual charges to the tenant chain.
  size_t local_charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the root's counters.
  GovernorCounters counters() const;

  /// Test-only: installs a fault injector consulted on every check and
  /// charge. Pass nullptr to detach. The injector must outlive its use.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
    // Sticky hint at the root so ungoverned-by-injector runs skip the
    // chain walk entirely; detaching leaves the hint set (tests only).
    if (injector != nullptr) {
      root()->injector_hint_.store(true, std::memory_order_release);
    }
  }

  /// How often Check() samples the wall clock (every Nth call).
  static constexpr uint64_t kClockStride = 16;

 private:
  const ResourceGovernor* root() const {
    const ResourceGovernor* g = this;
    while (g->parent_ != nullptr) g = g->parent_;
    return g;
  }
  ResourceGovernor* root() {
    ResourceGovernor* g = this;
    while (g->parent_ != nullptr) g = g->parent_;
    return g;
  }

  /// Latches `code` as the sticky trip (first writer wins) and bumps the
  /// matching root counter. Returns the effective trip status.
  Status Trip(StatusCode code, const char* detail);

  /// Latches an *inherited* trip (first observed on an ancestor, which
  /// already counted it) without bumping counters.
  Status Latch(StatusCode code, const char* detail);

  /// First fault injector installed on this governor or an ancestor.
  FaultInjector* InjectorInChain() const;

  ResourceGovernor* parent_ = nullptr;
  CancellationToken token_;

  /// Deadline as steady-clock nanoseconds since epoch; 0 = none.
  std::atomic<int64_t> deadline_ns_{0};
  /// Memory cap in bytes; 0 = unlimited. Charges accumulate at every
  /// level of the chain; each budget bounds its own subtree.
  std::atomic<size_t> memory_budget_{0};
  std::atomic<size_t> charged_bytes_{0};

  /// Sticky trip state, stored as int(StatusCode). kOk = not tripped.
  std::atomic<int> trip_code_{static_cast<int>(StatusCode::kOk)};
  /// Static-lifetime detail string for the latched trip (may briefly lag
  /// trip_code_; readers fall back to a canonical message).
  std::atomic<const char*> trip_detail_{nullptr};

  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> deadline_trips_{0};
  std::atomic<uint64_t> cancel_trips_{0};
  std::atomic<uint64_t> memory_trips_{0};

  std::atomic<FaultInjector*> fault_injector_{nullptr};
  /// Root-level "an injector was attached somewhere in this tree" hint;
  /// lets the hot path skip InjectorInChain() in production runs.
  std::atomic<bool> injector_hint_{false};
};

/// Maps a budget-style degradation to the governor's trip status when the
/// governor (possibly null) actually tripped, else returns `fallback`.
/// Lets call sites report "deadline exceeded" instead of a generic
/// "budget exhausted" when the governor was the cause.
Status TripStatusOr(const ResourceGovernor* governor, Status fallback);

}  // namespace omqc

#endif  // OMQC_BASE_GOVERNOR_H_
