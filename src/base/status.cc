#include "base/status.h"

namespace omqc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace omqc
