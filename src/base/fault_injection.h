// Deterministic fault injection for the robustness test harness.
//
// A FaultPlan is a declarative, seedable description of *when* a fault
// fires ("trip the deadline at the Nth governor check", "fail the Kth
// cache insert", "stall worker i"); a FaultInjector compiles the plan into
// thread-safe hooks that the production code consults at its existing
// check sites. The hooks are test-only in the sense that nothing installs
// an injector outside tests — the consult points themselves are compiled
// in unconditionally and cost one relaxed atomic load when no injector is
// installed.
//
// Determinism: every trigger is expressed in *logical* event counts
// (governor checks, byte charges, cache inserts), never in wall-clock
// time, so a single-threaded replay of the same workload fires the same
// fault at the same point. Under worker threads the global event order
// may vary, but whether the fault fires (given enough events) and what it
// injects do not — which is exactly what the chaos suite
// (tests/fault_injection_test.cc) needs to assert outcome soundness.

#ifndef OMQC_BASE_FAULT_INJECTION_H_
#define OMQC_BASE_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "base/status.h"

namespace omqc {

/// A declarative fault schedule. Zero/negative values mean "never".
/// All indices are 1-based logical event counts.
struct FaultPlan {
  /// Free-form seed recorded with the plan, so randomized chaos sweeps can
  /// reproduce a failing plan from its log line.
  uint64_t seed = 0;
  /// Trip the governor with kDeadlineExceeded at this governor check.
  uint64_t deadline_at_check = 0;
  /// Trip the governor with kCancelled at this governor check.
  uint64_t cancel_at_check = 0;
  /// Trip the governor with kResourceExhausted (memory) at this byte
  /// charge (ResourceGovernor::ChargeBytes call).
  uint64_t memory_at_charge = 0;
  /// Drop this cache insert (OmqCache::PutErased call) on the floor.
  uint64_t fail_insert_at = 0;
  /// Drop this admission-queue batch (AdmissionQueue dispatch, 1-based):
  /// every request riding the batch is completed with kCancelled instead
  /// of executing; the queue must stay serviceable and all tenant/governor
  /// accounting must be returned (tests/server_test.cc).
  uint64_t drop_batch_at = 0;
  /// Stall the ThreadPool worker with this index (-1 = none) for
  /// `stall_millis` at the start of each task it picks up.
  int stall_worker = -1;
  uint64_t stall_millis = 0;
};

class SplitMix64;

/// Draws a randomized plan for chaos sweeps from `rng`: at most one
/// governor-level fault (deadline trip, cancellation, or memory-charge
/// failure) plus an independent chance of a dropped cache insert. Batch
/// drops and worker stalls are left to dedicated tests — they change
/// *which* requests run, not just their outcomes, which would make
/// differential soak verdicts depend on the plan. The drawn plan records
/// the rng state it was derived from in `seed` so a failing sweep
/// iteration reproduces from its log line.
FaultPlan RandomFaultPlan(SplitMix64& rng);

/// Compiles a FaultPlan into hooks. All hooks are thread-safe; event
/// counters are global across threads (atomic), so indices refer to the
/// interleaved event order. One injector instance serves one faulted run.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Consulted by ResourceGovernor::Check with the 1-based check index.
  /// Returns the StatusCode to trip with, or kOk for "no fault here".
  StatusCode OnGovernorCheck(uint64_t check_index) {
    if (plan_.deadline_at_check != 0 &&
        check_index == plan_.deadline_at_check) {
      MarkFired();
      return StatusCode::kDeadlineExceeded;
    }
    if (plan_.cancel_at_check != 0 && check_index == plan_.cancel_at_check) {
      MarkFired();
      return StatusCode::kCancelled;
    }
    return StatusCode::kOk;
  }

  /// Consulted by ResourceGovernor::ChargeBytes with the 1-based charge
  /// index. Returns true when this charge must fail as a memory trip.
  bool OnMemoryCharge(uint64_t charge_index) {
    if (plan_.memory_at_charge != 0 &&
        charge_index == plan_.memory_at_charge) {
      MarkFired();
      return true;
    }
    return false;
  }

  /// Consulted by OmqCache::PutErased. Returns true when this insert must
  /// be dropped (the caller keeps its freshly computed value; only the
  /// cache forgets it — indistinguishable from an immediate eviction).
  bool OnCacheInsert() {
    uint64_t n = inserts_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (plan_.fail_insert_at != 0 && n == plan_.fail_insert_at) {
      MarkFired();
      return true;
    }
    return false;
  }

  /// Consulted by the server's AdmissionQueue at each batch dispatch.
  /// Returns true when this batch must be dropped (its requests are
  /// completed with kCancelled; nothing executes).
  bool OnBatchDispatch() {
    uint64_t n = batches_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (plan_.drop_batch_at != 0 && n == plan_.drop_batch_at) {
      MarkFired();
      return true;
    }
    return false;
  }

  /// Consulted by ThreadPool workers at task start (via the global task
  /// hook installed by the test). Sleeps when this worker is the stall
  /// target. Implemented out of line to keep <thread> out of this header.
  void OnWorkerTask(size_t worker_index);

  /// True once any fault of the plan has been delivered. The chaos suite
  /// uses this to tell "the run genuinely finished before the fault" from
  /// "the fault fired and the engine absorbed it".
  bool fired() const { return fired_.load(std::memory_order_acquire); }

  const FaultPlan& plan() const { return plan_; }

 private:
  void MarkFired() { fired_.store(true, std::memory_order_release); }

  FaultPlan plan_;
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace omqc

#endif  // OMQC_BASE_FAULT_INJECTION_H_
