// Hash combinators for composite keys used in hom-search indexes,
// rewriting dedup tables and automaton type caches.

#ifndef OMQC_BASE_HASH_UTIL_H_
#define OMQC_BASE_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace omqc {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constant).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements into one value.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = begin; it != end; ++it) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*it));
  }
  return seed;
}

/// std::hash-compatible hasher for vectors of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// std::hash-compatible hasher for pairs.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>{}(p.first);
    HashCombine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace omqc

#endif  // OMQC_BASE_HASH_UTIL_H_
