// A small fixed-size worker pool for fan-out/join parallelism.
//
// The containment engine uses it to check independent rewriting disjuncts
// concurrently (see src/core/containment.cc): tasks are submitted from one
// producer thread, workers drain a FIFO queue, and Wait() joins the batch.
// There is deliberately no future/packaged-task machinery — results are
// aggregated by the tasks themselves under caller-owned synchronization,
// which keeps the pool dependency-free and the hot path allocation-light.

#ifndef OMQC_BASE_THREAD_POOL_H_
#define OMQC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omqc {

/// A fixed pool of worker threads executing submitted tasks FIFO.
/// Thread-safe: Submit/Wait may be called from any thread (typically one
/// producer). The destructor drains the queue and joins all workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Completes all pending tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not Submit to or Wait on their own pool.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace omqc

#endif  // OMQC_BASE_THREAD_POOL_H_
