// A small fixed-size worker pool for fan-out/join parallelism.
//
// The containment engine uses it to check independent rewriting disjuncts
// concurrently (see src/core/containment.cc): tasks are submitted from one
// producer thread, workers drain a FIFO queue, and Wait() joins the batch.
// There is deliberately no future/packaged-task machinery — results are
// aggregated by the tasks themselves under caller-owned synchronization,
// which keeps the pool dependency-free and the hot path allocation-light.
//
// Shutdown semantics are deterministic and two-flavored:
//   * ~ThreadPool() DRAINS: every task submitted before destruction runs
//     to completion, then workers join.
//   * Stop() ABANDONS: tasks not yet started are discarded and will never
//     run; tasks already running finish normally. After Stop() begins, no
//     new task starts and Submit() becomes a no-op. Stop() is terminal.
// Cooperative cancellation (base/governor.h) composes with both: a task
// that observes its CancellationToken and returns early counts as
// finished, so Wait() returns as soon as every in-flight task has exited
// — early or not — and abandoned tasks are not waited for.

#ifndef OMQC_BASE_THREAD_POOL_H_
#define OMQC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omqc {

/// A fixed pool of worker threads executing submitted tasks FIFO.
/// Thread-safe: Submit/Wait/Stop may be called from any thread (typically
/// one producer). The destructor drains the queue and joins all workers;
/// Stop() abandons queued tasks instead (see file comment).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Completes all pending tasks (unless Stop() ran first), then joins
  /// the workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not Submit to or Wait on their own pool.
  /// No-op after Stop().
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished or been
  /// abandoned by Stop(). A task that exits early via a cooperative
  /// cancellation token counts as finished.
  void Wait();

  /// Abandons all queued-but-unstarted tasks and refuses new ones.
  /// Running tasks finish normally; workers then exit. Terminal: the pool
  /// cannot be restarted. Returns the number of abandoned tasks.
  size_t Stop();

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static size_t DefaultConcurrency();

  /// Test-only: a global hook invoked as hook(ctx, worker_index) right
  /// before each task runs, used by the fault-injection harness to stall
  /// a specific worker. Install before submitting work and clear (pass
  /// nullptr, nullptr) after Wait(); installation is not synchronized
  /// with in-flight tasks.
  using TaskHook = void (*)(void* ctx, size_t worker_index);
  static void SetTaskHookForTesting(TaskHook hook, void* ctx);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;  // destructor: drain then exit
  bool stopped_ = false;   // Stop(): abandon queue, exit now
};

}  // namespace omqc

#endif  // OMQC_BASE_THREAD_POOL_H_
