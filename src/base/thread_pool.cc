#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

namespace omqc {

namespace {
std::atomic<ThreadPool::TaskHook> g_task_hook{nullptr};
std::atomic<void*> g_task_hook_ctx{nullptr};
}  // namespace

void ThreadPool::SetTaskHookForTesting(TaskHook hook, void* ctx) {
  g_task_hook_ctx.store(ctx, std::memory_order_release);
  g_task_hook.store(hook, std::memory_order_release);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::Stop() {
  size_t abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    abandoned = queue_.size();
    queue_.clear();
    in_flight_ -= abandoned;  // running tasks keep their in_flight_ slot
    if (in_flight_ == 0) all_done_.notify_all();
  }
  work_ready_.notify_all();
  return abandoned;
}

size_t ThreadPool::DefaultConcurrency() {
  return std::max<size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stopped_ || shutdown_ || !queue_.empty();
      });
      if (stopped_) return;        // abandon: never start another task
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (TaskHook hook = g_task_hook.load(std::memory_order_acquire)) {
      hook(g_task_hook_ctx.load(std::memory_order_acquire), worker_index);
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace omqc
