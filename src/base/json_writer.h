// A tiny streaming JSON writer — just enough for the machine-readable
// stats surfaces (omqc_cli --stats-json, the server STATS endpoint and the
// load driver's BENCH_server.json). Handles comma placement and string
// escaping; the caller is responsible for well-nested Begin/End calls
// (asserted in debug builds).

#ifndef OMQC_BASE_JSON_WRITER_H_
#define OMQC_BASE_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace omqc {

class JsonWriter {
 public:
  JsonWriter() = default;

  /// Containers. The keyed flavors are for use inside an object.
  void BeginObject();
  void BeginObject(std::string_view key);
  void EndObject();
  void BeginArray();
  void BeginArray(std::string_view key);
  void EndArray();

  /// Scalar key/value pairs inside an object.
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, int value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, bool value);

  /// Scalar array elements.
  void Value(std::string_view value);
  void Value(uint64_t value);
  void Value(double value);

  /// A pre-serialized JSON fragment inserted verbatim as the value of
  /// `key` (used to splice one serializer's output into another's object).
  void RawField(std::string_view key, std::string_view json);

  /// The serialized document so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Escapes `s` as a JSON string literal (with quotes).
  static std::string Quote(std::string_view s);

 private:
  void Comma();
  void Key(std::string_view key);

  std::string out_;
  /// true = a value was already emitted at this nesting level.
  std::vector<bool> has_value_{false};
};

}  // namespace omqc

#endif  // OMQC_BASE_JSON_WRITER_H_
