#include "base/string_util.h"

#include <cctype>

namespace omqc {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace omqc
