// Thin POSIX stream-socket helpers for the omqc server stack.
//
// Everything here is deliberately minimal: blocking I/O, IPv4 loopback or
// any-address listening, and an in-process socketpair mode so tests and
// benches can exercise the full wire protocol without touching the
// network stack. Errors surface as Status (base/status.h); no exceptions,
// no ownership surprises (OwnedFd is the only RAII piece).

#ifndef OMQC_BASE_SOCKET_H_
#define OMQC_BASE_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "base/status.h"

namespace omqc {

/// A close-on-destruction file descriptor. Movable, not copyable.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// Creates a TCP listening socket bound to `address` (e.g. "127.0.0.1", or
/// "" for INADDR_ANY) on `port` (0 = kernel-assigned ephemeral port).
/// SO_REUSEADDR is set so restarting a daemon does not trip TIME_WAIT.
Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port);

/// The local port a listening socket is bound to (resolves port 0).
Result<uint16_t> LocalPort(int listen_fd);

/// Blocking accept. Returns the connected fd; kCancelled if the listening
/// socket was shut down from another thread (see ShutdownSocket).
Result<OwnedFd> AcceptConnection(int listen_fd);

/// Blocking TCP connect to host:port. `host` is a dotted-quad or
/// "localhost".
Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port);

/// A connected AF_UNIX stream socket pair for in-process client/server
/// tests: first = client end, second = server end.
Result<std::pair<OwnedFd, OwnedFd>> StreamSocketPair();

/// Writes exactly `len` bytes (retrying on short writes / EINTR).
Status WriteFull(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes. kCancelled on orderly EOF at offset 0 (the
/// peer closed between messages), kInvalidArgument on EOF mid-message.
Status ReadFull(int fd, void* data, size_t len);

/// shutdown(2) both directions — unblocks a thread parked in
/// AcceptConnection/ReadFull on this fd from another thread. Ignores
/// errors (the fd may already be closed).
void ShutdownSocket(int fd);

}  // namespace omqc

#endif  // OMQC_BASE_SOCKET_H_
