// Bounds-checked little-endian binary encoding primitives for the
// persistent artifact store (src/cache/persist.h) and the serializers
// built on it (src/logic/serialize.h, src/cache/serialize.h).
//
// ByteWriter appends fixed-width little-endian integers and
// length-prefixed strings to an owned buffer. ByteReader is the inverse:
// every read is bounds-checked against the input span and a failed read
// latches the reader into a failed state (subsequent reads return zero
// values and never touch memory), so a truncated or bit-flipped input
// degrades to `!ok()` instead of undefined behavior. Readers never trust
// embedded lengths: a length prefix larger than the remaining input fails
// the read before any allocation sized from it.

#ifndef OMQC_BASE_BINARY_IO_H_
#define OMQC_BASE_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace omqc {

/// Append-only little-endian encoder over an owned std::string buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(v, 2); }
  void U32(uint32_t v) { AppendLe(v, 4); }
  void U64(uint64_t v) { AppendLe(v, 8); }
  /// Two's-complement via the unsigned encoding.
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// u32 length prefix + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void AppendLe(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian decoder over a caller-owned span. The
/// span must outlive the reader. All reads after a failure return zeros /
/// empty strings; check ok() once after the last read.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), end_(p_ + size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  /// True when every byte was consumed and no read failed.
  bool AtEnd() const { return ok_ && p_ == end_; }

  uint8_t U8() { return static_cast<uint8_t>(ReadLe(1)); }
  uint16_t U16() { return static_cast<uint16_t>(ReadLe(2)); }
  uint32_t U32() { return static_cast<uint32_t>(ReadLe(4)); }
  uint64_t U64() { return ReadLe(8); }
  int32_t I32() { return static_cast<int32_t>(U32()); }

  /// Length-prefixed string; fails (and returns "") when the prefix
  /// exceeds the remaining input.
  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string out(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return out;
  }

  /// Raw copy of `n` bytes into `out`; fails without a partial write when
  /// fewer remain.
  bool Bytes(void* out, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    p_ += n;
    return true;
  }

 private:
  uint64_t ReadLe(size_t width) {
    if (!ok_ || width > remaining()) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    }
    p_ += width;
    return v;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

}  // namespace omqc

#endif  // OMQC_BASE_BINARY_IO_H_
