#include "base/governor.h"

#include <algorithm>

#include "base/fault_injection.h"

namespace omqc {

namespace {
constexpr int kOkCode = static_cast<int>(StatusCode::kOk);

const char* DefaultDetail(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      return "governor: wall-clock deadline exceeded";
    case StatusCode::kCancelled:
      return "governor: request cancelled";
    case StatusCode::kResourceExhausted:
      return "governor: memory budget exceeded";
    default:
      return "governor tripped";
  }
}
}  // namespace

void GovernorCounters::Merge(const GovernorCounters& other) {
  checks = std::max(checks, other.checks);
  deadline_trips = std::max(deadline_trips, other.deadline_trips);
  cancel_trips = std::max(cancel_trips, other.cancel_trips);
  memory_trips = std::max(memory_trips, other.memory_trips);
}

Status ResourceGovernor::Trip(StatusCode code, const char* detail) {
  int expected = kOkCode;
  if (trip_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    ResourceGovernor* r = root();
    switch (code) {
      case StatusCode::kDeadlineExceeded:
        r->deadline_trips_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        r->cancel_trips_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        r->memory_trips_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    trip_detail_.store(detail, std::memory_order_release);
  }
  return TripStatus();
}

Status ResourceGovernor::Latch(StatusCode code, const char* detail) {
  // Inherit a trip first observed on an ancestor: latch locally so later
  // checks hit the fast path, but the ancestor already counted the trip.
  int expected = kOkCode;
  if (trip_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    trip_detail_.store(detail, std::memory_order_release);
  }
  return TripStatus();
}

Status ResourceGovernor::TripStatus() const {
  int code = trip_code_.load(std::memory_order_acquire);
  if (code == kOkCode) return Status::OK();
  const char* detail = trip_detail_.load(std::memory_order_acquire);
  StatusCode sc = static_cast<StatusCode>(code);
  return Status(sc, detail != nullptr ? detail : DefaultDetail(sc));
}

FaultInjector* ResourceGovernor::InjectorInChain() const {
  for (const ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    FaultInjector* fi = g->fault_injector_.load(std::memory_order_acquire);
    if (fi != nullptr) return fi;
  }
  return nullptr;
}

Status ResourceGovernor::Check() {
  ResourceGovernor* r = root();
  uint64_t n = r->checks_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (r->injector_hint_.load(std::memory_order_acquire)) {
    if (FaultInjector* fi = InjectorInChain()) {
      StatusCode injected = fi->OnGovernorCheck(n);
      if (injected != StatusCode::kOk) {
        return Trip(injected, DefaultDetail(injected));
      }
    }
  }

  bool sample_clock = (n % kClockStride == 0);
  int64_t now_ns = 0;
  if (sample_clock) {
    now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now().time_since_epoch())
                 .count();
  }

  for (ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    int code = g->trip_code_.load(std::memory_order_acquire);
    if (code != kOkCode) {
      const char* detail = g->trip_detail_.load(std::memory_order_acquire);
      StatusCode sc = static_cast<StatusCode>(code);
      if (detail == nullptr) detail = DefaultDetail(sc);
      if (g == this) return Status(sc, detail);
      return Latch(sc, detail);
    }
    if (g->token_.cancelled()) {
      if (g == this) return Trip(StatusCode::kCancelled, DefaultDetail(StatusCode::kCancelled));
      // The cancelled ancestor counts the trip; we just inherit it.
      g->Trip(StatusCode::kCancelled, DefaultDetail(StatusCode::kCancelled));
      return Latch(StatusCode::kCancelled,
                   DefaultDetail(StatusCode::kCancelled));
    }
    if (sample_clock) {
      int64_t deadline = g->deadline_ns_.load(std::memory_order_acquire);
      if (deadline != 0 && now_ns >= deadline) {
        if (g == this) {
          return Trip(StatusCode::kDeadlineExceeded,
                      DefaultDetail(StatusCode::kDeadlineExceeded));
        }
        g->Trip(StatusCode::kDeadlineExceeded,
                DefaultDetail(StatusCode::kDeadlineExceeded));
        return Latch(StatusCode::kDeadlineExceeded,
                     DefaultDetail(StatusCode::kDeadlineExceeded));
      }
    }
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeBytes(size_t bytes) {
  ResourceGovernor* r = root();
  uint64_t n = r->charges_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (r->injector_hint_.load(std::memory_order_acquire)) {
    if (FaultInjector* fi = InjectorInChain()) {
      if (fi->OnMemoryCharge(n)) {
        return Trip(StatusCode::kResourceExhausted,
                    "governor: memory budget exceeded (injected)");
      }
    }
  }

  for (ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    int code = g->trip_code_.load(std::memory_order_acquire);
    if (code != kOkCode) {
      StatusCode sc = static_cast<StatusCode>(code);
      const char* detail = g->trip_detail_.load(std::memory_order_acquire);
      if (detail == nullptr) detail = DefaultDetail(sc);
      return g == this ? Status(sc, detail) : Latch(sc, detail);
    }
  }

  // Account at every level before checking any budget, so charge/release
  // pairs stay balanced per level even when a budget trips mid-walk.
  for (ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    g->charged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  for (ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    size_t total = g->charged_bytes_.load(std::memory_order_relaxed);
    size_t budget = g->memory_budget_.load(std::memory_order_acquire);
    if (budget != 0 && total > budget) {
      // The trip belongs to the governor whose budget was exceeded (it may
      // be an ancestor — e.g. the user's request governor above an engine
      // child); latch locally so later probes here hit the fast path.
      if (g == this) {
        return Trip(StatusCode::kResourceExhausted,
                    DefaultDetail(StatusCode::kResourceExhausted));
      }
      g->Trip(StatusCode::kResourceExhausted,
              DefaultDetail(StatusCode::kResourceExhausted));
      return Latch(StatusCode::kResourceExhausted,
                   DefaultDetail(StatusCode::kResourceExhausted));
    }
  }
  return Status::OK();
}

void ResourceGovernor::ReleaseBytes(size_t bytes) {
  // Saturating subtraction at every level: a tripped request's releases
  // may exceed what was accounted (post-trip charges are rejected before
  // accounting), and a long-lived server chain must never wrap.
  for (ResourceGovernor* g = this; g != nullptr; g = g->parent_) {
    size_t current = g->charged_bytes_.load(std::memory_order_relaxed);
    while (true) {
      size_t next = current >= bytes ? current - bytes : 0;
      if (g->charged_bytes_.compare_exchange_weak(
              current, next, std::memory_order_relaxed)) {
        break;
      }
    }
  }
}

GovernorCounters ResourceGovernor::counters() const {
  const ResourceGovernor* r = root();
  GovernorCounters c;
  c.checks = r->checks_.load(std::memory_order_relaxed);
  c.deadline_trips = r->deadline_trips_.load(std::memory_order_relaxed);
  c.cancel_trips = r->cancel_trips_.load(std::memory_order_relaxed);
  c.memory_trips = r->memory_trips_.load(std::memory_order_relaxed);
  return c;
}

Status TripStatusOr(const ResourceGovernor* governor, Status fallback) {
  if (governor != nullptr) {
    Status trip = governor->TripStatus();
    if (!trip.ok()) return trip;
  }
  return fallback;
}

}  // namespace omqc
