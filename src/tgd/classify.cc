#include "tgd/classify.h"

#include <algorithm>
#include <functional>

#include "base/string_util.h"

namespace omqc {

const char* TgdClassToString(TgdClass c) {
  switch (c) {
    case TgdClass::kEmpty:
      return "EMPTY";
    case TgdClass::kLinear:
      return "LINEAR";
    case TgdClass::kGuarded:
      return "GUARDED";
    case TgdClass::kNonRecursive:
      return "NON_RECURSIVE";
    case TgdClass::kSticky:
      return "STICKY";
    case TgdClass::kFull:
      return "FULL";
    case TgdClass::kGeneral:
      return "GENERAL";
  }
  return "UNKNOWN";
}

bool IsLinear(const TgdSet& tgds) {
  for (const Tgd& tgd : tgds.tgds) {
    if (tgd.body.size() > 1) return false;
  }
  return true;
}

bool IsGuarded(const TgdSet& tgds) {
  for (const Tgd& tgd : tgds.tgds) {
    if (tgd.body.empty()) continue;  // fact tgds are trivially guarded
    std::vector<Term> body_vars = tgd.BodyVariables();
    bool has_guard = false;
    for (const Atom& a : tgd.body) {
      bool guards_all = true;
      for (const Term& v : body_vars) {
        if (std::find(a.args.begin(), a.args.end(), v) == a.args.end()) {
          guards_all = false;
          break;
        }
      }
      if (guards_all) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

bool IsFull(const TgdSet& tgds) {
  for (const Tgd& tgd : tgds.tgds) {
    if (!tgd.ExistentialVariables().empty()) return false;
  }
  return true;
}

namespace {

/// Predicate graph: edge body-pred -> head-pred per tgd.
std::map<Predicate, std::set<Predicate>> PredicateGraph(const TgdSet& tgds) {
  std::map<Predicate, std::set<Predicate>> graph;
  for (const Tgd& tgd : tgds.tgds) {
    for (const Atom& b : tgd.body) {
      for (const Atom& h : tgd.head) {
        graph[b.predicate].insert(h.predicate);
      }
      graph.try_emplace(b.predicate);
    }
    for (const Atom& h : tgd.head) graph.try_emplace(h.predicate);
  }
  return graph;
}

}  // namespace

bool IsNonRecursive(const TgdSet& tgds) {
  auto graph = PredicateGraph(tgds);
  // Iterative DFS cycle detection, colors: 0 white, 1 gray, 2 black.
  std::map<Predicate, int> color;
  for (const auto& [p, _] : graph) color[p] = 0;
  std::function<bool(Predicate)> has_cycle = [&](Predicate p) {
    color[p] = 1;
    for (const Predicate& succ : graph[p]) {
      if (color[succ] == 1) return true;
      if (color[succ] == 0 && has_cycle(succ)) return true;
    }
    color[p] = 2;
    return false;
  };
  for (const auto& [p, _] : graph) {
    if (color[p] == 0 && has_cycle(p)) return false;
  }
  return true;
}

StickyMarking ComputeStickyMarking(const TgdSet& tgds) {
  StickyMarking result;
  result.marked.resize(tgds.size());

  // pos(α, x): positions of x in atom α.
  auto positions_of = [](const Atom& atom, const Term& x) {
    std::vector<int> out;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i] == x) out.push_back(static_cast<int>(i));
    }
    return out;
  };

  // Base step (Def. 4, case 1): x marked in σ if some head atom omits x.
  for (size_t i = 0; i < tgds.size(); ++i) {
    const Tgd& tgd = tgds.tgds[i];
    for (const Term& x : tgd.BodyVariables()) {
      for (const Atom& h : tgd.head) {
        if (std::find(h.args.begin(), h.args.end(), x) == h.args.end()) {
          result.marked[i].insert(x);
          break;
        }
      }
    }
  }

  // Inductive step (Def. 4, case 2): propagate head-to-body.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    for (size_t i = 0; i < tgds.size(); ++i) {
      const Tgd& tgd = tgds.tgds[i];
      for (const Term& x : tgd.BodyVariables()) {
        if (result.marked[i].count(x) > 0) continue;
        bool mark = false;
        for (const Atom& alpha : tgd.head) {
          std::vector<int> pos = positions_of(alpha, x);
          if (pos.empty()) continue;  // handled by base step
          for (size_t j = 0; j < tgds.size() && !mark; ++j) {
            for (const Atom& beta : tgds.tgds[j].body) {
              if (beta.predicate != alpha.predicate) continue;
              bool all_marked = true;
              for (int p : pos) {
                const Term& t = beta.args[static_cast<size_t>(p)];
                // A constant at a propagation position blocks marking:
                // constants trivially "stick" (this reading is forced by
                // Prop. 35, which relies on lossless tgds with constants
                // being sticky).
                if (!t.IsVariable() || result.marked[j].count(t) == 0) {
                  all_marked = false;
                  break;
                }
              }
              if (all_marked) {
                mark = true;
                break;
              }
            }
          }
          if (mark) break;
        }
        if (mark) {
          result.marked[i].insert(x);
          changed = true;
        }
      }
    }
  }
  return result;
}

bool IsSticky(const TgdSet& tgds) {
  StickyMarking marking = ComputeStickyMarking(tgds);
  for (size_t i = 0; i < tgds.size(); ++i) {
    const Tgd& tgd = tgds.tgds[i];
    for (const Term& x : marking.marked[i]) {
      int occurrences = 0;
      for (const Atom& b : tgd.body) {
        for (const Term& t : b.args) {
          if (t == x) ++occurrences;
        }
      }
      if (occurrences > 1) return false;
    }
  }
  return true;
}

bool IsFrontierGuarded(const TgdSet& tgds) {
  for (const Tgd& tgd : tgds.tgds) {
    if (tgd.body.empty()) continue;
    std::vector<Term> frontier = tgd.FrontierVariables();
    bool has_guard = false;
    for (const Atom& a : tgd.body) {
      bool guards_all = true;
      for (const Term& v : frontier) {
        if (std::find(a.args.begin(), a.args.end(), v) == a.args.end()) {
          guards_all = false;
          break;
        }
      }
      if (guards_all) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

std::optional<Stratification> Stratify(const TgdSet& tgds) {
  if (!IsNonRecursive(tgds)) return std::nullopt;
  auto graph = PredicateGraph(tgds);
  // Longest-path layering: µ(p) = 1 + max over predecessors.
  Stratification strat;
  std::map<Predicate, int> depth;
  std::function<int(Predicate)> compute = [&](Predicate p) -> int {
    auto it = depth.find(p);
    if (it != depth.end()) return it->second;
    depth[p] = 0;  // provisional; graph is acyclic so this is never read
    int d = 0;
    for (const auto& [from, succs] : graph) {
      if (succs.count(p) > 0) d = std::max(d, compute(from) + 1);
    }
    depth[p] = d;
    return d;
  };
  int max_depth = 0;
  for (const auto& [p, _] : graph) {
    max_depth = std::max(max_depth, compute(p));
  }
  strat.stratum_of = depth;
  strat.num_strata = max_depth + 1;
  strat.tgd_stratum.resize(tgds.size(), 0);
  for (size_t i = 0; i < tgds.size(); ++i) {
    int s = 0;
    for (const Atom& h : tgds.tgds[i].head) {
      s = std::max(s, depth[h.predicate]);
    }
    strat.tgd_stratum[i] = s;
  }
  return strat;
}

std::set<std::pair<Predicate, int>> AffectedPositions(const TgdSet& tgds) {
  using Position = std::pair<Predicate, int>;
  std::set<Position> affected;
  // Base: positions of existential variables in heads.
  for (const Tgd& tgd : tgds.tgds) {
    std::vector<Term> ex = tgd.ExistentialVariables();
    for (const Atom& h : tgd.head) {
      for (size_t i = 0; i < h.args.size(); ++i) {
        if (std::find(ex.begin(), ex.end(), h.args[i]) != ex.end()) {
          affected.insert({h.predicate, static_cast<int>(i)});
        }
      }
    }
  }
  // Induction: a frontier variable occurring in the body only at affected
  // positions propagates affectedness to its head positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& tgd : tgds.tgds) {
      for (const Term& x : tgd.FrontierVariables()) {
        bool only_affected = true;
        bool occurs_in_body = false;
        for (const Atom& b : tgd.body) {
          for (size_t i = 0; i < b.args.size(); ++i) {
            if (b.args[i] == x) {
              occurs_in_body = true;
              if (affected.count({b.predicate, static_cast<int>(i)}) == 0) {
                only_affected = false;
              }
            }
          }
        }
        if (!occurs_in_body || !only_affected) continue;
        for (const Atom& h : tgd.head) {
          for (size_t i = 0; i < h.args.size(); ++i) {
            if (h.args[i] == x &&
                affected.insert({h.predicate, static_cast<int>(i)}).second) {
              changed = true;
            }
          }
        }
      }
    }
  }
  return affected;
}

bool IsWeaklyGuarded(const TgdSet& tgds) {
  auto affected = AffectedPositions(tgds);
  for (const Tgd& tgd : tgds.tgds) {
    if (tgd.body.empty()) continue;
    // Variables occurring only at affected body positions must be guarded.
    std::set<Term> must_guard;
    for (const Term& x : tgd.BodyVariables()) {
      bool only_affected = true;
      for (const Atom& b : tgd.body) {
        for (size_t i = 0; i < b.args.size(); ++i) {
          if (b.args[i] == x &&
              affected.count({b.predicate, static_cast<int>(i)}) == 0) {
            only_affected = false;
          }
        }
      }
      if (only_affected) must_guard.insert(x);
    }
    if (must_guard.empty()) continue;
    bool has_guard = false;
    for (const Atom& a : tgd.body) {
      bool guards_all = true;
      for (const Term& v : must_guard) {
        if (std::find(a.args.begin(), a.args.end(), v) == a.args.end()) {
          guards_all = false;
          break;
        }
      }
      if (guards_all) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

bool IsWeaklyAcyclic(const TgdSet& tgds) {
  using Position = std::pair<Predicate, int>;
  // Edges: regular and special, per Fagin et al. (cited as [35]).
  std::map<Position, std::set<Position>> regular, special;
  std::set<Position> nodes;
  for (const Tgd& tgd : tgds.tgds) {
    std::vector<Term> ex = tgd.ExistentialVariables();
    for (const Atom& b : tgd.body) {
      for (size_t i = 0; i < b.args.size(); ++i) {
        nodes.insert({b.predicate, static_cast<int>(i)});
        const Term& x = b.args[i];
        if (!x.IsVariable()) continue;
        Position from{b.predicate, static_cast<int>(i)};
        for (const Atom& h : tgd.head) {
          for (size_t j = 0; j < h.args.size(); ++j) {
            Position to{h.predicate, static_cast<int>(j)};
            nodes.insert(to);
            if (h.args[j] == x) regular[from].insert(to);
            if (std::find(ex.begin(), ex.end(), h.args[j]) != ex.end()) {
              special[from].insert(to);
            }
          }
        }
      }
    }
  }
  // Weakly acyclic iff no cycle containing a special edge: check for each
  // special edge (u,v) whether u is reachable from v via regular∪special.
  auto reachable = [&](const Position& from, const Position& to) {
    std::set<Position> seen{from};
    std::vector<Position> stack{from};
    while (!stack.empty()) {
      Position p = stack.back();
      stack.pop_back();
      if (p == to) return true;
      for (const auto* edges : {&regular, &special}) {
        auto it = edges->find(p);
        if (it == edges->end()) continue;
        for (const Position& succ : it->second) {
          if (seen.insert(succ).second) stack.push_back(succ);
        }
      }
    }
    return false;
  };
  for (const auto& [from, tos] : special) {
    for (const Position& to : tos) {
      if (reachable(to, from)) return false;
    }
  }
  return true;
}

bool IsWeaklySticky(const TgdSet& tgds) {
  auto affected = AffectedPositions(tgds);
  StickyMarking marking = ComputeStickyMarking(tgds);
  for (size_t i = 0; i < tgds.size(); ++i) {
    const Tgd& tgd = tgds.tgds[i];
    for (const Term& x : tgd.BodyVariables()) {
      int occurrences = 0;
      bool at_unaffected = false;
      for (const Atom& b : tgd.body) {
        for (size_t j = 0; j < b.args.size(); ++j) {
          if (b.args[j] == x) {
            ++occurrences;
            if (affected.count({b.predicate, static_cast<int>(j)}) == 0) {
              at_unaffected = true;
            }
          }
        }
      }
      if (occurrences > 1 && marking.marked[i].count(x) > 0 &&
          !at_unaffected) {
        return false;
      }
    }
  }
  return true;
}

std::string ClassificationReport::ToString() const {
  std::vector<std::string> tags;
  if (empty) tags.push_back("empty");
  if (linear) tags.push_back("linear");
  if (guarded) tags.push_back("guarded");
  if (frontier_guarded && !guarded) tags.push_back("frontier-guarded");
  if (full) tags.push_back("full");
  if (non_recursive) tags.push_back("non-recursive");
  if (sticky) tags.push_back("sticky");
  if (weakly_guarded) tags.push_back("weakly-guarded");
  if (weakly_acyclic) tags.push_back("weakly-acyclic");
  if (weakly_sticky) tags.push_back("weakly-sticky");
  if (tags.empty()) tags.push_back("general");
  return JoinStrings(tags, ", ");
}

ClassificationReport Classify(const TgdSet& tgds) {
  ClassificationReport report;
  report.empty = tgds.empty();
  report.linear = IsLinear(tgds);
  report.guarded = IsGuarded(tgds);
  report.frontier_guarded = IsFrontierGuarded(tgds);
  report.full = IsFull(tgds);
  report.non_recursive = IsNonRecursive(tgds);
  report.sticky = IsSticky(tgds);
  report.weakly_guarded = IsWeaklyGuarded(tgds);
  report.weakly_acyclic = IsWeaklyAcyclic(tgds);
  report.weakly_sticky = IsWeaklySticky(tgds);
  return report;
}

TgdClass PrimaryClass(const TgdSet& tgds) {
  if (tgds.empty()) return TgdClass::kEmpty;
  if (IsLinear(tgds)) return TgdClass::kLinear;
  if (IsNonRecursive(tgds)) return TgdClass::kNonRecursive;
  if (IsSticky(tgds)) return TgdClass::kSticky;
  if (IsGuarded(tgds)) return TgdClass::kGuarded;
  if (IsFull(tgds)) return TgdClass::kFull;
  return TgdClass::kGeneral;
}

bool IsUcqRewritableClass(TgdClass c) {
  switch (c) {
    case TgdClass::kEmpty:
    case TgdClass::kLinear:
    case TgdClass::kNonRecursive:
    case TgdClass::kSticky:
      return true;
    default:
      return false;
  }
}

bool IsEvaluationDecidable(TgdClass c) {
  return c != TgdClass::kGeneral;
}

}  // namespace omqc
