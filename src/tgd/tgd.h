// Tuple-generating dependencies (tgds / existential rules), Sec. 2.

#ifndef OMQC_TGD_TGD_H_
#define OMQC_TGD_TGD_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "logic/cq.h"
#include "logic/substitution.h"

namespace omqc {

/// A tgd φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄). The body may be empty ("fact tgd",
/// written ⊤ → ∃z̄ ψ). Frontier variables x̄ and existential variables z̄
/// are implicit: a head variable is existential iff it does not occur in
/// the body.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;

  Tgd() = default;
  Tgd(std::vector<Atom> b, std::vector<Atom> h)
      : body(std::move(b)), head(std::move(h)) {}

  bool IsFactTgd() const { return body.empty(); }

  /// Variables occurring in the body, in order of first occurrence.
  std::vector<Term> BodyVariables() const;
  /// Variables occurring in the head, in order of first occurrence.
  std::vector<Term> HeadVariables() const;
  /// Frontier: head variables that also occur in the body (x̄).
  std::vector<Term> FrontierVariables() const;
  /// Existential variables: head variables not in the body (z̄).
  std::vector<Term> ExistentialVariables() const;
  /// Constants occurring anywhere in the tgd.
  std::set<Term> Constants() const;

  /// Renames all variables apart with suffix "#index" (the σ^i of
  /// Algorithm 1).
  Tgd RenamedApart(int index) const;

  /// "R(X,Y), P(Y) -> T(X,Z)".
  std::string ToString() const;

  bool operator==(const Tgd& other) const {
    return body == other.body && head == other.head;
  }
};

/// A finite set of tgds (an ontology). Kept as a vector for deterministic
/// iteration; helpers expose sch(Σ) and size metrics.
struct TgdSet {
  std::vector<Tgd> tgds;

  TgdSet() = default;
  explicit TgdSet(std::vector<Tgd> rules) : tgds(std::move(rules)) {}

  size_t size() const { return tgds.size(); }
  bool empty() const { return tgds.empty(); }

  /// sch(Σ): all predicates occurring in the tgds.
  Schema SchemaOf() const;
  /// Predicates occurring in some head.
  Schema HeadPredicates() const;
  /// Constants occurring in the tgds: C(Σ) (Prop. 17).
  std::set<Term> Constants() const;
  /// max over tgds of |body| (Prop. 14).
  size_t MaxBodySize() const;
  /// ||Σ||: total number of symbols (predicate + argument occurrences).
  size_t SymbolCount() const;

  std::string ToString() const;
};

/// Checks structural well-formedness: arities match, no nulls, and every
/// frontier variable of each head atom occurs in the body or head
/// (the paper additionally assumes each universally quantified x̄-variable
/// appears in ψ; we do not require that — it is a presentation detail).
Status ValidateTgd(const Tgd& tgd);
Status ValidateTgdSet(const TgdSet& tgds);

/// Normalization (appendix, "we assume tgds are in normal form"): rewrites
/// a set of tgds into an equivalent one in which every tgd has exactly one
/// head atom and at most one existential variable. Auxiliary predicates
/// "Aux_k" carry the frontier. Preserves membership in G, L, NR
/// (for S the transformation is also sticky-safe: auxiliary heads keep all
/// body variables).
TgdSet NormalizeHeads(const TgdSet& tgds, const std::string& aux_prefix);

/// Single-head-atom normal form only (no splitting of multiple existential
/// variables); enough for the chase and XRewrite as implemented here.
TgdSet SingleHeadAtoms(const TgdSet& tgds, const std::string& aux_prefix);

}  // namespace omqc

#endif  // OMQC_TGD_TGD_H_
