// Recognizers for the tgd classes of the paper (Sec. 2):
// linear (L), guarded (G), non-recursive (NR), sticky (S), full (F),
// plus the weak variants mentioned in Sec. 3.1 for diagnostics.

#ifndef OMQC_TGD_CLASSIFY_H_
#define OMQC_TGD_CLASSIFY_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tgd/tgd.h"

namespace omqc {

/// The OMQ-language tgd classes used for dispatching containment
/// strategies. Ordered roughly by generality within each family.
enum class TgdClass {
  kEmpty,         ///< Σ = ∅ (the O_∅ language of Sec. 3.1).
  kLinear,        ///< L: single body atom.
  kGuarded,       ///< G: some body atom guards all body variables.
  kNonRecursive,  ///< NR: acyclic predicate graph.
  kSticky,        ///< S: the marking procedure admits Σ.
  kFull,          ///< F: no existential variables (Datalog).
  kGeneral,       ///< TGD: none of the above.
};

const char* TgdClassToString(TgdClass c);

/// True iff every tgd has at most one body atom.
bool IsLinear(const TgdSet& tgds);

/// True iff every tgd with a non-empty body has a guard: a body atom
/// containing every body variable.
bool IsGuarded(const TgdSet& tgds);

/// True iff no tgd has existential variables (full tgds / Datalog).
bool IsFull(const TgdSet& tgds);

/// True iff the predicate graph (edges body-predicate -> head-predicate)
/// is acyclic. Equivalent to stratifiability (Lemma 32).
bool IsNonRecursive(const TgdSet& tgds);

/// True iff Σ passes the sticky test (Defs. 4 and 5; Figure 1): no marked
/// variable occurs more than once in a body.
bool IsSticky(const TgdSet& tgds);

/// The marked (tgd index, variable) pairs computed by the inductive marking
/// procedure of Def. 4. Exposed for tests, diagnostics and the Figure 1
/// bench.
struct StickyMarking {
  /// marked[i] = set of body variables of tgds[i] that are marked in Σ.
  std::vector<std::set<Term>> marked;
  /// Number of fixpoint rounds until convergence.
  int rounds = 0;
};
StickyMarking ComputeStickyMarking(const TgdSet& tgds);

/// A stratification {Σ1,...,Σn} per Definition 3, or nullopt if Σ is
/// recursive. `stratum_of[p]` is µ(p); tgd i belongs to stratum
/// `tgd_stratum[i]`.
struct Stratification {
  std::map<Predicate, int> stratum_of;
  std::vector<int> tgd_stratum;
  int num_strata = 0;
};
std::optional<Stratification> Stratify(const TgdSet& tgds);

/// Positions (R, i) of sch(Σ) that may receive labeled nulls during the
/// chase ("affected positions"; used by the weak classes).
std::set<std::pair<Predicate, int>> AffectedPositions(const TgdSet& tgds);

/// Frontier-guardedness (the paper's concluding section names it as the
/// natural extension of guardedness): some body atom contains all
/// *frontier* variables (body variables that also occur in the head).
/// Every guarded set is frontier-guarded.
bool IsFrontierGuarded(const TgdSet& tgds);

/// Weak variants (Sec. 3.1): relax the respective condition to affected
/// positions only. Containment for these is undecidable (Prop. 8) but the
/// recognizers are useful diagnostics.
bool IsWeaklyGuarded(const TgdSet& tgds);
bool IsWeaklyAcyclic(const TgdSet& tgds);
bool IsWeaklySticky(const TgdSet& tgds);

/// Full classification report.
struct ClassificationReport {
  bool empty = false;
  bool linear = false;
  bool guarded = false;
  bool full = false;
  bool non_recursive = false;
  bool sticky = false;
  bool frontier_guarded = false;
  bool weakly_guarded = false;
  bool weakly_acyclic = false;
  bool weakly_sticky = false;

  std::string ToString() const;
};
ClassificationReport Classify(const TgdSet& tgds);

/// The most specific class from {kEmpty, kLinear, kGuarded, kNonRecursive,
/// kSticky, kFull, kGeneral} for dispatching containment procedures, with
/// preference order L > NR > S > G > F (UCQ-rewritable and cheaper first).
TgdClass PrimaryClass(const TgdSet& tgds);

/// True iff the OMQ language (C, CQ) is UCQ-rewritable (Sec. 4): L, NR, S.
bool IsUcqRewritableClass(TgdClass c);

/// True iff Eval(C, CQ) is decidable in this library: everything except
/// kGeneral and kFull-with-recursion... all classes here are decidable for
/// evaluation; kGeneral is not.
bool IsEvaluationDecidable(TgdClass c);

}  // namespace omqc

#endif  // OMQC_TGD_CLASSIFY_H_
