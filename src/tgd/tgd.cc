#include "tgd/tgd.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {
namespace {

void CollectVariables(const std::vector<Atom>& atoms,
                      std::vector<Term>& out) {
  for (const Atom& a : atoms) {
    for (const Term& t : a.args) {
      if (t.IsVariable() &&
          std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
}

}  // namespace

std::vector<Term> Tgd::BodyVariables() const {
  std::vector<Term> out;
  CollectVariables(body, out);
  return out;
}

std::vector<Term> Tgd::HeadVariables() const {
  std::vector<Term> out;
  CollectVariables(head, out);
  return out;
}

std::vector<Term> Tgd::FrontierVariables() const {
  std::vector<Term> body_vars = BodyVariables();
  std::vector<Term> out;
  for (const Term& v : HeadVariables()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) != body_vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<Term> Tgd::ExistentialVariables() const {
  std::vector<Term> body_vars = BodyVariables();
  std::vector<Term> out;
  for (const Term& v : HeadVariables()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

std::set<Term> Tgd::Constants() const {
  std::set<Term> out;
  for (const std::vector<Atom>* atoms : {&body, &head}) {
    for (const Atom& a : *atoms) {
      for (const Term& t : a.args) {
        if (t.IsConstant()) out.insert(t);
      }
    }
  }
  return out;
}

Tgd Tgd::RenamedApart(int index) const {
  Substitution rename;
  std::vector<Term> vars = BodyVariables();
  CollectVariables(head, vars);
  for (const Term& v : vars) {
    rename.Bind(v, Term::Variable(StrCat(v.ToString(), "#", index)));
  }
  return Tgd(rename.Apply(body), rename.Apply(head));
}

std::string Tgd::ToString() const {
  auto atoms_to_string = [](const std::vector<Atom>& atoms) {
    return JoinMapped(atoms, ", ",
                      [](const Atom& a) { return a.ToString(); });
  };
  std::string body_str = body.empty() ? "true" : atoms_to_string(body);
  return StrCat(body_str, " -> ", atoms_to_string(head));
}

Schema TgdSet::SchemaOf() const {
  Schema out;
  for (const Tgd& tgd : tgds) {
    for (const std::vector<Atom>* atoms : {&tgd.body, &tgd.head}) {
      for (const Atom& a : *atoms) out.Add(a.predicate);
    }
  }
  return out;
}

Schema TgdSet::HeadPredicates() const {
  Schema out;
  for (const Tgd& tgd : tgds) {
    for (const Atom& a : tgd.head) out.Add(a.predicate);
  }
  return out;
}

std::set<Term> TgdSet::Constants() const {
  std::set<Term> out;
  for (const Tgd& tgd : tgds) {
    std::set<Term> constants = tgd.Constants();
    out.insert(constants.begin(), constants.end());
  }
  return out;
}

size_t TgdSet::MaxBodySize() const {
  size_t max_size = 0;
  for (const Tgd& tgd : tgds) {
    max_size = std::max(max_size, tgd.body.size());
  }
  return max_size;
}

size_t TgdSet::SymbolCount() const {
  size_t count = 0;
  for (const Tgd& tgd : tgds) {
    for (const std::vector<Atom>* atoms : {&tgd.body, &tgd.head}) {
      for (const Atom& a : *atoms) count += 1 + a.args.size();
    }
  }
  return count;
}

std::string TgdSet::ToString() const {
  return JoinMapped(tgds, "\n", [](const Tgd& t) { return t.ToString(); });
}

Status ValidateTgd(const Tgd& tgd) {
  if (tgd.head.empty()) {
    return Status::InvalidArgument("tgd has an empty head: " +
                                   tgd.ToString());
  }
  for (const std::vector<Atom>* atoms : {&tgd.body, &tgd.head}) {
    for (const Atom& a : *atoms) {
      if (static_cast<int>(a.args.size()) != a.predicate.arity()) {
        return Status::InvalidArgument(
            StrCat("atom ", a.ToString(), " does not match arity of ",
                   a.predicate.ToString()));
      }
      for (const Term& t : a.args) {
        if (t.IsNull()) {
          return Status::InvalidArgument(
              StrCat("tgd contains a null: ", tgd.ToString()));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateTgdSet(const TgdSet& tgds) {
  for (const Tgd& tgd : tgds.tgds) {
    OMQC_RETURN_IF_ERROR(ValidateTgd(tgd));
  }
  return Status::OK();
}

TgdSet SingleHeadAtoms(const TgdSet& tgds, const std::string& aux_prefix) {
  TgdSet out;
  int aux_counter = 0;
  for (const Tgd& tgd : tgds.tgds) {
    if (tgd.head.size() <= 1) {
      out.tgds.push_back(tgd);
      continue;
    }
    std::vector<Term> existentials = tgd.ExistentialVariables();
    if (existentials.empty()) {
      // Without existentials, a conjunction head splits losslessly.
      for (const Atom& h : tgd.head) {
        out.tgds.emplace_back(tgd.body, std::vector<Atom>{h});
      }
      continue;
    }
    // Route the frontier and existentials through one auxiliary atom.
    std::vector<Term> aux_args = tgd.FrontierVariables();
    for (const Term& z : existentials) aux_args.push_back(z);
    Atom aux = Atom::Make(
        StrCat(aux_prefix, "Head", aux_counter++),
        aux_args);
    out.tgds.emplace_back(tgd.body, std::vector<Atom>{aux});
    for (const Atom& h : tgd.head) {
      out.tgds.emplace_back(std::vector<Atom>{aux}, std::vector<Atom>{h});
    }
  }
  return out;
}

TgdSet NormalizeHeads(const TgdSet& tgds, const std::string& aux_prefix) {
  TgdSet single = SingleHeadAtoms(tgds, aux_prefix);
  TgdSet out;
  int aux_counter = 0;
  for (const Tgd& tgd : single.tgds) {
    std::vector<Term> existentials = tgd.ExistentialVariables();
    bool single_occurrence = true;
    if (existentials.size() == 1) {
      int occurrences = 0;
      for (const Atom& h : tgd.head) {
        for (const Term& t : h.args) {
          if (t == existentials.front()) ++occurrences;
        }
      }
      single_occurrence = occurrences == 1;
    }
    if (existentials.size() <= 1 && single_occurrence) {
      out.tgds.push_back(tgd);
      continue;
    }
    // Chain: introduce existentials one by one through auxiliary atoms,
    // each occurring exactly once.
    std::vector<Term> carried = tgd.FrontierVariables();
    std::vector<Atom> prev_body = tgd.body;
    for (const Term& z : existentials) {
      std::vector<Term> aux_args = carried;
      aux_args.push_back(z);
      Atom aux = Atom::Make(StrCat(aux_prefix, "Ex", aux_counter++),
                            aux_args);
      out.tgds.emplace_back(prev_body, std::vector<Atom>{aux});
      prev_body = {aux};
      carried = aux_args;
    }
    out.tgds.emplace_back(prev_body, tgd.head);
  }
  return out;
}

}  // namespace omqc
