#include "tgd/parser.h"

#include <cctype>
#include <map>

#include "base/string_util.h"

namespace omqc {
namespace {

enum class TokenKind {
  kIdent,      // identifier or number
  kQuoted,     // 'quoted constant'
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kPeriod,     // .
  kArrow,      // ->
  kTurnstile,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        column_ = 1;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      int line = line_, column = column_;
      if (c == '(') {
        out.push_back({TokenKind::kLParen, "(", line, column});
        Advance();
      } else if (c == ')') {
        out.push_back({TokenKind::kRParen, ")", line, column});
        Advance();
      } else if (c == ',') {
        out.push_back({TokenKind::kComma, ",", line, column});
        Advance();
      } else if (c == '.') {
        out.push_back({TokenKind::kPeriod, ".", line, column});
        Advance();
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        out.push_back({TokenKind::kArrow, "->", line, column});
        Advance();
        Advance();
      } else if (c == ':' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        out.push_back({TokenKind::kTurnstile, ":-", line, column});
        Advance();
        Advance();
      } else if (c == '\'') {
        Advance();
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          value += text_[pos_];
          Advance();
        }
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument(
              StrCat("unterminated quoted constant at line ", line));
        }
        Advance();  // closing quote
        out.push_back({TokenKind::kQuoted, value, line, column});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '@') {
        std::string value;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '@' ||
                text_[pos_] == '#')) {
          value += text_[pos_];
          Advance();
        }
        out.push_back({TokenKind::kIdent, value, line, column});
      } else {
        return Status::InvalidArgument(
            StrCat("unexpected character '", std::string(1, c),
                   "' at line ", line, ", column ", column));
      }
    }
    out.push_back({TokenKind::kEnd, "", line_, column_});
    return out;
  }

 private:
  void Advance() {
    ++pos_;
    ++column_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!At(TokenKind::kEnd)) {
      OMQC_RETURN_IF_ERROR(ParseStatement(program));
    }
    OMQC_RETURN_IF_ERROR(Validate(program));
    return program;
  }

  /// Parses exactly one atom (with optional trailing '.') and end of input.
  Result<Atom> ParseSingleAtom() {
    OMQC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (At(TokenKind::kPeriod)) Next();
    if (!At(TokenKind::kEnd)) {
      const Status st = Error("expected end of input after atom");
      return st;
    }
    return atom;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument(StrCat(message, " at line ", t.line,
                                          ", column ", t.column,
                                          " (near '", t.text, "')"));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!At(kind)) return Error(StrCat("expected ", what));
    Next();
    return Status::OK();
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kQuoted)) {
      return Term::Constant(Next().text);
    }
    if (!At(TokenKind::kIdent)) {
      const Status st = Error("expected a term");
      return st;
    }
    std::string name = Next().text;
    char first = name[0];
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return Term::Variable(name);
    }
    return Term::Constant(name);
  }

  Result<Atom> ParseAtom() {
    if (!At(TokenKind::kIdent)) {
      const Status st = Error("expected a predicate name");
      return st;
    }
    std::string name = Next().text;
    std::vector<Term> args;
    if (At(TokenKind::kLParen)) {
      Next();
      if (!At(TokenKind::kRParen)) {
        while (true) {
          OMQC_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
          if (At(TokenKind::kComma)) {
            Next();
            continue;
          }
          break;
        }
      }
      OMQC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    return Atom::Make(name, std::move(args));
  }

  /// Parses "A1, ..., Ak" possibly being the keyword "true" (empty list).
  Result<std::vector<Atom>> ParseAtomList() {
    std::vector<Atom> atoms;
    if (At(TokenKind::kIdent) && Peek().text == "true" &&
        Peek(1).kind != TokenKind::kLParen) {
      Next();
      return atoms;
    }
    while (true) {
      OMQC_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      atoms.push_back(std::move(a));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    return atoms;
  }

  Status ParseStatement(Program& program) {
    // Fact tgd "-> head."
    if (At(TokenKind::kArrow)) {
      Next();
      OMQC_ASSIGN_OR_RETURN(std::vector<Atom> head, ParseAtomList());
      OMQC_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      program.tgds.tgds.emplace_back(std::vector<Atom>{}, std::move(head));
      return Status::OK();
    }
    OMQC_ASSIGN_OR_RETURN(std::vector<Atom> first, ParseAtomList());
    if (At(TokenKind::kArrow)) {
      Next();
      OMQC_ASSIGN_OR_RETURN(std::vector<Atom> head, ParseAtomList());
      OMQC_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      program.tgds.tgds.emplace_back(std::move(first), std::move(head));
      return Status::OK();
    }
    if (At(TokenKind::kTurnstile)) {
      if (first.size() != 1) {
        return Error("a query must have exactly one head atom");
      }
      Next();
      OMQC_ASSIGN_OR_RETURN(std::vector<Atom> body, ParseAtomList());
      OMQC_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      NamedQuery named;
      named.name = first.front().predicate.name();
      named.query =
          ConjunctiveQuery(first.front().args, std::move(body));
      program.queries.push_back(std::move(named));
      return Status::OK();
    }
    if (At(TokenKind::kPeriod)) {
      Next();
      for (const Atom& a : first) {
        if (!a.IsFact()) {
          return Status::InvalidArgument(
              StrCat("fact statement contains a non-constant: ",
                     a.ToString()));
        }
        program.facts.Add(a);
      }
      return Status::OK();
    }
    return Error("expected '->', ':-' or '.'");
  }

  Status Validate(const Program& program) {
    OMQC_RETURN_IF_ERROR(ValidateTgdSet(program.tgds));
    for (const NamedQuery& nq : program.queries) {
      OMQC_RETURN_IF_ERROR(ValidateCQ(nq.query));
    }
    // One arity per predicate name within a program: interning treats
    // R/1 and R/2 as distinct predicates, which in a text file is almost
    // certainly a typo.
    std::map<std::string, int> arity_of;
    auto check = [&arity_of](const Atom& a) -> Status {
      auto [it, inserted] =
          arity_of.emplace(a.predicate.name(), a.predicate.arity());
      if (!inserted && it->second != a.predicate.arity()) {
        return Status::InvalidArgument(
            StrCat("predicate ", a.predicate.name(), " used with arities ",
                   it->second, " and ", a.predicate.arity()));
      }
      return Status::OK();
    };
    for (const Tgd& tgd : program.tgds.tgds) {
      for (const Atom& a : tgd.body) OMQC_RETURN_IF_ERROR(check(a));
      for (const Atom& a : tgd.head) OMQC_RETURN_IF_ERROR(check(a));
    }
    for (const NamedQuery& nq : program.queries) {
      for (const Atom& a : nq.query.body) OMQC_RETURN_IF_ERROR(check(a));
    }
    // Cold path (parse time): the materializing atoms() walk is fine.
    for (const Atom& a : program.facts.atoms()) {
      OMQC_RETURN_IF_ERROR(check(a));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Program> ParseInternal(const std::string& text) {
  Lexer lexer(text);
  OMQC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

std::string EnsurePeriod(const std::string& text) {
  std::string_view stripped = StripWhitespace(text);
  if (!stripped.empty() && stripped.back() == '.') return std::string(text);
  return std::string(stripped) + ".";
}

}  // namespace

UnionOfCQs Program::QueriesNamed(const std::string& name) const {
  UnionOfCQs out;
  for (const NamedQuery& nq : queries) {
    if (nq.name == name) out.disjuncts.push_back(nq.query);
  }
  return out;
}

Result<Program> ParseProgram(const std::string& text) {
  return ParseInternal(text);
}

Result<Tgd> ParseTgd(const std::string& text) {
  OMQC_ASSIGN_OR_RETURN(Program program, ParseInternal(EnsurePeriod(text)));
  if (program.tgds.size() != 1 || !program.queries.empty() ||
      !program.facts.empty()) {
    return Status::InvalidArgument("expected exactly one tgd: " + text);
  }
  return program.tgds.tgds.front();
}

Result<TgdSet> ParseTgds(const std::string& text) {
  OMQC_ASSIGN_OR_RETURN(Program program, ParseInternal(text));
  if (!program.queries.empty() || !program.facts.empty()) {
    return Status::InvalidArgument("expected only tgds");
  }
  return program.tgds;
}

Result<ConjunctiveQuery> ParseQuery(const std::string& text) {
  OMQC_ASSIGN_OR_RETURN(Program program, ParseInternal(EnsurePeriod(text)));
  if (program.queries.size() != 1 || !program.tgds.tgds.empty() ||
      !program.facts.empty()) {
    return Status::InvalidArgument("expected exactly one query: " + text);
  }
  return program.queries.front().query;
}

Result<UnionOfCQs> ParseUCQ(const std::string& text) {
  OMQC_ASSIGN_OR_RETURN(Program program, ParseInternal(text));
  if (program.queries.empty() || !program.tgds.tgds.empty() ||
      !program.facts.empty()) {
    return Status::InvalidArgument("expected one or more queries");
  }
  UnionOfCQs out;
  for (const NamedQuery& nq : program.queries) {
    out.disjuncts.push_back(nq.query);
  }
  return out;
}

Result<Database> ParseDatabase(const std::string& text) {
  OMQC_ASSIGN_OR_RETURN(Program program, ParseInternal(text));
  if (!program.queries.empty() || !program.tgds.tgds.empty()) {
    return Status::InvalidArgument("expected only facts");
  }
  return program.facts;
}

std::string SerializeProgram(const Program& program) {
  std::string out;
  for (const Tgd& tgd : program.tgds.tgds) {
    out += tgd.ToString();
    out += ".\n";
  }
  for (const NamedQuery& nq : program.queries) {
    out += nq.name;
    out += "(";
    out += JoinMapped(nq.query.answer_vars, ",",
                      [](const Term& t) { return t.ToString(); });
    out += ") :- ";
    out += nq.query.body.empty()
               ? std::string("true")
               : JoinMapped(nq.query.body, ", ",
                            [](const Atom& a) { return a.ToString(); });
    out += ".\n";
  }
  // Cold path (serialization): materializing atoms() walk is fine.
  for (const Atom& fact : program.facts.atoms()) {
    out += fact.ToString();
    out += ".\n";
  }
  return out;
}

Result<Atom> ParseAtom(const std::string& text) {
  Lexer lexer(text);
  OMQC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSingleAtom();
}

}  // namespace omqc
