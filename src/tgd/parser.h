// Text format for ontologies, queries and databases (DLGP-inspired).
//
// Grammar (statements end with '.'; '%' starts a line comment):
//
//   tgd:    body -> head .          e.g.  R(X,Y), P(Y) -> T(X,Z).
//           -> head .               fact tgd (⊤ → ...), also "true -> head."
//   query:  Name(Args) :- body .    e.g.  Q(X) :- R(X,Y), P(Y).
//           Name(Args) :- true .    body-less query (rare; for tests)
//   fact:   R(a,b).                 a database atom (all constants)
//
// Identifiers starting with an uppercase letter or '_' are variables; all
// other identifiers, numbers and 'single-quoted strings' are constants.

#ifndef OMQC_TGD_PARSER_H_
#define OMQC_TGD_PARSER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "tgd/tgd.h"

namespace omqc {

/// A named query as it appears in program text.
struct NamedQuery {
  std::string name;
  ConjunctiveQuery query;
};

/// The result of parsing a program: ontology rules, queries and facts.
struct Program {
  TgdSet tgds;
  std::vector<NamedQuery> queries;
  Database facts;

  /// The disjuncts of all queries named `name`, as a UCQ (queries sharing
  /// a name form a union, the usual Datalog convention).
  UnionOfCQs QueriesNamed(const std::string& name) const;
};

/// Parses a full program. Errors carry 1-based line/column positions.
Result<Program> ParseProgram(const std::string& text);

/// Parses a single tgd, e.g. "R(X,Y) -> S(Y,Z)". No trailing period needed.
Result<Tgd> ParseTgd(const std::string& text);

/// Parses a set of tgds (one per statement).
Result<TgdSet> ParseTgds(const std::string& text);

/// Parses a single query, e.g. "Q(X) :- R(X,Y)".
Result<ConjunctiveQuery> ParseQuery(const std::string& text);

/// Parses a UCQ: several query statements (names are ignored).
Result<UnionOfCQs> ParseUCQ(const std::string& text);

/// Parses a database: fact statements only.
Result<Database> ParseDatabase(const std::string& text);

/// Parses a single atom, e.g. "R(X,a)".
Result<Atom> ParseAtom(const std::string& text);

/// Serializes a program back into the text format; the output re-parses
/// into an equivalent program (round-trip tested). Query names are taken
/// from `queries`; facts print one per line.
std::string SerializeProgram(const Program& program);

}  // namespace omqc

#endif  // OMQC_TGD_PARSER_H_
