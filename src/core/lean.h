// Lean tree decompositions (Sec. 7.2 appendix): the canonical tree
// representations of C-trees over unary/binary schemas used by the UCQ-
// rewritability characterization (Prop. 30). Leanness pins down a unique
// notion of distance-from-the-root and of branching degree (Lemmas 50/51),
// enabling the D≤k / D>k split of the boundedness property.

#ifndef OMQC_CORE_LEAN_H_
#define OMQC_CORE_LEAN_H_

#include <map>

#include "core/ctree.h"

namespace omqc {

/// Checks the three leanness conditions w.r.t. a core:
///   1. core elements occur only in the root bag and its children's bags;
///   2. every non-root bag shares exactly one element with its parent and
///      introduces exactly one new element;
///   3. the new element of a node occurs in the bag of each of its
///      children.
Status ValidateLean(const TreeDecomposition& decomposition,
                    const std::set<Term>& core_terms);

/// Builds a lean decomposition of a C-tree database over a unary/binary
/// schema by BFS over the Gaifman graph from the core. Fails when the
/// database is not tree-shaped outside the core (a back- or cross-edge is
/// found) or the schema has arity > 2.
Result<TreeDecomposition> BuildLeanDecomposition(
    const Database& database, const std::set<Term>& core_terms);

/// Distance of every term from the root of a lean decomposition: core
/// terms have distance 0; the new element of a node at tree depth d has
/// distance d (invariant across lean decompositions, Lemma 51).
std::map<Term, int> DistanceFromRoot(const TreeDecomposition& decomposition,
                                     const std::set<Term>& core_terms);

/// D≤k / D>k (Sec. 7.2): the subinstances induced by the terms at distance
/// at most k, respectively at least k+1, from the root.
struct DistanceSplit {
  Instance near;  ///< D≤k
  Instance far;   ///< D>k
};
DistanceSplit SplitByDistance(const Database& database,
                              const std::map<Term, int>& distance, int k);

/// The branching degree of a decomposition: the maximum number of
/// children over all nodes (invariant across lean decompositions of one
/// C-tree).
int BranchingDegree(const TreeDecomposition& decomposition);

}  // namespace omqc

#endif  // OMQC_CORE_LEAN_H_
