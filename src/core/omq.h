// Ontology-mediated queries (Sec. 2): Q = (S, Σ, q).

#ifndef OMQC_CORE_OMQ_H_
#define OMQC_CORE_OMQ_H_

#include <string>

#include "base/status.h"
#include "logic/cq.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"

namespace omqc {

/// An OMQ (S, Σ, q) with q a CQ. `data_schema` is the schema the query is
/// evaluated over; Σ and q may use additional predicates.
struct Omq {
  Schema data_schema;
  TgdSet tgds;
  ConjunctiveQuery query;

  Omq() = default;
  Omq(Schema s, TgdSet t, ConjunctiveQuery q)
      : data_schema(std::move(s)), tgds(std::move(t)), query(std::move(q)) {}

  /// Arity of the answer tuple.
  size_t AnswerArity() const { return query.answer_vars.size(); }

  /// S ∪ sch(Σ): the combined schema.
  Schema CombinedSchema() const {
    return data_schema.Union(tgds.SchemaOf());
  }

  /// The most specific tgd class of the ontology (for dispatch).
  TgdClass OntologyClass() const { return PrimaryClass(tgds); }

  /// ||Q||: symbols in Σ and q.
  size_t SymbolCount() const;

  std::string ToString() const;
};

/// An OMQ whose query is a UCQ (used by Prop. 9's UCQ→CQ transform and by
/// Sec. 6's guarded-vs-rewritable combinations).
struct UcqOmq {
  Schema data_schema;
  TgdSet tgds;
  UnionOfCQs query;

  std::string ToString() const;
};

/// Validates an OMQ: well-formed tgds and query; the data schema must not
/// be empty unless the query body is empty too.
Status ValidateOmq(const Omq& omq);

/// Builds the data schema from everything mentioned in tgd bodies/heads
/// and the query — convenient for tests ("the full schema is the data
/// schema").
Schema FullSchemaOf(const TgdSet& tgds, const ConjunctiveQuery& q);

}  // namespace omqc

#endif  // OMQC_CORE_OMQ_H_
