#include "core/omq.h"

#include "base/string_util.h"

namespace omqc {

size_t Omq::SymbolCount() const {
  size_t count = tgds.SymbolCount();
  for (const Atom& a : query.body) count += 1 + a.args.size();
  count += query.answer_vars.size();
  return count;
}

std::string Omq::ToString() const {
  return StrCat("OMQ over ", data_schema.ToString(), "\n",
                tgds.empty() ? std::string("(no tgds)") : tgds.ToString(),
                "\n", query.ToString());
}

std::string UcqOmq::ToString() const {
  return StrCat("OMQ over ", data_schema.ToString(), "\n",
                tgds.empty() ? std::string("(no tgds)") : tgds.ToString(),
                "\n", query.ToString());
}

Status ValidateOmq(const Omq& omq) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(omq.tgds));
  OMQC_RETURN_IF_ERROR(ValidateCQ(omq.query));
  return Status::OK();
}

Schema FullSchemaOf(const TgdSet& tgds, const ConjunctiveQuery& q) {
  Schema schema = tgds.SchemaOf();
  for (const Atom& a : q.body) schema.Add(a.predicate);
  return schema;
}

}  // namespace omqc
