// OMQ containment Cont(O1, O2) (Secs. 3-6) — the paper's central problem.
//
// Architecture (one uniform engine, per DESIGN.md):
//
//   Q1 ⊆ Q2  iff  for every disjunct p of the (possibly infinite) UCQ
//   rewriting of Q1, the frozen tuple of p is a certain answer of Q2 over
//   the frozen body of p.
//
// * The "only if" direction is the homomorphism-closure argument from the
//   proof of Prop. 10; the "if" direction is soundness of rewriting.
// * For UCQ-rewritable LHS languages (linear / non-recursive / sticky,
//   Sec. 4) the rewriting enumeration saturates, so this is a *decision
//   procedure* realizing the small-witness algorithm of Theorem 11: the
//   candidate witnesses are exactly the frozen disjuncts, whose size obeys
//   Props. 12 / 14 / 17.
// * For a guarded LHS (Sec. 5) the perfect rewriting may be infinite; the
//   enumeration is then a sound refutation-complete semi-procedure (every
//   non-containment is witnessed by some frozen disjunct), certifying
//   containment when the enumeration saturates and returning kUnknown at
//   the budget otherwise. This replaces the paper's 2WAPA emptiness test,
//   which decides the same question in the 2EXPTIME worst case; see the
//   substitution table in DESIGN.md.
// * The right-hand side is evaluated with the exact strategy of
//   src/core/eval.h; a guarded RHS uses the budgeted chase and may also
//   contribute kUnknown.

#ifndef OMQC_CORE_CONTAINMENT_H_
#define OMQC_CORE_CONTAINMENT_H_

#include <optional>
#include <string>

#include "core/engine_stats.h"
#include "core/eval.h"
#include "core/omq.h"
#include "rewrite/xrewrite.h"

namespace omqc {

enum class ContainmentOutcome {
  kContained,     ///< Q1 ⊆ Q2, certified
  kNotContained,  ///< counterexample database found
  kUnknown,       ///< a budget was exhausted before a certificate
};

const char* ContainmentOutcomeToString(ContainmentOutcome outcome);

/// A counterexample to containment: tuple ∈ Q1(database) \ Q2(database).
struct ContainmentWitness {
  Database database;
  std::vector<Term> tuple;
};

struct ContainmentResult {
  ContainmentOutcome outcome = ContainmentOutcome::kUnknown;
  std::optional<ContainmentWitness> witness;
  /// Explanation for kUnknown outcomes.
  std::string detail;
  /// Number of candidate witnesses (frozen rewriting disjuncts) examined.
  size_t candidates_checked = 0;
  /// Size (atoms) of the largest candidate witness examined.
  size_t max_witness_size = 0;
  /// Per-layer work counters of the whole run (LHS enumeration, RHS
  /// chase/rewriting/homomorphism searches).
  EngineStats stats;
};

struct ContainmentOptions {
  /// Budgets for enumerating the LHS rewriting. Subsumption pruning is on
  /// by default: it preserves refutation-completeness (a pruned candidate
  /// is homomorphically covered by the disjunct that subsumed it) and
  /// makes the enumeration saturate on many guarded ontologies.
  XRewriteOptions rewrite;
  /// Budgets for evaluating the RHS over candidate witnesses.
  EvalOptions eval;
  /// Worker threads for the per-disjunct RHS checks: 1 (default) runs the
  /// engine serially on the calling thread; 0 means "hardware
  /// concurrency"; n > 1 fans the frozen candidates out over n workers
  /// with an early exit once any worker refutes containment. The outcome
  /// is identical for every thread count (only the reported witness may
  /// differ when several disjuncts refute).
  size_t num_threads = 1;
  /// Optional compilation cache (null = no caching). Consulted for the LHS
  /// rewriting enumeration, the RHS ontology classification/rewriting and
  /// the prepared RHS evaluator; also propagated into `eval.cache` when
  /// that is null. Shared safely across threads and calls; outcomes are
  /// identical with and without it (only compilation work is reused).
  ArtifactStore* cache = nullptr;
  /// Optional shared request governor (base/governor.h) bounding the whole
  /// containment request — LHS enumeration, freezing, and every RHS check,
  /// serial or pooled — by wall-clock deadline, cooperative cancellation
  /// and memory budget. Internally the engine layers a child governor on
  /// top (sharing these limits but owning its own token) so a refuting
  /// worker can cancel its siblings without cancelling the caller's
  /// request. A trip degrades the outcome to kUnknown with the trip in
  /// `detail` — a refutation found before the trip still wins
  /// (kNotContained), and a definite answer is never flipped. Propagated
  /// into `eval.governor` when that is null. Not owned.
  ResourceGovernor* governor = nullptr;

  ContainmentOptions() {
    rewrite.prune_subsumed = true;
    // Subsumption pruning scans earlier disjuncts per candidate, so keep
    // the default enumeration budget interactive; raise it for hard
    // instances (the engine returns kUnknown, never a wrong answer, when
    // the budget is hit).
    rewrite.max_queries = 5000;
  }
};

/// Decides Q1 ⊆ Q2. Exact whenever Q1's ontology is linear, non-recursive
/// or sticky and Q2's evaluation is exact (Thm. 11 + Props. 12/14/17);
/// sound, refutation-complete and budget-limited when Q1 is guarded or
/// beyond (Sec. 5 scope; see header comment). The two OMQs must share the
/// data schema and answer arity.
Result<ContainmentResult> CheckContainment(
    const Omq& q1, const Omq& q2,
    const ContainmentOptions& options = ContainmentOptions());

/// Decides Q1 ⊆ u for a plain UCQ u over the data schema (the
/// Cont((G,CQ), UCQ) building block of Sec. 6.2 and Sec. 7.2).
Result<ContainmentResult> CheckContainmentInUcq(
    const Omq& q1, const UnionOfCQs& ucq,
    const ContainmentOptions& options = ContainmentOptions());

/// Containment for OMQs with UCQ queries: (S,Σ1,∨q1i) ⊆ (S,Σ2,∨q2j) iff
/// every (S,Σ1,q1i) is contained in the RHS (union distributes on the
/// left). The RHS keeps its UCQ.
Result<ContainmentResult> CheckUcqOmqContainment(
    const UcqOmq& q1, const UcqOmq& q2,
    const ContainmentOptions& options = ContainmentOptions());

/// Q1 ≡ Q2: containment in both directions.
Result<ContainmentResult> CheckEquivalence(
    const Omq& q1, const Omq& q2,
    const ContainmentOptions& options = ContainmentOptions());

}  // namespace omqc

#endif  // OMQC_CORE_CONTAINMENT_H_
