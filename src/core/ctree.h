// Tree decompositions, C-trees, guarded unraveling and the ΓS,l tree
// encoding of Sec. 5 (Defs. 2/8/9, Lemmas 22, 37, 41).

#ifndef OMQC_CORE_CTREE_H_
#define OMQC_CORE_CTREE_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/instance.h"
#include "logic/substitution.h"

namespace omqc {

/// A rooted tree decomposition: bags of terms, one per node; node 0 is the
/// root; parent[0] == -1.
struct TreeDecomposition {
  std::vector<std::set<Term>> bags;
  std::vector<int> parent;

  size_t size() const { return bags.size(); }
  /// width = max bag size - 1.
  int Width() const;
  std::vector<std::vector<int>> Children() const;
  std::string ToString() const;
};

/// Checks the two tree-decomposition conditions w.r.t. `instance`:
/// every atom fits in some bag, and each term's bags form a connected
/// subtree.
Status ValidateDecomposition(const TreeDecomposition& decomposition,
                             const Instance& instance);

/// Checks [U]-guardedness: every bag not in `exempt` is covered by some
/// atom of the instance (Def. 2's condition 2 uses exempt = {root}).
bool IsGuardedExcept(const TreeDecomposition& decomposition,
                     const Instance& instance, const std::set<int>& exempt);

/// True iff `instance` is a C-tree witnessed by `decomposition` whose root
/// bag induces exactly `core` (Def. 2/9).
Status ValidateCTree(const TreeDecomposition& decomposition,
                     const Instance& instance, const Instance& core);

/// Guarded unraveling of `instance` around the terms `x0`, truncated at
/// tree depth `depth` (Lemma 37; the full unraveling is infinite). The
/// result is a C-tree together with its witnessing decomposition and a
/// homomorphism back to the original instance. Fresh constants
/// "@u<k>" stand for the equivalence classes [π]_a.
struct Unraveling {
  Instance instance;
  TreeDecomposition decomposition;
  /// Maps each unraveling term to the original term it represents.
  Substitution back_homomorphism;
};
Result<Unraveling> GuardedUnravel(const Instance& instance,
                                  const std::set<Term>& x0, int depth);

/// The ΓS,l encoding of a C-tree (appendix "Encoding"). Names are small
/// integers: core names Cl = {0,...,l-1}, tree names TS = {l,...,l+2w-1}
/// where w = ar(S).
struct TreeLabel {
  std::set<int> names;               ///< D_a markers
  std::set<int> core_names;          ///< C_a markers (subset of Cl)
  /// R_ā markers: atoms whose arguments are names.
  std::set<std::pair<Predicate, std::vector<int>>> atoms;

  std::string ToString() const;
  bool operator==(const TreeLabel& other) const {
    return names == other.names && core_names == other.core_names &&
           atoms == other.atoms;
  }
};

/// Deterministic hash over a label's (sorted) set contents; enables O(1)
/// label lookup tables such as GammaAlphabet's index.
struct TreeLabelHash {
  size_t operator()(const TreeLabel& label) const;
};

/// A ΓS,l-labeled tree (structure mirrors the decomposition).
struct EncodedTree {
  int l = 0;          ///< number of core names
  int width = 0;      ///< ar(S); tree names are l..l+2*width-1
  std::vector<TreeLabel> labels;
  std::vector<int> parent;  ///< parent[0] == -1

  size_t size() const { return labels.size(); }
  std::vector<std::vector<int>> Children() const;
};

/// Encodes a C-tree (validated against `decomposition` and `core`) into a
/// ΓS,l-labeled tree with l = max(|dom(core)|, given l).
Result<EncodedTree> EncodeCTree(const Instance& instance,
                                const TreeDecomposition& decomposition,
                                const Instance& core, int l);

/// The consistency conditions (1)-(5) of the appendix. OK iff consistent.
Status CheckConsistency(const EncodedTree& tree);

/// Decodes a consistent tree into a database JtK (Lemma 41). Fresh
/// constants "@dec<k>" stand for the name-equivalence classes [v]_a.
Result<Database> DecodeTree(const EncodedTree& tree);

}  // namespace omqc

#endif  // OMQC_CORE_CTREE_H_
