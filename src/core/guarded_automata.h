// The Sec. 5 automata pipeline made explicit for small schemas: enumerate
// the ΓS,l alphabet, build the consistency automaton of Lemma 23 as an
// actual 2WAPA, and compose it with query automata in the style of
// Prop. 25's (C_{S,l} ∩ A_{Q1,l}) ∩ comp(A_{Q2,l}).
//
// The alphabet ΓS,l is double-exponential in ar(S); materializing it is
// only feasible for toy schemas, which is exactly what these helpers are
// for: demonstrating and testing the paper's construction end to end.
// The production containment path (src/core/containment.h) runs the
// equivalent search on the fly instead — see DESIGN.md.
//
// Scope note: the consistency automaton checks conditions (1)-(4) of the
// encoding; condition (5) (guardedness of every bag by a b-connected
// atom) involves an unbounded two-way reachability argument and is
// checked by CheckConsistency() directly. FullyConsistent() combines
// both.

#ifndef OMQC_CORE_GUARDED_AUTOMATA_H_
#define OMQC_CORE_GUARDED_AUTOMATA_H_

#include <unordered_map>
#include <vector>

#include "automata/twapa.h"
#include "base/status.h"
#include "core/ctree.h"

namespace omqc {

/// An explicit ΓS,l alphabet: every label over `l` core names, `width`
/// tree names and atoms drawn from `schema`, paired with the automata
/// that run over it.
struct GammaAlphabet {
  int l = 0;
  int width = 0;
  Schema schema;
  std::vector<TreeLabel> labels;
  /// Hash index over `labels`; EnumerateGammaAlphabet fills it in, and
  /// IndexOf falls back to a linear scan for hand-built alphabets that
  /// leave it empty.
  std::unordered_map<TreeLabel, int, TreeLabelHash> index;

  /// Index of a label in `labels`, or -1 when absent. O(1) via `index`
  /// when populated.
  int IndexOf(const TreeLabel& label) const;

  /// Converts an encoded tree into an integer-labeled tree over this
  /// alphabet (fails when a label is not part of the alphabet).
  Result<LabeledTree> ToLabeledTree(const EncodedTree& tree) const;
};

/// Enumerates ΓS,l for a (tiny!) schema: all name sets of size <= max(l,
/// width), core markers, and atom sets over the names. The total count is
/// checked against `max_labels` (default 200000) — a generous toy-scale
/// cap; exceeding it returns ResourceExhausted (the alphabet is
/// double-exponential in general, which is the point of the paper's
/// complexity analysis).
Result<GammaAlphabet> EnumerateGammaAlphabet(const Schema& schema, int l,
                                             int width,
                                             size_t max_labels = 200000);

/// Lemma 23 (conditions (1)-(4)): a 2WAPA over the alphabet accepting
/// exactly the trees that satisfy the local consistency conditions: name
/// budgets, declared atom arguments, core-marker/name agreement on Cl and
/// downward core-marker propagation. States: one dispatch state plus one
/// per subset of Cl (the parent's core-marker set).
Twapa ConsistencyAutomaton(const GammaAlphabet& alphabet);

/// A query automaton for an atomic existential query ∃x̄ R(x̄): accepts
/// iff some node's label carries an R-atom marker (i.e., the decoded
/// database contains an R atom).
Twapa AtomPresenceAutomaton(const GammaAlphabet& alphabet, Predicate pred);

/// Full consistency = automaton conditions (1)-(4) + condition (5).
bool FullyConsistent(const GammaAlphabet& alphabet, const EncodedTree& tree);

}  // namespace omqc

#endif  // OMQC_CORE_GUARDED_AUTOMATA_H_
