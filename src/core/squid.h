// Squid decompositions (Def. 13) and the hypergraph-acyclicity machinery
// behind them (Lemma 43): a squid decomposition of a BCQ splits its atoms
// into a "head" H mapped into the cyclic core of a C-tree and
// [V]-acyclic "tentacles" T mapped into the tree part.
//
// [V]-acyclicity is α-acyclicity of the hypergraph obtained by deleting
// the omitted variables, decided by GYO ear removal.

#ifndef OMQC_CORE_SQUID_H_
#define OMQC_CORE_SQUID_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/substitution.h"

namespace omqc {

/// α-acyclicity of the hypergraph whose hyperedges are the variable sets
/// of `atoms` minus `omit` (GYO reduction: repeatedly delete isolated
/// vertices and ear edges; acyclic iff everything vanishes).
/// With omit = ∅ this is plain query acyclicity; with omit = V it is the
/// [V]-acyclicity of Def. 12.
bool IsAlphaAcyclic(const std::vector<Atom>& atoms,
                    const std::set<Term>& omit = {});

/// A squid decomposition of a Boolean CQ w.r.t. a homomorphism into a
/// C-tree instance: H = atoms mapped into the core, T = the remaining
/// atoms ([V]-acyclic), V = the query variables mapped into the core.
struct SquidDecomposition {
  std::vector<Atom> head;       ///< H
  std::vector<Atom> tentacles;  ///< T
  std::set<Term> core_vars;     ///< V
  /// Whether T is [V]-acyclic. Lemma 43 guarantees that *some* squid
  /// decomposition with acyclic tentacles exists for any match into a
  /// C-tree (via an S-cover refinement); the one induced by a raw
  /// homomorphism may fold the query and fail the property, which this
  /// flag reports.
  bool tentacles_acyclic = false;

  std::string ToString() const;
};

/// Computes the squid decomposition induced by `hom` (a homomorphism from
/// q's body into `instance`): atoms whose image lies inside
/// `core_terms`-induced atoms form H; everything else forms T; V collects
/// the query variables mapped onto core terms. Returns InvalidArgument
/// when `hom` is not a homomorphism into `instance`.
Result<SquidDecomposition> ComputeSquidDecomposition(
    const ConjunctiveQuery& q, const Instance& instance,
    const std::set<Term>& core_terms, const Substitution& hom);

}  // namespace omqc

#endif  // OMQC_CORE_SQUID_H_
