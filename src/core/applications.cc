#include "core/applications.h"

#include <set>

#include "base/string_util.h"

namespace omqc {
namespace {

/// The critical database: every fact over the domain {*} ∪ constants(Q).
Database CriticalDatabase(const Omq& omq) {
  std::vector<Term> domain{Term::Constant("@crit")};
  for (const Term& c : omq.tgds.Constants()) domain.push_back(c);
  for (const Term& c : omq.query.Constants()) domain.push_back(c);
  Database critical;
  for (const Predicate& p : omq.data_schema.predicates()) {
    // All |domain|^arity tuples.
    std::vector<size_t> idx(static_cast<size_t>(p.arity()), 0);
    while (true) {
      std::vector<Term> args;
      for (size_t i : idx) args.push_back(domain[i]);
      critical.Add(Atom(p, std::move(args)));
      // Advance the odometer.
      size_t k = 0;
      for (; k < idx.size(); ++k) {
        if (++idx[k] < domain.size()) break;
        idx[k] = 0;
      }
      if (k == idx.size()) break;
      if (idx.empty()) break;
    }
    if (p.arity() == 0) critical.Add(Atom(p, {}));
  }
  return critical;
}

}  // namespace

Result<bool> IsSatisfiable(const Omq& omq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  if (IsUcqRewritableClass(omq.OntologyClass())) {
    bool found = false;
    std::function<bool(const ConjunctiveQuery&)> probe =
        [&found](const ConjunctiveQuery&) {
          found = true;
          return false;  // one disjunct suffices
        };
    OMQC_ASSIGN_OR_RETURN(
        RewriteEnumeration outcome,
        EnumerateRewritings(omq.data_schema, omq.tgds, omq.query,
                            options.rewrite, probe));
    (void)outcome;
    return found;
  }
  // Critical-database test (homomorphism closure of OMQs).
  Database critical = CriticalDatabase(omq);
  OMQC_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> answers,
                        EvalAll(omq, critical, options.eval));
  return !answers.empty();
}

Result<DistributionResult> DistributesOverComponents(
    const Omq& omq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  DistributionResult result;

  Result<bool> satisfiable = IsSatisfiable(omq, options);
  if (satisfiable.ok() && !*satisfiable) {
    result.outcome = ContainmentOutcome::kContained;  // distributes
    result.detail = "Q is unsatisfiable";
    return result;
  }

  std::vector<ConjunctiveQuery> components = omq.query.Components();
  // A connected query is its own single component, and (S,Σ,q) ⊆ Q holds
  // trivially — no containment check needed (this also sidesteps the
  // budget on recursive guarded ontologies).
  if (components.size() <= 1) {
    result.outcome = ContainmentOutcome::kContained;
    if (!components.empty()) result.witnessing_component = 0;
    result.detail = "the query is connected";
    return result;
  }
  std::set<Term> answer_vars;
  for (const Term& v : omq.query.answer_vars) {
    if (v.IsVariable()) answer_vars.insert(v);
  }
  bool any_unknown = false;
  for (size_t i = 0; i < components.size(); ++i) {
    // q̂(x̄) must carry the full answer tuple to be a candidate.
    std::set<Term> component_vars;
    for (const Atom& a : components[i].body) {
      for (const Term& t : a.args) {
        if (t.IsVariable()) component_vars.insert(t);
      }
    }
    bool carries_all = true;
    for (const Term& v : answer_vars) {
      if (component_vars.count(v) == 0) {
        carries_all = false;
        break;
      }
    }
    if (!carries_all) continue;
    ConjunctiveQuery candidate(omq.query.answer_vars, components[i].body);
    Omq component_omq{omq.data_schema, omq.tgds, std::move(candidate)};
    OMQC_ASSIGN_OR_RETURN(ContainmentResult contained,
                          CheckContainment(component_omq, omq, options));
    if (contained.outcome == ContainmentOutcome::kContained) {
      result.outcome = ContainmentOutcome::kContained;
      result.witnessing_component = i;
      return result;
    }
    if (contained.outcome == ContainmentOutcome::kUnknown) {
      any_unknown = true;
      result.detail = contained.detail;
    }
  }
  if (!satisfiable.ok()) {
    any_unknown = true;
    result.detail = satisfiable.status().ToString();
  }
  result.outcome = any_unknown ? ContainmentOutcome::kUnknown
                               : ContainmentOutcome::kNotContained;
  if (result.outcome == ContainmentOutcome::kNotContained) {
    result.detail = "no component of q is contained in Q (Prop. 27)";
  }
  return result;
}

Result<std::vector<std::vector<Term>>> EvalOverComponents(
    const Omq& omq, const Database& database, const EvalOptions& options) {
  std::set<std::vector<Term>> answers;
  for (const Instance& component : database.ConnectedComponents()) {
    OMQC_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> partial,
                          EvalAll(omq, component, options));
    for (std::vector<Term>& t : partial) answers.insert(std::move(t));
  }
  // 0-ary atoms are excluded from components (paper footnote 5); evaluate
  // over them separately so Boolean queries over 0-ary predicates work.
  Database nullary;
  for (AtomId id = 0; id < database.size(); ++id) {
    const AtomView a = database.view(id);
    if (a.arity() == 0) nullary.AddView(a);
  }
  if (!nullary.empty()) {
    OMQC_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> partial,
                          EvalAll(omq, nullary, options));
    for (std::vector<Term>& t : partial) answers.insert(std::move(t));
  }
  return std::vector<std::vector<Term>>(answers.begin(), answers.end());
}

Result<UcqRewritabilityResult> CheckUcqRewritability(
    const Omq& omq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  UcqRewritabilityResult result;
  XRewriteOptions rewrite_options = options.rewrite;
  rewrite_options.prune_subsumed = true;
  UnionOfCQs collected;
  std::function<bool(const ConjunctiveQuery&)> collect =
      [&collected](const ConjunctiveQuery& p) {
        collected.disjuncts.push_back(p);
        return true;
      };
  OMQC_ASSIGN_OR_RETURN(
      RewriteEnumeration outcome,
      EnumerateRewritings(omq.data_schema, omq.tgds, omq.query,
                          rewrite_options, collect));
  result.disjuncts_found = collected.size();
  if (outcome == RewriteEnumeration::kSaturated) {
    result.outcome = ContainmentOutcome::kContained;
    result.rewriting = MinimizeUCQ(collected);
    return result;
  }
  result.outcome = ContainmentOutcome::kUnknown;
  result.detail = StrCat(
      "the pruned rewriting enumeration did not saturate within the budget "
      "(", collected.size(),
      " pairwise non-subsumed disjuncts found); a steadily growing series "
      "is evidence that the boundedness property of Prop. 30 fails");
  return result;
}

}  // namespace omqc
