#include "core/ctree.h"

#include <algorithm>
#include <map>
#include <queue>

#include "base/string_util.h"

namespace omqc {

int TreeDecomposition::Width() const {
  int width = 0;
  for (const std::set<Term>& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

std::vector<std::vector<int>> TreeDecomposition::Children() const {
  std::vector<std::vector<int>> children(bags.size());
  for (size_t i = 1; i < parent.size(); ++i) {
    children[static_cast<size_t>(parent[i])].push_back(static_cast<int>(i));
  }
  return children;
}

std::string TreeDecomposition::ToString() const {
  std::string out;
  for (size_t i = 0; i < bags.size(); ++i) {
    out += StrCat("node ", i, " (parent ", parent[i], "): {",
                  JoinMapped(bags[i], ", ",
                             [](const Term& t) { return t.ToString(); }),
                  "}\n");
  }
  return out;
}

Status ValidateDecomposition(const TreeDecomposition& decomposition,
                             const Instance& instance) {
  if (decomposition.bags.empty() ||
      decomposition.bags.size() != decomposition.parent.size() ||
      decomposition.parent[0] != -1) {
    return Status::InvalidArgument("malformed decomposition structure");
  }
  for (size_t i = 1; i < decomposition.parent.size(); ++i) {
    int p = decomposition.parent[i];
    if (p < 0 || static_cast<size_t>(p) >= i) {
      return Status::InvalidArgument(
          "parents must precede children (topological node order)");
    }
  }
  // Condition (i): every atom fits in a bag.
  for (AtomId id = 0; id < instance.size(); ++id) {
    const AtomView a = instance.view(id);
    bool covered = false;
    for (const std::set<Term>& bag : decomposition.bags) {
      bool inside = true;
      for (const Term& t : a) {
        if (bag.count(t) == 0) {
          inside = false;
          break;
        }
      }
      if (inside) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return Status::InvalidArgument(
          StrCat("atom ", a.Materialize().ToString(),
                 " is not covered by any bag"));
    }
  }
  // Condition (ii): each term's bags form a connected subtree.
  auto children = decomposition.Children();
  for (const Term& t : instance.ActiveDomain()) {
    std::vector<int> holders;
    for (size_t i = 0; i < decomposition.bags.size(); ++i) {
      if (decomposition.bags[i].count(t) > 0) {
        holders.push_back(static_cast<int>(i));
      }
    }
    if (holders.empty()) {
      return Status::InvalidArgument(
          StrCat("term ", t.ToString(), " occurs in no bag"));
    }
    // BFS within holder nodes.
    std::set<int> holder_set(holders.begin(), holders.end());
    std::set<int> seen{holders.front()};
    std::queue<int> frontier;
    frontier.push(holders.front());
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      std::vector<int> neighbors = children[static_cast<size_t>(v)];
      if (decomposition.parent[static_cast<size_t>(v)] >= 0) {
        neighbors.push_back(decomposition.parent[static_cast<size_t>(v)]);
      }
      for (int n : neighbors) {
        if (holder_set.count(n) > 0 && seen.insert(n).second) {
          frontier.push(n);
        }
      }
    }
    if (seen.size() != holder_set.size()) {
      return Status::InvalidArgument(
          StrCat("bags containing ", t.ToString(), " are not connected"));
    }
  }
  return Status::OK();
}

bool IsGuardedExcept(const TreeDecomposition& decomposition,
                     const Instance& instance, const std::set<int>& exempt) {
  for (size_t i = 0; i < decomposition.bags.size(); ++i) {
    if (exempt.count(static_cast<int>(i)) > 0) continue;
    const std::set<Term>& bag = decomposition.bags[i];
    bool guarded = false;
    for (AtomId id = 0; id < instance.size(); ++id) {
      const AtomView a = instance.view(id);
      const std::set<Term> args(a.begin(), a.end());
      bool covers = true;
      for (const Term& t : bag) {
        if (args.count(t) == 0) {
          covers = false;
          break;
        }
      }
      if (covers) {
        guarded = true;
        break;
      }
    }
    if (!guarded) return false;
  }
  return true;
}

Status ValidateCTree(const TreeDecomposition& decomposition,
                     const Instance& instance, const Instance& core) {
  OMQC_RETURN_IF_ERROR(ValidateDecomposition(decomposition, instance));
  Instance induced = instance.InducedBy(decomposition.bags[0]);
  if (!(induced == core)) {
    return Status::InvalidArgument(
        "the root bag does not induce the declared core");
  }
  if (!IsGuardedExcept(decomposition, instance, {0})) {
    return Status::InvalidArgument(
        "the decomposition is not guarded except for the root");
  }
  return Status::OK();
}

Result<Unraveling> GuardedUnravel(const Instance& instance,
                                  const std::set<Term>& x0, int depth) {
  if (x0.empty()) {
    return Status::InvalidArgument("unraveling needs a non-empty core set");
  }
  Unraveling out;
  int fresh_counter = 0;
  auto fresh = [&fresh_counter]() {
    return Term::Constant(StrCat("@u", fresh_counter++));
  };

  struct Node {
    std::set<Term> originals;
    std::map<Term, Term> to_unraveled;
    int depth;
  };
  std::vector<Node> nodes;

  // Root: the x0 set.
  Node root;
  root.originals = x0;
  root.depth = 0;
  for (const Term& t : x0) {
    Term u = fresh();
    root.to_unraveled.emplace(t, u);
    out.back_homomorphism.Bind(u, t);
  }
  nodes.push_back(std::move(root));
  out.decomposition.parent.push_back(-1);

  // Emit the atoms induced by a node's bag, translated through the node's
  // renaming. Built straight from arena views: only the translated copy
  // that lands in out.instance is ever materialized.
  auto emit_atoms = [&](const Node& node) {
    Instance induced = instance.InducedBy(node.originals);
    std::vector<Term> args;
    for (AtomId id = 0; id < induced.size(); ++id) {
      const AtomView a = induced.view(id);
      args.assign(a.begin(), a.end());
      for (Term& t : args) t = node.to_unraveled.at(t);
      out.instance.Add(Atom(a.predicate(), args));
    }
  };
  emit_atoms(nodes[0]);

  std::queue<size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    size_t v = frontier.front();
    frontier.pop();
    if (nodes[v].depth >= depth) continue;
    // Children: one per instance atom overlapping the bag that brings new
    // elements.
    for (AtomId id = 0; id < instance.size(); ++id) {
      const AtomView a = instance.view(id);
      std::set<Term> guard_set(a.begin(), a.end());
      bool overlaps = false;
      bool adds_new = false;
      for (const Term& t : guard_set) {
        if (nodes[v].originals.count(t) > 0) {
          overlaps = true;
        } else {
          adds_new = true;
        }
      }
      if (!overlaps || !adds_new) continue;
      Node child;
      child.originals = guard_set;
      child.depth = nodes[v].depth + 1;
      for (const Term& t : guard_set) {
        auto shared = nodes[v].to_unraveled.find(t);
        if (shared != nodes[v].to_unraveled.end()) {
          child.to_unraveled.emplace(t, shared->second);
        } else {
          Term u = fresh();
          child.to_unraveled.emplace(t, u);
          out.back_homomorphism.Bind(u, t);
        }
      }
      emit_atoms(child);
      nodes.push_back(std::move(child));
      out.decomposition.parent.push_back(static_cast<int>(v));
      frontier.push(nodes.size() - 1);
    }
  }

  out.decomposition.bags.reserve(nodes.size());
  for (const Node& node : nodes) {
    std::set<Term> bag;
    for (const auto& [orig, unr] : node.to_unraveled) bag.insert(unr);
    out.decomposition.bags.push_back(std::move(bag));
  }
  return out;
}

std::string TreeLabel::ToString() const {
  std::string out = "{D:";
  out += JoinMapped(names, ",", [](int a) { return StrCat(a); });
  out += " C:";
  out += JoinMapped(core_names, ",", [](int a) { return StrCat(a); });
  out += " atoms:";
  out += JoinMapped(atoms, " ", [](const auto& pa) {
    return StrCat(pa.first.name(), "(",
                  JoinMapped(pa.second, ",", [](int a) { return StrCat(a); }),
                  ")");
  });
  out += "}";
  return out;
}

std::vector<std::vector<int>> EncodedTree::Children() const {
  std::vector<std::vector<int>> children(labels.size());
  for (size_t i = 1; i < parent.size(); ++i) {
    children[static_cast<size_t>(parent[i])].push_back(static_cast<int>(i));
  }
  return children;
}

Result<EncodedTree> EncodeCTree(const Instance& instance,
                                const TreeDecomposition& decomposition,
                                const Instance& core, int l) {
  OMQC_RETURN_IF_ERROR(ValidateCTree(decomposition, instance, core));
  const int core_size =
      static_cast<int>(decomposition.bags[0].size());
  if (l < core_size) l = core_size;
  int width = 0;
  for (size_t i = 1; i < decomposition.bags.size(); ++i) {
    width = std::max(width, static_cast<int>(decomposition.bags[i].size()));
  }
  width = std::max(width, 1);

  EncodedTree tree;
  tree.l = l;
  tree.width = width;
  tree.parent = decomposition.parent;
  tree.labels.resize(decomposition.bags.size());

  // name assignment per node: term -> name id.
  std::vector<std::map<Term, int>> naming(decomposition.bags.size());
  // Root: core names.
  {
    int next = 0;
    for (const Term& t : decomposition.bags[0]) naming[0][t] = next++;
  }
  const std::set<Term> core_terms = decomposition.bags[0];
  for (size_t v = 1; v < decomposition.bags.size(); ++v) {
    const size_t p = static_cast<size_t>(decomposition.parent[v]);
    std::set<int> taken;
    // First pass: inherit names of elements shared with the parent, and
    // reserve every name visible in the parent bag.
    for (const auto& [t, name] : naming[p]) taken.insert(name);
    for (const Term& t : decomposition.bags[v]) {
      auto it = naming[p].find(t);
      if (it != naming[p].end()) naming[v][t] = it->second;
    }
    // Second pass: fresh tree names for new elements.
    for (const Term& t : decomposition.bags[v]) {
      if (naming[v].count(t) > 0) continue;
      int name = -1;
      for (int candidate = l; candidate < l + 2 * width; ++candidate) {
        if (taken.count(candidate) == 0) {
          bool used_here = false;
          for (const auto& [t2, n2] : naming[v]) {
            if (n2 == candidate) {
              used_here = true;
              break;
            }
          }
          if (!used_here) {
            name = candidate;
            break;
          }
        }
      }
      if (name < 0) {
        return Status::Internal("ran out of tree names during encoding");
      }
      naming[v][t] = name;
      taken.insert(name);
    }
  }

  for (size_t v = 0; v < decomposition.bags.size(); ++v) {
    TreeLabel& label = tree.labels[v];
    for (const auto& [t, name] : naming[v]) {
      label.names.insert(name);
      if (core_terms.count(t) > 0) label.core_names.insert(name);
    }
    Instance induced = instance.InducedBy(decomposition.bags[v]);
    for (AtomId id = 0; id < induced.size(); ++id) {
      const AtomView a = induced.view(id);
      std::vector<int> names;
      names.reserve(a.arity());
      for (const Term& t : a) names.push_back(naming[v].at(t));
      label.atoms.insert({a.predicate(), std::move(names)});
    }
  }
  return tree;
}

Status CheckConsistency(const EncodedTree& tree) {
  if (tree.labels.empty()) {
    return Status::InvalidArgument("empty encoded tree");
  }
  const int l = tree.l;
  auto children = tree.Children();
  // (1) Name budgets; root names are core names.
  for (size_t v = 0; v < tree.size(); ++v) {
    const TreeLabel& label = tree.labels[v];
    if (v == 0) {
      if (static_cast<int>(label.names.size()) > l) {
        return Status::InvalidArgument("root uses more than l names");
      }
      for (int a : label.names) {
        if (a >= l) {
          return Status::InvalidArgument("root uses a non-core name");
        }
      }
    } else if (static_cast<int>(label.names.size()) > tree.width) {
      return Status::InvalidArgument(
          StrCat("node ", v, " uses more than ar(S) names"));
    }
    // (2) Atom arguments are declared names.
    for (const auto& [pred, args] : label.atoms) {
      for (int a : args) {
        if (label.names.count(a) == 0) {
          return Status::InvalidArgument(
              StrCat("node ", v, " mentions undeclared name ", a));
        }
      }
    }
    // (3) D_a iff C_a for core names.
    for (int a : label.names) {
      if (a < l && label.core_names.count(a) == 0) {
        return Status::InvalidArgument(
            StrCat("node ", v, " uses core name ", a, " without C marker"));
      }
    }
    for (int a : label.core_names) {
      if (a >= l || label.names.count(a) == 0) {
        return Status::InvalidArgument(
            StrCat("node ", v, " has a stray core marker ", a));
      }
    }
  }
  // (4) Core markers propagate to the root.
  for (size_t v = 1; v < tree.size(); ++v) {
    for (int a : tree.labels[v].core_names) {
      int p = tree.parent[v];
      if (tree.labels[static_cast<size_t>(p)].core_names.count(a) == 0) {
        return Status::InvalidArgument(
            StrCat("core marker ", a, " at node ", v,
                   " does not propagate to its parent"));
      }
    }
  }
  // (5) Guardedness: every non-root node's names are covered by an atom of
  // a b-connected node.
  for (size_t v = 1; v < tree.size(); ++v) {
    const TreeLabel& label = tree.labels[v];
    if (label.names.empty()) continue;
    // Search b-connected nodes (all names of v present along the path).
    bool found = false;
    std::queue<int> frontier;
    std::set<int> seen{static_cast<int>(v)};
    frontier.push(static_cast<int>(v));
    while (!frontier.empty() && !found) {
      int w = frontier.front();
      frontier.pop();
      const TreeLabel& wl = tree.labels[static_cast<size_t>(w)];
      for (const auto& [pred, args] : wl.atoms) {
        std::set<int> arg_set(args.begin(), args.end());
        bool covers = true;
        for (int a : label.names) {
          if (arg_set.count(a) == 0) {
            covers = false;
            break;
          }
        }
        if (covers) {
          found = true;
          break;
        }
      }
      if (found) break;
      std::vector<int> neighbors = children[static_cast<size_t>(w)];
      if (tree.parent[static_cast<size_t>(w)] >= 0) {
        neighbors.push_back(tree.parent[static_cast<size_t>(w)]);
      }
      for (int nb : neighbors) {
        if (seen.count(nb) > 0) continue;
        const TreeLabel& nl = tree.labels[static_cast<size_t>(nb)];
        bool carries_all = true;
        for (int a : label.names) {
          if (nl.names.count(a) == 0) {
            carries_all = false;
            break;
          }
        }
        if (carries_all) {
          seen.insert(nb);
          frontier.push(nb);
        }
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("node ", v, " has no guard among its b-connected nodes"));
    }
  }
  return Status::OK();
}

Result<Database> DecodeTree(const EncodedTree& tree) {
  OMQC_RETURN_IF_ERROR(CheckConsistency(tree));
  // Union-find over (node, name): (v,a) ~ (parent(v),a) when the parent
  // also declares a.
  const size_t n = tree.size();
  auto key = [&](size_t v, int a) {
    return v * static_cast<size_t>(tree.l + 2 * tree.width) +
           static_cast<size_t>(a);
  };
  std::map<size_t, size_t> parent_uf;
  std::function<size_t(size_t)> find = [&](size_t k) {
    while (parent_uf.at(k) != k) {
      parent_uf[k] = parent_uf.at(parent_uf.at(k));
      k = parent_uf.at(k);
    }
    return k;
  };
  for (size_t v = 0; v < n; ++v) {
    for (int a : tree.labels[v].names) parent_uf.emplace(key(v, a), key(v, a));
  }
  for (size_t v = 1; v < n; ++v) {
    size_t p = static_cast<size_t>(tree.parent[v]);
    for (int a : tree.labels[v].names) {
      if (tree.labels[p].names.count(a) > 0) {
        parent_uf[find(key(v, a))] = find(key(p, a));
      }
    }
  }
  std::map<size_t, Term> class_constant;
  int counter = 0;
  auto constant_of = [&](size_t v, int a) {
    size_t root = find(key(v, a));
    auto it = class_constant.find(root);
    if (it != class_constant.end()) return it->second;
    Term c = Term::Constant(StrCat("@dec", counter++));
    class_constant.emplace(root, c);
    return c;
  };
  Database out;
  for (size_t v = 0; v < n; ++v) {
    for (const auto& [pred, args] : tree.labels[v].atoms) {
      std::vector<Term> terms;
      terms.reserve(args.size());
      for (int a : args) terms.push_back(constant_of(v, a));
      out.Add(Atom(pred, std::move(terms)));
    }
  }
  return out;
}

size_t TreeLabelHash::operator()(const TreeLabel& label) const {
  // FNV-1a over the sorted set contents, with sentinels between the
  // three sections so {1}/{} and {}/{1} hash differently.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (int a : label.names) mix(static_cast<uint64_t>(a) + 1);
  mix(0);
  for (int a : label.core_names) mix(static_cast<uint64_t>(a) + 1);
  mix(0);
  for (const auto& [pred, args] : label.atoms) {
    mix(static_cast<uint64_t>(pred.id()) + 1);
    for (int a : args) mix(static_cast<uint64_t>(a) + 1);
    mix(0);
  }
  return static_cast<size_t>(h);
}

}  // namespace omqc
