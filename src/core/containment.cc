#include "core/containment.h"

#include <algorithm>

#include "base/string_util.h"
#include "logic/homomorphism.h"

namespace omqc {

const char* ContainmentOutcomeToString(ContainmentOutcome outcome) {
  switch (outcome) {
    case ContainmentOutcome::kContained:
      return "CONTAINED";
    case ContainmentOutcome::kNotContained:
      return "NOT_CONTAINED";
    case ContainmentOutcome::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

namespace {

/// Evaluates "tuple ∈ Q2(D)" for the candidate-witness databases produced
/// during enumeration. Precomputes a UCQ rewriting for linear/sticky RHS
/// ontologies so repeated candidates do not re-run XRewrite.
class RhsEvaluator {
 public:
  static Result<RhsEvaluator> Make(const Omq& q2,
                                   const ContainmentOptions& options) {
    RhsEvaluator evaluator(q2, options);
    TgdClass cls = q2.OntologyClass();
    // Precompute the RHS rewriting only when the chase does not terminate
    // (for terminating sets, per-candidate chasing is cheaper than a
    // potentially large rewriting).
    if ((cls == TgdClass::kLinear || cls == TgdClass::kSticky) &&
        !IsNonRecursive(q2.tgds) && !IsFull(q2.tgds)) {
      OMQC_ASSIGN_OR_RETURN(
          UnionOfCQs rewriting,
          XRewrite(q2.data_schema, q2.tgds, q2.query, options.eval.rewrite));
      evaluator.rewriting_ = std::move(rewriting);
    }
    return evaluator;
  }

  /// Exact answer or ResourceExhausted (budgeted guarded/general RHS).
  Result<bool> Contains(const Database& db,
                        const std::vector<Term>& tuple) const {
    if (rewriting_.has_value()) {
      for (const ConjunctiveQuery& disjunct : rewriting_->disjuncts) {
        if (TupleInAnswer(disjunct, db, tuple)) return true;
      }
      return false;
    }
    return EvalTuple(q2_, db, tuple, options_.eval);
  }

 private:
  RhsEvaluator(const Omq& q2, const ContainmentOptions& options)
      : q2_(q2), options_(options) {}

  const Omq& q2_;
  const ContainmentOptions& options_;
  std::optional<UnionOfCQs> rewriting_;
};

/// The shared engine: enumerate LHS rewriting disjuncts, test each frozen
/// candidate against `contains`.
Result<ContainmentResult> RunEngine(
    const Omq& q1, const ContainmentOptions& options,
    const std::function<Result<bool>(const Database&,
                                     const std::vector<Term>&)>& contains) {
  ContainmentResult result;
  bool refuted = false;
  bool inconclusive_rhs = false;
  std::string rhs_detail;

  std::function<bool(const ConjunctiveQuery&)> on_disjunct =
      [&](const ConjunctiveQuery& p) {
        ++result.candidates_checked;
        result.max_witness_size = std::max(result.max_witness_size, p.size());
        FrozenQuery frozen = Freeze(p);
        Result<bool> r = contains(frozen.database, frozen.answer_tuple);
        if (!r.ok()) {
          inconclusive_rhs = true;
          rhs_detail = r.status().ToString();
          return true;  // keep scanning for a definite refutation
        }
        if (!*r) {
          refuted = true;
          result.witness = ContainmentWitness{std::move(frozen.database),
                                              std::move(frozen.answer_tuple)};
          return false;
        }
        return true;
      };

  OMQC_ASSIGN_OR_RETURN(
      RewriteEnumeration outcome,
      EnumerateRewritings(q1.data_schema, q1.tgds, q1.query, options.rewrite,
                          on_disjunct));

  if (refuted) {
    result.outcome = ContainmentOutcome::kNotContained;
    return result;
  }
  if (outcome == RewriteEnumeration::kSaturated && !inconclusive_rhs) {
    result.outcome = ContainmentOutcome::kContained;
    return result;
  }
  result.outcome = ContainmentOutcome::kUnknown;
  if (outcome == RewriteEnumeration::kBudgetExhausted) {
    result.detail =
        StrCat("LHS rewriting enumeration hit its budget after ",
               result.candidates_checked,
               " candidates (infinite perfect rewriting?)");
  } else {
    result.detail = StrCat("RHS evaluation was inconclusive: ", rhs_detail);
  }
  return result;
}

Status CheckCompatible(const Omq& q1, const Omq& q2) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  OMQC_RETURN_IF_ERROR(ValidateOmq(q2));
  if (q1.AnswerArity() != q2.AnswerArity()) {
    return Status::InvalidArgument(
        StrCat("answer arity mismatch: ", q1.AnswerArity(), " vs ",
               q2.AnswerArity()));
  }
  for (const Predicate& p : q1.data_schema.predicates()) {
    if (!q2.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the right"));
    }
  }
  for (const Predicate& p : q2.data_schema.predicates()) {
    if (!q1.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the left"));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ContainmentResult> CheckContainment(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(CheckCompatible(q1, q2));
  OMQC_ASSIGN_OR_RETURN(RhsEvaluator rhs, RhsEvaluator::Make(q2, options));
  return RunEngine(q1, options,
                   [&rhs](const Database& db, const std::vector<Term>& tuple) {
                     return rhs.Contains(db, tuple);
                   });
}

Result<ContainmentResult> CheckContainmentInUcq(
    const Omq& q1, const UnionOfCQs& ucq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
    OMQC_RETURN_IF_ERROR(ValidateCQ(disjunct));
    if (disjunct.answer_vars.size() != q1.AnswerArity()) {
      return Status::InvalidArgument("UCQ answer arity mismatch");
    }
  }
  return RunEngine(
      q1, options,
      [&ucq](const Database& db,
             const std::vector<Term>& tuple) -> Result<bool> {
        for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
          if (TupleInAnswer(disjunct, db, tuple)) return true;
        }
        return false;
      });
}

Result<ContainmentResult> CheckUcqOmqContainment(
    const UcqOmq& q1, const UcqOmq& q2, const ContainmentOptions& options) {
  ContainmentResult merged;
  merged.outcome = ContainmentOutcome::kContained;
  for (const ConjunctiveQuery& disjunct : q1.query.disjuncts) {
    Omq lhs{q1.data_schema, q1.tgds, disjunct};
    // RHS keeps its UCQ: check lhs against each RHS disjunct-OMQ via the
    // engine with a UCQ-aware contains callback.
    OMQC_RETURN_IF_ERROR(ValidateOmq(lhs));
    ContainmentOptions opts = options;
    const UcqOmq& rhs = q2;
    OMQC_ASSIGN_OR_RETURN(
        ContainmentResult partial,
        [&]() -> Result<ContainmentResult> {
          return RunEngine(
              lhs, opts,
              [&rhs, &opts](const Database& db,
                            const std::vector<Term>& tuple) -> Result<bool> {
                for (const ConjunctiveQuery& d : rhs.query.disjuncts) {
                  Omq rhs_omq{rhs.data_schema, rhs.tgds, d};
                  OMQC_ASSIGN_OR_RETURN(bool in,
                                        EvalTuple(rhs_omq, db, tuple,
                                                  opts.eval));
                  if (in) return true;
                }
                return false;
              });
        }());
    merged.candidates_checked += partial.candidates_checked;
    merged.max_witness_size =
        std::max(merged.max_witness_size, partial.max_witness_size);
    if (partial.outcome == ContainmentOutcome::kNotContained) {
      merged.outcome = ContainmentOutcome::kNotContained;
      merged.witness = std::move(partial.witness);
      return merged;
    }
    if (partial.outcome == ContainmentOutcome::kUnknown) {
      merged.outcome = ContainmentOutcome::kUnknown;
      merged.detail = std::move(partial.detail);
    }
  }
  return merged;
}

Result<ContainmentResult> CheckEquivalence(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& options) {
  OMQC_ASSIGN_OR_RETURN(ContainmentResult forward,
                        CheckContainment(q1, q2, options));
  if (forward.outcome != ContainmentOutcome::kContained) return forward;
  OMQC_ASSIGN_OR_RETURN(ContainmentResult backward,
                        CheckContainment(q2, q1, options));
  backward.candidates_checked += forward.candidates_checked;
  return backward;
}

}  // namespace omqc
