#include "core/containment.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "base/governor.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "cache/cached_ops.h"
#include "logic/homomorphism.h"

namespace omqc {

const char* ContainmentOutcomeToString(ContainmentOutcome outcome) {
  switch (outcome) {
    case ContainmentOutcome::kContained:
      return "CONTAINED";
    case ContainmentOutcome::kNotContained:
      return "NOT_CONTAINED";
    case ContainmentOutcome::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

namespace {

/// The RHS check callback: "tuple ∈ Q2(D)?" for a frozen candidate. Exact
/// true/false, or an error Status (typically ResourceExhausted, or a
/// governor trip) when a budget prevented an exact answer. Per-call work
/// is tallied into `stats` (never null inside RunEngine); implementations
/// must be safe to invoke concurrently from several worker threads with
/// distinct stats objects. The governor is passed PER CALL — evaluators
/// may be cached across requests (ArtifactKind::kRhsEvaluator) and must
/// never store a request's governor pointer.
using ContainsFn = std::function<Result<bool>(
    const Database&, const std::vector<Term>&, EngineStats*,
    ResourceGovernor*)>;

/// Evaluates "tuple ∈ Q2(D)" for the candidate-witness databases produced
/// during enumeration. Precomputes a UCQ rewriting for linear/sticky RHS
/// ontologies so repeated candidates do not re-run XRewrite. The evaluator
/// owns copies of everything it needs, so it is cacheable under
/// ArtifactKind::kRhsEvaluator and may be shared across containment calls
/// whose RHS is the same OMQ up to variable renaming. Contains() is const
/// and touches no mutable state, so the parallel engine may call it from
/// any number of workers.
class RhsEvaluator {
 public:
  /// Builds (or fetches from options.cache) the evaluator for `q2`. On a
  /// fresh build the one-time setup work is merged into `stats->rewrite`;
  /// on a hit only `stats->cache` is touched — the setup was paid by an
  /// earlier call.
  static Result<std::shared_ptr<const RhsEvaluator>> Make(
      const Omq& q2, const ContainmentOptions& options,
      EngineStats* stats = nullptr) {
    ArtifactStore* cache = options.cache;
    CacheCounters* counters = stats != nullptr ? &stats->cache : nullptr;
    CacheKey key;
    if (cache != nullptr) {
      key = CacheKey{FingerprintOmqParts(q2.data_schema, q2.tgds, q2.query),
                     EvalOptionsDigest(options.eval),
                     ArtifactKind::kRhsEvaluator};
      if (auto hit = cache->Get<RhsEvaluator>(key, counters)) return hit;
    }
    std::shared_ptr<RhsEvaluator> evaluator(
        new RhsEvaluator(q2, options.eval));
    TgdProfile profile = GetTgdProfile(cache, q2.tgds, counters);
    // Precompute the RHS rewriting only when the chase does not terminate
    // (for terminating sets, per-candidate chasing is cheaper than a
    // potentially large rewriting). The setup runs under the REQUEST
    // governor (attached per call, never stored: the cache digest ignores
    // it, and the cached artifact must not dangle into this request).
    if ((profile.primary == TgdClass::kLinear ||
         profile.primary == TgdClass::kSticky) &&
        !profile.non_recursive && !profile.full) {
      XRewriteStats setup;
      XRewriteOptions setup_rewrite = options.eval.rewrite;
      setup_rewrite.governor = options.governor;
      OMQC_ASSIGN_OR_RETURN(
          evaluator->rewriting_,
          CachedXRewrite(cache, q2.data_schema, q2.tgds, q2.query,
                         setup_rewrite, &setup, counters));
      if (stats != nullptr) stats->rewrite.Merge(setup);
    }
    if (cache != nullptr) {
      size_t bytes = sizeof(RhsEvaluator);
      if (evaluator->rewriting_ != nullptr) {
        bytes += ApproxBytes(*evaluator->rewriting_);
      }
      cache->Put<RhsEvaluator>(key, evaluator, bytes, counters);
    }
    return std::shared_ptr<const RhsEvaluator>(std::move(evaluator));
  }

  /// Exact answer or ResourceExhausted / governor trip (budgeted
  /// guarded/general RHS, a homomorphism step budget, or a tripped
  /// `governor`). The governor is a per-call overlay — this object may
  /// outlive the request that passed it (see ContainsFn).
  Result<bool> Contains(const Database& db, const std::vector<Term>& tuple,
                        EngineStats* stats,
                        ResourceGovernor* governor = nullptr) const {
    if (rewriting_ != nullptr) {
      HomomorphismOptions hom;
      hom.max_steps = eval_.hom_max_steps;
      hom.counters = stats != nullptr ? &stats->hom : nullptr;
      hom.governor = governor;
      bool exhausted = false;
      for (const ConjunctiveQuery& disjunct : rewriting_->disjuncts) {
        switch (TupleInAnswerBudgeted(disjunct, db, tuple, hom)) {
          case HomSearchOutcome::kFound:
            return true;
          case HomSearchOutcome::kExhausted:
            exhausted = true;  // another disjunct may still match
            break;
          case HomSearchOutcome::kNotFound:
            break;
        }
        if (governor != nullptr && governor->tripped()) break;
      }
      if (governor != nullptr && governor->tripped()) {
        return governor->TripStatus();
      }
      if (exhausted) {
        return Status::ResourceExhausted(
            StrCat("homomorphism step budget (", eval_.hom_max_steps,
                   ") exhausted on a RHS rewriting disjunct; cannot certify "
                   "a negative answer"));
      }
      return false;
    }
    if (governor == nullptr) return EvalTuple(q2_, db, tuple, eval_, stats);
    EvalOptions governed = eval_;
    governed.governor = governor;
    return EvalTuple(q2_, db, tuple, governed, stats);
  }

 private:
  RhsEvaluator(const Omq& q2, const EvalOptions& eval)
      : q2_(q2), eval_(eval) {
    // Cached across requests: never retain a request's governor (the
    // options digest ignores it, so a stored pointer would dangle into
    // whichever request happened to build the entry).
    eval_.governor = nullptr;
    eval_.rewrite.governor = nullptr;
  }

  Omq q2_;
  EvalOptions eval_;
  std::shared_ptr<const UnionOfCQs> rewriting_;
};

/// The shared engine: enumerate LHS rewriting disjuncts, freeze each, test
/// the frozen candidate against `contains`.
///
/// With options.num_threads > 1 the RHS checks fan out over a ThreadPool:
/// enumeration and freezing stay on the calling thread, each candidate is
/// checked by a worker, and a refutation raises an atomic stop flag that
/// (a) makes in-queue tasks return immediately and (b) stops the
/// enumeration at its next disjunct. Workers tally into thread-local
/// EngineStats objects merged under one mutex, so the search hot paths
/// never contend. The serial path (num_threads <= 1) runs the identical
/// per-candidate logic inline; outcomes are the same either way, because
/// a refutation wins regardless of which worker finds it and kContained /
/// kUnknown are decided only after every check has finished.
///
/// Governance: the run executes under a CHILD of options.governor (also
/// created when the caller passed none, where it simply never trips). The
/// child shares the caller's deadline/token/budget through the parent
/// chain, but owns its own token: a refutation cancels the child, which
/// yanks every in-flight worker out of its search within one check stride
/// — real cancellation propagation, not just queue draining — without
/// cancelling the caller's request, which may have sibling runs left.
/// Only a trip of the USER's governor degrades the outcome; a child-only
/// cancellation is the engine's own early exit and stays invisible.
Result<ContainmentResult> RunEngine(const Omq& q1,
                                    const ContainmentOptions& options,
                                    const ContainsFn& contains) {
  ContainmentResult result;
  bool refuted = false;
  bool inconclusive_rhs = false;
  std::string rhs_detail;
  XRewriteStats lhs_stats;   // written by the enumeration (caller thread)
  CacheCounters lhs_cache;   // cache traffic of the enumeration itself
  EngineStats check_stats;   // merged RHS-check work, guarded by mu if pooled
  std::mutex mu;
  std::atomic<bool> stop{false};
  ResourceGovernor run_governor(options.governor);

  size_t num_threads = options.num_threads != 0
                           ? options.num_threads
                           : ThreadPool::DefaultConcurrency();
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);

  // Snapshot the child's counters into the result on every return path
  // (including error returns from the enumeration).
  struct CountersScope {
    ResourceGovernor* governor;
    ContainmentResult* result;
    ~CountersScope() { result->stats.governor.Merge(governor->counters()); }
  } counters_scope{&run_governor, &result};

  // Folds one finished RHS check into the shared state. Caller holds `mu`
  // when pooled; runs inline otherwise.
  auto record = [&](Result<bool> r, FrozenQuery frozen, EngineStats local) {
    check_stats.Merge(local);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kResourceExhausted) {
        ++check_stats.budget_exhaustions;
      }
      inconclusive_rhs = true;
      if (rhs_detail.empty()) rhs_detail = r.status().ToString();
      return;  // keep scanning for a definite refutation
    }
    if (*r) {
      ++check_stats.witnesses_rejected;  // candidate failed to refute
      return;
    }
    if (!refuted) {
      refuted = true;
      result.witness = ContainmentWitness{std::move(frozen.database),
                                          std::move(frozen.answer_tuple)};
    }
    stop.store(true, std::memory_order_relaxed);
    run_governor.Cancel();  // yank sibling workers out of their searches
  };

  std::function<bool(const ConjunctiveQuery&)> on_disjunct =
      [&](const ConjunctiveQuery& p) {
        if (stop.load(std::memory_order_relaxed)) return false;
        ++result.candidates_checked;
        result.max_witness_size = std::max(result.max_witness_size, p.size());
        FrozenQuery frozen = Freeze(p);
        if (!pool.has_value()) {
          EngineStats local;
          Result<bool> r = contains(frozen.database, frozen.answer_tuple,
                                    &local, &run_governor);
          record(std::move(r), std::move(frozen), std::move(local));
          return !stop.load(std::memory_order_relaxed);
        }
        pool->Submit([&contains, &record, &mu, &stop, &run_governor,
                      frozen = std::move(frozen)]() mutable {
          if (stop.load(std::memory_order_relaxed)) return;
          EngineStats local;
          Result<bool> r = contains(frozen.database, frozen.answer_tuple,
                                    &local, &run_governor);
          std::lock_guard<std::mutex> lock(mu);
          record(std::move(r), std::move(frozen), std::move(local));
        });
        return true;
      };

  // The enumeration runs under the child too, so a refuting worker (or
  // the user's deadline) also stops LHS rewriting between disjuncts.
  XRewriteOptions lhs_options = options.rewrite;
  lhs_options.governor = &run_governor;
  OMQC_ASSIGN_OR_RETURN(
      RewriteEnumeration outcome,
      CachedEnumerateRewritings(options.cache, q1.data_schema, q1.tgds,
                                q1.query, lhs_options, on_disjunct,
                                &lhs_stats, &lhs_cache));
  if (pool.has_value()) pool->Wait();

  result.stats.Merge(check_stats);
  result.stats.rewrite.Merge(lhs_stats);
  result.stats.cache.Merge(lhs_cache);
  result.stats.disjuncts_checked += result.candidates_checked;

  // A definite answer is never flipped by a trip: a refutation found
  // before (or racing) the trip stands, and kContained requires a
  // saturated enumeration with every RHS check conclusive — impossible
  // once the user governor tripped, because tripped checks come back
  // inconclusive.
  if (refuted) {
    result.outcome = ContainmentOutcome::kNotContained;
    return result;
  }
  bool user_tripped =
      options.governor != nullptr && options.governor->tripped();
  if (outcome == RewriteEnumeration::kSaturated && !inconclusive_rhs &&
      !user_tripped) {
    result.outcome = ContainmentOutcome::kContained;
    return result;
  }
  result.outcome = ContainmentOutcome::kUnknown;
  if (user_tripped) {
    result.detail = StrCat(
        "request governor tripped: ",
        options.governor->TripStatus().ToString(), " after ",
        result.candidates_checked,
        " candidates (partial result: no refutation found so far)");
  } else if (outcome == RewriteEnumeration::kBudgetExhausted) {
    result.detail =
        StrCat("LHS rewriting enumeration hit its budget after ",
               result.candidates_checked,
               " candidates (infinite perfect rewriting?)");
  } else {
    result.detail = StrCat("RHS evaluation was inconclusive: ", rhs_detail);
  }
  return result;
}

Status CheckCompatible(const Omq& q1, const Omq& q2) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  OMQC_RETURN_IF_ERROR(ValidateOmq(q2));
  if (q1.AnswerArity() != q2.AnswerArity()) {
    return Status::InvalidArgument(
        StrCat("answer arity mismatch: ", q1.AnswerArity(), " vs ",
               q2.AnswerArity()));
  }
  for (const Predicate& p : q1.data_schema.predicates()) {
    if (!q2.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the right"));
    }
  }
  for (const Predicate& p : q2.data_schema.predicates()) {
    if (!q1.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the left"));
    }
  }
  return Status::OK();
}

/// Propagates the containment-level cache into the RHS evaluation options
/// (and vice versa) so one `--cache` switch covers every layer; an
/// explicitly set eval cache wins. The governor propagates the same way:
/// one governor set at either level bounds the whole request.
ContainmentOptions EffectiveOptions(const ContainmentOptions& options) {
  ContainmentOptions local = options;
  if (local.eval.cache == nullptr) local.eval.cache = local.cache;
  if (local.cache == nullptr) local.cache = local.eval.cache;
  if (local.governor == nullptr) local.governor = local.eval.governor;
  return local;
}

}  // namespace

Result<ContainmentResult> CheckContainment(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& opts) {
  ContainmentOptions options = EffectiveOptions(opts);
  OMQC_RETURN_IF_ERROR(CheckCompatible(q1, q2));
  EngineStats setup_stats;
  OMQC_ASSIGN_OR_RETURN(std::shared_ptr<const RhsEvaluator> rhs,
                        RhsEvaluator::Make(q2, options, &setup_stats));
  OMQC_ASSIGN_OR_RETURN(
      ContainmentResult result,
      RunEngine(q1, options,
                [&rhs](const Database& db, const std::vector<Term>& tuple,
                       EngineStats* stats, ResourceGovernor* governor) {
                  return rhs->Contains(db, tuple, stats, governor);
                }));
  result.stats.Merge(setup_stats);
  return result;
}

Result<ContainmentResult> CheckContainmentInUcq(
    const Omq& q1, const UnionOfCQs& ucq, const ContainmentOptions& opts) {
  ContainmentOptions options = EffectiveOptions(opts);
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
    OMQC_RETURN_IF_ERROR(ValidateCQ(disjunct));
    if (disjunct.answer_vars.size() != q1.AnswerArity()) {
      return Status::InvalidArgument("UCQ answer arity mismatch");
    }
  }
  return RunEngine(
      q1, options,
      [&ucq, &options](const Database& db, const std::vector<Term>& tuple,
                       EngineStats* stats,
                       ResourceGovernor* governor) -> Result<bool> {
        HomomorphismOptions hom;
        hom.max_steps = options.eval.hom_max_steps;
        hom.counters = stats != nullptr ? &stats->hom : nullptr;
        hom.governor = governor;
        bool exhausted = false;
        for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
          switch (TupleInAnswerBudgeted(disjunct, db, tuple, hom)) {
            case HomSearchOutcome::kFound:
              return true;
            case HomSearchOutcome::kExhausted:
              exhausted = true;
              break;
            case HomSearchOutcome::kNotFound:
              break;
          }
          if (governor != nullptr && governor->tripped()) break;
        }
        if (governor != nullptr && governor->tripped()) {
          return governor->TripStatus();
        }
        if (exhausted) {
          return Status::ResourceExhausted(
              StrCat("homomorphism step budget (",
                     options.eval.hom_max_steps,
                     ") exhausted on a RHS UCQ disjunct; cannot certify a "
                     "negative answer"));
        }
        return false;
      });
}

Result<ContainmentResult> CheckUcqOmqContainment(
    const UcqOmq& q1, const UcqOmq& q2, const ContainmentOptions& opts) {
  ContainmentOptions options = EffectiveOptions(opts);
  ContainmentResult merged;
  merged.outcome = ContainmentOutcome::kContained;
  // RHS keeps its UCQ: build one evaluator per RHS disjunct-OMQ up front
  // (validating each, and precomputing its rewriting where applicable)
  // instead of re-assembling an Omq and re-deciding chase-vs-rewrite for
  // every candidate of every LHS disjunct.
  std::vector<std::shared_ptr<const RhsEvaluator>> rhs_evaluators;
  rhs_evaluators.reserve(q2.query.disjuncts.size());
  for (const ConjunctiveQuery& d : q2.query.disjuncts) {
    Omq rhs_omq{q2.data_schema, q2.tgds, d};
    OMQC_RETURN_IF_ERROR(ValidateOmq(rhs_omq));
    OMQC_ASSIGN_OR_RETURN(std::shared_ptr<const RhsEvaluator> evaluator,
                          RhsEvaluator::Make(rhs_omq, options, &merged.stats));
    rhs_evaluators.push_back(std::move(evaluator));
  }
  const auto contains = [&rhs_evaluators](
                            const Database& db,
                            const std::vector<Term>& tuple,
                            EngineStats* stats,
                            ResourceGovernor* governor) -> Result<bool> {
    for (const auto& evaluator : rhs_evaluators) {
      OMQC_ASSIGN_OR_RETURN(bool in,
                            evaluator->Contains(db, tuple, stats, governor));
      if (in) return true;
    }
    return false;
  };
  for (const ConjunctiveQuery& disjunct : q1.query.disjuncts) {
    // A tripped request governor makes every further run inconclusive;
    // stop burning the remaining wall clock on runs that cannot certify.
    if (options.governor != nullptr && options.governor->tripped()) {
      merged.outcome = ContainmentOutcome::kUnknown;
      merged.detail =
          StrCat("request governor tripped: ",
                 options.governor->TripStatus().ToString(),
                 "; remaining LHS disjuncts skipped");
      return merged;
    }
    Omq lhs{q1.data_schema, q1.tgds, disjunct};
    OMQC_RETURN_IF_ERROR(ValidateOmq(lhs));
    OMQC_ASSIGN_OR_RETURN(ContainmentResult partial,
                          RunEngine(lhs, options, contains));
    merged.candidates_checked += partial.candidates_checked;
    merged.max_witness_size =
        std::max(merged.max_witness_size, partial.max_witness_size);
    merged.stats.Merge(partial.stats);
    if (partial.outcome == ContainmentOutcome::kNotContained) {
      merged.outcome = ContainmentOutcome::kNotContained;
      merged.witness = std::move(partial.witness);
      return merged;
    }
    if (partial.outcome == ContainmentOutcome::kUnknown) {
      merged.outcome = ContainmentOutcome::kUnknown;
      merged.detail = std::move(partial.detail);
    }
  }
  return merged;
}

Result<ContainmentResult> CheckEquivalence(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& options) {
  OMQC_ASSIGN_OR_RETURN(ContainmentResult forward,
                        CheckContainment(q1, q2, options));
  if (forward.outcome != ContainmentOutcome::kContained) return forward;
  OMQC_ASSIGN_OR_RETURN(ContainmentResult backward,
                        CheckContainment(q2, q1, options));
  backward.candidates_checked += forward.candidates_checked;
  backward.stats.Merge(forward.stats);
  return backward;
}

}  // namespace omqc
