#include "core/containment.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "logic/homomorphism.h"

namespace omqc {

const char* ContainmentOutcomeToString(ContainmentOutcome outcome) {
  switch (outcome) {
    case ContainmentOutcome::kContained:
      return "CONTAINED";
    case ContainmentOutcome::kNotContained:
      return "NOT_CONTAINED";
    case ContainmentOutcome::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

namespace {

/// The RHS check callback: "tuple ∈ Q2(D)?" for a frozen candidate. Exact
/// true/false, or an error Status (typically ResourceExhausted) when a
/// budget prevented an exact answer. Per-call work is tallied into `stats`
/// (never null inside RunEngine); implementations must be safe to invoke
/// concurrently from several worker threads with distinct stats objects.
using ContainsFn = std::function<Result<bool>(
    const Database&, const std::vector<Term>&, EngineStats*)>;

/// Evaluates "tuple ∈ Q2(D)" for the candidate-witness databases produced
/// during enumeration. Precomputes a UCQ rewriting for linear/sticky RHS
/// ontologies so repeated candidates do not re-run XRewrite. Contains() is
/// const and touches no mutable state, so the parallel engine may call it
/// from any number of workers.
class RhsEvaluator {
 public:
  static Result<RhsEvaluator> Make(const Omq& q2,
                                   const ContainmentOptions& options) {
    RhsEvaluator evaluator(q2, options);
    TgdClass cls = q2.OntologyClass();
    // Precompute the RHS rewriting only when the chase does not terminate
    // (for terminating sets, per-candidate chasing is cheaper than a
    // potentially large rewriting).
    if ((cls == TgdClass::kLinear || cls == TgdClass::kSticky) &&
        !IsNonRecursive(q2.tgds) && !IsFull(q2.tgds)) {
      OMQC_ASSIGN_OR_RETURN(
          UnionOfCQs rewriting,
          XRewrite(q2.data_schema, q2.tgds, q2.query, options.eval.rewrite,
                   &evaluator.setup_stats_));
      evaluator.rewriting_ = std::move(rewriting);
    }
    return evaluator;
  }

  /// Exact answer or ResourceExhausted (budgeted guarded/general RHS, or a
  /// homomorphism step budget).
  Result<bool> Contains(const Database& db, const std::vector<Term>& tuple,
                        EngineStats* stats) const {
    if (rewriting_.has_value()) {
      HomomorphismOptions hom;
      hom.max_steps = options_.eval.hom_max_steps;
      hom.counters = stats != nullptr ? &stats->hom : nullptr;
      bool exhausted = false;
      for (const ConjunctiveQuery& disjunct : rewriting_->disjuncts) {
        switch (TupleInAnswerBudgeted(disjunct, db, tuple, hom)) {
          case HomSearchOutcome::kFound:
            return true;
          case HomSearchOutcome::kExhausted:
            exhausted = true;  // another disjunct may still match
            break;
          case HomSearchOutcome::kNotFound:
            break;
        }
      }
      if (exhausted) {
        return Status::ResourceExhausted(
            StrCat("homomorphism step budget (", options_.eval.hom_max_steps,
                   ") exhausted on a RHS rewriting disjunct; cannot certify "
                   "a negative answer"));
      }
      return false;
    }
    return EvalTuple(q2_, db, tuple, options_.eval, stats);
  }

  /// Stats of the one-time rewriting precomputation (not per-candidate).
  const XRewriteStats& setup_stats() const { return setup_stats_; }

 private:
  RhsEvaluator(const Omq& q2, const ContainmentOptions& options)
      : q2_(q2), options_(options) {}

  const Omq& q2_;
  const ContainmentOptions& options_;
  std::optional<UnionOfCQs> rewriting_;
  XRewriteStats setup_stats_;
};

/// The shared engine: enumerate LHS rewriting disjuncts, freeze each, test
/// the frozen candidate against `contains`.
///
/// With options.num_threads > 1 the RHS checks fan out over a ThreadPool:
/// enumeration and freezing stay on the calling thread, each candidate is
/// checked by a worker, and a refutation raises an atomic stop flag that
/// (a) makes in-queue tasks return immediately and (b) stops the
/// enumeration at its next disjunct. Workers tally into thread-local
/// EngineStats objects merged under one mutex, so the search hot paths
/// never contend. The serial path (num_threads <= 1) runs the identical
/// per-candidate logic inline; outcomes are the same either way, because
/// a refutation wins regardless of which worker finds it and kContained /
/// kUnknown are decided only after every check has finished.
Result<ContainmentResult> RunEngine(const Omq& q1,
                                    const ContainmentOptions& options,
                                    const ContainsFn& contains) {
  ContainmentResult result;
  bool refuted = false;
  bool inconclusive_rhs = false;
  std::string rhs_detail;
  XRewriteStats lhs_stats;   // written by the enumeration (caller thread)
  EngineStats check_stats;   // merged RHS-check work, guarded by mu if pooled
  std::mutex mu;
  std::atomic<bool> stop{false};

  size_t num_threads = options.num_threads != 0
                           ? options.num_threads
                           : ThreadPool::DefaultConcurrency();
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);

  // Folds one finished RHS check into the shared state. Caller holds `mu`
  // when pooled; runs inline otherwise.
  auto record = [&](Result<bool> r, FrozenQuery frozen, EngineStats local) {
    check_stats.Merge(local);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kResourceExhausted) {
        ++check_stats.budget_exhaustions;
      }
      inconclusive_rhs = true;
      if (rhs_detail.empty()) rhs_detail = r.status().ToString();
      return;  // keep scanning for a definite refutation
    }
    if (*r) {
      ++check_stats.witnesses_rejected;  // candidate failed to refute
      return;
    }
    if (!refuted) {
      refuted = true;
      result.witness = ContainmentWitness{std::move(frozen.database),
                                          std::move(frozen.answer_tuple)};
    }
    stop.store(true, std::memory_order_relaxed);
  };

  std::function<bool(const ConjunctiveQuery&)> on_disjunct =
      [&](const ConjunctiveQuery& p) {
        if (stop.load(std::memory_order_relaxed)) return false;
        ++result.candidates_checked;
        result.max_witness_size = std::max(result.max_witness_size, p.size());
        FrozenQuery frozen = Freeze(p);
        if (!pool.has_value()) {
          EngineStats local;
          Result<bool> r =
              contains(frozen.database, frozen.answer_tuple, &local);
          record(std::move(r), std::move(frozen), std::move(local));
          return !stop.load(std::memory_order_relaxed);
        }
        pool->Submit([&contains, &record, &mu, &stop,
                      frozen = std::move(frozen)]() mutable {
          if (stop.load(std::memory_order_relaxed)) return;
          EngineStats local;
          Result<bool> r =
              contains(frozen.database, frozen.answer_tuple, &local);
          std::lock_guard<std::mutex> lock(mu);
          record(std::move(r), std::move(frozen), std::move(local));
        });
        return true;
      };

  OMQC_ASSIGN_OR_RETURN(
      RewriteEnumeration outcome,
      EnumerateRewritings(q1.data_schema, q1.tgds, q1.query, options.rewrite,
                          on_disjunct, &lhs_stats));
  if (pool.has_value()) pool->Wait();

  result.stats.Merge(check_stats);
  result.stats.rewrite.Merge(lhs_stats);
  result.stats.disjuncts_checked += result.candidates_checked;

  if (refuted) {
    result.outcome = ContainmentOutcome::kNotContained;
    return result;
  }
  if (outcome == RewriteEnumeration::kSaturated && !inconclusive_rhs) {
    result.outcome = ContainmentOutcome::kContained;
    return result;
  }
  result.outcome = ContainmentOutcome::kUnknown;
  if (outcome == RewriteEnumeration::kBudgetExhausted) {
    result.detail =
        StrCat("LHS rewriting enumeration hit its budget after ",
               result.candidates_checked,
               " candidates (infinite perfect rewriting?)");
  } else {
    result.detail = StrCat("RHS evaluation was inconclusive: ", rhs_detail);
  }
  return result;
}

Status CheckCompatible(const Omq& q1, const Omq& q2) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  OMQC_RETURN_IF_ERROR(ValidateOmq(q2));
  if (q1.AnswerArity() != q2.AnswerArity()) {
    return Status::InvalidArgument(
        StrCat("answer arity mismatch: ", q1.AnswerArity(), " vs ",
               q2.AnswerArity()));
  }
  for (const Predicate& p : q1.data_schema.predicates()) {
    if (!q2.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the right"));
    }
  }
  for (const Predicate& p : q2.data_schema.predicates()) {
    if (!q1.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("data schemas differ: ", p.ToString(),
                 " is missing on the left"));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ContainmentResult> CheckContainment(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(CheckCompatible(q1, q2));
  OMQC_ASSIGN_OR_RETURN(RhsEvaluator rhs, RhsEvaluator::Make(q2, options));
  OMQC_ASSIGN_OR_RETURN(
      ContainmentResult result,
      RunEngine(q1, options,
                [&rhs](const Database& db, const std::vector<Term>& tuple,
                       EngineStats* stats) {
                  return rhs.Contains(db, tuple, stats);
                }));
  result.stats.rewrite.Merge(rhs.setup_stats());
  return result;
}

Result<ContainmentResult> CheckContainmentInUcq(
    const Omq& q1, const UnionOfCQs& ucq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(q1));
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
    OMQC_RETURN_IF_ERROR(ValidateCQ(disjunct));
    if (disjunct.answer_vars.size() != q1.AnswerArity()) {
      return Status::InvalidArgument("UCQ answer arity mismatch");
    }
  }
  return RunEngine(
      q1, options,
      [&ucq, &options](const Database& db, const std::vector<Term>& tuple,
                       EngineStats* stats) -> Result<bool> {
        HomomorphismOptions hom;
        hom.max_steps = options.eval.hom_max_steps;
        hom.counters = stats != nullptr ? &stats->hom : nullptr;
        bool exhausted = false;
        for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
          switch (TupleInAnswerBudgeted(disjunct, db, tuple, hom)) {
            case HomSearchOutcome::kFound:
              return true;
            case HomSearchOutcome::kExhausted:
              exhausted = true;
              break;
            case HomSearchOutcome::kNotFound:
              break;
          }
        }
        if (exhausted) {
          return Status::ResourceExhausted(
              StrCat("homomorphism step budget (",
                     options.eval.hom_max_steps,
                     ") exhausted on a RHS UCQ disjunct; cannot certify a "
                     "negative answer"));
        }
        return false;
      });
}

Result<ContainmentResult> CheckUcqOmqContainment(
    const UcqOmq& q1, const UcqOmq& q2, const ContainmentOptions& options) {
  ContainmentResult merged;
  merged.outcome = ContainmentOutcome::kContained;
  // RHS keeps its UCQ: build one evaluator per RHS disjunct-OMQ up front
  // (validating each, and precomputing its rewriting where applicable)
  // instead of re-assembling an Omq and re-deciding chase-vs-rewrite for
  // every candidate of every LHS disjunct. The Omq vector must not
  // reallocate once evaluators hold references into it.
  std::vector<Omq> rhs_omqs;
  rhs_omqs.reserve(q2.query.disjuncts.size());
  for (const ConjunctiveQuery& d : q2.query.disjuncts) {
    rhs_omqs.push_back(Omq{q2.data_schema, q2.tgds, d});
    OMQC_RETURN_IF_ERROR(ValidateOmq(rhs_omqs.back()));
  }
  std::vector<RhsEvaluator> rhs_evaluators;
  rhs_evaluators.reserve(rhs_omqs.size());
  for (const Omq& rhs_omq : rhs_omqs) {
    OMQC_ASSIGN_OR_RETURN(RhsEvaluator evaluator,
                          RhsEvaluator::Make(rhs_omq, options));
    rhs_evaluators.push_back(std::move(evaluator));
    merged.stats.rewrite.Merge(rhs_evaluators.back().setup_stats());
  }
  const auto contains = [&rhs_evaluators](
                            const Database& db,
                            const std::vector<Term>& tuple,
                            EngineStats* stats) -> Result<bool> {
    for (const RhsEvaluator& evaluator : rhs_evaluators) {
      OMQC_ASSIGN_OR_RETURN(bool in, evaluator.Contains(db, tuple, stats));
      if (in) return true;
    }
    return false;
  };
  for (const ConjunctiveQuery& disjunct : q1.query.disjuncts) {
    Omq lhs{q1.data_schema, q1.tgds, disjunct};
    OMQC_RETURN_IF_ERROR(ValidateOmq(lhs));
    OMQC_ASSIGN_OR_RETURN(ContainmentResult partial,
                          RunEngine(lhs, options, contains));
    merged.candidates_checked += partial.candidates_checked;
    merged.max_witness_size =
        std::max(merged.max_witness_size, partial.max_witness_size);
    merged.stats.Merge(partial.stats);
    if (partial.outcome == ContainmentOutcome::kNotContained) {
      merged.outcome = ContainmentOutcome::kNotContained;
      merged.witness = std::move(partial.witness);
      return merged;
    }
    if (partial.outcome == ContainmentOutcome::kUnknown) {
      merged.outcome = ContainmentOutcome::kUnknown;
      merged.detail = std::move(partial.detail);
    }
  }
  return merged;
}

Result<ContainmentResult> CheckEquivalence(const Omq& q1, const Omq& q2,
                                           const ContainmentOptions& options) {
  OMQC_ASSIGN_OR_RETURN(ContainmentResult forward,
                        CheckContainment(q1, q2, options));
  if (forward.outcome != ContainmentOutcome::kContained) return forward;
  OMQC_ASSIGN_OR_RETURN(ContainmentResult backward,
                        CheckContainment(q2, q1, options));
  backward.candidates_checked += forward.candidates_checked;
  backward.stats.Merge(forward.stats);
  return backward;
}

}  // namespace omqc
