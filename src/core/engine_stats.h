// EngineStats: the containment/evaluation observability surface.
//
// One struct aggregates the counters of every layer the engine touches —
// homomorphism search (src/logic), XRewrite enumeration (src/rewrite), the
// chase (src/chase) and the containment loop itself (src/core). Counters
// are plain tallies with no synchronization: the parallel containment
// engine keeps one EngineStats per worker task and merges them under a
// lock, so the hot search paths never contend.

#ifndef OMQC_CORE_ENGINE_STATS_H_
#define OMQC_CORE_ENGINE_STATS_H_

#include <string>

#include "automata/emptiness.h"
#include "base/governor.h"
#include "cache/omq_cache.h"
#include "logic/homomorphism.h"
#include "rewrite/xrewrite.h"

namespace omqc {

struct EngineStats {
  /// Homomorphism-search layer (RHS witness checks, chase triggers).
  HomCounters hom;

  /// Rewriting layer: the LHS disjunct enumeration plus any RHS
  /// rewritings computed during evaluation.
  XRewriteStats rewrite;

  /// Chase layer (RHS evaluation of candidate witnesses).
  size_t chase_steps = 0;          ///< trigger applications
  size_t chase_atoms_derived = 0;  ///< atoms beyond the input database
  int chase_max_level = 0;         ///< deepest derivation level reached
  size_t chase_delta_rounds = 0;   ///< fixpoint rounds across chase runs
  /// Triggers enumerated before the processed-set filter; the semi-naive
  /// strategy's whole job is to shrink this relative to kNaive.
  size_t chase_triggers_enumerated = 0;
  /// Enumerated triggers dropped as already processed (naive: re-found old
  /// triggers; semi-naive: multi-decomposition duplicates only).
  size_t chase_redundant_triggers_skipped = 0;

  /// Containment layer.
  size_t disjuncts_checked = 0;    ///< candidate witnesses examined
  size_t witnesses_rejected = 0;   ///< candidates that failed to refute
  size_t budget_exhaustions = 0;   ///< RHS checks that hit some budget

  /// Guarded-fragment automata layer: 2WAPA emptiness exploration,
  /// antichain pruning and DNF-memo traffic (automata/emptiness.h).
  EmptinessStats automata;

  /// Compilation-cache traffic attributable to this run (src/cache).
  CacheCounters cache;

  /// Request-governor activity (base/governor.h): probe count and trips.
  /// Snapshotted from the request's governor at the entry points; fields
  /// are monotone snapshots of ONE shared source, so Merge takes the
  /// element-wise max rather than summing (several workers reporting the
  /// same governor must not double-count).
  GovernorCounters governor;

  void Merge(const EngineStats& other);

  /// Multi-line human-readable report (omqc_cli, benches).
  std::string ToString() const;
};

}  // namespace omqc

#endif  // OMQC_CORE_ENGINE_STATS_H_
