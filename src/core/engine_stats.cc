#include "core/engine_stats.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {

void EngineStats::Merge(const EngineStats& other) {
  hom.Merge(other.hom);
  rewrite.Merge(other.rewrite);
  chase_steps += other.chase_steps;
  chase_atoms_derived += other.chase_atoms_derived;
  chase_max_level = std::max(chase_max_level, other.chase_max_level);
  chase_delta_rounds += other.chase_delta_rounds;
  chase_triggers_enumerated += other.chase_triggers_enumerated;
  chase_redundant_triggers_skipped += other.chase_redundant_triggers_skipped;
  disjuncts_checked += other.disjuncts_checked;
  witnesses_rejected += other.witnesses_rejected;
  budget_exhaustions += other.budget_exhaustions;
  automata.Merge(other.automata);
  cache.Merge(other.cache);
  governor.Merge(other.governor);
}

std::string EngineStats::ToString() const {
  return StrCat(
      "engine stats:\n",
      "  containment: disjuncts_checked=", disjuncts_checked,
      " witnesses_rejected=", witnesses_rejected,
      " budget_exhaustions=", budget_exhaustions, "\n",
      "  rewrite:     queries_generated=", rewrite.queries_generated,
      " rewriting_steps=", rewrite.rewriting_steps,
      " factorization_steps=", rewrite.factorization_steps,
      " dedup_hits=", rewrite.dedup_hits,
      " subsumption_prunes=", rewrite.subsumption_prunes, "\n",
      "  hom search:  searches=", hom.searches, " steps=", hom.steps,
      " candidates_scanned=", hom.candidates_scanned,
      " budget_exhaustions=", hom.budget_exhaustions,
      " postings_intersections=", hom.postings_intersections,
      " candidates_pruned_by_intersection=",
      hom.candidates_pruned_by_intersection, "\n",
      "  chase:       steps=", chase_steps,
      " atoms_derived=", chase_atoms_derived,
      " max_level=", chase_max_level,
      " delta_rounds=", chase_delta_rounds,
      " triggers_enumerated=", chase_triggers_enumerated,
      " redundant_triggers_skipped=", chase_redundant_triggers_skipped, "\n",
      "  automata:    states_explored=", automata.states_explored,
      " states_subsumed=", automata.states_subsumed,
      " antichain_size=", automata.antichain_size,
      " emptiness_rounds=", automata.emptiness_rounds,
      " dnf_cache_hits=", automata.dnf_cache_hits,
      " dnf_cache_misses=", automata.dnf_cache_misses, "\n",
      "  governor:    checks=", governor.checks,
      " deadline_trips=", governor.deadline_trips,
      " cancel_trips=", governor.cancel_trips,
      " memory_trips=", governor.memory_trips, "\n",
      "  cache:       ", cache.ToString());
}

}  // namespace omqc
