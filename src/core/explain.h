// Derivation trees (appendix, "Derivation Trees"): proof trees explaining
// why a tuple is a certain answer of an OMQ. The appendix uses derivation
// trees as the proof object behind the guarded-containment automaton
// (Lemmas 44/45); here they double as a user-facing explanation facility.
//
// A derivation tree's root is a query-body match; an inner node records
// the tgd whose firing produced its atom from the children; leaves are
// database facts.

#ifndef OMQC_CORE_EXPLAIN_H_
#define OMQC_CORE_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/omq.h"

namespace omqc {

/// One node of a derivation tree: the derived atom, the tgd that produced
/// it (or kDatabaseFact for level-0 atoms), and the premises.
struct DerivationNode {
  static constexpr int kDatabaseFact = -1;

  Atom atom;
  /// Index into the ontology's tgds, or kDatabaseFact.
  int tgd_index = kDatabaseFact;
  std::vector<std::unique_ptr<DerivationNode>> premises;

  /// Number of nodes in the subtree.
  size_t size() const;
  /// Depth of the subtree (a database fact has depth 1).
  int depth() const;
};

/// An explanation of one answer tuple: the homomorphism's image of each
/// query body atom, each with its derivation tree.
struct Explanation {
  std::vector<Term> tuple;
  std::vector<DerivationNode> roots;

  /// An indented multi-line proof listing.
  std::string ToString(const TgdSet& tgds) const;
};

/// Explains why `tuple` ∈ Q(D): runs a provenance-tracking chase, finds a
/// homomorphism witnessing the answer and unwinds each matched atom into
/// its derivation tree. Returns NotFound if the tuple is not certain
/// within the chase budget (positive answers are sound even when the
/// chase is truncated — see src/core/eval.h).
Result<Explanation> ExplainTuple(const Omq& omq, const Database& database,
                                 const std::vector<Term>& tuple,
                                 const EvalOptions& options = EvalOptions());

}  // namespace omqc

#endif  // OMQC_CORE_EXPLAIN_H_
