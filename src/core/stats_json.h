// Machine-readable serialization of the engine's observability structs.
//
// One serializer feeds every surface that exports counters: omqc_cli
// --stats-json, the server's STATS endpoint (src/server/server.cc) and the
// per-request stats attached to wire responses — so a dashboard scraping
// the daemon and a script parsing the CLI see the same field names.
// Layout mirrors EngineStats::ToString section for section.

#ifndef OMQC_CORE_STATS_JSON_H_
#define OMQC_CORE_STATS_JSON_H_

#include <string>
#include <string_view>

#include "base/json_writer.h"
#include "core/engine_stats.h"

namespace omqc {

/// Appends {"containment": {...}, "rewrite": {...}, ...} as the value of
/// `key` in the writer's current object.
void AppendEngineStatsJson(JsonWriter& w, std::string_view key,
                           const EngineStats& stats);

/// Appends governor counters as the value of `key`.
void AppendGovernorCountersJson(JsonWriter& w, std::string_view key,
                                const GovernorCounters& governor);

/// Appends cache traffic counters as the value of `key`.
void AppendCacheCountersJson(JsonWriter& w, std::string_view key,
                             const CacheCounters& cache);

/// Appends an OmqCache occupancy snapshot as the value of `key`.
void AppendOmqCacheStatsJson(JsonWriter& w, std::string_view key,
                             const OmqCacheStats& stats);

/// A complete standalone JSON document for one run's EngineStats
/// (omqc_cli --stats-json).
std::string EngineStatsToJson(const EngineStats& stats);

}  // namespace omqc

#endif  // OMQC_CORE_STATS_JSON_H_
