// OMQ evaluation Eval(C, CQ) (Sec. 2, Props. 1-4): certain answers of an
// OMQ over a database, dispatched by ontology class:
//
//   * empty ontology        — direct CQ evaluation (NP data-independent);
//   * non-recursive / full  — terminating restricted chase;
//   * linear / sticky       — UCQ rewriting (XRewrite), then plain UCQ
//                             evaluation; always exact and terminating;
//   * guarded               — restricted chase with a derivation-level
//                             budget (the Calì–Gottlob–Kifer bounded chase
//                             prefix; see DESIGN.md); positive answers from
//                             a truncated chase are sound, a negative
//                             answer is only reported when the chase
//                             reached its fixpoint — otherwise
//                             ResourceExhausted;
//   * general               — budgeted chase, same contract as guarded
//                             (Eval(TGD,CQ) is undecidable, Cor. 7).

#ifndef OMQC_CORE_EVAL_H_
#define OMQC_CORE_EVAL_H_

#include <vector>

#include "cache/artifact_store.h"
#include "chase/chase.h"
#include "core/engine_stats.h"
#include "core/omq.h"
#include "rewrite/xrewrite.h"

namespace omqc {

/// Budgets and strategy selection for evaluation.
struct EvalOptions {
  enum class Strategy {
    kAuto,     ///< dispatch on the ontology class (recommended)
    kChase,    ///< force the chase path
    kRewrite,  ///< force the rewriting path
  };
  Strategy strategy = Strategy::kAuto;
  /// Trigger-enumeration strategy for every chase the evaluation runs
  /// (kSemiNaive default; kNaive is the reference engine, selectable for
  /// A/B comparison via `omqc_cli --chase=naive`).
  ChaseStrategy chase_strategy = ChaseStrategy::kSemiNaive;
  /// Chase budgets used by the chase path for guarded/general ontologies.
  size_t chase_max_atoms = 200000;
  int chase_max_level = 16;
  /// Step budget for each final query-matching homomorphism search
  /// (0 = unlimited). An exhausted search is reported as
  /// Status::ResourceExhausted, never as a negative answer.
  size_t hom_max_steps = 0;
  /// Rewriting budgets for the rewriting path.
  XRewriteOptions rewrite;
  /// Optional compilation cache consulted for ontology classification,
  /// UCQ rewritings and complete chase results (null = no caching). Any
  /// ArtifactStore: a plain OmqCache or a TieredStore with an on-disk
  /// tier. Not owned; must outlive the call. Sharing one cache across
  /// threads and calls is safe and is the point.
  ArtifactStore* cache = nullptr;
  /// Optional shared request governor (base/governor.h), threaded into
  /// every chase, rewriting and homomorphism search the evaluation runs.
  /// A trip surfaces as the trip status (kDeadlineExceeded / kCancelled /
  /// kResourceExhausted); positive answers found before the trip remain
  /// sound. Not owned; excluded from EvalOptionsDigest.
  ResourceGovernor* governor = nullptr;
};

/// Digest of every EvalOptions field that can change an evaluation result
/// (the cache and governor pointers are excluded: caching never changes
/// results, and the governor only bounds resources — cached artifacts must
/// stay reusable across differently-governed requests).
/// Part of cache keys so artifacts compiled under different budgets never
/// alias.
uint64_t EvalOptionsDigest(const EvalOptions& options);

/// Is `tuple` a certain answer of Q over `database`? Exact for all
/// decidable classes; ResourceExhausted when a budget prevented an exact
/// negative answer. If `stats` is non-null, counters of the work performed
/// (chase, rewriting, homomorphism search) are accumulated into it.
Result<bool> EvalTuple(const Omq& omq, const Database& database,
                       const std::vector<Term>& tuple,
                       const EvalOptions& options = EvalOptions(),
                       EngineStats* stats = nullptr);

/// All certain answers Q(D). Same exactness contract as EvalTuple.
Result<std::vector<std::vector<Term>>> EvalAll(
    const Omq& omq, const Database& database,
    const EvalOptions& options = EvalOptions(), EngineStats* stats = nullptr);

/// Boolean convenience: Q(D) ≠ ∅ for a Boolean OMQ.
Result<bool> EvalBoolean(const Omq& omq, const Database& database,
                         const EvalOptions& options = EvalOptions(),
                         EngineStats* stats = nullptr);

}  // namespace omqc

#endif  // OMQC_CORE_EVAL_H_
