#include "core/lean.h"

#include <algorithm>
#include <queue>

#include "base/string_util.h"

namespace omqc {

Status ValidateLean(const TreeDecomposition& decomposition,
                    const std::set<Term>& core_terms) {
  if (decomposition.bags.empty()) {
    return Status::InvalidArgument("empty decomposition");
  }
  auto children = decomposition.Children();
  // Condition 1: core elements only at the root and its children.
  for (size_t v = 1; v < decomposition.size(); ++v) {
    if (decomposition.parent[v] == 0) continue;
    for (const Term& t : decomposition.bags[v]) {
      if (core_terms.count(t) > 0) {
        return Status::InvalidArgument(
            StrCat("core element ", t.ToString(), " occurs at depth >= 2"));
      }
    }
  }
  // Condition 2: one shared, one new element per non-root bag; the new
  // element is passed to every child (condition 3).
  std::vector<Term> new_element(decomposition.size(), Term());
  for (size_t v = 1; v < decomposition.size(); ++v) {
    const std::set<Term>& mine = decomposition.bags[v];
    const std::set<Term>& parents =
        decomposition.bags[static_cast<size_t>(decomposition.parent[v])];
    std::vector<Term> shared, fresh;
    for (const Term& t : mine) {
      if (parents.count(t) > 0) {
        shared.push_back(t);
      } else {
        fresh.push_back(t);
      }
    }
    if (shared.size() != 1 || fresh.size() != 1) {
      return Status::InvalidArgument(
          StrCat("node ", v, " shares ", shared.size(),
                 " elements with its parent and adds ", fresh.size()));
    }
    new_element[v] = fresh.front();
  }
  for (size_t v = 1; v < decomposition.size(); ++v) {
    for (int child : children[v]) {
      if (decomposition.bags[static_cast<size_t>(child)].count(
              new_element[v]) == 0) {
        return Status::InvalidArgument(
            StrCat("node ", v, "'s new element is absent from child ",
                   child));
      }
    }
  }
  return Status::OK();
}

Result<TreeDecomposition> BuildLeanDecomposition(
    const Database& database, const std::set<Term>& core_terms) {
  if (database.InducedSchema().MaxArity() > 2) {
    return Status::Unsupported(
        "lean decompositions are defined for unary/binary schemas");
  }
  TreeDecomposition out;
  out.bags.push_back(core_terms);
  out.parent.push_back(-1);

  // BFS over the Gaifman graph; node_of[t] = decomposition node whose new
  // element is t (0 for core elements).
  std::map<Term, size_t> node_of;
  std::queue<Term> frontier;
  for (const Term& t : core_terms) {
    node_of.emplace(t, 0);
    frontier.push(t);
  }
  while (!frontier.empty()) {
    Term current = frontier.front();
    frontier.pop();
    // Binary atoms incident to `current` (arena views — this loop runs
    // once per discovered term, so materializing every atom each visit
    // made the BFS quadratic in allocations).
    for (AtomId id = 0; id < database.size(); ++id) {
      const AtomView atom = database.view(id);
      if (atom.arity() != 2) continue;
      Term other;
      if (atom.arg(0) == current) {
        other = atom.arg(1);
      } else if (atom.arg(1) == current) {
        other = atom.arg(0);
      } else {
        continue;
      }
      if (other == current) continue;  // self-loop: stays in the bag
      auto seen = node_of.find(other);
      if (seen != node_of.end()) {
        // An edge between two already-discovered elements is fine inside
        // the core, or between a node and its parent's element; anything
        // else is a cycle outside the core.
        bool both_core = core_terms.count(current) > 0 &&
                         core_terms.count(other) > 0;
        size_t node_current = node_of.at(current);
        size_t node_other = seen->second;
        bool parent_child =
            (node_current != 0 &&
             static_cast<size_t>(out.parent[node_current]) == node_other) ||
            (node_other != 0 &&
             static_cast<size_t>(out.parent[node_other]) == node_current);
        if (!both_core && !parent_child) {
          return Status::InvalidArgument(
              StrCat("the database is not tree-shaped outside the core: ",
                     atom.Materialize().ToString(), " closes a cycle"));
        }
        continue;
      }
      std::set<Term> bag{current, other};
      out.bags.push_back(std::move(bag));
      out.parent.push_back(static_cast<int>(node_of.at(current)));
      node_of.emplace(other, out.bags.size() - 1);
      frontier.push(other);
    }
  }
  // Every term must be reachable (otherwise it is disconnected from the
  // core and no C-tree decomposition rooted at the core exists).
  for (const Term& t : database.ActiveDomain()) {
    if (node_of.count(t) == 0) {
      return Status::InvalidArgument(
          StrCat(t.ToString(), " is not reachable from the core"));
    }
  }
  return out;
}

std::map<Term, int> DistanceFromRoot(const TreeDecomposition& decomposition,
                                     const std::set<Term>& core_terms) {
  std::map<Term, int> distance;
  // Node depths.
  std::vector<int> depth(decomposition.size(), 0);
  for (size_t v = 1; v < decomposition.size(); ++v) {
    depth[v] = depth[static_cast<size_t>(decomposition.parent[v])] + 1;
  }
  for (size_t v = 0; v < decomposition.size(); ++v) {
    for (const Term& t : decomposition.bags[v]) {
      int d = core_terms.count(t) > 0 ? 0 : depth[v];
      auto it = distance.find(t);
      if (it == distance.end() || d < it->second) distance[t] = d;
    }
  }
  return distance;
}

DistanceSplit SplitByDistance(const Database& database,
                              const std::map<Term, int>& distance, int k) {
  DistanceSplit split;
  for (AtomId id = 0; id < database.size(); ++id) {
    const AtomView atom = database.view(id);
    bool all_near = true;
    bool all_far = true;
    for (const Term& t : atom) {
      auto it = distance.find(t);
      int d = it == distance.end() ? 0 : it->second;
      if (d > k) all_near = false;
      if (d <= k) all_far = false;
    }
    if (all_near) split.near.AddView(atom);
    if (all_far) split.far.AddView(atom);
  }
  return split;
}

int BranchingDegree(const TreeDecomposition& decomposition) {
  int degree = 0;
  for (const std::vector<int>& children : decomposition.Children()) {
    degree = std::max(degree, static_cast<int>(children.size()));
  }
  return degree;
}

}  // namespace omqc
