#include "core/frontend.h"

#include <fstream>
#include <sstream>

#include "base/string_util.h"
#include "tgd/classify.h"

namespace omqc {

const char* EngineFlagsUsage() {
  return "[--threads=N] [--stats] [--stats-json] "
         "[--chase=naive|seminaive] [--cache=on|off] [--cache-capacity=N] "
         "[--cache-dir=PATH] [--deadline-ms=N] [--max-memory-mb=N]";
}

Result<uint64_t> ParseUnsignedFlagValue(const std::string& flag,
                                        const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument(
        StrCat(flag, " expects an unsigned integer, got an empty value"));
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat(flag, " expects an unsigned integer, got '", text, "'"));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(
          StrCat(flag, " value '", text, "' overflows"));
    }
    value = value * 10 + digit;
  }
  return value;
}

namespace {

/// Shared pattern: "--name=<uint>" with strict value parsing.
Result<bool> ConsumeUnsigned(const std::string& arg, const char* name,
                             uint64_t* out) {
  std::string prefix = StrCat(name, "=");
  if (arg.rfind(prefix, 0) != 0) return false;
  OMQC_ASSIGN_OR_RETURN(*out,
                        ParseUnsignedFlagValue(name, arg.substr(prefix.size())));
  return true;
}

}  // namespace

Result<bool> ParseEngineFlag(const std::string& arg, EngineFlags* flags) {
  uint64_t value = 0;
  {
    auto r = ConsumeUnsigned(arg, "--threads", &value);
    if (!r.ok()) return r.status();
    if (*r) {
      flags->threads = static_cast<size_t>(value);
      return true;
    }
  }
  if (arg == "--stats") {
    flags->stats = true;
    return true;
  }
  if (arg == "--stats-json") {
    flags->stats_json = true;
    return true;
  }
  if (arg.rfind("--chase=", 0) == 0) {
    std::string strategy = arg.substr(8);
    if (strategy == "naive") {
      flags->chase = ChaseStrategy::kNaive;
    } else if (strategy == "seminaive") {
      flags->chase = ChaseStrategy::kSemiNaive;
    } else {
      return Status::InvalidArgument("--chase expects 'naive' or 'seminaive'");
    }
    return true;
  }
  if (arg.rfind("--cache=", 0) == 0) {
    std::string mode = arg.substr(8);
    if (mode == "on") {
      flags->cache = true;
    } else if (mode == "off") {
      flags->cache = false;
    } else {
      return Status::InvalidArgument("--cache expects 'on' or 'off'");
    }
    return true;
  }
  {
    auto r = ConsumeUnsigned(arg, "--cache-capacity", &value);
    if (!r.ok()) return r.status();
    if (*r) {
      if (value == 0) {
        return Status::InvalidArgument(
            "--cache-capacity expects a positive integer");
      }
      flags->cache_capacity = static_cast<size_t>(value);
      return true;
    }
  }
  if (arg.rfind("--cache-dir=", 0) == 0) {
    std::string dir = arg.substr(12);
    if (dir.empty()) {
      return Status::InvalidArgument("--cache-dir expects a directory path");
    }
    flags->cache_dir = dir;
    return true;
  }
  {
    auto r = ConsumeUnsigned(arg, "--deadline-ms", &value);
    if (!r.ok()) return r.status();
    if (*r) {
      flags->deadline_ms = value;
      return true;
    }
  }
  {
    auto r = ConsumeUnsigned(arg, "--max-memory-mb", &value);
    if (!r.ok()) return r.status();
    if (*r) {
      flags->max_memory_mb = static_cast<size_t>(value);
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<ArtifactStore>> MakeCacheFromFlags(
    const EngineFlags& flags) {
  if (!flags.cache) return std::unique_ptr<ArtifactStore>();
  OmqCacheConfig l1{flags.cache_capacity, 8};
  if (flags.cache_dir.empty()) {
    return std::unique_ptr<ArtifactStore>(std::make_unique<OmqCache>(l1));
  }
  OMQC_ASSIGN_OR_RETURN(std::unique_ptr<TieredStore> store,
                        TieredStore::Open(TieredStoreConfig{l1,
                                                            flags.cache_dir}));
  return std::unique_ptr<ArtifactStore>(std::move(store));
}

void ApplyGovernorFlags(const EngineFlags& flags,
                        ResourceGovernor* governor) {
  if (flags.deadline_ms > 0) {
    governor->set_deadline_after(std::chrono::milliseconds(flags.deadline_ms));
  }
  if (flags.max_memory_mb > 0) {
    governor->set_memory_budget(flags.max_memory_mb * size_t{1024} * 1024);
  }
}

Result<Program> LoadProgramFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream text;
  text << in.rdbuf();
  return ParseProgram(text.str());
}

Schema InferProgramDataSchema(const Program& program) {
  Schema schema = program.facts.InducedSchema();
  Schema derived = program.tgds.HeadPredicates();
  for (const NamedQuery& nq : program.queries) {
    for (const Atom& a : nq.query.body) {
      if (!derived.Contains(a.predicate)) schema.Add(a.predicate);
    }
  }
  for (const Tgd& tgd : program.tgds.tgds) {
    for (const Atom& a : tgd.body) {
      if (!derived.Contains(a.predicate)) schema.Add(a.predicate);
    }
  }
  return schema;
}

Result<Omq> SingleQueryNamed(const Program& program, const Schema& schema,
                             const std::string& name) {
  UnionOfCQs ucq = program.QueriesNamed(name);
  if (ucq.empty()) {
    return Status::NotFound("no query named " + name);
  }
  if (ucq.size() > 1) {
    return Status::Unsupported(
        "query " + name + " is a UCQ; this command expects a single CQ");
  }
  return Omq{schema, program.tgds, ucq.disjuncts.front()};
}

std::string FormatAnswers(const std::vector<std::vector<Term>>& answers) {
  std::string out = StrCat(answers.size(), " answer(s):\n");
  for (const auto& tuple : answers) {
    out += StrCat("  (",
                  JoinMapped(tuple, ", ",
                             [](const Term& t) { return t.ToString(); }),
                  ")\n");
  }
  return out;
}

std::string FormatContainmentReport(const std::string& lhs,
                                    const std::string& rhs,
                                    const ContainmentResult& result) {
  std::string out = StrCat(lhs, " ⊆ ", rhs, ": ",
                           ContainmentOutcomeToString(result.outcome), "\n");
  if (!result.detail.empty()) {
    out += StrCat("  ", result.detail, "\n");
  }
  if (result.witness.has_value()) {
    out += StrCat("counterexample database:\n",
                  PrettifiedCopy(result.witness->database).ToString(), "\n");
  }
  out += StrCat("candidates checked: ", result.candidates_checked,
                " (largest: ", result.max_witness_size, " atoms)\n");
  return out;
}

std::string FormatClassificationReport(const TgdSet& tgds) {
  ClassificationReport report = Classify(tgds);
  return StrCat("tgds: ", tgds.size(), "\nclasses: ", report.ToString(),
                "\nprimary class: ", TgdClassToString(PrimaryClass(tgds)),
                "\n");
}

}  // namespace omqc
