#include "core/stats_json.h"

namespace omqc {

void AppendGovernorCountersJson(JsonWriter& w, std::string_view key,
                                const GovernorCounters& governor) {
  w.BeginObject(key);
  w.Field("checks", governor.checks);
  w.Field("deadline_trips", governor.deadline_trips);
  w.Field("cancel_trips", governor.cancel_trips);
  w.Field("memory_trips", governor.memory_trips);
  w.EndObject();
}

void AppendCacheCountersJson(JsonWriter& w, std::string_view key,
                             const CacheCounters& cache) {
  w.BeginObject(key);
  w.Field("lookups", cache.lookups);
  w.Field("hits", cache.hits);
  w.Field("misses", cache.misses);
  w.Field("insertions", cache.insertions);
  w.Field("evictions", cache.evictions);
  w.Field("bytes_inserted", cache.bytes_inserted);
  w.Field("persist_hits", cache.persist_hits);
  w.Field("persist_writes", cache.persist_writes);
  w.Field("promotions", cache.promotions);
  w.EndObject();
}

void AppendOmqCacheStatsJson(JsonWriter& w, std::string_view key,
                             const OmqCacheStats& stats) {
  w.BeginObject(key);
  AppendCacheCountersJson(w, "counters", stats.counters);
  w.Field("entries", stats.entries);
  w.Field("bytes", stats.bytes);
  w.Field("persist_entries", stats.persist_entries);
  w.Field("persist_segments", stats.persist_segments);
  w.Field("persist_corrupt_records", stats.persist_corrupt_records);
  w.Field("persist_version_rejects", stats.persist_version_rejects);
  w.EndObject();
}

void AppendEngineStatsJson(JsonWriter& w, std::string_view key,
                           const EngineStats& stats) {
  w.BeginObject(key);

  w.BeginObject("containment");
  w.Field("disjuncts_checked", stats.disjuncts_checked);
  w.Field("witnesses_rejected", stats.witnesses_rejected);
  w.Field("budget_exhaustions", stats.budget_exhaustions);
  w.EndObject();

  w.BeginObject("rewrite");
  w.Field("queries_generated", stats.rewrite.queries_generated);
  w.Field("rewriting_steps", stats.rewrite.rewriting_steps);
  w.Field("factorization_steps", stats.rewrite.factorization_steps);
  w.Field("max_disjunct_atoms", stats.rewrite.max_disjunct_atoms);
  w.Field("dedup_hits", stats.rewrite.dedup_hits);
  w.Field("subsumption_prunes", stats.rewrite.subsumption_prunes);
  w.EndObject();

  w.BeginObject("hom");
  w.Field("searches", stats.hom.searches);
  w.Field("steps", stats.hom.steps);
  w.Field("candidates_scanned", stats.hom.candidates_scanned);
  w.Field("budget_exhaustions", stats.hom.budget_exhaustions);
  w.Field("postings_intersections", stats.hom.postings_intersections);
  w.Field("candidates_pruned_by_intersection",
          stats.hom.candidates_pruned_by_intersection);
  w.EndObject();

  w.BeginObject("chase");
  w.Field("steps", stats.chase_steps);
  w.Field("atoms_derived", stats.chase_atoms_derived);
  w.Field("max_level", stats.chase_max_level);
  w.Field("delta_rounds", stats.chase_delta_rounds);
  w.Field("triggers_enumerated", stats.chase_triggers_enumerated);
  w.Field("redundant_triggers_skipped",
          stats.chase_redundant_triggers_skipped);
  w.EndObject();

  w.BeginObject("automata");
  w.Field("states_explored", stats.automata.states_explored);
  w.Field("states_subsumed", stats.automata.states_subsumed);
  w.Field("antichain_size", stats.automata.antichain_size);
  w.Field("emptiness_rounds", stats.automata.emptiness_rounds);
  w.Field("dnf_cache_hits", stats.automata.dnf_cache_hits);
  w.Field("dnf_cache_misses", stats.automata.dnf_cache_misses);
  w.EndObject();

  AppendGovernorCountersJson(w, "governor", stats.governor);
  AppendCacheCountersJson(w, "cache", stats.cache);

  w.EndObject();
}

std::string EngineStatsToJson(const EngineStats& stats) {
  JsonWriter w;
  w.BeginObject();
  AppendEngineStatsJson(w, "engine", stats);
  w.EndObject();
  return w.TakeString();
}

}  // namespace omqc
