#include "core/squid.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"

namespace omqc {

bool IsAlphaAcyclic(const std::vector<Atom>& atoms,
                    const std::set<Term>& omit) {
  // Hyperedges: variable sets of the atoms minus the omitted terms.
  std::vector<std::set<Term>> edges;
  for (const Atom& a : atoms) {
    std::set<Term> edge;
    for (const Term& t : a.args) {
      if (t.IsVariable() && omit.count(t) == 0) edge.insert(t);
    }
    edges.push_back(std::move(edge));
  }
  // GYO reduction.
  bool changed = true;
  while (changed) {
    changed = false;
    // Count vertex occurrences.
    std::map<Term, int> occurrences;
    for (const std::set<Term>& e : edges) {
      for (const Term& v : e) ++occurrences[v];
    }
    // Rule 1: delete vertices occurring in exactly one edge.
    for (std::set<Term>& e : edges) {
      for (auto it = e.begin(); it != e.end();) {
        if (occurrences[*it] == 1) {
          it = e.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Rule 2: delete empty edges and edges contained in another edge.
    for (size_t i = 0; i < edges.size();) {
      bool removable = edges[i].empty();
      for (size_t j = 0; j < edges.size() && !removable; ++j) {
        if (i == j) continue;
        if (std::includes(edges[j].begin(), edges[j].end(),
                          edges[i].begin(), edges[i].end())) {
          removable = true;
        }
      }
      if (removable) {
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
      } else {
        ++i;
      }
    }
  }
  return edges.empty();
}

std::string SquidDecomposition::ToString() const {
  auto atoms_to_string = [](const std::vector<Atom>& atoms) {
    return JoinMapped(atoms, ", ",
                      [](const Atom& a) { return a.ToString(); });
  };
  return StrCat(
      "H = {", atoms_to_string(head), "}\nT = {", atoms_to_string(tentacles),
      "}\nV = {",
      JoinMapped(core_vars, ", ", [](const Term& t) { return t.ToString(); }),
      "}\ntentacles ", tentacles_acyclic ? "[V]-acyclic" : "cyclic");
}

Result<SquidDecomposition> ComputeSquidDecomposition(
    const ConjunctiveQuery& q, const Instance& instance,
    const std::set<Term>& core_terms, const Substitution& hom) {
  SquidDecomposition squid;
  for (const Atom& atom : q.body) {
    Atom image = hom.Apply(atom);
    if (!instance.Contains(image)) {
      return Status::InvalidArgument(
          StrCat("not a homomorphism: image ", image.ToString(),
                 " is missing from the instance"));
    }
    bool in_core = true;
    for (const Term& t : image.args) {
      if (core_terms.count(t) == 0) {
        in_core = false;
        break;
      }
    }
    if (in_core && !image.args.empty()) {
      squid.head.push_back(atom);
    } else {
      squid.tentacles.push_back(atom);
    }
  }
  for (const Term& v : q.Variables()) {
    if (core_terms.count(hom.Apply(v)) > 0) squid.core_vars.insert(v);
  }
  squid.tentacles_acyclic =
      IsAlphaAcyclic(squid.tentacles, squid.core_vars);
  return squid;
}

}  // namespace omqc
