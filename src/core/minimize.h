// Ontology-aware query minimization: the classical application of
// containment that the paper's introduction motivates (query
// optimization). An atom of q is redundant in Q = (S, Σ, q) when dropping
// it yields an equivalent OMQ — which, unlike plain CQ minimization,
// depends on Σ.

#ifndef OMQC_CORE_MINIMIZE_H_
#define OMQC_CORE_MINIMIZE_H_

#include "core/containment.h"

namespace omqc {

struct OmqMinimizationResult {
  Omq minimized;
  /// Number of body atoms removed.
  size_t atoms_removed = 0;
  /// True when every removal was certified by a decided containment; if
  /// any equivalence check came back kUnknown the result is still a
  /// correct (equivalent) OMQ, but possibly not minimal.
  bool certified_minimal = true;
};

/// Greedily removes body atoms whose removal keeps the OMQ equivalent
/// (checked with CheckEquivalence in both directions). Dropping an atom
/// only ever *weakens* a query, so only the direction
/// "weakened ⊆ original" needs deciding; a kUnknown leaves the atom in
/// place and clears `certified_minimal`.
Result<OmqMinimizationResult> MinimizeOmqQuery(
    const Omq& omq, const ContainmentOptions& options = ContainmentOptions());

}  // namespace omqc

#endif  // OMQC_CORE_MINIMIZE_H_
