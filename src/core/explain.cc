#include "core/explain.h"

#include <functional>

#include "base/string_util.h"
#include "chase/chase.h"
#include "logic/homomorphism.h"

namespace omqc {

size_t DerivationNode::size() const {
  size_t count = 1;
  for (const auto& child : premises) count += child->size();
  return count;
}

int DerivationNode::depth() const {
  int deepest = 0;
  for (const auto& child : premises) {
    deepest = std::max(deepest, child->depth());
  }
  return deepest + 1;
}

namespace {

void Render(const DerivationNode& node, const TgdSet& tgds, int indent,
            std::string& out) {
  out.append(static_cast<size_t>(indent) * 2, ' ');
  out += node.atom.ToString();
  if (node.tgd_index == DerivationNode::kDatabaseFact) {
    out += "   [database fact]";
  } else {
    out += StrCat("   [tgd ", node.tgd_index, ": ",
                  tgds.tgds[static_cast<size_t>(node.tgd_index)].ToString(),
                  "]");
  }
  out += "\n";
  for (const auto& child : node.premises) {
    Render(*child, tgds, indent + 1, out);
  }
}

/// Unwinds provenance into a derivation tree, walking arena ids; atoms are
/// materialized once per node for display. Cycles cannot occur: a premise
/// always has a strictly smaller derivation level.
DerivationNode Unwind(AtomId id, const ChaseResult& chase) {
  DerivationNode node;
  node.atom = chase.instance.MaterializeAtom(id);
  auto it = chase.provenance.find(id);
  if (it == chase.provenance.end()) {
    node.tgd_index = DerivationNode::kDatabaseFact;
    return node;
  }
  node.tgd_index = static_cast<int>(it->second.tgd_index);
  for (AtomId premise : it->second.premise_ids) {
    node.premises.push_back(
        std::make_unique<DerivationNode>(Unwind(premise, chase)));
  }
  return node;
}

}  // namespace

std::string Explanation::ToString(const TgdSet& tgds) const {
  std::string out = StrCat(
      "answer (",
      JoinMapped(tuple, ", ", [](const Term& t) { return t.ToString(); }),
      ") because:\n");
  for (const DerivationNode& root : roots) {
    Render(root, tgds, 1, out);
  }
  return out;
}

Result<Explanation> ExplainTuple(const Omq& omq, const Database& database,
                                 const std::vector<Term>& tuple,
                                 const EvalOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  if (tuple.size() != omq.AnswerArity()) {
    return Status::InvalidArgument("answer tuple arity mismatch");
  }
  ChaseOptions chase_options;
  chase_options.track_provenance = true;
  chase_options.max_atoms = options.chase_max_atoms;
  if (!IsFull(omq.tgds) && !IsNonRecursive(omq.tgds)) {
    chase_options.max_level = options.chase_max_level;
  }
  OMQC_ASSIGN_OR_RETURN(ChaseResult chase,
                        Chase(database, omq.tgds, chase_options));

  // Seed the answer variables with the tuple.
  Substitution seed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Term& v = omq.query.answer_vars[i];
    if (!v.IsVariable()) {
      if (v != tuple[i]) {
        return Status::NotFound("tuple clashes with a constant answer");
      }
      continue;
    }
    auto existing = seed.Lookup(v);
    if (existing.has_value() && *existing != tuple[i]) {
      return Status::NotFound("tuple clashes with a repeated variable");
    }
    seed.Bind(v, tuple[i]);
  }
  auto hom = FindHomomorphism(omq.query.body, chase.instance, seed);
  if (!hom.has_value()) {
    if (!chase.complete) {
      return Status::ResourceExhausted(
          "no proof found within the chase budget");
    }
    return Status::NotFound("the tuple is not a certain answer");
  }
  Explanation explanation;
  explanation.tuple = tuple;
  for (const Atom& body_atom : omq.query.body) {
    // The homomorphism maps the body into the chase instance, so every
    // image resolves to an arena id.
    std::optional<AtomId> id =
        chase.instance.FindId(hom->Apply(body_atom));
    if (!id.has_value()) {
      return Status::Internal("witness atom missing from chase instance");
    }
    explanation.roots.push_back(Unwind(*id, chase));
  }
  return explanation;
}

}  // namespace omqc
