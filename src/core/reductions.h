// The reductions of Sec. 3: evaluation ↔ containment (Props. 5 and 6) and
// the UCQ → CQ transform (Prop. 9).

#ifndef OMQC_CORE_REDUCTIONS_H_
#define OMQC_CORE_REDUCTIONS_H_

#include <utility>

#include "core/omq.h"
#include "logic/instance.h"

namespace omqc {

/// Prop. 5: c̄ ∈ Q(D) iff Q1 ⊆ Q2 where
///   Q1 = (sch(Σ) ∪ S, ∅, q_{D,c̄})  and  Q2 = (sch(Σ) ∪ S, Σ, q).
/// q_{D,c̄} is the canonical CQ of D: every constant c becomes a variable
/// x_c, and the answer tuple is (x_{c1},...,x_{cn}).
struct EvalToContainmentInstance {
  Omq q1;
  Omq q2;
};
Result<EvalToContainmentInstance> EvalToContainment(
    const Omq& omq, const Database& database, const std::vector<Term>& tuple);

/// Prop. 6: c̄ ∈ Q(D) iff Q1 ⊄ Q2 where
///   Q1 = (S, Σ*_D, q*_c̄)  and  Q2 = (S, ∅, ∃x P(x)),
/// with Σ*_D the ontology with every predicate renamed to a starred copy
/// plus one fact tgd per atom of D, q*_c̄ the starred query with answers
/// instantiated to c̄ (Boolean), and P a fresh predicate outside S.
struct EvalToCoContainmentInstance {
  Omq q1;
  Omq q2;
};
Result<EvalToCoContainmentInstance> EvalToCoContainment(
    const Omq& omq, const Database& database, const std::vector<Term>& tuple);

/// Prop. 9: rewrites a Boolean OMQ with a UCQ into an equivalent OMQ with a
/// CQ in the same tgd class (G, L, NR, S are all preserved), using the
/// 'or'-gadget encoding: data atoms are annotated true, one tgd generates
/// false-annotated copies of all disjunct atoms plus the Or truth table,
/// and the output CQ chains Or atoms to demand that some disjunct is true.
///
/// Restricted to Boolean UCQs (the paper's complexity analysis also reduces
/// to BCQs first); returns Unsupported otherwise.
Result<Omq> UcqOmqToCqOmq(const UcqOmq& omq);

}  // namespace omqc

#endif  // OMQC_CORE_REDUCTIONS_H_
