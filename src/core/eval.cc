#include "core/eval.h"

#include <algorithm>

#include "base/string_util.h"
#include "cache/cached_ops.h"
#include "logic/homomorphism.h"

namespace omqc {
namespace {

Status CheckDatabaseSchema(const Omq& omq, const Database& database) {
  if (!database.IsDatabase()) {
    return Status::InvalidArgument("input instance contains nulls");
  }
  Schema db_schema = database.InducedSchema();
  for (const Predicate& p : db_schema.predicates()) {
    if (!omq.data_schema.Contains(p)) {
      return Status::InvalidArgument(
          StrCat("database predicate ", p.ToString(),
                 " is not in the data schema"));
    }
  }
  return Status::OK();
}

enum class Path { kChase, kRewrite };

Path ChoosePath(const TgdProfile& profile, const EvalOptions& options) {
  switch (options.strategy) {
    case EvalOptions::Strategy::kChase:
      return Path::kChase;
    case EvalOptions::Strategy::kRewrite:
      return Path::kRewrite;
    case EvalOptions::Strategy::kAuto:
      break;
  }
  switch (profile.primary) {
    case TgdClass::kLinear:
    case TgdClass::kSticky:
      // The chase is usually much cheaper when it provably terminates
      // (the rewriting of sticky sets can be exponential, Prop. 17);
      // fall back to rewriting only for genuinely recursive,
      // null-inventing sets.
      return profile.ChaseTerminates() ? Path::kChase : Path::kRewrite;
    default:
      return Path::kChase;
  }
}

ChaseOptions ChaseOptionsFor(const TgdProfile& profile,
                             const EvalOptions& options) {
  ChaseOptions chase;
  chase.variant = ChaseVariant::kRestricted;
  chase.strategy = options.chase_strategy;
  chase.max_atoms = options.chase_max_atoms;
  chase.governor = options.governor;
  if (profile.primary != TgdClass::kEmpty && !profile.ChaseTerminates()) {
    chase.max_level = options.chase_max_level;
  }
  return chase;
}

/// Overlays the request governor onto the rewriting options (the stored
/// options travel through the cache layer, whose digest ignores the
/// governor, so per-request attachment is safe).
XRewriteOptions GovernedRewriteOptions(const EvalOptions& options) {
  XRewriteOptions rewrite = options.rewrite;
  rewrite.governor = options.governor;
  return rewrite;
}

/// Snapshots the request governor's counters into stats on scope exit, so
/// every return path of an entry point reports them.
struct GovernorStatsScope {
  ResourceGovernor* governor;
  EngineStats* stats;
  ~GovernorStatsScope() {
    if (governor != nullptr && stats != nullptr) {
      stats->governor.Merge(governor->counters());
    }
  }
};

/// Folds a finished chase run into `stats` (no-op on nullptr).
void RecordChase(const ChaseResult& chased, size_t database_size,
                 EngineStats* stats) {
  if (stats == nullptr) return;
  stats->chase_steps += chased.steps;
  stats->chase_atoms_derived += chased.instance.size() - database_size;
  stats->chase_max_level =
      std::max(stats->chase_max_level, chased.max_level_reached);
  stats->chase_delta_rounds += chased.rounds;
  stats->chase_triggers_enumerated += chased.triggers_enumerated;
  stats->chase_redundant_triggers_skipped +=
      chased.redundant_triggers_skipped;
}

uint64_t Fold(uint64_t h, uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2))) *
         0x00000100000001b3ULL;
}

/// Digest of every ChaseOptions field that can change the chase result
/// (governor and counter pointers excluded, exactly like EvalOptionsDigest:
/// they bound resources or tally work, and only *complete* chases are
/// cached — a fixpoint is the same fixpoint under any governor that let it
/// finish).
uint64_t ChaseOptionsDigestFor(const ChaseOptions& chase) {
  uint64_t h = 0xa0761d6478bd642fULL;
  h = Fold(h, static_cast<uint64_t>(chase.variant));
  h = Fold(h, static_cast<uint64_t>(chase.strategy));
  h = Fold(h, chase.max_steps);
  h = Fold(h, chase.max_atoms);
  h = Fold(h, static_cast<uint64_t>(static_cast<int64_t>(chase.max_level)));
  return h;
}

}  // namespace

uint64_t EvalOptionsDigest(const EvalOptions& options) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  h = Fold(h, static_cast<uint64_t>(options.strategy));
  h = Fold(h, static_cast<uint64_t>(options.chase_strategy));
  h = Fold(h, options.chase_max_atoms);
  h = Fold(h, static_cast<uint64_t>(options.chase_max_level));
  h = Fold(h, options.hom_max_steps);
  h = Fold(h, XRewriteOptionsDigest(options.rewrite));
  return h;
}

Result<bool> EvalTuple(const Omq& omq, const Database& database,
                       const std::vector<Term>& tuple,
                       const EvalOptions& options, EngineStats* stats) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  OMQC_RETURN_IF_ERROR(CheckDatabaseSchema(omq, database));
  if (tuple.size() != omq.AnswerArity()) {
    return Status::InvalidArgument("answer tuple arity mismatch");
  }
  GovernorStatsScope governor_scope{options.governor, stats};
  HomomorphismOptions hom_options;
  hom_options.max_steps = options.hom_max_steps;
  hom_options.counters = stats != nullptr ? &stats->hom : nullptr;
  hom_options.governor = options.governor;
  CacheCounters* cache_counters = stats != nullptr ? &stats->cache : nullptr;
  TgdProfile profile = GetTgdProfile(options.cache, omq.tgds, cache_counters);
  if (ChoosePath(profile, options) == Path::kRewrite) {
    OMQC_ASSIGN_OR_RETURN(
        std::shared_ptr<const UnionOfCQs> rewriting,
        CachedXRewrite(options.cache, omq.data_schema, omq.tgds, omq.query,
                       GovernedRewriteOptions(options),
                       stats != nullptr ? &stats->rewrite : nullptr,
                       cache_counters));
    bool exhausted = false;
    for (const ConjunctiveQuery& disjunct : rewriting->disjuncts) {
      switch (TupleInAnswerBudgeted(disjunct, database, tuple, hom_options)) {
        case HomSearchOutcome::kFound:
          return true;
        case HomSearchOutcome::kExhausted:
          exhausted = true;  // keep looking: another disjunct may match
          break;
        case HomSearchOutcome::kNotFound:
          break;
      }
    }
    if (exhausted) {
      return TripStatusOr(
          options.governor,
          Status::ResourceExhausted(
              StrCat("homomorphism step budget (", options.hom_max_steps,
                     ") exhausted on a rewriting disjunct; cannot certify a "
                     "negative answer")));
    }
    return false;
  }
  ChaseOptions chase_options = ChaseOptionsFor(profile, options);
  chase_options.hom_counters = hom_options.counters;
  OMQC_ASSIGN_OR_RETURN(ChaseResult chased,
                        Chase(database, omq.tgds, chase_options));
  RecordChase(chased, database.size(), stats);
  switch (TupleInAnswerBudgeted(omq.query, chased.instance, tuple,
                                hom_options)) {
    case HomSearchOutcome::kFound:
      return true;  // sound even on a truncated chase
    case HomSearchOutcome::kExhausted:
      return TripStatusOr(
          options.governor,
          Status::ResourceExhausted(
              StrCat("homomorphism step budget (", options.hom_max_steps,
                     ") exhausted on the chase instance; cannot certify a "
                     "negative answer")));
    case HomSearchOutcome::kNotFound:
      break;
  }
  if (!chased.complete) {
    if (!chased.interrupt.ok()) return chased.interrupt;
    return Status::ResourceExhausted(
        StrCat("chase budget exhausted (", chased.instance.size(),
               " atoms, level ", chased.max_level_reached,
               "); cannot certify a negative answer"));
  }
  return false;
}

Result<std::vector<std::vector<Term>>> EvalAll(const Omq& omq,
                                               const Database& database,
                                               const EvalOptions& options,
                                               EngineStats* stats) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  OMQC_RETURN_IF_ERROR(CheckDatabaseSchema(omq, database));
  GovernorStatsScope governor_scope{options.governor, stats};
  HomomorphismOptions hom_options;
  hom_options.counters = stats != nullptr ? &stats->hom : nullptr;
  hom_options.governor = options.governor;
  CacheCounters* cache_counters = stats != nullptr ? &stats->cache : nullptr;
  TgdProfile profile = GetTgdProfile(options.cache, omq.tgds, cache_counters);
  if (ChoosePath(profile, options) == Path::kRewrite) {
    OMQC_ASSIGN_OR_RETURN(
        std::shared_ptr<const UnionOfCQs> rewriting,
        CachedXRewrite(options.cache, omq.data_schema, omq.tgds, omq.query,
                       GovernedRewriteOptions(options),
                       stats != nullptr ? &stats->rewrite : nullptr,
                       cache_counters));
    auto answers = EvaluateUCQ(*rewriting, database, hom_options);
    // The full answer set is the contract; a trip mid-enumeration means
    // answers may be missing, so degrade to the trip status.
    if (options.governor != nullptr && options.governor->tripped()) {
      return options.governor->TripStatus();
    }
    return answers;
  }
  ChaseOptions chase_options = ChaseOptionsFor(profile, options);
  chase_options.hom_counters = hom_options.counters;
  // Chase-result caching: the chase of D under Σ is determined by (D, Σ,
  // chase options), and answers over an equal restored instance are
  // identical because EvaluateCQ only emits constant tuples ("nulls are
  // not answers") and constants are interned by name. Only complete
  // (fixpoint) chases are cached; truncated chases depend on what stopped
  // them and are recomputed.
  std::shared_ptr<const CachedChase> chase_entry;
  CacheKey chase_key;
  if (options.cache != nullptr) {
    chase_key = ChaseCacheKey(database, omq.tgds,
                              ChaseOptionsDigestFor(chase_options));
    chase_entry = options.cache->Get<CachedChase>(chase_key, cache_counters);
  }
  if (chase_entry == nullptr) {
    OMQC_ASSIGN_OR_RETURN(ChaseResult chased,
                          Chase(database, omq.tgds, chase_options));
    RecordChase(chased, database.size(), stats);
    if (!chased.complete) {
      if (!chased.interrupt.ok()) return chased.interrupt;
      return Status::ResourceExhausted(
          StrCat("chase budget exhausted (", chased.instance.size(),
                 " atoms); the answer set may be incomplete"));
    }
    auto computed = std::make_shared<CachedChase>();
    computed->instance = std::move(chased.instance);
    if (options.cache != nullptr) {
      options.cache->Put<CachedChase>(chase_key, computed,
                                      computed->instance.MemoryBytes(),
                                      cache_counters,
                                      FingerprintTgdSet(omq.tgds));
    }
    chase_entry = std::move(computed);
  }
  // On a hit no chase ran: the chase counters stay untouched (EngineStats
  // counters mean work performed; the saved chase shows up in `cache`).
  auto answers = EvaluateCQ(omq.query, chase_entry->instance, hom_options);
  if (options.governor != nullptr && options.governor->tripped()) {
    return options.governor->TripStatus();
  }
  return answers;
}

Result<bool> EvalBoolean(const Omq& omq, const Database& database,
                         const EvalOptions& options, EngineStats* stats) {
  if (!omq.query.IsBoolean()) {
    return Status::InvalidArgument("EvalBoolean expects a Boolean OMQ");
  }
  return EvalTuple(omq, database, {}, options, stats);
}

}  // namespace omqc
