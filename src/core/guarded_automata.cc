#include "core/guarded_automata.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {
namespace {

/// All atoms over the name set `names` with predicates from `schema`.
std::vector<std::pair<Predicate, std::vector<int>>> AtomsOver(
    const Schema& schema, const std::vector<int>& names) {
  std::vector<std::pair<Predicate, std::vector<int>>> out;
  for (const Predicate& p : schema.predicates()) {
    const int arity = p.arity();
    if (arity == 0) {
      out.push_back({p, {}});
      continue;
    }
    if (names.empty()) continue;
    std::vector<size_t> idx(static_cast<size_t>(arity), 0);
    while (true) {
      std::vector<int> args;
      for (size_t i : idx) args.push_back(names[i]);
      out.push_back({p, std::move(args)});
      size_t k = 0;
      for (; k < idx.size(); ++k) {
        if (++idx[k] < names.size()) break;
        idx[k] = 0;
      }
      if (k == idx.size()) break;
    }
  }
  return out;
}

/// Conditions (2) and (3) shared by root and internal nodes.
bool LocalOk(const TreeLabel& label, int l) {
  for (const auto& [pred, args] : label.atoms) {
    for (int a : args) {
      if (label.names.count(a) == 0) return false;
    }
  }
  for (int a : label.names) {
    if (a < l && label.core_names.count(a) == 0) return false;
  }
  for (int a : label.core_names) {
    if (a >= l || label.names.count(a) == 0) return false;
  }
  return true;
}

bool RootOk(const TreeLabel& label, int l) {
  if (static_cast<int>(label.names.size()) > l) return false;
  for (int a : label.names) {
    if (a >= l) return false;
  }
  return LocalOk(label, l);
}

bool InternalOk(const TreeLabel& label, int l, int width) {
  if (static_cast<int>(label.names.size()) > width) return false;
  return LocalOk(label, l);
}

/// Encodes a core-name set as a bitmask over Cl.
int CoreMask(const TreeLabel& label) {
  int mask = 0;
  for (int a : label.core_names) mask |= 1 << a;
  return mask;
}

}  // namespace

int GammaAlphabet::IndexOf(const TreeLabel& label) const {
  if (!index.empty()) {
    auto it = index.find(label);
    return it == index.end() ? -1 : it->second;
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return static_cast<int>(i);
  }
  return -1;
}

Result<LabeledTree> GammaAlphabet::ToLabeledTree(
    const EncodedTree& tree) const {
  if (tree.labels.empty()) {
    return Status::InvalidArgument("empty encoded tree");
  }
  LabeledTree out;
  out.nodes.resize(tree.size());
  for (size_t v = 0; v < tree.size(); ++v) {
    int label_id = IndexOf(tree.labels[v]);
    if (label_id < 0) {
      return Status::NotFound(
          StrCat("label of node ", v, " is not in the alphabet: ",
                 tree.labels[v].ToString()));
    }
    out.nodes[v].label = label_id;
    out.nodes[v].parent = tree.parent[v];
    if (tree.parent[v] >= 0) {
      out.nodes[static_cast<size_t>(tree.parent[v])].children.push_back(
          static_cast<int>(v));
    }
  }
  return out;
}

Result<GammaAlphabet> EnumerateGammaAlphabet(const Schema& schema, int l,
                                             int width, size_t max_labels) {
  if (l < 0 || width < 1 || l > 8) {
    return Status::InvalidArgument(
        "alphabet enumeration expects 0 <= l <= 8 and width >= 1");
  }
  GammaAlphabet alphabet;
  alphabet.l = l;
  alphabet.width = width;
  alphabet.schema = schema;

  const int universe = l + 2 * width;
  const int max_names = std::max(l, width);
  for (int name_mask = 0; name_mask < (1 << universe); ++name_mask) {
    if (__builtin_popcount(static_cast<unsigned>(name_mask)) > max_names) {
      continue;
    }
    std::vector<int> names;
    for (int a = 0; a < universe; ++a) {
      if (name_mask & (1 << a)) names.push_back(a);
    }
    auto atoms = AtomsOver(schema, names);
    if (atoms.size() > 20) {
      return Status::ResourceExhausted(
          StrCat(atoms.size(),
                 " candidate atom markers per label; the alphabet is only "
                 "materializable for toy schemas"));
    }
    // Core subsets of names ∩ Cl.
    std::vector<int> core_candidates;
    for (int a : names) {
      if (a < l) core_candidates.push_back(a);
    }
    for (int core_mask = 0;
         core_mask < (1 << core_candidates.size()); ++core_mask) {
      for (size_t atom_mask = 0; atom_mask < (size_t{1} << atoms.size());
           ++atom_mask) {
        TreeLabel label;
        label.names.insert(names.begin(), names.end());
        for (size_t i = 0; i < core_candidates.size(); ++i) {
          if (core_mask & (1 << i)) {
            label.core_names.insert(core_candidates[i]);
          }
        }
        for (size_t i = 0; i < atoms.size(); ++i) {
          if (atom_mask & (size_t{1} << i)) label.atoms.insert(atoms[i]);
        }
        alphabet.labels.push_back(std::move(label));
        if (alphabet.labels.size() > max_labels) {
          return Status::ResourceExhausted(
              StrCat("more than ", max_labels, " labels in ΓS,l"));
        }
      }
    }
  }
  alphabet.index.reserve(alphabet.labels.size());
  for (size_t i = 0; i < alphabet.labels.size(); ++i) {
    alphabet.index.emplace(alphabet.labels[i], static_cast<int>(i));
  }
  return alphabet;
}

Twapa ConsistencyAutomaton(const GammaAlphabet& alphabet) {
  // State 0: root dispatch. State 1 + A: "my parent's core markers are
  // exactly the set A" (A a bitmask over Cl).
  const int l = alphabet.l;
  const int width = alphabet.width;
  std::vector<TreeLabel> labels = alphabet.labels;
  Twapa automaton;
  automaton.num_states = 1 + (1 << l);
  automaton.num_labels = static_cast<int>(labels.size());
  automaton.initial_state = 0;
  automaton.mode = AcceptanceMode::kFiniteRuns;
  automaton.delta = [labels, l, width](int state, int label_id) -> Formula {
    const TreeLabel& label = labels[static_cast<size_t>(label_id)];
    if (state == 0) {
      if (!RootOk(label, l)) return Formula::False();
      return Box(Move::kChild, 1 + CoreMask(label));
    }
    const int parent_core = state - 1;
    if (!InternalOk(label, l, width)) return Formula::False();
    // Condition (4): my core markers must all sit on my parent.
    int mine = CoreMask(label);
    if ((mine & ~parent_core) != 0) return Formula::False();
    return Box(Move::kChild, 1 + mine);
  };
  return automaton;
}

Twapa AtomPresenceAutomaton(const GammaAlphabet& alphabet, Predicate pred) {
  std::vector<TreeLabel> labels = alphabet.labels;
  Twapa automaton;
  automaton.num_states = 1;
  automaton.num_labels = static_cast<int>(labels.size());
  automaton.initial_state = 0;
  automaton.mode = AcceptanceMode::kFiniteRuns;
  automaton.delta = [labels, pred](int /*state*/, int label_id) -> Formula {
    const TreeLabel& label = labels[static_cast<size_t>(label_id)];
    for (const auto& [p, args] : label.atoms) {
      if (p == pred) return Formula::True();
    }
    return Diamond(Move::kChild, 0);
  };
  return automaton;
}

bool FullyConsistent(const GammaAlphabet& alphabet, const EncodedTree& tree) {
  auto labeled = alphabet.ToLabeledTree(tree);
  if (!labeled.ok()) return false;
  if (!Accepts(ConsistencyAutomaton(alphabet), *labeled)) return false;
  return CheckConsistency(tree).ok();
}

}  // namespace omqc
