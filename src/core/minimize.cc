#include "core/minimize.h"

namespace omqc {

Result<OmqMinimizationResult> MinimizeOmqQuery(
    const Omq& omq, const ContainmentOptions& options) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  OmqMinimizationResult result;
  result.minimized = omq;

  bool changed = true;
  while (changed && result.minimized.query.body.size() > 1) {
    changed = false;
    for (size_t i = 0; i < result.minimized.query.body.size(); ++i) {
      Omq candidate = result.minimized;
      candidate.query.body.erase(candidate.query.body.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (!ValidateCQ(candidate.query).ok()) continue;  // unbinds answers
      // Removing an atom weakens the query: original ⊆ candidate always.
      // Equivalence therefore reduces to candidate ⊆ original.
      OMQC_ASSIGN_OR_RETURN(
          ContainmentResult contained,
          CheckContainment(candidate, result.minimized, options));
      if (contained.outcome == ContainmentOutcome::kContained) {
        result.minimized = std::move(candidate);
        ++result.atoms_removed;
        changed = true;
        break;
      }
      if (contained.outcome == ContainmentOutcome::kUnknown) {
        result.certified_minimal = false;
      }
    }
  }
  return result;
}

}  // namespace omqc
