// Applications of OMQ containment (Sec. 7): satisfiability, distribution
// over components (Prop. 27 / Thm. 28) and deciding UCQ rewritability of
// guarded OMQs (Sec. 7.2 / Thm. 29).

#ifndef OMQC_CORE_APPLICATIONS_H_
#define OMQC_CORE_APPLICATIONS_H_

#include <optional>

#include "core/containment.h"
#include "core/omq.h"

namespace omqc {

/// Is there an S-database D with Q(D) ≠ ∅? Decided via the UCQ rewriting
/// when the ontology is UCQ-rewritable (satisfiable iff the rewriting has
/// a disjunct), and via the critical database (every fact over a single
/// fresh constant plus the constants of Q) otherwise — OMQs are closed
/// under homomorphisms, so the critical database is a universal test.
/// The guarded/general path inherits the budgeted-chase contract of
/// EvalTuple and may return ResourceExhausted.
Result<bool> IsSatisfiable(const Omq& omq,
                           const ContainmentOptions& options =
                               ContainmentOptions());

/// Distribution over components (Sec. 7.1). Result of the decision:
struct DistributionResult {
  ContainmentOutcome outcome = ContainmentOutcome::kUnknown;
  /// When distributed via the Prop. 27 characterization: the index of the
  /// query component q̂ with (S,Σ,q̂) ⊆ Q, or nullopt when Q is
  /// unsatisfiable.
  std::optional<size_t> witnessing_component;
  std::string detail;
};

/// Decides whether Q distributes over components, via Prop. 27:
/// Q distributes iff Q is unsatisfiable or some connected component q̂ of q
/// (carrying all answer variables) satisfies (S,Σ,q̂) ⊆ Q.
Result<DistributionResult> DistributesOverComponents(
    const Omq& omq,
    const ContainmentOptions& options = ContainmentOptions());

/// Evaluates Q over D component-wise: Q(D1) ∪ ... ∪ Q(Dn) for the
/// connected components Di of D. Equals Q(D) exactly when Q distributes
/// over components; used by the distributed-evaluation example and the
/// application bench.
Result<std::vector<std::vector<Term>>> EvalOverComponents(
    const Omq& omq, const Database& database,
    const EvalOptions& options = EvalOptions());

/// UCQ rewritability of an OMQ (Sec. 7.2).
struct UcqRewritabilityResult {
  ContainmentOutcome outcome = ContainmentOutcome::kUnknown;
  /// For kContained (= rewritable): a complete UCQ rewriting certificate.
  std::optional<UnionOfCQs> rewriting;
  /// For kUnknown: how many pairwise non-subsumed disjuncts were found
  /// before the budget — a growing series is evidence of
  /// non-rewritability (the boundedness property of Prop. 30 fails).
  size_t disjuncts_found = 0;
  std::string detail;
};

/// Semi-decides whether Q is UCQ-rewritable by enumerating its perfect
/// rewriting with subsumption pruning: saturation yields a certificate
/// (kContained); budget exhaustion yields kUnknown with evidence. For
/// L/NR/S ontologies this always certifies (those languages are UCQ
/// rewritable, Sec. 4); for guarded ontologies it replaces the paper's
/// 2WAPA-infinity decision (see DESIGN.md substitutions).
Result<UcqRewritabilityResult> CheckUcqRewritability(
    const Omq& omq,
    const ContainmentOptions& options = ContainmentOptions());

}  // namespace omqc

#endif  // OMQC_CORE_APPLICATIONS_H_
