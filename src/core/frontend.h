// Shared front-end plumbing for the omqc binaries (omqc_cli, omqc_server,
// omqc_load): engine flag parsing, program loading, and verdict
// formatting.
//
// The three binaries accept the same --cache=/--deadline-ms=/... engine
// flags; parsing lives here once so they cannot drift. Numeric flag values
// are parsed *strictly* — "--threads=12x" or "--deadline-ms=" is a usage
// error, not a silent 12 or 0 (omqc_cli historically accepted both via
// strtoul).
//
// The Format* functions produce the exact text omqc_cli prints for a
// verdict; the server returns the same strings as response bodies, which
// is what makes "server output is byte-identical to the CLI" a structural
// property rather than a test aspiration (asserted anyway by
// tests/server_test.cc and scripts/server_smoke.sh).

#ifndef OMQC_CORE_FRONTEND_H_
#define OMQC_CORE_FRONTEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/governor.h"
#include "cache/persist.h"
#include "chase/chase.h"
#include "core/containment.h"
#include "core/omq.h"
#include "tgd/parser.h"

namespace omqc {

/// The engine flags shared by every omqc binary.
struct EngineFlags {
  size_t threads = 1;      ///< --threads=N (0 = hardware concurrency)
  bool stats = false;      ///< --stats (human-readable EngineStats)
  bool stats_json = false; ///< --stats-json (machine-readable EngineStats)
  ChaseStrategy chase = ChaseStrategy::kSemiNaive;  ///< --chase=...
  bool cache = true;             ///< --cache=on|off
  size_t cache_capacity = 1024;  ///< --cache-capacity=N (> 0)
  std::string cache_dir;         ///< --cache-dir=PATH ("" = memory only)
  uint64_t deadline_ms = 0;      ///< --deadline-ms=N (0 = none)
  size_t max_memory_mb = 0;      ///< --max-memory-mb=N (0 = none)
};

/// One-line usage text for the shared engine flags (appended to each
/// binary's own usage message).
const char* EngineFlagsUsage();

/// Strict unsigned decimal parse of a flag value: the whole of `text` must
/// be digits and fit in a uint64_t. `flag` names the flag for the error
/// message ("--threads").
Result<uint64_t> ParseUnsignedFlagValue(const std::string& flag,
                                        const std::string& text);

/// Tries to consume `arg` as a shared engine flag into `flags`. Returns
/// true when consumed, false when `arg` is not an engine flag (positional
/// argument or a binary-specific flag), and an error Status for an engine
/// flag with a malformed value.
Result<bool> ParseEngineFlag(const std::string& arg, EngineFlags* flags);

/// The process-wide compilation cache the flags ask for: null when
/// --cache=off, a plain in-memory OmqCache by default, or a TieredStore
/// warm-started from --cache-dir (created if absent). Fails only when the
/// cache directory cannot be created — bad segment contents degrade to a
/// cold cache, never to an error.
Result<std::unique_ptr<ArtifactStore>> MakeCacheFromFlags(
    const EngineFlags& flags);

/// Applies the deadline/memory flags to `governor`.
void ApplyGovernorFlags(const EngineFlags& flags, ResourceGovernor* governor);

/// Reads and parses a DLGP program file.
Result<Program> LoadProgramFile(const std::string& path);

/// Data schema heuristic shared by all front ends: fact predicates plus
/// query/tgd body predicates no tgd derives.
Schema InferProgramDataSchema(const Program& program);

/// The single-CQ query named `name` as an OMQ over `schema`; NotFound /
/// Unsupported mirror omqc_cli's historical messages.
Result<Omq> SingleQueryNamed(const Program& program, const Schema& schema,
                             const std::string& name);

/// "N answer(s):" plus one indented tuple per line — exactly what
/// omqc_cli eval prints.
std::string FormatAnswers(const std::vector<std::vector<Term>>& answers);

/// The containment verdict block omqc_cli contain prints: verdict line,
/// optional detail, optional counterexample database, candidates line.
std::string FormatContainmentReport(const std::string& lhs,
                                    const std::string& rhs,
                                    const ContainmentResult& result);

/// The classification block omqc_cli classify prints.
std::string FormatClassificationReport(const TgdSet& tgds);

}  // namespace omqc

#endif  // OMQC_CORE_FRONTEND_H_
