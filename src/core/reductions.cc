#include "core/reductions.h"

#include <map>

#include "base/string_util.h"

namespace omqc {
namespace {

/// Renames every predicate of `atom` via `rename` (same arity).
Atom RenamePredicate(const Atom& atom,
                     const std::map<Predicate, Predicate>& rename) {
  auto it = rename.find(atom.predicate);
  if (it == rename.end()) return atom;
  return Atom(it->second, atom.args);
}

std::vector<Atom> RenamePredicates(
    const std::vector<Atom>& atoms,
    const std::map<Predicate, Predicate>& rename) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(RenamePredicate(a, rename));
  return out;
}

/// Appends `annotation` as an extra final argument, retargeting the atom to
/// the (arity+1) annotated predicate with the given suffix.
Atom Annotate(const Atom& atom, const Term& annotation,
              const std::string& suffix) {
  std::vector<Term> args = atom.args;
  args.push_back(annotation);
  return Atom::Make(atom.predicate.name() + suffix, std::move(args));
}

}  // namespace

Result<EvalToContainmentInstance> EvalToContainment(
    const Omq& omq, const Database& database,
    const std::vector<Term>& tuple) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  if (tuple.size() != omq.AnswerArity()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  Schema schema = omq.CombinedSchema().Union(database.InducedSchema());
  // q_{D,c̄}: constants of D become variables.
  Substitution to_vars;
  for (const Term& c : database.ActiveDomain()) {
    if (!c.IsConstant()) {
      return Status::InvalidArgument("database contains a non-constant");
    }
    to_vars.Bind(c, Term::Variable(StrCat("X@", c.ToString())));
  }
  ConjunctiveQuery canonical;
  // Materializing iteration is fine here: this runs once per reduction
  // and every atom is copied into the query body anyway.
  for (const Atom& a : database.atoms()) {
    canonical.body.push_back(to_vars.Apply(a));
  }
  for (const Term& c : tuple) {
    canonical.answer_vars.push_back(to_vars.Apply(c));
  }
  EvalToContainmentInstance out;
  out.q1 = Omq{schema, TgdSet{}, std::move(canonical)};
  out.q2 = Omq{schema, omq.tgds, omq.query};
  return out;
}

Result<EvalToCoContainmentInstance> EvalToCoContainment(
    const Omq& omq, const Database& database,
    const std::vector<Term>& tuple) {
  OMQC_RETURN_IF_ERROR(ValidateOmq(omq));
  if (tuple.size() != omq.AnswerArity()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  // Starred copies of every predicate in Σ, q and D.
  std::map<Predicate, Predicate> star;
  auto ensure_star = [&star](Predicate p) {
    if (star.count(p) == 0) {
      star.emplace(p, Predicate::Get(p.name() + "@star", p.arity()));
    }
  };
  Schema combined = omq.CombinedSchema();
  for (const Predicate& p : combined.predicates()) ensure_star(p);
  Schema db_schema = database.InducedSchema();
  for (const Predicate& p : db_schema.predicates()) {
    ensure_star(p);
  }
  TgdSet starred;
  for (const Tgd& tgd : omq.tgds.tgds) {
    starred.tgds.emplace_back(RenamePredicates(tgd.body, star),
                              RenamePredicates(tgd.head, star));
  }
  // Materializing iteration is fine here: one pass per reduction, and
  // each fact becomes an owned Atom inside a fact TGD regardless.
  for (const Atom& fact : database.atoms()) {
    starred.tgds.emplace_back(std::vector<Atom>{},
                              std::vector<Atom>{RenamePredicate(fact, star)});
  }
  // q*_c̄: answers instantiated, predicates starred; Boolean.
  Substitution instantiate;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Term& v = omq.query.answer_vars[i];
    if (v.IsVariable()) instantiate.Bind(v, tuple[i]);
  }
  ConjunctiveQuery starred_query(
      {}, RenamePredicates(instantiate.Apply(omq.query.body), star));

  EvalToCoContainmentInstance out;
  out.q1 = Omq{omq.data_schema, std::move(starred), std::move(starred_query)};
  Predicate p_fresh = Predicate::Get("@coP", 1);
  ConjunctiveQuery rhs({}, {Atom(p_fresh, {Term::Variable("Xco")})});
  out.q2 = Omq{omq.data_schema, TgdSet{}, std::move(rhs)};
  return out;
}

Result<Omq> UcqOmqToCqOmq(const UcqOmq& omq) {
  OMQC_RETURN_IF_ERROR(ValidateTgdSet(omq.tgds));
  if (omq.query.empty()) {
    return Status::InvalidArgument("UCQ has no disjuncts");
  }
  for (const ConjunctiveQuery& d : omq.query.disjuncts) {
    OMQC_RETURN_IF_ERROR(ValidateCQ(d));
    if (!d.IsBoolean()) {
      return Status::Unsupported(
          "Prop. 9 transform is implemented for Boolean UCQs "
          "(reduce to BCQs first, as in the paper's Sec. 5)");
    }
  }
  const Term kTrue = Term::Constant("@true");
  const std::string kAnn = "@b";  // annotated predicate suffix
  Atom true_atom = Atom::Make("@True", {kTrue});
  auto or_atom = [](const Term& a, const Term& b, const Term& c) {
    return Atom::Make("@Or", {a, b, c});
  };

  TgdSet out_tgds;
  // ⊤ → True(@true): makes the gadget machinery available even on inputs
  // whose ontology contains fact tgds and the database is empty.
  out_tgds.tgds.emplace_back(std::vector<Atom>{},
                             std::vector<Atom>{true_atom});
  // Item 1: annotate data atoms as true.
  for (const Predicate& r : omq.data_schema.predicates()) {
    std::vector<Term> vars;
    for (int i = 0; i < r.arity(); ++i) {
      vars.push_back(Term::Variable(StrCat("U", i)));
    }
    Atom body(r, vars);
    out_tgds.tgds.emplace_back(
        std::vector<Atom>{body},
        std::vector<Atom>{Annotate(body, kTrue, kAnn), true_atom});
  }
  // Item 2: from True(t), generate false-annotated copies of every
  // disjunct's atoms, the Or truth table and False(f); f is existential.
  {
    Term t = Term::Variable("T@gadget");
    Term f = Term::Variable("F@gadget");
    std::vector<Atom> head;
    for (size_t i = 0; i < omq.query.disjuncts.size(); ++i) {
      ConjunctiveQuery renamed =
          omq.query.disjuncts[i].RenamedApart(static_cast<int>(i) + 1);
      for (const Atom& a : renamed.body) head.push_back(Annotate(a, f, kAnn));
    }
    head.push_back(or_atom(t, t, t));
    head.push_back(or_atom(t, f, t));
    head.push_back(or_atom(f, t, t));
    head.push_back(or_atom(f, f, f));
    head.push_back(Atom::Make("@False", {f}));
    Atom body = Atom::Make("@True", {t});
    out_tgds.tgds.emplace_back(std::vector<Atom>{body}, std::move(head));
  }
  // Item 3: annotate the original tgds with a propagated truth variable;
  // fact tgds derive atoms true in every model, so they are annotated with
  // the constant @true.
  for (const Tgd& tgd : omq.tgds.tgds) {
    Term w = Term::Variable("W@gadget");
    const Term& annotation = tgd.body.empty() ? kTrue : w;
    std::vector<Atom> body, head;
    for (const Atom& a : tgd.body) body.push_back(Annotate(a, w, kAnn));
    for (const Atom& a : tgd.head) head.push_back(Annotate(a, annotation, kAnn));
    out_tgds.tgds.emplace_back(std::move(body), std::move(head));
  }
  // Output CQ: False(y1) ∧ Λ_i (q'_i[x_i] ∧ Or(y_i, x_i, y_{i+1}))
  //            ∧ True(y_{n+1}).
  ConjunctiveQuery out_query;
  const size_t n = omq.query.disjuncts.size();
  auto y = [](size_t i) { return Term::Variable(StrCat("Y@", i)); };
  auto x = [](size_t i) { return Term::Variable(StrCat("X@", i)); };
  out_query.body.push_back(Atom::Make("@False", {y(1)}));
  for (size_t i = 1; i <= n; ++i) {
    // Rename disjuncts apart: Boolean disjuncts must not share variables
    // once conjoined in q'.
    ConjunctiveQuery renamed =
        omq.query.disjuncts[i - 1].RenamedApart(1000 + static_cast<int>(i));
    for (const Atom& a : renamed.body) {
      out_query.body.push_back(Annotate(a, x(i), kAnn));
    }
    out_query.body.push_back(or_atom(y(i), x(i), y(i + 1)));
  }
  out_query.body.push_back(Atom::Make("@True", {y(n + 1)}));

  return Omq{omq.data_schema, std::move(out_tgds), std::move(out_query)};
}

}  // namespace omqc
