#include "server/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/string_util.h"
#include "core/containment.h"
#include "core/eval.h"
#include "core/frontend.h"
#include "core/stats_json.h"
#include "tgd/parser.h"

namespace omqc {

using Clock = std::chrono::steady_clock;

/// One client connection. The session thread owns the read side; the
/// write side is shared with pool workers (out-of-order responses) and
/// serialized by `write_mu`. The fd closes when the last holder — session
/// thread or in-flight request — drops its reference.
struct OmqServer::Connection {
  OwnedFd fd;
  std::mutex write_mu;
  std::atomic<bool> broken{false};
};

/// One admitted eval/contain/classify request between its session thread
/// and its pool worker.
struct OmqServer::PendingRequest {
  WireRequest request;
  Program program;
  Schema schema;
  TenantLease lease;
  std::shared_ptr<Connection> conn;
  uint64_t admission_wait_us = 0;
};

namespace {

/// Leader/follower rendezvous for one admission batch: followers park
/// until the leader has executed (and warmed the shared cache).
struct BatchState {
  std::mutex mu;
  std::condition_variable cv;
  bool leader_done = false;
};

}  // namespace

OmqServer::OmqServer(ServerConfig config)
    : config_(std::move(config)),
      tenants_(&governor_, config_.tenant_quota) {
  if (config_.server_memory_budget_bytes > 0) {
    governor_.set_memory_budget(config_.server_memory_budget_bytes);
  }
  if (config_.cache_capacity > 0) {
    OmqCacheConfig cache_config;
    cache_config.capacity = config_.cache_capacity;
    cache_config.num_shards = std::max<size_t>(1, config_.cache_shards);
    if (!config_.cache_dir.empty()) {
      auto store =
          TieredStore::Open(TieredStoreConfig{cache_config, config_.cache_dir});
      if (store.ok()) {
        cache_ = std::move(store).value();
      } else {
        // Persistence is an accelerator, not a dependency: come up
        // memory-only rather than refuse to serve.
        std::fprintf(stderr, "omqc_server: --cache-dir unusable (%s); "
                             "running memory-only\n",
                     store.status().ToString().c_str());
        cache_ = std::make_unique<OmqCache>(cache_config);
      }
    } else {
      cache_ = std::make_unique<OmqCache>(cache_config);
    }
  }
}

OmqServer::~OmqServer() { Shutdown(); }

void OmqServer::Start() {
  // call_once, not an atomic exchange: concurrent first connections must
  // all block until the pipeline exists, or the loser's session thread
  // would race a half-constructed admission queue.
  std::call_once(start_once_, [this] {
    size_t threads = config_.worker_threads != 0
                         ? config_.worker_threads
                         : ThreadPool::DefaultConcurrency();
    pool_ = std::make_unique<ThreadPool>(threads);
    admission_ = std::make_unique<AdmissionQueue>(
        config_.admission,
        [this](std::vector<AdmissionQueue::Ticket>&& batch,
               uint64_t batch_id, bool dropped) {
          RunBatch(std::move(batch), batch_id, dropped);
        });
  });
}

Result<uint16_t> OmqServer::ListenAndStart(uint16_t port) {
  Start();
  OMQC_ASSIGN_OR_RETURN(listen_fd_,
                        ListenTcp(config_.listen_address, port));
  OMQC_ASSIGN_OR_RETURN(uint16_t bound, LocalPort(listen_fd_.get()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound;
}

Result<OwnedFd> OmqServer::ConnectInProcess() {
  Start();
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Cancelled("server shutting down");
  }
  OMQC_ASSIGN_OR_RETURN(auto pair, StreamSocketPair());
  auto conn = std::make_shared<Connection>();
  conn->fd = std::move(pair.second);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    connections_.push_back(conn);
    session_threads_.emplace_back(
        [this, conn]() mutable { SessionLoop(std::move(conn)); });
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.connections;
  }
  return std::move(pair.first);
}

void OmqServer::AcceptLoop() {
  for (;;) {
    auto accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kCancelled ||
          stopping_.load(std::memory_order_acquire)) {
        return;
      }
      continue;  // transient accept failure (e.g. peer reset in backlog)
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      connections_.push_back(conn);
      session_threads_.emplace_back(
          [this, conn]() mutable { SessionLoop(std::move(conn)); });
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections;
    }
  }
}

void OmqServer::SessionLoop(std::shared_ptr<Connection> conn) {
  std::string payload;
  for (;;) {
    Status read = ReadFrame(conn->fd.get(), &payload);
    if (!read.ok()) {
      // kCancelled = orderly close between frames; anything else is a
      // corrupt stream — either way the session ends (in-flight requests
      // keep the fd alive through their own reference).
      if (read.code() != StatusCode::kCancelled) {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.malformed_frames;
      }
      break;
    }
    auto request = DecodeRequest(payload);
    if (!request.ok()) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.malformed_frames;
      }
      WireResponse response;
      response.request_id = 0;  // the id may not have decoded
      response.code = request.status().code();
      response.message = request.status().message();
      SendResponse(conn, std::move(response));
      continue;  // framing is intact; later frames may be fine
    }
    HandleRequest(conn, std::move(*request));
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), conn),
      connections_.end());
}

void OmqServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                              WireRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.requests;
  }
  switch (request.type) {
    case RequestType::kPing: {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.pings;
      }
      WireResponse response;
      response.request_id = request.request_id;
      response.body = "pong";
      SendResponse(conn, std::move(response));
      return;
    }
    case RequestType::kStats: {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.stats_requests;
      }
      WireResponse response;
      response.request_id = request.request_id;
      response.body = StatsJson();
      SendResponse(conn, std::move(response));
      return;
    }
    case RequestType::kShutdown: {
      WireResponse response;
      response.request_id = request.request_id;
      response.body = "shutting down";
      SendResponse(conn, std::move(response));
      RequestShutdown();
      return;
    }
    case RequestType::kEval:
    case RequestType::kContain:
    case RequestType::kClassify:
      break;
  }

  // Parse on the session thread so malformed programs bounce immediately
  // without consuming a pool slot or tenant accounting.
  auto program = ParseProgram(request.program);
  if (!program.ok()) {
    WireResponse response;
    response.request_id = request.request_id;
    response.code = StatusCode::kInvalidArgument;
    response.message = StrCat("program: ", program.status().message());
    SendResponse(conn, std::move(response));
    return;
  }

  auto pending = std::make_shared<PendingRequest>();
  pending->program = std::move(*program);
  pending->schema = InferProgramDataSchema(pending->program);
  pending->conn = conn;
  pending->request = std::move(request);

  // Over the tenant's concurrency quota the request parks in the
  // registry; a later completion re-dispatches it via SettleLease.
  auto admission =
      tenants_.AdmitOrQueue(pending->request.tenant, pending);
  if (admission.queued) return;
  pending->lease = std::move(admission.lease);

  // A tenant whose governor is tripped (e.g. blew its memory quota) fails
  // fast until its in-flight requests drain and the governor is replaced.
  Status trip = pending->lease.governor->TripStatus();
  if (!trip.ok()) {
    FailPending(pending, trip.code(),
                StrCat("tenant governor tripped: ", trip.message()),
                /*batch_id=*/0, /*batch_size=*/0);
    return;
  }

  BatchKey key;
  key.ontology = FingerprintTgdSet(pending->program.tgds);
  key.kind = static_cast<uint8_t>(pending->request.type);
  if (!admission_->Submit(key, pending)) {
    FailPending(pending, StatusCode::kCancelled, "server shutting down",
                /*batch_id=*/0, /*batch_size=*/0);
  }
}

void OmqServer::RunBatch(std::vector<AdmissionQueue::Ticket>&& batch,
                         uint64_t batch_id, bool dropped) {
  uint32_t batch_size = static_cast<uint32_t>(batch.size());
  if (dropped) {
    // Fault-injected drop: every rider is answered and every lease
    // settled right here on the dispatcher thread — the queue stays
    // serviceable and no governor charge leaks (tests/server_test.cc).
    for (AdmissionQueue::Ticket& ticket : batch) {
      auto pending =
          std::static_pointer_cast<PendingRequest>(ticket.payload);
      pending->admission_wait_us = ticket.wait_us;
      FailPending(pending, StatusCode::kCancelled,
                  "admission batch dropped (injected)", batch_id,
                  batch_size);
    }
    return;
  }
  if (batch.size() == 1) {
    auto pending =
        std::static_pointer_cast<PendingRequest>(batch.front().payload);
    pending->admission_wait_us = batch.front().wait_us;
    pool_->Submit([this, pending, batch_id, batch_size] {
      Execute(pending, batch_id, batch_size);
    });
    return;
  }
  // Leader first, then followers. The pool is FIFO, so the leader is
  // always dequeued before any follower: a parked follower's leader is
  // running or done, never queued behind it — deadlock-free at any pool
  // size, including 1.
  auto state = std::make_shared<BatchState>();
  for (size_t i = 0; i < batch.size(); ++i) {
    auto pending =
        std::static_pointer_cast<PendingRequest>(batch[i].payload);
    pending->admission_wait_us = batch[i].wait_us;
    if (i == 0) {
      pool_->Submit([this, pending, state, batch_id, batch_size] {
        Execute(pending, batch_id, batch_size);
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->leader_done = true;
        }
        state->cv.notify_all();
      });
    } else {
      pool_->Submit([this, pending, state, batch_id, batch_size] {
        {
          std::unique_lock<std::mutex> lock(state->mu);
          state->cv.wait(lock, [&] { return state->leader_done; });
        }
        Execute(pending, batch_id, batch_size);
      });
    }
  }
}

void OmqServer::Execute(const std::shared_ptr<PendingRequest>& pending,
                        uint64_t batch_id, uint32_t batch_size) {
  const WireRequest& request = pending->request;

  ResourceGovernor req_gov(pending->lease.governor.get());
  uint64_t deadline_ms = request.deadline_ms;
  if (deadline_ms == 0) deadline_ms = config_.default_deadline_ms;
  if (deadline_ms == 0) deadline_ms = tenants_.quota().default_deadline_ms;
  if (deadline_ms > 0) {
    req_gov.set_deadline_after(std::chrono::milliseconds(deadline_ms));
  }
  if (request.max_memory_bytes > 0) {
    req_gov.set_memory_budget(
        static_cast<size_t>(request.max_memory_bytes));
  }

  WireResponse response;
  response.request_id = request.request_id;
  response.batch_id = batch_id;
  response.batch_size = batch_size;
  response.admission_wait_us = pending->admission_wait_us;

  EngineStats stats;
  switch (request.type) {
    case RequestType::kEval: {
      auto omq = SingleQueryNamed(pending->program, pending->schema,
                                  request.query);
      if (!omq.ok()) {
        response.code = omq.status().code();
        response.message = omq.status().message();
        break;
      }
      EvalOptions options;
      options.chase_strategy = config_.chase;
      options.cache = cache_.get();
      options.governor = &req_gov;
      auto answers =
          EvalAll(*omq, pending->program.facts, options, &stats);
      if (!answers.ok()) {
        response.code = answers.status().code();
        response.message = answers.status().message();
      } else {
        response.body = FormatAnswers(*answers);
      }
      response.stats_json = EngineStatsToJson(stats);
      break;
    }
    case RequestType::kContain: {
      auto q1 = SingleQueryNamed(pending->program, pending->schema,
                                 request.query);
      auto q2 = SingleQueryNamed(pending->program, pending->schema,
                                 request.query2);
      if (!q1.ok() || !q2.ok()) {
        const Status& bad = q1.ok() ? q2.status() : q1.status();
        response.code = bad.code();
        response.message = bad.message();
        break;
      }
      ContainmentOptions options;
      options.num_threads = std::max<size_t>(1, config_.contain_threads);
      options.eval.chase_strategy = config_.chase;
      options.cache = cache_.get();
      options.governor = &req_gov;
      auto result = CheckContainment(*q1, *q2, options);
      if (!result.ok()) {
        response.code = result.status().code();
        response.message = result.status().message();
      } else {
        response.body =
            FormatContainmentReport(request.query, request.query2, *result);
        stats = result->stats;
      }
      response.stats_json = EngineStatsToJson(stats);
      break;
    }
    case RequestType::kClassify: {
      response.body = FormatClassificationReport(pending->program.tgds);
      break;
    }
    default:
      response.code = StatusCode::kInternal;
      response.message = "non-executable request type reached the pool";
      break;
  }

  // A trip is the authoritative outcome even when the engine salvaged a
  // partial result (mirrors omqc_cli's exit 3): the client sees the trip
  // code, plus whatever partial body was produced.
  Status trip = req_gov.TripStatus();
  if (!trip.ok()) {
    response.code = trip.code();
    response.message = trip.message();
  }

  StatusCode code = response.code;
  SendResponse(pending->conn, std::move(response));
  SettleLease(pending, req_gov.local_charged_bytes(), code, stats,
              batch_size > 1);
}

void OmqServer::FailPending(const std::shared_ptr<PendingRequest>& pending,
                            StatusCode code, const std::string& message,
                            uint64_t batch_id, uint32_t batch_size) {
  WireResponse response;
  response.request_id = pending->request.request_id;
  response.code = code;
  response.message = message;
  response.batch_id = batch_id;
  response.batch_size = batch_size;
  response.admission_wait_us = pending->admission_wait_us;
  SendResponse(pending->conn, std::move(response));
  SettleLease(pending, /*residual_bytes=*/0, code, EngineStats(),
              batch_size > 1);
}

void OmqServer::SettleLease(const std::shared_ptr<PendingRequest>& pending,
                            size_t residual_bytes, StatusCode code,
                            const EngineStats& stats, bool batched) {
  std::vector<TenantRegistry::Resumed> work =
      tenants_.Complete(pending->lease, residual_bytes, code, stats,
                        batched);
  // Dispatch everything the completion released. A resumed request that
  // cannot run (tripped governor, admission refused) is answered right
  // here and its own settlement may release more work — hence the
  // worklist, so an arbitrarily long failing cascade stays iterative.
  while (!work.empty()) {
    TenantRegistry::Resumed resumed = std::move(work.back());
    work.pop_back();
    auto next = std::static_pointer_cast<PendingRequest>(resumed.payload);
    next->lease = std::move(resumed.lease);
    Status refusal = next->lease.governor->TripStatus();
    if (!refusal.ok()) {
      refusal = Status(refusal.code(),
                       StrCat("tenant governor tripped: ",
                              refusal.message()));
    } else {
      BatchKey key;
      key.ontology = FingerprintTgdSet(next->program.tgds);
      key.kind = static_cast<uint8_t>(next->request.type);
      if (!admission_->Submit(key, next)) {
        refusal = Status::Cancelled("server shutting down");
      }
    }
    if (refusal.ok()) continue;
    WireResponse response;
    response.request_id = next->request.request_id;
    response.code = refusal.code();
    response.message = refusal.message();
    SendResponse(next->conn, std::move(response));
    auto more = tenants_.Complete(next->lease, /*residual_bytes=*/0,
                                  refusal.code(), EngineStats(),
                                  /*batched=*/false);
    for (auto& m : more) work.push_back(std::move(m));
  }
}

void OmqServer::SendResponse(const std::shared_ptr<Connection>& conn,
                             WireResponse&& response) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (response.code == StatusCode::kOk) {
      ++counters_.responses_ok;
    } else {
      ++counters_.responses_error;
    }
  }
  std::string payload = EncodeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->broken.load(std::memory_order_relaxed)) return;
  if (!WriteFrame(conn->fd.get(), payload).ok()) {
    conn->broken.store(true, std::memory_order_relaxed);
  }
}

void OmqServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool OmqServer::WaitForShutdownRequest(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait_for(lock, timeout, [&] { return shutdown_requested_; });
  return shutdown_requested_;
}

void OmqServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // 1. Stop accepting connections.
  if (listen_fd_.valid()) ShutdownSocket(listen_fd_.get());
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Flush the admission queue (new submissions now bounce) and drain
  //    every execution — all responses are written after this.
  if (admission_ != nullptr) admission_->Shutdown();
  if (pool_ != nullptr) pool_->Wait();
  // 2b. Requests still parked in tenant concurrency queues can no longer
  //     be dequeued by a completion (the pool is drained): answer them
  //     kCancelled while their connections are still up. Stragglers that
  //     race in before the sessions join are swept again below.
  auto drain_queued = [this] {
    for (auto& payload : tenants_.DrainQueued()) {
      auto pending = std::static_pointer_cast<PendingRequest>(payload);
      WireResponse response;
      response.request_id = pending->request.request_id;
      response.code = StatusCode::kCancelled;
      response.message = "server shutting down";
      SendResponse(pending->conn, std::move(response));
    }
  };
  drain_queued();
  // 3. Unblock session readers and join them.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& conn : connections_) {
      if (conn->fd.valid()) ShutdownSocket(conn->fd.get());
    }
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
  drain_queued();
  // 4. Every response is out; seal what this run compiled into the
  //    persistent store (no-op for the memory-only cache).
  if (cache_ != nullptr) cache_->Flush();
}

void OmqServer::set_fault_injector(FaultInjector* injector) {
  if (admission_ != nullptr) admission_->set_fault_injector(injector);
  if (cache_ != nullptr) cache_->set_fault_injector(injector);
}

AdmissionStats OmqServer::admission_stats() const {
  return admission_ != nullptr ? admission_->Stats() : AdmissionStats{};
}

ServerCounters OmqServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string OmqServer::StatsJson() const {
  JsonWriter w;
  w.BeginObject();

  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    w.BeginObject("server");
    w.Field("connections", counters_.connections);
    w.Field("requests", counters_.requests);
    w.Field("responses_ok", counters_.responses_ok);
    w.Field("responses_error", counters_.responses_error);
    w.Field("pings", counters_.pings);
    w.Field("stats_requests", counters_.stats_requests);
    w.Field("malformed_frames", counters_.malformed_frames);
    w.Field("worker_threads",
            static_cast<uint64_t>(pool_ != nullptr ? pool_->num_threads()
                                                   : 0));
    w.EndObject();
  }

  AdmissionStats admission =
      admission_ != nullptr ? admission_->Stats() : AdmissionStats();
  w.BeginObject("admission");
  w.Field("submitted", admission.submitted);
  w.Field("rejected", admission.rejected);
  w.Field("batches_dispatched", admission.batches_dispatched);
  w.Field("batches_dropped", admission.batches_dropped);
  w.Field("dropped_requests", admission.dropped_requests);
  w.Field("batched_requests", admission.batched_requests);
  w.Field("max_batch_size", admission.max_batch_size);
  w.Field("queue_depth_peak", admission.queue_depth_peak);
  w.Field("current_depth", admission.current_depth);
  w.Field("wait_us_total", admission.wait_us_total);
  w.Field("wait_us_max", admission.wait_us_max);
  w.EndObject();

  if (cache_ != nullptr) {
    AppendOmqCacheStatsJson(w, "cache", cache_->Stats());
  }
  AppendGovernorCountersJson(w, "governor", governor_.counters());
  w.Field("governor_charged_bytes",
          static_cast<uint64_t>(governor_.local_charged_bytes()));

  w.BeginObject("tenants");
  for (const auto& [name, snap] : tenants_.Snapshot()) {
    w.BeginObject(name);
    w.Field("requests", snap.counters.requests);
    w.Field("completed", snap.counters.completed);
    w.Field("failed", snap.counters.failed);
    w.Field("deadline_trips", snap.counters.deadline_trips);
    w.Field("cancel_trips", snap.counters.cancel_trips);
    w.Field("memory_trips", snap.counters.memory_trips);
    w.Field("batched_requests", snap.counters.batched_requests);
    w.Field("cache_hits", snap.counters.cache_hits);
    w.Field("cache_misses", snap.counters.cache_misses);
    w.Field("governor_resets", snap.counters.governor_resets);
    w.Field("queued_requests", snap.counters.queued_requests);
    w.Field("queue_peak", snap.counters.queue_peak);
    w.Field("inflight", snap.inflight);
    w.Field("queued", snap.queued);
    w.Field("charged_bytes", static_cast<uint64_t>(snap.charged_bytes));
    w.Field("tripped", snap.tripped);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

}  // namespace omqc
