// OmqServer: containment-as-a-service over the wire protocol.
//
// Request path (see DESIGN.md "Server pipeline"):
//
//   session thread ──► admission queue ──► dispatcher ──► worker pool
//   (read + parse)     (batch by ontology    (leader /      (execute,
//                       fingerprint+kind)     followers)     respond)
//
// Each connection gets a session thread that reads frames, answers
// ping/stats/shutdown inline, parses eval/contain/classify programs, and
// enqueues an admission ticket. The admission queue (admission.h) groups
// tickets by BatchKey; the dispatcher submits each batch to the shared
// ThreadPool as one *leader* task followed by follower tasks that block on
// the leader. The leader's compilation warms the shared OmqCache, so the
// followers hit where serial one-shot runs would each compile cold. FIFO
// pool order makes this deadlock-free at any pool size: a batch's leader
// is always dequeued before its followers, so a waiting follower's leader
// is already running or done.
//
// Resource governance: every request executes under a fresh governor
// child of its tenant's governor (tenant.h), itself a child of the
// server-wide governor. A request trip (deadline/memory) answers that
// request with the trip code; sibling requests and other tenants are
// untouched.
//
// Responses may leave a connection out of order (batching); clients
// correlate by request_id. All writes to one connection are serialized by
// a per-connection mutex.

#ifndef OMQC_SERVER_SERVER_H_
#define OMQC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/governor.h"
#include "base/socket.h"
#include "base/thread_pool.h"
#include "cache/persist.h"
#include "chase/chase.h"
#include "server/admission.h"
#include "server/tenant.h"
#include "server/wire.h"

namespace omqc {

struct ServerConfig {
  /// Bind address for ListenAndStart ("" = INADDR_ANY).
  std::string listen_address = "127.0.0.1";
  /// Worker pool size (0 = hardware concurrency).
  size_t worker_threads = 0;
  /// Shared compilation cache (0 capacity = caching off).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Persistent artifact store directory ("" = memory only). The server
  /// warm-starts the cache from it at boot and flushes new artifacts to
  /// it on drain; an unopenable directory degrades to memory-only with a
  /// warning on stderr (the server still comes up).
  std::string cache_dir;
  AdmissionConfig admission;
  /// Deadline for requests that carry none (0 = tenant default, then
  /// unlimited).
  uint64_t default_deadline_ms = 0;
  /// Server-wide memory budget across all tenants (0 = none).
  size_t server_memory_budget_bytes = 0;
  /// Per-tenant limits.
  TenantQuota tenant_quota;
  /// Intra-request parallelism for containment checks. Kept at 1 by
  /// default: the server parallelizes across requests via the pool.
  size_t contain_threads = 1;
  /// Chase strategy for evaluation paths.
  ChaseStrategy chase = ChaseStrategy::kSemiNaive;
};

/// Server-level tallies (beyond admission/cache/tenant counters).
struct ServerCounters {
  uint64_t connections = 0;
  uint64_t requests = 0;       ///< frames decoded into requests
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;
  uint64_t pings = 0;
  uint64_t stats_requests = 0;
  uint64_t malformed_frames = 0;
};

class OmqServer {
 public:
  explicit OmqServer(ServerConfig config);

  OmqServer(const OmqServer&) = delete;
  OmqServer& operator=(const OmqServer&) = delete;

  /// Equivalent to Shutdown().
  ~OmqServer();

  /// Starts the execution pipeline (pool + admission queue) without a
  /// network listener — for in-process connections only.
  void Start();

  /// Start() plus a TCP listener on `port` (0 = ephemeral). Returns the
  /// bound port.
  Result<uint16_t> ListenAndStart(uint16_t port);

  /// Opens an in-process connection (AF_UNIX socketpair): returns the
  /// client end and spawns a session thread on the server end. Works with
  /// or without a listener.
  Result<OwnedFd> ConnectInProcess();

  /// Graceful stop: refuse new work, flush the admission queue, drain the
  /// pool, unblock and join every session. Idempotent.
  void Shutdown();

  /// Marks the server as asked to shut down (kShutdown request or a
  /// signal) and wakes WaitForShutdownRequest. Does not stop anything
  /// by itself.
  void RequestShutdown();

  /// Blocks until RequestShutdown or the timeout; true when requested.
  bool WaitForShutdownRequest(std::chrono::milliseconds timeout);

  /// The full metrics document served by kStats: server counters,
  /// admission stats, cache stats, server governor, per-tenant sections.
  std::string StatsJson() const;

  const ServerConfig& config() const { return config_; }
  ArtifactStore* cache() { return cache_.get(); }
  ResourceGovernor* governor() { return &governor_; }

  /// Point-in-time admission-queue tallies ({} before Start()).
  AdmissionStats admission_stats() const;
  /// Point-in-time per-tenant view (tenant.h TenantSnapshot).
  std::map<std::string, TenantRegistry::TenantSnapshot> TenantSnapshots()
      const {
    return tenants_.Snapshot();
  }
  ServerCounters counters() const;

  /// Test-only: wires a fault injector into the admission queue (batch
  /// drops) and the cache (insert drops). Install before traffic.
  void set_fault_injector(FaultInjector* injector);

 private:
  struct Connection;
  struct PendingRequest;

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<Connection> conn);
  /// Handles one decoded request on the session thread; enqueues
  /// eval/contain/classify, answers everything else inline.
  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     WireRequest&& request);
  /// Admission dispatch callback (dispatcher thread): leader/follower
  /// submission, or dropped-batch completion.
  void RunBatch(std::vector<AdmissionQueue::Ticket>&& batch,
                uint64_t batch_id, bool dropped);
  /// Executes one request on a pool worker and sends its response.
  void Execute(const std::shared_ptr<PendingRequest>& pending,
               uint64_t batch_id, uint32_t batch_size);
  /// Sends `response` on `conn` (any thread; serialized per connection).
  void SendResponse(const std::shared_ptr<Connection>& conn,
                    WireResponse&& response);
  /// Answers a request that never reaches the pool (dropped batch,
  /// rejected admission, tripped tenant) and settles its lease.
  void FailPending(const std::shared_ptr<PendingRequest>& pending,
                   StatusCode code, const std::string& message,
                   uint64_t batch_id, uint32_t batch_size);
  /// Settles a finished request's tenant lease, then dispatches any
  /// requests its completion released from the tenant's concurrency
  /// queue (trip-check + admission submit, answering failures inline).
  /// Iterative — a cascade of failing resumed requests cannot recurse.
  void SettleLease(const std::shared_ptr<PendingRequest>& pending,
                   size_t residual_bytes, StatusCode code,
                   const EngineStats& stats, bool batched);

  ServerConfig config_;
  ResourceGovernor governor_;  ///< server-wide root governor
  std::unique_ptr<ArtifactStore> cache_;
  TenantRegistry tenants_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<AdmissionQueue> admission_;

  OwnedFd listen_fd_;
  std::thread accept_thread_;

  mutable std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> session_threads_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::once_flag start_once_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;  ///< Shutdown() completed (under shutdown_mu_)
};

}  // namespace omqc

#endif  // OMQC_SERVER_SERVER_H_
