// OmqClient: a minimal blocking client for the omqc wire protocol, used
// by omqc_load, omqc_soak, scripts/server_smoke.sh (via omqc_load) and
// the server tests. One outstanding request per connection: Call() writes
// the request and reads frames until the response with the matching
// request_id arrives (the server may interleave other ids only when the
// caller itself pipelined, which this client never does).
//
// Transient-failure retry: a TCP client (Connect) with a RetryPolicy of
// max_attempts > 1 transparently reconnects and resends a request whose
// transport failed (refused connect, peer reset, truncated frame). Every
// request type is idempotent server-side — eval/contain/classify are pure
// and ping/stats/shutdown are safe to repeat — so a resend after a
// failure whose response was lost is harmless. Backoff between attempts
// is exponential with deterministic jitter (seeded SplitMix64) and is
// clipped to the request's deadline_ms budget: the client never sleeps
// past the point where the server would refuse the request anyway.
// In-process clients (socketpair fds) have no address to redial and never
// retry.

#ifndef OMQC_SERVER_CLIENT_H_
#define OMQC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "base/rng.h"
#include "base/socket.h"
#include "server/wire.h"

namespace omqc {

/// Retry schedule for transient transport failures (see file comment).
struct RetryPolicy {
  /// Total tries per Call (1 = no retry).
  int max_attempts = 1;
  /// First inter-attempt backoff; doubles per retry up to max_backoff_ms.
  uint64_t initial_backoff_ms = 5;
  uint64_t max_backoff_ms = 250;
  /// Seeds the jitter stream (each sleep lands in [backoff/2, backoff]).
  uint64_t jitter_seed = 1;
};

/// Monotone tallies of the retry machinery, for tests and soak reports.
struct ClientRetryCounters {
  uint64_t reconnects = 0;  ///< successful re-dials after a failure
  uint64_t backoffs = 0;    ///< sleeps taken between attempts
};

class OmqClient {
 public:
  /// Wraps an already-connected fd (e.g. OmqServer::ConnectInProcess).
  /// Such a client cannot reconnect, so Call never retries.
  explicit OmqClient(OwnedFd fd) : fd_(std::move(fd)) {}

  /// Connects over TCP.
  static Result<OmqClient> Connect(const std::string& host, uint16_t port);

  /// Connects over TCP, retrying the initial dial under `policy` (for
  /// clients racing server startup). The policy sticks to the client for
  /// later Call retries.
  static Result<OmqClient> Connect(const std::string& host, uint16_t port,
                                   const RetryPolicy& policy);

  OmqClient(OmqClient&&) = default;
  OmqClient& operator=(OmqClient&&) = default;

  /// Retry schedule for subsequent Call failures (TCP clients only).
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const ClientRetryCounters& retry_counters() const { return counters_; }

  /// Sends `request` (request_id assigned here if 0) and blocks for its
  /// response. Transport-level failure is the returned error; a server-
  /// side failure arrives as a WireResponse with code != kOk. TCP clients
  /// with a multi-attempt policy reconnect and resend on transport
  /// failure, honoring request.deadline_ms as the total retry budget.
  Result<WireResponse> Call(WireRequest request);

  /// Convenience wrappers.
  Result<WireResponse> Ping();
  Result<WireResponse> Eval(const std::string& program,
                            const std::string& query,
                            const std::string& tenant = "");
  Result<WireResponse> Contain(const std::string& program,
                               const std::string& lhs,
                               const std::string& rhs,
                               const std::string& tenant = "");
  Result<WireResponse> Classify(const std::string& program,
                                const std::string& tenant = "");
  Result<WireResponse> Stats();
  Result<WireResponse> Shutdown();

  int fd() const { return fd_.get(); }

 private:
  /// One write-request / read-response exchange on the current fd.
  Result<WireResponse> CallOnce(const WireRequest& request);

  OwnedFd fd_;
  uint64_t next_request_id_ = 1;
  /// TCP endpoint for redials; empty host = not reconnectable.
  std::string host_;
  uint16_t port_ = 0;
  RetryPolicy policy_;
  SplitMix64 jitter_{1};
  ClientRetryCounters counters_;
};

}  // namespace omqc

#endif  // OMQC_SERVER_CLIENT_H_
