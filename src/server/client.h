// OmqClient: a minimal blocking client for the omqc wire protocol, used
// by omqc_load, scripts/server_smoke.sh (via omqc_load) and the server
// tests. One outstanding request per connection: Call() writes the
// request and reads frames until the response with the matching
// request_id arrives (the server may interleave other ids only when the
// caller itself pipelined, which this client never does).

#ifndef OMQC_SERVER_CLIENT_H_
#define OMQC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "base/socket.h"
#include "server/wire.h"

namespace omqc {

class OmqClient {
 public:
  /// Wraps an already-connected fd (e.g. OmqServer::ConnectInProcess).
  explicit OmqClient(OwnedFd fd) : fd_(std::move(fd)) {}

  /// Connects over TCP.
  static Result<OmqClient> Connect(const std::string& host, uint16_t port);

  OmqClient(OmqClient&&) = default;
  OmqClient& operator=(OmqClient&&) = default;

  /// Sends `request` (request_id assigned here if 0) and blocks for its
  /// response. Transport-level failure is the returned error; a server-
  /// side failure arrives as a WireResponse with code != kOk.
  Result<WireResponse> Call(WireRequest request);

  /// Convenience wrappers.
  Result<WireResponse> Ping();
  Result<WireResponse> Eval(const std::string& program,
                            const std::string& query,
                            const std::string& tenant = "");
  Result<WireResponse> Contain(const std::string& program,
                               const std::string& lhs,
                               const std::string& rhs,
                               const std::string& tenant = "");
  Result<WireResponse> Classify(const std::string& program,
                                const std::string& tenant = "");
  Result<WireResponse> Stats();
  Result<WireResponse> Shutdown();

  int fd() const { return fd_.get(); }

 private:
  OwnedFd fd_;
  uint64_t next_request_id_ = 1;
};

}  // namespace omqc

#endif  // OMQC_SERVER_CLIENT_H_
