// The server's admission queue: groups compatible requests into batches
// before dispatch, so concurrent requests against the same ontology share
// one compilation instead of racing N cold XRewrite runs.
//
// Compatibility is structural: requests batch together iff they agree on
// BatchKey — the 128-bit isomorphism-invariant fingerprint of the
// ontology's tgd set (cache/canonical.h) plus the request kind. Two
// tenants sending the same ontology under different names land in the same
// batch; the same tenant sending two different ontologies does not.
//
// A batch is dispatched when it reaches `max_batch` tickets or when its
// oldest ticket has lingered `linger_ms` (whichever first; linger 0 =
// dispatch on the next dispatcher wakeup, i.e. effectively immediately).
// All dispatch callbacks run on the queue's single dispatcher thread, so
// batches leave in a deterministic order — the server relies on this to
// submit each batch's leader task to the worker pool before its followers.
//
// Fault injection: FaultPlan::drop_batch_at names a 1-based dispatch at
// which the whole batch is handed to the callback with dropped=true. The
// callback must still complete every ticket (the chaos suite asserts the
// queue stays serviceable and no governor charge leaks).

#ifndef OMQC_SERVER_ADMISSION_H_
#define OMQC_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "cache/canonical.h"

namespace omqc {

/// What makes two requests batchable: same ontology structure (up to tgd
/// reordering and variable renaming) and same request kind.
struct BatchKey {
  Fingerprint ontology;
  uint8_t kind = 0;  ///< RequestType byte (eval/contain/classify)

  bool operator==(const BatchKey& other) const {
    return ontology == other.ontology && kind == other.kind;
  }
  bool operator<(const BatchKey& other) const {
    if (!(ontology == other.ontology)) return ontology < other.ontology;
    return kind < other.kind;
  }
};

struct AdmissionConfig {
  /// Dispatch a batch as soon as it holds this many tickets.
  size_t max_batch = 16;
  /// How long the first ticket of a batch may wait for company.
  uint64_t linger_ms = 2;
};

/// Queue-level tallies for the STATS endpoint.
struct AdmissionStats {
  uint64_t submitted = 0;          ///< tickets accepted by Submit
  uint64_t rejected = 0;           ///< tickets refused (queue shut down)
  uint64_t batches_dispatched = 0; ///< includes dropped batches
  uint64_t batches_dropped = 0;    ///< fault-injected drops
  uint64_t dropped_requests = 0;   ///< tickets riding dropped batches
  uint64_t batched_requests = 0;   ///< tickets in batches of size > 1
  uint64_t max_batch_size = 0;
  uint64_t queue_depth_peak = 0;
  uint64_t current_depth = 0;
  uint64_t wait_us_total = 0;      ///< admission wait summed over tickets
  uint64_t wait_us_max = 0;
};

class AdmissionQueue {
 public:
  /// One queued request. `payload` is opaque to the queue (the server
  /// stores its per-request state there); `wait_us` is filled in at
  /// dispatch with the ticket's time in the queue.
  struct Ticket {
    BatchKey key;
    std::shared_ptr<void> payload;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t wait_us = 0;
  };

  /// Invoked on the dispatcher thread with a complete batch. `dropped`
  /// means a fault plan dropped the batch: the callback must complete
  /// every ticket with kCancelled instead of executing it.
  using DispatchFn = std::function<void(std::vector<Ticket>&& batch,
                                        uint64_t batch_id, bool dropped)>;

  AdmissionQueue(AdmissionConfig config, DispatchFn dispatch);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Equivalent to Shutdown().
  ~AdmissionQueue();

  /// Enqueues one request. Returns false (and does nothing) after
  /// Shutdown() has begun — the caller answers the request itself.
  bool Submit(const BatchKey& key, std::shared_ptr<void> payload);

  /// Flushes every pending batch through the dispatch callback (normal,
  /// not dropped), then joins the dispatcher thread. Idempotent.
  void Shutdown();

  AdmissionStats Stats() const;

  /// Test-only: batch-drop fault injection (FaultPlan::drop_batch_at).
  /// Pass nullptr to detach. The injector must outlive its use.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

 private:
  struct Group {
    std::vector<Ticket> tickets;
    std::chrono::steady_clock::time_point deadline;  ///< linger expiry
  };

  void DispatcherLoop();
  /// Moves groups whose linger expired (all groups if `flush`) from
  /// `groups_` to `ready_`. Caller holds mu_.
  void CollectReadyLocked(std::chrono::steady_clock::time_point now,
                          bool flush);

  const AdmissionConfig config_;
  const DispatchFn dispatch_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::map<BatchKey, Group> groups_;
  std::deque<std::vector<Ticket>> ready_;
  AdmissionStats stats_;
  uint64_t next_batch_id_ = 0;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace omqc

#endif  // OMQC_SERVER_ADMISSION_H_
