#include "server/tenant.h"

#include <algorithm>
#include <utility>

namespace omqc {

std::shared_ptr<ResourceGovernor> TenantRegistry::NewGovernor() const {
  auto governor = std::make_shared<ResourceGovernor>(server_governor_);
  if (quota_.memory_quota_bytes > 0) {
    governor->set_memory_budget(quota_.memory_quota_bytes);
  }
  return governor;
}

TenantRegistry::Admission TenantRegistry::AdmitOrQueue(
    const std::string& tenant, std::shared_ptr<void> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (t.governor == nullptr) t.governor = NewGovernor();
  ++t.counters.requests;
  if (quota_.max_concurrent > 0 && t.inflight >= quota_.max_concurrent) {
    t.waiting.push_back(std::move(payload));
    ++t.counters.queued_requests;
    t.counters.queue_peak =
        std::max<uint64_t>(t.counters.queue_peak, t.waiting.size());
    return Admission{TenantLease{tenant, nullptr}, /*queued=*/true};
  }
  ++t.inflight;
  return Admission{TenantLease{tenant, t.governor}, /*queued=*/false};
}

std::vector<TenantRegistry::Resumed> TenantRegistry::Complete(
    const TenantLease& lease, size_t residual_bytes, StatusCode code,
    const EngineStats& stats, bool batched) {
  // Return the finished request's residual charge before taking the
  // registry lock — ReleaseBytes is lock-free and walks up to the server
  // governor on its own.
  if (residual_bytes > 0 && lease.governor != nullptr) {
    lease.governor->ReleaseBytes(residual_bytes);
  }
  std::vector<Resumed> resumed;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(lease.tenant);
  if (it == tenants_.end()) return resumed;
  Tenant& t = it->second;
  if (t.inflight > 0) --t.inflight;
  switch (code) {
    case StatusCode::kOk:
      ++t.counters.completed;
      break;
    case StatusCode::kDeadlineExceeded:
      ++t.counters.failed;
      ++t.counters.deadline_trips;
      break;
    case StatusCode::kCancelled:
      ++t.counters.failed;
      ++t.counters.cancel_trips;
      break;
    case StatusCode::kResourceExhausted:
      ++t.counters.failed;
      ++t.counters.memory_trips;
      break;
    default:
      ++t.counters.failed;
      break;
  }
  if (batched) ++t.counters.batched_requests;
  t.counters.cache_hits += stats.cache.hits;
  t.counters.cache_misses += stats.cache.misses;
  // A tripped tenant governor is sticky (fail-fast for this tenant) until
  // the tenant drains; then replace it so the tenant recovers. Requests
  // still holding the old governor keep it alive via their lease. Queued
  // requests resume under the replacement (and fail fast on an unreplaced
  // tripped governor via the server's dispatch trip check).
  if (t.inflight == 0 && t.governor != nullptr && t.governor->tripped()) {
    t.governor = NewGovernor();
    ++t.counters.governor_resets;
  }
  // Hand freed capacity to the queue, FIFO. Normally at most one request
  // resumes per completion; the loop also covers quota reconfiguration.
  while (!t.waiting.empty() &&
         (quota_.max_concurrent == 0 || t.inflight < quota_.max_concurrent)) {
    ++t.inflight;
    resumed.push_back(
        Resumed{TenantLease{lease.tenant, t.governor},
                std::move(t.waiting.front())});
    t.waiting.pop_front();
  }
  return resumed;
}

std::vector<std::shared_ptr<void>> TenantRegistry::DrainQueued() {
  std::vector<std::shared_ptr<void>> drained;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, t] : tenants_) {
    (void)name;
    while (!t.waiting.empty()) {
      drained.push_back(std::move(t.waiting.front()));
      t.waiting.pop_front();
      ++t.counters.failed;
      ++t.counters.cancel_trips;
    }
  }
  return drained;
}

std::map<std::string, TenantRegistry::TenantSnapshot>
TenantRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantSnapshot> out;
  for (const auto& [name, t] : tenants_) {
    TenantSnapshot snap;
    snap.counters = t.counters;
    snap.inflight = t.inflight;
    snap.queued = t.waiting.size();
    if (t.governor != nullptr) {
      snap.charged_bytes = t.governor->local_charged_bytes();
      snap.tripped = t.governor->tripped();
    }
    out.emplace(name, snap);
  }
  return out;
}

}  // namespace omqc
