#include "server/wire.h"

#include <cstring>

#include "base/socket.h"
#include "base/string_util.h"

namespace omqc {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// A bounds-checked little-endian reader over one frame payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return Truncated();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::OK();
  }

  Status U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::OK();
  }

  Status String(std::string* v) {
    uint32_t len = 0;
    OMQC_RETURN_IF_ERROR(U32(&len));
    if (pos_ + len > data_.size()) return Truncated();
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          StrCat("wire: ", data_.size() - pos_, " trailing bytes in frame"));
    }
    return Status::OK();
  }

 private:
  Status Truncated() const {
    return Status::InvalidArgument("wire: truncated frame");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status CheckVersion(Reader& r) {
  uint8_t version = 0;
  OMQC_RETURN_IF_ERROR(r.U8(&version));
  if (version != kWireVersion) {
    return Status::Unsupported(
        StrCat("wire: protocol version ", int{version}, ", expected ",
               int{kWireVersion}));
  }
  return Status::OK();
}

}  // namespace

const char* RequestTypeToString(RequestType type) {
  switch (type) {
    case RequestType::kPing:
      return "ping";
    case RequestType::kEval:
      return "eval";
    case RequestType::kContain:
      return "contain";
    case RequestType::kClassify:
      return "classify";
    case RequestType::kStats:
      return "stats";
    case RequestType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  out.reserve(64 + request.program.size());
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(request.type));
  PutU64(&out, request.request_id);
  PutString(&out, request.tenant);
  PutU64(&out, request.deadline_ms);
  PutU64(&out, request.max_memory_bytes);
  PutString(&out, request.program);
  PutString(&out, request.query);
  PutString(&out, request.query2);
  return out;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  out.reserve(64 + response.body.size() + response.stats_json.size());
  PutU8(&out, kWireVersion);
  PutU64(&out, response.request_id);
  PutU8(&out, static_cast<uint8_t>(response.code));
  PutString(&out, response.message);
  PutString(&out, response.body);
  PutString(&out, response.stats_json);
  PutU64(&out, response.batch_id);
  PutU32(&out, response.batch_size);
  PutU64(&out, response.admission_wait_us);
  return out;
}

Result<WireRequest> DecodeRequest(std::string_view payload) {
  Reader r(payload);
  OMQC_RETURN_IF_ERROR(CheckVersion(r));
  WireRequest request;
  uint8_t type = 0;
  OMQC_RETURN_IF_ERROR(r.U8(&type));
  if (type > static_cast<uint8_t>(RequestType::kShutdown)) {
    return Status::InvalidArgument(
        StrCat("wire: unknown request type ", int{type}));
  }
  request.type = static_cast<RequestType>(type);
  OMQC_RETURN_IF_ERROR(r.U64(&request.request_id));
  OMQC_RETURN_IF_ERROR(r.String(&request.tenant));
  OMQC_RETURN_IF_ERROR(r.U64(&request.deadline_ms));
  OMQC_RETURN_IF_ERROR(r.U64(&request.max_memory_bytes));
  OMQC_RETURN_IF_ERROR(r.String(&request.program));
  OMQC_RETURN_IF_ERROR(r.String(&request.query));
  OMQC_RETURN_IF_ERROR(r.String(&request.query2));
  OMQC_RETURN_IF_ERROR(r.ExpectEnd());
  return request;
}

Result<WireResponse> DecodeResponse(std::string_view payload) {
  Reader r(payload);
  OMQC_RETURN_IF_ERROR(CheckVersion(r));
  WireResponse response;
  OMQC_RETURN_IF_ERROR(r.U64(&response.request_id));
  uint8_t code = 0;
  OMQC_RETURN_IF_ERROR(r.U8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kNotFound)) {
    return Status::InvalidArgument(
        StrCat("wire: unknown status code ", int{code}));
  }
  response.code = static_cast<StatusCode>(code);
  OMQC_RETURN_IF_ERROR(r.String(&response.message));
  OMQC_RETURN_IF_ERROR(r.String(&response.body));
  OMQC_RETURN_IF_ERROR(r.String(&response.stats_json));
  OMQC_RETURN_IF_ERROR(r.U64(&response.batch_id));
  OMQC_RETURN_IF_ERROR(r.U32(&response.batch_size));
  OMQC_RETURN_IF_ERROR(r.U64(&response.admission_wait_us));
  OMQC_RETURN_IF_ERROR(r.ExpectEnd());
  return response;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("wire: frame of ", payload.size(), " bytes exceeds limit"));
  }
  char prefix[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  OMQC_RETURN_IF_ERROR(WriteFull(fd, prefix, sizeof(prefix)));
  return WriteFull(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, std::string* payload) {
  char prefix[4];
  OMQC_RETURN_IF_ERROR(ReadFull(fd, prefix, sizeof(prefix)));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("wire: frame length ", len, " exceeds limit"));
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  return ReadFull(fd, payload->data(), len);
}

}  // namespace omqc
