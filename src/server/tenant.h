// Per-tenant resource governance for the omqc server.
//
// Governor layering (see DESIGN.md "Server pipeline"):
//
//   server governor  (server-wide memory budget, shutdown cancellation)
//     └─ tenant governor   (per-tenant memory quota; one per tenant)
//          └─ request governor  (per-request deadline / memory budget)
//               └─ engine children (containment worker cancellation, ...)
//
// Byte charges accumulate at every level (base/governor.h), so a tenant
// quota bounds that tenant's in-flight bytes only; trips latch on the
// governor whose limit was exceeded, so a request deadline trip stays on
// the request, a tenant quota trip sticks to the tenant (fail-fast for its
// subsequent requests) and never touches sibling tenants.
//
// A tripped tenant governor is replaced with a fresh child of the server
// governor once the tenant's in-flight requests drain — the tenant is
// throttled, not bricked. Requests still holding the old governor keep it
// alive through shared_ptr.
//
// Concurrency quota: with TenantQuota::max_concurrent > 0, a tenant's
// excess requests are *queued* here (FIFO) instead of tripping anything —
// AdmitOrQueue parks the opaque payload, and each Complete hands freed
// capacity back as Resumed entries the server re-dispatches. Queued work
// is invisible to the admission queue and the pool until then, so one
// hot tenant cannot monopolize worker slots.

#ifndef OMQC_SERVER_TENANT_H_
#define OMQC_SERVER_TENANT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/governor.h"
#include "core/engine_stats.h"

namespace omqc {

/// Per-tenant limits, applied uniformly to every tenant the server sees.
struct TenantQuota {
  /// Cap on a tenant's in-flight governed bytes (0 = none).
  size_t memory_quota_bytes = 0;
  /// Deadline applied to requests that carry none (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Cap on a tenant's concurrently executing requests (0 = unlimited).
  /// Excess requests *queue* (FIFO per tenant) rather than trip: they are
  /// handed back by Complete() as capacity frees up.
  uint64_t max_concurrent = 0;
};

/// Monotone per-tenant tallies, exported by the STATS endpoint.
struct TenantCounters {
  uint64_t requests = 0;        ///< admitted requests
  uint64_t completed = 0;       ///< responses with StatusCode kOk
  uint64_t failed = 0;          ///< responses with any other code
  uint64_t deadline_trips = 0;  ///< requests ending kDeadlineExceeded
  uint64_t cancel_trips = 0;    ///< requests ending kCancelled
  uint64_t memory_trips = 0;    ///< requests ending kResourceExhausted
  uint64_t batched_requests = 0;  ///< rode an admission batch of size > 1
  uint64_t cache_hits = 0;      ///< compilation-cache hits attributed here
  uint64_t cache_misses = 0;    ///< compilation-cache misses attributed here
  uint64_t governor_resets = 0;  ///< tripped tenant governors replaced
  uint64_t queued_requests = 0;  ///< deferred by the concurrency quota
  uint64_t queue_peak = 0;       ///< deepest the concurrency queue got
};

/// A lease on a tenant's governor for one request's lifetime. The shared
/// pointer keeps a since-replaced governor alive until the request ends.
struct TenantLease {
  std::string tenant;
  std::shared_ptr<ResourceGovernor> governor;
};

class TenantRegistry {
 public:
  /// `server_governor` (not owned, must outlive the registry) parents
  /// every tenant governor; `quota` applies to each tenant individually.
  TenantRegistry(ResourceGovernor* server_governor, TenantQuota quota)
      : server_governor_(server_governor), quota_(quota) {}

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  const TenantQuota& quota() const { return quota_; }

  /// Outcome of AdmitOrQueue: either a live lease, or `queued` — the
  /// payload was parked under the concurrency quota and will come back
  /// out of a later Complete() (or DrainQueued()) call.
  struct Admission {
    TenantLease lease;  ///< empty governor when queued
    bool queued = false;
  };

  /// Admits one request for `tenant` (created on first sight), or parks
  /// `payload` when the tenant is already running `max_concurrent`
  /// requests. Parked requests count toward `requests`/`queued_requests`
  /// immediately.
  Admission AdmitOrQueue(const std::string& tenant,
                         std::shared_ptr<void> payload);

  /// A request released from the concurrency queue by a completion: its
  /// freshly issued lease plus the payload given to AdmitOrQueue.
  struct Resumed {
    TenantLease lease;
    std::shared_ptr<void> payload;
  };

  /// Completes the request holding `lease`. `residual_bytes` is the
  /// request governor's un-released local charge (returned to the tenant
  /// chain here); `code` is the response status; `stats` the request's
  /// engine counters; `batched` whether the request rode a batch of
  /// size > 1. Replaces a tripped tenant governor once the tenant drains,
  /// then returns any queued requests the freed capacity now admits (the
  /// caller dispatches them outside this registry's lock).
  std::vector<Resumed> Complete(const TenantLease& lease,
                                size_t residual_bytes, StatusCode code,
                                const EngineStats& stats, bool batched);

  /// Empties every tenant's concurrency queue (shutdown): the payloads
  /// are returned without leases and tallied as failed/cancelled.
  std::vector<std::shared_ptr<void>> DrainQueued();

  /// Point-in-time view for the STATS endpoint.
  struct TenantSnapshot {
    TenantCounters counters;
    uint64_t inflight = 0;
    uint64_t queued = 0;       ///< current concurrency-queue depth
    size_t charged_bytes = 0;  ///< current tenant-level accounted bytes
    bool tripped = false;      ///< current governor is latched
  };
  std::map<std::string, TenantSnapshot> Snapshot() const;

 private:
  struct Tenant {
    std::shared_ptr<ResourceGovernor> governor;
    uint64_t inflight = 0;
    /// Requests parked by the concurrency quota, FIFO.
    std::deque<std::shared_ptr<void>> waiting;
    TenantCounters counters;
  };

  std::shared_ptr<ResourceGovernor> NewGovernor() const;

  ResourceGovernor* server_governor_;
  TenantQuota quota_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
};

}  // namespace omqc

#endif  // OMQC_SERVER_TENANT_H_
