#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace omqc {

namespace {

/// One jittered backoff draw: uniform over [backoff/2, backoff].
uint64_t JitteredMs(uint64_t backoff, SplitMix64& rng) {
  uint64_t half = std::max<uint64_t>(backoff / 2, 1);
  return half + rng.Below(backoff - half + 1);
}

}  // namespace

Result<OmqClient> OmqClient::Connect(const std::string& host,
                                     uint16_t port) {
  OMQC_ASSIGN_OR_RETURN(OwnedFd fd, ConnectTcp(host, port));
  OmqClient client(std::move(fd));
  client.host_ = host;
  client.port_ = port;
  return client;
}

Result<OmqClient> OmqClient::Connect(const std::string& host, uint16_t port,
                                     const RetryPolicy& policy) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  SplitMix64 jitter(policy.jitter_seed);
  uint64_t backoff = std::max<uint64_t>(policy.initial_backoff_ms, 1);
  Result<OwnedFd> fd = ConnectTcp(host, port);
  for (int attempt = 1; !fd.ok() && attempt < max_attempts; ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(JitteredMs(backoff, jitter)));
    backoff = std::min(backoff * 2,
                       std::max<uint64_t>(policy.max_backoff_ms, 1));
    fd = ConnectTcp(host, port);
  }
  if (!fd.ok()) return fd.status();
  OmqClient client(std::move(*fd));
  client.host_ = host;
  client.port_ = port;
  client.policy_ = policy;
  client.jitter_ = SplitMix64(policy.jitter_seed);
  return client;
}

Result<WireResponse> OmqClient::Call(WireRequest request) {
  if (request.request_id == 0) request.request_id = next_request_id_;
  next_request_id_ = request.request_id + 1;
  const int max_attempts = std::max(policy_.max_attempts, 1);
  const auto start = std::chrono::steady_clock::now();
  uint64_t backoff = std::max<uint64_t>(policy_.initial_backoff_ms, 1);
  for (int attempt = 1;; ++attempt) {
    Result<WireResponse> result = Status::InvalidArgument("not connected");
    if (fd_.get() >= 0) {
      result = CallOnce(request);
    } else if (!host_.empty()) {
      auto fd = ConnectTcp(host_, port_);
      if (fd.ok()) {
        fd_ = std::move(*fd);
        ++counters_.reconnects;
        result = CallOnce(request);
      } else {
        result = fd.status();
      }
    }
    if (result.ok()) return result;
    // Transport failure: the connection state is unknown (a request may
    // be half-written), so drop it. Resending is safe — every request
    // type is idempotent (see header).
    fd_ = OwnedFd();
    if (host_.empty() || attempt >= max_attempts) return result;
    uint64_t sleep_ms = JitteredMs(backoff, jitter_);
    if (request.deadline_ms > 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      // No point retrying past the request's own deadline: the server
      // would refuse it on arrival.
      if (static_cast<uint64_t>(elapsed) + sleep_ms >= request.deadline_ms) {
        return result;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    ++counters_.backoffs;
    backoff = std::min(backoff * 2,
                       std::max<uint64_t>(policy_.max_backoff_ms, 1));
  }
}

Result<WireResponse> OmqClient::CallOnce(const WireRequest& request) {
  OMQC_RETURN_IF_ERROR(WriteFrame(fd_.get(), EncodeRequest(request)));
  std::string payload;
  for (;;) {
    OMQC_RETURN_IF_ERROR(ReadFrame(fd_.get(), &payload));
    OMQC_ASSIGN_OR_RETURN(WireResponse response, DecodeResponse(payload));
    if (response.request_id == request.request_id) return response;
    // A stray id (server answered a decode failure with id 0, or a stale
    // pipelined response) — keep reading for ours.
  }
}

Result<WireResponse> OmqClient::Ping() {
  WireRequest request;
  request.type = RequestType::kPing;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Eval(const std::string& program,
                                     const std::string& query,
                                     const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kEval;
  request.tenant = tenant;
  request.program = program;
  request.query = query;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Contain(const std::string& program,
                                        const std::string& lhs,
                                        const std::string& rhs,
                                        const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kContain;
  request.tenant = tenant;
  request.program = program;
  request.query = lhs;
  request.query2 = rhs;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Classify(const std::string& program,
                                         const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kClassify;
  request.tenant = tenant;
  request.program = program;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Stats() {
  WireRequest request;
  request.type = RequestType::kStats;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Shutdown() {
  WireRequest request;
  request.type = RequestType::kShutdown;
  return Call(std::move(request));
}

}  // namespace omqc
