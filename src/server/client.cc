#include "server/client.h"

namespace omqc {

Result<OmqClient> OmqClient::Connect(const std::string& host,
                                     uint16_t port) {
  OMQC_ASSIGN_OR_RETURN(OwnedFd fd, ConnectTcp(host, port));
  return OmqClient(std::move(fd));
}

Result<WireResponse> OmqClient::Call(WireRequest request) {
  if (request.request_id == 0) request.request_id = next_request_id_;
  next_request_id_ = request.request_id + 1;
  OMQC_RETURN_IF_ERROR(WriteFrame(fd_.get(), EncodeRequest(request)));
  std::string payload;
  for (;;) {
    OMQC_RETURN_IF_ERROR(ReadFrame(fd_.get(), &payload));
    OMQC_ASSIGN_OR_RETURN(WireResponse response, DecodeResponse(payload));
    if (response.request_id == request.request_id) return response;
    // A stray id (server answered a decode failure with id 0, or a stale
    // pipelined response) — keep reading for ours.
  }
}

Result<WireResponse> OmqClient::Ping() {
  WireRequest request;
  request.type = RequestType::kPing;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Eval(const std::string& program,
                                     const std::string& query,
                                     const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kEval;
  request.tenant = tenant;
  request.program = program;
  request.query = query;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Contain(const std::string& program,
                                        const std::string& lhs,
                                        const std::string& rhs,
                                        const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kContain;
  request.tenant = tenant;
  request.program = program;
  request.query = lhs;
  request.query2 = rhs;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Classify(const std::string& program,
                                         const std::string& tenant) {
  WireRequest request;
  request.type = RequestType::kClassify;
  request.tenant = tenant;
  request.program = program;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Stats() {
  WireRequest request;
  request.type = RequestType::kStats;
  return Call(std::move(request));
}

Result<WireResponse> OmqClient::Shutdown() {
  WireRequest request;
  request.type = RequestType::kShutdown;
  return Call(std::move(request));
}

}  // namespace omqc
