// The omqc wire protocol: length-prefixed binary frames over a stream
// socket (TCP, or an AF_UNIX socketpair for in-process tests).
//
// Frame layout (all integers little-endian):
//
//   u32 payload_length            (bounded by kMaxFrameBytes)
//   u8  protocol_version          (kWireVersion)
//   ...message fields...
//
// Request fields, in order: u8 type, u64 request_id, str tenant,
// u64 deadline_ms, u64 max_memory_bytes, str program, str query, str
// query2 — where `str` is u32 length + bytes. Response fields: u64
// request_id, u8 status_code, str status_message, str body, str
// stats_json, u64 batch_id, u32 batch_size, u64 admission_wait_us.
//
// `body` carries the verdict text, byte-identical to what omqc_cli prints
// for the same request (src/core/frontend.h Format* helpers). Requests on
// one connection may be answered out of order (admission batching);
// request_id is the correlation key.

#ifndef OMQC_SERVER_WIRE_H_
#define OMQC_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace omqc {

/// Protocol version carried in every frame; bumped on layout changes.
inline constexpr uint8_t kWireVersion = 1;

/// Hard ceiling on frame payloads (hostile or corrupt length prefixes
/// must not drive allocation).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class RequestType : uint8_t {
  kPing = 0,      ///< liveness probe; body "pong"
  kEval = 1,      ///< certain answers of `query` over the program's facts
  kContain = 2,   ///< containment of `query` in `query2`
  kClassify = 3,  ///< ontology classification report
  kStats = 4,     ///< server metrics dump (JSON body)
  kShutdown = 5,  ///< graceful daemon shutdown
};

const char* RequestTypeToString(RequestType type);

struct WireRequest {
  RequestType type = RequestType::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t request_id = 0;
  /// Tenant the request is accounted to ("" = the default tenant).
  std::string tenant;
  /// Per-request wall-clock deadline, 0 = server default. The clock
  /// starts when the request begins executing (admission wait excluded).
  uint64_t deadline_ms = 0;
  /// Per-request memory budget in bytes, 0 = none.
  uint64_t max_memory_bytes = 0;
  /// DLGP program text (tgds, named queries, facts).
  std::string program;
  /// Query name for kEval / LHS for kContain.
  std::string query;
  /// RHS query name for kContain.
  std::string query2;
};

struct WireResponse {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  /// Error / trip detail when code != kOk.
  std::string message;
  /// Verdict text (CLI-identical) or JSON for kStats.
  std::string body;
  /// Per-request EngineStats as JSON (empty for ping/stats/shutdown).
  std::string stats_json;
  /// Admission metadata: which batch carried the request and how long it
  /// waited in the queue.
  uint64_t batch_id = 0;
  uint32_t batch_size = 0;
  uint64_t admission_wait_us = 0;
};

/// Serializes a message into a frame payload (no length prefix).
std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

/// Parses a frame payload. Bounds-checked; malformed input yields
/// kInvalidArgument, a version mismatch kUnsupported.
Result<WireRequest> DecodeRequest(std::string_view payload);
Result<WireResponse> DecodeResponse(std::string_view payload);

/// Frame I/O over a connected stream socket (base/socket.h). ReadFrame
/// returns kCancelled on orderly peer close between frames.
Status WriteFrame(int fd, std::string_view payload);
Status ReadFrame(int fd, std::string* payload);

}  // namespace omqc

#endif  // OMQC_SERVER_WIRE_H_
